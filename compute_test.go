package coleader_test

import (
	"testing"

	"coleader"
)

// TestComputeBaselineTripleComposition: Algorithm 2 elects a transport
// root, the ring switches into the universal layer, and an unchanged
// classical election runs on top — the app-level leader must be the
// maximum APP id, independent of the transport leader.
func TestComputeBaselineTripleComposition(t *testing.T) {
	transportIDs := []uint64{3, 9, 5, 2} // transport leader: node 1
	appIDs := []uint64{40, 10, 30, 20}   // app leader: node 0
	for _, algo := range coleader.Baselines() {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			apps := make([]coleader.App, len(transportIDs))
			for k := range apps {
				app, err := coleader.AdaptBaseline(algo, appIDs[k])
				if err != nil {
					t.Fatal(err)
				}
				apps[k] = app
			}
			res, err := coleader.Compute(transportIDs, apps, coleader.WithSeed(12))
			if err != nil {
				t.Fatal(err)
			}
			if res.Leader != 1 {
				t.Errorf("transport leader = %d, want 1", res.Leader)
			}
			if !res.Terminated || !res.Quiescent {
				t.Errorf("terminated=%t quiescent=%t", res.Terminated, res.Quiescent)
			}
			for k, a := range apps {
				out, err := coleader.InspectBaseline(a)
				if err != nil {
					t.Fatal(err)
				}
				if out.Err != nil {
					t.Fatalf("node %d transport fault: %v", k, out.Err)
				}
				want := coleader.NonLeader
				if k == 0 {
					want = coleader.Leader
				}
				if out.State != want {
					t.Errorf("node %d app state %v, want %v", k, out.State, want)
				}
			}
		})
	}
}

// TestInspectBaselineRejectsForeignApp: InspectBaseline only accepts apps
// built by AdaptBaseline.
func TestInspectBaselineRejectsForeignApp(t *testing.T) {
	if _, err := coleader.InspectBaseline(coleader.NewMaxApp(1)); err == nil {
		t.Error("foreign app accepted")
	}
}

// TestAdaptBaselineValidation covers the constructor.
func TestAdaptBaselineValidation(t *testing.T) {
	if _, err := coleader.AdaptBaseline("bogus", 1); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if _, err := coleader.AdaptBaseline(coleader.LeLann, 0); err == nil {
		t.Error("zero app ID accepted")
	}
}

// TestComputeOnLiveRuntime: the entire Corollary 5 stack also runs on the
// goroutine-per-node runtime.
func TestComputeOnLiveRuntime(t *testing.T) {
	ids := []uint64{3, 7, 1}
	apps := []coleader.App{
		coleader.NewMaxApp(5), coleader.NewMaxApp(12), coleader.NewMaxApp(8),
	}
	res, err := coleader.Compute(ids, apps, coleader.WithLiveRuntime())
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 1 {
		t.Errorf("leader = %d, want 1", res.Leader)
	}
	for k, a := range apps {
		got := a.(interface{ Result() uint64 }).Result()
		if got != 12 {
			t.Errorf("node %d result %d, want 12", k, got)
		}
	}
}
