# Tier-1 verification for the coleader repository. `make check` is the
# gate every PR must pass; CI runs it plus the race and fuzz targets.

GO ?= go

.PHONY: check fmt vet lint lint-bench build test race fuzz-smoke bench modelcheck-smoke fault-smoke fault-verify-smoke shard-smoke batch-smoke

# check chains the full tier-1 verify: formatting, vet, the oblint
# model-invariant analyzer, build, and tests.
check: fmt vet lint build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs oblint over the whole module; it must exit 0. The follow-up
# invocations prove the analyzer itself is alive by requiring a nonzero
# exit from the named check on each known-violating fixture package
# (fixture:check pairs; xblock exercises the cross-package call graph).
lint:
	$(GO) run ./cmd/oblint ./...
	@for fc in \
		det:det-time \
		statesnap:state-snapshot \
		staterestore:state-restore \
		staterestore:state-skew \
		statekey:state-key \
		xblock:handler-block \
		dynblock:handler-block \
		concleak:conc-goroutine-leak \
		chandir:conc-chan-direction \
		conclock:conc-lock-order; do \
		dir=internal/lint/testdata/src/fixt/$${fc%%:*}; chk=$${fc##*:}; \
		if $(GO) run ./cmd/oblint -check $$chk $$dir >/dev/null 2>&1; then \
			echo "oblint failed to flag $$dir under $$chk"; exit 1; \
		fi; \
	done
	@dir=internal/lint/testdata/src/fixt/dyntaint; \
	if $(GO) run ./cmd/oblint -check oblivious-taint -oblivious coleader/$$dir $$dir >/dev/null 2>&1; then \
		echo "oblint failed to flag $$dir under oblivious-taint"; exit 1; \
	fi

# lint-bench times a cold oblint run (fresh cache: full source
# type-checking) against a warm one (content-hash cache replay) on a
# prebuilt binary, proves the two produce byte-identical findings, and
# records both wall times as a benchmark family in BENCH_sim.json so the
# analyzer's own performance is ratcheted like the simulator's. The
# devirtualization site counts from the cold run's -json output ride
# along as custom metrics (resolved-sites / overapprox-sites /
# unresolvable-sites), so CI can ratchet the call graph's residual blind
# spots downward alongside the wall times. Override the entry label for
# CI comparison runs:
#   make lint-bench LINT_BENCH_LABEL=lint-ci
LINT_BENCH_LABEL ?= lint
lint-bench:
	@mkdir -p bin
	$(GO) build -o bin/oblint ./cmd/oblint
	@rm -rf .oblint-bench-cache
	@t0=$$(date +%s%N); \
	./bin/oblint -cache-dir .oblint-bench-cache -cache-stats -json ./... > .oblint-bench-cold.json; \
	t1=$$(date +%s%N); \
	./bin/oblint -cache-dir .oblint-bench-cache -cache-stats -json ./... > .oblint-bench-warm.json; \
	t2=$$(date +%s%N); \
	echo "cold (cache empty): $$(( (t1 - t0) / 1000000 )) ms"; \
	echo "warm (cache full):  $$(( (t2 - t1) / 1000000 )) ms"; \
	printf 'BenchmarkOblintColdModule 1 %d ns/op\nBenchmarkOblintWarmModule 1 %d ns/op\n' \
		$$(( t1 - t0 )) $$(( t2 - t1 )) > .oblint-bench-times.txt
	@cmp .oblint-bench-cold.json .oblint-bench-warm.json && echo "cold and warm findings are byte-identical"
	@res=$$(grep -o '"resolvedSites": *[0-9]*' .oblint-bench-cold.json | grep -o '[0-9]*$$'); \
	ova=$$(grep -o '"overApproxSites": *[0-9]*' .oblint-bench-cold.json | grep -o '[0-9]*$$'); \
	unr=$$(grep -o '"unresolvableSites": *[0-9]*' .oblint-bench-cold.json | grep -o '[0-9]*$$'); \
	echo "devirt: $$res resolved, $$ova over-approx, $$unr unresolvable"; \
	printf 'BenchmarkOblintDevirt 1 %d resolved-sites %d overapprox-sites %d unresolvable-sites\n' \
		"$$res" "$$ova" "$$unr" >> .oblint-bench-times.txt
	$(GO) run ./cmd/benchjson -in .oblint-bench-times.txt -out BENCH_sim.json \
		-label "$(LINT_BENCH_LABEL)" -note "oblint whole-module wall time + devirt site counts"
	@rm -rf .oblint-bench-cache .oblint-bench-cold.json .oblint-bench-warm.json .oblint-bench-times.txt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector (the live runtime and
# simulator are the concurrency-bearing packages, but everything runs).
race:
	$(GO) test -race ./...

# bench runs the root-package simulator benchmarks (bench_test.go) and
# records the parsed results (time/op, allocs/op, custom metrics such as
# pulses/op) into BENCH_sim.json under BENCH_LABEL, replacing any
# existing entry with that label. Override for quick CI runs:
#   make bench BENCHTIME=100ms BENCH_LABEL=ci
BENCHTIME ?= 1x
BENCH_LABEL ?= post
BENCH_NOTE ?= benchtime $(BENCHTIME)
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -timeout 40m . \
		| tee .bench-out.txt
	@grep -q '^PASS' .bench-out.txt  # tee masks go test's exit; a killed run must not record
	$(GO) run ./cmd/benchjson -in .bench-out.txt -out BENCH_sim.json \
		-label "$(BENCH_LABEL)" -note "$(BENCH_NOTE)"
	@rm -f .bench-out.txt

# modelcheck-smoke proves the parallel explorer's determinism contract on
# a real instance: the -json reports of a sequential and a 4-worker run
# must be byte-for-byte identical (counters, verdict, witness — nothing
# may depend on worker count). An audited run certifies the fingerprint
# memo collision-free on the same instance.
modelcheck-smoke:
	$(GO) run ./cmd/modelcheck -algo alg2 -ids 5,1,4,2 -json -workers 1 > .modelcheck-w1.json
	$(GO) run ./cmd/modelcheck -algo alg2 -ids 5,1,4,2 -json -workers 4 > .modelcheck-w4.json
	cmp .modelcheck-w1.json .modelcheck-w4.json
	$(GO) run ./cmd/modelcheck -algo alg2 -ids 5,1,4,2 -audit-collisions >/dev/null
	@echo "modelcheck reports identical at workers=1 and workers=4; audit clean"
	@rm -f .modelcheck-w1.json .modelcheck-w4.json

# fault-smoke proves the fault plane's determinism contract end to end:
# two ringsim runs with identical (seed, fault-seed, classes, budget) must
# produce byte-identical output — same outcome, same injection log — and
# the fault-bearing packages must be race-clean.
fault-smoke:
	$(GO) run ./cmd/ringsim -algo alg1 -ids 4,9,2,7 -sched random -seed 3 \
		-faults all -fault-seed 11 -fault-budget 4 > .fault-run-a.txt
	$(GO) run ./cmd/ringsim -algo alg1 -ids 4,9,2,7 -sched random -seed 3 \
		-faults all -fault-seed 11 -fault-budget 4 > .fault-run-b.txt
	cmp .fault-run-a.txt .fault-run-b.txt
	$(GO) test -race ./internal/fault/... ./internal/live/...
	@echo "faulted replays byte-identical; fault and live packages race-clean"
	@rm -f .fault-run-a.txt .fault-run-b.txt

# fault-verify-smoke proves the fault-aware explorer's determinism
# contract: a finite exhaustive census (loss+crash+corrupt, the
# conserving classes) and a budget-aborted divergent census (dup) must
# both emit byte-identical -json reports at workers=1 and workers=4 —
# partial reports included, via the canonical sequential fallback — and
# the crash-then-heal supervisor must be race-clean.
fault-verify-smoke:
	$(GO) run ./cmd/modelcheck -algo alg2 -ids 3,1,2 -faults loss,crash,corrupt \
		-json -workers 1 > .fverify-w1.json
	$(GO) run ./cmd/modelcheck -algo alg2 -ids 3,1,2 -faults loss,crash,corrupt \
		-json -workers 4 > .fverify-w4.json
	cmp .fverify-w1.json .fverify-w4.json
	-$(GO) run ./cmd/modelcheck -algo alg2 -ids 3,1,2 -faults dup -max-states 20000 \
		-json -workers 1 > .fverify-div-w1.json
	-$(GO) run ./cmd/modelcheck -algo alg2 -ids 3,1,2 -faults dup -max-states 20000 \
		-json -workers 4 > .fverify-div-w4.json
	cmp .fverify-div-w1.json .fverify-div-w4.json
	grep -q '"ok": false' .fverify-div-w1.json  # the divergent census must abort on budget
	$(GO) test -race -run 'TestSupervisor|TestStallReport|TestErrTimeout' ./internal/live/
	@echo "fault-aware reports identical at workers=1 and workers=4 (finite and budget-aborted); supervisor race-clean"
	@rm -f .fverify-w1.json .fverify-w4.json .fverify-div-w1.json .fverify-div-w4.json

# shard-smoke proves the sharded engine's determinism contract end to
# end: two parallel runs with identical parameters — randomized
# scheduler, geometric IDs, flat bank, 7 arcs — must produce
# byte-identical output regardless of how the OS interleaves the arc
# workers, and the sharded/flat paths must be race-clean. The
# event-level equivalence against the sequential engine is the
# TestShardedMatchesSequentialReference differential inside the race
# run.
shard-smoke:
	$(GO) run ./cmd/ringsim -algo alg1 -n 20000 -idgen geometric -shards 7 -flat \
		-sched random -seed 3 2>/dev/null > .shard-run-a.txt
	$(GO) run ./cmd/ringsim -algo alg1 -n 20000 -idgen geometric -shards 7 -flat \
		-sched random -seed 3 2>/dev/null > .shard-run-b.txt
	cmp .shard-run-a.txt .shard-run-b.txt
	$(GO) test -race -run 'Shard|Flat' ./internal/sim/
	@echo "sharded replays byte-identical; sharded/flat paths race-clean"
	@rm -f .shard-run-a.txt .shard-run-b.txt

# batch-smoke proves the batch fast path's determinism contract: two
# identical batched runs — Heaviest scheduler, consecutive IDs, flat
# bank, sequential engine — must be byte-identical (including the
# transition/coalescing counts), and the batch path must be race-clean.
# The event-level equivalence against the run-expanded sequential
# reference is the TestBatchedMatchesExpandedReference differential
# inside the race run.
batch-smoke:
	$(GO) run ./cmd/ringsim -algo alg2 -n 4096 -idgen consecutive -flat -batch \
		-sched heaviest -seed 3 2>/dev/null > .batch-run-a.txt
	$(GO) run ./cmd/ringsim -algo alg2 -n 4096 -idgen consecutive -flat -batch \
		-sched heaviest -seed 3 2>/dev/null > .batch-run-b.txt
	cmp .batch-run-a.txt .batch-run-b.txt
	$(GO) test -race -run 'Batch' ./internal/sim/
	@echo "batched replays byte-identical; batch path race-clean"
	@rm -f .batch-run-a.txt .batch-run-b.txt

# fuzz-smoke gives every fuzz target a short budget; used by CI.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzAlg2Election -fuzztime=10s ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzAlg3Election -fuzztime=10s ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzChunkAssembler -fuzztime=10s ./internal/defective
	$(GO) test -run='^$$' -fuzz=FuzzFrameCodec -fuzztime=10s ./internal/defective
