// Command solitude explores the lower-bound machinery of Section 6: it
// extracts solitude patterns (Definition 21), verifies their pairwise
// uniqueness (Lemma 22), and tabulates the n·floor(log2(k/n)) bound of
// Theorem 20 against the measured cost of Algorithm 2.
//
// Usage:
//
//	solitude -max 64           # print patterns for IDs 1..64 and verify uniqueness
//	solitude -max 4096 -quiet  # verify a large range without printing patterns
//	solitude -bound -n 8       # tabulate the Theorem 20 bound for a ring size
package main

import (
	"flag"
	"fmt"
	"os"

	"coleader/internal/core"
	"coleader/internal/lowerbound"
	"coleader/internal/node"
	"coleader/internal/pulse"
)

func main() {
	max := flag.Uint64("max", 32, "largest ID to extract a solitude pattern for")
	quiet := flag.Bool("quiet", false, "suppress per-ID pattern output")
	bound := flag.Bool("bound", false, "print the Theorem 20 lower-bound table instead of patterns")
	n := flag.Int("n", 4, "ring size for the -bound table")
	flag.Parse()

	if *bound {
		fmt.Printf("Theorem 20: any content-oblivious election on n=%d sends >= n*floor(log2(k/n)) pulses\n", *n)
		fmt.Printf("%-12s %-14s %-22s\n", "k (IDs)", "lower bound", "Alg. 2 upper bound")
		for k := uint64(*n); k <= uint64(*n)<<16; k <<= 2 {
			fmt.Printf("%-12d %-14d %-22d\n",
				k, core.LowerBoundPulses(*n, k), core.PredictedAlg2Pulses(*n, k))
		}
		return
	}

	mk := func(id uint64) (node.PulseMachine, error) { return core.NewAlg2(id, pulse.Port1) }
	patterns, err := lowerbound.Patterns(mk, *max, 16*(*max)+1024)
	if err != nil {
		fmt.Fprintln(os.Stderr, "solitude:", err)
		os.Exit(1)
	}
	if !*quiet {
		for id := uint64(1); id <= *max; id++ {
			fmt.Printf("ID %4d: %s\n", id, patterns[id])
		}
	}
	minLen, err := lowerbound.VerifyUnique(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "solitude: LEMMA 22 VIOLATED:", err)
		os.Exit(1)
	}
	fmt.Printf("Lemma 22 verified: %d solitude patterns, all pairwise distinct (min length %d).\n",
		len(patterns), minLen)
	fmt.Printf("Max shared prefix: %d (pigeonhole floor for pairs: %d).\n",
		lowerbound.MaxSharedPrefix(patterns), core.LowerBoundPulses(2, *max)/2)
}
