// Command benchjson records `go test -bench` output into a BENCH_*.json
// regression file and compares labeled runs.
//
// Record a run (replacing any existing entry with the same label):
//
//	go test -run '^$' -bench . -benchmem . | benchjson -label post -out BENCH_sim.json
//
// Merge a partial run (e.g. one new benchmark) into an existing entry by
// benchmark name, keeping its other results:
//
//	go test -run '^$' -bench ExhaustiveFaults -benchmem . | benchjson -label post -merge -out BENCH_sim.json
//
// Compare two recorded runs:
//
//	benchjson -out BENCH_sim.json -compare pre,post -metric ns/op
//
// Gate a run against a baseline (exit 1 if ns/op or allocs/op regressed
// by more than the threshold percentage on any benchmark):
//
//	benchjson -out BENCH_sim.json -compare post,ci -threshold 300
//
// The file schema is internal/benchjson.File; EXPERIMENTS.md documents it.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"coleader/internal/benchjson"
)

func main() {
	in := flag.String("in", "", "bench output to parse (default stdin)")
	out := flag.String("out", "BENCH_sim.json", "regression file to update or compare within")
	label := flag.String("label", "", "label for the recorded run (e.g. pre, post)")
	note := flag.String("note", "", "free-form note stored with the run (benchtime, commit, ...)")
	compare := flag.String("compare", "", "compare two labels ('old,new') instead of recording")
	metric := flag.String("metric", "ns/op", "metric for -compare")
	threshold := flag.Float64("threshold", 0, "with -compare: fail if ns/op or allocs/op grew by more than this percentage")
	merge := flag.Bool("merge", false, "merge results into an existing entry by benchmark name instead of replacing the whole entry")
	flag.Parse()

	if err := run(*in, *out, *label, *note, *compare, *metric, *threshold, *merge); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out, label, note, compare, metric string, threshold float64, merge bool) error {
	if compare != "" {
		if merge {
			return errors.New("-merge only applies when recording")
		}
		return runCompare(out, compare, metric, threshold)
	}
	if threshold != 0 {
		return errors.New("-threshold only applies with -compare")
	}
	if label == "" {
		return errors.New("-label is required when recording")
	}

	var src io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	results, err := benchjson.Parse(src)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return errors.New("no benchmark result lines in input")
	}

	file, err := readFile(out)
	if err != nil {
		return err
	}
	e := benchjson.Entry{Label: label, Note: note, Results: results}
	if merge {
		file.Merge(e)
	} else {
		file.Record(e)
	}

	var buf bytes.Buffer
	if err := file.Encode(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %d benchmarks as %q in %s\n", len(results), label, out)
	return nil
}

func runCompare(out, compare, metric string, threshold float64) error {
	labels := strings.SplitN(compare, ",", 2)
	if len(labels) != 2 || labels[0] == "" || labels[1] == "" {
		return fmt.Errorf("-compare wants 'old,new', got %q", compare)
	}
	if threshold < 0 {
		return fmt.Errorf("-threshold must be non-negative, got %g", threshold)
	}
	file, err := readFile(out)
	if err != nil {
		return err
	}
	old, ok := file.Find(labels[0])
	if !ok {
		return fmt.Errorf("no entry labeled %q in %s", labels[0], out)
	}
	cur, ok := file.Find(labels[1])
	if !ok {
		return fmt.Errorf("no entry labeled %q in %s", labels[1], out)
	}
	for _, line := range benchjson.Speedup(old, cur, metric) {
		fmt.Println(line)
	}
	if threshold > 0 {
		bad := benchjson.Regressions(old, cur, threshold, []string{"ns/op", "allocs/op"})
		if len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintln(os.Stderr, "REGRESSION", line)
			}
			return fmt.Errorf("%d regression(s) beyond %g%% against %q", len(bad), threshold, labels[0])
		}
		fmt.Printf("no regressions beyond %g%% against %q\n", threshold, labels[0])
	}
	return nil
}

// readFile loads the regression file, treating a missing file as empty.
func readFile(path string) (*benchjson.File, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		data = nil
	} else if err != nil {
		return nil, err
	}
	return benchjson.Decode(bytes.NewReader(data))
}
