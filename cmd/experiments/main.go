// Command experiments regenerates every table of EXPERIMENTS.md: the
// empirical verification of each quantitative claim in "Content-Oblivious
// Leader Election on Rings" (Frei, Gelles, Ghazy, Nolin; DISC 2024).
//
// Usage:
//
//	experiments [-exp E1|E2|...|all] [-seed N] [-workers N] [-markdown]
//
// Independent-trial sweeps run on a worker pool (default GOMAXPROCS wide);
// per-trial seeds are split from the root seed and results reduce in
// trial-index order, so output is byte-identical at any -workers value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coleader/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (E1..E17 or 'all')")
	seed := flag.Int64("seed", 1, "root seed for all randomized components")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown instead of aligned text")
	csvOut := flag.Bool("csv", false, "emit CSV (one block per table) for external plotting")
	workers := flag.Int("workers", 0, "worker-pool width for independent-trial sweeps (0 = GOMAXPROCS); output is identical at any width")
	flag.Parse()
	experiments.SetWorkers(*workers)

	var todo []experiments.Experiment
	if strings.EqualFold(*exp, "all") {
		todo = experiments.All()
	} else {
		e, ok := experiments.Find(strings.ToUpper(*exp))
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (want E1..E17 or all)\n", *exp)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		tables, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case *csvOut:
			for _, t := range tables {
				fmt.Printf("# %s — %s\n%s\n", e.ID, t.Title, t.CSV())
			}
		case *markdown:
			fmt.Printf("### %s — %s\n\n", e.ID, e.Claim)
			for _, t := range tables {
				fmt.Println(t.Markdown())
			}
		default:
			fmt.Printf("=== %s — %s\n\n", e.ID, e.Claim)
			for _, t := range tables {
				fmt.Println(t)
			}
		}
		// Timing goes to stderr: stdout stays byte-identical run to run
		// (and at any -workers width), so table diffs are clean.
		if !*csvOut {
			fmt.Fprintf(os.Stderr, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
