package main

import (
	"fmt"
	"math/rand"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// runScale executes one election on the scale engines. With -shards it
// uses the sharded parallel engine — the mode that reaches 10^6-10^7
// node rings by splitting the ring into arcs. With -shards 0 it runs
// the sequential engine, which with -batch and -sched heaviest coalesces
// pulse runs into O(1) transitions and covers million-node rings on a
// single core. IDs come from -ids for small runs or from a generator
// for large ones; -flat switches the machine bank to the
// struct-of-arrays representation, the memory-lean configuration
// million-node runs want.
func runScale(algo, idsFlag, idgen string, n int, c float64,
	schedName string, seed int64, shards int, flat, batch bool) error {
	var ids []uint64
	if idsFlag != "" {
		parsed, err := parseIDs(idsFlag)
		if err != nil {
			return err
		}
		ids, n = parsed, len(parsed)
	} else {
		if n <= 0 {
			return fmt.Errorf("ring size must be positive (got -n %d)", n)
		}
		rng := rand.New(rand.NewSource(seed))
		switch idgen {
		case "consecutive":
			ids = ring.ConsecutiveIDs(n)
		case "geometric":
			// Geometric ID values: ID_max concentrates around
			// (c+2)·log2 n, so Algorithm 1 stabilizes after
			// Theta(n log n) pulses — the regime where million-node
			// rings are feasible. Duplicates are expected; Algorithm 1
			// tolerates them (every maximum-ID node ends up a leader).
			ids = make([]uint64, n)
			for i := range ids {
				ids[i] = 1 + uint64(core.SampleBitCount(rng, c))
			}
		case "alg4":
			// Algorithm 4's actual sampling: exponentially large IDs,
			// unique maximum w.h.p. — but ID_max is poly(n), so keep n
			// modest with the exact-complexity algorithms.
			ids = core.SampleIDs(rng, n, c)
		default:
			return fmt.Errorf("unknown -idgen %q (want consecutive | geometric | alg4)", idgen)
		}
	}
	if shards < 0 {
		return fmt.Errorf("-shards must be non-negative (got %d)", shards)
	}
	if shards > 0 && shards > n/2 {
		return fmt.Errorf("-shards %d too large for a %d-node ring: each arc needs at least two nodes (max %d)",
			shards, n, n/2)
	}
	topo, err := ring.Oriented(n)
	if err != nil {
		return err
	}

	// Build the machine bank once; both engines consume the same one.
	idMax := ring.MaxID(ids)
	var predicted uint64
	var bank node.FlatPulseMachine
	var ms []node.PulseMachine
	switch algo {
	case "alg1":
		predicted = core.PredictedAlg1Pulses(n, idMax)
		if flat {
			bank, err = core.NewFlatAlg1(topo, ids)
		} else {
			ms, err = core.Alg1Machines(topo, ids)
		}
	case "alg2":
		predicted = core.PredictedAlg2Pulses(n, idMax)
		if flat {
			bank, err = core.NewFlatAlg2(topo, ids)
		} else {
			ms, err = core.Alg2Machines(topo, ids)
		}
	case "alg3":
		predicted = core.PredictedAlg3Pulses(n, idMax, core.SchemeSuccessor)
		if flat {
			bank, err = core.NewFlatAlg3(n, ids, core.SchemeSuccessor)
		} else {
			ms, err = core.Alg3Machines(n, ids, core.SchemeSuccessor)
		}
	default:
		return fmt.Errorf("scale mode supports alg1|alg2|alg3, not %q", algo)
	}
	if err != nil {
		return err
	}

	var (
		res                sim.Result
		runErr             error
		transitions, multi uint64
	)
	if shards == 0 {
		sched, ok := sim.Stock(seed)[schedName]
		if !ok {
			return fmt.Errorf("unknown scheduler %q", schedName)
		}
		var opts []sim.Option[pulse.Pulse]
		if batch {
			opts = append(opts, sim.WithBatching())
		}
		var s *sim.Sim[pulse.Pulse]
		if flat {
			s, err = sim.NewFlat(topo, bank, sched, opts...)
		} else {
			s, err = sim.New(topo, ms, sched, opts...)
		}
		if err != nil {
			return err
		}
		fmt.Printf("sequential run: algo=%s n=%d idgen=%s id-max=%d sched=%s flat=%t batch=%t\n",
			algo, n, describeIDs(idsFlag, idgen), idMax, schedName, flat, batch)
		stop := watchWall()
		res, runErr = s.Run(4*predicted + 1024)
		stop()
		transitions, multi = s.RunsCoalesced()
	} else {
		mk, ok := sim.StockSharded(seed)[schedName]
		if !ok {
			return fmt.Errorf("unknown scheduler %q", schedName)
		}
		var opts []sim.ShardOption[pulse.Pulse]
		if batch {
			opts = append(opts, sim.WithShardBatching())
		}
		var s *sim.Sharded[pulse.Pulse]
		if flat {
			s, err = sim.NewShardedFlat(topo, bank, shards, mk, opts...)
		} else {
			s, err = sim.NewSharded(topo, ms, shards, mk, opts...)
		}
		if err != nil {
			return err
		}
		fmt.Printf("sharded run: algo=%s n=%d idgen=%s id-max=%d shards=%d sched=%s flat=%t batch=%t\n",
			algo, n, describeIDs(idsFlag, idgen), idMax, s.Shards(), schedName, flat, batch)
		stop := watchProgress(s, predicted, batch)
		res, runErr = s.Run(4*predicted + 1024)
		stop()
		transitions, multi = s.RunsCoalesced()
	}
	if runErr != nil {
		return runErr
	}
	if res.Leader >= 0 {
		fmt.Printf("leader: node %d (ID %d)\n", res.Leader, ids[res.Leader])
	} else {
		fmt.Printf("leader: none unique (%d nodes share the maximum ID)\n", len(res.Leaders))
	}
	fmt.Printf("pulses: %d total (%d cw, %d ccw)  [paper predicts %d]\n",
		res.Sent, res.SentCW, res.SentCCW, predicted)
	fmt.Printf("quiescent: %t   terminated: %t   steps: %d\n",
		res.Quiescent, res.AllTerminated, res.Steps)
	if batch {
		factor := float64(res.Delivered)
		if transitions > 0 {
			factor /= float64(transitions)
		}
		fmt.Printf("batch: %d transitions (%d multi-pulse) delivered %d pulses — %.1fx coalescing\n",
			transitions, multi, res.Delivered, factor)
	}
	return nil
}

func describeIDs(idsFlag, idgen string) string {
	if idsFlag != "" {
		return "explicit"
	}
	return idgen
}
