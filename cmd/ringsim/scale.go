package main

import (
	"fmt"
	"math/rand"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// runScale executes one election on the sharded parallel engine — the
// mode that reaches 10^6-10^7 node rings. IDs come from -ids for small
// runs or from a generator for large ones; -flat switches the machine
// bank to the struct-of-arrays representation, which is the memory-lean
// configuration million-node runs want.
func runScale(algo, idsFlag, idgen string, n int, c float64,
	schedName string, seed int64, shards int, flat bool) error {
	var ids []uint64
	if idsFlag != "" {
		parsed, err := parseIDs(idsFlag)
		if err != nil {
			return err
		}
		ids, n = parsed, len(parsed)
	} else {
		if n <= 0 {
			return fmt.Errorf("ring size must be positive (got -n %d)", n)
		}
		rng := rand.New(rand.NewSource(seed))
		switch idgen {
		case "consecutive":
			ids = ring.ConsecutiveIDs(n)
		case "geometric":
			// Geometric ID values: ID_max concentrates around
			// (c+2)·log2 n, so Algorithm 1 stabilizes after
			// Theta(n log n) pulses — the regime where million-node
			// rings are feasible. Duplicates are expected; Algorithm 1
			// tolerates them (every maximum-ID node ends up a leader).
			ids = make([]uint64, n)
			for i := range ids {
				ids[i] = 1 + uint64(core.SampleBitCount(rng, c))
			}
		case "alg4":
			// Algorithm 4's actual sampling: exponentially large IDs,
			// unique maximum w.h.p. — but ID_max is poly(n), so keep n
			// modest with the exact-complexity algorithms.
			ids = core.SampleIDs(rng, n, c)
		default:
			return fmt.Errorf("unknown -idgen %q (want consecutive | geometric | alg4)", idgen)
		}
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", shards)
	}
	if shards > n/2 {
		return fmt.Errorf("-shards %d too large for a %d-node ring: each arc needs at least two nodes (max %d)",
			shards, n, n/2)
	}
	mk, ok := sim.StockSharded(seed)[schedName]
	if !ok {
		return fmt.Errorf("unknown scheduler %q", schedName)
	}
	topo, err := ring.Oriented(n)
	if err != nil {
		return err
	}

	idMax := ring.MaxID(ids)
	var predicted uint64
	var s *sim.Sharded[pulse.Pulse]
	if flat {
		var bank node.FlatPulseMachine
		switch algo {
		case "alg1":
			bank, err = core.NewFlatAlg1(topo, ids)
			predicted = core.PredictedAlg1Pulses(n, idMax)
		case "alg2":
			bank, err = core.NewFlatAlg2(topo, ids)
			predicted = core.PredictedAlg2Pulses(n, idMax)
		case "alg3":
			bank, err = core.NewFlatAlg3(n, ids, core.SchemeSuccessor)
			predicted = core.PredictedAlg3Pulses(n, idMax, core.SchemeSuccessor)
		default:
			return fmt.Errorf("-shards supports alg1|alg2|alg3, not %q", algo)
		}
		if err != nil {
			return err
		}
		s, err = sim.NewShardedFlat(topo, bank, shards, mk)
	} else {
		var ms []node.PulseMachine
		switch algo {
		case "alg1":
			ms, err = core.Alg1Machines(topo, ids)
			predicted = core.PredictedAlg1Pulses(n, idMax)
		case "alg2":
			ms, err = core.Alg2Machines(topo, ids)
			predicted = core.PredictedAlg2Pulses(n, idMax)
		case "alg3":
			ms, err = core.Alg3Machines(n, ids, core.SchemeSuccessor)
			predicted = core.PredictedAlg3Pulses(n, idMax, core.SchemeSuccessor)
		default:
			return fmt.Errorf("-shards supports alg1|alg2|alg3, not %q", algo)
		}
		if err != nil {
			return err
		}
		s, err = sim.NewSharded(topo, ms, shards, mk)
	}
	if err != nil {
		return err
	}

	fmt.Printf("sharded run: algo=%s n=%d idgen=%s id-max=%d shards=%d sched=%s flat=%t\n",
		algo, n, describeIDs(idsFlag, idgen), idMax, s.Shards(), schedName, flat)
	stop := watchProgress(s, predicted)
	res, runErr := s.Run(4*predicted + 1024)
	stop()
	if runErr != nil {
		return runErr
	}
	if res.Leader >= 0 {
		fmt.Printf("leader: node %d (ID %d)\n", res.Leader, ids[res.Leader])
	} else {
		fmt.Printf("leader: none unique (%d nodes share the maximum ID)\n", len(res.Leaders))
	}
	fmt.Printf("pulses: %d total (%d cw, %d ccw)  [paper predicts %d]\n",
		res.Sent, res.SentCW, res.SentCCW, predicted)
	fmt.Printf("quiescent: %t   terminated: %t   steps: %d\n",
		res.Quiescent, res.AllTerminated, res.Steps)
	return nil
}

func describeIDs(idsFlag, idgen string) string {
	if idsFlag != "" {
		return "explicit"
	}
	return idgen
}
