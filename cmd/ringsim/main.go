// Command ringsim runs a single content-oblivious leader election and
// reports the outcome, optionally with a full pulse-level trace.
//
// Usage examples:
//
//	ringsim -algo alg2 -ids 4,9,2,7
//	ringsim -algo alg3 -ids 3,1,2 -flips 1,0,1 -sched ccw-first
//	ringsim -algo alg1 -ids 2,5,5 -trace
//	ringsim -algo anonymous -n 8 -c 2 -seed 7
//	ringsim -algo alg2 -ids 1,2,3 -live
//	ringsim -algo alg1 -ids 4,9,2,7 -faults corrupt -fault-budget 2
//	ringsim -algo alg1 -n 1000000 -idgen geometric -shards 8 -flat -sched canonical
//	ringsim -algo alg2 -n 1000000 -idgen consecutive -flat -batch -sched heaviest
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"coleader"
	"coleader/internal/core"
	"coleader/internal/fault"
	"coleader/internal/live"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/trace"
	"coleader/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringsim:", err)
		os.Exit(1)
	}
}

func run() error {
	algo := flag.String("algo", "alg2", "algorithm: alg1 | alg2 | alg3 | anonymous")
	idsFlag := flag.String("ids", "", "comma-separated node IDs in clockwise order (alg1/alg2/alg3)")
	flipsFlag := flag.String("flips", "", "comma-separated 0/1 port flips (alg3/anonymous; default oriented)")
	n := flag.Int("n", 8, "ring size (anonymous and -shards modes)")
	c := flag.Float64("c", 2, "Algorithm 4 reliability parameter (anonymous, -idgen geometric/alg4)")
	sched := flag.String("sched", "random", "scheduler: canonical | newest | random | roundrobin | ccw-first | cw-first | flaky | hashdelay | heaviest")
	seed := flag.Int64("seed", 1, "seed for randomized components")
	liveRun := flag.Bool("live", false, "run on the goroutine-per-node live runtime")
	doTrace := flag.Bool("trace", false, "print the full event trace (simulator only)")
	diagram := flag.Bool("diagram", false, "print an ASCII space-time diagram (simulator only)")
	jsonOut := flag.Bool("json", false, "with -trace: emit the event log as JSON")
	faults := flag.String("faults", "", "enable seeded fault injection: 'all' or a comma list of loss,dup,spurious,crash,restart,corrupt")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the fault schedule (default: -seed)")
	faultBudget := flag.Int("fault-budget", 1, "number of injections to schedule (with -faults)")
	faultTrigger := flag.String("fault-trigger", "local", "trigger mode for -faults: local (per-entity event ordinals) | window (ring-wide delivery ordinals)")
	heal := flag.String("heal", "", "with -live -faults: supervise crashes and revive nodes (checkpoint | init)")
	shards := flag.Int("shards", 0, "run the sharded parallel engine with this many ring arcs (0 = sequential scale engine with -flat/-batch, else classic modes)")
	flat := flag.Bool("flat", false, "use the struct-of-arrays machine bank (scale mode)")
	batch := flag.Bool("batch", false, "coalesce pulse runs into O(1) batch transitions (scale mode; best with -sched heaviest)")
	idgen := flag.String("idgen", "consecutive", "ID generation for scale-mode runs without -ids: consecutive | geometric | alg4")
	flag.Parse()

	// -shards, -flat, and -batch all select scale mode: the engines that
	// reach million-node rings. -shards 0 there means the sequential
	// engine, whose -batch fast path does the run coalescing measured in
	// EXPERIMENTS.md E16.
	if *shards != 0 || *flat || *batch {
		if *liveRun || *doTrace || *diagram || *faults != "" || *flipsFlag != "" {
			return fmt.Errorf("scale mode (-shards/-flat/-batch) does not combine with -live/-trace/-diagram/-faults/-flips")
		}
		return runScale(*algo, *idsFlag, *idgen, *n, *c, *sched, *seed, *shards, *flat, *batch)
	}

	if *faults != "" {
		if *doTrace || *diagram {
			return fmt.Errorf("-faults does not combine with -trace/-diagram")
		}
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		var trig fault.TriggerMode
		switch *faultTrigger {
		case "local":
			trig = fault.TriggerLocal
		case "window":
			trig = fault.TriggerWindow
		default:
			return fmt.Errorf("unknown -fault-trigger %q (want local or window)", *faultTrigger)
		}
		if *heal != "" && !*liveRun {
			return fmt.Errorf("-heal requires -live (the simulator has no goroutines to supervise)")
		}
		return runFaulted(*algo, *idsFlag, *flipsFlag, *sched, *seed,
			*faults, fseed, *faultBudget, trig, *liveRun, *heal)
	}
	if *heal != "" {
		return fmt.Errorf("-heal requires -faults (there is nothing to crash without a fault plane)")
	}

	opts := []coleader.Option{
		coleader.WithSeed(*seed),
		coleader.WithScheduler(coleader.SchedulerName(*sched)),
	}
	if *liveRun {
		opts = append(opts, coleader.WithLiveRuntime())
	}

	var flips []bool
	if *flipsFlag != "" {
		for _, f := range strings.Split(*flipsFlag, ",") {
			flips = append(flips, strings.TrimSpace(f) == "1")
		}
		opts = append(opts, coleader.WithPortFlips(flips...))
	}

	if *doTrace || *diagram {
		if *liveRun {
			return fmt.Errorf("-trace/-diagram require the deterministic simulator (drop -live)")
		}
		return runTraced(*algo, *idsFlag, flips, *sched, *seed, *diagram, *jsonOut)
	}

	var (
		res coleader.Result
		err error
	)
	switch *algo {
	case "alg1":
		ids, perr := parseIDs(*idsFlag)
		if perr != nil {
			return perr
		}
		res, err = coleader.ElectOrientedStabilizing(ids, opts...)
	case "alg2":
		ids, perr := parseIDs(*idsFlag)
		if perr != nil {
			return perr
		}
		res, err = coleader.ElectOriented(ids, opts...)
	case "alg3":
		ids, perr := parseIDs(*idsFlag)
		if perr != nil {
			return perr
		}
		res, err = coleader.ElectNonOriented(ids, opts...)
	case "anonymous":
		res, err = coleader.ElectAnonymous(*n, *c, opts...)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	report(res)
	return nil
}

func parseIDs(s string) ([]uint64, error) {
	if s == "" {
		return nil, fmt.Errorf("this algorithm needs -ids (e.g. -ids 4,9,2,7)")
	}
	var ids []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad ID %q: %w", part, err)
		}
		ids = append(ids, v)
	}
	return ids, nil
}

func report(res coleader.Result) {
	if res.Leader >= 0 {
		fmt.Printf("leader: node %d (ID %d)\n", res.Leader, res.LeaderID)
	} else {
		fmt.Printf("leader: none unique (leaders among states below)\n")
	}
	fmt.Printf("pulses: %d total (%d cw, %d ccw)", res.Pulses, res.PulsesCW, res.PulsesCCW)
	if res.Predicted > 0 {
		fmt.Printf("  [paper predicts %d]", res.Predicted)
	}
	fmt.Println()
	fmt.Printf("quiescent: %t   terminated: %t\n", res.Quiescent, res.Terminated)
	if len(res.TerminationOrder) > 0 {
		fmt.Printf("termination order: %v\n", res.TerminationOrder)
	}
	for k, nd := range res.Nodes {
		fmt.Printf("  node %d: ID=%d state=%v", k, nd.ID, nd.State)
		if nd.HasOrientation {
			fmt.Printf(" cw-port=%v", nd.CWPort)
		}
		if nd.Terminated {
			fmt.Printf(" terminated")
		}
		fmt.Println()
	}
}

// buildRing constructs the topology and machines for one of the traceable
// deterministic algorithms.
func buildRing(algo, idsFlag string, flips []bool) (ring.Topology, []node.PulseMachine, uint64, error) {
	ids, err := parseIDs(idsFlag)
	if err != nil {
		return ring.Topology{}, nil, 0, err
	}
	var topo ring.Topology
	if flips != nil {
		topo, err = ring.NonOriented(flips)
	} else {
		topo, err = ring.Oriented(len(ids))
	}
	if err != nil {
		return ring.Topology{}, nil, 0, err
	}
	var ms []node.PulseMachine
	var predicted uint64
	switch algo {
	case "alg1":
		ms, err = core.Alg1Machines(topo, ids)
		predicted = core.PredictedAlg1Pulses(len(ids), ring.MaxID(ids))
	case "alg2":
		ms, err = core.Alg2Machines(topo, ids)
		predicted = core.PredictedAlg2Pulses(len(ids), ring.MaxID(ids))
	case "alg3":
		ms, err = core.Alg3Machines(len(ids), ids, core.SchemeSuccessor)
		predicted = core.PredictedAlg3Pulses(len(ids), ring.MaxID(ids), core.SchemeSuccessor)
	default:
		return ring.Topology{}, nil, 0, fmt.Errorf("this mode supports alg1|alg2|alg3, not %q", algo)
	}
	if err != nil {
		return ring.Topology{}, nil, 0, err
	}
	return topo, ms, predicted, nil
}

// runFaulted executes one election under seeded fault injection and prints
// the outcome plus the complete injection log. A faulted run that breaks —
// stalls, circulates forever, or violates the termination discipline — is
// the experiment's result, not a CLI failure, so it is reported inline and
// the command still exits 0. Simulator runs are fully deterministic in
// (-seed, -fault-seed, -faults, -fault-budget); -live runs are not.
func runFaulted(algo, idsFlag, flipsFlag, schedName string, seed int64,
	faultSpec string, faultSeed int64, budget int, trig fault.TriggerMode,
	liveRun bool, heal string) error {
	classes, err := fault.ParseSet(faultSpec)
	if err != nil {
		return err
	}
	var flips []bool
	if flipsFlag != "" {
		for _, f := range strings.Split(flipsFlag, ",") {
			flips = append(flips, strings.TrimSpace(f) == "1")
		}
	}
	topo, ms, predicted, err := buildRing(algo, idsFlag, flips)
	if err != nil {
		return err
	}
	plane, err := fault.New(faultSeed, fault.Config{
		Nodes:   topo.N(),
		Classes: classes,
		Budget:  budget,
		Trigger: trig,
	})
	if err != nil {
		return err
	}

	trigName := "local"
	if trig == fault.TriggerWindow {
		trigName = "window"
	}
	fmt.Printf("fault plane: classes=%s budget=%d seed=%d trigger=%s\n", classes, budget, faultSeed, trigName)
	var (
		sent, sentCW, sentCCW uint64
		leader                int
		quiescent             bool
		runErr                error
	)
	if liveRun {
		opts := []live.Option{live.WithFaultPlane(plane)}
		switch heal {
		case "":
		case "checkpoint":
			opts = append(opts, live.WithSupervisor(live.RestoreCheckpoint))
		case "init":
			opts = append(opts, live.WithSupervisor(live.RestoreInit))
		default:
			return fmt.Errorf("unknown -heal policy %q (want checkpoint or init)", heal)
		}
		res, err := live.Run(topo, ms, opts...)
		sent, sentCW, sentCCW = res.Sent, res.SentCW, res.SentCCW
		leader, quiescent, runErr = res.Leader, res.Quiescent, err
		if len(res.Heals) > 0 {
			fmt.Printf("supervisor heals: %v\n", res.Heals)
		}
		for _, note := range res.Notes {
			fmt.Printf("note [%s]: %s\n", note.Code, note.Detail)
		}
	} else {
		sched, ok := sim.Stock(seed)[schedName]
		if !ok {
			return fmt.Errorf("unknown scheduler %q", schedName)
		}
		s, err := sim.New(topo, ms, sched, sim.WithFaultPlane[pulse.Pulse](plane))
		if err != nil {
			return err
		}
		res, err := s.Run(4*predicted + 1024)
		sent, sentCW, sentCCW = res.Sent, res.SentCW, res.SentCCW
		leader, quiescent, runErr = res.Leader, res.Quiescent, err
	}

	if runErr != nil {
		fmt.Printf("outcome: %v\n", runErr)
		var stall *live.StallError
		if errors.As(runErr, &stall) {
			for _, ns := range stall.Report.Nodes {
				fmt.Printf("  stalled node %d: queued=%v crashed=%t\n", ns.Node, ns.Queued, ns.Crashed)
			}
		}
	} else if leader >= 0 {
		fmt.Printf("outcome: leader node %d, quiescent=%t\n", leader, quiescent)
	} else {
		fmt.Printf("outcome: no unique leader, quiescent=%t\n", quiescent)
	}
	fmt.Printf("pulses: %d total (%d cw, %d ccw)  [fault-free run predicts %d]\n",
		sent, sentCW, sentCCW, predicted)
	fmt.Printf("injections: %d scheduled, %d fired\n", len(plane.Log()), plane.Fired())
	fmt.Print(fault.FormatLog(plane.Log()))
	return nil
}

// runTraced re-runs on the simulator with a recorder attached and prints
// the event log or a space-time diagram. It goes through the internal
// packages directly because tracing is a development feature.
func runTraced(algo, idsFlag string, flips []bool, schedName string, seed int64, diagram, jsonOut bool) error {
	topo, ms, predicted, err := buildRing(algo, idsFlag, flips)
	if err != nil {
		return err
	}
	sched, ok := sim.Stock(seed)[schedName]
	if !ok {
		return fmt.Errorf("unknown scheduler %q", schedName)
	}
	rec := &trace.Recorder{}
	s, err := sim.New(topo, ms, sched, sim.WithObserver[pulse.Pulse](rec))
	if err != nil {
		return err
	}
	res, err := s.Run(4*predicted + 1024)
	if err != nil {
		return err
	}
	switch {
	case diagram:
		fmt.Print(viz.SpaceTime(rec.Events, topo.N()))
		fmt.Println()
		fmt.Print(viz.ChannelLoad(rec.Events, topo.N()))
	case jsonOut:
		doc, err := rec.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(doc))
	default:
		fmt.Print(rec.String())
	}
	fmt.Printf("--- %d events, %d pulses (predicted %d), leader %d\n",
		len(rec.Events), res.Sent, predicted, res.Leader)
	return nil
}
