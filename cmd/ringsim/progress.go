package main

// Wall-clock reporting for long sharded runs lives in this file alone:
// it is the one place in cmd/ringsim allowed to read real time (see
// internal/lint policy TimeExemptFiles). Simulation logic never does.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"coleader/internal/pulse"
	"coleader/internal/sim"
)

// progressEvery paces the stderr progress line of a sharded run.
const progressEvery = 5 * time.Second

// watchProgress reports a running sharded election to stderr every few
// seconds — delivered/sent pulses against the predicted total, completed
// epochs, runs coalesced (batch mode), and resident set size — and
// prints one final timing line when the returned stop function runs.
// Sharded.Progress and Sharded.ProgressRuns are the engine's only
// concurrency-safe accessors, so the reporter touches nothing else.
func watchProgress(s *sim.Sharded[pulse.Pulse], predicted uint64, batch bool) (stop func()) {
	start := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(progressEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				delivered, sent, epochs := s.Progress()
				line := fmt.Sprintf("ringsim: %s  delivered=%d/%d sent=%d epochs=%d",
					time.Since(start).Round(time.Second), delivered, predicted, sent, epochs)
				if batch {
					runs, coalesced := s.ProgressRuns()
					line += fmt.Sprintf(" runs=%d coalesced=%d", runs, coalesced)
				}
				fmt.Fprintf(os.Stderr, "%s rss=%dMB\n", line, rssMB())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		delivered, _, epochs := s.Progress()
		fmt.Fprintf(os.Stderr, "ringsim: finished in %s  delivered=%d epochs=%d peak-rss=%dMB\n",
			time.Since(start).Round(time.Millisecond), delivered, epochs, rssMB())
	}
}

// watchWall is the sequential-engine sibling of watchProgress. The
// sequential Sim has no concurrency-safe counters — its hot loop stays
// free of atomics — so the ticker reports only what is safe from
// another goroutine: elapsed wall time and resident set size. Delivery
// and coalescing totals appear in the caller's end-of-run summary.
func watchWall() (stop func()) {
	start := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(progressEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintf(os.Stderr, "ringsim: %s  rss=%dMB\n",
					time.Since(start).Round(time.Second), rssMB())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		fmt.Fprintf(os.Stderr, "ringsim: finished in %s  peak-rss=%dMB\n",
			time.Since(start).Round(time.Millisecond), rssMB())
	}
}

// rssMB returns the process's current resident set size in MiB, read
// from /proc/self/status; 0 where the file or field is unavailable.
func rssMB() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
