// Command figures renders the repository's cost curves as ASCII charts —
// the "figures" companion to cmd/experiments' tables: the Theta(n·ID_max)
// law bracketed by Theorem 4's lower bound (F1), the content-oblivious
// penalty against five classical algorithms (F2), the anonymous sampler's
// ID_max distribution behind Lemma 18 (F3), and the universal transport's
// chunk-width trade-off (F4).
//
// Usage:
//
//	figures [-fig F1|F2|F3|F4|all] [-seed N]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"coleader/internal/baseline"
	"coleader/internal/core"
	"coleader/internal/defective"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/viz"
)

func main() {
	fig := flag.String("fig", "all", "figure to render (F1..F4 or all)")
	seed := flag.Int64("seed", 1, "seed for randomized components")
	flag.Parse()

	figs := map[string]func(int64) (string, error){
		"F1": f1, "F2": f2, "F3": f3, "F4": f4,
	}
	order := []string{"F1", "F2", "F3", "F4"}
	want := strings.ToUpper(*fig)
	if want != "ALL" {
		if _, ok := figs[want]; !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		order = []string{want}
	}
	for _, id := range order {
		out, err := figs[id](*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}

// f1: Algorithm 2's measured cost against Theorem 4's lower bound and
// Theorem 1's exact upper bound, as a function of ID_max at fixed n.
func f1(seed int64) (string, error) {
	const n = 8
	rng := rand.New(rand.NewSource(seed))
	var xs []string
	lower := viz.Series{Name: "Theorem 4 lower bound n*floor(log2(ID_max/n))"}
	meas := viz.Series{Name: "Algorithm 2 measured pulses"}
	upper := viz.Series{Name: "Theorem 1 upper bound n(2*ID_max+1)"}
	for _, factor := range []uint64{1, 4, 16, 64, 256, 1024} {
		idMax := uint64(n) * factor
		ids, err := ring.SparseIDs(n, idMax, rng)
		if err != nil {
			return "", err
		}
		maxIdx, _ := ring.MaxIndex(ids)
		ids[maxIdx] = idMax
		topo, err := ring.Oriented(n)
		if err != nil {
			return "", err
		}
		ms, err := core.Alg2Machines(topo, ids)
		if err != nil {
			return "", err
		}
		s, err := sim.New(topo, ms, sim.NewRandom(seed))
		if err != nil {
			return "", err
		}
		pred := core.PredictedAlg2Pulses(n, idMax)
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			return "", err
		}
		xs = append(xs, fmt.Sprint(idMax))
		lower.Ys = append(lower.Ys, float64(core.LowerBoundPulses(n, idMax)))
		meas.Ys = append(meas.Ys, float64(res.Sent))
		upper.Ys = append(upper.Ys, float64(pred))
	}
	// Measured is plotted last: it coincides with the upper bound on every
	// point (Theorem 1 is exact), and later series win grid collisions, so
	// the chart shows the measurements sitting exactly on the bound.
	return viz.LinePlot(
		fmt.Sprintf("F1 — pulses vs ID_max at n=%d: the Theta(n*ID_max) law between its bounds", n),
		xs, []viz.Series{lower, upper, meas}, 16, true), nil
}

// f2: messages to elect vs ring size for the five classical baselines and
// Algorithm 2.
func f2(seed int64) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	var xs []string
	series := make([]viz.Series, 0, 6)
	for _, a := range baseline.Algorithms() {
		series = append(series, viz.Series{Name: string(a) + " (content)"})
	}
	series = append(series, viz.Series{Name: "alg2 (pulses, ID_max=4n)"})
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		xs = append(xs, fmt.Sprint(n))
		idMax := uint64(4 * n)
		ids, err := ring.SparseIDs(n, idMax, rng)
		if err != nil {
			return "", err
		}
		maxIdx, _ := ring.MaxIndex(ids)
		ids[maxIdx] = idMax
		topo, err := ring.Oriented(n)
		if err != nil {
			return "", err
		}
		for i, a := range baseline.Algorithms() {
			res, err := baseline.Run(a, topo, ids, sim.NewRandom(seed), 1<<22)
			if err != nil {
				return "", err
			}
			series[i].Ys = append(series[i].Ys, float64(res.Sent))
		}
		ms, err := core.Alg2Machines(topo, ids)
		if err != nil {
			return "", err
		}
		s, err := sim.New(topo, ms, sim.NewRandom(seed))
		if err != nil {
			return "", err
		}
		pred := core.PredictedAlg2Pulses(n, idMax)
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			return "", err
		}
		series[len(series)-1].Ys = append(series[len(series)-1].Ys, float64(res.Sent))
	}
	return viz.LinePlot(
		"F2 — messages to elect vs ring size: the price of content-obliviousness",
		xs, series, 16, true), nil
}

// f3: distribution of ID_max from Algorithm 4's sampler (log2 buckets).
func f3(seed int64) (string, error) {
	const n, c, trials = 32, 1.0, 20000
	rng := rand.New(rand.NewSource(seed))
	const buckets = 14
	counts := make([]int, buckets)
	labels := make([]string, buckets)
	for i := range labels {
		if i == buckets-1 {
			labels[i] = fmt.Sprintf("2^%d+", 2*i)
		} else {
			labels[i] = fmt.Sprintf("2^%d..2^%d", 2*i, 2*i+2)
		}
	}
	for t := 0; t < trials; t++ {
		m := ring.MaxID(core.SampleIDs(rng, n, c))
		b := int(math.Log2(float64(m))) / 2
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	return viz.Histogram(
		fmt.Sprintf("F3 — Lemma 18: distribution of ID_max over %d anonymous rings (n=%d, c=%v)", trials, n, c),
		labels, counts, 50), nil
}

// f4: the universal transport's chunk-width trade-off (E12 as a curve).
func f4(seed int64) (string, error) {
	const n = 5
	ids := ring.PermutedIDs(n, rand.New(rand.NewSource(seed)))
	var xs []string
	cost := viz.Series{Name: "total pulses (Chang-Roberts over the layer)"}
	frames := viz.Series{Name: "frames observed"}
	for _, bits := range []uint{1, 2, 4, 8, 12, 16} {
		topo, err := ring.Oriented(n)
		if err != nil {
			return "", err
		}
		dec := func(v uint64) (baseline.Msg, error) { return baseline.UnpackMsg(v) }
		ms := make([]node.PulseMachine, n)
		var first *defective.Node
		for k := 0; k < n; k++ {
			inner, err := baseline.New(baseline.AlgChangRoberts, ids[k], pulse.Port1)
			if err != nil {
				return "", err
			}
			ad, err := defective.NewAdapterBits[baseline.Msg](inner, baseline.MustPackMsg, dec, bits)
			if err != nil {
				return "", err
			}
			dn, err := defective.NewNode(k == 0, topo.CWPort(k), ad)
			if err != nil {
				return "", err
			}
			if k == 0 {
				first = dn
			}
			ms[k] = dn
		}
		s, err := sim.New(topo, ms, sim.NewRandom(seed+int64(bits)))
		if err != nil {
			return "", err
		}
		res, err := s.Run(1 << 26)
		if err != nil {
			return "", err
		}
		xs = append(xs, fmt.Sprint(bits))
		cost.Ys = append(cost.Ys, float64(res.Sent))
		frames.Ys = append(frames.Ys, float64(first.FramesObserved()))
	}
	return viz.LinePlot(
		fmt.Sprintf("F4 — universal transport: chunk width vs cost (n=%d)", n),
		xs, []viz.Series{cost, frames}, 14, true), nil
}
