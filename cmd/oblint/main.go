// Command oblint is the model-invariant static analyzer for this
// repository. It mechanically enforces the discipline the paper's results
// rest on — content-obliviousness (with payload taint followed across
// function and package boundaries), determinism, layering, atomic
// hygiene, non-blocking handlers, machine state-encoding integrity (the
// state-* snapshot/restore/key field-parity family), and concurrency
// integrity (the conc-* goroutine-leak / channel-direction / lock-order
// family) — across every package in the module. The interprocedural
// checks run on a devirtualized call graph: calls through interfaces and
// func values resolve to every live module implementation or bound
// function, and each dynamic call site's resolution outcome (resolved /
// over-approximated / unresolvable) is counted in the -json "devirt"
// object and the -cache-stats summary. See internal/lint for the checks
// and DESIGN.md ("Enforced model invariants") for the policy.
//
// Usage:
//
//	go run ./cmd/oblint ./...                    # lint the whole module
//	go run ./cmd/oblint -json ./...              # machine-readable findings
//	go run ./cmd/oblint -list-checks             # checks with their invariants
//	go run ./cmd/oblint -check det-time,layer-dag ./...
//	go run ./cmd/oblint -baseline findings.json ./...   # fail on NEW findings only
//
// Whole-module runs go through a content-hash analysis cache (disable with
// -cache=false, relocate with -cache-dir): a warm run replays per-package
// verdicts without type-checking anything and finishes in tens of
// milliseconds. The per-package keys cover the transitive module-internal
// import closure, which also keys the interprocedural facts (call graph,
// taint, state coverage) soundly. Explicit package arguments always run
// uncached.
//
// -json output carries a schemaVersion field and findings sorted by
// (file, line, check), so two runs over the same tree are byte-identical
// and snapshots diff stably in CI.
//
// Exit status: 0 when clean, 1 when findings exist (with -baseline: when
// NEW findings exist), 2 on load errors. Suppressed findings
// (//oblint:allow) never fail the run but are counted on stderr and
// included in -json output so CI can diff them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"coleader/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list enforced check names and exit")
	listChecks := flag.Bool("list-checks", false, "list every check with its one-line invariant and exit")
	only := flag.String("check", "", "comma-separated subset of checks to run (see -list-checks)")
	dir := flag.String("C", ".", "directory inside the target module")
	typeErrs := flag.Bool("typeerrors", false, "also print soft type-check errors")
	baseline := flag.String("baseline", "", "JSON findings file to diff against; only NEW findings fail")
	oblivious := flag.String("oblivious", "", "comma-separated extra packages to treat as content-oblivious (fixture/testing aid)")
	useCache := flag.Bool("cache", true, "use the content-hash analysis cache for whole-module runs")
	cacheDir := flag.String("cache-dir", "", "cache directory (default: user cache dir)")
	cacheStats := flag.Bool("cache-stats", false, "report cache hits/misses on stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: oblint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Println(c)
		}
		return
	}
	if *listChecks {
		for _, c := range lint.AllChecks() {
			fmt.Printf("%-18s %s\n", c, lint.CheckDoc(c))
		}
		return
	}

	root, module, err := lint.FindModule(*dir)
	if err != nil {
		fatal(err)
	}

	cfg := lint.DefaultConfig()
	for _, p := range strings.Split(*oblivious, ",") {
		if p = strings.TrimSpace(p); p != "" {
			cfg.Oblivious = append(cfg.Oblivious, p)
		}
	}
	if *only != "" {
		known := make(map[string]bool)
		for _, c := range lint.AllChecks() {
			known[c] = true
		}
		for _, c := range strings.Split(*only, ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			if !known[c] {
				fatal(fmt.Errorf("unknown check %q (see -list-checks); a typo here would silently disable the gate", c))
			}
			cfg.Checks = append(cfg.Checks, c)
		}
		if len(cfg.Checks) == 0 {
			fatal(fmt.Errorf("-check %q names no checks", *only))
		}
	}

	// Package arguments: "./..." (or none) means the whole module;
	// anything else is a module-relative package list.
	args := flag.Args()
	all := len(args) == 0
	for _, a := range args {
		if a == "./..." || a == "..." || a == module+"/..." {
			all = true
		}
	}

	var res lint.Result
	var softErrs []string
	switch {
	case all && *useCache:
		dir := *cacheDir
		if dir == "" {
			dir = defaultCacheDir(module)
		}
		var stats lint.CacheStats
		res, softErrs, stats, err = lint.RunCached(root, module, cfg, dir)
		if err != nil {
			fatal(err)
		}
		if *cacheStats {
			fmt.Fprintf(os.Stderr, "oblint: cache %d hit(s), %d miss(es)\n", stats.Hits, stats.Misses)
			fmt.Fprintf(os.Stderr, "oblint: devirt %d resolved, %d over-approx, %d unresolvable dynamic call site(s)\n",
				res.Devirt.ResolvedSites, res.Devirt.OverApproxSites, res.Devirt.UnresolvableSites)
		}
	default:
		loader := lint.NewLoader(root, module)
		var pkgs []*lint.Package
		if all {
			pkgs, err = loader.LoadAll()
			if err != nil {
				fatal(err)
			}
		} else {
			for _, a := range args {
				ip := strings.TrimPrefix(filepath.ToSlash(a), "./")
				if ip != module && !strings.HasPrefix(ip, module+"/") {
					ip = module + "/" + ip
				}
				p, err := loader.Load(ip)
				if err != nil {
					fatal(err)
				}
				pkgs = append(pkgs, p)
			}
		}
		runner := &lint.Runner{Config: cfg, Fset: loader.Fset, Resolve: loader.Load}
		if all {
			paths := make([]string, len(pkgs))
			for i, p := range pkgs {
				paths[i] = p.Path
			}
			// Whole-module runs index every package for devirtualization;
			// explicit package arguments leave List unset, so the index
			// covers only the packages the run actually touches.
			runner.List = func() []string { return paths }
		}
		res = runner.Run(pkgs)
		for _, p := range pkgs {
			for _, e := range p.TypeErrors {
				softErrs = append(softErrs, fmt.Sprintf("typecheck %s: %v", p.Path, e))
			}
		}
	}

	if *typeErrs {
		for _, line := range softErrs {
			fmt.Fprintln(os.Stderr, line)
		}
	}

	rel := relativize(res, root)
	rel.SchemaVersion = lint.FindingsSchemaVersion
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rel); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range rel.Findings {
			fmt.Println(f)
		}
		if n := len(res.Suppressed); n > 0 {
			fmt.Fprintf(os.Stderr, "oblint: %d finding(s) suppressed by //oblint:allow\n", n)
		}
	}

	if *baseline != "" {
		exitBaseline(rel, *baseline, *jsonOut)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "oblint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}

// exitBaseline diffs the (relativized) result against a committed baseline
// and terminates the process: only findings absent from the baseline fail
// the run, the shape CI lint gates use to block new debt while old debt is
// burned down separately.
func exitBaseline(cur lint.Result, path string, jsonOut bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("baseline: %w", err))
	}
	var base lint.Result
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("baseline %s: %w", path, err))
	}
	news, resolved := lint.DiffBaseline(cur, base)
	if len(resolved) > 0 {
		fmt.Fprintf(os.Stderr, "oblint: %d baseline finding(s) resolved; regenerate %s with -json to ratchet down\n",
			len(resolved), path)
	}
	if len(news) == 0 {
		fmt.Fprintf(os.Stderr, "oblint: no findings beyond baseline (%d known)\n", len(base.Findings))
		os.Exit(0)
	}
	if !jsonOut {
		// Findings were already printed above; single out the new ones.
		fmt.Fprintf(os.Stderr, "oblint: %d NEW finding(s) not in baseline:\n", len(news))
	}
	for _, f := range news {
		fmt.Fprintf(os.Stderr, "  %s\n", f)
	}
	os.Exit(1)
}

// defaultCacheDir places the cache under the OS user cache, namespaced by
// module so co-resident checkouts do not collide on policy.
func defaultCacheDir(module string) string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "oblint", module)
}

// relativize rewrites absolute file paths relative to the module root for
// stable, diffable output; every non-path field rides through unchanged.
func relativize(res lint.Result, root string) lint.Result {
	rel := func(fs []lint.Finding) []lint.Finding {
		out := make([]lint.Finding, len(fs))
		for i, f := range fs {
			if r, err := filepath.Rel(root, f.File); err == nil {
				f.File = filepath.ToSlash(r)
			}
			out[i] = f
		}
		return out
	}
	res.Findings = rel(res.Findings)
	res.Suppressed = rel(res.Suppressed)
	return res
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oblint:", err)
	os.Exit(2)
}
