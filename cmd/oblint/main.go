// Command oblint is the model-invariant static analyzer for this
// repository. It mechanically enforces the discipline the paper's results
// rest on — content-obliviousness, determinism, layering, and atomic
// hygiene — across every package in the module. See internal/lint for the
// checks and DESIGN.md ("Enforced model invariants") for the policy.
//
// Usage:
//
//	go run ./cmd/oblint ./...          # lint the whole module
//	go run ./cmd/oblint -json ./...    # machine-readable findings for CI
//	go run ./cmd/oblint -list          # list the enforced checks
//
// Exit status: 0 when clean, 1 when findings exist, 2 on load errors.
// Suppressed findings (//oblint:allow) never fail the run but are counted
// on stderr and included in -json output so CI can diff them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"coleader/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list enforced checks and exit")
	only := flag.String("check", "", "comma-separated subset of checks to run")
	dir := flag.String("C", ".", "directory inside the target module")
	typeErrs := flag.Bool("typeerrors", false, "also print soft type-check errors")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: oblint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Println(c)
		}
		return
	}

	root, module, err := lint.FindModule(*dir)
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(root, module)

	// Package arguments: "./..." (or none) means the whole module;
	// anything else is a module-relative package list.
	var pkgs []*lint.Package
	args := flag.Args()
	all := len(args) == 0
	for _, a := range args {
		if a == "./..." || a == "..." || a == module+"/..." {
			all = true
		}
	}
	if all {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fatal(err)
		}
	} else {
		for _, a := range args {
			ip := strings.TrimPrefix(filepath.ToSlash(a), "./")
			if ip != module && !strings.HasPrefix(ip, module+"/") {
				ip = module + "/" + ip
			}
			p, err := loader.Load(ip)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, p)
		}
	}

	cfg := lint.DefaultConfig()
	if *only != "" {
		known := make(map[string]bool)
		for _, c := range lint.AllChecks() {
			known[c] = true
		}
		for _, c := range strings.Split(*only, ",") {
			if !known[c] {
				fatal(fmt.Errorf("unknown check %q (see -list); a typo here would silently disable the gate", c))
			}
			cfg.Checks = append(cfg.Checks, c)
		}
	}
	runner := &lint.Runner{Config: cfg, Fset: loader.Fset}
	res := runner.Run(pkgs)

	if *typeErrs {
		for _, p := range pkgs {
			for _, e := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "typecheck %s: %v\n", p.Path, e)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(relativize(res, root)); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range relativize(res, root).Findings {
			fmt.Println(f)
		}
		if n := len(res.Suppressed); n > 0 {
			fmt.Fprintf(os.Stderr, "oblint: %d finding(s) suppressed by //oblint:allow\n", n)
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "oblint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}

// relativize rewrites absolute file paths relative to the module root for
// stable, diffable output.
func relativize(res lint.Result, root string) lint.Result {
	rel := func(fs []lint.Finding) []lint.Finding {
		out := make([]lint.Finding, len(fs))
		for i, f := range fs {
			if r, err := filepath.Rel(root, f.File); err == nil {
				f.File = filepath.ToSlash(r)
			}
			out[i] = f
		}
		return out
	}
	return lint.Result{Findings: rel(res.Findings), Suppressed: rel(res.Suppressed)}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oblint:", err)
	os.Exit(2)
}
