// Command modelcheck exhaustively explores EVERY asynchronous schedule of
// a small ring instance and verifies the paper's guarantees in all of
// them. On a violation it prints the witness schedule and replays it with
// a trace attached — the full debugging loop in one command.
//
// Usage:
//
//	modelcheck -algo alg2 -ids 3,1,2
//	modelcheck -algo alg3 -ids 2,1 -flips 0,1
//	modelcheck -algo alg1 -ids 2,2,1             # duplicate IDs (Lemma 16)
//	modelcheck -algo alg2-unguarded -ids 1,3     # the ablation: finds the bug
//	modelcheck -algo alg2 -ids 2,1 -explore-inits
//	modelcheck -algo alg2 -ids 4,1,2 -workers 4  # parallel exploration
//	modelcheck -algo alg2 -ids 3,1,2 -json       # machine-readable report
//	modelcheck -algo alg2 -ids 3,1,2 -audit-collisions
//	modelcheck -algo alg2 -ids 3,1,2 -faults loss,crash   # fault-aware DFS
//	modelcheck -algo alg1 -ids 2,1,2 -faults corrupt -fault-budget 2
//
// With -faults the DFS branches over every injection point of the listed
// classes (up to -fault-budget per path) alongside every scheduler choice,
// and classifies each faulted terminal as clean, degraded, or stalled
// instead of aborting. Pulse-adding classes (dup, spurious, restart) have
// infinite state spaces; bound them with -max-states and read the verdict
// as certified-up-to-budget.
//
// The report (counters, verdict, witness) is identical at every -workers
// width and under every memo mode; -json output in particular is
// byte-for-byte reproducible, which CI exploits by diffing a -workers=1
// run against a -workers=4 run. This holds for fault-aware runs too, even
// ones that abort on the state budget (the parallel engine falls back to
// the canonical sequential rerun on any failure).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"coleader/internal/check"
	"coleader/internal/core"
	"coleader/internal/fault"
	"coleader/internal/node"
	"coleader/internal/ring"
	"coleader/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(1)
	}
}

// jsonReport is the -json output. Deliberately excludes anything
// execution-dependent (worker count, timing): the same instance must
// produce the same bytes at any parallelism.
type jsonReport struct {
	Algo           string      `json:"algo"`
	IDs            []uint64    `json:"ids"`
	Flips          string      `json:"flips,omitempty"`
	ExploreInits   bool        `json:"exploreInits"`
	OK             bool        `json:"ok"`
	StatesVisited  int         `json:"statesVisited"`
	TerminalStates int         `json:"terminalStates"`
	MaxDepth       int         `json:"maxDepth"`
	Confluent      bool        `json:"confluent"`
	Faults         *jsonFaults `json:"faults,omitempty"`
	Error          string      `json:"error,omitempty"`
	Witness        []string    `json:"witness,omitempty"`
}

// jsonFaults is the fault-aware section of the -json report. It is nil
// (and absent from the output) in faultless runs, so faultless -json
// bytes are unchanged by the fault feature's existence.
type jsonFaults struct {
	Classes           string `json:"classes"`
	Budget            int    `json:"budget"`
	Window            uint64 `json:"window,omitempty"`
	InjectionEdges    int    `json:"injectionEdges"`
	ViolationEdges    int    `json:"violationEdges"`
	CleanTerminals    int    `json:"cleanTerminals"`
	DegradedTerminals int    `json:"degradedTerminals"`
	StalledTerminals  int    `json:"stalledTerminals"`
}

func run() error {
	algo := flag.String("algo", "alg2", "algorithm: alg1 | alg2 | alg3 | alg2-unguarded")
	idsFlag := flag.String("ids", "", "comma-separated node IDs")
	flipsFlag := flag.String("flips", "", "comma-separated 0/1 port flips (alg3)")
	exploreInits := flag.Bool("explore-inits", false, "also branch over node wake-up interleavings")
	maxStates := flag.Int("max-states", 1<<22, "state budget (must be positive)")
	workers := flag.Int("workers", 1, "parallel exploration workers")
	fingerprintMemo := flag.Bool("fingerprint", true, "memoize 64-bit state fingerprints instead of full keys")
	auditCollisions := flag.Bool("audit-collisions", false, "keep full keys alongside fingerprints and fail on any collision")
	jsonOut := flag.Bool("json", false, "emit a machine-readable report on stdout")
	faultsFlag := flag.String("faults", "", "fault classes to branch over (loss,dup,spurious,crash,restart,corrupt or all); empty disables fault-aware exploration")
	faultBudget := flag.Int("fault-budget", 1, "max injections per explored path (with -faults)")
	faultWindow := flag.Uint64("fault-window", 0, "restrict injections to each entity's first N events (0 = unbounded)")
	faultMasks := flag.String("fault-masks", "", "comma-separated corrupt XOR masks (default: the eight single-bit masks)")
	flag.Parse()

	if *maxStates <= 0 {
		return fmt.Errorf("-max-states must be positive, got %d", *maxStates)
	}

	var plan fault.Plan
	if *faultsFlag != "" {
		classes, err := fault.ParseSet(*faultsFlag)
		if err != nil {
			return err
		}
		plan = fault.Plan{Classes: classes, Budget: *faultBudget, Window: *faultWindow}
		for _, part := range strings.Split(*faultMasks, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			m, err := strconv.ParseUint(part, 0, 8)
			if err != nil {
				return fmt.Errorf("bad corrupt mask %q: %w", part, err)
			}
			plan.CorruptMasks = append(plan.CorruptMasks, byte(m))
		}
		// Fault-aware spaces are far larger (and divergent for the
		// pulse-adding classes); unless the user pinned -max-states, use
		// the fault-mode default budget rather than the faultless one.
		explicitMax := false
		flag.Visit(func(f *flag.Flag) { explicitMax = explicitMax || f.Name == "max-states" })
		if !explicitMax {
			*maxStates = 0 // let check.ExhaustiveFaults pick its fault-mode default
		}
	}

	ids, err := parseIDs(*idsFlag)
	if err != nil {
		return err
	}
	var topo ring.Topology
	if *flipsFlag != "" {
		var flips []bool
		for _, f := range strings.Split(*flipsFlag, ",") {
			flips = append(flips, strings.TrimSpace(f) == "1")
		}
		topo, err = ring.NonOriented(flips)
	} else {
		topo, err = ring.Oriented(len(ids))
	}
	if err != nil {
		return err
	}

	memo := check.MemoFullKeys
	if *fingerprintMemo {
		memo = check.MemoFingerprint
	}
	if *auditCollisions {
		memo = check.MemoAudit
	}

	n, idMax := len(ids), ring.MaxID(ids)
	maxIdx, uniqueMax := ring.MaxIndex(ids)
	cfg := check.Config{
		Topo:         topo,
		ExploreInits: *exploreInits,
		MaxStates:    *maxStates,
		Workers:      *workers,
		Memo:         memo,
	}

	switch *algo {
	case "alg1":
		cfg.NewMachines = func() ([]node.PulseMachine, error) { return core.Alg1Machines(topo, ids) }
		cfg.Check = func(f check.Final) error {
			if want := core.PredictedAlg1Pulses(n, idMax); f.Sent != want {
				return fmt.Errorf("sent %d pulses, want %d", f.Sent, want)
			}
			return nil
		}
	case "alg2", "alg2-unguarded":
		unguarded := *algo == "alg2-unguarded"
		cfg.NewMachines = func() ([]node.PulseMachine, error) {
			ms := make([]node.PulseMachine, n)
			for k := range ms {
				var m node.PulseMachine
				var err error
				if unguarded {
					m, err = core.NewAlg2Unguarded(ids[k], topo.CWPort(k))
				} else {
					m, err = core.NewAlg2(ids[k], topo.CWPort(k))
				}
				if err != nil {
					return nil, err
				}
				ms[k] = m
			}
			return ms, nil
		}
		cfg.Check = func(f check.Final) error {
			if !uniqueMax {
				return fmt.Errorf("alg2 requires a unique maximum ID")
			}
			if len(f.Leaders) != 1 || f.Leaders[0] != maxIdx {
				return fmt.Errorf("leaders %v, want [%d]", f.Leaders, maxIdx)
			}
			if want := core.PredictedAlg2Pulses(n, idMax); f.Sent != want {
				return fmt.Errorf("sent %d pulses, want %d", f.Sent, want)
			}
			for k, st := range f.Statuses {
				if !st.Terminated {
					return fmt.Errorf("node %d did not terminate", k)
				}
			}
			return nil
		}
	case "alg3":
		cfg.NewMachines = func() ([]node.PulseMachine, error) {
			return core.Alg3Machines(n, ids, core.SchemeSuccessor)
		}
		cfg.Check = func(f check.Final) error {
			if len(f.Leaders) != 1 || f.Leaders[0] != maxIdx {
				return fmt.Errorf("leaders %v, want [%d]", f.Leaders, maxIdx)
			}
			if want := core.PredictedAlg3Pulses(n, idMax, core.SchemeSuccessor); f.Sent != want {
				return fmt.Errorf("sent %d pulses, want %d", f.Sent, want)
			}
			return nil
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	var rep check.Report
	var frep check.FaultReport
	if plan.Active() {
		frep, err = check.ExhaustiveFaults(cfg, plan)
		rep = frep.Report
	} else {
		rep, err = check.Exhaustive(cfg)
	}

	if *jsonOut {
		out := jsonReport{
			Algo:           *algo,
			IDs:            ids,
			Flips:          *flipsFlag,
			ExploreInits:   *exploreInits,
			OK:             err == nil,
			StatesVisited:  rep.StatesVisited,
			TerminalStates: rep.TerminalStates,
			MaxDepth:       rep.MaxDepth,
			Confluent:      err == nil && rep.TerminalStates == 1,
		}
		if plan.Active() {
			out.Faults = &jsonFaults{
				Classes:           plan.Classes.String(),
				Budget:            plan.Budget,
				Window:            plan.Window,
				InjectionEdges:    frep.InjectionEdges,
				ViolationEdges:    frep.ViolationEdges,
				CleanTerminals:    frep.CleanTerminals,
				DegradedTerminals: frep.DegradedTerminals,
				StalledTerminals:  frep.StalledTerminals,
			}
		}
		if err != nil {
			out.Error = err.Error()
			// A budget abort is not a violation: the attached schedule is
			// just the DFS stack at the moment the budget tripped (and can
			// run to hundreds of thousands of steps on divergent faulted
			// spaces), so it is omitted from the report.
			if steps, ok := check.Witness(err); ok && !errors.Is(err, check.ErrStateBudget) {
				for _, st := range steps {
					out.Witness = append(out.Witness, st.String())
				}
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if jerr := enc.Encode(out); jerr != nil {
			return jerr
		}
		if err != nil {
			os.Exit(1)
		}
		return nil
	}

	if err == nil {
		if plan.Active() {
			fmt.Printf("OK: every schedule and every injection point verified.\n")
		} else {
			fmt.Printf("OK: every schedule verified.\n")
		}
		fmt.Printf("states explored:  %d\n", rep.StatesVisited)
		fmt.Printf("terminal states:  %d\n", rep.TerminalStates)
		fmt.Printf("max depth:        %d events\n", rep.MaxDepth)
		if plan.Active() {
			printFaultCensus(frep)
		}
		if rep.TerminalStates == 1 {
			fmt.Println("the instance is confluent: one terminal state across all schedules.")
		}
		return nil
	}

	if errors.Is(err, check.ErrStateBudget) {
		fmt.Printf("state budget exhausted after %d states visited.\n", rep.StatesVisited)
		if plan.Active() {
			printFaultCensus(frep)
			fmt.Println("the faulted space may be infinite (dup, spurious, and restart add pulses);")
			fmt.Println("the census above covers the canonical bounded prefix. Raise -max-states to widen it.")
		} else {
			fmt.Printf("the instance is larger than -max-states allows; raise the flag to keep going.\n")
		}
		os.Exit(1)
	}

	fmt.Printf("VIOLATION: %v\n\n", err)
	steps, ok := check.Witness(err)
	if !ok {
		return fmt.Errorf("no witness attached")
	}
	fmt.Printf("witness schedule (%d steps):\n", len(steps))
	for i, st := range steps {
		fmt.Printf("  %3d. %s\n", i+1, st)
	}
	for _, st := range steps {
		if st.Fault != 0 {
			// The simulator replays scheduler steps only; a faulted witness
			// documents the failing injection but cannot be re-executed.
			fmt.Println("\nwitness contains fault injections; replay is not available.")
			os.Exit(1)
		}
	}
	fmt.Println("\nreplaying the witness with a trace attached:")
	rec := &trace.Recorder{}
	res, rerr := check.Replay(cfg, steps, rec)
	fmt.Print(rec.String())
	switch {
	case rerr != nil:
		// A step-level violation (machine fault, quiescent-termination
		// breach) fired during the replay itself.
		fmt.Printf("replay reproduced the violation: %v\n", rerr)
	default:
		// The witness leads to a bad TERMINAL state; re-evaluate the
		// verdict on the replayed outcome.
		final := check.Final{
			Statuses:  res.Statuses,
			Leaders:   res.Leaders,
			Sent:      res.Sent,
			Quiescent: res.Quiescent,
		}
		if cerr := cfg.Check(final); cerr != nil {
			fmt.Printf("replay reproduced the terminal-state violation: %v\n", cerr)
		} else {
			fmt.Println("replay did not reproduce the violation (nondeterministic machine?)")
		}
	}
	os.Exit(1)
	return nil
}

// printFaultCensus renders the fault-aware counters of a report.
func printFaultCensus(frep check.FaultReport) {
	fmt.Printf("injection edges:  %d\n", frep.InjectionEdges)
	fmt.Printf("violation edges:  %d (faulted paths that tripped a step invariant)\n", frep.ViolationEdges)
	fmt.Printf("faulted terminals: %d clean / %d degraded / %d stalled\n",
		frep.CleanTerminals, frep.DegradedTerminals, frep.StalledTerminals)
}

func parseIDs(s string) ([]uint64, error) {
	if s == "" {
		return nil, fmt.Errorf("need -ids (e.g. -ids 3,1,2)")
	}
	var ids []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad ID %q: %w", part, err)
		}
		ids = append(ids, v)
	}
	return ids, nil
}
