module coleader

go 1.22
