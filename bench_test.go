package coleader_test

// One benchmark per experiment of EXPERIMENTS.md (E1..E9). Each reports
// pulses/op (the paper's own cost metric) alongside Go's time/allocs, so
// `go test -bench=. -benchmem` regenerates the cost series of every claim.

import (
	"fmt"
	"math/rand"
	"testing"

	"coleader"
	"coleader/internal/baseline"
	"coleader/internal/check"
	"coleader/internal/core"
	"coleader/internal/defective"
	"coleader/internal/fault"
	"coleader/internal/live"
	"coleader/internal/lowerbound"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// BenchmarkAlg2Oriented is E1's regenerator: Theorem 1 cost across ring
// sizes (IDs 1..n, so pulses/op = n(2n+1)). It runs the pulse-run batch
// fast path under the Heaviest scheduler — the production scale
// configuration (DESIGN.md §8.3): counted runs make a transition O(1)
// in the run length, and Heaviest's deepest-backlog-first pick is the
// schedule under which runs actually form (canonical's breadth-first
// order caps coalescing near 3x). Pulse totals are schedule-invariant,
// so the conservation check against the Theorem 1 prediction is exact
// here too. BenchmarkAlg2FlatOriented keeps the plain pulse-by-pulse
// engine measurable.
//
// One untimed warmup election runs before the clock starts: this is the
// first benchmark in the suite, and in a fresh process the GC pacer's
// heap target is still tiny, which inflates the first few elections by
// 30-50% at millisecond op times (invisible back when an op took ~100ms,
// a systematic bias now). The warmup grows the pacer to its steady
// state so every label — 100ms ci samples included — measures the same
// thing.
func BenchmarkAlg2Oriented(b *testing.B) {
	for _, n := range []int{2, 8, 32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			topo, err := ring.Oriented(n)
			if err != nil {
				b.Fatal(err)
			}
			ids := ring.ConsecutiveIDs(n)
			pred := core.PredictedAlg2Pulses(n, uint64(n))
			if ms, err := core.Alg2Machines(topo, ids); err == nil {
				if s, err := sim.New(topo, ms, sim.Heaviest{}, sim.WithBatching()); err == nil {
					if _, err := s.Run(4*pred + 1024); err != nil {
						b.Fatal(err)
					}
				}
			}
			var pulses uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms, err := core.Alg2Machines(topo, ids)
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.New(topo, ms, sim.Heaviest{}, sim.WithBatching())
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(4*pred + 1024)
				if err != nil {
					b.Fatal(err)
				}
				if res.Sent != pred {
					b.Fatalf("pulses %d != predicted %d", res.Sent, pred)
				}
				pulses += res.Sent
			}
			b.ReportMetric(float64(pulses)/float64(b.N), "pulses/op")
		})
	}
}

// BenchmarkAlg2IDMax is E1's other axis: cost vs ID_max at fixed n, the
// signature Theta(n·ID_max) dependence.
func BenchmarkAlg2IDMax(b *testing.B) {
	const n = 8
	for _, idMax := range []uint64{8, 64, 512, 4096} {
		b.Run(fmt.Sprintf("idmax=%d", idMax), func(b *testing.B) {
			topo, err := ring.Oriented(n)
			if err != nil {
				b.Fatal(err)
			}
			ids, err := ring.AdversarialIDs(n, idMax)
			if err != nil {
				b.Fatal(err)
			}
			pred := core.PredictedAlg2Pulses(n, idMax)
			var pulses uint64
			for i := 0; i < b.N; i++ {
				ms, err := core.Alg2Machines(topo, ids)
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.New(topo, ms, sim.Canonical{})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(4*pred + 1024)
				if err != nil {
					b.Fatal(err)
				}
				pulses += res.Sent
			}
			b.ReportMetric(float64(pulses)/float64(b.N), "pulses/op")
		})
	}
}

// BenchmarkAlg3NonOriented is E2's regenerator: both virtual-ID schemes on
// randomly flipped rings.
func BenchmarkAlg3NonOriented(b *testing.B) {
	for _, scheme := range []core.IDScheme{core.SchemeSuccessor, core.SchemeDoubled} {
		for _, n := range []int{8, 64, 256} {
			b.Run(fmt.Sprintf("%s/n=%d", scheme, n), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				topo, err := ring.RandomNonOriented(n, rng)
				if err != nil {
					b.Fatal(err)
				}
				ids := ring.PermutedIDs(n, rng)
				pred := core.PredictedAlg3Pulses(n, uint64(n), scheme)
				var pulses uint64
				for i := 0; i < b.N; i++ {
					ms, err := core.Alg3Machines(n, ids, scheme)
					if err != nil {
						b.Fatal(err)
					}
					s, err := sim.New(topo, ms, sim.NewRandom(int64(i)))
					if err != nil {
						b.Fatal(err)
					}
					res, err := s.Run(4*pred + 1024)
					if err != nil {
						b.Fatal(err)
					}
					pulses += res.Sent
				}
				b.ReportMetric(float64(pulses)/float64(b.N), "pulses/op")
			})
		}
	}
}

// BenchmarkAnonymous is E3's regenerator: the full Theorem 3 pipeline
// (Algorithm 4 sampling + Algorithm 3 election), skipping heavy-tail
// draws exactly as the experiment does.
func BenchmarkAnonymous(b *testing.B) {
	const n, c = 8, 1.0
	rng := rand.New(rand.NewSource(2))
	var pulses, ran uint64
	for i := 0; i < b.N; i++ {
		ids := core.SampleIDs(rng, n, c)
		pred := core.PredictedAlg3Pulses(n, ring.MaxID(ids), core.SchemeSuccessor)
		if pred > 1_000_000 {
			continue
		}
		topo, err := ring.RandomNonOriented(n, rng)
		if err != nil {
			b.Fatal(err)
		}
		ms, err := core.Alg3Machines(n, ids, core.SchemeSuccessor)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(topo, ms, sim.NewRandom(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			b.Fatal(err)
		}
		pulses += res.Sent
		ran++
	}
	if ran > 0 {
		b.ReportMetric(float64(pulses)/float64(ran), "pulses/election")
	}
}

// BenchmarkAlg2Sharded is E15's exact-complexity axis: Theorem 1
// workloads (IDs 1..n, so pulses/op = n(2n+1)) on the sharded parallel
// engine with a struct-of-arrays bank across 8 arcs. The n ceiling is
// the algorithm's, not the engine's: Algorithm 2 needs distinct IDs, so
// ID_max >= n and the pulse count grows as Theta(n^2) — n=4096 is
// already 3.4e7 pulses. Million-node elections ride the sampled-ID
// family below, whose pulse count is Theta(n log n).
func BenchmarkAlg2Sharded(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			topo, err := ring.Oriented(n)
			if err != nil {
				b.Fatal(err)
			}
			ids := ring.ConsecutiveIDs(n)
			pred := core.PredictedAlg2Pulses(n, uint64(n))
			var pulses uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bank, err := core.NewFlatAlg2(topo, ids)
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.NewShardedFlat(topo, bank, 8, sim.StockSharded(1)["canonical"])
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(4*pred + 1024)
				if err != nil {
					b.Fatal(err)
				}
				if res.Sent != pred {
					b.Fatalf("pulses %d != predicted %d", res.Sent, pred)
				}
				pulses += res.Sent
			}
			b.ReportMetric(float64(pulses)/float64(b.N), "pulses/op")
		})
	}
}

// BenchmarkAlg1SampledSharded is E15's scale axis: Algorithm 1 with
// geometric ID values (ID_max concentrates around 4·log2 n, duplicates
// tolerated per Lemma 16), the regime where million-node rings cost
// Theta(n log n) pulses. Exercises the sharded engine's whole surface —
// arc workers, epoch barriers, the flat bank, and the inline thin-epoch
// path on the wavefront tail.
func BenchmarkAlg1SampledSharded(b *testing.B) {
	for _, n := range []int{65536, 1048576} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			topo, err := ring.Oriented(n)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			ids := make([]uint64, n)
			for i := range ids {
				ids[i] = 1 + uint64(core.SampleBitCount(rng, 2))
			}
			pred := core.PredictedAlg1Pulses(n, ring.MaxID(ids))
			var pulses uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bank, err := core.NewFlatAlg1(topo, ids)
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.NewShardedFlat(topo, bank, 8, sim.StockSharded(1)["canonical"])
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(4*pred + 1024)
				if err != nil {
					b.Fatal(err)
				}
				if res.Sent != pred {
					b.Fatalf("pulses %d != predicted %d", res.Sent, pred)
				}
				pulses += res.Sent
			}
			b.ReportMetric(float64(pulses)/float64(b.N), "pulses/op")
		})
	}
}

// BenchmarkAlg2FlatOriented isolates the struct-of-arrays bank on the
// sequential engine at E1's largest size: the delta against
// BenchmarkAlg2Oriented/n=512 is the pointer-machine overhead alone.
func BenchmarkAlg2FlatOriented(b *testing.B) {
	const n = 512
	topo, err := ring.Oriented(n)
	if err != nil {
		b.Fatal(err)
	}
	ids := ring.ConsecutiveIDs(n)
	pred := core.PredictedAlg2Pulses(n, uint64(n))
	var pulses uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bank, err := core.NewFlatAlg2(topo, ids)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.NewFlat(topo, bank, sim.Canonical{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			b.Fatal(err)
		}
		if res.Sent != pred {
			b.Fatalf("pulses %d != predicted %d", res.Sent, pred)
		}
		pulses += res.Sent
	}
	b.ReportMetric(float64(pulses)/float64(b.N), "pulses/op")
}

// BenchmarkSolitude is E4's regenerator: solitude-pattern extraction cost
// across the ID range whose uniqueness Lemma 22 asserts.
func BenchmarkSolitude(b *testing.B) {
	mk := func(id uint64) (node.PulseMachine, error) { return core.NewAlg2(id, pulse.Port1) }
	for _, id := range []uint64{16, 256, 4096} {
		b.Run(fmt.Sprintf("id=%d", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := lowerbound.Solitude(mk, id, 16*id+1024)
				if err != nil {
					b.Fatal(err)
				}
				if uint64(p.Len()) != 2*id+1 {
					b.Fatalf("pattern length %d", p.Len())
				}
			}
			b.ReportMetric(float64(2*id+1), "pulses/op")
		})
	}
}

// BenchmarkAlg1Invariants is E5's regenerator: Algorithm 1 with the
// Lemma 6 checker evaluating every node after every event.
func BenchmarkAlg1Invariants(b *testing.B) {
	const n = 16
	ids := ring.ConsecutiveIDs(n)
	topo, err := ring.Oriented(n)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ms, err := core.Alg1Machines(topo, ids)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(topo, ms, sim.NewRandom(int64(i)),
			sim.WithObserver[pulse.Pulse](alg1Checker{idMax: uint64(n)}))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(1 << 20); err != nil {
			b.Fatal(err)
		}
	}
}

// alg1Checker avoids importing internal/trace into the root test package's
// public-API surface... it simply delegates; kept minimal.
type alg1Checker struct{ idMax uint64 }

func (c alg1Checker) OnEvent(_ *sim.Event, s *sim.Sim[pulse.Pulse]) error {
	for k := 0; k < s.Topology().N(); k++ {
		a := s.Machine(k).(*core.Alg1)
		rho, sig := a.RhoCW(), a.SigCW()
		if sig == 0 && rho == 0 {
			continue
		}
		if rho < a.ID() && sig != rho+1 || rho >= a.ID() && sig != rho {
			return fmt.Errorf("Lemma 6 violated at node %d", k)
		}
	}
	return nil
}

// BenchmarkBaselines is E6's regenerator: the four classical algorithms on
// identical rings.
func BenchmarkBaselines(b *testing.B) {
	const n = 64
	rng := rand.New(rand.NewSource(3))
	ids := ring.PermutedIDs(n, rng)
	topo, err := ring.Oriented(n)
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range baseline.Algorithms() {
		a := a
		b.Run(string(a), func(b *testing.B) {
			var msgs uint64
			for i := 0; i < b.N; i++ {
				res, err := baseline.Run(a, topo, ids, sim.NewRandom(int64(i)), 1<<22)
				if err != nil {
					b.Fatal(err)
				}
				msgs += res.Sent
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "messages/op")
		})
	}
}

// BenchmarkDefectiveCompute is E7's regenerator: the full Corollary 5
// pipeline with max-consensus.
func BenchmarkDefectiveCompute(b *testing.B) {
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			ids := ring.PermutedIDs(n, rng)
			inputs := make([]uint64, n)
			for i := range inputs {
				inputs[i] = uint64(rng.Intn(50))
			}
			var pulses uint64
			for i := 0; i < b.N; i++ {
				apps := make([]coleader.App, n)
				for k := range apps {
					apps[k] = defective.NewRingMax(inputs[k])
				}
				res, err := coleader.Compute(ids, apps, coleader.WithSeed(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				pulses += res.Pulses
			}
			b.ReportMetric(float64(pulses)/float64(b.N), "pulses/op")
		})
	}
}

// BenchmarkProp19 is E8's regenerator: the resampling variant under
// collision pressure.
func BenchmarkProp19(b *testing.B) {
	const n, idMax = 8, 256
	rng := rand.New(rand.NewSource(5))
	ids := make([]uint64, n)
	for j := range ids {
		ids[j] = 1 + uint64(rng.Intn(3))
	}
	ids[0] = idMax
	topo, err := ring.RandomNonOriented(n, rng)
	if err != nil {
		b.Fatal(err)
	}
	pred := core.PredictedAlg3Pulses(n, idMax, core.SchemeSuccessor)
	for i := 0; i < b.N; i++ {
		ms, err := core.Alg3ResampleMachines(n, ids, core.SchemeSuccessor, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(topo, ms, sim.NewRandom(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(4*pred + 1024); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pred), "pulses/op")
}

// BenchmarkExhaustive is E9's regenerator: full schedule-space exploration
// of a 3-node Algorithm 2 instance.
func BenchmarkExhaustive(b *testing.B) {
	ids := []uint64{3, 1, 2}
	topo, err := ring.Oriented(3)
	if err != nil {
		b.Fatal(err)
	}
	var states int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := check.Exhaustive(check.Config{
			Topo:        topo,
			NewMachines: func() ([]node.PulseMachine, error) { return core.Alg2Machines(topo, ids) },
		})
		if err != nil {
			b.Fatal(err)
		}
		states = rep.StatesVisited
	}
	b.ReportMetric(float64(states), "states/op")
}

// BenchmarkExhaustiveClone runs the same exploration through the clone
// (reference) engine with the exact full-key memo: the pre-overhaul
// configuration, kept measurable so the undo+fingerprint speedup stays a
// number rather than a claim.
func BenchmarkExhaustiveClone(b *testing.B) {
	ids := []uint64{3, 1, 2}
	topo, err := ring.Oriented(3)
	if err != nil {
		b.Fatal(err)
	}
	var states int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := check.Exhaustive(check.Config{
			Topo:        topo,
			NewMachines: func() ([]node.PulseMachine, error) { return core.Alg2Machines(topo, ids) },
			Engine:      check.EngineClone,
			Memo:        check.MemoFullKeys,
		})
		if err != nil {
			b.Fatal(err)
		}
		states = rep.StatesVisited
	}
	b.ReportMetric(float64(states), "states/op")
}

// BenchmarkExhaustiveParallel explores a larger 4-node instance at 1 and 4
// workers; the reports are identical, only the wall clock moves.
func BenchmarkExhaustiveParallel(b *testing.B) {
	ids := []uint64{5, 1, 4, 2}
	topo, err := ring.Oriented(4)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var states int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := check.Exhaustive(check.Config{
					Topo:        topo,
					NewMachines: func() ([]node.PulseMachine, error) { return core.Alg2Machines(topo, ids) },
					Workers:     workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				states = rep.StatesVisited
			}
			b.ReportMetric(float64(states), "states/op")
		})
	}
}

// BenchmarkExhaustiveFaults is E17's regenerator: the fault-aware
// explorer over the conserving classes (loss, crash, corrupt) on the
// 3-ring, budget 1 — a finite space enumerated completely every op. The
// per-state cost over BenchmarkExhaustive prices the fault key folding
// (crash bits, window counters, injection log) and the injection
// branching.
func BenchmarkExhaustiveFaults(b *testing.B) {
	ids := []uint64{3, 1, 2}
	topo, err := ring.Oriented(3)
	if err != nil {
		b.Fatal(err)
	}
	plan := fault.Plan{
		Classes: fault.NewSet(fault.Loss, fault.Crash, fault.Corrupt),
		Budget:  1,
	}
	var states int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := check.ExhaustiveFaults(check.Config{
			Topo:        topo,
			NewMachines: func() ([]node.PulseMachine, error) { return core.Alg2Machines(topo, ids) },
		}, plan)
		if err != nil {
			b.Fatal(err)
		}
		states = rep.StatesVisited
	}
	b.ReportMetric(float64(states), "states/op")
}

// BenchmarkUniversalTransport measures the full-strength Corollary 5
// stack (E7's extension): Chang–Roberts running over the chunked defective
// transport after an Algorithm 2 election, per ring size.
func BenchmarkUniversalTransport(b *testing.B) {
	for _, n := range []int{3, 6} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			transportIDs := ring.PermutedIDs(n, rng)
			appIDs := ring.PermutedIDs(n, rng)
			var pulses uint64
			for i := 0; i < b.N; i++ {
				apps := make([]coleader.App, n)
				for k := range apps {
					app, err := coleader.AdaptBaseline(coleader.ChangRoberts, appIDs[k])
					if err != nil {
						b.Fatal(err)
					}
					apps[k] = app
				}
				res, err := coleader.Compute(transportIDs, apps, coleader.WithSeed(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				pulses += res.Pulses
			}
			b.ReportMetric(float64(pulses)/float64(b.N), "pulses/op")
		})
	}
}

// BenchmarkItaiRodeh measures the known-n anonymous randomized election
// (E11's content-carrying side).
func BenchmarkItaiRodeh(b *testing.B) {
	const n = 32
	topo, err := ring.Oriented(n)
	if err != nil {
		b.Fatal(err)
	}
	ports := make([]pulse.Port, n)
	for k := range ports {
		ports[k] = topo.CWPort(k)
	}
	var msgs uint64
	for i := 0; i < b.N; i++ {
		ms, err := baseline.ItaiRodehMachines(n, ports, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(topo, ms, sim.NewRandom(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(1 << 22)
		if err != nil {
			b.Fatal(err)
		}
		msgs += res.Sent
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "messages/op")
}

// BenchmarkLiveRuntime measures the goroutine-per-node runtime against the
// simulator on the same workload (not tied to a table; a cross-runtime
// sanity series).
func BenchmarkLiveRuntime(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			topo, err := ring.Oriented(n)
			if err != nil {
				b.Fatal(err)
			}
			ids := ring.ConsecutiveIDs(n)
			pred := core.PredictedAlg2Pulses(n, uint64(n))
			for i := 0; i < b.N; i++ {
				ms, err := core.Alg2Machines(topo, ids)
				if err != nil {
					b.Fatal(err)
				}
				res, err := live.Run(topo, ms)
				if err != nil {
					b.Fatal(err)
				}
				if res.Sent != pred {
					b.Fatalf("pulses %d != %d", res.Sent, pred)
				}
			}
			b.ReportMetric(float64(pred), "pulses/op")
		})
	}
}
