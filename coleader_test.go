package coleader_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"coleader"
)

func TestElectOriented(t *testing.T) {
	ids := []uint64{4, 9, 2, 7}
	res, err := coleader.ElectOriented(ids, coleader.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 1 || res.LeaderID != 9 {
		t.Errorf("leader = %d (id %d), want 1 (id 9)", res.Leader, res.LeaderID)
	}
	if !res.Terminated || !res.Quiescent {
		t.Errorf("terminated=%t quiescent=%t", res.Terminated, res.Quiescent)
	}
	if res.Pulses != res.Predicted || res.Predicted != 4*(2*9+1) {
		t.Errorf("pulses=%d predicted=%d", res.Pulses, res.Predicted)
	}
	if last := res.TerminationOrder[len(res.TerminationOrder)-1]; last != 1 {
		t.Errorf("leader terminated at position != last (%v)", res.TerminationOrder)
	}
	for k, n := range res.Nodes {
		want := coleader.NonLeader
		if k == 1 {
			want = coleader.Leader
		}
		if n.State != want {
			t.Errorf("node %d state %v, want %v", k, n.State, want)
		}
	}
}

func TestElectOrientedEverySchedulerAndRuntime(t *testing.T) {
	ids := []uint64{3, 8, 1, 6, 2}
	for _, name := range coleader.SchedulerNames() {
		res, err := coleader.ElectOriented(ids, coleader.WithScheduler(name), coleader.WithSeed(5))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Leader != 1 || res.Pulses != res.Predicted {
			t.Errorf("%s: leader=%d pulses=%d predicted=%d", name, res.Leader, res.Pulses, res.Predicted)
		}
	}
	res, err := coleader.ElectOriented(ids, coleader.WithLiveRuntime())
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 1 || res.Pulses != res.Predicted {
		t.Errorf("live: leader=%d pulses=%d predicted=%d", res.Leader, res.Pulses, res.Predicted)
	}
}

func TestElectOrientedWithInvariantChecks(t *testing.T) {
	if _, err := coleader.ElectOriented([]uint64{2, 5, 1}, coleader.WithInvariantChecks()); err != nil {
		t.Fatal(err)
	}
	if _, err := coleader.ElectOrientedStabilizing([]uint64{2, 5, 1}, coleader.WithInvariantChecks()); err != nil {
		t.Fatal(err)
	}
}

func TestElectOrientedStabilizing(t *testing.T) {
	res, err := coleader.ElectOrientedStabilizing([]uint64{3, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate maxima: two leaders, so no unique leader index.
	if res.Leader != -1 {
		t.Errorf("leader = %d, want -1 for duplicated maximum", res.Leader)
	}
	if res.Terminated {
		t.Error("Algorithm 1 must not terminate")
	}
	if res.Pulses != 3*3 {
		t.Errorf("pulses = %d, want 9", res.Pulses)
	}
}

func TestElectNonOriented(t *testing.T) {
	ids := []uint64{2, 7, 4}
	res, err := coleader.ElectNonOriented(ids,
		coleader.WithPortFlips(true, false, true), coleader.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 1 {
		t.Errorf("leader = %d, want 1", res.Leader)
	}
	if res.Pulses != res.Predicted || res.Predicted != 3*(2*7+1) {
		t.Errorf("pulses=%d predicted=%d", res.Pulses, res.Predicted)
	}
	for k, n := range res.Nodes {
		if !n.HasOrientation {
			t.Errorf("node %d unoriented", k)
		}
	}
	// Doubled scheme costs more.
	res2, err := coleader.ElectNonOriented(ids,
		coleader.WithPortFlips(true, false, true), coleader.WithDoubledIDs())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pulses != 3*(4*7-1) {
		t.Errorf("doubled pulses = %d, want %d", res2.Pulses, 3*(4*7-1))
	}
}

func TestElectNonOrientedRandomPorts(t *testing.T) {
	ids := []uint64{5, 1, 8, 3, 2, 7}
	for seed := int64(0); seed < 10; seed++ {
		res, err := coleader.ElectNonOriented(ids, coleader.WithRandomPorts(), coleader.WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Leader != 2 {
			t.Errorf("seed %d: leader %d, want 2", seed, res.Leader)
		}
	}
}

func TestElectAnonymous(t *testing.T) {
	const n, c = 6, 1.5
	wins, ran := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		opts := []coleader.Option{coleader.WithSeed(seed), coleader.WithRandomPorts()}
		// Skip the geometric sampler's heavy-tail draws: the run costs
		// Theta(n·ID_max) pulses and correctness does not depend on the
		// magnitude (SampleAnonymousIDs is deterministic per seed, so this
		// previews exactly the IDs ElectAnonymous would use).
		ids := coleader.SampleAnonymousIDs(n, c, opts...)
		var idMax uint64
		for _, id := range ids {
			if id > idMax {
				idMax = id
			}
		}
		if coleader.PredictedPulses(n, idMax) > 500000 {
			continue
		}
		ran++
		res, err := coleader.ElectAnonymous(n, c, opts...)
		switch {
		case err == nil:
			if res.Leader < 0 || !res.Quiescent {
				t.Errorf("seed %d: leader=%d quiescent=%t", seed, res.Leader, res.Quiescent)
			}
			wins++
		case errors.Is(err, coleader.ErrNoUniqueLeader):
			// Legitimate w.h.p. failure.
		default:
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if ran < 15 {
		t.Fatalf("only %d/30 draws fit the pulse budget", ran)
	}
	if wins*3 < ran*2 {
		t.Errorf("only %d/%d anonymous elections succeeded", wins, ran)
	}
}

func TestCompute(t *testing.T) {
	ids := []uint64{3, 9, 5, 1}
	inputs := []uint64{7, 2, 11, 4}
	apps := make([]coleader.App, len(ids))
	maxApps := make([]interface{ Result() uint64 }, len(ids))
	for i := range ids {
		a := coleader.NewMaxApp(inputs[i])
		apps[i] = a
		maxApps[i] = a
	}
	res, err := coleader.Compute(ids, apps, coleader.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 1 {
		t.Errorf("leader = %d, want 1", res.Leader)
	}
	if !res.Terminated || !res.Quiescent {
		t.Errorf("terminated=%t quiescent=%t", res.Terminated, res.Quiescent)
	}
	for k, a := range maxApps {
		if a.Result() != 11 {
			t.Errorf("node %d computed %d, want 11", k, a.Result())
		}
	}
	// Layer indices are clockwise distances from the leader (node 1).
	wantIdx := []int{3, 0, 1, 2}
	if fmt.Sprint(res.Indices) != fmt.Sprint(wantIdx) {
		t.Errorf("indices %v, want %v", res.Indices, wantIdx)
	}
	if res.SetupPulses != 2*16+16 {
		t.Errorf("setup pulses = %d, want %d", res.SetupPulses, 2*16+16)
	}
}

func TestComputeSumAndCR(t *testing.T) {
	ids := []uint64{6, 2, 4}
	sumApps := []*struct{}{}
	_ = sumApps
	apps := []coleader.App{
		coleader.NewSumApp(5), coleader.NewSumApp(8), coleader.NewSumApp(1),
	}
	if _, err := coleader.Compute(ids, apps); err != nil {
		t.Fatal(err)
	}
	for k, a := range apps {
		s := a.(interface{ Result() uint64 })
		if s.Result() != 14 {
			t.Errorf("sum at node %d = %d, want 14", k, s.Result())
		}
	}
	crApps := []coleader.App{
		coleader.NewCRApp(10), coleader.NewCRApp(30), coleader.NewCRApp(20),
	}
	if _, err := coleader.Compute(ids, crApps); err != nil {
		t.Fatal(err)
	}
	if !crApps[1].(interface{ Leader() bool }).Leader() {
		t.Error("CR app at node 1 (id 30) not leader")
	}
}

func TestSolitudePattern(t *testing.T) {
	p, err := coleader.SolitudePattern(3)
	if err != nil {
		t.Fatal(err)
	}
	if p != "0001111" {
		t.Errorf("pattern %q, want 0001111", p)
	}
	if !strings.HasPrefix(p, "000") {
		t.Error("unexpected prefix")
	}
}

func TestBounds(t *testing.T) {
	if got := coleader.LowerBound(4, 64); got != 16 {
		t.Errorf("LowerBound = %d, want 16", got)
	}
	if got := coleader.PredictedPulses(4, 64); got != 4*129 {
		t.Errorf("PredictedPulses = %d, want 516", got)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := coleader.ElectOriented([]uint64{1, 1}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := coleader.ElectOriented([]uint64{2, 3}, coleader.WithScheduler("bogus")); err == nil {
		t.Error("bogus scheduler accepted")
	}
	if _, err := coleader.ElectNonOriented([]uint64{1, 2}, coleader.WithPortFlips(true)); err == nil {
		t.Error("mismatched port flips accepted")
	}
	if _, err := coleader.Compute([]uint64{1}, nil); err == nil {
		t.Error("mismatched apps accepted")
	}
}

func ExampleElectOriented() {
	res, err := coleader.ElectOriented([]uint64{4, 9, 2, 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("leader: node %d (ID %d), %d pulses (predicted %d)\n",
		res.Leader, res.LeaderID, res.Pulses, res.Predicted)
	// Output: leader: node 1 (ID 9), 76 pulses (predicted 76)
}
