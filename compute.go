package coleader

import (
	"fmt"

	"coleader/internal/baseline"
	"coleader/internal/core"
	"coleader/internal/defective"
	"coleader/internal/node"
	"coleader/internal/ring"
)

// App is a content-carrying asynchronous ring algorithm to be simulated
// over the fully defective network (Corollary 5). See the defective layer
// documentation for the transport protocol.
type App = defective.App

// API is the interface the defective layer offers a running App.
type API = defective.API

// Dir addresses a ring neighbor in the simulated algorithm's terms.
type Dir = defective.Dir

// Neighbor directions.
const (
	ToCW  = defective.ToCW
	ToCCW = defective.ToCCW
)

// NewMaxApp returns a max-consensus application: every node ends up
// knowing the maximum of all inputs.
func NewMaxApp(input uint64) *defective.RingMax { return defective.NewRingMax(input) }

// NewSumApp returns a sum application: every node ends up knowing the sum
// of all inputs.
func NewSumApp(input uint64) *defective.RingSum { return defective.NewRingSum(input) }

// NewCRApp returns Chang–Roberts as an application — a content-carrying
// election running over the content-oblivious transport.
func NewCRApp(id uint64) *defective.RingCR { return defective.NewRingCR(id) }

// AdaptBaseline wraps one node of a classical content-carrying election
// algorithm (see Baselines) as an App, so it can run over the fully
// defective transport via Compute. The returned app's final state is
// reported through BaselineOutcome.
func AdaptBaseline(b Baseline, appID uint64) (App, error) {
	inner, err := baseline.New(b, appID, Port1)
	if err != nil {
		return nil, err
	}
	dec := func(v uint64) (baseline.Msg, error) { return baseline.UnpackMsg(v) }
	return defective.NewAdapter[baseline.Msg](inner, baseline.MustPackMsg, dec)
}

// BaselineOutcome reports the inner state of an app built by
// AdaptBaseline after a Compute run.
type BaselineOutcome struct {
	State State
	Err   error
}

// InspectBaseline extracts the outcome of an AdaptBaseline app.
func InspectBaseline(a App) (BaselineOutcome, error) {
	ad, ok := a.(*defective.Adapter[baseline.Msg])
	if !ok {
		return BaselineOutcome{}, fmt.Errorf("coleader: app was not built by AdaptBaseline")
	}
	return BaselineOutcome{State: ad.Inner().Status().State, Err: ad.Err()}, nil
}

// ComputeResult augments an election Result with the computation phase's
// outcome.
type ComputeResult struct {
	Result
	// SetupPulses is the paper-exact cost of the layer's census and
	// n-broadcast: 2n^2 + 4n.
	SetupPulses uint64
	// Indices holds each node's layer index (clockwise distance from the
	// elected leader).
	Indices []int
}

// Compute realizes Corollary 5 end to end on an oriented fully defective
// ring: Algorithm 2 elects the maximum-ID node; every node then switches —
// termination becomes the switch, exactly as Section 1.1 prescribes — into
// the universal simulation layer rooted at the leader; and apps[k] (the
// content-carrying algorithm at node k) runs over pulses until some app
// calls Halt. IDs must be distinct and positive; len(apps) == len(ids).
func Compute(ids []uint64, apps []App, opts ...Option) (ComputeResult, error) {
	if len(apps) != len(ids) {
		return ComputeResult{}, fmt.Errorf("coleader: %d apps for %d IDs", len(apps), len(ids))
	}
	cfg := buildConfig(len(ids), opts)
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		return ComputeResult{}, err
	}
	ms := make([]node.PulseMachine, len(ids))
	for k := range ms {
		m, err := defective.NewComposed(ids[k], topo.CWPort(k), apps[k])
		if err != nil {
			return ComputeResult{}, fmt.Errorf("coleader: node %d: %w", k, err)
		}
		ms[k] = m
	}
	if cfg.limit == 0 {
		// The computation phase is open-ended (apps decide when to halt);
		// give it generous headroom over the election's cost.
		n, idMax := uint64(len(ids)), ring.MaxID(ids)
		cfg.limit = 64*n*n*(idMax+16) + 1<<16
	}
	// Result.Predicted carries the election phase's exact cost (Theorem 1);
	// the layer setup adds SetupPulses; only the computation phase is
	// app-dependent.
	electionCost := core.PredictedAlg2Pulses(len(ids), ring.MaxID(ids))
	res, err := cfg.run(topo, ms, ids, electionCost, nil)
	out := ComputeResult{
		Result:      res,
		SetupPulses: defective.PredictedSetupPulses(len(ids)),
	}
	for _, m := range ms {
		c := m.(*defective.Composed)
		if c.Layer() == nil {
			out.Indices = nil
			return out, fmt.Errorf("coleader: node never switched to the computation layer")
		}
		out.Indices = append(out.Indices, c.Layer().Index())
	}
	return out, err
}
