// Corollary 5 end to end: arbitrary computation over a fully defective
// ring, with no pre-existing leader.
//
// This is the paper's headline consequence. Starting from nothing but
// unique IDs on an oriented ring whose channels erase all content:
//
//  1. Algorithm 2 elects the maximum-ID node, quiescently terminating with
//     the leader last;
//
//  2. each node's "termination" becomes a switch into the universal
//     simulation layer (the ring specialization of Censor-Hillel et al.'s
//     compiler), rooted at the leader — sound because no election pulse
//     can ever be mistaken for a computation pulse;
//
//  3. an ordinary content-carrying algorithm (here: max-consensus over
//     fresh inputs, then a sum) runs unchanged, its message payloads
//     transported as unary pulse trains framed by counter-rotating
//     markers.
//
//     go run ./examples/defective-compute
package main

import (
	"fmt"
	"log"

	"coleader"
)

func main() {
	ids := []uint64{3, 11, 5, 8, 2} // transport-level identities
	inputs := []uint64{17, 4, 42, 23, 9}

	fmt.Printf("fully defective ring: IDs %v, private inputs %v\n\n", ids, inputs)

	// --- Max-consensus over pulses ---------------------------------------
	maxApps := make([]*appHandle, len(ids))
	apps := make([]coleader.App, len(ids))
	for i := range ids {
		a := coleader.NewMaxApp(inputs[i])
		apps[i] = a
		maxApps[i] = &appHandle{result: a.Result, done: a.Done}
	}
	res, err := coleader.Compute(ids, apps, coleader.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("election: node %d (ID %d) became the root\n", res.Leader, res.LeaderID)
	fmt.Printf("layer indices (clockwise distance from root): %v\n", res.Indices)
	fmt.Printf("pulse budget: %d total = election %d (exact) + layer setup %d (exact) + computation %d\n",
		res.Pulses, res.Predicted, res.SetupPulses,
		res.Pulses-res.Predicted-res.SetupPulses)
	for k, h := range maxApps {
		fmt.Printf("  node %d learned max = %d (done=%t)\n", k, h.result(), h.done())
	}

	// --- Sum aggregation, exercising the other ring direction ------------
	sumApps := make([]coleader.App, len(ids))
	handles := make([]*appHandle, len(ids))
	for i := range ids {
		a := coleader.NewSumApp(inputs[i])
		sumApps[i] = a
		handles[i] = &appHandle{result: a.Result, done: a.Done}
	}
	if _, err := coleader.Compute(ids, sumApps, coleader.WithSeed(8)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsum over the same defective ring: every node learned %d\n", handles[0].result())

	// --- And, for sport: Chang–Roberts over the defective transport ------
	crApps := make([]coleader.App, len(ids))
	for i := range ids {
		crApps[i] = coleader.NewCRApp(ids[i] * 10) // app-level IDs, unrelated to transport
	}
	if _, err := coleader.Compute(ids, crApps, coleader.WithSeed(9)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Chang–Roberts (a content-carrying election!) also ran over the")
	fmt.Println("content-oblivious transport and elected the max app-level ID.")
}

// appHandle erases the concrete app types for uniform reporting.
type appHandle struct {
	result func() uint64
	done   func() bool
}
