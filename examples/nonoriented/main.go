// Non-oriented rings: election plus orientation (Theorem 2).
//
// The nodes of this ring do not agree which port points "clockwise" —
// node wiring is adversarial, as in Figure 1 (right) of the paper.
// Algorithm 3 runs two interleaved copies of the warm-up election, one per
// travel direction, distinguished only by each node's two virtual IDs.
// At quiescence a unique leader holds office AND every node has labeled
// its ports with a globally consistent orientation — all over contentless
// pulses, without termination (the paper conjectures termination is
// impossible here).
//
//	go run ./examples/nonoriented
package main

import (
	"fmt"
	"log"

	"coleader"
)

func main() {
	ids := []uint64{6, 2, 9, 4, 1}
	// Adversarial port wiring: nodes 0, 2, and 3 have swapped ports.
	flips := []bool{true, false, true, true, false}

	res, err := coleader.ElectNonOriented(ids,
		coleader.WithPortFlips(flips...),
		coleader.WithScheduler(coleader.SchedCCWFirst), // starve one direction
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("non-oriented ring, IDs %v, port flips %v\n", ids, flips)
	fmt.Printf("leader: node %d (ID %d) after %d pulses (predicted %d)\n",
		res.Leader, res.LeaderID, res.Pulses, res.Predicted)
	fmt.Println("per-node orientation (each node labels the port it now believes leads clockwise):")
	for k, n := range res.Nodes {
		fmt.Printf("  node %d (ID %d, flipped=%t): state=%v, clockwise port=%v\n",
			k, n.ID, flips[k], n.State, n.CWPort)
	}
	fmt.Println("note: the labels are consistent around the ring — following each node's")
	fmt.Println("declared clockwise port traverses every edge in one direction.")

	// The original virtual-ID scheme of Proposition 15 solves the same
	// problem at roughly double the pulse cost:
	res2, err := coleader.ElectNonOriented(ids,
		coleader.WithPortFlips(flips...), coleader.WithDoubledIDs())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nProposition 15 scheme on the same ring: %d pulses (vs %d for Theorem 2)\n",
		res2.Pulses, res.Pulses)
}
