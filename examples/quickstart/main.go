// Quickstart: elect a leader on an oriented ring whose channels destroy
// every message's content.
//
// The four nodes below can communicate only through contentless pulses
// (the fully defective model), yet Algorithm 2 of Frei, Gelles, Ghazy, and
// Nolin elects the maximum-ID node, everyone terminates knowing their
// role, and the total number of pulses is exactly n(2·ID_max+1) — here
// 4·(2·9+1) = 76 — no matter how the network schedules deliveries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"coleader"
)

func main() {
	// IDs in clockwise ring order. Any distinct positive integers work;
	// the cost scales with the largest one.
	ids := []uint64{4, 9, 2, 7}

	res, err := coleader.ElectOriented(ids, coleader.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ring of %d nodes with IDs %v\n", res.N, ids)
	fmt.Printf("elected: node %d (ID %d)\n", res.Leader, res.LeaderID)
	fmt.Printf("pulses:  %d — the paper predicts exactly %d\n", res.Pulses, res.Predicted)
	fmt.Printf("all nodes terminated quiescently: %t\n", res.Terminated && res.Quiescent)
	fmt.Printf("termination order (leader last): %v\n", res.TerminationOrder)

	// The same election on the goroutine-per-node runtime: the Go
	// scheduler now plays the asynchronous adversary, and the pulse count
	// still lands on the exact same number — Theorem 1's complexity is
	// schedule-independent.
	live, err := coleader.ElectOriented(ids, coleader.WithLiveRuntime())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live runtime: leader node %d, %d pulses (same exact count)\n",
		live.Leader, live.Pulses)
}
