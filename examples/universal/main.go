// The universal simulation, at full strength.
//
// Corollary 5 says ANY asynchronous ring algorithm can run over a fully
// defective ring once a leader exists. This example takes the claim
// literally: it runs all four classical content-carrying leader-election
// algorithms — Le Lann, Chang–Roberts, the bidirectional Hirschberg–
// Sinclair, and Peterson — completely unchanged over channels that reduce
// every message to a contentless pulse.
//
// The stack, bottom to top:
//
//	pulses on an oriented ring                     (the network)
//	Algorithm 2                                     elects a transport leader
//	termination-becomes-switch (Section 1.1)        composition
//	census + unary frames + markers                 the universal layer
//	base-16 chunk codec                             arbitrary payloads
//	an unmodified classical election algorithm      the "application"
//
//	go run ./examples/universal
package main

import (
	"fmt"
	"log"

	"coleader"
)

func main() {
	transportIDs := []uint64{3, 9, 5, 2} // used by Algorithm 2 to pick the root
	appIDs := []uint64{40, 10, 30, 20}   // what the classical algorithms elect on

	fmt.Println("running four classical election algorithms over a fully defective ring")
	fmt.Printf("transport IDs %v (root = max), app-level IDs %v (app leader = max)\n\n",
		transportIDs, appIDs)

	for _, algo := range coleader.Baselines() {
		apps := make([]coleader.App, len(transportIDs))
		for k := range apps {
			app, err := coleader.AdaptBaseline(algo, appIDs[k])
			if err != nil {
				log.Fatal(err)
			}
			apps[k] = app
		}
		res, err := coleader.Compute(transportIDs, apps, coleader.WithSeed(4))
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		var appLeader int
		for k, a := range apps {
			out, err := coleader.InspectBaseline(a)
			if err != nil {
				log.Fatal(err)
			}
			if out.Err != nil {
				log.Fatalf("%s: node %d transport fault: %v", algo, k, out.Err)
			}
			if out.State == coleader.Leader {
				appLeader = k
			}
		}
		fmt.Printf("%-20s app leader: node %d (app ID %d)   %d pulses total\n",
			algo, appLeader, appIDs[appLeader], res.Pulses)
	}

	fmt.Println("\nnode 0 holds app ID 40, so every algorithm elects node 0 at the app")
	fmt.Println("level — while the transport-level root is node 1 (transport ID 9).")
	fmt.Println("Two leaders, two layers, zero bits of message content on the wire.")
}
