// The price of content-obliviousness (Section 1.2 context).
//
// Classical leader election reads message contents: Le Lann and
// Chang–Roberts circulate IDs (Theta(n^2) worst case), Hirschberg–Sinclair
// and Peterson get to O(n log n). The content-oblivious Algorithm 2 cannot
// read anything and pays Theta(n·ID_max) pulses instead — a cost that
// Theorem 4 proves cannot drop below n·floor(log2(ID_max/n)) for ANY
// content-oblivious algorithm. This example puts those numbers side by
// side on identical rings.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"math/rand"

	"coleader"
)

func main() {
	fmt.Println("messages to elect a leader (same rings, same scheduler):")
	fmt.Printf("%-5s %-8s %-10s %-15s %-12s %-10s %-14s %-12s\n",
		"n", "ID_max", "lelann", "chang-roberts", "hs", "peterson", "alg2(pulses)", "lower bound")

	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{4, 8, 16, 32, 64} {
		idMax := uint64(4 * n)
		ids := distinctIDs(n, idMax, rng)

		row := []uint64{}
		for _, b := range coleader.Baselines() {
			res, err := coleader.RunBaseline(b, ids, coleader.WithSeed(3))
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, res.Pulses)
		}
		ours, err := coleader.ElectOriented(ids, coleader.WithSeed(3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5d %-8d %-10d %-15d %-12d %-10d %-14d %-12d\n",
			n, idMax, row[0], row[1], row[2], row[3], ours.Pulses,
			coleader.LowerBound(n, idMax))
	}

	fmt.Println("\ntakeaways:")
	fmt.Println(" * with content, O(n log n) suffices (Hirschberg–Sinclair, Peterson);")
	fmt.Println(" * without content the cost is Theta(n·ID_max) — it grows with the ID")
	fmt.Println("   space, not just the ring size, exactly as Theorems 1 and 4 bracket it.")
}

// distinctIDs draws n distinct IDs from [1, max] with the maximum forced
// to exactly max, so the x-axis of the comparison is clean.
func distinctIDs(n int, max uint64, rng *rand.Rand) []uint64 {
	seen := map[uint64]bool{max: true}
	ids := []uint64{max}
	for len(ids) < n {
		id := 1 + uint64(rng.Int63n(int64(max)))
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return ids
}
