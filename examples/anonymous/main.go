// Anonymous rings: randomized election with high probability (Theorem 3).
//
// These nodes have no identifiers at all — only private randomness.
// Algorithm 4 samples an ID at each node (a geometric bit-length, then
// uniform bits); with probability 1 - O(n^-c) the maximum is unique and
// Algorithm 3 elects its holder while also orienting the ring. Itai and
// Rodeh's classical impossibility says no such algorithm can *terminate*,
// and indeed this one only reaches quiescence.
//
//	go run ./examples/anonymous
package main

import (
	"errors"
	"fmt"
	"log"

	"coleader"
)

func main() {
	const (
		n      = 10
		c      = 1.5 // reliability knob: failure probability ~ n^-c
		trials = 25
	)

	fmt.Printf("anonymous ring, n=%d, c=%v, %d independent trials\n\n", n, c, trials)
	wins, noUnique, skipped := 0, 0, 0
	for seed := int64(1); seed <= trials; seed++ {
		// Preview the sampled IDs: the geometric tail occasionally draws an
		// enormous ID_max, and the run costs Theta(n·ID_max) pulses.
		ids := coleader.SampleAnonymousIDs(n, c, coleader.WithSeed(seed))
		var idMax uint64
		for _, id := range ids {
			if id > idMax {
				idMax = id
			}
		}
		if coleader.PredictedPulses(n, idMax) > 1_000_000 {
			skipped++
			fmt.Printf("trial %2d: ID_max=%d — heavy-tail draw, skipping the run\n", seed, idMax)
			continue
		}

		res, err := coleader.ElectAnonymous(n, c,
			coleader.WithSeed(seed), coleader.WithRandomPorts())
		switch {
		case err == nil:
			wins++
			fmt.Printf("trial %2d: elected node %d (sampled ID %d) in %d pulses\n",
				seed, res.Leader, res.LeaderID, res.Pulses)
		case errors.Is(err, coleader.ErrNoUniqueLeader):
			noUnique++
			fmt.Printf("trial %2d: sampled maximum collided — no unique leader (the w.h.p. failure case)\n", seed)
		default:
			log.Fatal(err)
		}
	}
	fmt.Printf("\nsummary: %d elected, %d max-collisions, %d skipped (heavy tail)\n",
		wins, noUnique, skipped)
	fmt.Println("raising c makes collisions rarer and IDs (hence pulses) larger — the")
	fmt.Println("trade-off quantified in Lemma 18.")
}
