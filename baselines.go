package coleader

import (
	"fmt"

	"coleader/internal/baseline"
	"coleader/internal/ring"
)

// Baseline names a classical content-carrying leader-election algorithm
// (Section 1.2 of the paper) used for comparison experiments.
type Baseline = baseline.Algorithm

// The implemented baselines.
const (
	LeLann             = baseline.AlgLeLann
	ChangRoberts       = baseline.AlgChangRoberts
	HirschbergSinclair = baseline.AlgHirschbergSinclair
	Peterson           = baseline.AlgPeterson
)

// Baselines lists every implemented baseline.
func Baselines() []Baseline { return baseline.Algorithms() }

// RunBaseline executes a classical content-carrying election on an
// oriented ring — messages survive intact, unlike the fully defective
// model — and returns its outcome in the same Result shape, with Pulses
// holding the message count. Result.Predicted is 0: these algorithms'
// counts are schedule-dependent.
func RunBaseline(b Baseline, ids []uint64, opts ...Option) (Result, error) {
	cfg := buildConfig(len(ids), opts)
	if cfg.liveRun {
		return Result{}, fmt.Errorf("coleader: baselines run on the simulator only")
	}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		return Result{}, err
	}
	sched, err := cfg.scheduler()
	if err != nil {
		return Result{}, err
	}
	limit := cfg.limit
	if limit == 0 {
		n := uint64(len(ids))
		limit = 16*n*n + 1024
	}
	res, err := baseline.Run(b, topo, ids, sched, limit)
	out := collect(len(ids), ids, res.Statuses, res.TerminationOrder,
		res.Sent, res.SentCW, res.SentCCW, res.Quiescent, res.AllTerminated, 0)
	return out, err
}
