package live_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"coleader/internal/core"
	"coleader/internal/fault"
	"coleader/internal/live"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// crashPlane builds a scripted plane that crashes each listed node at the
// given handler ordinal (1 = right after Init, 2 = after the first
// delivery, ...).
func crashPlane(t *testing.T, n int, crashes ...fault.Injection) *fault.Plane {
	t.Helper()
	p, err := fault.Scripted(fault.Config{Nodes: n, Classes: fault.NewSet(fault.Crash)}, crashes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSupervisorHealsCrash is the end-to-end healing loop on both
// algorithm families: a fault-plane crash kills a node's goroutine
// mid-election, the supervisor revives it from its checkpoint, and the
// ring re-quiesces with the max-ID leader and EXACTLY the clean run's
// pulse count — the crash killed a goroutine, never a pulse.
func TestSupervisorHealsCrash(t *testing.T) {
	ids := []uint64{4, 9, 2, 7, 5}
	idMax := ring.MaxID(ids)
	wantLeader, _ := ring.MaxIndex(ids)
	for _, tc := range []struct {
		name     string
		machines func(topo ring.Topology) ([]node.PulseMachine, error)
		sent     uint64
		termOK   func(res live.Result) bool
	}{
		{
			"alg1",
			func(topo ring.Topology) ([]node.PulseMachine, error) { return core.Alg1Machines(topo, ids) },
			core.PredictedAlg1Pulses(len(ids), idMax),
			func(res live.Result) bool { return !res.AllTerminated }, // stabilizing: quiesces, never terminates
		},
		{
			"alg2",
			func(topo ring.Topology) ([]node.PulseMachine, error) { return core.Alg2Machines(topo, ids) },
			core.PredictedAlg2Pulses(len(ids), idMax),
			func(res live.Result) bool { return res.AllTerminated },
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := ring.Oriented(len(ids))
			if err != nil {
				t.Fatal(err)
			}
			ms, err := tc.machines(topo)
			if err != nil {
				t.Fatal(err)
			}
			// Crash node 2 after its third handler: deep enough that pulses
			// are in flight toward it on every schedule.
			plane := crashPlane(t, len(ids), fault.Injection{Class: fault.Crash, Node: 2, Trigger: 3})
			res, err := live.Run(topo, ms,
				live.WithFaultPlane(plane),
				live.WithSupervisor(live.RestoreCheckpoint),
				live.WithTimeout(30*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Heals) != 1 || res.Heals[0] != 2 {
				t.Fatalf("heals %v, want [2] (the plane's log: %v)", res.Heals, fault.FormatLog(plane.Log()))
			}
			if !res.Quiescent {
				t.Error("healed ring did not re-quiesce")
			}
			if res.Leader != wantLeader {
				t.Errorf("leader %d, want %d", res.Leader, wantLeader)
			}
			if res.Sent != tc.sent {
				t.Errorf("sent %d, want the clean run's %d (checkpoint healing conserves pulses exactly)",
					res.Sent, tc.sent)
			}
			if res.Sent != res.Delivered {
				t.Errorf("sent %d != delivered %d at quiescence", res.Sent, res.Delivered)
			}
			if !tc.termOK(res) {
				t.Errorf("termination shape wrong: AllTerminated=%t", res.AllTerminated)
			}
		})
	}
}

// TestSupervisorHealsSameNodeTwice: the SAME node crashes twice — once
// early, once after its revival — and is healed twice. The heal log
// records both incarnations and the final outcome is still the clean one.
func TestSupervisorHealsSameNodeTwice(t *testing.T) {
	ids := []uint64{3, 5, 2}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	plane := crashPlane(t, len(ids),
		fault.Injection{Class: fault.Crash, Node: 1, Trigger: 2},
		fault.Injection{Class: fault.Crash, Node: 1, Trigger: 5})
	res, err := live.Run(topo, ms,
		live.WithFaultPlane(plane),
		live.WithSupervisor(live.RestoreCheckpoint),
		live.WithTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Heals) != 2 || res.Heals[0] != 1 || res.Heals[1] != 1 {
		t.Fatalf("heals %v, want [1 1] (plane log: %v)", res.Heals, fault.FormatLog(plane.Log()))
	}
	wantLeader, _ := ring.MaxIndex(ids)
	if res.Leader != wantLeader || !res.Quiescent || !res.AllTerminated {
		t.Errorf("leader=%d quiescent=%t terminated=%t after double heal",
			res.Leader, res.Quiescent, res.AllTerminated)
	}
	if want := core.PredictedAlg2Pulses(len(ids), ring.MaxID(ids)); res.Sent != want {
		t.Errorf("sent %d, want %d", res.Sent, want)
	}
}

// oneShot is a minimal Undoable machine: Init sends one pulse on Port1,
// every received pulse is absorbed. Its whole mutable state is the
// "did I init" flag plus a received counter — small enough to reason
// about RestoreInit's amnesia exactly.
type oneShot struct {
	inited   bool
	received uint8
}

func (o *oneShot) Init(e node.PulseEmitter) {
	o.inited = true
	e.Send(pulse.Port1, pulse.Pulse{})
}
func (o *oneShot) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) { o.received++ }
func (o *oneShot) Ready(pulse.Port) bool                            { return true }
func (o *oneShot) Status() node.Status                              { return node.Status{} }
func (o *oneShot) SnapshotTo(buf []byte) []byte {
	b := byte(0)
	if o.inited {
		b = 1
	}
	return append(buf, b, o.received)
}
func (o *oneShot) Restore(snap []byte) {
	o.inited = snap[0] == 1
	o.received = snap[1]
}

// TestSupervisorRestoreInit: under the amnesia policy the revived node is
// restored to its pre-Init snapshot and re-initialized, so its wake-up
// pulse is sent TWICE — the healed run's ledger shows exactly one extra
// send relative to a clean run, and still quiesces.
func TestSupervisorRestoreInit(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	ms := []node.PulseMachine{&oneShot{}, &oneShot{}}
	plane := crashPlane(t, 2, fault.Injection{Class: fault.Crash, Node: 0, Trigger: 1})
	res, err := live.Run(topo, ms,
		live.WithFaultPlane(plane),
		live.WithSupervisor(live.RestoreInit),
		live.WithTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Heals) != 1 || res.Heals[0] != 0 {
		t.Fatalf("heals %v, want [0]", res.Heals)
	}
	// Clean run: 2 sends. Amnesiac heal: node 0's Init ran twice → 3.
	if res.Sent != 3 || res.Delivered != 3 || !res.Quiescent {
		t.Errorf("sent=%d delivered=%d quiescent=%t, want 3/3/true", res.Sent, res.Delivered, res.Quiescent)
	}
}

// sink is oneShot without Undoable: RestoreInit cannot revive it.
type sink struct{}

func (sink) Init(e node.PulseEmitter)                         { e.Send(pulse.Port1, pulse.Pulse{}) }
func (sink) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {}
func (sink) Ready(pulse.Port) bool                            { return true }
func (sink) Status() node.Status                              { return node.Status{} }

// TestSupervisorUnhealableCrash: a RestoreInit supervisor facing a
// non-restorable machine records a structured note, leaves the node dead,
// and the run ends in the usual stall diagnosis.
func TestSupervisorUnhealableCrash(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	ms := []node.PulseMachine{sink{}, sink{}}
	plane := crashPlane(t, 2, fault.Injection{Class: fault.Crash, Node: 0, Trigger: 1})
	res, err := live.Run(topo, ms,
		live.WithFaultPlane(plane),
		live.WithSupervisor(live.RestoreInit),
		live.WithTimeout(200*time.Millisecond))
	if !errors.Is(err, live.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout (node 0 dead, its queue stranded)", err)
	}
	if len(res.Heals) != 0 {
		t.Errorf("heals %v, want none", res.Heals)
	}
	found := false
	for _, n := range res.Notes {
		if n.Code == "unhealable-crash" {
			found = true
		}
	}
	if !found {
		t.Errorf("notes %v lack an unhealable-crash entry", res.Notes)
	}
	var se *live.StallError
	if !errors.As(err, &se) {
		t.Fatal("timeout did not carry a StallError")
	}
	foundCrashed := false
	for _, ns := range se.Report.Nodes {
		if ns.Node == 0 && ns.Crashed {
			foundCrashed = true
		}
	}
	if !foundCrashed {
		t.Errorf("stall report %+v does not name node 0 as crashed", se.Report)
	}
}

// TestStallReportJSONRoundTrip: a report captured from a real stalled run
// survives encode → decode → re-encode byte-identically, including a
// non-nil machine error flattened to its message.
func TestStallReportJSONRoundTrip(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	ms := []node.PulseMachine{&chatterbox{}, &chatterbox{}}
	_, err = live.Run(topo, ms, live.WithTimeout(50*time.Millisecond))
	var se *live.StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a StallError", err)
	}
	rep := se.Report
	// Exercise the error-bearing path too; real machine errors reach the
	// report through Status.
	if len(rep.Nodes) > 0 {
		rep.Nodes[0].Status.Err = errors.New("pulse on a provably silent channel")
	}
	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded live.StallReport
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("round trip changed bytes:\n first: %s\nsecond: %s", first, second)
	}
	if len(rep.Nodes) > 0 {
		if decoded.Nodes[0].Status.Err == nil ||
			decoded.Nodes[0].Status.Err.Error() != rep.Nodes[0].Status.Err.Error() {
			t.Errorf("status error did not survive: %v", decoded.Nodes[0].Status.Err)
		}
	}
}

// TestErrTimeoutThroughWrapping: errors.Is(err, ErrTimeout) and
// errors.As(&StallError) both hold through additional %w wrapping layers,
// the contract callers rely on when they annotate Run errors.
func TestErrTimeoutThroughWrapping(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	ms := []node.PulseMachine{&chatterbox{}, &chatterbox{}}
	_, runErr := live.Run(topo, ms, live.WithTimeout(50*time.Millisecond))
	wrapped := fmt.Errorf("experiment harness: %w", fmt.Errorf("trial 3: %w", runErr))
	if !errors.Is(wrapped, live.ErrTimeout) {
		t.Errorf("errors.Is(wrapped, ErrTimeout) = false through two wrap layers")
	}
	var se *live.StallError
	if !errors.As(wrapped, &se) {
		t.Error("errors.As(*StallError) = false through two wrap layers")
	}
	if se != nil && se.Report.InFlight == 0 {
		t.Error("recovered stall report lost its in-flight count")
	}
}
