// Package live executes pulse machines on a runtime made of real
// concurrency: one goroutine per ring node, connected by unbounded FIFO
// conduits. The Go scheduler supplies the asynchrony — message delays
// become goroutine scheduling delays, unbounded but finite, exactly the
// adversary of Section 2 — so this runtime complements the deterministic
// simulator (internal/sim) with genuinely nondeterministic executions.
//
// Content-obliviousness is physical here: the conduits carry struct{}
// values, so there is no content to consult even by accident.
//
// Quiescence detection uses a single conservation counter: every send
// increments it and every fully processed delivery decrements it after the
// handler (and its sends) completed. Pulses are created only inside
// handlers, and a running handler keeps its own input pulse counted, so
// once the counter reaches zero with all nodes initialized it can never
// rise again: zero is a stable, race-free quiescence witness. Detection is
// event-driven — whichever goroutine performs the decrement that reaches
// (0 in flight, 0 uninitialized) signals the supervisor directly, so there
// is no poll loop and no detection latency to tune.
//
// A watchdog supervises the whole run: if the deadline passes without
// quiescence, Run returns a structured StallReport naming the stalled
// nodes, their queue occupancy, and the in-flight count, instead of a bare
// timeout.
//
// WithFaultPlane steps deliberately outside the model: conduits then drop,
// duplicate, and inject pulses, and nodes crash, restart, or corrupt on
// the plane's seeded schedule. Fault accounting preserves the conservation
// argument — drops are decided before the counter increment, injections
// are counted before their pulse is offered, and a restart's sends happen
// inside the handler window — so zero remains a stable witness even on
// faulted runs.
//
// WithSupervisor closes the loop a crash opens. Without it a crashed node
// is gone for good: its goroutine exits, its queued pulses strand, and the
// run ends in a StallReport. With it, the dying goroutine hands its node to
// a supervisor goroutine, which restores the machine (per RestorePolicy),
// re-spawns the consume loop on the same conduits (the pumps never died),
// and thereby re-enters the quiescence protocol: the revived node's queued
// pulses are still in the conservation ledger, so zero — and hence
// quiescence — becomes reachable again. Under RestoreCheckpoint the
// machine resumes from its exact crash-time state, so a healed run sends
// exactly as many pulses as a clean one; under RestoreInit the node comes
// back amnesiac (init snapshot plus a fresh Init), modeling a fail-stop
// restart that the quiescently stabilizing algorithms must absorb.
package live

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"coleader/internal/fault"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// ErrTimeout is returned when the network fails to quiesce within the
// configured deadline. The returned error is a *StallError carrying the
// full StallReport; errors.Is(err, ErrTimeout) matches it.
var ErrTimeout = errors.New("live: timed out waiting for quiescence")

// Result summarizes a finished live run.
type Result struct {
	N                int
	Sent             uint64
	Delivered        uint64
	SentCW           uint64
	SentCCW          uint64
	Quiescent        bool
	AllTerminated    bool
	Leader           int // unique leader index, or -1
	Leaders          []int
	Statuses         []node.Status
	TerminationOrder []int
	// Heals lists, in supervision order, the node index of every crash
	// the supervisor healed; a node that crashed twice appears twice.
	Heals []int
	// Notes is the structured run log: deprecated options, unhealable
	// crashes, and similar diagnoses that are not errors.
	Notes []RunNote
}

// RunNote is one structured run-log entry.
type RunNote struct {
	// Code is a stable machine-matchable tag ("deprecated-option",
	// "unhealable-crash").
	Code string
	// Detail is the human-readable elaboration.
	Detail string
}

// StallReport is the watchdog's structured diagnosis of a run that failed
// to quiesce: the conservation counter's residue plus, per implicated
// node, its queue occupancy, crash flag, and machine status.
type StallReport struct {
	// InFlight is the conservation counter at the deadline: pulses sent
	// (or injected) but never fully processed.
	InFlight int64
	// Unstarted counts nodes whose Init had not completed.
	Unstarted int
	// Nodes lists every node with a non-empty queue or a crash, in
	// ascending node order.
	Nodes []NodeStall
}

// NodeStall describes one stalled node.
type NodeStall struct {
	Node int
	// Queued holds the undelivered pulse count per port.
	Queued [2]int
	// Crashed reports a fault-plane crash (the node stopped consuming).
	Crashed bool
	// Status is the machine's final status.
	Status node.Status
}

// nodeStallJSON is the wire shape of NodeStall: node.Status is inlined
// with its Err flattened to a message string, since error values do not
// survive encoding/json.
type nodeStallJSON struct {
	Node           int        `json:"node"`
	Queued         [2]int     `json:"queued"`
	Crashed        bool       `json:"crashed,omitempty"`
	State          node.State `json:"state"`
	Terminated     bool       `json:"terminated,omitempty"`
	HasOrientation bool       `json:"hasOrientation,omitempty"`
	CWPort         pulse.Port `json:"cwPort,omitempty"`
	Err            string     `json:"err,omitempty"`
}

// MarshalJSON implements json.Marshaler; see nodeStallJSON.
func (ns NodeStall) MarshalJSON() ([]byte, error) {
	w := nodeStallJSON{
		Node:           ns.Node,
		Queued:         ns.Queued,
		Crashed:        ns.Crashed,
		State:          ns.Status.State,
		Terminated:     ns.Status.Terminated,
		HasOrientation: ns.Status.HasOrientation,
		CWPort:         ns.Status.CWPort,
	}
	if ns.Status.Err != nil {
		w.Err = ns.Status.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler. A non-empty err string comes
// back as an opaque error with that message, so a decoded report
// re-encodes to the same bytes.
func (ns *NodeStall) UnmarshalJSON(data []byte) error {
	var w nodeStallJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*ns = NodeStall{
		Node:    w.Node,
		Queued:  w.Queued,
		Crashed: w.Crashed,
		Status: node.Status{
			State:          w.State,
			Terminated:     w.Terminated,
			HasOrientation: w.HasOrientation,
			CWPort:         w.CWPort,
		},
	}
	if w.Err != "" {
		ns.Status.Err = errors.New(w.Err)
	}
	return nil
}

// StallError is the timeout error: it wraps ErrTimeout and carries the
// StallReport.
type StallError struct {
	Report StallReport
}

// Error renders the report on one line.
func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %d pulses unaccounted", ErrTimeout, e.Report.InFlight)
	if e.Report.Unstarted > 0 {
		fmt.Fprintf(&b, ", %d nodes uninitialized", e.Report.Unstarted)
	}
	for _, ns := range e.Report.Nodes {
		fmt.Fprintf(&b, "; stalled node %d", ns.Node)
		if ns.Crashed {
			b.WriteString(" (crashed)")
		}
		if ns.Queued[0] > 0 || ns.Queued[1] > 0 {
			fmt.Fprintf(&b, " queued=[%d %d]", ns.Queued[0], ns.Queued[1])
		}
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrTimeout) hold.
func (e *StallError) Unwrap() error { return ErrTimeout }

type config struct {
	timeout   time.Duration
	chaos     uint64 // 0 = off; otherwise a jitter seed
	plane     *fault.Plane
	supervise bool
	policy    RestorePolicy
	notes     []RunNote
}

// Option configures Run.
type Option func(*config)

// WithTimeout bounds the whole run (default 10s).
func WithTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithPollInterval has no effect: quiescence detection is event-driven
// (the goroutine whose decrement takes the conservation counter to zero
// with all nodes initialized signals the watchdog), so there is no poll
// period left to tune. Calls are recorded as a "deprecated-option" note
// in Result.Notes so lingering call sites surface in run logs instead of
// silently vanishing.
//
// Deprecated: remove calls; the option has no effect.
func WithPollInterval(d time.Duration) Option {
	return func(c *config) {
		c.notes = append(c.notes, RunNote{
			Code:   "deprecated-option",
			Detail: fmt.Sprintf("WithPollInterval(%v) ignored: quiescence detection is event-driven", d),
		})
	}
}

// RestorePolicy selects what state a supervised node is revived with.
type RestorePolicy uint8

const (
	// RestoreCheckpoint (the default) resumes the machine from its exact
	// crash-time state: the crash killed the goroutine, not the state, so
	// the healed run is pulse-for-pulse identical to a crash-free one.
	RestoreCheckpoint RestorePolicy = iota
	// RestoreInit revives the node amnesiac: the machine is restored to
	// its pre-Init snapshot and re-initialized (its wake-up sends are
	// counted normally). This models a fail-stop restart with state loss
	// and requires the machine to be node.Undoable; a crash of a
	// non-restorable machine is recorded as an "unhealable-crash" note
	// and left dead.
	RestoreInit
)

// WithSupervisor enables crash healing: when a fault-plane crash kills a
// node's goroutine, a supervisor revives the node under the given policy
// and the ring re-enters the quiescence protocol. Without a fault plane
// the option is inert.
func WithSupervisor(p RestorePolicy) Option {
	return func(c *config) { c.supervise = true; c.policy = p }
}

// WithChaos makes every conduit inject pseudo-random scheduling jitter
// (bursts of runtime.Gosched and occasional microsecond sleeps) before
// each delivery, seeded per channel from seed. This widens the set of
// interleavings the Go scheduler realizes — a cheap approximation of the
// adversarial delays the model allows, on real concurrency.
func WithChaos(seed int64) Option { return func(c *config) { c.chaos = uint64(seed) | 1 } }

// WithFaultPlane attaches a fault plane: sends consult it for loss and
// duplication, conduit pumps for spurious injection, and node goroutines
// for crash/restart/corruption after each handler. The plane's trigger
// counters are per-entity and each entity is driven by exactly one
// goroutine here (one sender, one pump, one node loop), matching the
// plane's lock-free ownership contract. Faulted runs routinely end in a
// *StallError — a crashed node strands its queue — which is then the
// expected outcome, not a failure of the runtime.
func WithFaultPlane(p *fault.Plane) Option { return func(c *config) { c.plane = p } }

// Run executes the machines until quiescence (or until every node
// terminates) and returns the outcome. Machines must not be reused across
// runs.
func Run(topo ring.Topology, machines []node.PulseMachine, opts ...Option) (Result, error) {
	if len(machines) != topo.N() {
		return Result{}, fmt.Errorf("live: %d machines for %d nodes", len(machines), topo.N())
	}
	cfg := config{timeout: 10 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	n := topo.N()
	if cfg.plane != nil && cfg.plane.Config().Nodes != n {
		return Result{}, fmt.Errorf("live: fault plane sized for %d nodes on a %d-node ring",
			cfg.plane.Config().Nodes, n)
	}

	r := &netRuntime{
		topo:      topo,
		machines:  machines,
		stop:      make(chan struct{}),
		quiesce:   make(chan struct{}, 1),
		conduits:  make([]*conduit, 2*n),
		plane:     cfg.plane,
		supervise: cfg.supervise && cfg.plane != nil,
		policy:    cfg.policy,
		crashCh:   make(chan int),
		notes:     cfg.notes,
	}
	r.initsLeft.Store(int64(n))
	if r.plane != nil {
		r.crashed = make([]bool, n)
		r.initSnaps = make([][]byte, n)
		for k, m := range machines {
			if u, ok := m.(node.Undoable); ok {
				r.initSnaps[k] = u.SnapshotTo(nil)
			}
		}
	}

	// One conduit per directed channel, keyed by receiving endpoint.
	for k := 0; k < n; k++ {
		for _, p := range []pulse.Port{pulse.Port0, pulse.Port1} {
			c := 2*k + int(p)
			var jitter uint64
			if cfg.chaos != 0 {
				jitter = cfg.chaos*0x9e3779b97f4a7c15 + uint64(c)
			}
			cd := newConduit(jitter)
			if r.plane != nil {
				ch := c
				dir := topo.ArrivalDirection(k, p)
				// The pump consults the plane once per delivery; an
				// injected pulse is counted in flight before it is ever
				// offered, keeping zero a stable quiescence witness.
				cd.preDeliver = func() int {
					if r.plane.OnDeliver(0, ch) == fault.Spurious {
						r.count(dir)
						return 1
					}
					return 0
				}
			}
			r.conduits[c] = cd
		}
	}

	r.wg.Add(n)
	for k := 0; k < n; k++ {
		go r.nodeLoop(k)
	}
	if r.supervise {
		r.wg.Add(1)
		go r.superviseLoop()
	}

	// Watchdog: wait for the quiescence signal, then release the node
	// goroutines; at the deadline, diagnose instead.
	deadline := time.NewTimer(cfg.timeout)
	defer deadline.Stop()

	var timedOut bool
monitor:
	for {
		select {
		case <-r.quiesce:
			// The signal is sent by the goroutine that observed
			// (0 in flight, 0 uninitialized); re-check defensively.
			if r.initsLeft.Load() == 0 && r.inflight.Load() == 0 {
				break monitor
			}
		case <-deadline.C:
			timedOut = true
			break monitor
		}
	}
	close(r.stop)
	for _, c := range r.conduits {
		c.close()
	}
	r.wg.Wait()

	res := r.collect()
	if timedOut {
		return res, &StallError{Report: r.stallReport()}
	}
	return res, nil
}

type netRuntime struct {
	topo      ring.Topology
	machines  []node.PulseMachine
	conduits  []*conduit
	stop      chan struct{}
	quiesce   chan struct{} // buffered(1): edge signal that zero was reached
	wg        sync.WaitGroup
	inflight  atomic.Int64
	initsLeft atomic.Int64

	sent      atomic.Uint64
	delivered atomic.Uint64
	sentCW    atomic.Uint64
	sentCCW   atomic.Uint64

	mu        sync.Mutex
	termOrder []int
	heals     []int
	notes     []RunNote

	// Fault plane state (nil/absent on model-exact runs). crashed[k],
	// initSnaps[k], and machines[k] are owned by whichever goroutine is
	// currently driving node k; ownership starts at the node's goroutine
	// and transfers through the crashCh handoff (channel send), then to
	// the revived goroutine (goroutine start), so every write is ordered
	// and the post-wg.Wait reads in collect/stallReport see the final
	// values without extra synchronization.
	plane     *fault.Plane
	crashed   []bool
	initSnaps [][]byte

	// Supervision (off unless WithSupervisor and a fault plane are both
	// present). crashCh carries the index of a crashed node from its
	// dying goroutine to the supervisor.
	supervise bool
	policy    RestorePolicy
	crashCh   chan int
}

// noteQuiet signals the supervisor if the conservation counter is zero with
// every node initialized. Called after every decrement of either counter;
// zero is stable once reached (no handler is running when in-flight is
// zero, so nothing can send), making the edge signal sufficient.
func (r *netRuntime) noteQuiet() {
	if r.initsLeft.Load() == 0 && r.inflight.Load() == 0 {
		select {
		case r.quiesce <- struct{}{}:
		default:
		}
	}
}

// count records one pulse entering the wire.
func (r *netRuntime) count(dir pulse.Direction) {
	r.inflight.Add(1)
	r.sent.Add(1)
	if dir == pulse.CW {
		r.sentCW.Add(1)
	} else {
		r.sentCCW.Add(1)
	}
}

// emitter routes a node's sends into the appropriate conduits, maintaining
// the conservation counter.
type emitter struct {
	r    *netRuntime
	from int
}

// Send implements node.Emitter. With a fault plane, loss is decided before
// the pulse is counted (a dropped pulse never enters the conservation
// ledger) and duplication places two counted pulses.
func (e emitter) Send(p pulse.Port, m pulse.Pulse) {
	to := e.r.topo.Peer(e.from, p)
	c := 2*to.Node + int(to.Port)
	copies := 1
	if e.r.plane != nil {
		switch e.r.plane.OnSend(0, c) {
		case fault.Loss:
			return
		case fault.Dup:
			copies = 2
		}
	}
	dir := e.r.topo.DirectionOf(e.from, p)
	for i := 0; i < copies; i++ {
		e.r.count(dir)
		e.r.conduits[c].push()
	}
}

// applyNodeFault consults the plane after node k's handler invocation and
// applies the outcome. It returns false when the node crashed (the caller
// must stop consuming); restart and corruption keep the node running.
func (r *netRuntime) applyNodeFault(k int, m node.PulseMachine, em emitter) bool {
	if r.plane == nil {
		return true
	}
	switch r.plane.OnHandler(0, k) {
	case fault.Crash:
		r.crashed[k] = true
		return false
	case fault.Restart:
		u, ok := m.(node.Undoable)
		if !ok {
			r.plane.SkipLast(k)
			break
		}
		u.Restore(r.initSnaps[k])
		m.Init(em) // the restart's wake-up; its sends are counted normally
	case fault.Corrupt:
		u, ok := m.(node.Undoable)
		if !ok {
			r.plane.SkipLast(k)
			break
		}
		u.Restore(r.plane.Perturb(k, u.SnapshotTo(nil)))
	}
	return true
}

func (r *netRuntime) nodeLoop(k int) {
	defer r.wg.Done()
	m := r.machines[k]
	em := emitter{r: r, from: k}

	m.Init(em)
	alive := r.applyNodeFault(k, m, em)
	r.initsLeft.Add(-1)
	r.noteQuiet()
	if !alive {
		r.offerHeal(k)
		return
	}
	r.consume(k, m, em)
}

// consume runs node k's delivery loop until termination, shutdown, or a
// fault-plane crash (which it hands to the supervisor when one exists).
func (r *netRuntime) consume(k int, m node.PulseMachine, em emitter) {
	in0 := r.conduits[2*k+0]
	in1 := r.conduits[2*k+1]
	for {
		st := m.Status()
		if st.Terminated || st.Err != nil {
			if st.Terminated {
				r.mu.Lock()
				r.termOrder = append(r.termOrder, k)
				r.mu.Unlock()
			}
			return
		}
		// Gate each port by Ready: a nil channel is never selected, which
		// realizes the model's "the node does not poll this queue".
		var c0, c1 <-chan pulse.Pulse
		if m.Ready(pulse.Port0) {
			c0 = in0.out
		}
		if m.Ready(pulse.Port1) {
			c1 = in1.out
		}
		select {
		case <-r.stop:
			return
		case _, ok := <-c0:
			if !ok {
				return
			}
			m.OnMsg(pulse.Port0, pulse.Pulse{}, em)
			alive := r.applyNodeFault(k, m, em)
			r.delivered.Add(1)
			r.inflight.Add(-1)
			r.noteQuiet()
			if !alive {
				r.offerHeal(k)
				return
			}
		case _, ok := <-c1:
			if !ok {
				return
			}
			m.OnMsg(pulse.Port1, pulse.Pulse{}, em)
			alive := r.applyNodeFault(k, m, em)
			r.delivered.Add(1)
			r.inflight.Add(-1)
			r.noteQuiet()
			if !alive {
				r.offerHeal(k)
				return
			}
		}
	}
}

// offerHeal hands a crashed node to the supervisor. The WaitGroup slot for
// the node's next incarnation is reserved BEFORE the handoff, so wg.Wait
// cannot pass between the old goroutine's exit and the revival; a shutdown
// racing the handoff releases the reservation instead.
func (r *netRuntime) offerHeal(k int) {
	if !r.supervise {
		return
	}
	r.wg.Add(1)
	select {
	case r.crashCh <- k:
	case <-r.stop:
		r.wg.Done()
	}
}

// superviseLoop heals crashes until shutdown.
func (r *netRuntime) superviseLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case k := <-r.crashCh:
			r.heal(k)
		}
	}
}

// heal revives crashed node k per the restore policy and re-spawns its
// consume loop on the same conduits (whose pumps never stopped, so the
// node's queued pulses — still counted in flight — are waiting for it).
// The revived node re-enters the quiescence protocol immediately: once it
// drains its queue the conservation counter can reach zero again. Owns
// the inherited WaitGroup slot and either passes it to the new goroutine
// or releases it on an unhealable crash.
func (r *netRuntime) heal(k int) {
	m := r.machines[k]
	em := emitter{r: r, from: k}
	if r.policy == RestoreInit {
		u, ok := m.(node.Undoable)
		if !ok || r.initSnaps[k] == nil {
			r.note("unhealable-crash", fmt.Sprintf("node %d is not restorable; left dead", k))
			r.wg.Done()
			return
		}
		u.Restore(r.initSnaps[k])
	}
	r.crashed[k] = false
	r.mu.Lock()
	r.heals = append(r.heals, k)
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		if r.policy == RestoreInit {
			// The revival's wake-up; its sends are counted normally, so the
			// conservation ledger absorbs the amnesiac restart like any
			// other init. The plane may crash the node again right here.
			m.Init(em)
			if !r.applyNodeFault(k, m, em) {
				r.offerHeal(k)
				return
			}
		}
		r.consume(k, m, em)
	}()
}

// note appends a structured run-log entry.
func (r *netRuntime) note(code, detail string) {
	r.mu.Lock()
	r.notes = append(r.notes, RunNote{Code: code, Detail: detail})
	r.mu.Unlock()
}

func (r *netRuntime) collect() Result {
	n := r.topo.N()
	res := Result{
		N:         n,
		Sent:      r.sent.Load(),
		Delivered: r.delivered.Load(),
		SentCW:    r.sentCW.Load(),
		SentCCW:   r.sentCCW.Load(),
		Quiescent: r.inflight.Load() == 0 && r.initsLeft.Load() == 0,
		Leader:    -1,
		Statuses:  make([]node.Status, n),
	}
	res.AllTerminated = true
	for k := 0; k < n; k++ {
		st := r.machines[k].Status()
		res.Statuses[k] = st
		if st.State == node.StateLeader {
			res.Leaders = append(res.Leaders, k)
		}
		if !st.Terminated {
			res.AllTerminated = false
		}
	}
	if len(res.Leaders) == 1 {
		res.Leader = res.Leaders[0]
	}
	r.mu.Lock()
	res.TerminationOrder = append(res.TerminationOrder, r.termOrder...)
	res.Heals = append(res.Heals, r.heals...)
	res.Notes = append(res.Notes, r.notes...)
	r.mu.Unlock()
	return res
}

// stallReport assembles the watchdog diagnosis. Called after wg.Wait, so
// machine and crash state reads are ordered after all goroutine writes.
func (r *netRuntime) stallReport() StallReport {
	rep := StallReport{
		InFlight:  r.inflight.Load(),
		Unstarted: int(r.initsLeft.Load()),
	}
	for k := 0; k < r.topo.N(); k++ {
		q0 := r.conduits[2*k+0].queued()
		q1 := r.conduits[2*k+1].queued()
		crashed := r.crashed != nil && r.crashed[k]
		if q0 == 0 && q1 == 0 && !crashed {
			continue
		}
		rep.Nodes = append(rep.Nodes, NodeStall{
			Node:    k,
			Queued:  [2]int{q0, q1},
			Crashed: crashed,
			Status:  r.machines[k].Status(),
		})
	}
	return rep
}

// conduit is an unbounded FIFO pulse channel. Pulses carry no content, so
// the backlog is a counter; a tiny pump goroutine offers pulses on out
// whenever the backlog is positive. push never blocks. pushed/taken shadow
// the backlog in atomics so the watchdog can read queue occupancy.
type conduit struct {
	in  chan pulse.Pulse //oblint:chandir send
	out chan pulse.Pulse //oblint:chandir recv

	done   chan struct{}
	once   sync.Once
	jitter uint64 // 0 = no chaos; otherwise the channel's jitter state

	// preDeliver, when set, is consulted exactly once per offered pulse
	// and returns extra (injected) pulses to add to the backlog.
	preDeliver func() int

	pushed atomic.Int64
	taken  atomic.Int64
}

func newConduit(jitter uint64) *conduit {
	c := &conduit{
		in:     make(chan pulse.Pulse, 1),
		out:    make(chan pulse.Pulse),
		done:   make(chan struct{}),
		jitter: jitter,
	}
	go c.pump()
	return c
}

func (c *conduit) push() {
	c.pushed.Add(1)
	select {
	case c.in <- pulse.Pulse{}:
	case <-c.done:
	}
}

func (c *conduit) close() { c.once.Do(func() { close(c.done) }) }

// queued returns the undelivered pulse count (approximate while the pump
// is running; exact once it has stopped).
func (c *conduit) queued() int { return int(c.pushed.Load() - c.taken.Load()) }

// shake injects pseudo-random scheduling jitter before a delivery.
func (c *conduit) shake() {
	if c.jitter == 0 {
		return
	}
	// xorshift64 step.
	x := c.jitter
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.jitter = x
	switch x % 16 {
	case 0:
		time.Sleep(time.Duration(x%5) * time.Microsecond)
	case 1, 2, 3:
		for i := uint64(0); i < x%8; i++ {
			runtime.Gosched()
		}
	}
}

func (c *conduit) pump() {
	backlog := 0
	counted := false // plane consulted for the pulse currently on offer
	for {
		var out chan<- pulse.Pulse
		if backlog > 0 {
			if !counted {
				counted = true
				if c.preDeliver != nil {
					if extra := c.preDeliver(); extra > 0 {
						backlog += extra
						c.pushed.Add(int64(extra))
					}
				}
			}
			c.shake()
			out = c.out
		}
		select {
		case <-c.done:
			return
		case <-c.in:
			backlog++
		case out <- pulse.Pulse{}:
			backlog--
			counted = false
			c.taken.Add(1)
		}
	}
}
