// Package live executes pulse machines on a runtime made of real
// concurrency: one goroutine per ring node, connected by unbounded FIFO
// conduits. The Go scheduler supplies the asynchrony — message delays
// become goroutine scheduling delays, unbounded but finite, exactly the
// adversary of Section 2 — so this runtime complements the deterministic
// simulator (internal/sim) with genuinely nondeterministic executions.
//
// Content-obliviousness is physical here: the conduits carry struct{}
// values, so there is no content to consult even by accident.
//
// Quiescence detection uses a single conservation counter: every send
// increments it and every fully processed delivery decrements it after the
// handler (and its sends) completed. Pulses are created only inside
// handlers, and a running handler keeps its own input pulse counted, so
// once the counter reaches zero with all nodes initialized it can never
// rise again: zero is a stable, race-free quiescence witness.
package live

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// ErrTimeout is returned when the network fails to quiesce within the
// configured deadline.
var ErrTimeout = errors.New("live: timed out waiting for quiescence")

// Result summarizes a finished live run.
type Result struct {
	N                int
	Sent             uint64
	Delivered        uint64
	SentCW           uint64
	SentCCW          uint64
	Quiescent        bool
	AllTerminated    bool
	Leader           int // unique leader index, or -1
	Leaders          []int
	Statuses         []node.Status
	TerminationOrder []int
}

type config struct {
	timeout time.Duration
	poll    time.Duration
	chaos   uint64 // 0 = off; otherwise a jitter seed
}

// Option configures Run.
type Option func(*config)

// WithTimeout bounds the whole run (default 10s).
func WithTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithPollInterval sets the quiescence-detector poll period (default 200µs).
func WithPollInterval(d time.Duration) Option { return func(c *config) { c.poll = d } }

// WithChaos makes every conduit inject pseudo-random scheduling jitter
// (bursts of runtime.Gosched and occasional microsecond sleeps) before
// each delivery, seeded per channel from seed. This widens the set of
// interleavings the Go scheduler realizes — a cheap approximation of the
// adversarial delays the model allows, on real concurrency.
func WithChaos(seed int64) Option { return func(c *config) { c.chaos = uint64(seed) | 1 } }

// Run executes the machines until quiescence (or until every node
// terminates) and returns the outcome. Machines must not be reused across
// runs.
func Run(topo ring.Topology, machines []node.PulseMachine, opts ...Option) (Result, error) {
	if len(machines) != topo.N() {
		return Result{}, fmt.Errorf("live: %d machines for %d nodes", len(machines), topo.N())
	}
	cfg := config{timeout: 10 * time.Second, poll: 200 * time.Microsecond}
	for _, o := range opts {
		o(&cfg)
	}

	n := topo.N()
	r := &netRuntime{
		topo:     topo,
		machines: machines,
		stop:     make(chan struct{}),
		conduits: make([]*conduit, 2*n),
	}
	r.initsLeft.Store(int64(n))

	// One conduit per directed channel, keyed by receiving endpoint.
	for k := 0; k < n; k++ {
		for _, p := range []pulse.Port{pulse.Port0, pulse.Port1} {
			c := 2*k + int(p)
			var jitter uint64
			if cfg.chaos != 0 {
				jitter = cfg.chaos*0x9e3779b97f4a7c15 + uint64(c)
			}
			r.conduits[c] = newConduit(jitter)
		}
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for k := 0; k < n; k++ {
		go r.nodeLoop(k, &wg)
	}

	// Monitor: wait for quiescence, then release the node goroutines.
	deadline := time.NewTimer(cfg.timeout)
	defer deadline.Stop()
	tick := time.NewTicker(cfg.poll)
	defer tick.Stop()

	var timedOut bool
monitor:
	for {
		select {
		case <-tick.C:
			if r.initsLeft.Load() == 0 && r.inflight.Load() == 0 {
				break monitor
			}
		case <-deadline.C:
			timedOut = true
			break monitor
		}
	}
	close(r.stop)
	for _, c := range r.conduits {
		c.close()
	}
	wg.Wait()

	res := r.collect()
	if timedOut {
		return res, fmt.Errorf("%w: %d pulses unaccounted", ErrTimeout, r.inflight.Load())
	}
	return res, nil
}

type netRuntime struct {
	topo      ring.Topology
	machines  []node.PulseMachine
	conduits  []*conduit
	stop      chan struct{}
	inflight  atomic.Int64
	initsLeft atomic.Int64

	sent      atomic.Uint64
	delivered atomic.Uint64
	sentCW    atomic.Uint64
	sentCCW   atomic.Uint64

	mu        sync.Mutex
	termOrder []int
}

// emitter routes a node's sends into the appropriate conduits, maintaining
// the conservation counter.
type emitter struct {
	r    *netRuntime
	from int
}

// Send implements node.Emitter.
func (e emitter) Send(p pulse.Port, m pulse.Pulse) {
	to := e.r.topo.Peer(e.from, p)
	e.r.inflight.Add(1)
	e.r.sent.Add(1)
	if e.r.topo.DirectionOf(e.from, p) == pulse.CW {
		e.r.sentCW.Add(1)
	} else {
		e.r.sentCCW.Add(1)
	}
	e.r.conduits[2*to.Node+int(to.Port)].push()
}

func (r *netRuntime) nodeLoop(k int, wg *sync.WaitGroup) {
	defer wg.Done()
	m := r.machines[k]
	em := emitter{r: r, from: k}

	m.Init(em)
	r.initsLeft.Add(-1)

	in0 := r.conduits[2*k+0]
	in1 := r.conduits[2*k+1]
	for {
		st := m.Status()
		if st.Terminated || st.Err != nil {
			if st.Terminated {
				r.mu.Lock()
				r.termOrder = append(r.termOrder, k)
				r.mu.Unlock()
			}
			return
		}
		// Gate each port by Ready: a nil channel is never selected, which
		// realizes the model's "the node does not poll this queue".
		var c0, c1 <-chan pulse.Pulse
		if m.Ready(pulse.Port0) {
			c0 = in0.out
		}
		if m.Ready(pulse.Port1) {
			c1 = in1.out
		}
		select {
		case <-r.stop:
			return
		case _, ok := <-c0:
			if !ok {
				return
			}
			m.OnMsg(pulse.Port0, pulse.Pulse{}, em)
			r.delivered.Add(1)
			r.inflight.Add(-1)
		case _, ok := <-c1:
			if !ok {
				return
			}
			m.OnMsg(pulse.Port1, pulse.Pulse{}, em)
			r.delivered.Add(1)
			r.inflight.Add(-1)
		}
	}
}

func (r *netRuntime) collect() Result {
	n := r.topo.N()
	res := Result{
		N:         n,
		Sent:      r.sent.Load(),
		Delivered: r.delivered.Load(),
		SentCW:    r.sentCW.Load(),
		SentCCW:   r.sentCCW.Load(),
		Quiescent: r.inflight.Load() == 0 && r.initsLeft.Load() == 0,
		Leader:    -1,
		Statuses:  make([]node.Status, n),
	}
	res.AllTerminated = true
	for k := 0; k < n; k++ {
		st := r.machines[k].Status()
		res.Statuses[k] = st
		if st.State == node.StateLeader {
			res.Leaders = append(res.Leaders, k)
		}
		if !st.Terminated {
			res.AllTerminated = false
		}
	}
	if len(res.Leaders) == 1 {
		res.Leader = res.Leaders[0]
	}
	r.mu.Lock()
	res.TerminationOrder = append(res.TerminationOrder, r.termOrder...)
	r.mu.Unlock()
	return res
}

// conduit is an unbounded FIFO pulse channel. Pulses carry no content, so
// the backlog is a counter; a tiny pump goroutine offers pulses on out
// whenever the backlog is positive. push never blocks.
type conduit struct {
	in     chan pulse.Pulse
	out    chan pulse.Pulse
	done   chan struct{}
	once   sync.Once
	jitter uint64 // 0 = no chaos; otherwise the channel's jitter state
}

func newConduit(jitter uint64) *conduit {
	c := &conduit{
		in:     make(chan pulse.Pulse, 1),
		out:    make(chan pulse.Pulse),
		done:   make(chan struct{}),
		jitter: jitter,
	}
	go c.pump()
	return c
}

func (c *conduit) push() {
	select {
	case c.in <- pulse.Pulse{}:
	case <-c.done:
	}
}

func (c *conduit) close() { c.once.Do(func() { close(c.done) }) }

// shake injects pseudo-random scheduling jitter before a delivery.
func (c *conduit) shake() {
	if c.jitter == 0 {
		return
	}
	// xorshift64 step.
	x := c.jitter
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.jitter = x
	switch x % 16 {
	case 0:
		time.Sleep(time.Duration(x%5) * time.Microsecond)
	case 1, 2, 3:
		for i := uint64(0); i < x%8; i++ {
			runtime.Gosched()
		}
	}
}

func (c *conduit) pump() {
	backlog := 0
	for {
		var out chan<- pulse.Pulse
		if backlog > 0 {
			c.shake()
			out = c.out
		}
		select {
		case <-c.done:
			return
		case <-c.in:
			backlog++
		case out <- pulse.Pulse{}:
			backlog--
		}
	}
}
