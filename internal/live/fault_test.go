package live_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"coleader/internal/core"
	"coleader/internal/fault"
	"coleader/internal/live"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// sender fires one pulse out of Port1 and then idles with both ports open.
type sender struct{}

func (sender) Init(e node.PulseEmitter)                         { e.Send(pulse.Port1, pulse.Pulse{}) }
func (sender) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {}
func (sender) Ready(pulse.Port) bool                            { return true }
func (sender) Status() node.Status                              { return node.Status{} }

// deaf never reads Port0: anything queued there strands forever.
type deaf struct{}

func (deaf) Init(node.PulseEmitter)                           {}
func (deaf) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {}
func (deaf) Ready(p pulse.Port) bool                          { return p == pulse.Port1 }
func (deaf) Status() node.Status                              { return node.Status{} }

// TestLiveStallReport: a deliberately stalling machine must produce a
// structured StallReport that names the stalled node and its non-empty
// queue, not just a bare timeout.
func TestLiveStallReport(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0's Port1 pulse arrives at node 1's Port0, which deaf never
	// drains: one pulse stays in flight forever.
	ms := []node.PulseMachine{sender{}, deaf{}}
	_, err = live.Run(topo, ms, live.WithTimeout(50*time.Millisecond))
	var stall *live.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v (%T), want *StallError", err, err)
	}
	if !errors.Is(err, live.ErrTimeout) {
		t.Errorf("StallError does not wrap ErrTimeout")
	}
	rep := stall.Report
	if rep.InFlight != 1 {
		t.Errorf("InFlight = %d, want 1", rep.InFlight)
	}
	if rep.Unstarted != 0 {
		t.Errorf("Unstarted = %d, want 0", rep.Unstarted)
	}
	if len(rep.Nodes) != 1 || rep.Nodes[0].Node != 1 {
		t.Fatalf("report nodes = %+v, want exactly node 1", rep.Nodes)
	}
	ns := rep.Nodes[0]
	if ns.Queued != [2]int{1, 0} {
		t.Errorf("node 1 queued = %v, want [1 0]", ns.Queued)
	}
	if ns.Crashed {
		t.Error("node 1 reported crashed without a fault plane")
	}
	if !strings.Contains(err.Error(), "stalled node 1") {
		t.Errorf("error %q does not name the stalled node", err)
	}
}

// TestLiveFaultZeroBudget: attaching a zero-budget plane must not change
// the outcome — same leader, same exact pulse count.
func TestLiveFaultZeroBudget(t *testing.T) {
	ids := []uint64{3, 1, 4, 2}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	plane, err := fault.New(1, fault.Config{Nodes: len(ids), Classes: fault.AllClasses})
	if err != nil {
		t.Fatal(err)
	}
	res, err := live.Run(topo, ms, live.WithFaultPlane(plane))
	if err != nil {
		t.Fatal(err)
	}
	wantLeader, _ := ring.MaxIndex(ids)
	if res.Leader != wantLeader {
		t.Errorf("leader %d, want %d", res.Leader, wantLeader)
	}
	if want := core.PredictedAlg2Pulses(len(ids), 4); res.Sent != want {
		t.Errorf("sent %d, want %d", res.Sent, want)
	}
	if len(plane.Log()) != 0 {
		t.Errorf("zero-budget plane logged injections: %v", plane.Log())
	}
}

// TestLiveFaultPlaneSizeMismatch: a plane sized for the wrong ring is
// rejected up front rather than panicking mid-run.
func TestLiveFaultPlaneSizeMismatch(t *testing.T) {
	topo, err := ring.Oriented(3)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	plane, err := fault.New(1, fault.Config{Nodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.Run(topo, ms, live.WithFaultPlane(plane)); err == nil {
		t.Error("mismatched plane accepted")
	}
}

// TestLiveFaultCrashStallReport: a crash injection fail-stops a node; the
// watchdog's report marks that exact node as crashed.
func TestLiveFaultCrashStallReport(t *testing.T) {
	ids := []uint64{3, 1, 4}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	// Horizon 1: the crash fires at its target's very first handler
	// invocation (Init). The crashed node's incoming pulses strand, so the
	// run can never quiesce.
	plane, err := fault.New(21, fault.Config{
		Nodes: len(ids), Classes: fault.NewSet(fault.Crash), Budget: 1, Horizon: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = live.Run(topo, ms,
		live.WithFaultPlane(plane), live.WithTimeout(100*time.Millisecond))
	var stall *live.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	log := plane.Log()
	if len(log) != 1 || !log[0].Fired {
		t.Fatalf("crash injection did not fire: %v", log)
	}
	victim := log[0].Node
	found := false
	for _, ns := range stall.Report.Nodes {
		if ns.Node == victim && ns.Crashed {
			found = true
		}
	}
	if !found {
		t.Errorf("report %+v does not mark node %d crashed", stall.Report.Nodes, victim)
	}
}

// TestLiveFaultLossQuiesces: losing a pulse from the stabilizing Algorithm 1
// still quiesces (fewer pulses than clean), matching the simulator's
// conservation analysis on the live runtime.
func TestLiveFaultLossQuiesces(t *testing.T) {
	ids := []uint64{3, 1, 4, 2}
	clean := core.PredictedAlg1Pulses(len(ids), 4)
	fired := false
	for seed := int64(1); seed <= 20 && !fired; seed++ {
		plane, err := fault.New(seed, fault.Config{
			Nodes: len(ids), Classes: fault.NewSet(fault.Loss), Budget: 1, Horizon: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		topo, err := ring.Oriented(len(ids))
		if err != nil {
			t.Fatal(err)
		}
		ms, err := core.Alg1Machines(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		res, err := live.Run(topo, ms, live.WithFaultPlane(plane))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !plane.Log()[0].Fired {
			continue // injection targeted a channel Algorithm 1 never uses
		}
		fired = true
		if !res.Quiescent {
			t.Errorf("seed %d: lossy run did not quiesce", seed)
		}
		if res.Sent >= clean {
			t.Errorf("seed %d: sent %d, want < clean %d", seed, res.Sent, clean)
		}
	}
	if !fired {
		t.Fatal("no seed fired a loss injection")
	}
}

// TestLiveFaultSpuriousTimesOut: an injected pulse breaks Algorithm 1's
// pulse conservation, so the ring circulates forever and the watchdog
// reports the stall with a positive in-flight count and no crashed nodes.
func TestLiveFaultSpuriousTimesOut(t *testing.T) {
	ids := []uint64{3, 1, 4, 2}
	fired := false
	for seed := int64(1); seed <= 20 && !fired; seed++ {
		plane, err := fault.New(seed, fault.Config{
			Nodes: len(ids), Classes: fault.NewSet(fault.Spurious), Budget: 1, Horizon: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		topo, err := ring.Oriented(len(ids))
		if err != nil {
			t.Fatal(err)
		}
		ms, err := core.Alg1Machines(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		_, err = live.Run(topo, ms,
			live.WithFaultPlane(plane), live.WithTimeout(150*time.Millisecond))
		if !plane.Log()[0].Fired {
			if err != nil {
				t.Fatalf("seed %d: unfired plane errored: %v", seed, err)
			}
			continue
		}
		fired = true
		var stall *live.StallError
		if !errors.As(err, &stall) {
			t.Fatalf("seed %d: err = %v, want *StallError", seed, err)
		}
		if stall.Report.InFlight <= 0 {
			t.Errorf("seed %d: InFlight = %d, want > 0", seed, stall.Report.InFlight)
		}
		for _, ns := range stall.Report.Nodes {
			if ns.Crashed {
				t.Errorf("seed %d: node %d reported crashed on a spurious-only plane", seed, ns.Node)
			}
		}
	}
	if !fired {
		t.Fatal("no seed fired a spurious injection")
	}
}

// TestLiveFaultCorruptHeals: output-mode corruption of Algorithm 1 is the
// guaranteed-recovery class — the next delivery rewrites the corrupted
// byte, so the run quiesces with the exact clean pulse count and the
// correct leader, on real goroutines.
func TestLiveFaultCorruptHeals(t *testing.T) {
	ids := []uint64{3, 1, 4, 2}
	clean := core.PredictedAlg1Pulses(len(ids), 4)
	wantLeader, _ := ring.MaxIndex(ids)
	for _, budget := range []int{1, 2} {
		plane, err := fault.New(17, fault.Config{
			Nodes:   len(ids),
			Classes: fault.NewSet(fault.Corrupt),
			Budget:  budget,
			Horizon: 2,
			Mode:    fault.PerturbOutput,
		})
		if err != nil {
			t.Fatal(err)
		}
		topo, err := ring.Oriented(len(ids))
		if err != nil {
			t.Fatal(err)
		}
		ms, err := core.Alg1Machines(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		res, err := live.Run(topo, ms, live.WithFaultPlane(plane))
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if got := plane.Fired(); got != budget {
			t.Fatalf("budget %d: %d injections fired", budget, got)
		}
		if !res.Quiescent || res.Leader != wantLeader || res.Sent != clean {
			t.Errorf("budget %d: quiescent=%t leader=%d sent=%d, want true/%d/%d",
				budget, res.Quiescent, res.Leader, res.Sent, wantLeader, clean)
		}
	}
}
