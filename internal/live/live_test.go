package live_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"coleader/internal/core"
	"coleader/internal/live"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// TestLiveAlg2 runs Algorithm 2 on the goroutine runtime: the Go scheduler
// is the asynchronous adversary, yet the outcome and the exact pulse count
// must match Theorem 1 every time.
func TestLiveAlg2(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(10)
		ids := ring.PermutedIDs(n, rng)
		topo, err := ring.Oriented(n)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := core.Alg2Machines(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		res, err := live.Run(topo, ms)
		if err != nil {
			t.Fatalf("trial %d ids %v: %v", trial, ids, err)
		}
		wantLeader, _ := ring.MaxIndex(ids)
		if res.Leader != wantLeader {
			t.Errorf("trial %d: leader %d, want %d", trial, res.Leader, wantLeader)
		}
		if !res.AllTerminated || !res.Quiescent {
			t.Errorf("trial %d: terminated=%t quiescent=%t", trial, res.AllTerminated, res.Quiescent)
		}
		if want := core.PredictedAlg2Pulses(n, ring.MaxID(ids)); res.Sent != want {
			t.Errorf("trial %d: sent %d, want %d", trial, res.Sent, want)
		}
		if res.Sent != res.Delivered {
			t.Errorf("trial %d: sent %d != delivered %d at quiescence", trial, res.Sent, res.Delivered)
		}
		if len(res.TerminationOrder) != n {
			t.Errorf("trial %d: %d termination records, want %d", trial, len(res.TerminationOrder), n)
		}
	}
}

// TestLiveAlg1 checks the stabilizing algorithm quiesces on the live
// runtime with the exact Corollary 13 count, without terminating.
func TestLiveAlg1(t *testing.T) {
	ids := []uint64{4, 9, 2, 7, 5}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg1Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	res, err := live.Run(topo, ms)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllTerminated {
		t.Error("Algorithm 1 terminated")
	}
	if want := core.PredictedAlg1Pulses(len(ids), 9); res.Sent != want {
		t.Errorf("sent %d, want %d", res.Sent, want)
	}
	wantLeader, _ := ring.MaxIndex(ids)
	if res.Leader != wantLeader {
		t.Errorf("leader %d, want %d", res.Leader, wantLeader)
	}
}

// TestLiveAlg3NonOriented runs the non-oriented election+orientation on
// real goroutines across random port assignments.
func TestLiveAlg3NonOriented(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(8)
		ids := ring.PermutedIDs(n, rng)
		topo, err := ring.RandomNonOriented(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := core.Alg3Machines(n, ids, core.SchemeSuccessor)
		if err != nil {
			t.Fatal(err)
		}
		res, err := live.Run(topo, ms)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantLeader, _ := ring.MaxIndex(ids)
		if res.Leader != wantLeader {
			t.Errorf("trial %d: leader %d, want %d", trial, res.Leader, wantLeader)
		}
		if want := core.PredictedAlg3Pulses(n, ring.MaxID(ids), core.SchemeSuccessor); res.Sent != want {
			t.Errorf("trial %d: sent %d, want %d", trial, res.Sent, want)
		}
		var dir pulse.Direction
		for k, st := range res.Statuses {
			if !st.HasOrientation {
				t.Errorf("trial %d: node %d unoriented", trial, k)
				continue
			}
			d := topo.DirectionOf(k, st.CWPort)
			if dir == 0 {
				dir = d
			} else if d != dir {
				t.Errorf("trial %d: inconsistent orientation", trial)
			}
		}
	}
}

// TestLiveSelfRing: the one-node ring works with the node's conduits
// looping back to itself.
func TestLiveSelfRing(t *testing.T) {
	topo, err := ring.Oriented(1)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := live.Run(topo, ms)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 0 || res.Sent != 15 {
		t.Errorf("leader=%d sent=%d, want 0/15", res.Leader, res.Sent)
	}
}

// TestLiveTimeout: a machine that never quiesces trips the deadline.
func TestLiveTimeout(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	ms := []node.PulseMachine{&chatterbox{}, &chatterbox{}}
	_, err = live.Run(topo, ms, live.WithTimeout(50*time.Millisecond))
	if !errors.Is(err, live.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

// chatterbox forwards every pulse forever: the network never quiesces.
type chatterbox struct{ got int }

func (c *chatterbox) Init(e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }
func (c *chatterbox) OnMsg(p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	c.got++
	e.Send(pulse.Port1, pulse.Pulse{})
}
func (c *chatterbox) Ready(pulse.Port) bool { return true }
func (c *chatterbox) Status() node.Status   { return node.Status{} }

// TestLiveValidation covers input validation.
func TestLiveValidation(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.Run(topo, nil); err == nil {
		t.Error("mismatched machine count accepted")
	}
}

// TestLiveMatchesSimulator cross-checks the two runtimes: same ring, same
// IDs — identical leader and identical pulse count (the count is
// schedule-independent by Theorem 1, so the runtimes must agree exactly).
func TestLiveMatchesSimulator(t *testing.T) {
	ids := []uint64{5, 2, 8, 3, 6, 1}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	msLive, err := core.Alg2Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	resLive, err := live.Run(topo, msLive)
	if err != nil {
		t.Fatal(err)
	}
	if want := core.PredictedAlg2Pulses(len(ids), 8); resLive.Sent != want {
		t.Errorf("live sent %d, want %d", resLive.Sent, want)
	}
	wantLeader, _ := ring.MaxIndex(ids)
	if resLive.Leader != wantLeader {
		t.Errorf("live leader %d, want %d", resLive.Leader, wantLeader)
	}
	if resLive.SentCW != 6*8 || resLive.SentCCW != 6*8+6 {
		t.Errorf("direction split (%d,%d), want (48,54)", resLive.SentCW, resLive.SentCCW)
	}
}

// TestLiveTimeoutResult: the Result returned alongside ErrTimeout is a
// usable snapshot of the stuck network, and the error wraps ErrTimeout
// with the in-flight pulse count.
func TestLiveTimeoutResult(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	ms := []node.PulseMachine{&chatterbox{}, &chatterbox{}}
	res, err := live.Run(topo, ms, live.WithTimeout(50*time.Millisecond))
	if !errors.Is(err, live.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), "unaccounted") {
		t.Errorf("error %q should report unaccounted pulses", err)
	}
	if res.N != 2 {
		t.Errorf("N = %d, want 2", res.N)
	}
	if res.Quiescent {
		t.Error("a timed-out chatterbox network reported quiescence")
	}
	if res.AllTerminated {
		t.Error("chatterboxes never terminate")
	}
	if res.Leader != -1 || len(res.Leaders) != 0 {
		t.Errorf("leader = %d (%v), want none", res.Leader, res.Leaders)
	}
	if res.Sent == 0 || res.Delivered == 0 {
		t.Errorf("sent=%d delivered=%d: chatter should have flowed before the deadline", res.Sent, res.Delivered)
	}
}

// TestLiveChaosTimeout: the timeout path and the jitter path compose — a
// never-quiescing network under chaos still trips the deadline cleanly.
func TestLiveChaosTimeout(t *testing.T) {
	topo, err := ring.Oriented(3)
	if err != nil {
		t.Fatal(err)
	}
	ms := []node.PulseMachine{&chatterbox{}, &chatterbox{}, &chatterbox{}}
	res, err := live.Run(topo, ms,
		live.WithChaos(99), live.WithTimeout(50*time.Millisecond))
	if !errors.Is(err, live.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if res.Quiescent {
		t.Error("timed-out network reported quiescence")
	}
}

// TestLivePollInterval: the deprecated option never changes the outcome,
// and each call is surfaced as a structured "deprecated-option" note in
// the run log so lingering call sites are visible.
func TestLivePollInterval(t *testing.T) {
	ids := []uint64{3, 1, 4}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	res, err := live.Run(topo, ms, live.WithPollInterval(10*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	wantLeader, _ := ring.MaxIndex(ids)
	if res.Leader != wantLeader {
		t.Errorf("leader %d, want %d", res.Leader, wantLeader)
	}
	if want := core.PredictedAlg2Pulses(len(ids), 4); res.Sent != want {
		t.Errorf("sent %d, want %d", res.Sent, want)
	}
	if len(res.Notes) != 1 || res.Notes[0].Code != "deprecated-option" ||
		!strings.Contains(res.Notes[0].Detail, "WithPollInterval(10µs)") {
		t.Errorf("notes %v, want one deprecated-option note naming WithPollInterval(10µs)", res.Notes)
	}
}

// TestLiveChaosZeroSeed: WithChaos(0) must still inject jitter (the seed
// is forced odd), not silently disable it.
func TestLiveChaosZeroSeed(t *testing.T) {
	ids := []uint64{2, 5}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	res, err := live.Run(topo, ms, live.WithChaos(0), live.WithTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if want := core.PredictedAlg2Pulses(len(ids), 5); res.Sent != want {
		t.Errorf("sent %d, want %d", res.Sent, want)
	}
}

// TestLiveChaosNonOriented: jitter composed with adversarial port
// assignments (Algorithm 3) still yields the unique max-ID leader and a
// consistent orientation.
func TestLiveChaosNonOriented(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for seed := int64(1); seed <= 4; seed++ {
		n := 2 + rng.Intn(5)
		ids := ring.PermutedIDs(n, rng)
		topo, err := ring.RandomNonOriented(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := core.Alg3Machines(n, ids, core.SchemeSuccessor)
		if err != nil {
			t.Fatal(err)
		}
		res, err := live.Run(topo, ms, live.WithChaos(seed), live.WithTimeout(30*time.Second))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		wantLeader, _ := ring.MaxIndex(ids)
		if res.Leader != wantLeader {
			t.Errorf("seed %d: leader %d, want %d", seed, res.Leader, wantLeader)
		}
		for k, st := range res.Statuses {
			if !st.HasOrientation {
				t.Errorf("seed %d: node %d unoriented after chaos run", seed, k)
			}
		}
	}
}

// TestLiveChaos: under injected scheduling jitter the exact Theorem 1
// outcome still holds — chaos widens interleavings, never changes results.
func TestLiveChaos(t *testing.T) {
	ids := []uint64{5, 9, 2, 7, 1}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 6; seed++ {
		ms, err := core.Alg2Machines(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		res, err := live.Run(topo, ms, live.WithChaos(seed), live.WithTimeout(30*time.Second))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Leader != 1 {
			t.Errorf("seed %d: leader %d, want 1", seed, res.Leader)
		}
		if want := core.PredictedAlg2Pulses(len(ids), 9); res.Sent != want {
			t.Errorf("seed %d: sent %d, want %d", seed, res.Sent, want)
		}
	}
}
