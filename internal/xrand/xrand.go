// Package xrand provides a tiny deterministic PRNG (SplitMix64) whose
// entire state is one word. Unlike math/rand's generators it is cheaply
// cloneable and serializable, which is what lets randomized machines
// (core.Alg3Resample) participate in exhaustive schedule exploration: the
// model checker snapshots machine states, and a PRNG inside a machine must
// snapshot with it.
//
// SplitMix64 is statistically strong for simulation purposes and is the
// standard seeder for larger generators; it is emphatically not a
// cryptographic source.
package xrand

import "fmt"

// SplitMix is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0; use New for an explicit seed.
type SplitMix struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed int64) *SplitMix { return &SplitMix{state: uint64(seed)} }

// Uint64 returns the next 64 pseudo-random bits.
func (s *SplitMix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// Int63n returns a uniform value in [0, n); it panics for n <= 0,
// mirroring math/rand. The modulo bias is below 2^-52 for every n the
// simulations use (n << 2^63) and irrelevant to the statistical tests.
func (s *SplitMix) Int63n(n int64) int64 {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: Int63n(%d)", n))
	}
	return int64(s.Uint64() >> 1 % uint64(n))
}

// Intn returns a uniform value in [0, n); it panics for n <= 0.
func (s *SplitMix) Intn(n int) int { return int(s.Int63n(int64(n))) }

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Clone returns an independent copy that will produce the same future
// stream as the original.
func (s *SplitMix) Clone() *SplitMix {
	cp := *s
	return &cp
}

// State returns the generator's full internal state (for state keys).
func (s *SplitMix) State() uint64 { return s.state }

// SetState restores the generator to a state previously read with State
// (the inverse of State; used by node.Undoable machines whose randomness
// must snapshot and restore with the rest of their state).
func (s *SplitMix) SetState(v uint64) { s.state = v }

// Split derives a stream seed from a root seed and a coordinate vector
// (experiment tag, sweep indices, trial index, ...). Each coordinate is
// absorbed through a full SplitMix64 finalization round, so seeds for
// different coordinates are statistically independent no matter how
// regular the coordinates are. Split is pure: parallel sweeps that seed
// trial i from Split(seed, ..., i) produce the same per-trial streams —
// and therefore byte-identical reduced output — regardless of how many
// workers run the trials or how they interleave.
func Split(seed int64, dims ...uint64) int64 {
	x := uint64(seed)
	for _, d := range dims {
		x += 0x9e3779b97f4a7c15
		x ^= d
		x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
		x = (x ^ x>>27) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return int64(x)
}

// Geometric returns the number of successive trials with probability p
// that succeed before the first failure: Pr[G >= k] = p^k. It is the
// BitCount distribution of the paper's Algorithm 4.
func (s *SplitMix) Geometric(p float64) int {
	count := 0
	for s.Float64() < p {
		count++
	}
	return count
}
