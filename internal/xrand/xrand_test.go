package xrand_test

import (
	"math"
	"testing"

	"coleader/internal/xrand"
)

func TestDeterminism(t *testing.T) {
	a, b := xrand.New(7), xrand.New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := xrand.New(8)
	same := 0
	a2 := xrand.New(7)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different seeds coincided %d/100 times", same)
	}
}

func TestCloneContinuesStream(t *testing.T) {
	s := xrand.New(3)
	for i := 0; i < 10; i++ {
		s.Uint64()
	}
	c := s.Clone()
	for i := 0; i < 50; i++ {
		if s.Uint64() != c.Uint64() {
			t.Fatalf("clone diverged at step %d", i)
		}
	}
	// Advancing the clone does not affect the original's state key.
	before := s.State()
	c.Uint64()
	if s.State() != before {
		t.Error("clone shares state with original")
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	s := xrand.New(11)
	const n, trials = 10, 100000
	var counts [n]int
	for i := 0; i < trials; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	xrand.New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := xrand.New(13)
	var sum float64
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v, want ~0.5", mean)
	}
}

func TestGeometric(t *testing.T) {
	s := xrand.New(17)
	const p, trials = 0.75, 200000
	atLeast3 := 0
	for i := 0; i < trials; i++ {
		if s.Geometric(p) >= 3 {
			atLeast3++
		}
	}
	got := float64(atLeast3) / trials
	want := math.Pow(p, 3)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Pr[G >= 3] = %.4f, want %.4f", got, want)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s xrand.SplitMix
	if s.Uint64() == s.Uint64() {
		t.Error("zero-value generator repeats immediately")
	}
}
