// Package lowerbound implements the machinery of Section 6: solitude
// patterns (Definition 21), the uniqueness property that correct
// content-oblivious leader-election algorithms must give them (Lemma 22),
// and the resulting message lower bound n·floor(log2(k/n)) (Theorem 20,
// with Theorem 4 as the k = ID_max instantiation).
package lowerbound

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// Pattern is a solitude pattern: the sequence of pulse arrivals observed by
// the single node of a self-ring under the canonical scheduler, encoded as
// a binary string with '0' for clockwise and '1' for counterclockwise
// arrivals (Definition 21).
type Pattern string

// Len returns the number of pulses in the pattern, which for a quiescently
// finishing algorithm equals its total message count in solitude.
func (p Pattern) Len() int { return len(p) }

// CommonPrefixLen returns the length of the longest common prefix of two
// patterns — the quantity the pigeonhole argument of Lemma 23 counts.
func CommonPrefixLen(a, b Pattern) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// NewMachine constructs the machine under test for a given ID. The
// machine's clockwise port is Port1 (the self-ring is oriented).
type NewMachine func(id uint64) (node.PulseMachine, error)

// Solitude runs the algorithm on the one-node self-ring under the canonical
// scheduler and extracts its solitude pattern. limit bounds deliveries; a
// non-quiescent or faulty run is an error.
func Solitude(mk NewMachine, id uint64, limit uint64) (Pattern, error) {
	topo, err := ring.Oriented(1)
	if err != nil {
		return "", err
	}
	m, err := mk(id)
	if err != nil {
		return "", fmt.Errorf("lowerbound: building machine for ID %d: %w", id, err)
	}
	var b strings.Builder
	obs := sim.ObserverFunc[pulse.Pulse](func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
		if e.Kind != sim.EvDeliver {
			return nil
		}
		if e.Dir == pulse.CW {
			b.WriteByte('0')
		} else {
			b.WriteByte('1')
		}
		return nil
	})
	s, err := sim.New(topo, []node.PulseMachine{m}, sim.Canonical{}, sim.WithObserver[pulse.Pulse](obs))
	if err != nil {
		return "", err
	}
	res, err := s.Run(limit)
	if err != nil {
		return "", fmt.Errorf("lowerbound: solitude run for ID %d: %w", id, err)
	}
	if !res.Quiescent {
		return "", fmt.Errorf("lowerbound: solitude run for ID %d did not quiesce", id)
	}
	if res.Leader != 0 {
		return "", fmt.Errorf("lowerbound: algorithm failed to elect the lone node with ID %d", id)
	}
	return Pattern(b.String()), nil
}

// Patterns computes solitude patterns for every ID in [1, maxID].
// perIDLimit bounds each run's deliveries.
func Patterns(mk NewMachine, maxID uint64, perIDLimit uint64) (map[uint64]Pattern, error) {
	out := make(map[uint64]Pattern, maxID)
	for id := uint64(1); id <= maxID; id++ {
		p, err := Solitude(mk, id, perIDLimit)
		if err != nil {
			return nil, err
		}
		out[id] = p
	}
	return out, nil
}

// ErrPatternCollision reports two IDs sharing a solitude pattern, which
// Lemma 22 proves impossible for correct algorithms: finding one would
// witness an execution on a two-node ring where both nodes elect
// themselves.
var ErrPatternCollision = errors.New("lowerbound: solitude pattern collision")

// VerifyUnique checks Lemma 22 on a set of patterns: all must be pairwise
// distinct. On success it returns the minimum pattern length, the paper's
// per-node cost floor.
func VerifyUnique(patterns map[uint64]Pattern) (minLen int, err error) {
	seen := make(map[Pattern]uint64, len(patterns))
	minLen = -1
	for id, p := range patterns {
		if other, dup := seen[p]; dup {
			return 0, fmt.Errorf("%w: IDs %d and %d both map to %q", ErrPatternCollision, other, id, p)
		}
		seen[p] = id
		if minLen < 0 || p.Len() < minLen {
			minLen = p.Len()
		}
	}
	return minLen, nil
}

// MaxSharedPrefix returns the longest common prefix length over all pairs
// of patterns, realizing the pigeonhole bound of Lemma 23/Corollary 24: for
// k distinct binary strings and any n <= k, some n of them share a prefix
// of length at least floor(log2(k/n)).
func MaxSharedPrefix(patterns map[uint64]Pattern) int {
	// Sorting the patterns lexicographically would find the max shared
	// prefix between neighbors; with the modest ID ranges we sweep, the
	// direct pairwise scan over a sorted slice is simpler and exact.
	ps := make([]Pattern, 0, len(patterns))
	for _, p := range patterns {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	best := 0
	for i := 1; i < len(ps); i++ {
		if l := CommonPrefixLen(ps[i-1], ps[i]); l > best {
			best = l
		}
	}
	return best
}
