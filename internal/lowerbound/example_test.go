package lowerbound_test

import (
	"fmt"

	"coleader/internal/core"
	"coleader/internal/lowerbound"
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Solitude patterns (Definition 21): the pulse-arrival transcript of a
// node alone on a self-ring, unique per ID (Lemma 22).
func ExampleSolitude() {
	mk := func(id uint64) (node.PulseMachine, error) {
		return core.NewAlg2(id, pulse.Port1)
	}
	for id := uint64(1); id <= 3; id++ {
		p, err := lowerbound.Solitude(mk, id, 1024)
		if err != nil {
			panic(err)
		}
		fmt.Printf("ID %d: %s\n", id, p)
	}
	// Output:
	// ID 1: 011
	// ID 2: 00111
	// ID 3: 0001111
}
