package lowerbound_test

import (
	"errors"
	"strings"
	"testing"

	"coleader/internal/core"
	"coleader/internal/lowerbound"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/sim"
)

func alg2Maker(id uint64) (node.PulseMachine, error) {
	return core.NewAlg2(id, pulse.Port1)
}

func alg1Maker(id uint64) (node.PulseMachine, error) {
	return core.NewAlg1(id, pulse.Port1)
}

// TestSolitudePatternAlg2 pins the exact solitude pattern of Algorithm 2:
// ID clockwise arrivals followed by ID+1 counterclockwise ones (the last
// being the returning termination pulse).
func TestSolitudePatternAlg2(t *testing.T) {
	for _, id := range []uint64{1, 2, 3, 7} {
		p, err := lowerbound.Solitude(alg2Maker, id, 10000)
		if err != nil {
			t.Fatalf("id=%d: %v", id, err)
		}
		want := strings.Repeat("0", int(id)) + strings.Repeat("1", int(id)+1)
		if string(p) != want {
			t.Errorf("id=%d: pattern %q, want %q", id, p, want)
		}
		if p.Len() != int(2*id+1) {
			t.Errorf("id=%d: pattern length %d, want %d (= message complexity in solitude)",
				id, p.Len(), 2*id+1)
		}
	}
}

// TestSolitudePatternAlg1 pins Algorithm 1's solitude pattern: ID clockwise
// arrivals, nothing else.
func TestSolitudePatternAlg1(t *testing.T) {
	p, err := lowerbound.Solitude(alg1Maker, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if string(p) != "00000" {
		t.Errorf("pattern %q, want %q", p, "00000")
	}
}

// TestLemma22Uniqueness verifies Lemma 22 empirically for Algorithms 1
// and 2 over a wide ID range: all solitude patterns are pairwise distinct.
func TestLemma22Uniqueness(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   lowerbound.NewMachine
	}{
		{"alg1", alg1Maker},
		{"alg2", alg2Maker},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ps, err := lowerbound.Patterns(tc.mk, 512, 1<<14)
			if err != nil {
				t.Fatal(err)
			}
			if len(ps) != 512 {
				t.Fatalf("got %d patterns, want 512", len(ps))
			}
			if _, err := lowerbound.VerifyUnique(ps); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestVerifyUniqueDetectsCollision: a fabricated collision is reported.
func TestVerifyUniqueDetectsCollision(t *testing.T) {
	ps := map[uint64]lowerbound.Pattern{1: "01", 2: "01"}
	if _, err := lowerbound.VerifyUnique(ps); !errors.Is(err, lowerbound.ErrPatternCollision) {
		t.Errorf("err = %v, want ErrPatternCollision", err)
	}
}

// TestCommonPrefixLen pins the prefix arithmetic.
func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b lowerbound.Pattern
		want int
	}{
		{"0011", "0010", 3},
		{"0011", "0011", 4},
		{"0011", "00110", 4},
		{"1", "0", 0},
		{"", "01", 0},
	}
	for _, tc := range cases {
		if got := lowerbound.CommonPrefixLen(tc.a, tc.b); got != tc.want {
			t.Errorf("CommonPrefixLen(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestMaxSharedPrefixMatchesPigeonhole: for Algorithm 2's patterns over k
// IDs, some pair shares a prefix of length >= floor(log2(k/2)) as
// Corollary 24 (n = 2) guarantees for ANY family of k distinct strings.
func TestMaxSharedPrefixMatchesPigeonhole(t *testing.T) {
	const k = 128
	ps, err := lowerbound.Patterns(alg2Maker, k, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	got := lowerbound.MaxSharedPrefix(ps)
	if want := int(core.LowerBoundPulses(2, k)) / 2; got < want {
		t.Errorf("max shared prefix %d < pigeonhole floor %d", got, want)
	}
}

// TestSolitudeCostDominatsLowerBound: for every ID, the measured solitude
// cost (pattern length) is at least Theorem 4's bound with n = 1,
// k = ID_max, and the upper bound 2·ID+1 of Theorem 1.
func TestSolitudeCostDominatesLowerBound(t *testing.T) {
	for _, id := range []uint64{1, 4, 16, 64, 256, 1024} {
		p, err := lowerbound.Solitude(alg2Maker, id, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		lb := core.LowerBoundPulses(1, id)
		ub := core.PredictedAlg2Pulses(1, id)
		cost := uint64(p.Len())
		if cost < lb {
			t.Errorf("id=%d: cost %d below lower bound %d", id, cost, lb)
		}
		if cost != ub {
			t.Errorf("id=%d: cost %d, want upper bound %d exactly", id, cost, ub)
		}
	}
}

// TestSolitudeRejectsBrokenAlgorithm: an algorithm that fails to elect the
// lone node is reported.
func TestSolitudeRejectsBrokenAlgorithm(t *testing.T) {
	broken := func(id uint64) (node.PulseMachine, error) {
		return brokenMachine{}, nil
	}
	if _, err := lowerbound.Solitude(broken, 1, 100); err == nil {
		t.Error("broken algorithm accepted")
	}
}

type brokenMachine struct{}

func (brokenMachine) Init(node.PulseEmitter)                           {}
func (brokenMachine) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {}
func (brokenMachine) Ready(pulse.Port) bool                            { return true }
func (brokenMachine) Status() node.Status                              { return node.Status{} }

var _ sim.Scheduler = sim.Canonical{} // the canonical scheduler is load-bearing here
