// Package stats renders the experiment harness's tables and computes the
// small set of summary statistics the experiments report. Output formats:
// aligned plain text (terminal) and GitHub-flavored markdown (for
// EXPERIMENTS.md).
package stats

import (
	"encoding/csv"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is an ordered grid of cells with a header row.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the data rows (cells as formatted strings).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// FormatFloat renders floats compactly: integers without decimals, small
// values with three significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Headers, " | "))
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	return b.String()
}

// CSV renders the table as RFC 4180 CSV (header row first); the title is
// not included, mirroring how plotting tools want their input.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	// Write errors on a strings.Builder cannot occur; Flush surfaces any.
	_ = w.Write(t.Headers)
	for _, row := range t.rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Summary holds the order statistics of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	StdDev         float64
	Sum            float64
}

// Summarize computes order statistics over xs (which it copies and sorts).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
		sq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Min:    s[0],
		Max:    s[len(s)-1],
		P50:    quantile(s, 0.50),
		P90:    quantile(s, 0.90),
		P99:    quantile(s, 0.99),
		StdDev: math.Sqrt(variance),
		Sum:    sum,
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ratio formats a/b as a fixed-precision ratio string ("4.27x"), guarding
// against division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
