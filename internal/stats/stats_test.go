package stats_test

import (
	"math"
	"strings"
	"testing"

	"coleader/internal/stats"
)

func TestTableText(t *testing.T) {
	tb := stats.NewTable("demo", "n", "pulses", "ratio")
	tb.AddRow(4, 36, 1.5)
	tb.AddRow(16, 528, 2.0)
	out := tb.String()
	for _, want := range []string{"demo", "n", "pulses", "ratio", "36", "528", "1.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := stats.NewTable("md", "a", "b")
	tb.AddRow("x", 1)
	out := tb.Markdown()
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| --- | --- |") || !strings.Contains(out, "| x | 1 |") {
		t.Errorf("markdown malformed:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.5:    "3.500",
		-2:     "-2",
		0.1234: "0.123",
	}
	for in, want := range cases {
		if got := stats.FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := stats.Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 || s.Sum != 15 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v, want sqrt(2)", s.StdDev)
	}
	if got := stats.Summarize(nil); got.N != 0 {
		t.Errorf("empty summary = %+v", got)
	}
	one := stats.Summarize([]float64{7})
	if one.P50 != 7 || one.P99 != 7 || one.StdDev != 0 {
		t.Errorf("singleton summary = %+v", one)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := stats.Summarize([]float64{0, 10})
	if s.P50 != 5 {
		t.Errorf("P50 of {0,10} = %v, want 5", s.P50)
	}
	if s.P90 != 9 {
		t.Errorf("P90 of {0,10} = %v, want 9", s.P90)
	}
}

func TestRatio(t *testing.T) {
	if got := stats.Ratio(10, 4); got != "2.50x" {
		t.Errorf("Ratio = %q", got)
	}
	if got := stats.Ratio(1, 0); got != "inf" {
		t.Errorf("Ratio by zero = %q", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := stats.NewTable("csv", "a", "b")
	tb.AddRow("x,y", 2) // embedded comma must be quoted
	out := tb.CSV()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header malformed:\n%s", out)
	}
	if !strings.Contains(out, "\"x,y\",2") {
		t.Errorf("CSV quoting broken:\n%s", out)
	}
	if strings.Contains(out, "csv") {
		t.Error("CSV should not embed the title")
	}
}
