// Package ring builds ring topologies (oriented, non-oriented, self-ring)
// and ID assignments for the leader-election algorithms and experiments.
//
// Nodes are indexed 0..n-1 in clockwise order: the clockwise neighbor of
// node k is node (k+1) mod n. Whether a node's Port1 actually leads
// clockwise is controlled per node by a flip bit, which is how non-oriented
// rings (Figure 1 of the paper, right side) are realized. Algorithms never
// see flip bits; only the simulator's wiring does.
package ring

import (
	"errors"
	"fmt"
	"math/rand"

	"coleader/internal/pulse"
)

// ErrNotOriented is returned when an oriented-ring-only operation is applied
// to a topology containing flipped nodes.
var ErrNotOriented = errors.New("ring: topology is not oriented")

// Endpoint identifies one port of one node; each directed channel of the
// ring is named by its receiving Endpoint.
type Endpoint struct {
	Node int
	Port pulse.Port
}

// String formats the endpoint as "node/port".
func (e Endpoint) String() string {
	return fmt.Sprintf("%d/%s", e.Node, e.Port)
}

// Topology is an immutable description of a ring's wiring.
type Topology struct {
	n    int
	flip []bool // flip[k]: node k's Port0 (not Port1) leads clockwise
}

// Oriented returns the oriented ring on n nodes: every node's Port1 leads
// to its clockwise neighbor. n = 1 yields the legal self-ring whose two
// ports are connected to each other.
func Oriented(n int) (Topology, error) {
	if n < 1 {
		return Topology{}, fmt.Errorf("ring: size %d < 1", n)
	}
	return Topology{n: n, flip: make([]bool, n)}, nil
}

// NonOriented returns a ring whose node k has its ports swapped when
// flips[k] is set. len(flips) determines the ring size. All 2^n port
// assignments of the model are expressible this way.
func NonOriented(flips []bool) (Topology, error) {
	if len(flips) < 1 {
		return Topology{}, errors.New("ring: empty flip assignment")
	}
	f := make([]bool, len(flips))
	copy(f, flips)
	return Topology{n: len(flips), flip: f}, nil
}

// RandomNonOriented returns a ring on n nodes with uniformly random port
// assignments drawn from rng.
func RandomNonOriented(n int, rng *rand.Rand) (Topology, error) {
	if n < 1 {
		return Topology{}, fmt.Errorf("ring: size %d < 1", n)
	}
	f := make([]bool, n)
	for i := range f {
		f[i] = rng.Intn(2) == 1
	}
	return NonOriented(f)
}

// N returns the number of nodes.
func (t Topology) N() int { return t.n }

// Oriented reports whether every node's Port1 leads clockwise.
func (t Topology) Oriented() bool {
	for _, f := range t.flip {
		if f {
			return false
		}
	}
	return true
}

// Flipped reports whether node k's ports are swapped relative to the
// oriented convention.
func (t Topology) Flipped(k int) bool { return t.flip[k] }

// CWPort returns the port of node k that leads to its clockwise neighbor.
func (t Topology) CWPort(k int) pulse.Port {
	if t.flip[k] {
		return pulse.Port0
	}
	return pulse.Port1
}

// CCWPort returns the port of node k that leads to its counterclockwise
// neighbor.
func (t Topology) CCWPort(k int) pulse.Port { return t.CWPort(k).Opposite() }

// Peer returns the endpoint wired to node k's port p: a message sent by k
// out of port p is queued on the incoming channel of Peer(k, p).
func (t Topology) Peer(k int, p pulse.Port) Endpoint {
	if p == t.CWPort(k) {
		cw := (k + 1) % t.n
		return Endpoint{Node: cw, Port: t.CCWPort(cw)}
	}
	ccw := (k - 1 + t.n) % t.n
	return Endpoint{Node: ccw, Port: t.CWPort(ccw)}
}

// DirectionOf returns the travel direction of a message sent by node k out
// of port p: CW when p is k's clockwise port.
func (t Topology) DirectionOf(k int, p pulse.Port) pulse.Direction {
	if p == t.CWPort(k) {
		return pulse.CW
	}
	return pulse.CCW
}

// ArrivalDirection returns the travel direction of a message that arrives
// at node k on port p: a clockwise message arrives on the
// counterclockwise-leading port.
func (t Topology) ArrivalDirection(k int, p pulse.Port) pulse.Direction {
	if p == t.CCWPort(k) {
		return pulse.CW
	}
	return pulse.CCW
}

// String summarizes the topology.
func (t Topology) String() string {
	if t.Oriented() {
		return fmt.Sprintf("oriented ring n=%d", t.n)
	}
	return fmt.Sprintf("non-oriented ring n=%d flips=%v", t.n, t.flip)
}
