package ring_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coleader/internal/ring"
)

func TestConsecutiveIDs(t *testing.T) {
	ids := ring.ConsecutiveIDs(4)
	want := []uint64{1, 2, 3, 4}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ConsecutiveIDs(4) = %v", ids)
		}
	}
	if err := ring.CheckDistinct(ids); err != nil {
		t.Error(err)
	}
}

func TestPermutedIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids := ring.PermutedIDs(32, rng)
	if err := ring.CheckDistinct(ids); err != nil {
		t.Error(err)
	}
	if ring.MaxID(ids) != 32 {
		t.Errorf("MaxID = %d, want 32", ring.MaxID(ids))
	}
}

func TestSparseIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ids, err := ring.SparseIDs(10, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.CheckDistinct(ids); err != nil {
		t.Error(err)
	}
	for _, id := range ids {
		if id < 1 || id > 1000 {
			t.Errorf("ID %d outside [1,1000]", id)
		}
	}
	if _, err := ring.SparseIDs(10, 5, rng); err == nil {
		t.Error("SparseIDs(10, 5) succeeded, want error")
	}
}

func TestAdversarialIDs(t *testing.T) {
	ids, err := ring.AdversarialIDs(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 1000 {
		t.Errorf("node 0 ID = %d, want 1000", ids[0])
	}
	if err := ring.CheckDistinct(ids); err != nil {
		t.Error(err)
	}
	if _, err := ring.AdversarialIDs(10, 5); err == nil {
		t.Error("AdversarialIDs(10, 5) succeeded, want error")
	}
}

func TestDuplicateIDs(t *testing.T) {
	ids, err := ring.DuplicateIDs(6, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	maxCount := 0
	for _, id := range ids {
		if id == 5 {
			maxCount++
		}
		if id < 1 || id > 5 {
			t.Errorf("ID %d outside [1,5]", id)
		}
	}
	if maxCount != 3 {
		t.Errorf("%d nodes at ID_max, want 3 (ids=%v)", maxCount, ids)
	}
	if _, err := ring.DuplicateIDs(4, 5, 0); err == nil {
		t.Error("dupMax=0 succeeded")
	}
	if _, err := ring.DuplicateIDs(4, 5, 5); err == nil {
		t.Error("dupMax>n succeeded")
	}
	if _, err := ring.DuplicateIDs(4, 1, 2); err == nil {
		t.Error("max=1 with non-max nodes succeeded")
	}
}

func TestMaxIndex(t *testing.T) {
	idx, unique := ring.MaxIndex([]uint64{3, 9, 2})
	if idx != 1 || !unique {
		t.Errorf("MaxIndex = (%d,%t), want (1,true)", idx, unique)
	}
	_, unique = ring.MaxIndex([]uint64{9, 3, 9})
	if unique {
		t.Error("duplicated max reported unique")
	}
}

func TestCheckDistinct(t *testing.T) {
	if err := ring.CheckDistinct([]uint64{1, 2, 3}); err != nil {
		t.Error(err)
	}
	if err := ring.CheckDistinct([]uint64{1, 2, 1}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := ring.CheckDistinct([]uint64{0, 1}); err == nil {
		t.Error("zero ID accepted")
	}
}

// TestSparseIDsProperty: sparse assignments are always distinct and within
// range.
func TestSparseIDsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		max := uint64(n) + uint64(rng.Intn(1000))
		ids, err := ring.SparseIDs(n, max, rng)
		if err != nil {
			return false
		}
		if ring.CheckDistinct(ids) != nil {
			return false
		}
		return ring.MaxID(ids) <= max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
