package ring

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrDuplicateID is returned by CheckDistinct for assignments with repeats.
var ErrDuplicateID = errors.New("ring: duplicate ID")

// ConsecutiveIDs assigns 1..n in clockwise node order: the smallest possible
// ID_max, hence the cheapest executions of the paper's algorithms.
func ConsecutiveIDs(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	return ids
}

// PermutedIDs assigns a uniformly random permutation of 1..n.
func PermutedIDs(n int, rng *rand.Rand) []uint64 {
	ids := ConsecutiveIDs(n)
	rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return ids
}

// SparseIDs assigns n distinct IDs drawn uniformly from [1, max]. The paper
// stresses that the ID space is unrestricted (Section 2) and that message
// complexity scales with ID_max, not n (Theorem 4); sparse assignments
// exercise exactly that regime.
func SparseIDs(n int, max uint64, rng *rand.Rand) ([]uint64, error) {
	if uint64(n) > max {
		return nil, fmt.Errorf("ring: cannot draw %d distinct IDs from [1,%d]", n, max)
	}
	seen := make(map[uint64]struct{}, n)
	ids := make([]uint64, 0, n)
	for len(ids) < n {
		id := 1 + uint64(rng.Int63n(int64(max)))
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		ids = append(ids, id)
	}
	return ids, nil
}

// AdversarialIDs assigns IDs that maximize ID_max for a given budget: node 0
// gets max and the rest get 1..n-1, the worst case for the upper bounds of
// Theorems 1 and 2 at a fixed ID_max.
func AdversarialIDs(n int, max uint64) ([]uint64, error) {
	if max < uint64(n) {
		return nil, fmt.Errorf("ring: max ID %d < ring size %d", max, n)
	}
	ids := make([]uint64, n)
	ids[0] = max
	for i := 1; i < n; i++ {
		ids[i] = uint64(i)
	}
	return ids, nil
}

// DuplicateIDs builds the non-unique assignments of Lemmas 16 and 17 (and
// Figure 2): dupMax nodes carry ID_max = max and the remaining nodes cycle
// through 1..max-1 (repeating as needed). dupMax must be in [1, n].
func DuplicateIDs(n int, max uint64, dupMax int) ([]uint64, error) {
	switch {
	case dupMax < 1 || dupMax > n:
		return nil, fmt.Errorf("ring: dupMax %d outside [1,%d]", dupMax, n)
	case max < 2 && dupMax < n:
		return nil, fmt.Errorf("ring: max %d leaves no smaller IDs for %d nodes", max, n-dupMax)
	}
	ids := make([]uint64, n)
	// Spread the max-ID holders evenly so that the segments between them
	// (the x_{i,j} walks in the proof of Lemma 17) have varied lengths.
	for i := 0; i < dupMax; i++ {
		ids[i*n/dupMax] = max
	}
	next := uint64(1)
	for i := range ids {
		if ids[i] != 0 {
			continue
		}
		ids[i] = next
		next++
		if next >= max {
			next = 1
		}
	}
	return ids, nil
}

// MaxID returns the largest assigned ID (ID_max in the paper's notation).
func MaxID(ids []uint64) uint64 {
	var max uint64
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	return max
}

// MaxIndex returns the index of the unique node carrying the largest ID,
// and whether that maximum is unique.
func MaxIndex(ids []uint64) (idx int, unique bool) {
	max := MaxID(ids)
	count := 0
	for i, id := range ids {
		if id == max {
			idx = i
			count++
		}
	}
	return idx, count == 1
}

// CheckDistinct verifies that all IDs are positive and pairwise distinct,
// as the unique-ID model of Section 2 requires.
func CheckDistinct(ids []uint64) error {
	seen := make(map[uint64]int, len(ids))
	for i, id := range ids {
		if id == 0 {
			return fmt.Errorf("ring: node %d has ID 0; IDs must be positive", i)
		}
		if j, dup := seen[id]; dup {
			return fmt.Errorf("%w: nodes %d and %d both have ID %d", ErrDuplicateID, j, i, id)
		}
		seen[id] = i
	}
	return nil
}
