package ring_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coleader/internal/pulse"
	"coleader/internal/ring"
)

func TestOrientedWiring(t *testing.T) {
	topo, err := ring.Oriented(4)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Oriented() {
		t.Error("Oriented(4) not oriented")
	}
	for k := 0; k < 4; k++ {
		if got := topo.CWPort(k); got != pulse.Port1 {
			t.Errorf("node %d: CWPort = %v, want Port1", k, got)
		}
		// Sending clockwise lands on the next node's Port0.
		peer := topo.Peer(k, pulse.Port1)
		if peer.Node != (k+1)%4 || peer.Port != pulse.Port0 {
			t.Errorf("node %d Port1 -> %v, want %d/Port0", k, peer, (k+1)%4)
		}
		// Sending counterclockwise lands on the previous node's Port1.
		peer = topo.Peer(k, pulse.Port0)
		if peer.Node != (k+3)%4 || peer.Port != pulse.Port1 {
			t.Errorf("node %d Port0 -> %v, want %d/Port1", k, peer, (k+3)%4)
		}
	}
}

func TestSelfRingWiring(t *testing.T) {
	topo, err := ring.Oriented(1)
	if err != nil {
		t.Fatal(err)
	}
	p := topo.Peer(0, pulse.Port1)
	if p.Node != 0 || p.Port != pulse.Port0 {
		t.Errorf("self-ring Port1 -> %v, want 0/Port0", p)
	}
	p = topo.Peer(0, pulse.Port0)
	if p.Node != 0 || p.Port != pulse.Port1 {
		t.Errorf("self-ring Port0 -> %v, want 0/Port1", p)
	}
}

func TestNonOrientedWiring(t *testing.T) {
	// Node 1 flipped: its Port0 leads clockwise.
	topo, err := ring.NonOriented([]bool{false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Oriented() {
		t.Error("flipped topology reports oriented")
	}
	if got := topo.CWPort(1); got != pulse.Port0 {
		t.Errorf("flipped node CWPort = %v, want Port0", got)
	}
	// Node 0 sends clockwise out Port1; it must arrive at node 1's
	// counterclockwise port, which (flipped) is Port1.
	p := topo.Peer(0, pulse.Port1)
	if p.Node != 1 || p.Port != pulse.Port1 {
		t.Errorf("0/Port1 -> %v, want 1/Port1", p)
	}
}

// TestWiringInvolution checks the fundamental wiring property on random
// topologies: following a channel and then the peer's matching reverse
// channel returns to the origin, and peers are mutual.
func TestWiringInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		topo, err := ring.RandomNonOriented(n, rng)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			for _, p := range []pulse.Port{pulse.Port0, pulse.Port1} {
				peer := topo.Peer(k, p)
				// The peer's same-named port sends back to (k, p):
				// channels come in opposing pairs over each edge.
				back := topo.Peer(peer.Node, peer.Port)
				if back.Node != k || back.Port != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDirectionConsistency checks that DirectionOf and ArrivalDirection
// agree across each edge: a message sent clockwise arrives clockwise.
func TestDirectionConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		topo, err := ring.RandomNonOriented(n, rng)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			for _, p := range []pulse.Port{pulse.Port0, pulse.Port1} {
				d := topo.DirectionOf(k, p)
				peer := topo.Peer(k, p)
				if topo.ArrivalDirection(peer.Node, peer.Port) != d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestClockwiseTraversal checks that hopping out of CW ports visits all
// nodes in index order, on any port assignment.
func TestClockwiseTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		topo, err := ring.RandomNonOriented(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		at := 0
		for i := 0; i < n; i++ {
			peer := topo.Peer(at, topo.CWPort(at))
			if peer.Node != (at+1)%n {
				t.Fatalf("n=%d: CW hop from %d reached %d", n, at, peer.Node)
			}
			at = peer.Node
		}
		if at != 0 {
			t.Fatalf("n=%d: CW walk did not close after n hops", n)
		}
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := ring.Oriented(0); err == nil {
		t.Error("Oriented(0) succeeded")
	}
	if _, err := ring.NonOriented(nil); err == nil {
		t.Error("NonOriented(nil) succeeded")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := ring.RandomNonOriented(0, rng); err == nil {
		t.Error("RandomNonOriented(0) succeeded")
	}
}

func TestNonOrientedCopiesFlips(t *testing.T) {
	flips := []bool{true, false}
	topo, err := ring.NonOriented(flips)
	if err != nil {
		t.Fatal(err)
	}
	flips[0] = false
	if !topo.Flipped(0) {
		t.Error("Topology aliases the caller's flip slice")
	}
}

func TestTopologyString(t *testing.T) {
	topo, _ := ring.Oriented(3)
	if got := topo.String(); got != "oriented ring n=3" {
		t.Errorf("String() = %q", got)
	}
	topo, _ = ring.NonOriented([]bool{true})
	if got := topo.String(); got == "" || got == "oriented ring n=1" {
		t.Errorf("String() = %q", got)
	}
}

func TestEndpointString(t *testing.T) {
	e := ring.Endpoint{Node: 3, Port: pulse.Port1}
	if got := e.String(); got != "3/Port1" {
		t.Errorf("Endpoint.String() = %q", got)
	}
}

func TestPortAlgebra(t *testing.T) {
	if pulse.Port0.Opposite() != pulse.Port1 || pulse.Port1.Opposite() != pulse.Port0 {
		t.Error("Opposite broken")
	}
	if !pulse.Port0.Valid() || !pulse.Port1.Valid() || pulse.Port(2).Valid() {
		t.Error("Valid broken")
	}
	if pulse.CW.Opposite() != pulse.CCW || pulse.CCW.Opposite() != pulse.CW {
		t.Error("Direction.Opposite broken")
	}
	if pulse.Direction(0).Opposite() != 0 {
		t.Error("zero Direction.Opposite should be zero")
	}
	if pulse.Port0.String() != "Port0" || pulse.Port(7).String() != "Port?" {
		t.Error("Port.String broken")
	}
	if pulse.CW.String() != "CW" || pulse.CCW.String() != "CCW" || pulse.Direction(9).String() != "Dir?" {
		t.Error("Direction.String broken")
	}
}
