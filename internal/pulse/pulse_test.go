package pulse_test

import (
	"testing"
	"testing/quick"

	"coleader/internal/pulse"
)

func TestOppositeIsInvolution(t *testing.T) {
	for _, p := range []pulse.Port{pulse.Port0, pulse.Port1} {
		if p.Opposite().Opposite() != p {
			t.Errorf("Opposite not an involution for %v", p)
		}
		if p.Opposite() == p {
			t.Errorf("Opposite(%v) == %v", p, p)
		}
	}
}

func TestPortValidity(t *testing.T) {
	if !pulse.Port0.Valid() || !pulse.Port1.Valid() {
		t.Error("canonical ports invalid")
	}
	prop := func(raw uint8) bool {
		p := pulse.Port(raw)
		return p.Valid() == (raw <= 1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPortStrings(t *testing.T) {
	cases := map[pulse.Port]string{
		pulse.Port0:   "Port0",
		pulse.Port1:   "Port1",
		pulse.Port(2): "Port?",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Port(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestDirectionAlgebra(t *testing.T) {
	if pulse.CW.Opposite() != pulse.CCW || pulse.CCW.Opposite() != pulse.CW {
		t.Error("direction Opposite broken")
	}
	if pulse.Direction(0).Opposite() != pulse.Direction(0) {
		t.Error("zero direction should map to zero")
	}
	if pulse.CW.String() != "CW" || pulse.CCW.String() != "CCW" {
		t.Error("direction names broken")
	}
	if pulse.Direction(77).String() != "Dir?" {
		t.Error("unknown direction name broken")
	}
}

// TestPulseCarriesNothing pins the core modeling decision: a Pulse is a
// zero-size value, so content-obliviousness is structural.
func TestPulseCarriesNothing(t *testing.T) {
	var a, b pulse.Pulse
	if a != b {
		t.Error("pulses are distinguishable")
	}
}
