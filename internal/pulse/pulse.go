// Package pulse defines the primitive vocabulary of the fully defective
// network model of Censor-Hillel, Cohen, Gelles, and Sela (Distributed
// Computing, 2023), as used by Frei, Gelles, Ghazy, and Nolin
// ("Content-Oblivious Leader Election on Rings", DISC 2024).
//
// In this model every message is corrupted down to a contentless Pulse;
// an algorithm may react only to the order and ports of pulse arrivals.
// Nodes on a ring own two ports, Port0 and Port1. On an oriented ring,
// Port1 leads to the clockwise neighbor at every node; on a non-oriented
// ring the port-to-direction mapping is adversarial and per node.
package pulse

// Pulse is a fully corrupted message: it carries no information beyond its
// existence. Algorithms in internal/core exchange only values of this type,
// which makes content-obliviousness a property enforced by the type system.
type Pulse struct{}

// Port identifies one of the two ring ports of a node.
type Port uint8

// The two ports of a ring node. On an oriented ring Port1 is the clockwise
// port (it leads to the clockwise neighbor) and Port0 the counterclockwise
// port, matching the convention of Section 2 of the paper.
const (
	Port0 Port = 0
	Port1 Port = 1
)

// Opposite returns the other port.
func (p Port) Opposite() Port { return p ^ 1 }

// Valid reports whether p is Port0 or Port1.
func (p Port) Valid() bool { return p <= 1 }

// String returns "Port0" or "Port1".
func (p Port) String() string {
	switch p {
	case Port0:
		return "Port0"
	case Port1:
		return "Port1"
	default:
		return "Port?"
	}
}

// Direction is a global direction of travel around the ring. It exists only
// in the analysis and in the simulator's bookkeeping: nodes of a
// non-oriented ring cannot observe it.
type Direction uint8

// Ring directions. A clockwise pulse is sent from a node's clockwise port
// and arrives at the receiver's counterclockwise port, and vice versa.
const (
	CW Direction = iota + 1
	CCW
)

// Opposite returns the reverse direction.
func (d Direction) Opposite() Direction {
	switch d {
	case CW:
		return CCW
	case CCW:
		return CW
	default:
		return 0
	}
}

// String returns "CW" or "CCW".
func (d Direction) String() string {
	switch d {
	case CW:
		return "CW"
	case CCW:
		return "CCW"
	default:
		return "Dir?"
	}
}
