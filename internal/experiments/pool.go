package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the worker-pool width used by the independent-trial sweeps
// (E1, E3, E8). Trials are seeded per index via xrand.Split and reduced
// in trial-index order, so any width — including 1 — yields byte-identical
// tables; width only changes wall-clock time.
var workers = runtime.GOMAXPROCS(0)

// SetWorkers sets the sweep worker-pool width. n <= 0 restores the
// default (GOMAXPROCS). Not safe to call concurrently with a running
// experiment; cmd/experiments calls it once at startup.
func SetWorkers(n int) {
	if n <= 0 {
		workers = runtime.GOMAXPROCS(0)
		return
	}
	workers = n
}

// parDo runs f(0), ..., f(n-1) across the worker pool and returns once
// all calls have completed. f must be index-pure: it writes its result
// only into storage addressed by its own index, never reads another
// index's result, and derives any randomness from a per-index split
// seed. The caller then reduces index-ascending, which makes the overall
// computation independent of worker count and interleaving.
func parDo(n int, f func(i int)) {
	w := workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
