package experiments

import (
	"fmt"
	"math/rand"

	"coleader/internal/baseline"
	"coleader/internal/core"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/stats"
)

// E11 probes the knowledge frontier around Theorem 3. Itai and Rodeh
// proved anonymous rings cannot compute n by a terminating algorithm, so
// terminating anonymous election is impossible — unless n is known, in
// which case their own randomized algorithm terminates. The paper's
// anonymous election (Algorithm 4 + Algorithm 3) assumes NO knowledge of n
// and, matching the impossibility exactly, only reaches quiescence. This
// experiment runs both on the same anonymous rings: content-carrying
// Itai–Rodeh with known n (terminating, message-efficient) against the
// content-oblivious pipeline with unknown n (quiescently stabilizing,
// pulse costs driven by the sampled ID_max).
func E11(seed int64) ([]*stats.Table, error) {
	t := stats.NewTable(
		"E11 — the knowledge frontier: Itai–Rodeh (content + known n, terminating) vs Algorithm 4+3 (pulses, no knowledge, stabilizing)",
		"n", "trials",
		"IR one leader", "IR terminated", "IR mean msgs",
		"CO one leader", "CO terminated", "CO mean pulses")
	for _, n := range []int{2, 4, 8, 16} {
		const trials = 25
		irLeaders, irTerm, coLeaders, coTerm := 0, 0, 0, 0
		var irMsgs, coPulses []float64
		ran := 0
		for i := 0; i < trials; i++ {
			// --- Itai–Rodeh, content-carrying, n known.
			topo, err := ring.Oriented(n)
			if err != nil {
				return nil, err
			}
			ports := make([]pulse.Port, n)
			for k := range ports {
				ports[k] = topo.CWPort(k)
			}
			irMS, err := baseline.ItaiRodehMachines(n, ports, seed+int64(i*31))
			if err != nil {
				return nil, err
			}
			s, err := sim.New(topo, irMS, sim.NewRandom(seed+int64(i)))
			if err != nil {
				return nil, err
			}
			irRes, err := s.Run(1 << 22)
			if err != nil {
				return nil, fmt.Errorf("E11 IR n=%d trial %d: %w", n, i, err)
			}
			if len(irRes.Leaders) == 1 {
				irLeaders++
			}
			if irRes.AllTerminated {
				irTerm++
			}
			irMsgs = append(irMsgs, float64(irRes.Sent))

			// --- The paper's pipeline, content-oblivious, n unknown.
			idRng := rand.New(rand.NewSource(seed + int64(i*17)))
			ids := core.SampleIDs(idRng, n, 1.0)
			pred := core.PredictedAlg3Pulses(n, ring.MaxID(ids), core.SchemeSuccessor)
			if pred > 2_000_000 {
				continue // heavy-tail draw; cost behavior covered in E3a
			}
			ran++
			topo2, err := ring.RandomNonOriented(n, idRng)
			if err != nil {
				return nil, err
			}
			coMS, err := core.Alg3Machines(n, ids, core.SchemeSuccessor)
			if err != nil {
				return nil, err
			}
			s2, err := sim.New(topo2, coMS, sim.NewRandom(seed+int64(i)))
			if err != nil {
				return nil, err
			}
			coRes, err := s2.Run(4*pred + 1024)
			if err != nil {
				return nil, fmt.Errorf("E11 CO n=%d trial %d: %w", n, i, err)
			}
			if len(coRes.Leaders) == 1 {
				coLeaders++
			}
			if coRes.AllTerminated {
				coTerm++
			}
			coPulses = append(coPulses, float64(coRes.Sent))
		}
		t.AddRow(n, trials,
			fmt.Sprintf("%d/%d", irLeaders, trials), fmt.Sprintf("%d/%d", irTerm, trials),
			stats.Summarize(irMsgs).Mean,
			fmt.Sprintf("%d/%d", coLeaders, ran), fmt.Sprintf("%d/%d", coTerm, ran),
			stats.Summarize(coPulses).Mean)
	}
	return []*stats.Table{t}, nil
}
