package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/stats"
	"coleader/internal/xrand"
)

// E15 measures the sharded simulator at scale and certifies that arc
// parallelism changes nothing observable.
//
// E15a is the cost sweep: Algorithm 1 over geometric ID values (ID_max
// concentrates around (c+2)·log2 n, duplicates tolerated per Lemma 16)
// costs exactly n·ID_max pulses — Corollary 13 verbatim — which makes
// the sampled-ID election Theta(n log n) and million-node rings
// feasible. The fit column divides measured pulses by n·log2 n; a flat
// constant across three orders of magnitude is the claimed growth rate.
// (The in-test sweep stops at n=65536 to stay fast; EXPERIMENTS.md
// records the n=10^6 and 10^7 cmd/ringsim runs of the same workload.)
//
// E15b is the equivalence panel: the same election executed by the
// plain sequential engine, the sharded engine at several shard counts,
// and the flat struct-of-arrays bank must agree on every outcome field
// and on the exact pulse count. Together with the event-level
// differential suite (sharded == ShardReferenceRun, byte for byte) this
// pins the claim that sharding is a pure performance transformation.
func E15(seed int64) ([]*stats.Table, error) {
	sweep, err := e15Sweep(seed)
	if err != nil {
		return nil, err
	}
	equiv, err := e15Equivalence(seed)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{sweep, equiv}, nil
}

// e15GeometricIDs draws geometric ID values: Pr[ID >= k+1] = 2^{-k/(c+2)}.
func e15GeometricIDs(rng *rand.Rand, n int, c float64) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = 1 + uint64(core.SampleBitCount(rng, c))
	}
	return ids
}

func e15Sweep(seed int64) (*stats.Table, error) {
	t := stats.NewTable(
		"E15a — sharded scale sweep: Algorithm 1 over geometric IDs costs exactly n·ID_max = Theta(n log n) pulses",
		"n", "shards", "ID_max", "pulses", "n·ID_max exact", "pulses/(n·log2 n)", "epochs", "quiescent")
	for _, n := range []int{1024, 8192, 65536} {
		rng := rand.New(rand.NewSource(xrand.Split(seed, 0xE15A, uint64(n))))
		ids := e15GeometricIDs(rng, n, 2)
		idMax := ring.MaxID(ids)
		pred := core.PredictedAlg1Pulses(n, idMax)
		topo, err := ring.Oriented(n)
		if err != nil {
			return nil, err
		}
		bank, err := core.NewFlatAlg1(topo, ids)
		if err != nil {
			return nil, err
		}
		s, err := sim.NewShardedFlat(topo, bank, 8, sim.StockSharded(seed)["canonical"])
		if err != nil {
			return nil, err
		}
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			return nil, fmt.Errorf("E15a n=%d: %w", n, err)
		}
		_, _, epochs := s.Progress()
		exact := "yes"
		if res.Sent != pred {
			exact = "NO"
		}
		fit := float64(res.Sent) / (float64(n) * math.Log2(float64(n)))
		t.AddRow(n, s.Shards(), idMax, res.Sent, exact, stats.FormatFloat(fit), epochs, res.Quiescent)
	}
	return t, nil
}

// e15Outcome is the schedule-invariant slice of a Result: the election
// outcome and the exact pulse totals, excluding order-dependent fields
// (TerminationOrder) that legitimately vary across schedules.
type e15Outcome struct {
	leader   int
	leaders  []int
	statuses []node.Status
	sent     uint64
	quiesc   bool
}

func e15Slice(r sim.Result) e15Outcome {
	return e15Outcome{
		leader:   r.Leader,
		leaders:  r.Leaders,
		statuses: r.Statuses,
		sent:     r.Sent,
		quiesc:   r.Quiescent,
	}
}

func e15Equivalence(seed int64) (*stats.Table, error) {
	t := stats.NewTable(
		"E15b — engine equivalence: sequential, sharded, and flat-bank runs agree on outcome and exact pulse count",
		"algorithm", "n", "engine", "shards", "pulses", "leader", "matches sequential")
	type workload struct {
		algo string
		n    int
		ids  func(rng *rand.Rand, n int) []uint64
		pred func(n int, idMax uint64) uint64
	}
	workloads := []workload{
		{"alg1/geometric", 4096,
			func(rng *rand.Rand, n int) []uint64 { return e15GeometricIDs(rng, n, 2) },
			core.PredictedAlg1Pulses},
		{"alg2/distinct", 512,
			func(rng *rand.Rand, n int) []uint64 { return ring.PermutedIDs(n, rng) },
			core.PredictedAlg2Pulses},
	}
	for _, w := range workloads {
		rng := rand.New(rand.NewSource(xrand.Split(seed, 0xE15B, uint64(w.n))))
		ids := w.ids(rng, w.n)
		idMax := ring.MaxID(ids)
		pred := w.pred(w.n, idMax)
		budget := 4*pred + 1024
		topo, err := ring.Oriented(w.n)
		if err != nil {
			return nil, err
		}
		mkMachines := func() ([]node.PulseMachine, error) {
			if w.algo == "alg2/distinct" {
				return core.Alg2Machines(topo, ids)
			}
			return core.Alg1Machines(topo, ids)
		}
		mkBank := func() (node.FlatPulseMachine, error) {
			if w.algo == "alg2/distinct" {
				return core.NewFlatAlg2(topo, ids)
			}
			return core.NewFlatAlg1(topo, ids)
		}

		ms, err := mkMachines()
		if err != nil {
			return nil, err
		}
		plain, err := sim.New(topo, ms, sim.Canonical{})
		if err != nil {
			return nil, err
		}
		plainRes, err := plain.Run(budget)
		if err != nil {
			return nil, fmt.Errorf("E15b %s sequential: %w", w.algo, err)
		}
		want := e15Slice(plainRes)
		t.AddRow(w.algo, w.n, "sequential", 1, plainRes.Sent, plainRes.Leader, "yes")

		for _, shards := range []int{1, 2, 8} {
			ms, err := mkMachines()
			if err != nil {
				return nil, err
			}
			s, err := sim.NewSharded(topo, ms, shards, sim.StockSharded(seed)["canonical"])
			if err != nil {
				return nil, err
			}
			res, err := s.Run(budget)
			if err != nil {
				return nil, fmt.Errorf("E15b %s shards=%d: %w", w.algo, shards, err)
			}
			match := "yes"
			if !reflect.DeepEqual(e15Slice(res), want) {
				match = "NO"
			}
			t.AddRow(w.algo, w.n, "sharded", shards, res.Sent, res.Leader, match)
		}

		bank, err := mkBank()
		if err != nil {
			return nil, err
		}
		s, err := sim.NewShardedFlat(topo, bank, 8, sim.StockSharded(seed)["canonical"])
		if err != nil {
			return nil, err
		}
		res, err := s.Run(budget)
		if err != nil {
			return nil, fmt.Errorf("E15b %s flat: %w", w.algo, err)
		}
		match := "yes"
		if !reflect.DeepEqual(e15Slice(res), want) {
			match = "NO"
		}
		t.AddRow(w.algo, w.n, "sharded/flat", 8, res.Sent, res.Leader, match)
	}
	return t, nil
}
