package experiments

import (
	"fmt"
	"reflect"

	"coleader/internal/core"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/stats"
)

// E16 measures the pulse-run batch fast path (DESIGN.md §8.3) and
// certifies that coalescing is a pure performance transformation.
//
// E16a is the scale sweep: Algorithm 2 over consecutive IDs — the
// Θ(n·ID_max) = Θ(n²) regime E15 declared out of reach for the
// pulse-by-pulse engines — under sim.WithBatching and the Heaviest
// scheduler. The table reports the transition count next to the exact
// pulse count: conservation (pulses = n(2n+1), Theorem 1 verbatim) is
// unchanged by batching, while transitions fall by the coalescing
// factor, which grows with n as Heaviest's backlog-first sweeps form
// ring-sized runs. (The in-test sweep stops at n=16384 to stay fast;
// EXPERIMENTS.md records the n=10⁶ cmd/ringsim run of the same
// workload: 2,000,001,000,000 pulses in 28.0M transitions.)
//
// E16b is the schedule-dependence panel: the same election under the
// batched engine with the canonical (oldest-first, breadth-first)
// scheduler versus Heaviest. Pulse totals and the elected leader are
// schedule-invariant; the coalescing factor is not — canonical keeps
// every queue shallow and caps near 3x, which is why heaviest is the
// production batch configuration. Both rows must match the plain
// sequential engine's outcome exactly.
func E16(seed int64) ([]*stats.Table, error) {
	sweep, err := e16Sweep(seed)
	if err != nil {
		return nil, err
	}
	sched, err := e16Schedule(seed)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{sweep, sched}, nil
}

// e16Run executes one batched flat-bank Alg2 election and returns the
// result plus the transition counters.
func e16Run(n int, schedName string, seed int64) (sim.Result, uint64, uint64, error) {
	topo, err := ring.Oriented(n)
	if err != nil {
		return sim.Result{}, 0, 0, err
	}
	bank, err := core.NewFlatAlg2(topo, ring.ConsecutiveIDs(n))
	if err != nil {
		return sim.Result{}, 0, 0, err
	}
	s, err := sim.NewFlat[pulse.Pulse](topo, bank, sim.Stock(seed)[schedName],
		sim.WithBatching())
	if err != nil {
		return sim.Result{}, 0, 0, err
	}
	pred := core.PredictedAlg2Pulses(n, uint64(n))
	res, err := s.Run(4*pred + 1024)
	if err != nil {
		return sim.Result{}, 0, 0, err
	}
	transitions, multi := s.RunsCoalesced()
	return res, transitions, multi, nil
}

func e16Sweep(seed int64) (*stats.Table, error) {
	t := stats.NewTable(
		"E16a — batched scale sweep: Algorithm 2 over consecutive IDs conserves n(2n+1) pulses exactly while transitions fall by the coalescing factor",
		"n", "pulses", "n(2n+1) exact", "transitions", "multi-pulse", "coalescing", "terminated")
	for _, n := range []int{1024, 4096, 16384} {
		pred := core.PredictedAlg2Pulses(n, uint64(n))
		res, transitions, multi, err := e16Run(n, "heaviest", seed)
		if err != nil {
			return nil, fmt.Errorf("E16a n=%d: %w", n, err)
		}
		exact := "yes"
		if res.Sent != pred {
			exact = "NO"
		}
		factor := float64(res.Delivered) / float64(transitions)
		t.AddRow(n, res.Sent, exact, transitions, multi,
			stats.FormatFloat(factor)+"x", res.AllTerminated)
	}
	return t, nil
}

func e16Schedule(seed int64) (*stats.Table, error) {
	const n = 1024
	t := stats.NewTable(
		"E16b — coalescing is schedule-dependent, pulse totals are not: canonical's breadth-first order caps near 3x where heaviest sweeps ring-sized runs",
		"n", "scheduler", "pulses", "leader", "transitions", "coalescing", "matches plain sequential")

	// The plain (unbatched) sequential engine is the outcome oracle.
	topo, err := ring.Oriented(n)
	if err != nil {
		return nil, err
	}
	ms, err := core.Alg2Machines(topo, ring.ConsecutiveIDs(n))
	if err != nil {
		return nil, err
	}
	plain, err := sim.New(topo, ms, sim.Canonical{})
	if err != nil {
		return nil, err
	}
	pred := core.PredictedAlg2Pulses(n, uint64(n))
	plainRes, err := plain.Run(4*pred + 1024)
	if err != nil {
		return nil, fmt.Errorf("E16b sequential: %w", err)
	}
	want := e15Slice(plainRes)

	for _, schedName := range []string{"canonical", "heaviest"} {
		res, transitions, _, err := e16Run(n, schedName, seed)
		if err != nil {
			return nil, fmt.Errorf("E16b %s: %w", schedName, err)
		}
		match := "yes"
		if !reflect.DeepEqual(e15Slice(res), want) {
			match = "NO"
		}
		factor := float64(res.Delivered) / float64(transitions)
		t.AddRow(n, schedName, res.Sent, res.Leader, transitions,
			stats.FormatFloat(factor)+"x", match)
	}
	return t, nil
}
