package experiments

import (
	"fmt"
	"math/rand"

	"coleader/internal/baseline"
	"coleader/internal/defective"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/stats"
)

// E12 is the transport ablation for the universal-simulation substrate:
// the chunk width of the adapter codec trades frames per message (narrow
// digits mean more full turn rotations) against pulses per frame (the
// unary encoding makes a frame's cost linear in its digit value, which is
// exponential in the width — but packed protocol values are sparse, so
// high-base digits are often tiny). The experiment runs Chang–Roberts over
// the defective layer at every width and reports total pulses, frames, and
// pulses per simulated message. This design dimension has no analogue in
// the paper (whose own frames carry at most one unary value); it exists
// because this repository's layer carries arbitrary payloads.
func E12(seed int64) ([]*stats.Table, error) {
	t := stats.NewTable(
		"E12 — transport ablation: chunk width vs cost (Chang–Roberts over the defective layer)",
		"n", "chunk bits", "pulses", "frames seen", "chunks delivered", "pulses/chunk", "app leader ok")
	for _, n := range []int{3, 5} {
		ids := ring.PermutedIDs(n, rand.New(rand.NewSource(seed)))
		maxIdx, _ := ring.MaxIndex(ids)
		for _, bits := range []uint{1, 2, 4, 8, 12, 16} {
			topo, err := ring.Oriented(n)
			if err != nil {
				return nil, err
			}
			dec := func(v uint64) (baseline.Msg, error) { return baseline.UnpackMsg(v) }
			adapters := make([]*defective.Adapter[baseline.Msg], n)
			layers := make([]*defective.Node, n)
			ms := make([]node.PulseMachine, n)
			for k := 0; k < n; k++ {
				inner, err := baseline.New(baseline.AlgChangRoberts, ids[k], pulse.Port1)
				if err != nil {
					return nil, err
				}
				ad, err := defective.NewAdapterBits[baseline.Msg](inner, baseline.MustPackMsg, dec, bits)
				if err != nil {
					return nil, err
				}
				adapters[k] = ad
				dn, err := defective.NewNode(k == 0, topo.CWPort(k), ad)
				if err != nil {
					return nil, err
				}
				layers[k] = dn
				ms[k] = dn
			}
			s, err := sim.New(topo, ms, sim.NewRandom(seed+int64(bits)))
			if err != nil {
				return nil, err
			}
			res, err := s.Run(1 << 26)
			if err != nil {
				return nil, fmt.Errorf("E12 n=%d bits=%d: %w", n, bits, err)
			}
			ok := true
			for k, ad := range adapters {
				st := ad.Inner().Status()
				if (st.State == node.StateLeader) != (k == maxIdx) || ad.Err() != nil {
					ok = false
				}
			}
			frames := layers[0].FramesObserved()
			var delivered int
			for _, l := range layers {
				delivered += l.MessagesDelivered()
			}
			perChunk := "n/a"
			if delivered > 0 {
				perChunk = fmt.Sprintf("%.0f", float64(res.Sent)/float64(delivered))
			}
			t.AddRow(n, bits, res.Sent, frames, delivered, perChunk, boolMark(ok))
		}
	}
	return []*stats.Table{t}, nil
}
