package experiments

import (
	"fmt"
	"math/rand"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/stats"
)

// E10 measures the gap the paper's quiescent-stabilization notion lives
// in: for the non-terminating algorithms (1 and 3), the global output is
// already final well before the network goes quiet, and the nodes have no
// way to tell — Section 3.1: "nodes do not terminate since they do not
// know whether the ring has achieved this quiescent state". The table
// reports, per run, the step at which the last node's election state
// changed for the last time (stabilization) against the step of the last
// delivery (quiescence), and the fraction of the run spent churning
// pulses after the answer was already settled.
func E10(seed int64) ([]*stats.Table, error) {
	t := stats.NewTable(
		"E10 — stabilization vs quiescence for the non-terminating algorithms",
		"algorithm", "n", "ID_max", "scheduler", "stabilized at step", "quiescent at step", "post-answer churn")
	rng := rand.New(rand.NewSource(seed))
	for _, algo := range []string{"alg1", "alg3"} {
		for _, n := range []int{4, 16, 64} {
			ids := ring.PermutedIDs(n, rng)
			idMax := ring.MaxID(ids)
			for _, schedName := range []string{"canonical", "random", "newest"} {
				sched := sim.Stock(seed)[schedName]
				var (
					topo ring.Topology
					ms   []node.PulseMachine
					pred uint64
					err  error
				)
				if algo == "alg1" {
					topo, err = ring.Oriented(n)
					if err != nil {
						return nil, err
					}
					ms, err = core.Alg1Machines(topo, ids)
					pred = core.PredictedAlg1Pulses(n, idMax)
				} else {
					topo, err = ring.RandomNonOriented(n, rng)
					if err != nil {
						return nil, err
					}
					ms, err = core.Alg3Machines(n, ids, core.SchemeSuccessor)
					pred = core.PredictedAlg3Pulses(n, idMax, core.SchemeSuccessor)
				}
				if err != nil {
					return nil, err
				}
				tl := newTimeline(n)
				s, err := sim.New(topo, ms, sched, sim.WithObserver[pulse.Pulse](tl))
				if err != nil {
					return nil, err
				}
				if _, err := s.Run(4*pred + 1024); err != nil {
					return nil, fmt.Errorf("E10 %s n=%d %s: %w", algo, n, schedName, err)
				}
				churn := 0.0
				if tl.lastDelivery > 0 {
					churn = float64(tl.lastDelivery-tl.lastChange) / float64(tl.lastDelivery)
				}
				t.AddRow(algo, n, idMax, schedName, tl.lastChange, tl.lastDelivery,
					fmt.Sprintf("%.1f%%", 100*churn))
			}
		}
	}
	return []*stats.Table{t}, nil
}

// timeline records when node outputs last changed and when the last
// delivery happened.
type timeline struct {
	prev         []node.Status
	lastChange   uint64
	lastDelivery uint64
}

func newTimeline(n int) *timeline { return &timeline{prev: make([]node.Status, n)} }

// OnEvent implements sim.Observer.
func (tl *timeline) OnEvent(e *sim.Event, s *sim.Sim[pulse.Pulse]) error {
	if e.Kind == sim.EvDeliver {
		tl.lastDelivery = e.Step
	}
	for k := range tl.prev {
		st := s.Machine(k).Status()
		if st.State != tl.prev[k].State ||
			st.HasOrientation != tl.prev[k].HasOrientation ||
			st.CWPort != tl.prev[k].CWPort {
			tl.lastChange = e.Step
			tl.prev[k] = st
		}
	}
	return nil
}
