package experiments_test

import (
	"strings"
	"testing"

	"coleader/internal/experiments"
)

// TestRegistry checks the experiment registry is complete and consistent.
func TestRegistry(t *testing.T) {
	all := experiments.All()
	if len(all) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		got, ok := experiments.Find(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("Find(%s) failed", e.ID)
		}
	}
	if _, ok := experiments.Find("E99"); ok {
		t.Error("Find accepted an unknown id")
	}
}

// TestCheapExperimentsPass runs the fast experiments end to end and
// asserts every assertion cell reads "yes" — i.e. the paper's claims
// reproduce. (The slower experiments E1/E3/E6/E8 run in CI via
// cmd/experiments; their logic is identical in shape.)
func TestCheapExperimentsPass(t *testing.T) {
	for _, id := range []string{"E2", "E4", "E5", "E7", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := experiments.Find(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			tables, err := e.Run(7)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", id)
			}
			for _, tb := range tables {
				if tb.NumRows() == 0 {
					t.Errorf("%s: table %q empty", id, tb.Title)
				}
				for _, row := range tb.Rows() {
					for _, cell := range row {
						if cell == "NO" {
							t.Errorf("%s: failed assertion in table %q row %v", id, tb.Title, row)
						}
					}
				}
				// Both renderers must produce output mentioning the title.
				if !strings.Contains(tb.String(), "E") || !strings.Contains(tb.Markdown(), "|") {
					t.Errorf("%s: rendering broken", id)
				}
			}
		})
	}
}

// TestExperimentsDeterministic: same seed, same tables.
func TestExperimentsDeterministic(t *testing.T) {
	e, _ := experiments.Find("E2")
	a, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].String() != b[0].String() {
		t.Error("same seed produced different tables")
	}
	c, err := e.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may or may not differ (IDs are reshuffled); no assertion
}
