package experiments

import (
	"fmt"
	"math/rand"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/stats"
)

// E13 measures the r-redundancy composition of Section 1.1: the fallback
// the paper describes for concatenating algorithms when the first stage
// only bounds (by r) the stray messages that may cross the transition. The
// altered form sends r+1 copies of each pulse and processes arrivals in
// groups of r+1; the table verifies the election is untouched and the cost
// is exactly the (r+1)-fold blow-up the paper quotes — the overhead that
// quiescent termination (Theorem 1) exists to avoid.
func E13(seed int64) ([]*stats.Table, error) {
	t := stats.NewTable(
		"E13 — the Section 1.1 r-redundancy alternative: (r+1)-fold cost to tolerate r stray pulses",
		"n", "ID_max", "r", "pulses", "baseline n(2·ID_max+1)", "blow-up", "leader ok", "terminated")
	for _, n := range []int{4, 16} {
		ids := ring.PermutedIDs(n, rand.New(rand.NewSource(seed)))
		idMax := ring.MaxID(ids)
		maxIdx, _ := ring.MaxIndex(ids)
		base := core.PredictedAlg2Pulses(n, idMax)
		for _, r := range []int{0, 1, 2, 4, 8} {
			topo, err := ring.Oriented(n)
			if err != nil {
				return nil, err
			}
			ms := make([]node.PulseMachine, n)
			for k := range ms {
				inner, err := core.NewAlg2(ids[k], topo.CWPort(k))
				if err != nil {
					return nil, err
				}
				rd, err := core.NewRedundant(inner, r)
				if err != nil {
					return nil, err
				}
				ms[k] = rd
			}
			s, err := sim.New(topo, ms, sim.NewRandom(seed+int64(r)))
			if err != nil {
				return nil, err
			}
			res, err := s.Run(uint64(r+1)*4*base + 4096)
			if err != nil {
				return nil, fmt.Errorf("E13 n=%d r=%d: %w", n, r, err)
			}
			t.AddRow(n, idMax, r, res.Sent, base,
				stats.Ratio(float64(res.Sent), float64(base)),
				boolMark(res.Leader == maxIdx),
				boolMark(res.AllTerminated))
		}
	}
	return []*stats.Table{t}, nil
}
