// Package experiments regenerates every quantitative claim of the paper as
// a table: the theorem-exact message complexities (E1, E2), the anonymous
// ring's probabilistic guarantees (E3), the lower bound and solitude
// patterns (E4), the lemma invariants (E5), the comparison against
// classical content-carrying election (E6), the Corollary 5 composition
// (E7), Proposition 19 (E8), and exhaustive small-ring schedule checking
// (E9). Later experiments probe beyond the paper's model: stabilization
// timelines (E10), knowledge ablation (E11), transport width (E12),
// redundancy composition (E13), seeded fault injection (E14), and the
// sharded simulator's scale and schedule-equivalence (E15), batch-engine
// pulse-run coalescing (E16), and exhaustive fault-aware verification of
// every injection position under every schedule (E17).
// cmd/experiments renders them; EXPERIMENTS.md records the outputs
// against the paper's statements.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"coleader/internal/baseline"
	"coleader/internal/check"
	"coleader/internal/core"
	"coleader/internal/defective"
	"coleader/internal/lowerbound"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/stats"
	"coleader/internal/trace"
	"coleader/internal/xrand"
)

// Experiment is one registered regenerator.
type Experiment struct {
	// ID is the experiment identifier (E1..E9).
	ID string
	// Claim is the paper statement under test.
	Claim string
	// Run produces the experiment's tables.
	Run func(seed int64) ([]*stats.Table, error)
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Theorem 1: Algorithm 2 elects with quiescent termination in exactly n(2·ID_max+1) pulses", E1},
		{"E2", "Theorem 2 / Proposition 15: Algorithm 3 elects and orients non-oriented rings in n(2·ID_max+1) / n(4·ID_max-1) pulses", E2},
		{"E3", "Theorem 3 / Lemma 18: anonymous election succeeds w.h.p. with polynomially bounded unique maximum", E3},
		{"E4", "Theorem 4/20 + Lemma 22: distinct solitude patterns and the n·floor(log2(ID_max/n)) lower bound", E4},
		{"E5", "Lemmas 6-17: per-event invariants hold under every scheduler, including duplicate IDs", E5},
		{"E6", "Section 1.2: the price of content-obliviousness vs classical O(n log n) election", E6},
		{"E7", "Corollary 5: arbitrary computations over a fully defective ring after electing a leader", E7},
		{"E8", "Proposition 19: ID resampling yields all-distinct IDs at quiescence w.h.p.", E8},
		{"E9", "Model checking: Theorems 1/2 hold under EVERY schedule on small rings", E9},
		{"E10", "Quiescent stabilization: outputs settle long before the network goes quiet, undetectably", E10},
		{"E11", "Knowledge frontier: known-n Itai-Rodeh terminates where the no-knowledge pipeline can only stabilize", E11},
		{"E12", "Transport ablation: chunk width vs pulse cost in the universal simulation layer", E12},
		{"E13", "Section 1.1 r-redundancy composition: correctness preserved at exactly (r+1)-fold cost", E13},
		{"E14", "Fault plane: stabilizing algorithms heal early output corruption exactly; the terminating algorithm breaks under conservation-violating faults", E14},
		{"E15", "Sharded engine: geometric-ID elections cost Theta(n log n) pulses to million-node rings, with arc parallelism provably schedule-equivalent", E15},
		{"E16", "Batch engine: pulse-run coalescing conserves Theorem 1's pulse count exactly while transitions fall by the schedule-dependent coalescing factor", E16},
		{"E17", "Fault-aware model checking: pulse-conserving fault classes (loss, crash, corrupt) yield finite state spaces verified exhaustively; pulse-adding classes (dup, spurious, restart) provably diverge and are certified up to a state bound", E17},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func boolMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// E1 sweeps Algorithm 2 over sizes, ID assignments, and schedulers,
// asserting the exact Theorem 1 complexity and termination discipline.
// Cells are independent runs: they execute on the sweep worker pool with
// per-cell split seeds and are reduced in cell order, so the table is
// identical at any worker count.
func E1(seed int64) ([]*stats.Table, error) {
	t := stats.NewTable(
		"E1 — Theorem 1: Algorithm 2 on oriented rings (predicted = n(2·ID_max+1))",
		"n", "ID scheme", "ID_max", "scheduler", "pulses", "predicted", "exact", "leader=max", "leader last")
	assignNames := []string{"consecutive", "permuted", "sparse(n^2)", "adversarial(8n)"}
	idsFor := func(n, asIdx int) ([]uint64, error) {
		rng := rand.New(rand.NewSource(xrand.Split(seed, 0xE1, uint64(n), uint64(asIdx))))
		switch asIdx {
		case 0:
			return ring.ConsecutiveIDs(n), nil
		case 1:
			return ring.PermutedIDs(n, rng), nil
		case 2:
			return ring.SparseIDs(n, uint64(n)*uint64(n)+16, rng)
		default:
			return ring.AdversarialIDs(n, uint64(8*n))
		}
	}
	type cell struct {
		n, asIdx  int
		schedName string
	}
	var cells []cell
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		for asIdx := range assignNames {
			for _, schedName := range []string{"canonical", "random", "ccw-first"} {
				cells = append(cells, cell{n, asIdx, schedName})
			}
		}
	}
	type row struct {
		idMax, sent, pred            uint64
		exact, leaderMax, leaderLast bool
		err                          error
	}
	rows := make([]row, len(cells))
	parDo(len(cells), func(i int) {
		c := cells[i]
		ids, err := idsFor(c.n, c.asIdx)
		if err != nil {
			rows[i].err = err
			return
		}
		topo, err := ring.Oriented(c.n)
		if err != nil {
			rows[i].err = err
			return
		}
		ms, err := core.Alg2Machines(topo, ids)
		if err != nil {
			rows[i].err = err
			return
		}
		s, err := sim.New(topo, ms, sim.Stock(seed)[c.schedName])
		if err != nil {
			rows[i].err = err
			return
		}
		idMax := ring.MaxID(ids)
		pred := core.PredictedAlg2Pulses(c.n, idMax)
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			rows[i].err = fmt.Errorf("E1 n=%d %s %s: %w", c.n, assignNames[c.asIdx], c.schedName, err)
			return
		}
		maxIdx, _ := ring.MaxIndex(ids)
		rows[i] = row{
			idMax: idMax, sent: res.Sent, pred: pred,
			exact:      res.Sent == pred,
			leaderMax:  res.Leader == maxIdx,
			leaderLast: len(res.TerminationOrder) == c.n && res.TerminationOrder[c.n-1] == maxIdx,
		}
	})
	for i, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		c := cells[i]
		t.AddRow(c.n, assignNames[c.asIdx], r.idMax, c.schedName, r.sent, r.pred,
			boolMark(r.exact), boolMark(r.leaderMax), boolMark(r.leaderLast))
	}
	return []*stats.Table{t}, nil
}

// E2 sweeps Algorithm 3 over port assignments and both virtual-ID schemes.
func E2(seed int64) ([]*stats.Table, error) {
	t := stats.NewTable(
		"E2 — Theorem 2 / Prop. 15: Algorithm 3 on non-oriented rings",
		"n", "scheme", "ID_max", "ports", "pulses", "predicted", "exact", "leader=max", "oriented")
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		ids := ring.PermutedIDs(n, rng)
		idMax := ring.MaxID(ids)
		maxIdx, _ := ring.MaxIndex(ids)
		ports := map[string]func() (ring.Topology, error){
			"oriented": func() (ring.Topology, error) { return ring.Oriented(n) },
			"random":   func() (ring.Topology, error) { return ring.RandomNonOriented(n, rng) },
			"all-flipped": func() (ring.Topology, error) {
				f := make([]bool, n)
				for i := range f {
					f[i] = true
				}
				return ring.NonOriented(f)
			},
		}
		portNames := make([]string, 0, len(ports))
		for name := range ports {
			portNames = append(portNames, name)
		}
		sort.Strings(portNames)
		for _, scheme := range []core.IDScheme{core.SchemeSuccessor, core.SchemeDoubled} {
			for _, pn := range portNames {
				topo, err := ports[pn]()
				if err != nil {
					return nil, err
				}
				ms, err := core.Alg3Machines(n, ids, scheme)
				if err != nil {
					return nil, err
				}
				s, err := sim.New(topo, ms, sim.NewRandom(seed+int64(n)))
				if err != nil {
					return nil, err
				}
				pred := core.PredictedAlg3Pulses(n, idMax, scheme)
				res, err := s.Run(4*pred + 1024)
				if err != nil {
					return nil, fmt.Errorf("E2 n=%d %v %s: %w", n, scheme, pn, err)
				}
				oriented := true
				var dir pulse.Direction
				for k, st := range res.Statuses {
					if !st.HasOrientation {
						oriented = false
						break
					}
					d := topo.DirectionOf(k, st.CWPort)
					if dir == 0 {
						dir = d
					} else if d != dir {
						oriented = false
						break
					}
				}
				t.AddRow(n, scheme.String(), idMax, pn, res.Sent, pred,
					boolMark(res.Sent == pred),
					boolMark(res.Leader == maxIdx),
					boolMark(oriented))
			}
		}
	}
	return []*stats.Table{t}, nil
}

// E3 measures the anonymous pipeline: unique-max rate, election success,
// and ID_max magnitude, per (n, c).
func E3(seed int64) ([]*stats.Table, error) {
	// ID_max is reported by median/p99, not mean: the geometric sampler's
	// value distribution has E[2^BitCount] = infinity whenever 2p > 1, so
	// sample means are dominated by a single extreme draw and carry no
	// information. Lemma 18's statements are w.h.p. bounds, i.e. quantile
	// statements, which the order statistics below test directly.
	rate := stats.NewTable(
		"E3a — Lemma 18: unique-maximum rate of Algorithm 4 (10000 trials each)",
		"n", "c", "unique-max rate", "median ID_max", "p99 ID_max")
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		for ci, c := range []float64{0.5, 1, 2, 3} {
			const trials = 10000
			type draw struct {
				unique bool
				max    float64
			}
			draws := make([]draw, trials)
			parDo(trials, func(i int) {
				rng := rand.New(rand.NewSource(xrand.Split(seed, 0xE3A, uint64(n), uint64(ci), uint64(i))))
				ids := core.SampleIDs(rng, n, c)
				draws[i] = draw{core.UniqueMax(ids), float64(ring.MaxID(ids))}
			})
			unique := 0
			maxes := make([]float64, 0, trials)
			for _, d := range draws {
				if d.unique {
					unique++
				}
				maxes = append(maxes, d.max)
			}
			sum := stats.Summarize(maxes)
			rate.AddRow(n, c, float64(unique)/trials, sum.P50, sum.P99)
		}
	}

	elect := stats.NewTable(
		"E3b — Theorem 3: full anonymous election (Algorithm 4 + Algorithm 3) on random non-oriented rings",
		"n", "c", "trials run", "unique-max draws", "elections correct", "mean pulses")
	for _, n := range []int{6, 12, 24} {
		const c = 1.0
		const trials = 60
		type trial struct {
			ran, unique, correct bool
			pulses               float64
			err                  error
		}
		res := make([]trial, trials)
		parDo(trials, func(i int) {
			rng := rand.New(rand.NewSource(xrand.Split(seed, 0xE3B, uint64(n), uint64(i))))
			ids := core.SampleIDs(rng, n, c)
			pred := core.PredictedAlg3Pulses(n, ring.MaxID(ids), core.SchemeSuccessor)
			if pred > 2_000_000 {
				return // heavy-tail draw; magnitude covered by E3a
			}
			topo, err := ring.RandomNonOriented(n, rng)
			if err != nil {
				res[i].err = err
				return
			}
			ms, err := core.Alg3Machines(n, ids, core.SchemeSuccessor)
			if err != nil {
				res[i].err = err
				return
			}
			s, err := sim.New(topo, ms, sim.NewRandom(xrand.Split(seed, 0xE3B+1, uint64(n), uint64(i))))
			if err != nil {
				res[i].err = err
				return
			}
			r, err := s.Run(4*pred + 1024)
			if err != nil {
				res[i].err = fmt.Errorf("E3 n=%d trial %d: %w", n, i, err)
				return
			}
			maxIdx, uniq := ring.MaxIndex(ids)
			res[i] = trial{
				ran:     true,
				unique:  uniq,
				correct: uniq && r.Leader == maxIdx,
				pulses:  float64(r.Sent),
			}
		})
		ran, uniqueDraws, correct := 0, 0, 0
		var pulses []float64
		for _, tr := range res {
			if tr.err != nil {
				return nil, tr.err
			}
			if !tr.ran {
				continue
			}
			ran++
			pulses = append(pulses, tr.pulses)
			if tr.unique {
				uniqueDraws++
				if tr.correct {
					correct++
				}
			}
		}
		elect.AddRow(n, c, ran, uniqueDraws, correct, stats.Summarize(pulses).Mean)
	}
	return []*stats.Table{rate, elect}, nil
}

// E4 regenerates the lower-bound analysis: solitude patterns are unique
// (Lemma 22), their shared prefixes respect the pigeonhole floor, and the
// measured Algorithm 2 cost brackets between Theorem 4's lower bound and
// Theorem 1's upper bound.
func E4(seed int64) ([]*stats.Table, error) {
	mk := func(id uint64) (node.PulseMachine, error) { return core.NewAlg2(id, pulse.Port1) }
	const maxID = 2048
	ps, err := lowerbound.Patterns(mk, maxID, 1<<16)
	if err != nil {
		return nil, err
	}
	minLen, err := lowerbound.VerifyUnique(ps)
	if err != nil {
		return nil, err
	}
	uniq := stats.NewTable(
		fmt.Sprintf("E4a — Lemma 22: solitude patterns of Algorithm 2 for IDs 1..%d", maxID),
		"IDs checked", "all distinct", "min pattern length", "max shared prefix", "pigeonhole floor log2(k/2)")
	uniq.AddRow(maxID, "yes", minLen, lowerbound.MaxSharedPrefix(ps),
		int(core.LowerBoundPulses(2, maxID))/2)

	bound := stats.NewTable(
		"E4b — Theorem 4 vs Theorem 1: measured cost between n·floor(log2(ID_max/n)) and n(2·ID_max+1)",
		"n", "ID_max", "lower bound", "measured", "upper bound", "measured/lower", "within")
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{1, 2, 4, 8, 16} {
		for _, factor := range []uint64{1, 4, 16, 64, 256} {
			idMax := uint64(n) * factor
			if idMax < uint64(n) {
				continue
			}
			ids, err := ring.SparseIDs(n, idMax, rng)
			if err != nil {
				return nil, err
			}
			// Force the max to be exactly idMax for a clean x-axis.
			maxIdx, _ := ring.MaxIndex(ids)
			ids[maxIdx] = idMax
			topo, err := ring.Oriented(n)
			if err != nil {
				return nil, err
			}
			ms, err := core.Alg2Machines(topo, ids)
			if err != nil {
				return nil, err
			}
			s, err := sim.New(topo, ms, sim.NewRandom(seed))
			if err != nil {
				return nil, err
			}
			ub := core.PredictedAlg2Pulses(n, idMax)
			res, err := s.Run(4*ub + 1024)
			if err != nil {
				return nil, fmt.Errorf("E4 n=%d idMax=%d: %w", n, idMax, err)
			}
			lb := core.LowerBoundPulses(n, idMax)
			ratio := "inf"
			if lb > 0 {
				ratio = stats.Ratio(float64(res.Sent), float64(lb))
			}
			bound.AddRow(n, idMax, lb, res.Sent, ub, ratio,
				boolMark(res.Sent >= lb && res.Sent <= ub))
		}
	}
	return []*stats.Table{uniq, bound}, nil
}

// E5 runs the Lemma 6 family of checkers after every event of runs across
// schedulers and duplicate-ID assignments (Lemmas 16/17, Figure 2).
func E5(seed int64) ([]*stats.Table, error) {
	t := stats.NewTable(
		"E5 — Lemmas 6-17: per-event invariant checking (each row = one fully checked run)",
		"algorithm", "n", "IDs", "scheduler", "events checked", "violations")
	rng := rand.New(rand.NewSource(seed))
	type cfg struct {
		alg  string
		ids  []uint64
		desc string
	}
	dup64, err := ring.DuplicateIDs(6, 4, 3)
	if err != nil {
		return nil, err
	}
	dupAll := []uint64{5, 5, 5, 5}
	cfgs := []cfg{
		{"alg1", ring.PermutedIDs(8, rng), "unique"},
		{"alg1", dup64, "3 nodes at ID_max (Fig. 2)"},
		{"alg1", dupAll, "all nodes at ID_max"},
		{"alg2", ring.PermutedIDs(8, rng), "unique"},
		{"alg2", ring.ConsecutiveIDs(12), "consecutive"},
	}
	for _, c := range cfgs {
		for _, schedName := range []string{"canonical", "random", "ccw-first", "newest"} {
			sched := sim.Stock(seed)[schedName]
			topo, err := ring.Oriented(len(c.ids))
			if err != nil {
				return nil, err
			}
			var ms []node.PulseMachine
			var obs sim.Observer[pulse.Pulse]
			idMax := ring.MaxID(c.ids)
			if c.alg == "alg1" {
				ms, err = core.Alg1Machines(topo, c.ids)
				obs = trace.Alg1Invariants{IDMax: idMax}
			} else {
				ms, err = core.Alg2Machines(topo, c.ids)
				obs = trace.Alg2Invariants{IDMax: idMax}
			}
			if err != nil {
				return nil, err
			}
			events := 0
			counter := sim.ObserverFunc[pulse.Pulse](func(*sim.Event, *sim.Sim[pulse.Pulse]) error {
				events++
				return nil
			})
			s, err := sim.New(topo, ms, sched,
				sim.WithObserver[pulse.Pulse](obs), sim.WithObserver[pulse.Pulse](counter))
			if err != nil {
				return nil, err
			}
			if _, err := s.Run(1 << 20); err != nil {
				return nil, fmt.Errorf("E5 %s %s %s: %w", c.alg, c.desc, schedName, err)
			}
			t.AddRow(c.alg, len(c.ids), c.desc, schedName, events, 0)
		}
	}
	return []*stats.Table{t}, nil
}

// E6 compares the content-oblivious election against the classical
// content-carrying baselines across ring sizes and ID magnitudes.
func E6(seed int64) ([]*stats.Table, error) {
	t := stats.NewTable(
		"E6 — the price of content-obliviousness: messages (baselines carry content; Algorithm 2 carries none)",
		"n", "ID_max", "lelann", "chang-roberts", "hirschberg-sinclair", "peterson", "alg2 (pulses)", "alg2/peterson")
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		for _, idMaxF := range []uint64{1, 8, 64} {
			idMax := uint64(n) * idMaxF
			ids, err := ring.SparseIDs(n, idMax, rng)
			if err != nil {
				return nil, err
			}
			maxIdx, _ := ring.MaxIndex(ids)
			ids[maxIdx] = idMax
			topo, err := ring.Oriented(n)
			if err != nil {
				return nil, err
			}
			counts := make(map[baseline.Algorithm]uint64)
			for _, a := range baseline.Algorithms() {
				res, err := baseline.Run(a, topo, ids, sim.NewRandom(seed), 1<<22)
				if err != nil {
					return nil, fmt.Errorf("E6 %s n=%d: %w", a, n, err)
				}
				counts[a] = res.Sent
			}
			ms, err := core.Alg2Machines(topo, ids)
			if err != nil {
				return nil, err
			}
			s, err := sim.New(topo, ms, sim.NewRandom(seed))
			if err != nil {
				return nil, err
			}
			pred := core.PredictedAlg2Pulses(n, idMax)
			res, err := s.Run(4*pred + 1024)
			if err != nil {
				return nil, fmt.Errorf("E6 alg2 n=%d: %w", n, err)
			}
			t.AddRow(n, idMax,
				counts[baseline.AlgLeLann], counts[baseline.AlgChangRoberts],
				counts[baseline.AlgHirschbergSinclair], counts[baseline.AlgPeterson],
				res.Sent, stats.Ratio(float64(res.Sent), float64(counts[baseline.AlgPeterson])))
		}
	}
	return []*stats.Table{t}, nil
}

// E7 measures the Corollary 5 pipeline: election, layer setup, and the
// simulated computation, with the exact setup-cost prediction.
func E7(seed int64) ([]*stats.Table, error) {
	t := stats.NewTable(
		"E7 — Corollary 5: elect (Alg. 2) then compute max-consensus over the fully defective ring",
		"n", "ID_max", "total pulses", "election (exact)", "setup (exact)", "computation", "answer correct everywhere")
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		ids := ring.PermutedIDs(n, rng)
		idMax := ring.MaxID(ids)
		inputs := make([]uint64, n)
		var want uint64
		for i := range inputs {
			inputs[i] = uint64(rng.Intn(100))
			if inputs[i] > want {
				want = inputs[i]
			}
		}
		topo, err := ring.Oriented(n)
		if err != nil {
			return nil, err
		}
		apps := make([]*defective.RingMax, n)
		ms := make([]node.PulseMachine, n)
		for k := 0; k < n; k++ {
			apps[k] = defective.NewRingMax(inputs[k])
			m, err := defective.NewComposed(ids[k], topo.CWPort(k), apps[k])
			if err != nil {
				return nil, err
			}
			ms[k] = m
		}
		s, err := sim.New(topo, ms, sim.NewRandom(seed+int64(n)))
		if err != nil {
			return nil, err
		}
		res, err := s.Run(1 << 26)
		if err != nil {
			return nil, fmt.Errorf("E7 n=%d: %w", n, err)
		}
		election := core.PredictedAlg2Pulses(n, idMax)
		setup := defective.PredictedSetupPulses(n)
		comp := res.Sent - election - setup
		ok := true
		for _, a := range apps {
			if !a.Done() || a.Result() != want {
				ok = false
			}
		}
		t.AddRow(n, idMax, res.Sent, election, setup, comp, boolMark(ok))
	}
	return []*stats.Table{t}, nil
}

// E8 measures Proposition 19's distinctness guarantee against the
// magnitude of ID_max.
func E8(seed int64) ([]*stats.Table, error) {
	t := stats.NewTable(
		"E8 — Proposition 19: all-distinct IDs at quiescence (resampling variant of Algorithm 3)",
		"n", "ID_max", "trials", "all distinct", "rate", "mean resamples/node")
	for _, n := range []int{4, 8, 12} {
		for _, idMax := range []uint64{64, 1024, 65536} {
			const trials = 40
			type trial struct {
				distinct  bool
				resamples float64
				err       error
			}
			res := make([]trial, trials)
			parDo(trials, func(i int) {
				rng := rand.New(rand.NewSource(xrand.Split(seed, 0xE8, uint64(n), idMax, uint64(i))))
				ids := make([]uint64, n)
				for j := range ids {
					ids[j] = 1 + uint64(rng.Intn(3)) // maximal collision pressure
				}
				ids[rng.Intn(n)] = idMax
				topo, err := ring.RandomNonOriented(n, rng)
				if err != nil {
					res[i].err = err
					return
				}
				ms, err := core.Alg3ResampleMachines(n, ids, core.SchemeSuccessor,
					xrand.Split(seed, 0xE8+1, uint64(n), idMax, uint64(i)))
				if err != nil {
					res[i].err = err
					return
				}
				s, err := sim.New(topo, ms, sim.NewRandom(xrand.Split(seed, 0xE8+2, uint64(n), idMax, uint64(i))))
				if err != nil {
					res[i].err = err
					return
				}
				pred := core.PredictedAlg3Pulses(n, idMax, core.SchemeSuccessor)
				if _, err := s.Run(4*pred + 1024); err != nil {
					res[i].err = fmt.Errorf("E8 n=%d trial %d: %w", n, i, err)
					return
				}
				final := make([]uint64, n)
				var rs float64
				for k := 0; k < n; k++ {
					m := s.Machine(k).(*core.Alg3Resample)
					final[k] = m.ID()
					rs += float64(m.Resamples())
				}
				res[i] = trial{
					distinct:  ring.CheckDistinct(final) == nil,
					resamples: rs / float64(n),
				}
			})
			distinct := 0
			var resamples []float64
			for _, tr := range res {
				if tr.err != nil {
					return nil, tr.err
				}
				if tr.distinct {
					distinct++
				}
				resamples = append(resamples, tr.resamples)
			}
			t.AddRow(n, idMax, trials, distinct, float64(distinct)/trials,
				stats.Summarize(resamples).Mean)
		}
	}
	return []*stats.Table{t}, nil
}

// E9 model-checks Theorems 1 and 2 under every delivery schedule of small
// rings.
func E9(int64) ([]*stats.Table, error) {
	t := stats.NewTable(
		"E9 — exhaustive schedule exploration (memoized): every interleaving verified",
		"algorithm", "IDs", "ports", "states", "terminal states", "max depth", "all schedules correct")
	type inst struct {
		alg   string
		ids   []uint64
		flips []bool
	}
	insts := []inst{
		{"alg2", []uint64{1}, nil},
		{"alg2", []uint64{2, 1}, nil},
		{"alg2", []uint64{1, 3}, nil},
		{"alg2", []uint64{3, 1, 2}, nil},
		{"alg2", []uint64{2, 4, 1}, nil},
		{"alg1", []uint64{2, 2, 1}, nil},
		{"alg3", []uint64{2, 1}, []bool{false, true}},
		{"alg3", []uint64{1, 2, 3}, []bool{true, false, true}},
	}
	for _, in := range insts {
		n := len(in.ids)
		var topo ring.Topology
		var err error
		ports := "oriented"
		if in.flips != nil {
			topo, err = ring.NonOriented(in.flips)
			ports = fmt.Sprint(in.flips)
		} else {
			topo, err = ring.Oriented(n)
		}
		if err != nil {
			return nil, err
		}
		idMax := ring.MaxID(in.ids)
		maxIdx, uniqueMax := ring.MaxIndex(in.ids)
		cfg := check.Config{Topo: topo}
		switch in.alg {
		case "alg1":
			cfg.NewMachines = func() ([]node.PulseMachine, error) { return core.Alg1Machines(topo, in.ids) }
			cfg.Check = func(f check.Final) error {
				if want := core.PredictedAlg1Pulses(n, idMax); f.Sent != want {
					return fmt.Errorf("sent %d, want %d", f.Sent, want)
				}
				return nil
			}
		case "alg2":
			cfg.NewMachines = func() ([]node.PulseMachine, error) { return core.Alg2Machines(topo, in.ids) }
			cfg.Check = func(f check.Final) error {
				if want := core.PredictedAlg2Pulses(n, idMax); f.Sent != want {
					return fmt.Errorf("sent %d, want %d", f.Sent, want)
				}
				if !uniqueMax || len(f.Leaders) != 1 || f.Leaders[0] != maxIdx {
					return fmt.Errorf("leaders %v", f.Leaders)
				}
				return nil
			}
		case "alg3":
			cfg.NewMachines = func() ([]node.PulseMachine, error) {
				return core.Alg3Machines(n, in.ids, core.SchemeSuccessor)
			}
			cfg.Check = func(f check.Final) error {
				if want := core.PredictedAlg3Pulses(n, idMax, core.SchemeSuccessor); f.Sent != want {
					return fmt.Errorf("sent %d, want %d", f.Sent, want)
				}
				if len(f.Leaders) != 1 || f.Leaders[0] != maxIdx {
					return fmt.Errorf("leaders %v", f.Leaders)
				}
				return nil
			}
		}
		rep, err := check.Exhaustive(cfg)
		if err != nil {
			return nil, fmt.Errorf("E9 %s ids=%v: %w", in.alg, in.ids, err)
		}
		t.AddRow(in.alg, fmt.Sprint(in.ids), ports, rep.StatesVisited, rep.TerminalStates,
			rep.MaxDepth, "yes")
	}
	return []*stats.Table{t}, nil
}
