package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"coleader/internal/check"
	"coleader/internal/core"
	"coleader/internal/fault"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/stats"
	"coleader/internal/xrand"
)

// E14 measures stabilization under the seeded fault plane (internal/fault).
//
// E14a is the guaranteed-recovery regime: output-mode state corruption of
// the stabilizing algorithms (1 and 3) within the first ID_max/2 handler
// invocations. Both algorithms recompute their output from the pulse
// counters on every delivery and the counters are untouched, so every
// tested budget heals completely: the run re-quiesces with the unique
// max-ID leader and the exact clean pulse count.
//
// E14b is the taxonomy: one budgeted fault of each class against the
// stabilizing Algorithm 1 and the terminating Algorithm 2 on n=6. The
// stabilizing algorithm degrades predictably (loss still re-quiesces,
// an extra pulse — duplication or injection — circulates forever, a crash
// strands pulses); the terminating algorithm's Theorem 1 guarantees break
// under every conservation-violating class, exhibiting post-termination
// deliveries, stalls, or lost termination.
//
// Cells run on the sweep worker pool with per-cell split seeds and are
// reduced in cell order, so both tables are identical at any worker count.
func E14(seed int64) ([]*stats.Table, error) {
	heal, err := e14Heal(seed)
	if err != nil {
		return nil, err
	}
	tax, err := e14Taxonomy(seed)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{heal, tax}, nil
}

// e14Machines builds a fresh instance of the named algorithm.
func e14Machines(algo string, n int, ids []uint64, rng *rand.Rand) (ring.Topology, []node.PulseMachine, uint64, error) {
	idMax := ring.MaxID(ids)
	switch algo {
	case "alg1":
		topo, err := ring.Oriented(n)
		if err != nil {
			return ring.Topology{}, nil, 0, err
		}
		ms, err := core.Alg1Machines(topo, ids)
		return topo, ms, core.PredictedAlg1Pulses(n, idMax), err
	case "alg2":
		topo, err := ring.Oriented(n)
		if err != nil {
			return ring.Topology{}, nil, 0, err
		}
		ms, err := core.Alg2Machines(topo, ids)
		return topo, ms, core.PredictedAlg2Pulses(n, idMax), err
	case "alg3":
		topo, err := ring.RandomNonOriented(n, rng)
		if err != nil {
			return ring.Topology{}, nil, 0, err
		}
		ms, err := core.Alg3Machines(n, ids, core.SchemeSuccessor)
		return topo, ms, core.PredictedAlg3Pulses(n, idMax, core.SchemeSuccessor), err
	}
	return ring.Topology{}, nil, 0, fmt.Errorf("e14: unknown algorithm %q", algo)
}

func e14Heal(seed int64) (*stats.Table, error) {
	t := stats.NewTable(
		"E14a — guaranteed recovery: early output corruption of the stabilizing algorithms heals completely",
		"algorithm", "n", "ID_max", "scheduler", "budget", "fired", "re-quiesced", "leader=max", "pulses=clean")
	type cell struct {
		algo      string
		n, budget int
		schedName string
	}
	var cells []cell
	for _, algo := range []string{"alg1", "alg3"} {
		for _, n := range []int{4, 8, 16} {
			for _, budget := range []int{1, 2, 4} {
				for _, schedName := range []string{"canonical", "random"} {
					cells = append(cells, cell{algo, n, budget, schedName})
				}
			}
		}
	}
	type row struct {
		idMax, sent, clean uint64
		fired              int
		quiet, leaderOK    bool
		err                error
	}
	rows := make([]row, len(cells))
	parDo(len(cells), func(i int) {
		c := cells[i]
		rng := rand.New(rand.NewSource(xrand.Split(seed, 0xE14A, uint64(i))))
		ids := ring.PermutedIDs(c.n, rng)
		idMax := ring.MaxID(ids)
		maxIdx, _ := ring.MaxIndex(ids)
		topo, ms, clean, err := e14Machines(c.algo, c.n, ids, rng)
		if err != nil {
			rows[i].err = err
			return
		}
		plane, err := fault.New(xrand.Split(seed, 0xE14A, uint64(i), 1), fault.Config{
			Nodes:   c.n,
			Classes: fault.NewSet(fault.Corrupt),
			Budget:  c.budget,
			Horizon: idMax / 2,
			Mode:    fault.PerturbOutput,
		})
		if err != nil {
			rows[i].err = err
			return
		}
		s, err := sim.New(topo, ms, sim.Stock(seed)[c.schedName],
			sim.WithFaultPlane[pulse.Pulse](plane))
		if err != nil {
			rows[i].err = err
			return
		}
		res, err := s.Run(4*clean + 1024)
		if err != nil {
			rows[i].err = fmt.Errorf("E14a %s n=%d budget=%d %s: %w",
				c.algo, c.n, c.budget, c.schedName, err)
			return
		}
		rows[i] = row{
			idMax: idMax, sent: res.Sent, clean: clean,
			fired:    plane.Fired(),
			quiet:    res.Quiescent,
			leaderOK: res.Leader == maxIdx,
		}
	})
	for i, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		c := cells[i]
		t.AddRow(c.algo, c.n, r.idMax, c.schedName, c.budget,
			boolMark(r.fired == c.budget), boolMark(r.quiet),
			boolMark(r.leaderOK), boolMark(r.sent == r.clean))
	}
	return t, nil
}

// e14Outcome classifies a faulted run into the taxonomy's outcome labels.
func e14Outcome(res sim.Result, err error, wantLeader int, clean uint64, mustTerminate bool) string {
	switch {
	case err == nil:
		if res.Leader == wantLeader && res.Sent == clean && (!mustTerminate || res.AllTerminated) {
			return "clean quiescence"
		}
		return "quiesced, guarantees degraded"
	case errors.Is(err, sim.ErrStepLimit):
		return "never re-quiesces"
	case errors.Is(err, sim.ErrStalled):
		return "stalled"
	case errors.Is(err, sim.ErrPostTerminationSend):
		return "post-termination delivery"
	case errors.Is(err, sim.ErrTerminatedNonEmpty):
		return "terminated with queued pulses"
	case errors.Is(err, sim.ErrMachineFault):
		return "machine fault"
	default:
		return "error"
	}
}

func e14Taxonomy(seed int64) (*stats.Table, error) {
	t := stats.NewTable(
		"E14b — fault taxonomy (n=6, budget 1, canonical): stabilizing Alg1 vs terminating Alg2",
		"class", "algorithm", "outcome", "quiescent", "all terminated", "leaders", "expected", "as expected")
	const n = 6

	// Per-class trigger horizons: crashes fire at the victim's Init so the
	// stall argument is exact; the rest fire within the first two events.
	horizon := map[fault.Class]uint64{
		fault.Loss: 2, fault.Dup: 2, fault.Spurious: 2,
		fault.Crash: 1, fault.Restart: 2, fault.Corrupt: 2,
	}
	// Provable expectations. Alg1 (stabilizing): loss still re-quiesces
	// (strictly fewer pulses than clean, hence "degraded"); any extra
	// pulse circulates forever; a crash strands at least one pulse; a
	// restart adds one absorption and one pulse, so it either re-quiesces
	// off the clean count or circulates; early output corruption heals
	// exactly. Alg2 (terminating): every conservation-violating class
	// breaks a Theorem 1 guarantee — anything but clean quiescence. For
	// alg2 restart/corrupt the outcome depends on the victim's phase, so
	// those rows are observational (expected "—").
	type expectation struct {
		label   string
		allowed []string // nil: observational row
	}
	expect := map[string]map[fault.Class]expectation{
		"alg1": {
			fault.Loss:     {"re-quiesces, degraded", []string{"quiesced, guarantees degraded"}},
			fault.Dup:      {"circulates forever", []string{"never re-quiesces"}},
			fault.Spurious: {"circulates forever", []string{"never re-quiesces"}},
			fault.Crash:    {"strands pulses", []string{"stalled"}},
			fault.Restart:  {"re-quiesces or circulates", []string{"quiesced, guarantees degraded", "never re-quiesces"}},
			fault.Corrupt:  {"heals exactly", []string{"clean quiescence"}},
		},
		"alg2": {
			fault.Loss:     {"guarantee broken", nil},
			fault.Dup:      {"guarantee broken", nil},
			fault.Spurious: {"guarantee broken", nil},
			fault.Crash:    {"guarantee broken", nil},
			fault.Restart:  {"—", nil},
			fault.Corrupt:  {"—", nil},
		},
	}
	// alg2 rows marked "guarantee broken" assert any non-clean outcome.
	broken := func(outcome string) bool { return outcome != "clean quiescence" }

	type cell struct {
		class fault.Class
		algo  string
	}
	var cells []cell
	for _, class := range []fault.Class{
		fault.Loss, fault.Dup, fault.Spurious, fault.Crash, fault.Restart, fault.Corrupt,
	} {
		for _, algo := range []string{"alg1", "alg2"} {
			cells = append(cells, cell{class, algo})
		}
	}
	type row struct {
		outcome        string
		quiet, allTerm bool
		leaders        int
		fired          bool
		err            error
	}
	rows := make([]row, len(cells))
	parDo(len(cells), func(i int) {
		c := cells[i]
		// Retry deterministic attempt seeds until the injection actually
		// fires (a channel fault can target a channel the algorithm never
		// uses, in which case the run is fault-free and discarded).
		for attempt := uint64(0); attempt < 64; attempt++ {
			rng := rand.New(rand.NewSource(xrand.Split(seed, 0xE14B, uint64(i))))
			ids := ring.PermutedIDs(n, rng)
			maxIdx, _ := ring.MaxIndex(ids)
			topo, ms, clean, err := e14Machines(c.algo, n, ids, rng)
			if err != nil {
				rows[i].err = err
				return
			}
			plane, err := fault.New(xrand.Split(seed, 0xE14B, uint64(i), attempt), fault.Config{
				Nodes:   n,
				Classes: fault.NewSet(c.class),
				Budget:  1,
				Horizon: horizon[c.class],
				Mode:    fault.PerturbOutput,
			})
			if err != nil {
				rows[i].err = err
				return
			}
			s, err := sim.New(topo, ms, sim.Stock(seed)["canonical"],
				sim.WithFaultPlane[pulse.Pulse](plane))
			if err != nil {
				rows[i].err = err
				return
			}
			res, runErr := s.Run(4*clean + 1024)
			if plane.Fired() == 0 {
				if runErr != nil {
					rows[i].err = fmt.Errorf("E14b %v/%s: fault-free attempt failed: %w",
						c.class, c.algo, runErr)
					return
				}
				continue
			}
			rows[i] = row{
				outcome: e14Outcome(res, runErr, maxIdx, clean, c.algo == "alg2"),
				quiet:   res.Quiescent,
				allTerm: res.AllTerminated,
				leaders: len(res.Leaders),
				fired:   true,
			}
			return
		}
		rows[i].err = fmt.Errorf("E14b %v/%s: no attempt fired an injection", c.class, c.algo)
	})
	sawAlg2Violation := false
	for i, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		c := cells[i]
		exp := expect[c.algo][c.class]
		asExpected := "n/a"
		switch {
		case exp.allowed != nil:
			ok := false
			for _, a := range exp.allowed {
				if r.outcome == a {
					ok = true
				}
			}
			asExpected = boolMark(ok)
		case exp.label == "guarantee broken":
			asExpected = boolMark(broken(r.outcome))
		}
		if c.algo == "alg2" && broken(r.outcome) {
			sawAlg2Violation = true
		}
		t.AddRow(c.class.String(), c.algo, r.outcome,
			lowMark(r.quiet), lowMark(r.allTerm), r.leaders, exp.label, asExpected)
	}
	if !sawAlg2Violation {
		return nil, errors.New("E14b: no fault class broke the terminating algorithm's guarantees")
	}
	return t, nil
}

// lowMark renders an observational (non-assertion) boolean cell.
func lowMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// E17 turns the fault plane exhaustive: instead of sampling one injection
// schedule (E14), check.ExhaustiveFaults branches over every schedule AND
// every injection position of each fault class on small rings, with one
// injection of budget per path.
//
// The census splits along a conservation line. Classes that cannot
// increase the pulse population — loss, crash, corrupt — leave the
// fault-aware state space FINITE: the explorer enumerates it completely,
// so every reachable consequence of every possible injection is verified.
// Classes that add a pulse — dup, spurious, restart — make the space
// infinite (an extra pulse means n+1 pulses chasing n absorption slots,
// so some relay counter grows without bound; an amnesiac restart re-sends
// its init pulse and re-relays pulses it already counted, which is the
// same surplus). Those cells are certified up to a state bound and must
// abort with check.ErrStateBudget; a cell that completed OR a finite cell
// that diverged would falsify the dichotomy and fails the experiment.
//
// The second table is the zero-budget differential that anchors the whole
// fault engine to the paper: an inactive plan must reproduce the faultless
// explorer's report exactly, i.e. the machinery added for injection
// changes nothing about the Theorem 1 / Corollary 13 verification it
// wraps.
func E17(int64) ([]*stats.Table, error) {
	census, err := e17Census()
	if err != nil {
		return nil, err
	}
	diff, err := e17ZeroBudget()
	if err != nil {
		return nil, err
	}
	return []*stats.Table{census, diff}, nil
}

// e17Bound caps divergent cells. Well past the depth where the surplus
// pulse's circulation becomes periodic, and small enough that the whole
// census is cheap.
const e17Bound = 50000

// e17IDs are the fixed rings of the census, one per size: permuted,
// distinct, with ID_max = n so state counts stay comparable across cells.
var e17IDs = map[int][]uint64{
	3: {2, 3, 1},
	4: {2, 4, 1, 3},
	5: {3, 5, 1, 4, 2},
}

// e17Config builds the checker configuration for one oriented instance,
// with the algorithm's paper guarantee as the terminal check (Corollary 13
// for Alg1, Theorem 1 plus the unique max-ID leader for Alg2).
func e17Config(algo string, ids []uint64) (check.Config, error) {
	n := len(ids)
	topo, err := ring.Oriented(n)
	if err != nil {
		return check.Config{}, err
	}
	idMax := ring.MaxID(ids)
	maxIdx, uniqueMax := ring.MaxIndex(ids)
	cfg := check.Config{Topo: topo}
	switch algo {
	case "alg1":
		cfg.NewMachines = func() ([]node.PulseMachine, error) { return core.Alg1Machines(topo, ids) }
		cfg.Check = func(f check.Final) error {
			if want := core.PredictedAlg1Pulses(n, idMax); f.Sent != want {
				return fmt.Errorf("sent %d, want %d", f.Sent, want)
			}
			return nil
		}
	case "alg2":
		cfg.NewMachines = func() ([]node.PulseMachine, error) { return core.Alg2Machines(topo, ids) }
		cfg.Check = func(f check.Final) error {
			if want := core.PredictedAlg2Pulses(n, idMax); f.Sent != want {
				return fmt.Errorf("sent %d, want %d", f.Sent, want)
			}
			if !uniqueMax || len(f.Leaders) != 1 || f.Leaders[0] != maxIdx {
				return fmt.Errorf("leaders %v", f.Leaders)
			}
			return nil
		}
	default:
		return check.Config{}, fmt.Errorf("e17: unknown algorithm %q", algo)
	}
	return cfg, nil
}

func e17Census() (*stats.Table, error) {
	t := stats.NewTable(
		"E17a — exhaustive fault verification (budget 1, every schedule x every injection position)",
		"class", "algorithm", "n", "states", "injections", "viol. edges",
		"clean", "degraded", "stalled", "space")
	divergent := map[fault.Class]bool{
		fault.Dup: true, fault.Spurious: true, fault.Restart: true,
	}
	type cell struct {
		class fault.Class
		algo  string
		n     int
	}
	var cells []cell
	for _, class := range []fault.Class{
		fault.Loss, fault.Crash, fault.Corrupt, fault.Dup, fault.Spurious, fault.Restart,
	} {
		for _, algo := range []string{"alg1", "alg2"} {
			for _, n := range []int{3, 4, 5} {
				cells = append(cells, cell{class, algo, n})
			}
		}
	}
	type row struct {
		rep     check.FaultReport
		verdict string
		err     error
	}
	rows := make([]row, len(cells))
	parDo(len(cells), func(i int) {
		c := cells[i]
		cfg, err := e17Config(c.algo, e17IDs[c.n])
		if err != nil {
			rows[i].err = err
			return
		}
		if divergent[c.class] {
			cfg.MaxStates = e17Bound
		}
		rep, err := check.ExhaustiveFaults(cfg, fault.Plan{
			Classes: fault.NewSet(c.class),
			Budget:  1,
		})
		rows[i].rep = rep
		switch {
		case divergent[c.class] && errors.Is(err, check.ErrStateBudget):
			rows[i].verdict = fmt.Sprintf("divergent — certified to %d states", e17Bound)
		case divergent[c.class]:
			rows[i].err = fmt.Errorf("E17a %v/%s n=%d: pulse-adding class did not diverge (err=%v)",
				c.class, c.algo, c.n, err)
		case err != nil:
			rows[i].err = fmt.Errorf("E17a %v/%s n=%d: %w", c.class, c.algo, c.n, err)
		case rep.InjectionEdges == 0:
			rows[i].err = fmt.Errorf("E17a %v/%s n=%d: no injection position explored",
				c.class, c.algo, c.n)
		default:
			rows[i].verdict = "finite — fully verified"
		}
	})
	for i, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		c := cells[i]
		t.AddRow(c.class.String(), c.algo, c.n, r.rep.StatesVisited,
			r.rep.InjectionEdges, r.rep.ViolationEdges, r.rep.CleanTerminals,
			r.rep.DegradedTerminals, r.rep.StalledTerminals, r.verdict)
	}
	return t, nil
}

func e17ZeroBudget() (*stats.Table, error) {
	t := stats.NewTable(
		"E17b — zero-budget differential: an inactive plan reproduces the faultless explorer exactly",
		"algorithm", "n", "states", "terminal states", "report identical", "guarantee")
	type cell struct {
		algo string
		n    int
	}
	var cells []cell
	for _, algo := range []string{"alg1", "alg2"} {
		for _, n := range []int{3, 4, 5} {
			cells = append(cells, cell{algo, n})
		}
	}
	type row struct {
		base  check.Report
		same  bool
		claim string
		err   error
	}
	rows := make([]row, len(cells))
	parDo(len(cells), func(i int) {
		c := cells[i]
		cfg, err := e17Config(c.algo, e17IDs[c.n])
		if err != nil {
			rows[i].err = err
			return
		}
		base, err := check.Exhaustive(cfg)
		if err != nil {
			rows[i].err = fmt.Errorf("E17b %s n=%d faultless: %w", c.algo, c.n, err)
			return
		}
		frep, err := check.ExhaustiveFaults(cfg, fault.Plan{})
		if err != nil {
			rows[i].err = fmt.Errorf("E17b %s n=%d zero-budget: %w", c.algo, c.n, err)
			return
		}
		rows[i].base = base
		rows[i].same = frep.Report == base &&
			frep.InjectionEdges == 0 && frep.ViolationEdges == 0 &&
			frep.CleanTerminals == 0 && frep.DegradedTerminals == 0 &&
			frep.StalledTerminals == 0
		if c.algo == "alg1" {
			rows[i].claim = "Corollary 13: n·ID_max pulses"
		} else {
			rows[i].claim = "Theorem 1: n(2·ID_max+1) pulses, max-ID leader"
		}
	})
	for i, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		if !r.same {
			return nil, fmt.Errorf("E17b %s n=%d: zero-budget report differs from faultless",
				cells[i].algo, cells[i].n)
		}
		t.AddRow(cells[i].algo, cells[i].n, r.base.StatesVisited, r.base.TerminalStates,
			boolMark(r.same), r.claim)
	}
	return t, nil
}
