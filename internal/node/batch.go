package node

import (
	"coleader/internal/pulse"
)

// Pulse-run batching contracts.
//
// A content-oblivious channel carries no information beyond its pulse
// count (Section 2 of the paper): a queue of k pulses is fully described
// by the integer k. A machine whose transition function is counter
// arithmetic can therefore consume an entire run of k same-port pulses
// in one O(1) step — add k to the receive counter, emit a counted run —
// as long as the aggregate effect is exactly what k consecutive OnMsg
// invocations would have produced. These interfaces express that
// contract; the batch-aware simulator (sim.WithBatching) drives them and
// the batched differential tests prove the equivalence run by run
// against the sequential engine.

// BatchEmitter extends the pulse emitter with counted runs: SendRun
// queues n pulses on the channel attached to port p, exactly as n
// consecutive Send calls would. Like Send, runs take effect atomically
// when the handler returns, and the emitter must not be retained beyond
// the handler invocation it was passed to.
type BatchEmitter interface {
	PulseEmitter

	// SendRun emits n pulses out of port p. n == 0 is a no-op.
	SendRun(p pulse.Port, n uint64)
}

// BatchMachine is an optional extension of a pulse machine that can
// consume runs of pulses in one transition.
//
// OnPulses(p, k, e) is invoked in place of OnMsg when k >= 1 pulses are
// queued on port p and the runtime wants to deliver a run of them. It
// returns consumed, the number of pulses actually absorbed, with
// 1 <= consumed <= k. The call must leave the machine in exactly the
// state that consumed consecutive OnMsg(p, ...) invocations would have,
// and must emit exactly the sends those invocations would have emitted.
//
// So that the runtime can assign send sequence numbers identical to the
// expanded pulse-by-pulse execution, a call that consumes more than one
// pulse must be emission-uniform: every consumed pulse emits the same
// thing — either nothing, or the same number of pulses on one single
// port (for the threshold algorithms of internal/core: exactly one
// relayed pulse, or an absorbed pulse emitting nothing). Transitions
// that cross a threshold — where one pulse behaves differently from its
// neighbors (a withheld pulse, a guard firing, termination) — must
// consume up to or exactly the non-uniform pulse and return early; the
// runtime immediately re-invokes OnPulses for the remainder, so
// splitting costs one extra transition per crossing, not per pulse.
//
// Implementations typically reduce to: compute the distance d to the
// next threshold crossing; if the run ends before it, apply the whole
// run with counter arithmetic; otherwise consume min(k, d) pulses and
// let the crossing pulse take the ordinary OnMsg path.
type BatchMachine interface {
	PulseMachine

	// OnPulses consumes between 1 and k of the pulses queued on port p.
	OnPulses(p pulse.Port, k uint64, e BatchEmitter) uint64
}

// FlatBatchMachine is the struct-of-arrays twin of BatchMachine: a
// FlatPulseMachine bank whose slots can consume pulse runs. The
// OnPulses contract is BatchMachine's, applied to slot k.
type FlatBatchMachine interface {
	FlatPulseMachine

	// OnPulses consumes between 1 and n of the pulses queued on port p
	// of slot k.
	OnPulses(k int, p pulse.Port, n uint64, e BatchEmitter) uint64
}
