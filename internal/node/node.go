// Package node defines the event-driven node abstraction shared by every
// runtime in this repository: the deterministic discrete-event simulator
// (internal/sim), the goroutine-per-node live runtime (internal/live), and
// the exhaustive schedule explorer (internal/check).
//
// A Machine is a state machine in the sense of Section 2 of the paper: it
// acts once at start-up (Init) and afterwards only in reaction to message
// arrivals (OnMsg). The message type is generic so that the same runtimes
// drive both content-oblivious algorithms (M = pulse.Pulse) and the
// content-carrying baselines of internal/baseline.
package node

import (
	"coleader/internal/pulse"
)

// Emitter is handed to a Machine during Init and OnMsg; Send queues one
// message on the channel attached to the given port. Sends take effect
// atomically when the handler returns. An Emitter must not be retained
// beyond the handler invocation it was passed to.
type Emitter[M any] interface {
	Send(p pulse.Port, m M)
}

// Machine is an event-driven ring node.
//
// The runtime contract is:
//   - Init is invoked exactly once, before any OnMsg.
//   - OnMsg(p, m, e) is invoked when the runtime delivers a message from the
//     incoming queue of port p; it is never invoked while Ready(p) is false.
//   - Ready(p) reports whether the machine is currently willing to consume
//     from port p. This models the polling style of the paper's pseudocode
//     (e.g. Algorithm 2 does not call recvCCW until rho_cw >= ID): messages
//     queued on a non-ready port stay in the channel. A terminated machine
//     must report Ready false on both ports.
//   - Status may be called at any time between handler invocations.
type Machine[M any] interface {
	Init(e Emitter[M])
	OnMsg(p pulse.Port, m M, e Emitter[M])
	Ready(p pulse.Port) bool
	Status() Status
}

// PulseMachine is a Machine restricted to contentless pulses: the type of
// every content-oblivious algorithm in internal/core.
type PulseMachine = Machine[pulse.Pulse]

// PulseEmitter is the Emitter given to a PulseMachine.
type PulseEmitter = Emitter[pulse.Pulse]

// Cloneable is implemented by machines that support exhaustive schedule
// exploration (internal/check): the explorer snapshots and restores machine
// state while branching over delivery orders.
type Cloneable[M any] interface {
	Machine[M]

	// CloneMachine returns a deep copy of the machine.
	CloneMachine() Machine[M]

	// StateKey returns a canonical encoding of the machine's entire state,
	// used to memoize visited global states. Two machines with equal
	// StateKeys must behave identically forever after.
	StateKey() string
}

// KeyAppender is an optional extension of Cloneable: machines that can
// append a compact fixed-width binary encoding of their state to a
// caller-provided buffer. The encoding must carry exactly the information
// of StateKey (two machines share a binary key iff they share a StateKey)
// but avoids the per-state formatting and string assembly cost, which
// dominates memoized exhaustive exploration. Encodings should begin with
// a short type tag so keys of different machine types never collide.
//
// Field parity: every struct field Init or OnMsg writes (directly or
// through helpers) must influence the key — an omitted field merges
// distinct global states and the explorer silently under-explores. The
// oblint state-key check proves this per field, for AppendStateKey and
// for the StateKey/CloneMachine fallback alike; error-typed fields are
// exempt (see Undoable).
type KeyAppender interface {
	AppendStateKey(dst []byte) []byte
}

// Undoable is an optional extension of Cloneable used by the undo-based
// exhaustive explorer (internal/check): instead of deep-copying the whole
// machine slice per branch, the explorer snapshots the one machine a step
// mutates into a shared arena and restores it when backtracking.
//
// SnapshotTo appends a compact encoding of the machine's MUTABLE state to
// buf and returns the extended buffer; construction-time constants (IDs,
// port labels, schemes) need not be included. Restore sets the machine's
// state from the prefix of snap written by the matching SnapshotTo call;
// snap may carry trailing bytes beyond that prefix, which Restore must
// ignore. Snapshots are only taken from — and restored onto — machines
// whose Status().Err is nil (the explorer aborts on the first fault), so
// implementations need not encode error values; Restore clears any.
//
// Field parity: every struct field Init or OnMsg writes (directly or
// through helpers) must be encoded by SnapshotTo AND written back by
// Restore, and Restore must not decode fields SnapshotTo never encodes.
// The oblint state-snapshot, state-restore, and state-skew checks prove
// all three per field, module-wide; error-typed fields are exempt per
// the contract above.
type Undoable interface {
	SnapshotTo(buf []byte) []byte
	Restore(snap []byte)
}

// AppendKey64 appends v to dst in little-endian order: the fixed-width
// building block of binary state keys.
func AppendKey64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendKey32 appends v to dst in little-endian order.
func AppendKey32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Key64 reads the little-endian uint64 at the start of b: the inverse of
// AppendKey64, used by Undoable.Restore implementations.
func Key64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// State is a node's leader-election output.
type State uint8

// Election outputs. StateUndecided is the zero value: a node that has not
// yet set a state.
const (
	StateUndecided State = iota
	StateLeader
	StateNonLeader
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case StateUndecided:
		return "Undecided"
	case StateLeader:
		return "Leader"
	case StateNonLeader:
		return "Non-Leader"
	default:
		return "State?"
	}
}

// Status is the externally observable condition of a Machine.
type Status struct {
	// State is the current election output (possibly still subject to
	// revision for stabilizing algorithms).
	State State

	// Terminated reports that the node has explicitly halted. Once set it
	// must never clear, and Ready must be false on both ports.
	Terminated bool

	// HasOrientation reports that the node has labeled its ports with ring
	// directions (Algorithm 3). When set, CWPort is the port the node
	// believes leads to its clockwise neighbor.
	HasOrientation bool
	CWPort         pulse.Port

	// Err records a protocol fault detected by the machine itself, such as
	// a pulse arriving on a channel the algorithm proves silent. Runtimes
	// abort the run when they observe a non-nil Err.
	Err error
}
