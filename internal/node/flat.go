package node

import (
	"coleader/internal/pulse"
)

// FlatMachine is a bank of n machines whose state lives in per-field
// slices (struct-of-arrays) instead of one heap object per node. It is
// the opt-in layout for very large rings: a 10⁷-node bank is a handful
// of flat slices with no per-node pointers, so it costs the garbage
// collector nothing to scan and keeps each field family contiguous in
// memory for the simulator's delivery loop.
//
// Slot k of a bank obeys exactly the Machine contract — Init once,
// OnMsg only while Ready(p), Status between handlers — and a bank must
// behave indistinguishably from len(bank) independent Machine values
// (the flat differential tests assert this trace-for-trace against the
// pointer implementations). Slots must not share mutable state: a
// runtime may run handlers of different slots from different goroutines
// as long as no slot is handled concurrently with itself.
type FlatMachine[M any] interface {
	// Len returns the number of node slots in the bank.
	Len() int
	// Init runs slot k's start-up action; see Machine.Init.
	Init(k int, e Emitter[M])
	// OnMsg delivers m on port p to slot k; see Machine.OnMsg.
	OnMsg(k int, p pulse.Port, m M, e Emitter[M])
	// Ready reports whether slot k consumes from port p; see Machine.Ready.
	Ready(k int, p pulse.Port) bool
	// Status reports slot k's observable condition; see Machine.Status.
	Status(k int) Status
}

// FlatPulseMachine is a FlatMachine restricted to contentless pulses:
// the type of the struct-of-arrays banks in internal/core.
type FlatPulseMachine = FlatMachine[pulse.Pulse]

// Slot adapts one slot of a FlatMachine to the Machine interface, so
// observers and tests can introspect flat-backed simulations through
// the same accessor they use for pointer machines.
type Slot[M any] struct {
	Bank FlatMachine[M]
	K    int
}

// Init implements Machine.
func (s Slot[M]) Init(e Emitter[M]) { s.Bank.Init(s.K, e) }

// OnMsg implements Machine.
func (s Slot[M]) OnMsg(p pulse.Port, m M, e Emitter[M]) { s.Bank.OnMsg(s.K, p, m, e) }

// Ready implements Machine.
func (s Slot[M]) Ready(p pulse.Port) bool { return s.Bank.Ready(s.K, p) }

// Status implements Machine.
func (s Slot[M]) Status() Status { return s.Bank.Status(s.K) }
