package node_test

import (
	"testing"

	"coleader/internal/node"
	"coleader/internal/pulse"
)

func TestStateStrings(t *testing.T) {
	cases := map[node.State]string{
		node.StateUndecided: "Undecided",
		node.StateLeader:    "Leader",
		node.StateNonLeader: "Non-Leader",
		node.State(9):       "State?",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

// TestZeroStatus pins the zero value's meaning: an undecided, live,
// unoriented, healthy node — so machines need no constructor boilerplate
// to report a sensible initial status.
func TestZeroStatus(t *testing.T) {
	var st node.Status
	if st.State != node.StateUndecided || st.Terminated || st.HasOrientation || st.Err != nil {
		t.Errorf("zero Status = %+v", st)
	}
	if st.CWPort != pulse.Port0 {
		t.Errorf("zero CWPort = %v", st.CWPort)
	}
}
