package trace_test

import (
	"strings"
	"testing"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/trace"
)

// These tests prove the invariant checkers can actually FIRE: machines
// that deliberately break each clause of Lemma 6 (and the Algorithm 2
// additions) must be reported with the right lemma named. Without these,
// "the checker never complained" would be indistinguishable from "the
// checker checks nothing".

// leaky is an Alg1-lookalike that violates Lemma 6 in a configurable way.
// It embeds a real Alg1 so the checker's type assertion succeeds, then
// corrupts the counters via an extra emission.
type leaky struct {
	*core.Alg1
	extraAt int // after this many receptions, send one extra pulse
	got     int
}

func (l *leaky) OnMsg(p pulse.Port, m pulse.Pulse, e node.PulseEmitter) {
	l.Alg1.OnMsg(p, m, e)
	l.got++
	if l.got == l.extraAt {
		// An extra clockwise send the real algorithm never performs —
		// but emitted OUTSIDE Alg1's own accounting, so sigma (as the
		// machine reports it) and reality diverge... the network now
		// carries more pulses than Lemma 11 allows at quiescence.
		e.Send(pulse.Port1, m)
	}
}

// TestAlg1CheckerCatchesExtraPulse: an injected pulse eventually violates
// Corollary 14 / Lemma 11 (the network can no longer quiesce at ID_max).
func TestAlg1CheckerCatchesExtraPulse(t *testing.T) {
	ids := []uint64{2, 4, 3}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]node.PulseMachine, len(ids))
	for k := range ms {
		a, err := core.NewAlg1(ids[k], topo.CWPort(k))
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			ms[k] = &leaky{Alg1: a, extraAt: 1}
		} else {
			ms[k] = a
		}
	}
	s, err := sim.New(topo, ms, sim.Canonical{},
		sim.WithObserver[pulse.Pulse](trace.Alg1Invariants{IDMax: 4}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(10000)
	if err == nil {
		t.Fatal("checker accepted an injected extra pulse")
	}
	if !strings.Contains(err.Error(), "Corollary 14") && !strings.Contains(err.Error(), "Lemma") {
		t.Errorf("violation not attributed to a lemma: %v", err)
	}
}

// swallower drops every pulse instead of relaying: violates Lemma 6.1
// (sigma stays 1 while rho grows below the ID).
type swallower struct{ *core.Alg1 }

func (s *swallower) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {
	// Consume silently; the embedded Alg1's counters never move, but the
	// sim delivered a pulse to us, so the network's books diverge from
	// Lemma 6 at OTHER nodes (their sent pulses vanish).
}

// TestAlg1CheckerCatchesSwallower: with a black-hole node, the network
// stalls or quiesces early; the quiescence clause of Lemma 11 must fire
// (nodes stuck below ID_max).
func TestAlg1CheckerCatchesSwallower(t *testing.T) {
	ids := []uint64{2, 4, 3}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]node.PulseMachine, len(ids))
	for k := range ms {
		a, err := core.NewAlg1(ids[k], topo.CWPort(k))
		if err != nil {
			t.Fatal(err)
		}
		if k == 1 {
			ms[k] = &swallower{Alg1: a}
		} else {
			ms[k] = a
		}
	}
	s, err := sim.New(topo, ms, sim.Canonical{},
		sim.WithObserver[pulse.Pulse](trace.Alg1Invariants{IDMax: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10000); err == nil {
		t.Fatal("checker accepted a pulse-swallowing node")
	}
}

// TestAlg2CheckerRejectsWrongMachineType mirrors the Alg1 variant.
func TestAlg2CheckerRejectsWrongMachineType(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg1Machines(topo, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sim.Canonical{},
		sim.WithObserver[pulse.Pulse](trace.Alg2Invariants{IDMax: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100); err == nil {
		t.Error("Alg2 checker accepted Alg1 machines")
	}
}

// unguardedWrap adapts Alg2Unguarded to look like rho/sigma counters the
// Alg2 checker can read... it cannot (different type), so instead this
// test uses the real Alg2 checker with the DirBiased schedule on the
// correct algorithm and asserts the lag clause never fires — then flips to
// the ablated machine via the check package elsewhere. Here we directly
// validate the checker clause bodies with a synthetic machine is
// impractical (type assertion), so the remaining branches are covered by
// the leaky/swallower injections above.
func TestAlg2InvariantsOnCanonicalSelfRing(t *testing.T) {
	topo, err := ring.Oriented(1)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sim.Canonical{},
		sim.WithObserver[pulse.Pulse](trace.Alg2Invariants{IDMax: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
}
