// Package trace provides simulator observers: execution recorders, running
// statistics, and — most importantly — invariant checkers that re-verify
// the paper's lemmas after every single event of a run:
//
//   - Lemma 6:  while rho_cw < ID a node has sent exactly one pulse more
//     than it received; afterwards exactly as many.
//   - Corollary 14: rho_cw never exceeds ID_max.
//   - Lemma 11: at quiescence, every node has rho = sigma = ID_max.
//   - The corresponding per-direction invariants of Algorithm 2, including
//     the accounting of the termination pulse.
//
// Attach these with sim.WithObserver; any violation aborts the run with a
// descriptive error, so the whole test suite doubles as a machine-checked
// proofreading of the paper's analysis.
package trace

import (
	"encoding/json"
	"fmt"
	"strings"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/sim"
)

// Alg1Counters is the introspection surface the Algorithm 1 checker
// needs. core.Alg1 implements it; so does any test double or wrapper that
// embeds one, which is how the violation-injection tests exercise the
// checker's teeth.
type Alg1Counters interface {
	ID() uint64
	RhoCW() uint64
	SigCW() uint64
}

// Alg2Counters extends Alg1Counters with the counterclockwise instance and
// the termination pulse; core.Alg2 implements it.
type Alg2Counters interface {
	Alg1Counters
	RhoCCW() uint64
	SigCCW() uint64
	TerminationPulseSent() bool
	Status() node.Status
}

// Alg1Invariants checks Lemma 6 and Corollary 14 for every Algorithm 1
// machine after every event, and the Lemma 11 characterization whenever the
// network is quiescent.
type Alg1Invariants struct {
	// IDMax is the largest assigned ID; used for Corollary 14 and Lemma 11.
	IDMax uint64
}

// OnEvent implements sim.Observer.
func (ch Alg1Invariants) OnEvent(_ *sim.Event, s *sim.Sim[pulse.Pulse]) error {
	for k := 0; k < s.Topology().N(); k++ {
		a, ok := s.Machine(k).(Alg1Counters)
		if !ok {
			return fmt.Errorf("trace: node %d does not expose Algorithm 1 counters", k)
		}
		rho, sig, id := a.RhoCW(), a.SigCW(), a.ID()
		if sig == 0 && rho == 0 {
			continue // node not yet awake; Lemma 6 speaks of loop iterations
		}
		// Lemma 6.
		switch {
		case rho < id && sig != rho+1:
			return fmt.Errorf("trace: Lemma 6.1 violated at node %d: rho=%d < ID=%d but sigma=%d != rho+1", k, rho, id, sig)
		case rho >= id && sig != rho:
			return fmt.Errorf("trace: Lemma 6.2 violated at node %d: rho=%d >= ID=%d but sigma=%d != rho", k, rho, id, sig)
		}
		// Corollary 14.
		if rho > ch.IDMax {
			return fmt.Errorf("trace: Corollary 14 violated at node %d: rho=%d > ID_max=%d", k, rho, ch.IDMax)
		}
	}
	// Lemma 11: quiescence <=> all nodes at rho = sigma = ID_max.
	if s.Quiescent() {
		for k := 0; k < s.Topology().N(); k++ {
			a := s.Machine(k).(Alg1Counters)
			if a.RhoCW() != ch.IDMax || a.SigCW() != ch.IDMax {
				return fmt.Errorf("trace: Lemma 11 violated at node %d: quiescent but rho=%d sigma=%d, ID_max=%d",
					k, a.RhoCW(), a.SigCW(), ch.IDMax)
			}
		}
	}
	return nil
}

// Alg2Invariants checks the per-direction Lemma 6 analogues for
// Algorithm 2, the counterclockwise lag (a node that has consumed any
// counterclockwise pulse must already satisfy rho_cw >= ID), and the
// termination-pulse accounting.
type Alg2Invariants struct {
	// IDMax is the largest assigned ID.
	IDMax uint64
}

// OnEvent implements sim.Observer.
func (ch Alg2Invariants) OnEvent(_ *sim.Event, s *sim.Sim[pulse.Pulse]) error {
	for k := 0; k < s.Topology().N(); k++ {
		a, ok := s.Machine(k).(Alg2Counters)
		if !ok {
			return fmt.Errorf("trace: node %d does not expose Algorithm 2 counters", k)
		}
		id := a.ID()
		// Clockwise instance: exactly Lemma 6.
		rho, sig := a.RhoCW(), a.SigCW()
		if sig == 0 && rho == 0 {
			continue // node not yet awake
		}
		switch {
		case rho < id && sig != rho+1:
			return fmt.Errorf("trace: CW Lemma 6.1 violated at node %d: rho=%d ID=%d sigma=%d", k, rho, id, sig)
		case rho >= id && sig != rho:
			return fmt.Errorf("trace: CW Lemma 6.2 violated at node %d: rho=%d ID=%d sigma=%d", k, rho, id, sig)
		case rho > ch.IDMax:
			return fmt.Errorf("trace: CW Corollary 14 violated at node %d: rho=%d > %d", k, rho, ch.IDMax)
		}
		// Counterclockwise instance, with the termination pulse folded in.
		rho, sig = a.RhoCCW(), a.SigCCW()
		term := a.Status().Terminated
		switch {
		case sig == 0 && rho != 0:
			return fmt.Errorf("trace: node %d consumed CCW pulses before starting its CCW instance", k)
		case sig == 0:
			// Not started; nothing more to check.
		case a.TerminationPulseSent() && !term && sig != rho+1:
			return fmt.Errorf("trace: termination accounting violated at node %d: rho_ccw=%d sigma_ccw=%d", k, rho, sig)
		case a.TerminationPulseSent() && term && sig != rho:
			return fmt.Errorf("trace: terminated leader accounting violated at node %d: rho_ccw=%d sigma_ccw=%d", k, rho, sig)
		case !a.TerminationPulseSent() && rho < id && sig != rho+1:
			return fmt.Errorf("trace: CCW Lemma 6.1 violated at node %d: rho=%d ID=%d sigma=%d", k, rho, id, sig)
		case !a.TerminationPulseSent() && rho >= id && sig != rho && sig != rho+1:
			// sig == rho+1 is legal transiently only for a node that has
			// forwarded the termination pulse... which terminates it, so
			// after termination sig == rho must hold again.
			return fmt.Errorf("trace: CCW Lemma 6.2 violated at node %d: rho=%d ID=%d sigma=%d", k, rho, id, sig)
		}
		// Lag: consuming CCW requires rho_cw >= ID (the line-9 guard).
		if a.RhoCCW() > 0 && a.RhoCW() < id {
			return fmt.Errorf("trace: lag violated at node %d: rho_ccw=%d with rho_cw=%d < ID=%d",
				k, a.RhoCCW(), a.RhoCW(), id)
		}
	}
	return nil
}

// Recorder accumulates every event of a run for postmortem inspection.
type Recorder struct {
	Events []sim.Event
}

// OnEvent implements sim.Observer.
func (r *Recorder) OnEvent(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
	cp := *e
	cp.Sends = append([]sim.SendRec(nil), e.Sends...)
	r.Events = append(r.Events, cp)
	return nil
}

// String renders the recorded execution, one line per event.
func (r *Recorder) String() string {
	var b strings.Builder
	for _, e := range r.Events {
		switch e.Kind {
		case sim.EvInit:
			fmt.Fprintf(&b, "%4d init    node %d", e.Step, e.Node)
		case sim.EvDeliver:
			fmt.Fprintf(&b, "%4d deliver node %d <- %s pulse on %s", e.Step, e.Node, e.Dir, e.Port)
		}
		for _, snd := range e.Sends {
			fmt.Fprintf(&b, " | send %s", snd.Dir)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the recorded execution as a machine-readable document: an
// envelope with the event count and the raw events (kinds are numeric as
// in sim: 1 = init, 2 = deliver; directions: 1 = CW, 2 = CCW). Consumed by
// external tooling via `ringsim -trace -json`.
func (r *Recorder) JSON() ([]byte, error) {
	doc := struct {
		Events int         `json:"events"`
		Log    []sim.Event `json:"log"`
	}{Events: len(r.Events), Log: r.Events}
	return json.MarshalIndent(doc, "", "  ")
}

// Stats aggregates running counters useful to the experiment harness.
type Stats struct {
	Deliveries   uint64
	Inits        uint64
	MaxQueueLen  int
	PerNodeRecvd []uint64
}

// NewStats returns a Stats observer for an n-node ring.
func NewStats(n int) *Stats {
	return &Stats{PerNodeRecvd: make([]uint64, n)}
}

// OnEvent implements sim.Observer.
func (st *Stats) OnEvent(e *sim.Event, s *sim.Sim[pulse.Pulse]) error {
	switch e.Kind {
	case sim.EvInit:
		st.Inits++
	case sim.EvDeliver:
		st.Deliveries++
		st.PerNodeRecvd[e.Node]++
	}
	for c := 0; c < 2*s.Topology().N(); c++ {
		if l := s.QueueLen(c); l > st.MaxQueueLen {
			st.MaxQueueLen = l
		}
	}
	return nil
}
