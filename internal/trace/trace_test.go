package trace_test

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/trace"
)

// TestAlg1InvariantsHoldEverywhere runs Algorithm 1 under every stock
// scheduler with the Lemma 6 / Corollary 14 / Lemma 11 checker attached:
// the run completing without error is the assertion.
func TestAlg1InvariantsHoldEverywhere(t *testing.T) {
	ids := []uint64{4, 9, 2, 7, 5}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	for name, sched := range sim.Stock(3) {
		sched := sched
		t.Run(name, func(t *testing.T) {
			ms, err := core.Alg1Machines(topo, ids)
			if err != nil {
				t.Fatal(err)
			}
			s, err := sim.New(topo, ms, sched,
				sim.WithObserver[pulse.Pulse](trace.Alg1Invariants{IDMax: 9}))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(10000); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAlg1InvariantsDuplicateIDs checks Lemma 6 survival under the
// non-unique assignments of Lemma 16.
func TestAlg1InvariantsDuplicateIDs(t *testing.T) {
	ids, err := ring.DuplicateIDs(6, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg1Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sim.NewRandom(17),
		sim.WithObserver[pulse.Pulse](trace.Alg1Invariants{IDMax: 7}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
}

// TestAlg2InvariantsHoldEverywhere attaches the Algorithm 2 checker under
// every stock scheduler and random rings.
func TestAlg2InvariantsHoldEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		ids := ring.PermutedIDs(n, rng)
		topo, err := ring.Oriented(n)
		if err != nil {
			t.Fatal(err)
		}
		for name, sched := range sim.Stock(int64(trial)) {
			ms, err := core.Alg2Machines(topo, ids)
			if err != nil {
				t.Fatal(err)
			}
			s, err := sim.New(topo, ms, sched,
				sim.WithObserver[pulse.Pulse](trace.Alg2Invariants{IDMax: ring.MaxID(ids)}))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(100000); err != nil {
				t.Fatalf("trial %d scheduler %s ids %v: %v", trial, name, ids, err)
			}
		}
	}
}

// TestAlg1CheckerValidatesAlg2CWInstance: Algorithm 2 literally contains
// Algorithm 1 as its clockwise instance (Section 3.2), so the Algorithm 1
// checker applies to Algorithm 2 machines and must hold throughout.
func TestAlg1CheckerValidatesAlg2CWInstance(t *testing.T) {
	topo, err := ring.Oriented(3)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, []uint64{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sim.NewRandom(2),
		sim.WithObserver[pulse.Pulse](trace.Alg1Invariants{IDMax: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1000); err != nil {
		t.Errorf("Alg1 invariants failed on Alg2's CW instance: %v", err)
	}
}

// TestInvariantCheckerRejectsForeignMachine: machines exposing no counters
// fail loudly instead of being silently skipped.
func TestInvariantCheckerRejectsForeignMachine(t *testing.T) {
	topo, err := ring.Oriented(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, []node.PulseMachine{blankMachine{}}, sim.Canonical{},
		sim.WithObserver[pulse.Pulse](trace.Alg1Invariants{IDMax: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100); err == nil {
		t.Error("checker accepted a counterless machine")
	}
	s2, err := sim.New(topo, []node.PulseMachine{blankMachine{}}, sim.Canonical{},
		sim.WithObserver[pulse.Pulse](trace.Alg2Invariants{IDMax: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(100); err == nil {
		t.Error("Alg2 checker accepted a counterless machine")
	}
}

type blankMachine struct{}

func (blankMachine) Init(node.PulseEmitter)                           {}
func (blankMachine) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {}
func (blankMachine) Ready(pulse.Port) bool                            { return true }
func (blankMachine) Status() node.Status                              { return node.Status{} }

// TestRecorder checks that the recorder captures a faithful, renderable
// event log.
func TestRecorder(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	s, err := sim.New(topo, ms, sim.Canonical{}, sim.WithObserver[pulse.Pulse](rec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := int(res.Steps)
	if len(rec.Events) != wantEvents {
		t.Errorf("recorded %d events, want %d", len(rec.Events), wantEvents)
	}
	out := rec.String()
	if !strings.Contains(out, "init") || !strings.Contains(out, "deliver") {
		t.Errorf("rendered trace missing inits/deliveries:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != wantEvents {
		t.Errorf("rendered %d lines, want %d", got, wantEvents)
	}
}

// TestStats checks delivery counting and queue high-water marks.
func TestStats(t *testing.T) {
	ids := []uint64{3, 5, 1}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg1Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.NewStats(len(ids))
	s, err := sim.New(topo, ms, sim.Newest{}, sim.WithObserver[pulse.Pulse](st))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deliveries != res.Delivered {
		t.Errorf("stats deliveries %d != result %d", st.Deliveries, res.Delivered)
	}
	if st.Inits != 3 {
		t.Errorf("inits = %d, want 3", st.Inits)
	}
	var sum uint64
	for _, c := range st.PerNodeRecvd {
		sum += c
	}
	if sum != res.Delivered {
		t.Errorf("per-node receive sum %d != %d", sum, res.Delivered)
	}
	if st.MaxQueueLen < 1 {
		t.Error("max queue length never reached 1")
	}
}

// TestRecorderJSON: the machine-readable export round-trips through
// encoding/json with the right event count.
func TestRecorderJSON(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	s, err := sim.New(topo, ms, sim.Canonical{}, sim.WithObserver[pulse.Pulse](rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	doc, err := rec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Events int `json:"events"`
		Log    []struct {
			Kind int `json:"Kind"`
			Node int `json:"Node"`
		} `json:"log"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if parsed.Events != len(rec.Events) || len(parsed.Log) != parsed.Events {
		t.Errorf("envelope events=%d log=%d recorder=%d",
			parsed.Events, len(parsed.Log), len(rec.Events))
	}
}
