// Package differential cross-validates the repository's runtimes: the same
// algorithm instance runs on the deterministic simulator under several
// schedulers AND on the goroutine-per-node live runtime, and the outcomes
// are compared field by field. The theorems make the comparison sharp:
// leader identity and total pulse counts are schedule-invariant, so any
// disagreement between runtimes is a bug in a runtime, not an artifact of
// asynchrony.
package differential

import (
	"fmt"

	"coleader/internal/live"
	"coleader/internal/node"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// Outcome is the runtime-independent projection of a run that the
// theorems pin down exactly.
type Outcome struct {
	Leader        int
	Leaders       []int
	Sent          uint64
	SentCW        uint64
	SentCCW       uint64
	Quiescent     bool
	AllTerminated bool
}

// String renders the outcome compactly for mismatch reports.
func (o Outcome) String() string {
	return fmt.Sprintf("leader=%d leaders=%v sent=%d (cw=%d ccw=%d) quiescent=%t terminated=%t",
		o.Leader, o.Leaders, o.Sent, o.SentCW, o.SentCCW, o.Quiescent, o.AllTerminated)
}

// Equal reports field-wise equality.
func (o Outcome) Equal(p Outcome) bool {
	if o.Leader != p.Leader || o.Sent != p.Sent || o.SentCW != p.SentCW ||
		o.SentCCW != p.SentCCW || o.Quiescent != p.Quiescent ||
		o.AllTerminated != p.AllTerminated || len(o.Leaders) != len(p.Leaders) {
		return false
	}
	for i := range o.Leaders {
		if o.Leaders[i] != p.Leaders[i] {
			return false
		}
	}
	return true
}

// Config describes one differential comparison.
type Config struct {
	// Topo is the ring under test.
	Topo ring.Topology
	// NewMachines returns fresh machines; it is called once per runtime,
	// so machines must be deterministic given their construction.
	NewMachines func() ([]node.PulseMachine, error)
	// Limit bounds simulator deliveries.
	Limit uint64
	// Seeds are the scheduler seeds to sweep on the simulator.
	Seeds []int64
	// LiveRuns is how many times to execute on the goroutine runtime
	// (each run gets fresh machines and a fresh Go-scheduler interleaving).
	LiveRuns int
}

// Run executes the instance on every runtime and returns the common
// outcome, or an error naming the first disagreement.
func Run(cfg Config) (Outcome, error) {
	if cfg.NewMachines == nil {
		return Outcome{}, fmt.Errorf("differential: nil NewMachines")
	}
	if cfg.Limit == 0 {
		cfg.Limit = 1 << 24
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1, 2, 3}
	}
	var ref Outcome
	have := false

	note := func(label string, o Outcome) error {
		if !have {
			ref, have = o, true
			return nil
		}
		if !o.Equal(ref) {
			return fmt.Errorf("differential: %s disagrees:\n  ref: %s\n  got: %s", label, ref, o)
		}
		return nil
	}

	// Simulator, sweeping schedulers and seeds.
	for _, seed := range cfg.Seeds {
		for name, sched := range sim.Stock(seed) {
			ms, err := cfg.NewMachines()
			if err != nil {
				return Outcome{}, err
			}
			s, err := sim.New(cfg.Topo, ms, sched)
			if err != nil {
				return Outcome{}, err
			}
			res, err := s.Run(cfg.Limit)
			if err != nil {
				return Outcome{}, fmt.Errorf("differential: sim/%s seed %d: %w", name, seed, err)
			}
			o := Outcome{
				Leader: res.Leader, Leaders: res.Leaders,
				Sent: res.Sent, SentCW: res.SentCW, SentCCW: res.SentCCW,
				Quiescent: res.Quiescent, AllTerminated: res.AllTerminated,
			}
			if err := note(fmt.Sprintf("sim/%s seed %d", name, seed), o); err != nil {
				return ref, err
			}
		}
	}

	// Live runtime.
	for i := 0; i < cfg.LiveRuns; i++ {
		ms, err := cfg.NewMachines()
		if err != nil {
			return Outcome{}, err
		}
		res, err := live.Run(cfg.Topo, ms)
		if err != nil {
			return Outcome{}, fmt.Errorf("differential: live run %d: %w", i, err)
		}
		o := Outcome{
			Leader: res.Leader, Leaders: res.Leaders,
			Sent: res.Sent, SentCW: res.SentCW, SentCCW: res.SentCCW,
			Quiescent: res.Quiescent, AllTerminated: res.AllTerminated,
		}
		if err := note(fmt.Sprintf("live run %d", i), o); err != nil {
			return ref, err
		}
	}
	return ref, nil
}
