package differential_test

import (
	"math/rand"
	"strings"
	"testing"

	"coleader/internal/core"
	"coleader/internal/differential"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// TestAlg2AcrossRuntimes: Theorem 1's outcome is identical across the
// deterministic simulator (all schedulers, several seeds) and the
// goroutine runtime, for a spread of rings.
func TestAlg2AcrossRuntimes(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 6; trial++ {
		n := 1 + rng.Intn(8)
		ids := ring.PermutedIDs(n, rng)
		topo, err := ring.Oriented(n)
		if err != nil {
			t.Fatal(err)
		}
		out, err := differential.Run(differential.Config{
			Topo:        topo,
			NewMachines: func() ([]node.PulseMachine, error) { return core.Alg2Machines(topo, ids) },
			Seeds:       []int64{1, 7},
			LiveRuns:    3,
		})
		if err != nil {
			t.Fatalf("trial %d ids %v: %v", trial, ids, err)
		}
		wantLeader, _ := ring.MaxIndex(ids)
		if out.Leader != wantLeader {
			t.Errorf("trial %d: leader %d, want %d", trial, out.Leader, wantLeader)
		}
		if out.Sent != core.PredictedAlg2Pulses(n, ring.MaxID(ids)) {
			t.Errorf("trial %d: sent %d", trial, out.Sent)
		}
		if !out.AllTerminated || !out.Quiescent {
			t.Errorf("trial %d: %s", trial, out)
		}
	}
}

// TestAlg3AcrossRuntimes: the non-oriented algorithm agrees across
// runtimes too (it stabilizes instead of terminating).
func TestAlg3AcrossRuntimes(t *testing.T) {
	ids := []uint64{4, 8, 1, 6}
	topo, err := ring.NonOriented([]bool{true, false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := differential.Run(differential.Config{
		Topo: topo,
		NewMachines: func() ([]node.PulseMachine, error) {
			return core.Alg3Machines(4, ids, core.SchemeSuccessor)
		},
		Seeds:    []int64{3},
		LiveRuns: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Leader != 1 || out.AllTerminated {
		t.Errorf("outcome: %s", out)
	}
}

// TestDisagreementDetected: a machine whose behavior depends on the
// schedule (it counts its own deliveries and inflates traffic on one
// port order) must be flagged as a runtime disagreement.
func TestDisagreementDetected(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = differential.Run(differential.Config{
		Topo: topo,
		NewMachines: func() ([]node.PulseMachine, error) {
			return []node.PulseMachine{&scheduleSensitive{}, &scheduleSensitive{}}, nil
		},
		Seeds: []int64{1, 2, 3, 4},
	})
	if err == nil {
		t.Fatal("schedule-dependent totals not flagged")
	}
	if !strings.Contains(err.Error(), "disagrees") {
		t.Errorf("unexpected error: %v", err)
	}
}

// scheduleSensitive sends an extra pulse iff its FIRST arrival comes on
// Port1 (the counterclockwise traffic winning the race) — a deliberately
// schedule-dependent total: cw-first and ccw-first schedulers resolve the
// race differently.
type scheduleSensitive struct {
	got   []pulse.Port
	extra bool
}

func (sc *scheduleSensitive) Init(e node.PulseEmitter) {
	e.Send(pulse.Port0, pulse.Pulse{})
	e.Send(pulse.Port1, pulse.Pulse{})
}

func (sc *scheduleSensitive) OnMsg(p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	sc.got = append(sc.got, p)
	if len(sc.got) == 1 && p == pulse.Port1 && !sc.extra {
		sc.extra = true
		e.Send(pulse.Port0, pulse.Pulse{})
	}
}

func (sc *scheduleSensitive) Ready(pulse.Port) bool { return true }
func (sc *scheduleSensitive) Status() node.Status   { return node.Status{} }

// TestConfigValidation covers defaults and validation.
func TestConfigValidation(t *testing.T) {
	if _, err := differential.Run(differential.Config{}); err == nil {
		t.Error("nil NewMachines accepted")
	}
}

// TestOutcomeEqual covers the comparison itself.
func TestOutcomeEqual(t *testing.T) {
	a := differential.Outcome{Leader: 1, Leaders: []int{1}, Sent: 10, Quiescent: true}
	if !a.Equal(a) {
		t.Error("self-inequality")
	}
	b := a
	b.Sent = 11
	if a.Equal(b) {
		t.Error("differing Sent compared equal")
	}
	c := a
	c.Leaders = []int{2}
	if a.Equal(c) {
		t.Error("differing Leaders compared equal")
	}
	if !strings.Contains(a.String(), "leader=1") {
		t.Error("String() malformed")
	}
}
