package core

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Alg2 is Algorithm 2: quiescently terminating leader election on oriented
// rings (Theorem 1), with message complexity exactly n(2·ID_max + 1).
//
// It interleaves two instances of Algorithm 1 — one clockwise, one
// counterclockwise — with the counterclockwise instance forced to lag: a
// node neither starts it nor consumes counterclockwise arrivals until
// rho_cw >= ID (the pseudocode's line-9 guard, realized here through the
// Ready method, which leaves early counterclockwise pulses parked in the
// channel exactly as unpolled queues park them in the paper). The lag makes
// rho_cw = ID = rho_ccw an event unique to the maximum-ID node, which then
// launches a single extra counterclockwise pulse; every node terminates
// upon its first observation of rho_ccw > rho_cw, forwarding the extra
// pulse once (non-leaders) or absorbing it (the leader, which terminates
// last).
type Alg2 struct {
	id     uint64
	cwPort pulse.Port

	rhoCW, sigCW   uint64
	rhoCCW, sigCCW uint64

	state      node.State
	termSent   bool // the unique-event pulse of line 15 has been sent
	terminated bool
	err        error
}

// NewAlg2 returns an Algorithm 2 machine for a node with the given positive
// ID whose clockwise neighbor is reached through cwPort.
func NewAlg2(id uint64, cwPort pulse.Port) (*Alg2, error) {
	if id == 0 {
		return nil, fmt.Errorf("core: ID must be positive")
	}
	if !cwPort.Valid() {
		return nil, fmt.Errorf("core: invalid clockwise port %d", cwPort)
	}
	return &Alg2{id: id, cwPort: cwPort}, nil
}

// ID returns the node's identifier.
func (a *Alg2) ID() uint64 { return a.id }

// RhoCW returns the clockwise pulses received.
func (a *Alg2) RhoCW() uint64 { return a.rhoCW }

// SigCW returns the clockwise pulses sent.
func (a *Alg2) SigCW() uint64 { return a.sigCW }

// RhoCCW returns the counterclockwise pulses received.
func (a *Alg2) RhoCCW() uint64 { return a.rhoCCW }

// SigCCW returns the counterclockwise pulses sent.
func (a *Alg2) SigCCW() uint64 { return a.sigCCW }

// TerminationPulseSent reports whether this node initiated the termination
// pulse of line 15 (true only ever at the elected leader).
func (a *Alg2) TerminationPulseSent() bool { return a.termSent }

func (a *Alg2) sendCW(e node.PulseEmitter) {
	a.sigCW++
	e.Send(a.cwPort, pulse.Pulse{})
}

func (a *Alg2) sendCCW(e node.PulseEmitter) {
	a.sigCCW++
	e.Send(a.cwPort.Opposite(), pulse.Pulse{})
}

// Init implements node.Machine: line 1, sendCW().
func (a *Alg2) Init(e node.PulseEmitter) {
	a.sendCW(e)
	a.after(e)
}

// OnMsg implements node.Machine. Clockwise pulses arrive on the
// counterclockwise port and run lines 3-8; counterclockwise pulses arrive
// on the clockwise port and run lines 11-13 (or, for the leader awaiting
// its termination pulse, lines 16-17: consume without forwarding).
func (a *Alg2) OnMsg(p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	if a.terminated {
		a.err = fmt.Errorf("core: Alg2 pulse delivered after termination")
		return
	}
	if p == a.cwPort.Opposite() { // clockwise pulse: Algorithm 1 over CW
		a.rhoCW++
		if a.rhoCW == a.id {
			a.state = node.StateLeader
		} else {
			a.state = node.StateNonLeader
			a.sendCW(e)
		}
	} else { // counterclockwise pulse
		if a.rhoCW < a.id {
			// Ready(ccw) was false; the runtime must not have delivered.
			a.err = fmt.Errorf("core: Alg2 counterclockwise pulse before rho_cw >= ID")
			return
		}
		a.rhoCCW++
		switch {
		case a.termSent:
			// Line 16-17: the leader's termination pulse returning; consume
			// without forwarding.
		case a.rhoCCW != a.id:
			a.sendCCW(e)
		}
	}
	a.after(e)
}

// after runs the guard-triggered parts of the loop body that the pseudocode
// re-evaluates every iteration (lines 9-10, 14-15, and the exit test of
// line 18).
func (a *Alg2) after(e node.PulseEmitter) {
	// Line 9-10: start the counterclockwise instance once rho_cw >= ID.
	if a.rhoCW >= a.id && a.sigCCW == 0 {
		a.sendCCW(e)
	}
	// Line 14-15: the event unique to the leader launches the termination
	// pulse.
	if !a.termSent && a.rhoCW == a.id && a.rhoCCW == a.id {
		a.termSent = true
		a.sendCCW(e)
	}
	// Line 18: first observation of rho_ccw > rho_cw ends the algorithm.
	if a.rhoCCW > a.rhoCW {
		a.terminated = true
	}
}

// Ready implements node.Machine. The counterclockwise queue is not polled
// until rho_cw >= ID (line 9's guard); a terminated node polls nothing.
func (a *Alg2) Ready(p pulse.Port) bool {
	if a.terminated {
		return false
	}
	if p == a.cwPort { // counterclockwise arrivals
		return a.rhoCW >= a.id
	}
	return true
}

// Status implements node.Machine.
func (a *Alg2) Status() node.Status {
	return node.Status{State: a.state, Terminated: a.terminated, Err: a.err}
}

// CloneMachine implements node.Cloneable.
func (a *Alg2) CloneMachine() node.PulseMachine {
	cp := *a
	return &cp
}

// StateKey implements node.Cloneable.
func (a *Alg2) StateKey() string {
	return fmt.Sprintf("a2|%d|%d|%d|%d|%d|%d|%d|%t|%t",
		a.id, a.cwPort, a.rhoCW, a.sigCW, a.rhoCCW, a.sigCCW, a.state, a.termSent, a.terminated)
}

// AppendStateKey implements node.KeyAppender: the binary form of StateKey.
func (a *Alg2) AppendStateKey(dst []byte) []byte {
	flags := byte(a.state)
	if a.termSent {
		flags |= 1 << 4
	}
	if a.terminated {
		flags |= 1 << 5
	}
	dst = append(dst, 'B', '2', byte(a.cwPort), flags)
	dst = node.AppendKey64(dst, a.id)
	dst = node.AppendKey64(dst, a.rhoCW)
	dst = node.AppendKey64(dst, a.sigCW)
	dst = node.AppendKey64(dst, a.rhoCCW)
	return node.AppendKey64(dst, a.sigCCW)
}

// SnapshotTo implements node.Undoable: the four counters plus a flags byte.
func (a *Alg2) SnapshotTo(buf []byte) []byte {
	flags := byte(a.state)
	if a.termSent {
		flags |= 1 << 4
	}
	if a.terminated {
		flags |= 1 << 5
	}
	buf = node.AppendKey64(buf, a.rhoCW)
	buf = node.AppendKey64(buf, a.sigCW)
	buf = node.AppendKey64(buf, a.rhoCCW)
	buf = node.AppendKey64(buf, a.sigCCW)
	return append(buf, flags)
}

// Restore implements node.Undoable.
func (a *Alg2) Restore(snap []byte) {
	a.rhoCW = node.Key64(snap)
	a.sigCW = node.Key64(snap[8:])
	a.rhoCCW = node.Key64(snap[16:])
	a.sigCCW = node.Key64(snap[24:])
	flags := snap[32]
	a.state = node.State(flags & 0xf)
	a.termSent = flags&(1<<4) != 0
	a.terminated = flags&(1<<5) != 0
	a.err = nil
}
