package core

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
)

// IDScheme selects how Algorithm 3 derives its two virtual IDs from the
// node's real ID.
type IDScheme uint8

// Virtual-ID schemes for Algorithm 3.
const (
	// SchemeDoubled is the original assignment of Algorithm 3 line 2:
	// ID^(i) = 2·ID - 1 + i. All 2n virtual IDs are distinct; the total
	// message complexity is n(4·ID_max - 1) (Proposition 15).
	SchemeDoubled IDScheme = iota + 1

	// SchemeSuccessor is the improved assignment of Theorem 2:
	// ID^(1) = ID + 1 and ID^(0) = ID. Virtual IDs may repeat across
	// nodes, which Lemma 16 shows is harmless as long as the overall
	// maxima of the two directions differ; the complexity drops to
	// n(2·ID_max + 1).
	SchemeSuccessor
)

// String names the scheme.
func (s IDScheme) String() string {
	switch s {
	case SchemeDoubled:
		return "doubled"
	case SchemeSuccessor:
		return "successor"
	default:
		return "scheme?"
	}
}

// virtualIDs returns [ID^(0), ID^(1)] for the scheme.
func (s IDScheme) virtualIDs(id uint64) ([2]uint64, error) {
	switch s {
	case SchemeDoubled:
		return [2]uint64{2*id - 1, 2 * id}, nil
	case SchemeSuccessor:
		return [2]uint64{id, id + 1}, nil
	default:
		return [2]uint64{}, fmt.Errorf("core: unknown ID scheme %d", s)
	}
}

// Alg3 is Algorithm 3: quiescently stabilizing leader election and ring
// orientation on non-oriented rings (Theorem 2 / Proposition 15).
//
// The node runs two parallel copies of Algorithm 1, one per direction of
// the ring, without knowing which is which: a pulse received on one port is
// forwarded out the opposite port unless the receiving counter equals the
// virtual ID governing that forwarding direction. Because the two virtual
// IDs of the maximum-ID node differ, the directions stabilize at different
// pulse totals, which breaks symmetry: the unique node whose Port0 count
// equals its larger virtual ID while its Port1 count stays below it is the
// leader, and comparing the two counts orients the ring consistently at
// every node.
//
// The algorithm reaches quiescence but never terminates.
type Alg3 struct {
	id     uint64
	scheme IDScheme
	vid    [2]uint64 // vid[i] governs forwarding out of port i
	rho    [2]uint64 // pulses received per port
	sig    [2]uint64 // pulses sent per port

	state    node.State
	oriented bool
	cwPort   pulse.Port
}

// NewAlg3 returns an Algorithm 3 machine for a node with the given positive
// ID under the given virtual-ID scheme.
func NewAlg3(id uint64, scheme IDScheme) (*Alg3, error) {
	if id == 0 {
		return nil, fmt.Errorf("core: ID must be positive")
	}
	vid, err := scheme.virtualIDs(id)
	if err != nil {
		return nil, err
	}
	return &Alg3{id: id, scheme: scheme, vid: vid}, nil
}

// ID returns the node's (real) identifier.
func (a *Alg3) ID() uint64 { return a.id }

// VirtualID returns ID^(i).
func (a *Alg3) VirtualID(i int) uint64 { return a.vid[i] }

// Rho returns the pulses received on port p.
func (a *Alg3) Rho(p pulse.Port) uint64 { return a.rho[p] }

// Sig returns the pulses sent on port p.
func (a *Alg3) Sig(p pulse.Port) uint64 { return a.sig[p] }

// Scheme returns the virtual-ID scheme in force.
func (a *Alg3) Scheme() IDScheme { return a.scheme }

func (a *Alg3) send(p pulse.Port, e node.PulseEmitter) {
	a.sig[p]++
	e.Send(p, pulse.Pulse{})
}

// Init implements node.Machine: lines 1-3, one pulse out of each port.
func (a *Alg3) Init(e node.PulseEmitter) {
	a.send(pulse.Port0, e)
	a.send(pulse.Port1, e)
}

// OnMsg implements node.Machine: lines 5-16. A pulse received on port p is
// forwarded out the opposite port unless rho_p has just reached the virtual
// ID governing that opposite port; then the output block recomputes the
// node's election state and port labeling.
func (a *Alg3) OnMsg(p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	a.rho[p]++
	if a.rho[p] != a.vid[p.Opposite()] {
		a.send(p.Opposite(), e)
	}
	a.recomputeOutput()
}

// recomputeOutput is lines 8-16 of Algorithm 3, run after every pulse.
func (a *Alg3) recomputeOutput() {
	r0, r1 := a.rho[pulse.Port0], a.rho[pulse.Port1]
	if max64(r0, r1) < a.vid[1] {
		return
	}
	if r0 == a.vid[1] && r1 < a.vid[1] {
		a.state = node.StateLeader
	} else {
		a.state = node.StateNonLeader
	}
	a.oriented = true
	if r0 > r1 {
		// Port0 receives the busier direction, which is clockwise: a
		// clockwise pulse arrives at the port leading counterclockwise,
		// so Port0 is the counterclockwise port and Port1 the clockwise.
		a.cwPort = pulse.Port1
	} else {
		a.cwPort = pulse.Port0
	}
}

// Ready implements node.Machine: Algorithm 3 never stops polling.
func (a *Alg3) Ready(pulse.Port) bool { return true }

// Status implements node.Machine.
func (a *Alg3) Status() node.Status {
	return node.Status{
		State:          a.state,
		HasOrientation: a.oriented,
		CWPort:         a.cwPort,
	}
}

// CloneMachine implements node.Cloneable.
func (a *Alg3) CloneMachine() node.PulseMachine {
	cp := *a
	return &cp
}

// StateKey implements node.Cloneable.
func (a *Alg3) StateKey() string {
	return fmt.Sprintf("a3|%d|%d|%d|%d|%d|%d|%d|%t|%d",
		a.id, a.scheme, a.rho[0], a.rho[1], a.sig[0], a.sig[1], a.state, a.oriented, a.cwPort)
}

// AppendStateKey implements node.KeyAppender: the binary form of StateKey.
func (a *Alg3) AppendStateKey(dst []byte) []byte {
	flags := byte(a.state)
	if a.oriented {
		flags |= 1 << 4
	}
	dst = append(dst, 'B', '3', byte(a.scheme), byte(a.cwPort), flags)
	dst = node.AppendKey64(dst, a.id)
	dst = node.AppendKey64(dst, a.rho[0])
	dst = node.AppendKey64(dst, a.rho[1])
	dst = node.AppendKey64(dst, a.sig[0])
	return node.AppendKey64(dst, a.sig[1])
}

// SnapshotTo implements node.Undoable: the per-port counters and the
// recomputed output block. The id/vid fields are constants for plain Alg3;
// Alg3Resample (which mutates them) snapshots them itself.
func (a *Alg3) SnapshotTo(buf []byte) []byte {
	flags := byte(a.state)
	if a.oriented {
		flags |= 1 << 4
	}
	flags |= byte(a.cwPort) << 5
	buf = node.AppendKey64(buf, a.rho[0])
	buf = node.AppendKey64(buf, a.rho[1])
	buf = node.AppendKey64(buf, a.sig[0])
	buf = node.AppendKey64(buf, a.sig[1])
	return append(buf, flags)
}

// Restore implements node.Undoable.
func (a *Alg3) Restore(snap []byte) {
	a.rho[0] = node.Key64(snap)
	a.rho[1] = node.Key64(snap[8:])
	a.sig[0] = node.Key64(snap[16:])
	a.sig[1] = node.Key64(snap[24:])
	flags := snap[32]
	a.state = node.State(flags & 0xf)
	a.oriented = flags&(1<<4) != 0
	a.cwPort = pulse.Port(flags >> 5)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
