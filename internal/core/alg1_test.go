package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// limitFor returns a generous step budget for a run expected to take
// `pulses` deliveries.
func limitFor(pulses uint64) uint64 { return 4*pulses + 64 }

// runAlg1 executes Algorithm 1 on an oriented ring with the given IDs under
// the given scheduler and returns the result.
func runAlg1(t *testing.T, ids []uint64, sched sim.Scheduler) sim.Result {
	t.Helper()
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatalf("Oriented(%d): %v", len(ids), err)
	}
	ms, err := core.Alg1Machines(topo, ids)
	if err != nil {
		t.Fatalf("Alg1Machines: %v", err)
	}
	s, err := sim.New(topo, ms, sched)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := s.Run(limitFor(core.PredictedAlg1Pulses(len(ids), ring.MaxID(ids))))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestAlg1ElectsMaxID(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]uint64{
		{1},
		{5},
		{1, 2},
		{2, 1},
		{3, 1, 2},
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},
		{7, 3, 9, 1, 4},
		ring.ConsecutiveIDs(16),
		ring.PermutedIDs(24, rng),
	}
	for _, ids := range cases {
		ids := ids
		t.Run(fmt.Sprintf("ids=%v", ids), func(t *testing.T) {
			res := runAlg1(t, ids, sim.Canonical{})
			wantLeader, _ := ring.MaxIndex(ids)
			if !res.Quiescent {
				t.Error("network did not reach quiescence")
			}
			if res.Leader != wantLeader {
				t.Errorf("leader = %d, want %d (leaders %v)", res.Leader, wantLeader, res.Leaders)
			}
			want := core.PredictedAlg1Pulses(len(ids), ring.MaxID(ids))
			if res.Sent != want {
				t.Errorf("pulses sent = %d, want exactly %d", res.Sent, want)
			}
			if res.SentCCW != 0 {
				t.Errorf("Algorithm 1 sent %d counterclockwise pulses, want 0", res.SentCCW)
			}
		})
	}
}

func TestAlg1AllSchedulers(t *testing.T) {
	ids := []uint64{4, 9, 2, 7, 5, 1}
	want := core.PredictedAlg1Pulses(len(ids), 9)
	wantLeader, _ := ring.MaxIndex(ids)
	for name, sched := range sim.Stock(7) {
		sched := sched
		t.Run(name, func(t *testing.T) {
			res := runAlg1(t, ids, sched)
			if res.Leader != wantLeader {
				t.Errorf("leader = %d, want %d", res.Leader, wantLeader)
			}
			if res.Sent != want {
				t.Errorf("pulses = %d, want %d", res.Sent, want)
			}
			if !res.Quiescent {
				t.Error("not quiescent")
			}
		})
	}
}

// TestAlg1CountersAtQuiescence checks the Corollary 13 characterization:
// every node has sent and received exactly ID_max pulses.
func TestAlg1CountersAtQuiescence(t *testing.T) {
	ids := []uint64{3, 8, 5, 2}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg1Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sim.NewRandom(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(limitFor(32 * 8)); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < len(ids); k++ {
		a := s.Machine(k).(*core.Alg1)
		if a.RhoCW() != 8 || a.SigCW() != 8 {
			t.Errorf("node %d: rho=%d sig=%d, want both 8 (ID_max)", k, a.RhoCW(), a.SigCW())
		}
	}
}

// TestAlg1DuplicateIDs checks Lemma 16: with non-unique IDs (including a
// duplicated maximum) the network still quiesces with every node at ID_max
// pulses, and exactly the maximum-ID nodes end in the Leader state.
func TestAlg1DuplicateIDs(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		max    uint64
		dupMax int
	}{
		{"two-max-of-4", 4, 6, 2},
		{"three-max-of-6", 6, 5, 3},
		{"all-same", 5, 4, 5},
		{"adjacent-max", 2, 3, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ids, err := ring.DuplicateIDs(tc.n, tc.max, tc.dupMax)
			if err != nil {
				t.Fatalf("DuplicateIDs: %v", err)
			}
			if tc.dupMax == tc.n {
				for i := range ids {
					ids[i] = tc.max
				}
			}
			res := runAlg1(t, ids, sim.NewRandom(11))
			if !res.Quiescent {
				t.Error("not quiescent")
			}
			want := core.PredictedAlg1Pulses(tc.n, tc.max)
			if res.Sent != want {
				t.Errorf("pulses = %d, want %d", res.Sent, want)
			}
			var wantLeaders []int
			for i, id := range ids {
				if id == tc.max {
					wantLeaders = append(wantLeaders, i)
				}
			}
			if fmt.Sprint(res.Leaders) != fmt.Sprint(wantLeaders) {
				t.Errorf("leaders = %v, want %v (ids=%v)", res.Leaders, wantLeaders, ids)
			}
		})
	}
}

// TestAlg1NeverTerminates checks that Algorithm 1 stabilizes without
// terminating: no node reports Terminated even at quiescence.
func TestAlg1NeverTerminates(t *testing.T) {
	res := runAlg1(t, []uint64{2, 4, 1}, sim.Canonical{})
	if res.AllTerminated {
		t.Error("Algorithm 1 must not terminate")
	}
	for k, st := range res.Statuses {
		if st.Terminated {
			t.Errorf("node %d reports Terminated", k)
		}
	}
}

// TestAlg1RejectsCCWPulse checks the machine's self-diagnosis: feeding an
// Algorithm 1 machine a pulse on its clockwise port (impossible in a closed
// run) must surface a machine fault.
func TestAlg1RejectsCCWPulse(t *testing.T) {
	a, err := core.NewAlg1(3, pulse.Port1)
	if err != nil {
		t.Fatal(err)
	}
	a.OnMsg(pulse.Port1, pulse.Pulse{}, discardEmitter{})
	if a.Status().Err == nil {
		t.Error("want a fault after a counterclockwise arrival, got none")
	}
}

type discardEmitter struct{}

func (discardEmitter) Send(pulse.Port, pulse.Pulse) {}

func TestNewAlg1Validation(t *testing.T) {
	if _, err := core.NewAlg1(0, pulse.Port0); err == nil {
		t.Error("NewAlg1(0, ...) succeeded, want error")
	}
	if _, err := core.NewAlg1(1, pulse.Port(9)); err == nil {
		t.Error("NewAlg1 with invalid port succeeded, want error")
	}
}

// TestAlg1LargeSparseIDs checks the ID_max-driven complexity with a sparse
// assignment: few nodes, huge IDs (the regime of Theorem 4).
func TestAlg1LargeSparseIDs(t *testing.T) {
	ids := []uint64{900, 123, 777}
	res := runAlg1(t, ids, sim.Canonical{})
	if got, want := res.Sent, core.PredictedAlg1Pulses(3, 900); got != want {
		t.Errorf("pulses = %d, want %d", got, want)
	}
	if res.Leader != 0 {
		t.Errorf("leader = %d, want 0", res.Leader)
	}
}

var _ node.Cloneable[pulse.Pulse] = (*core.Alg1)(nil)
