package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// runAlg2 executes Algorithm 2 on an oriented ring and returns the result.
func runAlg2(t *testing.T, ids []uint64, sched sim.Scheduler) sim.Result {
	t.Helper()
	res, err := runAlg2Err(ids, sched)
	if err != nil {
		t.Fatalf("Alg2 run (ids=%v): %v", ids, err)
	}
	return res
}

func runAlg2Err(ids []uint64, sched sim.Scheduler) (sim.Result, error) {
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		return sim.Result{}, err
	}
	ms, err := core.Alg2Machines(topo, ids)
	if err != nil {
		return sim.Result{}, err
	}
	s, err := sim.New(topo, ms, sched)
	if err != nil {
		return sim.Result{}, err
	}
	return s.Run(limitFor(core.PredictedAlg2Pulses(len(ids), ring.MaxID(ids))))
}

// checkAlg2 asserts every guarantee of Theorem 1 on a finished run.
func checkAlg2(t *testing.T, ids []uint64, res sim.Result) {
	t.Helper()
	wantLeader, _ := ring.MaxIndex(ids)
	n, idMax := len(ids), ring.MaxID(ids)

	if !res.Quiescent {
		t.Error("network did not reach quiescence")
	}
	if !res.AllTerminated {
		t.Error("not all nodes terminated")
	}
	if res.Leader != wantLeader {
		t.Errorf("leader = %d, want %d (leaders %v)", res.Leader, wantLeader, res.Leaders)
	}
	for k, st := range res.Statuses {
		want := node.StateNonLeader
		if k == wantLeader {
			want = node.StateLeader
		}
		if st.State != want {
			t.Errorf("node %d output %v, want %v", k, st.State, want)
		}
	}
	if want := core.PredictedAlg2Pulses(n, idMax); res.Sent != want {
		t.Errorf("pulses = %d, want exactly %d = n(2·ID_max+1)", res.Sent, want)
	}
	if want := uint64(n) * idMax; res.SentCW != want {
		t.Errorf("clockwise pulses = %d, want %d = n·ID_max", res.SentCW, want)
	}
	if want := uint64(n)*idMax + uint64(n); res.SentCCW != want {
		t.Errorf("counterclockwise pulses = %d, want %d = n·ID_max + n", res.SentCCW, want)
	}
	// Nodes terminate in order with the leader last (Section 1.1).
	if got := len(res.TerminationOrder); got != n {
		t.Fatalf("termination order has %d entries, want %d", got, n)
	}
	if last := res.TerminationOrder[n-1]; last != wantLeader {
		t.Errorf("last to terminate = node %d, want leader %d", last, wantLeader)
	}
}

func TestAlg2ElectsAndTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sparse, err := ring.SparseIDs(6, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]uint64{
		{1},
		{9},
		{1, 2},
		{2, 1},
		{3, 1, 2},
		{2, 3, 1},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{8, 7, 6, 5, 4, 3, 2, 1},
		ring.PermutedIDs(20, rng),
		sparse,
	}
	for _, ids := range cases {
		ids := ids
		t.Run(fmt.Sprintf("ids=%v", ids), func(t *testing.T) {
			checkAlg2(t, ids, runAlg2(t, ids, sim.Canonical{}))
		})
	}
}

func TestAlg2AllSchedulers(t *testing.T) {
	ids := []uint64{4, 11, 2, 7, 5, 1, 9}
	for name, sched := range sim.Stock(13) {
		sched := sched
		t.Run(name, func(t *testing.T) {
			checkAlg2(t, ids, runAlg2(t, ids, sched))
		})
	}
}

// TestAlg2TerminationOrderRing checks the stronger ordering property used
// for composability: after the leader sends the termination pulse, nodes
// terminate in counterclockwise ring order starting from the leader's
// counterclockwise neighbor, with the leader strictly last.
func TestAlg2TerminationOrderRing(t *testing.T) {
	ids := []uint64{3, 6, 1, 5, 2}
	res := runAlg2(t, ids, sim.Canonical{})
	leader, _ := ring.MaxIndex(ids)
	n := len(ids)
	want := make([]int, 0, n)
	for j := 1; j <= n-1; j++ {
		want = append(want, ((leader-j)%n+n)%n)
	}
	want = append(want, leader)
	if fmt.Sprint(res.TerminationOrder) != fmt.Sprint(want) {
		t.Errorf("termination order = %v, want %v", res.TerminationOrder, want)
	}
}

// TestAlg2CountersAtTermination checks that every node ends with
// rho_cw = sig_cw = ID_max and rho_ccw = sig_ccw = ID_max + 1 except that
// the leader absorbs the termination pulse it launched.
func TestAlg2CountersAtTermination(t *testing.T) {
	ids := []uint64{3, 8, 5, 2}
	const idMax = 8
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sim.NewRandom(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(limitFor(core.PredictedAlg2Pulses(4, idMax))); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < len(ids); k++ {
		a := s.Machine(k).(*core.Alg2)
		if a.RhoCW() != idMax || a.SigCW() != idMax {
			t.Errorf("node %d: rho_cw=%d sig_cw=%d, want both %d", k, a.RhoCW(), a.SigCW(), idMax)
		}
		if a.RhoCCW() != idMax+1 {
			t.Errorf("node %d: rho_ccw=%d, want %d", k, a.RhoCCW(), idMax+1)
		}
		wantSig := uint64(idMax + 1)
		if a.ID() != idMax {
			// Non-leaders forward the termination pulse: one extra send.
		} else if !a.TerminationPulseSent() {
			t.Errorf("leader did not initiate the termination pulse")
		}
		if a.SigCCW() != wantSig {
			t.Errorf("node %d: sig_ccw=%d, want %d", k, a.SigCCW(), wantSig)
		}
	}
}

// TestAlg2PropertyRandomRings is a property-based test: for random sizes,
// ID assignments, and schedules, Algorithm 2 satisfies Theorem 1 exactly.
func TestAlg2PropertyRandomRings(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		var ids []uint64
		if rng.Intn(2) == 0 {
			ids = ring.PermutedIDs(n, rng)
		} else {
			var err error
			ids, err = ring.SparseIDs(n, uint64(n*10), rng)
			if err != nil {
				return false
			}
		}
		res, err := runAlg2Err(ids, sim.NewRandom(seed+1))
		if err != nil {
			t.Logf("seed %d ids %v: %v", seed, ids, err)
			return false
		}
		wantLeader, _ := ring.MaxIndex(ids)
		return res.Quiescent && res.AllTerminated &&
			res.Leader == wantLeader &&
			res.Sent == core.PredictedAlg2Pulses(n, ring.MaxID(ids)) &&
			res.TerminationOrder[n-1] == wantLeader
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAlg2SelfRing checks the n = 1 self-ring: the sole node elects itself
// with exactly 2·ID + 1 pulses.
func TestAlg2SelfRing(t *testing.T) {
	for _, id := range []uint64{1, 2, 5, 33} {
		res := runAlg2(t, []uint64{id}, sim.Canonical{})
		if res.Leader != 0 {
			t.Errorf("id=%d: leader = %d, want 0", id, res.Leader)
		}
		if want := 2*id + 1; res.Sent != want {
			t.Errorf("id=%d: pulses = %d, want %d", id, res.Sent, want)
		}
		if !res.AllTerminated || !res.Quiescent {
			t.Errorf("id=%d: terminated=%t quiescent=%t", id, res.AllTerminated, res.Quiescent)
		}
	}
}

// TestAlg2RejectsDuplicateIDs checks that the constructor refuses the
// assignments Theorem 1 excludes.
func TestAlg2RejectsDuplicateIDs(t *testing.T) {
	topo, err := ring.Oriented(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Alg2Machines(topo, []uint64{2, 1, 2}); err == nil {
		t.Error("Alg2Machines with duplicate IDs succeeded, want error")
	}
}

// TestAlg2LagInvariant checks the mechanism Theorem 1's proof rests on:
// at no point does any node observe rho_ccw > rho_cw before the
// termination pulse exists, under the CCW-rushing adversary.
func TestAlg2LagInvariant(t *testing.T) {
	ids := []uint64{4, 9, 2, 7}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	termPulseExists := false
	checker := sim.ObserverFunc[pulse.Pulse](func(e *sim.Event, s *sim.Sim[pulse.Pulse]) error {
		for k := 0; k < len(ids); k++ {
			a := s.Machine(k).(*core.Alg2)
			if a.TerminationPulseSent() {
				termPulseExists = true
			}
			if !termPulseExists && a.RhoCCW() > a.RhoCW() {
				return fmt.Errorf("node %d: rho_ccw=%d > rho_cw=%d before termination pulse",
					k, a.RhoCCW(), a.RhoCW())
			}
		}
		return nil
	})
	s, err := sim.New(topo, ms, sim.DirBiased{Prefer: pulse.CCW}, sim.WithObserver[pulse.Pulse](checker))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(limitFor(core.PredictedAlg2Pulses(4, 9))); err != nil {
		t.Fatal(err)
	}
}

var _ node.Cloneable[pulse.Pulse] = (*core.Alg2)(nil)
