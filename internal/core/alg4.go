package core

import (
	"math"
	"math/rand"
)

// SampleBitCount draws BitCount for Algorithm 4: a geometric variable with
// parameter 1-p where p = 2^{-1/(c+2)} (line 1), i.e. Pr[BitCount >= k] =
// p^k for k >= 0. Larger c makes long IDs likelier, driving the failure
// probability of the anonymous election below n^{-Theta(c)} (Lemma 18).
func SampleBitCount(rng *rand.Rand, c float64) int {
	p := math.Exp2(-1 / (c + 2))
	count := 0
	for rng.Float64() < p {
		count++
	}
	return count
}

// SampleID runs Algorithm 4 for one node: sample BitCount geometrically,
// then a uniform BitCount-bit string (line 3). The bit string's integer
// value is shifted by +1 so the result is a positive ID as the election
// algorithms require; the shift is rank-preserving, so the w.h.p.
// uniqueness of the maximum (Lemma 18) is unaffected.
func SampleID(rng *rand.Rand, c float64) uint64 {
	bits := SampleBitCount(rng, c)
	if bits > 62 {
		// Beyond any realistic network size; cap to keep arithmetic exact.
		bits = 62
	}
	if bits == 0 {
		return 1
	}
	return 1 + uint64(rng.Int63n(1<<uint(bits)))
}

// SampleIDs runs Algorithm 4 independently at every node of an anonymous
// ring of size n, as the message-free pre-processing step of Theorem 3.
func SampleIDs(rng *rand.Rand, n int, c float64) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = SampleID(rng, c)
	}
	return ids
}

// UniqueMax reports whether the maximum of ids is attained exactly once —
// the event under which the anonymous election (Algorithm 4 followed by
// Algorithm 3) elects a unique leader.
func UniqueMax(ids []uint64) bool {
	var max uint64
	count := 0
	for _, id := range ids {
		switch {
		case id > max:
			max, count = id, 1
		case id == max:
			count++
		}
	}
	return count == 1
}
