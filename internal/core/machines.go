package core

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/ring"
)

// Constructors that build a whole ring of machines from a topology and an
// ID assignment. For the oriented-ring algorithms (1 and 2) each machine is
// told which of its ports leads clockwise — exactly the information an
// oriented ring provides; Algorithm 3's machines receive no such hint.

// Alg1Machines builds one Algorithm 1 machine per node. The topology
// supplies each node's clockwise port, so this models an oriented ring (or
// a ring given a sense of direction) regardless of the port wiring.
func Alg1Machines(t ring.Topology, ids []uint64) ([]node.PulseMachine, error) {
	if len(ids) != t.N() {
		return nil, fmt.Errorf("core: %d IDs for %d nodes", len(ids), t.N())
	}
	ms := make([]node.PulseMachine, t.N())
	for k := range ms {
		m, err := NewAlg1(ids[k], t.CWPort(k))
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", k, err)
		}
		ms[k] = m
	}
	return ms, nil
}

// Alg2Machines builds one Algorithm 2 machine per node; see Alg1Machines
// for the orientation convention. IDs must be distinct (Theorem 1 assumes
// unique IDs; use CheckDistinct upstream to diagnose violations early).
func Alg2Machines(t ring.Topology, ids []uint64) ([]node.PulseMachine, error) {
	if len(ids) != t.N() {
		return nil, fmt.Errorf("core: %d IDs for %d nodes", len(ids), t.N())
	}
	if err := ring.CheckDistinct(ids); err != nil {
		return nil, err
	}
	ms := make([]node.PulseMachine, t.N())
	for k := range ms {
		m, err := NewAlg2(ids[k], t.CWPort(k))
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", k, err)
		}
		ms[k] = m
	}
	return ms, nil
}

// Alg3Machines builds one Algorithm 3 machine per node. Machines are
// port-agnostic: the same constructor serves oriented and non-oriented
// topologies, which only differ in the simulator's wiring.
func Alg3Machines(n int, ids []uint64, scheme IDScheme) ([]node.PulseMachine, error) {
	if len(ids) != n {
		return nil, fmt.Errorf("core: %d IDs for %d nodes", len(ids), n)
	}
	ms := make([]node.PulseMachine, n)
	for k := range ms {
		m, err := NewAlg3(ids[k], scheme)
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", k, err)
		}
		ms[k] = m
	}
	return ms, nil
}

// Alg3ResampleMachines builds Proposition 19 machines, giving node k a
// private generator seeded with seed+k.
func Alg3ResampleMachines(n int, ids []uint64, scheme IDScheme, seed int64) ([]node.PulseMachine, error) {
	if len(ids) != n {
		return nil, fmt.Errorf("core: %d IDs for %d nodes", len(ids), n)
	}
	ms := make([]node.PulseMachine, n)
	for k := range ms {
		m, err := NewAlg3Resample(ids[k], scheme, seed+int64(k))
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", k, err)
		}
		ms[k] = m
	}
	return ms, nil
}
