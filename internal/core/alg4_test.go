package core_test

import (
	"math"
	"math/rand"
	"testing"

	"coleader/internal/core"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// TestSampleBitCountDistribution checks the geometric law of Algorithm 4
// line 2: Pr[BitCount >= k] = p^k with p = 2^{-1/(c+2)}.
func TestSampleBitCountDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const c, trials = 1.0, 200000
	p := math.Exp2(-1 / (c + 2))
	var atLeast [8]int
	for i := 0; i < trials; i++ {
		b := core.SampleBitCount(rng, c)
		for k := 0; k < len(atLeast); k++ {
			if b >= k {
				atLeast[k]++
			}
		}
	}
	for k := 0; k < len(atLeast); k++ {
		got := float64(atLeast[k]) / trials
		want := math.Pow(p, float64(k))
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Pr[BitCount >= %d] = %.4f, want %.4f ± 0.01", k, got, want)
		}
	}
}

// TestSampleIDPositive checks IDs are always valid inputs for the election
// algorithms.
func TestSampleIDPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		if id := core.SampleID(rng, 2); id == 0 {
			t.Fatal("sampled ID 0")
		}
	}
}

// TestSampleIDsUniqueMaxWHP checks Lemma 18 empirically: the maximum of n
// sampled IDs is unique with probability -> 1, improving with c.
func TestSampleIDsUniqueMaxWHP(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const trials = 2000
	for _, tc := range []struct {
		n       int
		c       float64
		minRate float64
	}{
		{8, 1, 0.80},
		{8, 3, 0.90},
		{64, 3, 0.90},
		{256, 5, 0.92},
	} {
		ok := 0
		for i := 0; i < trials; i++ {
			if core.UniqueMax(core.SampleIDs(rng, tc.n, tc.c)) {
				ok++
			}
		}
		rate := float64(ok) / trials
		if rate < tc.minRate {
			t.Errorf("n=%d c=%v: unique-max rate %.3f < %.3f", tc.n, tc.c, rate, tc.minRate)
		}
	}
}

// TestSampleIDsMaxMagnitude checks the other half of Lemma 18: ID_max is
// polynomial in n — large enough to break symmetry, small enough to keep
// the election complexity n^{O(1)}.
func TestSampleIDsMaxMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const c, trials = 2.0, 400
	for _, n := range []int{16, 64, 256} {
		exceeded := 0
		var sumMax float64
		// Envelope: ID_max <= n^{(c+2)^2} w.h.p. is far looser than the
		// lemma's bound; we check a practical power.
		bound := math.Pow(float64(n), (c+2)*(c+2))
		for i := 0; i < trials; i++ {
			m := float64(ring.MaxID(core.SampleIDs(rng, n, c)))
			sumMax += m
			if m > bound {
				exceeded++
			}
		}
		if rate := float64(exceeded) / trials; rate > 0.02 {
			t.Errorf("n=%d: ID_max exceeded n^{(c+2)^2} in %.1f%% of trials", n, 100*rate)
		}
		// And it must actually grow with n: the mean max should comfortably
		// exceed n^{1/2} (the lemma promises n^{Omega(c)} up to constants).
		if mean := sumMax / trials; mean < math.Sqrt(float64(n)) {
			t.Errorf("n=%d: mean ID_max %.1f suspiciously small", n, mean)
		}
	}
}

// TestAnonymousElection runs the full Theorem 3 pipeline: Algorithm 4
// samples IDs, Algorithm 3 elects and orients. Success (a unique leader at
// a unique maximum) must match the unique-max event exactly, and the
// success rate must be high.
func TestAnonymousElection(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	const n, c, trials = 12, 1.0, 40
	// The geometric sampler has a heavy tail: rare trials draw an ID_max so
	// large that simulating the Theta(n·ID_max) pulses is pointless for a
	// unit test. Electing correctly given the IDs is independent of their
	// magnitude, so skip (but count) oversized draws.
	const pulseBudget = 2000000
	wins, skipped := 0, 0
	for i := 0; i < trials; i++ {
		ids := core.SampleIDs(rng, n, c)
		if core.PredictedAlg3Pulses(n, ring.MaxID(ids), core.SchemeSuccessor) > pulseBudget {
			skipped++
			continue
		}
		topo, err := ring.RandomNonOriented(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := runAlg3(topo, ids, core.SchemeSuccessor, sim.NewRandom(int64(i)))
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		wantLeader, unique := ring.MaxIndex(ids)
		if unique {
			if res.Leader != wantLeader {
				t.Errorf("trial %d: unique max at %d but leader = %d", i, wantLeader, res.Leader)
			}
			wins++
		}
		if !res.Quiescent {
			t.Errorf("trial %d: not quiescent", i)
		}
	}
	ran := trials - skipped
	if ran < trials/2 {
		t.Fatalf("skipped %d of %d trials; pulse budget too tight", skipped, trials)
	}
	if rate := float64(wins) / float64(ran); rate < 0.80 {
		t.Errorf("anonymous election success rate %.2f < 0.80", rate)
	}
}

// TestAlg3ResampleDistinctIDs checks Proposition 19: at quiescence all
// node IDs are pairwise distinct (w.h.p.; we require a high empirical rate
// and exact pulse counts every time).
func TestAlg3ResampleDistinctIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	const trials = 60
	distinct := 0
	for i := 0; i < trials; i++ {
		n := 3 + rng.Intn(8)
		// Heavily colliding inputs: IDs from a tiny range plus a unique max.
		// Every non-maximum node's final resample draws uniformly from
		// [1, ID_max-1], so ID_max must comfortably exceed n^2 for the
		// final IDs to be distinct with decent probability (in the paper's
		// setting Algorithm 4 guarantees ID_max ~ poly(n) >> n).
		const maxID = 2000
		ids := make([]uint64, n)
		for j := range ids {
			ids[j] = 1 + uint64(rng.Intn(3))
		}
		ids[rng.Intn(n)] = maxID // unique maximum
		topo, err := ring.RandomNonOriented(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := core.Alg3ResampleMachines(n, ids, core.SchemeSuccessor, int64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(topo, ms, sim.NewRandom(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(limitFor(core.PredictedAlg3Pulses(n, maxID, core.SchemeSuccessor)))
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if !res.Quiescent {
			t.Fatalf("trial %d: not quiescent", i)
		}
		final := make([]uint64, n)
		for k := 0; k < n; k++ {
			final[k] = s.Machine(k).(*core.Alg3Resample).ID()
		}
		if ring.CheckDistinct(final) == nil {
			distinct++
		}
		// The max-ID node must never resample (its trigger cannot fire).
		maxIdx, _ := ring.MaxIndex(ids)
		if got := s.Machine(maxIdx).(*core.Alg3Resample).ID(); got != maxID {
			t.Errorf("trial %d: max node resampled to %d", i, got)
		}
	}
	if rate := float64(distinct) / trials; rate < 0.8 {
		t.Errorf("distinct-ID rate %.2f < 0.8", rate)
	}
}

// TestComplexityFormulas pins the closed forms against hand-computed
// values.
func TestComplexityFormulas(t *testing.T) {
	cases := []struct {
		got, want uint64
		name      string
	}{
		{core.PredictedAlg1Pulses(3, 5), 15, "alg1"},
		{core.PredictedAlg2Pulses(3, 5), 33, "alg2"},
		{core.PredictedAlg2Pulses(1, 1), 3, "alg2-min"},
		{core.PredictedAlg3Pulses(3, 5, core.SchemeDoubled), 57, "alg3-doubled"},
		{core.PredictedAlg3Pulses(3, 5, core.SchemeSuccessor), 33, "alg3-successor"},
		{core.PredictedAlg3Pulses(3, 5, core.IDScheme(9)), 0, "alg3-bogus"},
		{core.LowerBoundPulses(4, 64), 16, "lb-16x"},   // 4*floor(log2(16))
		{core.LowerBoundPulses(4, 4), 0, "lb-equal"},   // log2(1) = 0
		{core.LowerBoundPulses(1, 1024), 10, "lb-n=1"}, // floor(log2(1024))
		{core.LowerBoundPulses(5, 3), 0, "lb-k<n"},
		{core.LowerBoundPulses(3, 100), 15, "lb-floor"}, // 3*floor(log2(33.3))=3*5
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s: got %d, want %d", tc.name, tc.got, tc.want)
		}
	}
}
