package core

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Redundant implements the r-redundancy transformation of Section 1.1:
// when composing content-oblivious algorithms whose first stage is NOT
// quiescently terminating, but at most r stray first-stage pulses can
// reach a node after it switches, the second stage can still run in an
// "altered form where nodes send r+1 copies of each message, and process
// arriving messages in groups of r+1 messages as well" — stray singletons
// then never complete a group and are harmlessly absorbed. The paper notes
// the price: an (r+1)-fold message blow-up, which is why its Algorithm 2
// works hard to achieve quiescent termination instead.
//
// Redundant wraps any pulse machine into that altered form. On a clean
// channel (no strays) the wrapped machine is observationally equivalent to
// the original with exactly (r+1)x the pulses; tests verify both the
// equivalence and the stray-absorption property.
type Redundant struct {
	inner node.PulseMachine
	r     int
	recvd [2]int // arrivals modulo r+1, per port
}

// NewRedundant wraps inner with redundancy r >= 0 (r = 0 is the identity
// transformation).
func NewRedundant(inner node.PulseMachine, r int) (*Redundant, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: nil inner machine")
	}
	if r < 0 {
		return nil, fmt.Errorf("core: negative redundancy %d", r)
	}
	return &Redundant{inner: inner, r: r}, nil
}

// Inner returns the wrapped machine for result inspection.
func (rd *Redundant) Inner() node.PulseMachine { return rd.inner }

// StrayPulses returns how many incomplete-group pulses are currently
// absorbed (per port); after a clean run both counts are zero.
func (rd *Redundant) StrayPulses() int { return rd.recvd[0] + rd.recvd[1] }

// redundantEmitter replicates every inner send r+1 times.
type redundantEmitter struct {
	e node.PulseEmitter
	r int
}

// Send implements node.Emitter.
func (re redundantEmitter) Send(p pulse.Port, m pulse.Pulse) {
	for i := 0; i <= re.r; i++ {
		re.e.Send(p, m)
	}
}

// Init implements node.Machine.
func (rd *Redundant) Init(e node.PulseEmitter) {
	rd.inner.Init(redundantEmitter{e: e, r: rd.r})
}

// OnMsg implements node.Machine: the (r+1)-th arrival on a port completes
// a group and becomes one logical delivery.
func (rd *Redundant) OnMsg(p pulse.Port, m pulse.Pulse, e node.PulseEmitter) {
	rd.recvd[p]++
	if rd.recvd[p] <= rd.r {
		return
	}
	rd.recvd[p] = 0
	rd.inner.OnMsg(p, m, redundantEmitter{e: e, r: rd.r})
}

// Ready implements node.Machine. A partially received group must remain
// drainable even if the inner machine has stopped polling the port, so
// readiness is inner-readiness OR group-in-progress.
func (rd *Redundant) Ready(p pulse.Port) bool {
	return rd.inner.Ready(p) || rd.recvd[p] > 0
}

// Status implements node.Machine.
func (rd *Redundant) Status() node.Status { return rd.inner.Status() }
