// Package core implements the paper's contribution: the content-oblivious
// leader-election algorithms of Frei, Gelles, Ghazy, and Nolin
// ("Content-Oblivious Leader Election on Rings", DISC 2024).
//
//   - Alg1: the warm-up quiescently stabilizing election on oriented rings
//     (Section 3.1, Algorithm 1).
//   - Alg2: the quiescently terminating election on oriented rings
//     (Section 3.2, Algorithm 2; Theorem 1).
//   - Alg3: the quiescently stabilizing election-plus-orientation on
//     non-oriented rings (Section 4, Algorithm 3), with both virtual-ID
//     schemes: the doubled IDs of Proposition 15 and the successor IDs of
//     Theorem 2.
//   - SampleID: the message-free randomized ID sampler for anonymous rings
//     (Section 5, Algorithm 4; Lemma 18), whose composition with Alg3
//     yields Theorem 3.
//   - Alg3Resample: the ID-resampling variant of Proposition 19 that
//     leaves every node with a distinct ID at quiescence.
//
// All machines exchange only pulse.Pulse values, so content-obliviousness
// is enforced by the type system. Each machine exposes its rho/sigma
// counters so that internal/trace can check the paper's invariants
// (Lemma 6 and friends) after every event.
package core
