package core

import "math/bits"

// The paper's exact message-complexity formulas. The experiment harness and
// the test suite assert that measured pulse counts equal these values on
// every run, for every scheduler.

// PredictedAlg1Pulses is the complexity of Algorithm 1 (Corollary 13):
// every node sends and receives exactly ID_max clockwise pulses.
func PredictedAlg1Pulses(n int, idMax uint64) uint64 {
	return uint64(n) * idMax
}

// PredictedAlg2Pulses is Theorem 1's complexity n(2·ID_max + 1): ID_max
// pulses per node in each direction plus the termination pulse's n hops.
func PredictedAlg2Pulses(n int, idMax uint64) uint64 {
	return uint64(n) * (2*idMax + 1)
}

// PredictedAlg3Pulses is the complexity of Algorithm 3 under the given
// virtual-ID scheme: n(4·ID_max - 1) for the doubled IDs of Proposition 15
// and n(2·ID_max + 1) for the successor IDs of Theorem 2.
func PredictedAlg3Pulses(n int, idMax uint64, scheme IDScheme) uint64 {
	switch scheme {
	case SchemeDoubled:
		return uint64(n) * (4*idMax - 1)
	case SchemeSuccessor:
		return uint64(n) * (2*idMax + 1)
	default:
		return 0
	}
}

// LowerBoundPulses is Theorem 20's bound: with k assignable IDs, some
// assignment forces any content-oblivious leader election to send at least
// n·floor(log2(k/n)) pulses. Theorem 4 instantiates k = ID_max.
func LowerBoundPulses(n int, k uint64) uint64 {
	if n < 1 || k < uint64(n) {
		return 0
	}
	ratio := k / uint64(n)
	if ratio == 0 {
		return 0
	}
	return uint64(n) * uint64(bits.Len64(ratio)-1)
}
