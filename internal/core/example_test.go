package core_test

import (
	"fmt"

	"coleader/internal/core"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// The canonical use of the package: build machines for a ring, run them on
// a simulator, read the outcome.
func Example() {
	ids := []uint64{4, 9, 2, 7}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		panic(err)
	}
	ms, err := core.Alg2Machines(topo, ids)
	if err != nil {
		panic(err)
	}
	s, err := sim.New(topo, ms, sim.Canonical{})
	if err != nil {
		panic(err)
	}
	res, err := s.Run(1 << 12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("leader: node %d; pulses: %d = n(2·ID_max+1)\n", res.Leader, res.Sent)
	// Output: leader: node 1; pulses: 76 = n(2·ID_max+1)
}

// Algorithm 1 stabilizes without terminating; with duplicate maxima every
// holder of the maximum ends up a leader (Lemma 16).
func ExampleNewAlg1() {
	ids := []uint64{3, 5, 1, 5}
	topo, _ := ring.Oriented(len(ids))
	ms, _ := core.Alg1Machines(topo, ids)
	s, _ := sim.New(topo, ms, sim.Canonical{})
	res, err := s.Run(1 << 12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("leaders: %v, terminated: %t, pulses: %d\n",
		res.Leaders, res.AllTerminated, res.Sent)
	// Output: leaders: [1 3], terminated: false, pulses: 20
}

// Algorithm 3 needs no orientation: it computes one, consistently, while
// electing.
func ExampleNewAlg3() {
	ids := []uint64{2, 7, 4}
	topo, _ := ring.NonOriented([]bool{true, false, true})
	ms, _ := core.Alg3Machines(len(ids), ids, core.SchemeSuccessor)
	s, _ := sim.New(topo, ms, sim.Canonical{})
	res, err := s.Run(1 << 12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("leader: node %d; every node oriented: %t\n",
		res.Leader, res.Statuses[0].HasOrientation && res.Statuses[1].HasOrientation)
	// Output: leader: node 1; every node oriented: true
}

// The exact complexity formulas of the theorems.
func ExamplePredictedAlg2Pulses() {
	fmt.Println(core.PredictedAlg2Pulses(8, 64)) // Theorem 1
	fmt.Println(core.LowerBoundPulses(8, 64))    // Theorem 4
	// Output:
	// 1032
	// 24
}
