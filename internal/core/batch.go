package core

import (
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Batch transitions: the node.BatchMachine / node.FlatBatchMachine
// implementations for Algorithms 1-3 and their struct-of-arrays banks.
//
// Every algorithm in this package is counter arithmetic with thresholds:
// a pulse either relays (counter++ and one pulse out) or crosses a
// threshold (withhold, guard, terminate). A run of k same-port pulses
// therefore splits into uniform relay segments — applied in O(1) by
// adding the segment length to rho/sigma and emitting one counted run —
// separated by single threshold pulses, which are delegated to the
// ordinary OnMsg path so the batched and pulse-by-pulse executions stay
// transition-for-transition equivalent (the batched differential tests
// in internal/sim prove this against the sequential engine).
//
// Each OnPulses computes the distance to the machine's next threshold
// crossing and consumes min(k, distance-to-crossing) pulses; when the
// very next pulse is the crossing (or a guard could fire), it consumes
// exactly that one pulse via OnMsg. Consumed prefixes are
// emission-uniform — one relayed pulse each, or pure absorption — as
// the BatchMachine contract requires.

// relayPrefix returns how many of k pulses can be consumed before a
// receive counter at rho crosses the withhold threshold at id: all k if
// the counter is already past the threshold, otherwise up to (but not
// including) the pulse that lands exactly on it.
func relayPrefix(rho, id, k uint64) uint64 {
	if rho >= id {
		return k
	}
	if d := id - rho - 1; d < k {
		return d
	}
	return k
}

// OnPulses implements node.BatchMachine: Algorithm 1's main loop over a
// run of k clockwise pulses. The single threshold is rho_cw reaching the
// node's ID (the withheld pulse of line 6).
func (a *Alg1) OnPulses(p pulse.Port, k uint64, e node.BatchEmitter) uint64 {
	if p == a.cwPort || a.rhoCW+1 == a.id {
		// Wrong-port fault, or the withheld crossing pulse: one ordinary
		// step keeps the non-uniform transition on the OnMsg path.
		a.OnMsg(p, pulse.Pulse{}, e)
		return 1
	}
	m := relayPrefix(a.rhoCW, a.id, k)
	a.rhoCW += m
	a.sigCW += m
	a.state = node.StateNonLeader
	e.SendRun(a.cwPort, m)
	return m
}

// OnPulses implements node.BatchMachine: Algorithm 2 over a run of k
// pulses from one port. Thresholds: rho_cw reaching ID (withhold +
// Leader + the line 9-10 guard), rho_ccw reaching ID (withhold + the
// line 14-15 guard), and rho_ccw exceeding rho_cw (line 18 termination).
func (a *Alg2) OnPulses(p pulse.Port, k uint64, e node.BatchEmitter) uint64 {
	if a.terminated {
		a.OnMsg(p, pulse.Pulse{}, e) // records the post-termination fault
		return 1
	}
	if p == a.cwPort.Opposite() { // clockwise pulses: Algorithm 1 over CW
		if a.rhoCW+1 == a.id || (a.rhoCW >= a.id && a.sigCCW == 0) {
			// The ID crossing, or a state where after()'s line 9-10 guard
			// would fire on the first pulse: single-step it.
			a.OnMsg(p, pulse.Pulse{}, e)
			return 1
		}
		// Uniform relay prefix: rho_cw stays off ID, so no after() guard
		// can newly hold (lines 9-10 and 14-15 test rho_cw against ID;
		// line 18's rho_ccw > rho_cw only gets falser as rho_cw grows).
		m := relayPrefix(a.rhoCW, a.id, k)
		a.rhoCW += m
		a.sigCW += m
		a.state = node.StateNonLeader
		e.SendRun(a.cwPort, m)
		return m
	}
	// Counterclockwise pulses.
	if a.rhoCW < a.id {
		a.OnMsg(p, pulse.Pulse{}, e) // records the Ready-violation fault
		return 1
	}
	if a.termSent {
		// Lines 16-17: the leader absorbs without forwarding; the pulse
		// that lifts rho_ccw above rho_cw terminates (line 18) and is the
		// last one this machine may ever consume.
		m := k
		if d := a.rhoCW - a.rhoCCW + 1; d < m {
			m = d
		}
		a.rhoCCW += m
		if a.rhoCCW > a.rhoCW {
			a.terminated = true
		}
		return m
	}
	// Relay prefix of the counterclockwise instance: stop before rho_ccw
	// lands on ID (withheld pulse; line 14-15 guard) and before it
	// exceeds rho_cw (line 18 termination).
	m := k
	if a.rhoCCW < a.id {
		if d := a.id - a.rhoCCW - 1; d < m {
			m = d
		}
	}
	if d := a.rhoCW - a.rhoCCW; d < m {
		m = d
	}
	if m == 0 || a.sigCCW == 0 {
		a.OnMsg(p, pulse.Pulse{}, e)
		return 1
	}
	a.rhoCCW += m
	a.sigCCW += m
	e.SendRun(a.cwPort.Opposite(), m)
	return m
}

// OnPulses implements node.BatchMachine: Algorithm 3 over a run of k
// pulses on port p. The single threshold is rho_p landing on the virtual
// ID governing the opposite port (the withheld pulse of line 6); the
// output block is a pure function of the final counters, so one
// recompute after the bulk update equals one per pulse.
func (a *Alg3) OnPulses(p pulse.Port, k uint64, e node.BatchEmitter) uint64 {
	opp := p.Opposite()
	if a.rho[p]+1 == a.vid[opp] {
		a.OnMsg(p, pulse.Pulse{}, e)
		return 1
	}
	m := relayPrefix(a.rho[p], a.vid[opp], k)
	a.rho[p] += m
	a.sig[opp] += m
	e.SendRun(opp, m)
	a.recomputeOutput()
	return m
}

// OnPulses implements node.FlatBatchMachine; mirrors Alg1.OnPulses.
func (b *FlatAlg1) OnPulses(k int, p pulse.Port, n uint64, e node.BatchEmitter) uint64 {
	if p == b.cwPort[k] || b.rhoCW[k]+1 == b.ids[k] {
		b.OnMsg(k, p, pulse.Pulse{}, e)
		return 1
	}
	m := relayPrefix(b.rhoCW[k], b.ids[k], n)
	b.rhoCW[k] += m
	b.sigCW[k] += m
	b.state[k] = node.StateNonLeader
	e.SendRun(b.cwPort[k], m)
	return m
}

// OnPulses implements node.FlatBatchMachine; mirrors Alg2.OnPulses.
func (b *FlatAlg2) OnPulses(k int, p pulse.Port, n uint64, e node.BatchEmitter) uint64 {
	if b.flags[k]&flatTerminated != 0 {
		b.OnMsg(k, p, pulse.Pulse{}, e)
		return 1
	}
	if p == b.cwPort[k].Opposite() { // clockwise pulses
		if b.rhoCW[k]+1 == b.ids[k] || (b.rhoCW[k] >= b.ids[k] && b.sigCCW[k] == 0) {
			b.OnMsg(k, p, pulse.Pulse{}, e)
			return 1
		}
		m := relayPrefix(b.rhoCW[k], b.ids[k], n)
		b.rhoCW[k] += m
		b.sigCW[k] += m
		b.state[k] = node.StateNonLeader
		e.SendRun(b.cwPort[k], m)
		return m
	}
	// Counterclockwise pulses.
	if b.rhoCW[k] < b.ids[k] {
		b.OnMsg(k, p, pulse.Pulse{}, e)
		return 1
	}
	if b.flags[k]&flatTermSent != 0 {
		m := n
		if d := b.rhoCW[k] - b.rhoCCW[k] + 1; d < m {
			m = d
		}
		b.rhoCCW[k] += m
		if b.rhoCCW[k] > b.rhoCW[k] {
			b.flags[k] |= flatTerminated
		}
		return m
	}
	m := n
	if b.rhoCCW[k] < b.ids[k] {
		if d := b.ids[k] - b.rhoCCW[k] - 1; d < m {
			m = d
		}
	}
	if d := b.rhoCW[k] - b.rhoCCW[k]; d < m {
		m = d
	}
	if m == 0 || b.sigCCW[k] == 0 {
		b.OnMsg(k, p, pulse.Pulse{}, e)
		return 1
	}
	b.rhoCCW[k] += m
	b.sigCCW[k] += m
	e.SendRun(b.cwPort[k].Opposite(), m)
	return m
}

// OnPulses implements node.FlatBatchMachine; mirrors Alg3.OnPulses.
func (b *FlatAlg3) OnPulses(k int, p pulse.Port, n uint64, e node.BatchEmitter) uint64 {
	var rp, vidOpp uint64
	if p == pulse.Port0 {
		rp, vidOpp = b.rho0[k], b.vid1[k]
	} else {
		rp, vidOpp = b.rho1[k], b.vid0[k]
	}
	if rp+1 == vidOpp {
		b.OnMsg(k, p, pulse.Pulse{}, e)
		return 1
	}
	m := relayPrefix(rp, vidOpp, n)
	if p == pulse.Port0 {
		b.rho0[k] += m
		b.sig1[k] += m
	} else {
		b.rho1[k] += m
		b.sig0[k] += m
	}
	e.SendRun(p.Opposite(), m)
	b.recomputeOutput(k)
	return m
}
