package core_test

import (
	"errors"
	"fmt"
	"testing"

	"coleader/internal/check"
	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// TestAblationLagGuardIsLoadBearing is the guard ablation study: the
// exhaustive model checker must FIND a schedule under which Algorithm 2
// without the line-9 guard misbehaves (premature termination leads to a
// protocol violation or a wrong terminal state), on a ring where the
// guarded algorithm is proven correct under every schedule.
func TestAblationLagGuardIsLoadBearing(t *testing.T) {
	// IDs chosen so a small-ID node can be flooded with counterclockwise
	// pulses while its clockwise instance is starved.
	for _, ids := range [][]uint64{{1, 2}, {1, 3}, {2, 3, 1}} {
		ids := ids
		t.Run(fmt.Sprintf("ids=%v", ids), func(t *testing.T) {
			topo, err := ring.Oriented(len(ids))
			if err != nil {
				t.Fatal(err)
			}
			mk := func() ([]node.PulseMachine, error) {
				ms := make([]node.PulseMachine, len(ids))
				for k := range ms {
					m, err := core.NewAlg2Unguarded(ids[k], topo.CWPort(k))
					if err != nil {
						return nil, err
					}
					ms[k] = m
				}
				return ms, nil
			}
			wantLeader, _ := ring.MaxIndex(ids)
			wantSent := core.PredictedAlg2Pulses(len(ids), ring.MaxID(ids))
			_, err = check.Exhaustive(check.Config{
				Topo:        topo,
				NewMachines: mk,
				Check: func(f check.Final) error {
					if len(f.Leaders) != 1 || f.Leaders[0] != wantLeader {
						return fmt.Errorf("leaders %v, want [%d]", f.Leaders, wantLeader)
					}
					if f.Sent != wantSent {
						return fmt.Errorf("sent %d, want %d", f.Sent, wantSent)
					}
					for k, st := range f.Statuses {
						if !st.Terminated {
							return fmt.Errorf("node %d not terminated", k)
						}
					}
					return nil
				},
			})
			if err == nil {
				t.Fatal("the unguarded variant survived every schedule; the ablation found nothing " +
					"(this would mean the paper's lag guard is unnecessary, which contradicts its design)")
			}
			if !errors.Is(err, check.ErrViolation) && !errors.Is(err, check.ErrStalled) {
				t.Fatalf("unexpected failure kind: %v", err)
			}
			t.Logf("guard ablation exposed by: %v", err)
		})
	}
}

// TestAblationUnguardedStillWorksUnderGentleSchedules documents the trap:
// under the canonical scheduler the unguarded variant happens to behave,
// which is exactly why schedule-space exploration (not spot-checking) is
// needed to justify the guard.
func TestAblationUnguardedStillWorksUnderGentleSchedules(t *testing.T) {
	ids := []uint64{2, 3, 1}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]node.PulseMachine, len(ids))
	for k := range ms {
		m, err := core.NewAlg2Unguarded(ids[k], topo.CWPort(k))
		if err != nil {
			t.Fatal(err)
		}
		ms[k] = m
	}
	res, err := runMachines(t, topo, ms, 1<<12)
	if err != nil {
		t.Fatalf("canonical run failed: %v", err)
	}
	wantLeader, _ := ring.MaxIndex(ids)
	if res.Leader != wantLeader {
		t.Errorf("canonical run elected %d, want %d", res.Leader, wantLeader)
	}
}

// runMachines executes machines to quiescence under the canonical
// scheduler.
func runMachines(t *testing.T, topo ring.Topology, ms []node.PulseMachine, limit uint64) (sim.Result, error) {
	t.Helper()
	s, err := sim.New(topo, ms, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	return s.Run(limit)
}

func TestNewAlg2UnguardedValidation(t *testing.T) {
	if _, err := core.NewAlg2Unguarded(0, 0); err == nil {
		t.Error("zero ID accepted")
	}
	if _, err := core.NewAlg2Unguarded(1, 5); err == nil {
		t.Error("invalid port accepted")
	}
}
