package core_test

import (
	"testing"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// wrapRedundant builds an Algorithm 2 ring in the r-redundant altered form
// of Section 1.1.
func wrapRedundant(t *testing.T, ids []uint64, r int) (ring.Topology, []node.PulseMachine) {
	t.Helper()
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]node.PulseMachine, len(ids))
	for k := range ms {
		inner, err := core.NewAlg2(ids[k], topo.CWPort(k))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := core.NewRedundant(inner, r)
		if err != nil {
			t.Fatal(err)
		}
		ms[k] = rd
	}
	return topo, ms
}

// TestRedundantEquivalence: the altered form elects the same leader with
// exactly (r+1)x the pulses — the cost Section 1.1 quotes for composing
// without quiescent termination.
func TestRedundantEquivalence(t *testing.T) {
	ids := []uint64{4, 7, 2, 5}
	base := core.PredictedAlg2Pulses(len(ids), 7)
	for _, r := range []int{0, 1, 2, 5} {
		topo, ms := wrapRedundant(t, ids, r)
		s, err := sim.New(topo, ms, sim.NewRandom(int64(r)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(uint64(r+1)*4*base + 4096)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if res.Leader != 1 {
			t.Errorf("r=%d: leader %d, want 1", r, res.Leader)
		}
		if !res.AllTerminated || !res.Quiescent {
			t.Errorf("r=%d: terminated=%t quiescent=%t", r, res.AllTerminated, res.Quiescent)
		}
		if want := uint64(r+1) * base; res.Sent != want {
			t.Errorf("r=%d: pulses %d, want exactly %d = (r+1)·n(2·ID_max+1)", r, res.Sent, want)
		}
		for k := 0; k < len(ids); k++ {
			if got := s.Machine(k).(*core.Redundant).StrayPulses(); got != 0 {
				t.Errorf("r=%d node %d: %d stray pulses after clean run", r, k, got)
			}
		}
	}
}

// TestRedundantGrouping: unit-level — r stray pulses are absorbed without
// a logical delivery; the (r+1)th completes the group.
func TestRedundantGrouping(t *testing.T) {
	const r = 3
	counter := &countingMachine{}
	rd, err := core.NewRedundant(counter, r)
	if err != nil {
		t.Fatal(err)
	}
	em := discardEmitter{}
	for i := 0; i < r; i++ {
		rd.OnMsg(pulse.Port0, pulse.Pulse{}, em)
	}
	if counter.delivered != 0 {
		t.Fatalf("%d deliveries after %d pulses, want 0", counter.delivered, r)
	}
	if rd.StrayPulses() != r {
		t.Errorf("StrayPulses = %d, want %d", rd.StrayPulses(), r)
	}
	rd.OnMsg(pulse.Port0, pulse.Pulse{}, em)
	if counter.delivered != 1 {
		t.Fatalf("group completion delivered %d, want 1", counter.delivered)
	}
	if rd.StrayPulses() != 0 {
		t.Errorf("StrayPulses = %d after completion, want 0", rd.StrayPulses())
	}
	// Groups are per port: pulses on the other port do not mix.
	rd.OnMsg(pulse.Port1, pulse.Pulse{}, em)
	rd.OnMsg(pulse.Port0, pulse.Pulse{}, em)
	if counter.delivered != 1 {
		t.Errorf("cross-port mixing: delivered %d, want 1", counter.delivered)
	}
}

// TestRedundantReplicatesSends: one inner send becomes r+1 wire pulses.
func TestRedundantReplicatesSends(t *testing.T) {
	const r = 2
	sender := &initSender{}
	rd, err := core.NewRedundant(sender, r)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingEmitter{}
	rd.Init(rec)
	if rec.count != r+1 {
		t.Errorf("Init emitted %d pulses, want %d", rec.count, r+1)
	}
}

// TestRedundantValidation covers the constructor.
func TestRedundantValidation(t *testing.T) {
	if _, err := core.NewRedundant(nil, 1); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := core.NewRedundant(&countingMachine{}, -1); err == nil {
		t.Error("negative r accepted")
	}
}

type countingMachine struct{ delivered int }

func (c *countingMachine) Init(node.PulseEmitter) {}
func (c *countingMachine) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {
	c.delivered++
}
func (c *countingMachine) Ready(pulse.Port) bool { return true }
func (c *countingMachine) Status() node.Status   { return node.Status{} }

type initSender struct{}

func (initSender) Init(e node.PulseEmitter)                         { e.Send(pulse.Port1, pulse.Pulse{}) }
func (initSender) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {}
func (initSender) Ready(pulse.Port) bool                            { return true }
func (initSender) Status() node.Status                              { return node.Status{} }

type recordingEmitter struct{ count int }

func (r *recordingEmitter) Send(pulse.Port, pulse.Pulse) { r.count++ }
