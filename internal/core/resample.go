package core

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/xrand"
)

// Alg3Resample is the Proposition 19 variant of Algorithm 3: whenever a
// node receives a pulse and observes min(rho_0, rho_1) > ID, it replaces
// its ID with a fresh one drawn uniformly from [1, min(rho_0, rho_1) - 1]
// (and rebuilds its virtual IDs accordingly).
//
// By the time the trigger fires, the node has already withheld its one
// pulse per direction, and the new, strictly smaller ID can never match a
// future counter value, so the node relays forever after and the pulse
// totals still stabilize as in Lemma 16. At quiescence every node holds a
// distinct ID with high probability, turning a ring of possibly colliding
// random IDs (Algorithm 4's output) into a uniquely identified one.
//
// The node's private randomness is an xrand.SplitMix, whose one-word state
// clones with the machine: Alg3Resample participates in exhaustive
// schedule exploration like the deterministic machines.
type Alg3Resample struct {
	inner Alg3
	rng   xrand.SplitMix
	// resamples counts ID replacements, exposed for experiments.
	resamples int
}

// NewAlg3Resample returns the resampling machine with the node's private
// randomness seeded by seed (its "own source of randomness" in the
// paper's model; distinct nodes must use distinct seeds).
func NewAlg3Resample(id uint64, scheme IDScheme, seed int64) (*Alg3Resample, error) {
	inner, err := NewAlg3(id, scheme)
	if err != nil {
		return nil, err
	}
	return &Alg3Resample{inner: *inner, rng: *xrand.New(seed)}, nil
}

// ID returns the node's current identifier (it may change over the run).
func (a *Alg3Resample) ID() uint64 { return a.inner.id }

// Resamples returns how many times the node replaced its ID.
func (a *Alg3Resample) Resamples() int { return a.resamples }

// Rho returns the pulses received on port p.
func (a *Alg3Resample) Rho(p pulse.Port) uint64 { return a.inner.Rho(p) }

// Init implements node.Machine.
func (a *Alg3Resample) Init(e node.PulseEmitter) { a.inner.Init(e) }

// OnMsg implements node.Machine: Algorithm 3's step, then the
// Proposition 19 resampling rule.
func (a *Alg3Resample) OnMsg(p pulse.Port, m pulse.Pulse, e node.PulseEmitter) {
	a.inner.OnMsg(p, m, e)
	low := a.inner.rho[pulse.Port0]
	if r1 := a.inner.rho[pulse.Port1]; r1 < low {
		low = r1
	}
	if low > a.inner.id {
		// Draw uniformly from [1, low-1]; low > ID >= 1 implies low >= 2,
		// so the range is never empty.
		a.inner.id = 1 + uint64(a.rng.Int63n(int64(low-1)))
		vid, err := a.inner.scheme.virtualIDs(a.inner.id)
		if err != nil {
			panic("core: scheme was validated at construction: " + err.Error())
		}
		a.inner.vid = vid
		a.resamples++
	}
}

// Ready implements node.Machine.
func (a *Alg3Resample) Ready(p pulse.Port) bool { return a.inner.Ready(p) }

// Status implements node.Machine.
func (a *Alg3Resample) Status() node.Status { return a.inner.Status() }

// CloneMachine implements node.Cloneable: the PRNG state clones with the
// machine, so exploration branches see independent futures.
func (a *Alg3Resample) CloneMachine() node.PulseMachine {
	cp := *a
	return &cp
}

// StateKey implements node.Cloneable.
func (a *Alg3Resample) StateKey() string {
	return fmt.Sprintf("a3r|%s|%d|%d", a.inner.StateKey(), a.rng.State(), a.resamples)
}

// AppendStateKey implements node.KeyAppender: the binary form of StateKey.
func (a *Alg3Resample) AppendStateKey(dst []byte) []byte {
	dst = append(dst, 'B', 'R')
	dst = a.inner.AppendStateKey(dst)
	dst = node.AppendKey64(dst, a.rng.State())
	return node.AppendKey64(dst, uint64(a.resamples))
}

// SnapshotTo implements node.Undoable. Unlike plain Alg3, the resampling
// rule mutates the inner machine's id and virtual IDs, and the PRNG state
// advances with every draw — all of it snapshots here.
func (a *Alg3Resample) SnapshotTo(buf []byte) []byte {
	buf = node.AppendKey64(buf, a.inner.id)
	buf = node.AppendKey64(buf, a.inner.vid[0])
	buf = node.AppendKey64(buf, a.inner.vid[1])
	buf = node.AppendKey64(buf, a.rng.State())
	buf = node.AppendKey64(buf, uint64(a.resamples))
	return a.inner.SnapshotTo(buf)
}

// Restore implements node.Undoable.
func (a *Alg3Resample) Restore(snap []byte) {
	a.inner.id = node.Key64(snap)
	a.inner.vid[0] = node.Key64(snap[8:])
	a.inner.vid[1] = node.Key64(snap[16:])
	a.rng.SetState(node.Key64(snap[24:]))
	a.resamples = int(node.Key64(snap[32:]))
	a.inner.Restore(snap[40:])
}
