package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// runAlg3 executes Algorithm 3 on the given (possibly non-oriented)
// topology and returns the simulation for inspection.
func runAlg3(topo ring.Topology, ids []uint64, scheme core.IDScheme, sched sim.Scheduler) (*sim.Sim[pulse.Pulse], sim.Result, error) {
	ms, err := core.Alg3Machines(topo.N(), ids, scheme)
	if err != nil {
		return nil, sim.Result{}, err
	}
	s, err := sim.New(topo, ms, sched)
	if err != nil {
		return nil, sim.Result{}, err
	}
	res, err := s.Run(limitFor(core.PredictedAlg3Pulses(topo.N(), ring.MaxID(ids), scheme)))
	return s, res, err
}

// checkAlg3 asserts the guarantees of Theorem 2 / Proposition 15: unique
// leader at the maximum ID, quiescence without termination, a globally
// consistent orientation, and the exact pulse count for the scheme.
func checkAlg3(t *testing.T, topo ring.Topology, ids []uint64, scheme core.IDScheme, res sim.Result) {
	t.Helper()
	wantLeader, unique := ring.MaxIndex(ids)
	if !unique {
		t.Fatalf("test bug: max ID not unique in %v", ids)
	}
	if !res.Quiescent {
		t.Error("network did not reach quiescence")
	}
	if res.AllTerminated {
		t.Error("Algorithm 3 must not terminate")
	}
	if res.Leader != wantLeader {
		t.Errorf("leader = %d, want %d (leaders %v, ids %v, topo %v)",
			res.Leader, wantLeader, res.Leaders, ids, topo)
	}
	if want := core.PredictedAlg3Pulses(topo.N(), ring.MaxID(ids), scheme); res.Sent != want {
		t.Errorf("pulses = %d, want exactly %d (%v scheme)", res.Sent, want, scheme)
	}
	// Orientation: every node labels a clockwise port, and all labels agree
	// on a single global direction of travel (which may be either of the
	// topology's two directions: "clockwise" is defined relative to the
	// leader's Port1, not to our node numbering).
	var dir pulse.Direction
	for k, st := range res.Statuses {
		if !st.HasOrientation {
			t.Errorf("node %d has no orientation", k)
			continue
		}
		d := topo.DirectionOf(k, st.CWPort)
		if dir == 0 {
			dir = d
		} else if d != dir {
			t.Errorf("node %d orients %v, node 0 orients %v: inconsistent", k, d, dir)
		}
	}
	// The busier direction carries n·(max virtual ID) pulses; with the
	// successor scheme that is n·(ID_max+1) one way and n·ID_max the other.
	if scheme == core.SchemeSuccessor {
		n, idMax := uint64(topo.N()), ring.MaxID(ids)
		hi, lo := res.SentCW, res.SentCCW
		if lo > hi {
			hi, lo = lo, hi
		}
		if hi != n*(idMax+1) || lo != n*idMax {
			t.Errorf("directional pulse split = (%d,%d), want (%d,%d)",
				hi, lo, n*(idMax+1), n*idMax)
		}
	}
}

func TestAlg3OrientedWiring(t *testing.T) {
	for _, scheme := range []core.IDScheme{core.SchemeDoubled, core.SchemeSuccessor} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			ids := []uint64{3, 7, 1, 5}
			topo, err := ring.Oriented(len(ids))
			if err != nil {
				t.Fatal(err)
			}
			_, res, err := runAlg3(topo, ids, scheme, sim.Canonical{})
			if err != nil {
				t.Fatal(err)
			}
			checkAlg3(t, topo, ids, scheme, res)
		})
	}
}

// TestAlg3AllPortAssignments sweeps every one of the 2^n port assignments
// of small rings (the full space of Figure 1's non-oriented rings).
func TestAlg3AllPortAssignments(t *testing.T) {
	ids := []uint64{2, 5, 1, 3}
	n := len(ids)
	for mask := 0; mask < 1<<n; mask++ {
		flips := make([]bool, n)
		for i := range flips {
			flips[i] = mask&(1<<i) != 0
		}
		topo, err := ring.NonOriented(flips)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range []core.IDScheme{core.SchemeDoubled, core.SchemeSuccessor} {
			_, res, err := runAlg3(topo, ids, scheme, sim.Canonical{})
			if err != nil {
				t.Fatalf("mask %04b scheme %v: %v", mask, scheme, err)
			}
			checkAlg3(t, topo, ids, scheme, res)
		}
	}
}

func TestAlg3AllSchedulers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ids := []uint64{6, 2, 9, 4, 1, 7}
	topo, err := ring.RandomNonOriented(len(ids), rng)
	if err != nil {
		t.Fatal(err)
	}
	for name, sched := range sim.Stock(23) {
		sched := sched
		t.Run(name, func(t *testing.T) {
			_, res, err := runAlg3(topo, ids, core.SchemeSuccessor, sched)
			if err != nil {
				t.Fatal(err)
			}
			checkAlg3(t, topo, ids, core.SchemeSuccessor, res)
		})
	}
}

// TestAlg3PropertyRandom is a property-based sweep over random sizes, IDs,
// port assignments, schemes, and schedules.
func TestAlg3PropertyRandom(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		ids := ring.PermutedIDs(n, rng)
		topo, err := ring.RandomNonOriented(n, rng)
		if err != nil {
			return false
		}
		scheme := core.SchemeDoubled
		if rng.Intn(2) == 0 {
			scheme = core.SchemeSuccessor
		}
		_, res, err := runAlg3(topo, ids, scheme, sim.NewRandom(seed+1))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		wantLeader, _ := ring.MaxIndex(ids)
		if res.Leader != wantLeader || !res.Quiescent {
			t.Logf("seed %d: leader %d want %d quiescent %t", seed, res.Leader, wantLeader, res.Quiescent)
			return false
		}
		return res.Sent == core.PredictedAlg3Pulses(n, ring.MaxID(ids), scheme)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestAlg3StabilizedCounters checks the per-direction stabilization of the
// proof of Theorem 2: with successor IDs every node receives ID_max+1
// pulses from one direction and ID_max from the other.
func TestAlg3StabilizedCounters(t *testing.T) {
	ids := []uint64{4, 9, 2}
	topo, err := ring.NonOriented([]bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := runAlg3(topo, ids, core.SchemeSuccessor, sim.NewRandom(9))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < len(ids); k++ {
		a := s.Machine(k).(*core.Alg3)
		r0, r1 := a.Rho(pulse.Port0), a.Rho(pulse.Port1)
		hi, lo := r0, r1
		if lo > hi {
			hi, lo = lo, hi
		}
		if hi != 10 || lo != 9 {
			t.Errorf("node %d: rho = (%d,%d), want {10,9} (ID_max=9)", k, r0, r1)
		}
	}
}

// TestAlg3SelfRing checks n = 1: the sole node's two virtual IDs drive the
// two directions and it elects itself.
func TestAlg3SelfRing(t *testing.T) {
	for _, scheme := range []core.IDScheme{core.SchemeDoubled, core.SchemeSuccessor} {
		topo, err := ring.Oriented(1)
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := runAlg3(topo, []uint64{4}, scheme, sim.Canonical{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		checkAlg3(t, topo, []uint64{4}, scheme, res)
	}
}

// TestAlg3VirtualIDs pins the two schemes' virtual-ID arithmetic.
func TestAlg3VirtualIDs(t *testing.T) {
	cases := []struct {
		scheme core.IDScheme
		id     uint64
		want   [2]uint64
	}{
		{core.SchemeDoubled, 1, [2]uint64{1, 2}},
		{core.SchemeDoubled, 7, [2]uint64{13, 14}},
		{core.SchemeSuccessor, 1, [2]uint64{1, 2}},
		{core.SchemeSuccessor, 7, [2]uint64{7, 8}},
	}
	for _, tc := range cases {
		a, err := core.NewAlg3(tc.id, tc.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if got := [2]uint64{a.VirtualID(0), a.VirtualID(1)}; got != tc.want {
			t.Errorf("%v id=%d: virtual IDs %v, want %v", tc.scheme, tc.id, got, tc.want)
		}
	}
}

func TestIDSchemeString(t *testing.T) {
	if core.SchemeDoubled.String() != "doubled" || core.SchemeSuccessor.String() != "successor" {
		t.Error("unexpected scheme names")
	}
	if _, err := core.NewAlg3(1, core.IDScheme(99)); err == nil {
		t.Error("NewAlg3 with bogus scheme succeeded, want error")
	}
}

// TestAlg3DuplicateRealIDs exercises Lemma 16 at the Algorithm 3 level:
// duplicate real IDs below the maximum do not disturb election or counts.
func TestAlg3DuplicateRealIDs(t *testing.T) {
	ids := []uint64{3, 7, 3, 5, 3} // unique max 7 at node 1
	topo, err := ring.NonOriented([]bool{false, true, true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := runAlg3(topo, ids, core.SchemeSuccessor, sim.NewRandom(31))
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 1 {
		t.Errorf("leader = %d, want 1 (ids %v)", res.Leader, ids)
	}
	if want := core.PredictedAlg3Pulses(5, 7, core.SchemeSuccessor); res.Sent != want {
		t.Errorf("pulses = %d, want %d", res.Sent, want)
	}
}

var _ node.Cloneable[pulse.Pulse] = (*core.Alg3)(nil)

func ExampleIDScheme_String() {
	fmt.Println(core.SchemeDoubled, core.SchemeSuccessor)
	// Output: doubled successor
}
