package core

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// Struct-of-arrays machine banks: one node.FlatMachine per algorithm,
// holding every node's state in per-field slices instead of one heap
// object per node. A 10⁷-node Alg2 bank is six uint64 slices and two
// byte slices — a few hundred MB with zero per-node pointers — which is
// what lets the sharded simulator elect over million-node rings.
//
// Each bank mirrors its pointer machine (alg1.go / alg2.go / alg3.go)
// line for line; the flat differential tests in internal/sim assert
// trace-for-trace equality between the two implementations under every
// stock scheduler. Error slots are allocated lazily on the first
// protocol fault, so violation-free runs never pay for them.

// faultSlots records per-slot protocol faults for a bank, allocating
// backing storage only when the first fault occurs.
type faultSlots struct {
	errs []error
}

func (f *faultSlots) set(n, k int, err error) {
	if f.errs == nil {
		f.errs = make([]error, n)
	}
	f.errs[k] = err
}

func (f *faultSlots) get(k int) error {
	if f.errs == nil {
		return nil
	}
	return f.errs[k]
}

// FlatAlg1 is the struct-of-arrays form of Alg1: Algorithm 1 for every
// node of a ring, state in per-field slices.
type FlatAlg1 struct {
	ids    []uint64
	cwPort []pulse.Port
	rhoCW  []uint64
	sigCW  []uint64
	state  []node.State
	faults faultSlots
}

// NewFlatAlg1 builds an Algorithm 1 bank for all of t's nodes with the
// given positive IDs; the topology supplies each node's clockwise port,
// exactly like Alg1Machines.
func NewFlatAlg1(t ring.Topology, ids []uint64) (*FlatAlg1, error) {
	n := t.N()
	if len(ids) != n {
		return nil, fmt.Errorf("core: %d IDs for %d nodes", len(ids), n)
	}
	b := &FlatAlg1{
		ids:    append([]uint64(nil), ids...),
		cwPort: make([]pulse.Port, n),
		rhoCW:  make([]uint64, n),
		sigCW:  make([]uint64, n),
		state:  make([]node.State, n),
	}
	for k := 0; k < n; k++ {
		if ids[k] == 0 {
			return nil, fmt.Errorf("core: node %d: ID must be positive", k)
		}
		b.cwPort[k] = t.CWPort(k)
	}
	return b, nil
}

// Len implements node.FlatMachine.
func (b *FlatAlg1) Len() int { return len(b.ids) }

// ID returns slot k's identifier.
func (b *FlatAlg1) ID(k int) uint64 { return b.ids[k] }

// RhoCW returns slot k's clockwise pulses received.
func (b *FlatAlg1) RhoCW(k int) uint64 { return b.rhoCW[k] }

// SigCW returns slot k's clockwise pulses sent.
func (b *FlatAlg1) SigCW(k int) uint64 { return b.sigCW[k] }

func (b *FlatAlg1) sendCW(k int, e node.PulseEmitter) {
	b.sigCW[k]++
	e.Send(b.cwPort[k], pulse.Pulse{})
}

// Init implements node.FlatMachine; mirrors Alg1.Init.
func (b *FlatAlg1) Init(k int, e node.PulseEmitter) { b.sendCW(k, e) }

// OnMsg implements node.FlatMachine; mirrors Alg1.OnMsg.
func (b *FlatAlg1) OnMsg(k int, p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	if p == b.cwPort[k] {
		b.faults.set(len(b.ids), k, fmt.Errorf("core: Alg1 received a counterclockwise pulse on %s", p))
		return
	}
	b.rhoCW[k]++
	if b.rhoCW[k] == b.ids[k] {
		b.state[k] = node.StateLeader
		return // withhold this one pulse
	}
	b.state[k] = node.StateNonLeader
	b.sendCW(k, e)
}

// Ready implements node.FlatMachine: Algorithm 1 never stops polling.
func (b *FlatAlg1) Ready(int, pulse.Port) bool { return true }

// Status implements node.FlatMachine.
func (b *FlatAlg1) Status(k int) node.Status {
	return node.Status{State: b.state[k], Err: b.faults.get(k)}
}

// Alg2 flag bits (flat form).
const (
	flatTermSent   = 1 << 0
	flatTerminated = 1 << 1
)

// FlatAlg2 is the struct-of-arrays form of Alg2: Algorithm 2 for every
// node of an oriented ring.
type FlatAlg2 struct {
	ids    []uint64
	cwPort []pulse.Port
	rhoCW  []uint64
	sigCW  []uint64
	rhoCCW []uint64
	sigCCW []uint64
	state  []node.State
	flags  []uint8 // flatTermSent | flatTerminated
	faults faultSlots
}

// NewFlatAlg2 builds an Algorithm 2 bank for all of t's nodes. IDs must
// be positive and distinct (Theorem 1), exactly like Alg2Machines.
func NewFlatAlg2(t ring.Topology, ids []uint64) (*FlatAlg2, error) {
	n := t.N()
	if len(ids) != n {
		return nil, fmt.Errorf("core: %d IDs for %d nodes", len(ids), n)
	}
	if err := ring.CheckDistinct(ids); err != nil {
		return nil, err
	}
	b := &FlatAlg2{
		ids:    append([]uint64(nil), ids...),
		cwPort: make([]pulse.Port, n),
		rhoCW:  make([]uint64, n),
		sigCW:  make([]uint64, n),
		rhoCCW: make([]uint64, n),
		sigCCW: make([]uint64, n),
		state:  make([]node.State, n),
		flags:  make([]uint8, n),
	}
	for k := 0; k < n; k++ {
		if ids[k] == 0 {
			return nil, fmt.Errorf("core: node %d: ID must be positive", k)
		}
		b.cwPort[k] = t.CWPort(k)
	}
	return b, nil
}

// Len implements node.FlatMachine.
func (b *FlatAlg2) Len() int { return len(b.ids) }

// ID returns slot k's identifier.
func (b *FlatAlg2) ID(k int) uint64 { return b.ids[k] }

// RhoCW returns slot k's clockwise pulses received.
func (b *FlatAlg2) RhoCW(k int) uint64 { return b.rhoCW[k] }

// RhoCCW returns slot k's counterclockwise pulses received.
func (b *FlatAlg2) RhoCCW(k int) uint64 { return b.rhoCCW[k] }

func (b *FlatAlg2) sendCW(k int, e node.PulseEmitter) {
	b.sigCW[k]++
	e.Send(b.cwPort[k], pulse.Pulse{})
}

func (b *FlatAlg2) sendCCW(k int, e node.PulseEmitter) {
	b.sigCCW[k]++
	e.Send(b.cwPort[k].Opposite(), pulse.Pulse{})
}

// Init implements node.FlatMachine; mirrors Alg2.Init.
func (b *FlatAlg2) Init(k int, e node.PulseEmitter) {
	b.sendCW(k, e)
	b.after(k, e)
}

// OnMsg implements node.FlatMachine; mirrors Alg2.OnMsg.
func (b *FlatAlg2) OnMsg(k int, p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	if b.flags[k]&flatTerminated != 0 {
		b.faults.set(len(b.ids), k, fmt.Errorf("core: Alg2 pulse delivered after termination"))
		return
	}
	if p == b.cwPort[k].Opposite() { // clockwise pulse: Algorithm 1 over CW
		b.rhoCW[k]++
		if b.rhoCW[k] == b.ids[k] {
			b.state[k] = node.StateLeader
		} else {
			b.state[k] = node.StateNonLeader
			b.sendCW(k, e)
		}
	} else { // counterclockwise pulse
		if b.rhoCW[k] < b.ids[k] {
			// Ready(ccw) was false; the runtime must not have delivered.
			b.faults.set(len(b.ids), k, fmt.Errorf("core: Alg2 counterclockwise pulse before rho_cw >= ID"))
			return
		}
		b.rhoCCW[k]++
		switch {
		case b.flags[k]&flatTermSent != 0:
			// Line 16-17: the leader's termination pulse returning; consume
			// without forwarding.
		case b.rhoCCW[k] != b.ids[k]:
			b.sendCCW(k, e)
		}
	}
	b.after(k, e)
}

// after mirrors Alg2.after: the guard-triggered parts of the loop body.
func (b *FlatAlg2) after(k int, e node.PulseEmitter) {
	if b.rhoCW[k] >= b.ids[k] && b.sigCCW[k] == 0 {
		b.sendCCW(k, e)
	}
	if b.flags[k]&flatTermSent == 0 && b.rhoCW[k] == b.ids[k] && b.rhoCCW[k] == b.ids[k] {
		b.flags[k] |= flatTermSent
		b.sendCCW(k, e)
	}
	if b.rhoCCW[k] > b.rhoCW[k] {
		b.flags[k] |= flatTerminated
	}
}

// Ready implements node.FlatMachine; mirrors Alg2.Ready.
func (b *FlatAlg2) Ready(k int, p pulse.Port) bool {
	if b.flags[k]&flatTerminated != 0 {
		return false
	}
	if p == b.cwPort[k] { // counterclockwise arrivals
		return b.rhoCW[k] >= b.ids[k]
	}
	return true
}

// Status implements node.FlatMachine.
func (b *FlatAlg2) Status(k int) node.Status {
	return node.Status{
		State:      b.state[k],
		Terminated: b.flags[k]&flatTerminated != 0,
		Err:        b.faults.get(k),
	}
}

// FlatAlg3 is the struct-of-arrays form of Alg3: Algorithm 3 for every
// node of a (possibly non-oriented) ring under one virtual-ID scheme.
type FlatAlg3 struct {
	scheme   IDScheme
	ids      []uint64
	vid0     []uint64 // vid0[k] governs forwarding out of Port0
	vid1     []uint64 // vid1[k] governs forwarding out of Port1
	rho0     []uint64
	rho1     []uint64
	sig0     []uint64
	sig1     []uint64
	state    []node.State
	oriented []bool
	cwPort   []pulse.Port
}

// NewFlatAlg3 builds an Algorithm 3 bank for n nodes with the given
// positive IDs under scheme, exactly like Alg3Machines.
func NewFlatAlg3(n int, ids []uint64, scheme IDScheme) (*FlatAlg3, error) {
	if len(ids) != n {
		return nil, fmt.Errorf("core: %d IDs for %d nodes", len(ids), n)
	}
	b := &FlatAlg3{
		scheme:   scheme,
		ids:      append([]uint64(nil), ids...),
		vid0:     make([]uint64, n),
		vid1:     make([]uint64, n),
		rho0:     make([]uint64, n),
		rho1:     make([]uint64, n),
		sig0:     make([]uint64, n),
		sig1:     make([]uint64, n),
		state:    make([]node.State, n),
		oriented: make([]bool, n),
		cwPort:   make([]pulse.Port, n),
	}
	for k := 0; k < n; k++ {
		if ids[k] == 0 {
			return nil, fmt.Errorf("core: node %d: ID must be positive", k)
		}
		vid, err := scheme.virtualIDs(ids[k])
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", k, err)
		}
		b.vid0[k], b.vid1[k] = vid[0], vid[1]
	}
	return b, nil
}

// Len implements node.FlatMachine.
func (b *FlatAlg3) Len() int { return len(b.ids) }

// ID returns slot k's (real) identifier.
func (b *FlatAlg3) ID(k int) uint64 { return b.ids[k] }

// Scheme returns the virtual-ID scheme in force.
func (b *FlatAlg3) Scheme() IDScheme { return b.scheme }

func (b *FlatAlg3) send(k int, p pulse.Port, e node.PulseEmitter) {
	if p == pulse.Port0 {
		b.sig0[k]++
	} else {
		b.sig1[k]++
	}
	e.Send(p, pulse.Pulse{})
}

// Init implements node.FlatMachine; mirrors Alg3.Init.
func (b *FlatAlg3) Init(k int, e node.PulseEmitter) {
	b.send(k, pulse.Port0, e)
	b.send(k, pulse.Port1, e)
}

// OnMsg implements node.FlatMachine; mirrors Alg3.OnMsg.
func (b *FlatAlg3) OnMsg(k int, p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	var rp, vidOpp uint64
	if p == pulse.Port0 {
		b.rho0[k]++
		rp, vidOpp = b.rho0[k], b.vid1[k]
	} else {
		b.rho1[k]++
		rp, vidOpp = b.rho1[k], b.vid0[k]
	}
	if rp != vidOpp {
		b.send(k, p.Opposite(), e)
	}
	b.recomputeOutput(k)
}

// recomputeOutput mirrors Alg3.recomputeOutput.
func (b *FlatAlg3) recomputeOutput(k int) {
	r0, r1 := b.rho0[k], b.rho1[k]
	if max64(r0, r1) < b.vid1[k] {
		return
	}
	if r0 == b.vid1[k] && r1 < b.vid1[k] {
		b.state[k] = node.StateLeader
	} else {
		b.state[k] = node.StateNonLeader
	}
	b.oriented[k] = true
	if r0 > r1 {
		b.cwPort[k] = pulse.Port1
	} else {
		b.cwPort[k] = pulse.Port0
	}
}

// Ready implements node.FlatMachine: Algorithm 3 never stops polling.
func (b *FlatAlg3) Ready(int, pulse.Port) bool { return true }

// Status implements node.FlatMachine.
func (b *FlatAlg3) Status(k int) node.Status {
	return node.Status{
		State:          b.state[k],
		HasOrientation: b.oriented[k],
		CWPort:         b.cwPort[k],
	}
}
