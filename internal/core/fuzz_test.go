package core_test

import (
	"math/rand"
	"testing"

	"coleader/internal/core"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// FuzzAlg2Election fuzzes ring size, ID assignment, and schedule: every
// input must satisfy Theorem 1 exactly. Run with `go test -fuzz
// FuzzAlg2Election ./internal/core` for continuous exploration; the seed
// corpus runs in normal test mode.
func FuzzAlg2Election(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(0))
	f.Add(int64(42), uint8(1), uint8(3))
	f.Add(int64(-7), uint8(12), uint8(2))
	f.Add(int64(1<<40), uint8(8), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, schedRaw uint8) {
		n := 1 + int(nRaw%14)
		rng := rand.New(rand.NewSource(seed))
		var ids []uint64
		if seed%2 == 0 {
			ids = ring.PermutedIDs(n, rng)
		} else {
			var err error
			ids, err = ring.SparseIDs(n, uint64(16*n), rng)
			if err != nil {
				t.Fatal(err)
			}
		}
		scheds := []sim.Scheduler{
			sim.Canonical{}, sim.Newest{}, sim.NewRandom(seed), sim.NewRoundRobin(),
			sim.NewLaggy(seed), sim.NewHashDelay(seed),
		}
		sched := scheds[int(schedRaw)%len(scheds)]
		topo, err := ring.Oriented(n)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := core.Alg2Machines(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(topo, ms, sched)
		if err != nil {
			t.Fatal(err)
		}
		pred := core.PredictedAlg2Pulses(n, ring.MaxID(ids))
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			t.Fatalf("ids=%v: %v", ids, err)
		}
		wantLeader, _ := ring.MaxIndex(ids)
		switch {
		case res.Leader != wantLeader:
			t.Fatalf("ids=%v: leader %d, want %d", ids, res.Leader, wantLeader)
		case res.Sent != pred:
			t.Fatalf("ids=%v: pulses %d, want %d", ids, res.Sent, pred)
		case !res.Quiescent || !res.AllTerminated:
			t.Fatalf("ids=%v: quiescent=%t terminated=%t", ids, res.Quiescent, res.AllTerminated)
		case res.TerminationOrder[n-1] != wantLeader:
			t.Fatalf("ids=%v: leader not last: %v", ids, res.TerminationOrder)
		}
	})
}

// FuzzAlg3Election fuzzes port assignments as well: Theorem 2 must hold
// bit for bit on every wiring.
func FuzzAlg3Election(f *testing.F) {
	f.Add(int64(1), uint8(3), uint16(0b101), false)
	f.Add(int64(9), uint8(6), uint16(0b110011), true)
	f.Add(int64(-3), uint8(1), uint16(1), false)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, flipBits uint16, doubled bool) {
		n := 1 + int(nRaw%10)
		rng := rand.New(rand.NewSource(seed))
		ids := ring.PermutedIDs(n, rng)
		flips := make([]bool, n)
		for i := range flips {
			flips[i] = flipBits&(1<<i) != 0
		}
		topo, err := ring.NonOriented(flips)
		if err != nil {
			t.Fatal(err)
		}
		scheme := core.SchemeSuccessor
		if doubled {
			scheme = core.SchemeDoubled
		}
		ms, err := core.Alg3Machines(n, ids, scheme)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(topo, ms, sim.NewRandom(seed))
		if err != nil {
			t.Fatal(err)
		}
		pred := core.PredictedAlg3Pulses(n, ring.MaxID(ids), scheme)
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			t.Fatalf("ids=%v flips=%v: %v", ids, flips, err)
		}
		wantLeader, _ := ring.MaxIndex(ids)
		if res.Leader != wantLeader || res.Sent != pred || !res.Quiescent {
			t.Fatalf("ids=%v flips=%v: leader=%d want=%d sent=%d pred=%d quiescent=%t",
				ids, flips, res.Leader, wantLeader, res.Sent, pred, res.Quiescent)
		}
	})
}
