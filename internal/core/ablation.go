package core

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Alg2Unguarded is an ABLATION of Algorithm 2: identical except that the
// line-9 guard is removed, i.e. a node consumes counterclockwise pulses
// even before rho_cw >= ID. The paper's correctness argument hinges on the
// counterclockwise instance lagging behind the clockwise one ("by subtly
// prioritizing the execution of the CW algorithm over that of the CCW
// one", Section 3.2); this variant exists to let the test suite and the
// exhaustive model checker demonstrate that the guard is not an artifact:
// without it there are schedules under which a node observes
// rho_ccw > rho_cw before any termination pulse exists and terminates
// prematurely, wrecking quiescent termination.
//
// Never use this machine for anything but ablation studies.
type Alg2Unguarded struct {
	id     uint64
	cwPort pulse.Port

	rhoCW, sigCW   uint64
	rhoCCW, sigCCW uint64

	state      node.State
	termSent   bool
	terminated bool
	err        error
}

// NewAlg2Unguarded returns the ablated machine.
func NewAlg2Unguarded(id uint64, cwPort pulse.Port) (*Alg2Unguarded, error) {
	if id == 0 {
		return nil, fmt.Errorf("core: ID must be positive")
	}
	if !cwPort.Valid() {
		return nil, fmt.Errorf("core: invalid clockwise port %d", cwPort)
	}
	return &Alg2Unguarded{id: id, cwPort: cwPort}, nil
}

func (a *Alg2Unguarded) sendCW(e node.PulseEmitter) {
	a.sigCW++
	e.Send(a.cwPort, pulse.Pulse{})
}

func (a *Alg2Unguarded) sendCCW(e node.PulseEmitter) {
	a.sigCCW++
	e.Send(a.cwPort.Opposite(), pulse.Pulse{})
}

// Init implements node.Machine.
func (a *Alg2Unguarded) Init(e node.PulseEmitter) {
	a.sendCW(e)
	a.after(e)
}

// OnMsg implements node.Machine: Algorithm 2's handler minus the guard on
// counterclockwise consumption.
func (a *Alg2Unguarded) OnMsg(p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	if a.terminated {
		a.err = fmt.Errorf("core: pulse delivered after termination")
		return
	}
	if p == a.cwPort.Opposite() {
		a.rhoCW++
		if a.rhoCW == a.id {
			a.state = node.StateLeader
		} else {
			a.state = node.StateNonLeader
			a.sendCW(e)
		}
	} else {
		// THE ABLATION: no check of rho_cw >= ID here.
		a.rhoCCW++
		switch {
		case a.termSent:
		case a.rhoCCW != a.id:
			a.sendCCW(e)
		}
	}
	a.after(e)
}

func (a *Alg2Unguarded) after(e node.PulseEmitter) {
	if a.rhoCW >= a.id && a.sigCCW == 0 {
		a.sendCCW(e)
	}
	if !a.termSent && a.rhoCW == a.id && a.rhoCCW == a.id {
		a.termSent = true
		a.sendCCW(e)
	}
	if a.rhoCCW > a.rhoCW {
		a.terminated = true
	}
}

// Ready implements node.Machine: both ports always polled — the ablated
// behavior.
func (a *Alg2Unguarded) Ready(pulse.Port) bool { return !a.terminated }

// Status implements node.Machine.
func (a *Alg2Unguarded) Status() node.Status {
	return node.Status{State: a.state, Terminated: a.terminated, Err: a.err}
}

// CloneMachine implements node.Cloneable.
func (a *Alg2Unguarded) CloneMachine() node.PulseMachine {
	cp := *a
	return &cp
}

// StateKey implements node.Cloneable.
func (a *Alg2Unguarded) StateKey() string {
	return fmt.Sprintf("a2u|%d|%d|%d|%d|%d|%d|%d|%t|%t",
		a.id, a.cwPort, a.rhoCW, a.sigCW, a.rhoCCW, a.sigCCW, a.state, a.termSent, a.terminated)
}

// AppendStateKey implements node.KeyAppender: the binary form of StateKey.
func (a *Alg2Unguarded) AppendStateKey(dst []byte) []byte {
	flags := byte(a.state)
	if a.termSent {
		flags |= 1 << 4
	}
	if a.terminated {
		flags |= 1 << 5
	}
	dst = append(dst, 'B', 'U', byte(a.cwPort), flags)
	dst = node.AppendKey64(dst, a.id)
	dst = node.AppendKey64(dst, a.rhoCW)
	dst = node.AppendKey64(dst, a.sigCW)
	dst = node.AppendKey64(dst, a.rhoCCW)
	return node.AppendKey64(dst, a.sigCCW)
}

// SnapshotTo implements node.Undoable: same layout as Alg2.
func (a *Alg2Unguarded) SnapshotTo(buf []byte) []byte {
	flags := byte(a.state)
	if a.termSent {
		flags |= 1 << 4
	}
	if a.terminated {
		flags |= 1 << 5
	}
	buf = node.AppendKey64(buf, a.rhoCW)
	buf = node.AppendKey64(buf, a.sigCW)
	buf = node.AppendKey64(buf, a.rhoCCW)
	buf = node.AppendKey64(buf, a.sigCCW)
	return append(buf, flags)
}

// Restore implements node.Undoable.
func (a *Alg2Unguarded) Restore(snap []byte) {
	a.rhoCW = node.Key64(snap)
	a.sigCW = node.Key64(snap[8:])
	a.rhoCCW = node.Key64(snap[16:])
	a.sigCCW = node.Key64(snap[24:])
	flags := snap[32]
	a.state = node.State(flags & 0xf)
	a.termSent = flags&(1<<4) != 0
	a.terminated = flags&(1<<5) != 0
	a.err = nil
}
