package core

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Alg1 is Algorithm 1: quiescently stabilizing leader election on oriented
// rings using only clockwise pulses.
//
// Each node sends one pulse clockwise at start-up and thereafter relays
// every received pulse, except the single time its received count reaches
// its own ID, when it withholds the pulse and (at least temporarily)
// declares itself leader; any later arrival reverts it to non-leader and is
// relayed again. At quiescence every node has sent and received exactly
// ID_max pulses (Corollary 13) and exactly the maximum-ID nodes hold the
// Leader state (Lemma 16 extends this to non-unique IDs).
//
// The algorithm stabilizes but never terminates: Ready stays true forever.
type Alg1 struct {
	id     uint64
	cwPort pulse.Port // the port leading to the clockwise neighbor
	rhoCW  uint64     // clockwise pulses received
	sigCW  uint64     // clockwise pulses sent
	state  node.State
	err    error
}

// NewAlg1 returns an Algorithm 1 machine for a node with the given positive
// ID whose clockwise neighbor is reached through cwPort.
func NewAlg1(id uint64, cwPort pulse.Port) (*Alg1, error) {
	if id == 0 {
		return nil, fmt.Errorf("core: ID must be positive")
	}
	if !cwPort.Valid() {
		return nil, fmt.Errorf("core: invalid clockwise port %d", cwPort)
	}
	return &Alg1{id: id, cwPort: cwPort}, nil
}

// ID returns the node's identifier.
func (a *Alg1) ID() uint64 { return a.id }

// RhoCW returns the number of clockwise pulses received so far.
func (a *Alg1) RhoCW() uint64 { return a.rhoCW }

// SigCW returns the number of clockwise pulses sent so far.
func (a *Alg1) SigCW() uint64 { return a.sigCW }

// Init implements node.Machine: line 1, sendCW().
func (a *Alg1) Init(e node.PulseEmitter) { a.sendCW(e) }

func (a *Alg1) sendCW(e node.PulseEmitter) {
	a.sigCW++
	e.Send(a.cwPort, pulse.Pulse{})
}

// OnMsg implements node.Machine: the body of Algorithm 1's main loop.
// Clockwise pulses arrive on the counterclockwise port; Algorithm 1 sends
// no counterclockwise pulses, so an arrival on the clockwise port would
// mean the network violated the model and is recorded as a fault.
func (a *Alg1) OnMsg(p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	if p == a.cwPort {
		a.err = fmt.Errorf("core: Alg1 received a counterclockwise pulse on %s", p)
		return
	}
	a.rhoCW++
	if a.rhoCW == a.id {
		a.state = node.StateLeader
		return // withhold this one pulse
	}
	a.state = node.StateNonLeader
	a.sendCW(e)
}

// Ready implements node.Machine: Algorithm 1 never stops polling.
func (a *Alg1) Ready(pulse.Port) bool { return true }

// Status implements node.Machine.
func (a *Alg1) Status() node.Status {
	return node.Status{State: a.state, Err: a.err}
}

// CloneMachine implements node.Cloneable.
func (a *Alg1) CloneMachine() node.PulseMachine {
	cp := *a
	return &cp
}

// StateKey implements node.Cloneable.
func (a *Alg1) StateKey() string {
	return fmt.Sprintf("a1|%d|%d|%d|%d|%d", a.id, a.cwPort, a.rhoCW, a.sigCW, a.state)
}

// AppendStateKey implements node.KeyAppender: the binary form of StateKey.
func (a *Alg1) AppendStateKey(dst []byte) []byte {
	dst = append(dst, 'B', '1', byte(a.cwPort), byte(a.state))
	dst = node.AppendKey64(dst, a.id)
	dst = node.AppendKey64(dst, a.rhoCW)
	return node.AppendKey64(dst, a.sigCW)
}

// SnapshotTo implements node.Undoable: the mutable fields only (id and
// cwPort are construction-time constants).
func (a *Alg1) SnapshotTo(buf []byte) []byte {
	buf = node.AppendKey64(buf, a.rhoCW)
	buf = node.AppendKey64(buf, a.sigCW)
	return append(buf, byte(a.state))
}

// Restore implements node.Undoable.
func (a *Alg1) Restore(snap []byte) {
	a.rhoCW = node.Key64(snap)
	a.sigCW = node.Key64(snap[8:])
	a.state = node.State(snap[16])
	a.err = nil
}
