package lint

// handler-block: the runtimes are event-driven — internal/sim invokes a
// machine's Init/OnMsg inline on the simulation loop, and internal/live
// invokes them on the node's own goroutine, which is also the goroutine
// that consumes the node's conduits. A handler that blocks (a channel
// operation, a mutex acquisition, a WaitGroup wait) therefore stalls the
// very loop that would unblock it: in sim it freezes the whole run, in
// live it deadlocks the node. The model's asynchrony lives in the network,
// never in the handler.
//
// The check walks the module-wide static call graph (callgraph.go) from
// every handler root and flags each blocking operation reachable along it,
// including operations inside helpers declared in other packages:
//
//   - channel send and receive (any channel: even a buffered operation
//     blocks when the buffer is full or empty, so handlers get none);
//   - range over a channel and select without a default clause;
//   - sync.Mutex.Lock, sync.RWMutex.Lock/RLock, sync.WaitGroup.Wait,
//     sync.Cond.Wait.
//
// A root is an Init or OnMsg method of a Config.HandlerPkgs package, or of
// any machine-shaped type — one whose OnMsg takes an instantiation of
// Config.EmitterType — so a new machine package is covered the moment it
// exists, registered or not.
//
// Operations inside a `go` statement's function literal are exempt — the
// spawned goroutine may block, the handler does not — but the statement's
// argument expressions are still evaluated synchronously and stay checked.
// Calls through interfaces and func values devirtualize against the
// module-wide type-set index (callgraph.go): every live implementation of
// the interface method, and every function or closure the module binds to
// the called value, is followed. Only a site with no module candidate ends
// the chain — the residual soundness trade, counted in Result.Devirt.
//
// One interface is deliberately opaque: Config.EmitterType, the model's
// emit primitive. Each runtime's emitter implementation is that runtime's
// own handler-safety obligation — sim's emitter enqueues inline, live's
// hands the pulse to a conduit whose dedicated pump goroutine (never the
// node's own loop) is the consumer — so devirtualizing through it would
// attribute one runtime's internals to every machine's handlers. The
// emitter implementations stay checked in their own right wherever they
// are reachable from a handler root by a concrete path.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// blockingOp is one blocking operation site found in a function body.
type blockingOp struct {
	pos  token.Pos
	desc string
}

// fnFacts records, per declared function/method (or closure literal
// reached through a devirtualized call), its direct blocking operations
// and its direct callees — static and devirtualized alike.
type fnFacts struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	ops     []blockingOp
	callees []calleeRef
}

// factsOf computes (memoized) the blocking facts of a function anywhere in
// the module, or nil when its body is out of reach.
func (g *moduleGraph) factsOf(fn *types.Func) *fnFacts {
	if ff, ok := g.facts[fn]; ok {
		return ff
	}
	d := g.declOf(fn)
	if d == nil {
		g.facts[fn] = nil
		return nil
	}
	ff := &fnFacts{decl: d.decl, obj: fn}
	g.facts[fn] = ff // pre-memo so recursive call chains terminate
	collectBlocking(g, d.pkg, d.decl.Body, ff)
	return ff
}

// litFactsOf is factsOf for a closure literal reached through a
// devirtualized func-value call; p is the package whose Info covers it.
func (g *moduleGraph) litFactsOf(lit *ast.FuncLit, p *Package) *fnFacts {
	if ff, ok := g.litFacts[lit]; ok {
		return ff
	}
	if p == nil {
		g.litFacts[lit] = nil
		return nil
	}
	ff := &fnFacts{}
	g.litFacts[lit] = ff // pre-memo so recursive chains terminate
	collectBlocking(g, p, lit.Body, ff)
	return ff
}

func checkHandlerBlock(r *Runner, p *Package, report func(token.Pos, string, string)) {
	g := r.module()
	g.add(p)

	handlerPkg := matchPath(p.Path, r.Config.HandlerPkgs)
	var roots []*types.Func
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if fd.Name.Name != "Init" && fd.Name.Name != "OnMsg" {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if handlerPkg || machineShaped(r, obj) {
				roots = append(roots, obj)
			}
		}
	}
	if len(roots) == 0 {
		return
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	// Reachability from each handler root over the module-wide call graph;
	// an op is reported once per analyzed package, attributed to the first
	// (alphabetical) handler that reaches it so output stays deterministic.
	reported := make(map[token.Pos]bool)
	for _, root := range roots {
		seenFn := make(map[*types.Func]bool)
		seenLit := make(map[*ast.FuncLit]bool)
		var visit func(c calleeRef)
		visit = func(c calleeRef) {
			var ff *fnFacts
			switch {
			case c.fn != nil:
				if seenFn[c.fn] {
					return
				}
				seenFn[c.fn] = true
				ff = g.factsOf(c.fn)
			case c.lit != nil:
				if seenLit[c.lit] {
					return
				}
				seenLit[c.lit] = true
				ff = g.litFactsOf(c.lit, c.pkg)
			}
			if ff == nil {
				return
			}
			for _, op := range ff.ops {
				if reported[op.pos] {
					continue
				}
				reported[op.pos] = true
				report(op.pos, CheckHandlerBlock,
					fmt.Sprintf("blocking %s reachable from event handler %s (handlers run inline on the runtime's event loop and must never block)",
						op.desc, root.FullName()))
			}
			for _, cc := range ff.callees {
				visit(cc)
			}
		}
		visit(calleeRef{fn: root})
	}
}

// machineShaped reports whether fn is a handler method of a type whose
// OnMsg takes an instantiation of Config.EmitterType — the signature every
// node.Machine implementation shares.
func machineShaped(r *Runner, fn *types.Func) bool {
	want := r.Config.EmitterType
	if want == "" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	onMsg := lookupMethod(sig.Recv().Type(), "OnMsg")
	if onMsg == nil {
		return false
	}
	msig, ok := onMsg.Type().(*types.Signature)
	if !ok || msig.Params().Len() == 0 {
		return false
	}
	last := msig.Params().At(msig.Params().Len() - 1).Type()
	return namedPath(last) == want
}

// lookupMethod finds a method in t's method set (through embedding), or nil.
func lookupMethod(t types.Type, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	fn, _ := obj.(*types.Func)
	return fn
}

// namedPath renders a (possibly aliased or instantiated) named type as
// "import/path.Name", or "" for unnamed types. Instantiations report their
// generic origin, so node.Emitter[pulse.Pulse] matches
// "coleader/internal/node.Emitter".
func namedPath(t types.Type) string {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// collectBlocking walks a function body recording direct blocking
// operations and direct callees — concrete callees directly, dynamic sites
// (interface methods, func values) through the devirtualization index.
// Function literals are treated as part of the enclosing body (they may
// run synchronously) except when they are the function of a `go`
// statement.
func collectBlocking(g *moduleGraph, p *Package, body ast.Node, ff *fnFacts) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned callee may block freely; its argument
			// expressions are evaluated on the handler's goroutine.
			for _, arg := range n.Call.Args {
				walk(arg)
			}
			if _, isLit := unparen(n.Call.Fun).(*ast.FuncLit); !isLit {
				walk(n.Call.Fun)
			}
			return
		case *ast.SendStmt:
			ff.ops = append(ff.ops, blockingOp{n.Arrow, "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ff.ops = append(ff.ops, blockingOp{n.OpPos, "channel receive"})
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					ff.ops = append(ff.ops, blockingOp{n.For, "range over channel"})
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				ff.ops = append(ff.ops, blockingOp{n.Select, "select without default"})
			}
			// Still walk the bodies for nested ops; the comm clauses'
			// channel operations themselves are subsumed by the select.
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						walk(s)
					}
				}
			}
			return
		case *ast.CallExpr:
			if fn := calleeFunc(p, n.Fun); fn != nil {
				if desc := blockingSyncCall(fn); desc != "" {
					ff.ops = append(ff.ops, blockingOp{n.Pos(), desc})
				} else if fn.Pkg() != nil {
					// Resolution to a body happens lazily in factsOf; an
					// unresolvable callee (stdlib) just ends the chain.
					ff.callees = append(ff.callees, calleeRef{fn: fn})
				}
			} else if !emitterCall(g.r, p, n) {
				// Dynamic site: follow every devirtualized candidate. An
				// unresolvable site has none and ends the chain there.
				if cands, kind := g.resolveCall(p, n); kind != siteStatic {
					ff.callees = append(ff.callees, cands...)
				}
			}
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c)
			return false
		})
	}
	walk(body)
}

// emitterCall reports whether a call is a method call through the
// configured emitter interface — the emit primitive handler-block treats
// as opaque (see the file comment).
func emitterCall(r *Runner, p *Package, call *ast.CallExpr) bool {
	want := r.Config.EmitterType
	if want == "" {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := p.Info.Selections[sel]
	if !ok {
		return false
	}
	if _, isIface := s.Recv().Underlying().(*types.Interface); !isIface {
		return false
	}
	return namedPath(s.Recv()) == want
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call's function expression to the concrete
// function or method object, or nil (interface methods, func values).
func calleeFunc(p *Package, fun ast.Expr) *types.Func {
	switch fun := unparen(fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[fun]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				// Methods of interface types cannot be resolved to a body.
				if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
					return nil
				}
				return fn
			}
			return nil
		}
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// blockingSyncCall names the blocking sync primitive a method call is, or
// "" if the callee is not one.
func blockingSyncCall(fn *types.Func) string {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	switch named.Obj().Name() + "." + fn.Name() {
	case "Mutex.Lock", "RWMutex.Lock", "RWMutex.RLock",
		"WaitGroup.Wait", "Cond.Wait":
		return "sync." + named.Obj().Name() + "." + fn.Name()
	}
	return ""
}
