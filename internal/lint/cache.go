package lint

// Analysis cache. A cold oblint run type-checks the module and the stdlib
// packages it imports from source (3-4 s); nothing in that cost changes
// between runs unless source changes. Every check is per-package
// (Runner.RunPackage), and even the interprocedural ones (handler-block,
// oblivious-taint, state-*, conc-*) are deterministic functions of the
// package's own syntax plus module sources. A package's verdict can
// therefore be keyed by content hashes and replayed without loading
// anything:
//
//	key(P) = H(format version ‖ Go version ‖ policy JSON ‖ analyzer
//	          sources ‖ module type-set digest ‖ for every package in P's
//	          transitive module-internal closure: path ‖ file names ‖
//	          file hashes)
//
// The Go version stands in for the stdlib's export data, the policy JSON
// invalidates on any Config edit, and the analyzer-source term (the
// internal/lint and cmd/oblint file hashes, which the module scan already
// computed) invalidates every entry when the checks themselves change —
// the classic staleness bug of finding caches.
//
// The closure term covers the reach of *static* call chains: Go forbids
// import cycles, so a static call from package P only reaches bodies in
// P's import closure. Devirtualization (callgraph.go) broke that locality:
// an interface method call in P can resolve to an implementation declared
// in a package P never imports, and the candidate set itself depends on
// every package's method sets, instantiations, and func-value bindings.
// The v3 key therefore folds a module-wide type-set digest — the file
// hashes of every module package — into the run-wide salt. The trade is
// deliberate: any edit anywhere now invalidates every entry (a cold run
// costs 1-2 s), but a warm no-edit run still hits 100% and stays within
// the 50 ms CI budget, and no entry can ever replay a verdict whose
// devirtualized edges went stale. Each entry also records its closure
// digest (DepsDigest), purely for observability — `jq .depsDigest` on two
// entries answers "did a dependency change?" without re-deriving keys.
// Computing the keys needs only an imports-only parse of each file, so a
// fully warm run does no type-checking at all and finishes in tens of
// milliseconds.
//
// Entries store module-root-relative paths (and the package's
// dynamic-call-site resolution stats, replayed into Result.Devirt) and
// are rehydrated to absolute on read, so cached and fresh results are
// byte-identical downstream.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// cacheFormatVersion salts every key; bump it when the entry schema or key
// derivation changes. v3: devirtualized call graph (module-wide type-set
// digest in the salt), per-entry Devirt stats, conc-* check family.
const cacheFormatVersion = "oblint-cache-v3"

// CacheStats reports how a cached run split between replay and analysis.
type CacheStats struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// cacheEntry is one package's stored verdict. File paths are relative to
// the module root. Deps and DepsDigest restate the closure term already
// folded into the entry's key — they never influence replay, but make
// stale-entry investigations answerable from the cache dir alone.
type cacheEntry struct {
	Findings   []Finding   `json:"findings"`
	Suppressed []Finding   `json:"suppressed,omitempty"`
	TypeErrors []string    `json:"type_errors,omitempty"`
	Devirt     DevirtStats `json:"devirt"`
	Deps       []string    `json:"deps,omitempty"`
	DepsDigest string      `json:"depsDigest,omitempty"`
}

// scanPkg is one module package as seen by the cheap (imports-only) scan.
type scanPkg struct {
	path     string
	dir      string
	fileHash string   // combined name+content hash of the package's files
	imports  []string // module-internal imports only
}

// scanModule hashes every module package and records its module-internal
// import edges, using imports-only parses (no type-checking).
func scanModule(root, module string) (map[string]*scanPkg, []string, error) {
	dirs, err := modulePackageDirs(root, module)
	if err != nil {
		return nil, nil, err
	}
	pkgs := make(map[string]*scanPkg, len(dirs))
	order := make([]string, 0, len(dirs))
	fset := token.NewFileSet()
	for _, d := range dirs {
		sp := &scanPkg{path: d.Path, dir: d.Dir}
		ents, err := os.ReadDir(d.Dir)
		if err != nil {
			return nil, nil, err
		}
		h := sha256.New()
		seen := make(map[string]bool)
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			full := filepath.Join(d.Dir, name)
			data, err := os.ReadFile(full)
			if err != nil {
				return nil, nil, err
			}
			fmt.Fprintf(h, "%s\x00%x\x00", name, sha256.Sum256(data))
			f, err := parser.ParseFile(fset, full, data, parser.ImportsOnly)
			if err != nil {
				// Unparseable files make the package uncacheable but must
				// not kill the scan; the loader will surface the error.
				continue
			}
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if (ip == module || strings.HasPrefix(ip, module+"/")) && !seen[ip] {
					seen[ip] = true
					sp.imports = append(sp.imports, ip)
				}
			}
		}
		sort.Strings(sp.imports)
		sp.fileHash = hex.EncodeToString(h.Sum(nil))
		pkgs[sp.path] = sp
		order = append(order, sp.path)
	}
	return pkgs, order, nil
}

// closure returns the sorted transitive module-internal closure of path
// (including path itself) over the scan graph.
func closure(pkgs map[string]*scanPkg, path string) []string {
	seen := make(map[string]bool)
	var visit func(ip string)
	visit = func(ip string) {
		if seen[ip] || pkgs[ip] == nil {
			return
		}
		seen[ip] = true
		for _, dep := range pkgs[ip].imports {
			visit(dep)
		}
	}
	visit(path)
	out := make([]string, 0, len(seen))
	for ip := range seen {
		out = append(out, ip)
	}
	sort.Strings(out)
	return out
}

// cacheSalt derives the run-wide key prefix: analyzer identity, policy,
// and the module-wide type-set digest. The analyzer-source term uses the
// scan's own hashes for internal/lint and cmd/oblint, so editing a check
// invalidates everything; the type-set term hashes every module package,
// because devirtualized candidate sets (method sets, liveness, func-value
// bindings — callgraph.go) are derived from the whole module, outside any
// one package's import closure.
func cacheSalt(pkgs map[string]*scanPkg, module string, cfg Config) (string, error) {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00", cacheFormatVersion, runtime.Version(), cfgJSON)
	for _, self := range []string{module + "/internal/lint", module + "/cmd/oblint"} {
		if sp := pkgs[self]; sp != nil {
			fmt.Fprintf(h, "%s\x00%s\x00", self, sp.fileHash)
		}
	}
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		fmt.Fprintf(h, "%s\x00%s\x00", path, pkgs[path].fileHash)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// pkgKey is the cache key for one package: salt plus the file hashes of
// its transitive module-internal closure.
func pkgKey(pkgs map[string]*scanPkg, salt, path string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00", salt)
	for _, ip := range closure(pkgs, path) {
		fmt.Fprintf(h, "%s\x00%s\x00", ip, pkgs[ip].fileHash)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// depsDigest hashes the file hashes of a package's closure minus the
// run-wide salt: the cross-package dependency term of its key, stored in
// entries for observability.
func depsDigest(pkgs map[string]*scanPkg, deps []string) string {
	h := sha256.New()
	for _, ip := range deps {
		fmt.Fprintf(h, "%s\x00%s\x00", ip, pkgs[ip].fileHash)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RunCached lints every package of the module rooted at root under cfg,
// replaying cached per-package verdicts for packages whose transitive
// sources are unchanged and analyzing only the rest. It returns the merged
// result (file paths absolute, exactly as an uncached Runner.Run over
// LoadAll would), the formatted soft type errors, and hit/miss stats.
// cacheDir is created on demand; a corrupt or unreadable entry counts as a
// miss, never an error.
func RunCached(root, module string, cfg Config, cacheDir string) (Result, []string, CacheStats, error) {
	var stats CacheStats
	pkgs, order, err := scanModule(root, module)
	if err != nil {
		return Result{}, nil, stats, err
	}
	salt, err := cacheSalt(pkgs, module, cfg)
	if err != nil {
		return Result{}, nil, stats, err
	}

	var res Result
	var typeErrs []string
	var loader *Loader
	var runner *Runner
	for _, ip := range order {
		key := pkgKey(pkgs, salt, ip)
		path := filepath.Join(cacheDir, key+".json")
		if ent, ok := readEntry(path); ok {
			stats.Hits++
			res.Findings = append(res.Findings, absolutize(ent.Findings, root)...)
			res.Suppressed = append(res.Suppressed, absolutize(ent.Suppressed, root)...)
			res.Devirt.Add(ent.Devirt)
			typeErrs = append(typeErrs, ent.TypeErrors...)
			continue
		}
		stats.Misses++
		if loader == nil {
			loader = NewLoader(root, module)
			// The interprocedural checks resolve call chains through the
			// same loader, so type objects are shared across packages; the
			// devirtualization index enumerates the module through the
			// scan's package list.
			runner = &Runner{Config: cfg, Fset: loader.Fset, Resolve: loader.Load,
				List: func() []string { return order }}
		}
		p, err := loader.Load(ip)
		if err != nil {
			return Result{}, nil, stats, fmt.Errorf("load %s: %w", ip, err)
		}
		pr := runner.RunPackage(p)
		deps := closure(pkgs, ip)
		ent := cacheEntry{
			Findings:   relativizeFindings(pr.Findings, root),
			Suppressed: relativizeFindings(pr.Suppressed, root),
			Devirt:     pr.Devirt,
			Deps:       deps,
			DepsDigest: depsDigest(pkgs, deps),
		}
		for _, e := range p.TypeErrors {
			ent.TypeErrors = append(ent.TypeErrors, fmt.Sprintf("typecheck %s: %v", ip, e))
		}
		writeEntry(path, ent)
		res.Findings = append(res.Findings, pr.Findings...)
		res.Suppressed = append(res.Suppressed, pr.Suppressed...)
		res.Devirt.Add(pr.Devirt)
		typeErrs = append(typeErrs, ent.TypeErrors...)
	}
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res, typeErrs, stats, nil
}

func readEntry(path string) (cacheEntry, bool) {
	var ent cacheEntry
	data, err := os.ReadFile(path)
	if err != nil {
		return ent, false
	}
	if err := json.Unmarshal(data, &ent); err != nil {
		return ent, false
	}
	return ent, true
}

// writeEntry stores an entry atomically (write-then-rename) so a killed
// run can never leave a truncated entry behind. Failures are deliberately
// ignored: the cache is an accelerator, not a correctness dependency.
func writeEntry(path string, ent cacheEntry) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(ent, "", "  ")
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// relativizeFindings rewrites finding paths relative to root (slashed) for
// storage; absolutize is its inverse on read.
func relativizeFindings(fs []Finding, root string) []Finding {
	out := make([]Finding, len(fs))
	for i, f := range fs {
		if rel, err := filepath.Rel(root, f.File); err == nil {
			f.File = filepath.ToSlash(rel)
		}
		out[i] = f
	}
	return out
}

func absolutize(fs []Finding, root string) []Finding {
	out := make([]Finding, len(fs))
	for i, f := range fs {
		if !filepath.IsAbs(f.File) {
			f.File = filepath.Join(root, filepath.FromSlash(f.File))
		}
		out[i] = f
	}
	return out
}
