package lint

// oblivious-taint: a flow-sensitive complement to oblivious-payload. The
// syntactic check catches a handler that branches on its payload parameter
// directly; this one tracks values *derived* from a payload — through
// assignments, composite literals, struct fields, function returns,
// closures, and (since the module-wide rewrite) call arguments crossing
// function and package boundaries — and flags any branch whose condition
// depends on one. Under the paper's model a pulse carries zero information,
// so payload-dependent control flow anywhere reachable from an oblivious
// package is a soundness hole even when the payload parameter itself never
// appears in a condition.
//
// The analysis is a def-use fixed point over go/types objects, built on
// the standard library only:
//
//   - scope: the analyzed oblivious package plus every module package it
//     transitively imports (resolved through callgraph.go), so taint
//     follows a payload handed to a helper in another package;
//   - seeds: every named parameter of the pulse type in any function,
//     method, or closure of the analyzed package (the payload enters the
//     module only through handler parameters);
//   - propagation: an assignment (including := and tuple forms), variable
//     declaration with initializer, or range clause whose source is
//     tainted taints its targets; a keyed struct literal taints both the
//     literal and the named field object; a function or closure returning
//     a tainted value taints every call of it (a closure stored in a
//     variable taints calls through that variable); a call passing a
//     tainted argument taints the callee's parameter object, and a method
//     call on a tainted value taints the method's receiver object —
//     parameter and receiver objects are shared with the callee's body
//     under one Loader, so the taint is visible wherever the body is.
//     Dynamic calls (interface methods, func values) devirtualize against
//     the module-wide type-set index (callgraph.go): every candidate
//     callee's parameters and receiver taint, and a call is result-tainted
//     when any candidate is — an over-approximation, the safe direction
//     for a taint analysis;
//   - sinks: if/for conditions, switch tags and case expressions, and
//     type-switch subjects — reported in the analyzed package always, and
//     in scope packages that are not themselves oblivious (an oblivious
//     dependency reports its own sinks when its turn comes, never twice).
//
// The seed set is deliberately exactly the pulse-typed parameters. In
// particular the count parameter of the batch interfaces —
// node.BatchMachine.OnPulses(p, k, e) and its flat twin — is a plain
// uint64 and never seeds: a run length is arrival multiplicity, the one
// quantity a content-oblivious channel legitimately conveys (k queued
// pulses ARE the integer k), so branching on it is as model-legal as
// branching on the port. The pulse-typed port parameter p doesn't seed
// either (ports are wiring, not content; only the payload type
// configured as PulseType does). What the batch path cannot do is
// launder content through the handler: a payload stashed by OnMsg into
// a field and branched on inside OnPulses is payload-derived control
// flow like any other and still fires — fixt/taint's Batched fixture
// pins both halves of this contract.
//
// Taint is field-granular (a tainted assignment to s.f taints the field
// object f, not the whole struct), branch-sensitive at the sink (every
// condition, tag, and case expression is tested separately), and monotone,
// so the fixed point terminates; it is deliberately conservative (a
// variable once tainted stays tainted) because in this model there is no
// legitimate way to launder a payload.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// taintState is the monotone fact base of the fixed point. p is the
// package currently being walked (facts themselves are cross-package:
// go/types objects are shared under one Loader); g resolves call sites,
// including dynamic ones, through the module graph.
type taintState struct {
	p *Package
	g *moduleGraph

	// objs holds tainted variables: parameters, locals, struct fields,
	// receivers, and package-level vars.
	objs map[types.Object]bool

	// funcs holds callables whose call results are tainted: declared
	// functions/methods (*types.Func) and variables bound to tainted
	// closures (*types.Var).
	funcs map[types.Object]bool

	// lits holds closure literals whose results are tainted.
	lits map[*ast.FuncLit]bool

	changed bool
}

func (s *taintState) taintObj(o types.Object) {
	if o == nil || s.objs[o] {
		return
	}
	s.objs[o] = true
	s.changed = true
}

func (s *taintState) taintFunc(o types.Object) {
	if o == nil || s.funcs[o] {
		return
	}
	s.funcs[o] = true
	s.changed = true
}

func (s *taintState) taintLit(fl *ast.FuncLit) {
	if fl == nil || s.lits[fl] {
		return
	}
	s.lits[fl] = true
	s.changed = true
}

func checkObliviousTaint(r *Runner, p *Package, report func(token.Pos, string, string)) {
	if !matchPath(p.Path, r.Config.Oblivious) {
		return
	}
	g := r.module()
	scope := taintScope(g, p)
	st := &taintState{
		p:     p,
		g:     g,
		objs:  make(map[types.Object]bool),
		funcs: make(map[types.Object]bool),
		lits:  make(map[*ast.FuncLit]bool),
	}

	// Seed: every named pulse-typed parameter in the analyzed package. The
	// payload reaches an algorithm only as a parameter (handlers and the
	// helpers they forward to), so parameters are the complete source set;
	// dependency packages pick up taint through call-argument propagation,
	// never by seeding (their own pulse params are their own analysis).
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var params *ast.FieldList
			switch n := n.(type) {
			case *ast.FuncDecl:
				params = n.Type.Params
			case *ast.FuncLit:
				params = n.Type.Params
			default:
				return true
			}
			for _, field := range params.List {
				for _, name := range field.Names {
					v, ok := p.Info.Defs[name].(*types.Var)
					if ok && name.Name != "_" && typeName(v.Type()) == r.Config.PulseType {
						st.objs[v] = true
					}
				}
			}
			return true
		})
	}
	if len(st.objs) == 0 {
		return
	}

	// Fixed point: propagate until no new object, function, or closure
	// becomes tainted, across every package in scope.
	for {
		st.changed = false
		for _, sp := range scope {
			st.p = sp
			for _, f := range sp.Files {
				propagateTaint(st, f)
			}
		}
		if !st.changed {
			break
		}
	}

	// Sinks: payload-derived control flow. Oblivious dependencies own
	// their sinks (they are analyzed in their own right with their own
	// seeds plus the shared object facts); skipping them here keeps each
	// finding attributed to exactly one package.
	for _, sp := range scope {
		if sp != p && matchPath(sp.Path, r.Config.Oblivious) {
			continue
		}
		st.p = sp
		for _, f := range sp.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IfStmt:
					reportTaintedCond(st, n.Cond, report)
				case *ast.ForStmt:
					reportTaintedCond(st, n.Cond, report)
				case *ast.SwitchStmt:
					reportTaintedCond(st, n.Tag, report)
					for _, cc := range caseExprs(n.Body) {
						reportTaintedCond(st, cc, report)
					}
				case *ast.TypeSwitchStmt:
					if a, ok := n.Assign.(*ast.ExprStmt); ok {
						if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
							reportTaintedCond(st, ta.X, report)
						}
					}
				}
				return true
			})
		}
	}
}

// taintScope returns the analyzed package followed by its transitive
// module-resolvable imports in deterministic (breadth-first, sorted)
// order.
func taintScope(g *moduleGraph, p *Package) []*Package {
	g.add(p)
	scope := []*Package{p}
	seen := map[string]bool{p.Path: true}
	for i := 0; i < len(scope); i++ {
		imps := scope[i].Types.Imports()
		paths := make([]string, 0, len(imps))
		for _, imp := range imps {
			paths = append(paths, imp.Path())
		}
		sort.Strings(paths)
		for _, path := range paths {
			if seen[path] {
				continue
			}
			seen[path] = true
			if dp := g.resolve(path); dp != nil {
				scope = append(scope, dp)
			}
		}
	}
	return scope
}

func caseExprs(body *ast.BlockStmt) []ast.Expr {
	var out []ast.Expr
	for _, stmt := range body.List {
		if cc, ok := stmt.(*ast.CaseClause); ok {
			out = append(out, cc.List...)
		}
	}
	return out
}

func reportTaintedCond(st *taintState, cond ast.Expr, report func(token.Pos, string, string)) {
	if cond == nil || !exprTainted(st, cond) {
		return
	}
	report(cond.Pos(), CheckObliviousTaint,
		fmt.Sprintf("branch condition %q is derived from a pulse payload (content-obliviousness: behaviour may depend only on arrival order and ports, and a pulse carries no information)",
			types.ExprString(cond)))
}

// propagateTaint runs one monotone propagation pass over a file.
func propagateTaint(st *taintState, f *ast.File) {
	// funcStack tracks the enclosing function for return statements:
	// either an *ast.FuncDecl or an *ast.FuncLit.
	var funcStack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		pushed := false
		switch n := n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			funcStack = append(funcStack, n)
			pushed = true
		case *ast.AssignStmt:
			propagateAssign(st, n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, name := range n.Names {
				lhs[i] = name
			}
			propagateAssign(st, lhs, n.Values)
		case *ast.RangeStmt:
			if exprTainted(st, n.X) {
				taintTarget(st, n.Key)
				taintTarget(st, n.Value)
			}
		case *ast.CallExpr:
			propagateCall(st, n)
		case *ast.ReturnStmt:
			if len(funcStack) > 0 && anyTainted(st, n.Results) {
				taintEnclosing(st, funcStack[len(funcStack)-1])
			}
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c)
			return false
		})
		if pushed {
			funcStack = funcStack[:len(funcStack)-1]
		}
	}
	walk(f)
}

// propagateCall carries taint into a call: a tainted argument taints the
// matching parameter object of every candidate callee — the concrete one
// for static calls, every devirtualized implementation or bound closure
// for dynamic ones — and a tainted method-call base taints each
// candidate's receiver object. The objects are the very ones the callee
// body's identifiers resolve to, so the fixed point picks the taint up
// inside the body on the next pass — in whatever package the body lives.
func propagateCall(st *taintState, call *ast.CallExpr) {
	if tv, ok := st.p.Info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return // conversions/builtins: handled by exprTainted pass-through
	}
	cands, _ := st.g.resolveCall(st.p, call)
	for _, c := range cands {
		sig := c.sig()
		if sig == nil {
			continue
		}
		if recv := sig.Recv(); recv != nil {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && exprTainted(st, sel.X) {
				st.taintObj(recv)
			}
		}
		np := sig.Params().Len()
		if np == 0 {
			continue
		}
		for i, arg := range call.Args {
			if !exprTainted(st, arg) {
				continue
			}
			pi := i
			if pi >= np {
				if !sig.Variadic() {
					continue
				}
				pi = np - 1
			}
			st.taintObj(sig.Params().At(pi))
		}
	}
}

func taintEnclosing(st *taintState, fn ast.Node) {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		st.taintFunc(st.p.Info.Defs[fn.Name])
	case *ast.FuncLit:
		st.taintLit(fn)
	}
}

func anyTainted(st *taintState, exprs []ast.Expr) bool {
	for _, e := range exprs {
		if exprTainted(st, e) {
			return true
		}
	}
	return false
}

// propagateAssign handles both pairwise (a, b = x, y) and tuple
// (a, b = f()) assignment shapes.
func propagateAssign(st *taintState, lhs, rhs []ast.Expr) {
	switch {
	case len(rhs) == 1 && len(lhs) > 1:
		if exprTainted(st, rhs[0]) {
			for _, l := range lhs {
				taintTarget(st, l)
			}
		}
	default:
		for i, r := range rhs {
			if i >= len(lhs) {
				break
			}
			// Binding a closure to a variable carries the closure's
			// result-taint onto the variable, so calls through it taint.
			if fl, ok := unparen(r).(*ast.FuncLit); ok && st.lits[fl] {
				if id, ok := unparen(lhs[i]).(*ast.Ident); ok {
					st.taintFunc(objOf(st.p, id))
				}
			}
			if exprTainted(st, r) {
				taintTarget(st, lhs[i])
			}
		}
	}
}

// taintTarget taints the object an assignment target stores into: an
// identifier, a struct field selector, or the base of an index/deref.
func taintTarget(st *taintState, e ast.Expr) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		st.taintObj(objOf(st.p, e))
	case *ast.SelectorExpr:
		if s, ok := st.p.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			st.taintObj(s.Obj())
		}
	case *ast.IndexExpr:
		taintTarget(st, e.X)
	case *ast.StarExpr:
		taintTarget(st, e.X)
	}
}

// objOf resolves an identifier to its object in either Defs or Uses.
func objOf(p *Package, id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// exprTainted reports whether the value of e derives from a pulse payload
// under the current fact base.
func exprTainted(st *taintState, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return st.objs[objOf(st.p, e)]
	case *ast.SelectorExpr:
		if s, ok := st.p.Info.Selections[e]; ok {
			if st.objs[s.Obj()] {
				return true
			}
		}
		// A field of a tainted struct value is tainted even if the field
		// object itself never appeared on an assignment's left-hand side.
		return exprTainted(st, e.X)
	case *ast.CallExpr:
		if tv, ok := st.p.Info.Types[e.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
			// Conversions and builtins (len, cap, ...) pass taint through.
			return anyTainted(st, e.Args)
		}
		switch fun := unparen(e.Fun).(type) {
		case *ast.Ident:
			if st.funcs[objOf(st.p, fun)] {
				return true
			}
		case *ast.SelectorExpr:
			if st.funcs[st.p.Info.Uses[fun.Sel]] {
				return true
			}
		case *ast.FuncLit:
			if st.lits[fun] {
				return true
			}
		}
		// A devirtualized dynamic call is result-tainted when any candidate
		// callee is (the candidates' own result-taint is established by the
		// return-statement pass over their bodies).
		cands, _ := st.g.resolveCall(st.p, e)
		for _, c := range cands {
			if (c.fn != nil && st.funcs[c.fn]) || (c.lit != nil && st.lits[c.lit]) {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return exprTainted(st, e.X) || exprTainted(st, e.Y)
	case *ast.UnaryExpr:
		return exprTainted(st, e.X)
	case *ast.StarExpr:
		return exprTainted(st, e.X)
	case *ast.ParenExpr:
		return exprTainted(st, e.X)
	case *ast.TypeAssertExpr:
		return exprTainted(st, e.X)
	case *ast.IndexExpr:
		return exprTainted(st, e.X)
	case *ast.SliceExpr:
		return exprTainted(st, e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
				// A keyed struct literal also taints the field object, so
				// later reads through any value of the type are caught.
				if exprTainted(st, v) {
					if key, ok := kv.Key.(*ast.Ident); ok {
						st.taintObj(st.p.Info.Uses[key])
					}
				}
			}
			if exprTainted(st, v) {
				return true
			}
		}
		return false
	}
	return false
}
