package lint

// oblivious-taint: a flow-sensitive complement to oblivious-payload. The
// syntactic check catches a handler that branches on its payload parameter
// directly; this one tracks values *derived* from a payload — through
// assignments, composite literals, struct fields, function returns, and
// closures — and flags any branch whose condition depends on one. Under
// the paper's model a pulse carries zero information, so payload-dependent
// control flow anywhere in an oblivious package is a soundness hole even
// when the payload parameter itself never appears in a condition.
//
// The analysis is a def-use fixed point over go/types objects, built on
// the standard library only:
//
//   - seeds: every named parameter of the pulse type in any function,
//     method, or closure of an oblivious package;
//   - propagation: an assignment (including := and tuple forms), variable
//     declaration with initializer, or range clause whose source is
//     tainted taints its targets; a keyed struct literal taints both the
//     literal and the named field object; a function or closure returning
//     a tainted value taints every call of it (a closure stored in a
//     variable taints calls through that variable);
//   - sinks: if/for conditions, switch tags and case expressions, and
//     type-switch subjects.
//
// Taint is object-granular and monotone, so the fixed point terminates;
// it is deliberately conservative (a variable once tainted stays tainted)
// because in this model there is no legitimate way to launder a payload.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// taintState is the monotone fact base of the fixed point.
type taintState struct {
	p *Package

	// objs holds tainted variables: parameters, locals, struct fields,
	// and package-level vars.
	objs map[types.Object]bool

	// funcs holds callables whose call results are tainted: declared
	// functions/methods (*types.Func) and variables bound to tainted
	// closures (*types.Var).
	funcs map[types.Object]bool

	// lits holds closure literals whose results are tainted.
	lits map[*ast.FuncLit]bool

	changed bool
}

func (s *taintState) taintObj(o types.Object) {
	if o == nil || s.objs[o] {
		return
	}
	s.objs[o] = true
	s.changed = true
}

func (s *taintState) taintFunc(o types.Object) {
	if o == nil || s.funcs[o] {
		return
	}
	s.funcs[o] = true
	s.changed = true
}

func (s *taintState) taintLit(fl *ast.FuncLit) {
	if fl == nil || s.lits[fl] {
		return
	}
	s.lits[fl] = true
	s.changed = true
}

func checkObliviousTaint(r *Runner, p *Package, report func(token.Pos, string, string)) {
	if !matchPath(p.Path, r.Config.Oblivious) {
		return
	}
	st := &taintState{
		p:     p,
		objs:  make(map[types.Object]bool),
		funcs: make(map[types.Object]bool),
		lits:  make(map[*ast.FuncLit]bool),
	}

	// Seed: every named pulse-typed parameter in the package. The payload
	// reaches an algorithm only as a parameter (handlers and the helpers
	// they forward to), so parameters are the complete source set.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var params *ast.FieldList
			switch n := n.(type) {
			case *ast.FuncDecl:
				params = n.Type.Params
			case *ast.FuncLit:
				params = n.Type.Params
			default:
				return true
			}
			for _, field := range params.List {
				for _, name := range field.Names {
					v, ok := p.Info.Defs[name].(*types.Var)
					if ok && name.Name != "_" && typeName(v.Type()) == r.Config.PulseType {
						st.objs[v] = true
					}
				}
			}
			return true
		})
	}
	if len(st.objs) == 0 {
		return
	}

	// Fixed point: propagate until no new object, function, or closure
	// becomes tainted.
	for {
		st.changed = false
		for _, f := range p.Files {
			propagateTaint(st, f)
		}
		if !st.changed {
			break
		}
	}

	// Sinks: payload-derived control flow.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IfStmt:
				reportTaintedCond(st, n.Cond, report)
			case *ast.ForStmt:
				reportTaintedCond(st, n.Cond, report)
			case *ast.SwitchStmt:
				reportTaintedCond(st, n.Tag, report)
				for _, cc := range caseExprs(n.Body) {
					reportTaintedCond(st, cc, report)
				}
			case *ast.TypeSwitchStmt:
				if a, ok := n.Assign.(*ast.ExprStmt); ok {
					if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
						reportTaintedCond(st, ta.X, report)
					}
				}
			}
			return true
		})
	}
}

func caseExprs(body *ast.BlockStmt) []ast.Expr {
	var out []ast.Expr
	for _, stmt := range body.List {
		if cc, ok := stmt.(*ast.CaseClause); ok {
			out = append(out, cc.List...)
		}
	}
	return out
}

func reportTaintedCond(st *taintState, cond ast.Expr, report func(token.Pos, string, string)) {
	if cond == nil || !exprTainted(st, cond) {
		return
	}
	report(cond.Pos(), CheckObliviousTaint,
		fmt.Sprintf("branch condition %q is derived from a pulse payload (content-obliviousness: behaviour may depend only on arrival order and ports, and a pulse carries no information)",
			types.ExprString(cond)))
}

// propagateTaint runs one monotone propagation pass over a file.
func propagateTaint(st *taintState, f *ast.File) {
	// funcStack tracks the enclosing function for return statements:
	// either an *ast.FuncDecl or an *ast.FuncLit.
	var funcStack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		pushed := false
		switch n := n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			funcStack = append(funcStack, n)
			pushed = true
		case *ast.AssignStmt:
			propagateAssign(st, n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, name := range n.Names {
				lhs[i] = name
			}
			propagateAssign(st, lhs, n.Values)
		case *ast.RangeStmt:
			if exprTainted(st, n.X) {
				taintTarget(st, n.Key)
				taintTarget(st, n.Value)
			}
		case *ast.ReturnStmt:
			if len(funcStack) > 0 && anyTainted(st, n.Results) {
				taintEnclosing(st, funcStack[len(funcStack)-1])
			}
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c)
			return false
		})
		if pushed {
			funcStack = funcStack[:len(funcStack)-1]
		}
	}
	walk(f)
}

func taintEnclosing(st *taintState, fn ast.Node) {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		st.taintFunc(st.p.Info.Defs[fn.Name])
	case *ast.FuncLit:
		st.taintLit(fn)
	}
}

func anyTainted(st *taintState, exprs []ast.Expr) bool {
	for _, e := range exprs {
		if exprTainted(st, e) {
			return true
		}
	}
	return false
}

// propagateAssign handles both pairwise (a, b = x, y) and tuple
// (a, b = f()) assignment shapes.
func propagateAssign(st *taintState, lhs, rhs []ast.Expr) {
	switch {
	case len(rhs) == 1 && len(lhs) > 1:
		if exprTainted(st, rhs[0]) {
			for _, l := range lhs {
				taintTarget(st, l)
			}
		}
	default:
		for i, r := range rhs {
			if i >= len(lhs) {
				break
			}
			// Binding a closure to a variable carries the closure's
			// result-taint onto the variable, so calls through it taint.
			if fl, ok := unparen(r).(*ast.FuncLit); ok && st.lits[fl] {
				if id, ok := unparen(lhs[i]).(*ast.Ident); ok {
					st.taintFunc(objOf(st.p, id))
				}
			}
			if exprTainted(st, r) {
				taintTarget(st, lhs[i])
			}
		}
	}
}

// taintTarget taints the object an assignment target stores into: an
// identifier, a struct field selector, or the base of an index/deref.
func taintTarget(st *taintState, e ast.Expr) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		st.taintObj(objOf(st.p, e))
	case *ast.SelectorExpr:
		if s, ok := st.p.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			st.taintObj(s.Obj())
		}
	case *ast.IndexExpr:
		taintTarget(st, e.X)
	case *ast.StarExpr:
		taintTarget(st, e.X)
	}
}

// objOf resolves an identifier to its object in either Defs or Uses.
func objOf(p *Package, id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// exprTainted reports whether the value of e derives from a pulse payload
// under the current fact base.
func exprTainted(st *taintState, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return st.objs[objOf(st.p, e)]
	case *ast.SelectorExpr:
		if s, ok := st.p.Info.Selections[e]; ok {
			if st.objs[s.Obj()] {
				return true
			}
		}
		// A field of a tainted struct value is tainted even if the field
		// object itself never appeared on an assignment's left-hand side.
		return exprTainted(st, e.X)
	case *ast.CallExpr:
		if tv, ok := st.p.Info.Types[e.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
			// Conversions and builtins (len, cap, ...) pass taint through.
			return anyTainted(st, e.Args)
		}
		switch fun := unparen(e.Fun).(type) {
		case *ast.Ident:
			if st.funcs[objOf(st.p, fun)] {
				return true
			}
		case *ast.SelectorExpr:
			if st.funcs[st.p.Info.Uses[fun.Sel]] {
				return true
			}
		case *ast.FuncLit:
			if st.lits[fun] {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return exprTainted(st, e.X) || exprTainted(st, e.Y)
	case *ast.UnaryExpr:
		return exprTainted(st, e.X)
	case *ast.StarExpr:
		return exprTainted(st, e.X)
	case *ast.ParenExpr:
		return exprTainted(st, e.X)
	case *ast.TypeAssertExpr:
		return exprTainted(st, e.X)
	case *ast.IndexExpr:
		return exprTainted(st, e.X)
	case *ast.SliceExpr:
		return exprTainted(st, e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
				// A keyed struct literal also taints the field object, so
				// later reads through any value of the type are caught.
				if exprTainted(st, v) {
					if key, ok := kv.Key.(*ast.Ident); ok {
						st.taintObj(st.p.Info.Uses[key])
					}
				}
			}
			if exprTainted(st, v) {
				return true
			}
		}
		return false
	}
	return false
}
