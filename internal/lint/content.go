package lint

// Content-obliviousness checks (paper Section 2): algorithms in the
// oblivious packages may depend only on the order and ports of pulse
// arrivals. Three mechanical proxies enforce that:
//
//   - oblivious-import: no content-carrying imports (internal/baseline,
//     encoding/*). If a package can serialize, it can smuggle content.
//   - oblivious-chan: every declared channel carries pulse.Pulse. The
//     runtimes move inter-node traffic over channels, so a non-pulse
//     channel is a content-bearing side link.
//   - oblivious-payload: an OnMsg handler may forward its payload verbatim
//     to an inner handler (decorators such as core.Redundant do) but may
//     never inspect it — not in a condition, not in an expression, not
//     stored. The payload's information content must stay zero.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

func checkObliviousImport(r *Runner, p *Package, report func(token.Pos, string, string)) {
	if !matchPath(p.Path, r.Config.Oblivious) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if matchPath(path, r.Config.ContentImports) {
				report(imp.Pos(), CheckObliviousImport,
					fmt.Sprintf("content-oblivious package imports content-carrying %q", path))
			}
		}
	}
}

func checkObliviousChan(r *Runner, p *Package, report func(token.Pos, string, string)) {
	if !matchPath(p.Path, r.Config.Oblivious) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ch, ok := n.(*ast.ChanType)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[ch.Value]
			if !ok {
				return true
			}
			if typeName(tv.Type) != r.Config.PulseType {
				report(ch.Pos(), CheckObliviousChan,
					fmt.Sprintf("channel of %s in content-oblivious package (inter-node traffic must be %s)",
						tv.Type, r.Config.PulseType))
			}
			return true
		})
	}
}

// typeName renders a type as "path.Name" for named types, or its string
// form otherwise.
func typeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return t.String()
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func checkObliviousPayload(r *Runner, p *Package, report func(token.Pos, string, string)) {
	if !matchPath(p.Path, r.Config.Oblivious) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "OnMsg" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			payload := payloadParam(p, fn, r.Config.PulseType)
			if payload == nil {
				continue
			}
			obj := p.Info.Defs[payload]
			if obj == nil {
				continue
			}
			walkParents(fn.Body, func(n ast.Node, parents []ast.Node) {
				id, ok := n.(*ast.Ident)
				if !ok || p.Info.Uses[id] != obj {
					return
				}
				if isDirectCallArg(id, parents) {
					return
				}
				report(id.Pos(), CheckObliviousPayload,
					fmt.Sprintf("pulse payload %q inspected in OnMsg (payloads may only be forwarded verbatim; the model allows no content)", id.Name))
			})
		}
	}
}

// payloadParam returns the identifier of the OnMsg parameter whose type is
// the pulse type, or nil if the parameter is blank or absent.
func payloadParam(p *Package, fn *ast.FuncDecl, pulseType string) *ast.Ident {
	for _, field := range fn.Type.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || typeName(tv.Type) != pulseType {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name
			}
		}
	}
	return nil
}

// isDirectCallArg reports whether id appears directly as an argument of a
// call expression — the one permitted payload use (forwarding).
func isDirectCallArg(id *ast.Ident, parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	call, ok := parents[len(parents)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, arg := range call.Args {
		if arg == id {
			return true
		}
	}
	return false
}
