package lint

// Unit tests for the module-graph resolution layer: Resolve is consulted
// exactly once per path (hit or miss), failures are negative-cached, and
// the object-sharing premise the whole devirtualization design rests on —
// one *types.Func pointer per function across every package the Loader
// type-checks — actually holds. These run in-package to reach the
// resolver internals.

import (
	"go/types"
	"testing"
)

// countingRunner wires a Runner whose Resolve delegates to a shared
// Loader while counting invocations per path.
func countingRunner(t *testing.T) (*Runner, *Loader, map[string]int) {
	t.Helper()
	root, module := moduleRootT(t)
	l := NewLoader(root, module)
	calls := make(map[string]int)
	r := &Runner{
		Config: DefaultConfig(),
		Fset:   l.Fset,
		Resolve: func(ip string) (*Package, error) {
			calls[ip]++
			return l.Load(ip)
		},
	}
	return r, l, calls
}

func TestResolveMemoization(t *testing.T) {
	r, _, calls := countingRunner(t)
	g := r.module()
	const path = "coleader/internal/pulse"
	p1 := g.resolve(path)
	p2 := g.resolve(path)
	if p1 == nil {
		t.Fatalf("resolve(%s) = nil, want package", path)
	}
	if p1 != p2 {
		t.Errorf("resolve(%s) returned distinct packages across calls", path)
	}
	if calls[path] != 1 {
		t.Errorf("Resolve invoked %d times for %s, want 1 (memoized)", calls[path], path)
	}
}

func TestResolveStdlibNegativeCache(t *testing.T) {
	r, _, calls := countingRunner(t)
	g := r.module()
	// The loader only reaches module-internal paths; stdlib resolution
	// fails, and the failure must be cached so chains ending in the
	// stdlib do not retry the load on every call site.
	for i := 0; i < 3; i++ {
		if p := g.resolve("fmt"); p != nil {
			t.Fatalf("resolve(fmt) = %v, want nil", p)
		}
	}
	if calls["fmt"] != 1 {
		t.Errorf("Resolve invoked %d times for fmt, want 1 (negative-cached)", calls["fmt"])
	}
}

// TestFuncObjectSharing asserts pointer identity of *types.Func across
// packages loaded by one Loader: the object a caller's Info.Uses records
// for a cross-package call is the same pointer the callee's Info.Defs
// records for its declaration. Every map in the module graph (decls,
// facts, funcTargets) keys on that identity.
func TestFuncObjectSharing(t *testing.T) {
	r, l, _ := countingRunner(t)
	g := r.module()
	caller, err := l.Load("coleader/internal/lint/testdata/src/fixt/xblock")
	if err != nil {
		t.Fatal(err)
	}
	g.add(caller)

	var used *types.Func
	for _, obj := range caller.Info.Uses {
		if fn, ok := obj.(*types.Func); ok && fn.Name() == "Notify" {
			used = fn
			break
		}
	}
	if used == nil {
		t.Fatal("xblock fixture no longer calls Notify; update the test")
	}
	d := g.declOf(used)
	if d == nil {
		t.Fatal("declOf(Notify) = nil: *types.Func from the caller's Uses did not key the callee package's decl index (object sharing broken)")
	}
	if d.decl.Name.Name != "Notify" {
		t.Errorf("declOf resolved to %s, want Notify", d.decl.Name.Name)
	}
	helper := g.pkgs["coleader/internal/lint/testdata/src/fixt/xblockhelp"]
	if helper == nil {
		t.Fatal("resolving Notify did not load xblockhelp")
	}
	var declared *types.Func
	for _, obj := range helper.Info.Defs {
		if fn, ok := obj.(*types.Func); ok && fn.Name() == "Notify" {
			declared = fn
			break
		}
	}
	if declared != used {
		t.Errorf("caller's Uses object %p differs from callee's Defs object %p for Notify", used, declared)
	}
}
