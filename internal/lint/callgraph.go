package lint

// Whole-module interprocedural core. Checks that follow calls (handler-
// block, oblivious-taint, the state-* family) used to stop at the package
// boundary; moduleGraph lets them resolve a *types.Func to its declaration
// anywhere in the module and keep walking.
//
// Resolution is lazy and memoized: a package is indexed the first time a
// check (or a call chain) reaches it, through Runner.Resolve — normally the
// Loader that type-checked the analyzed package, so every *types.Func
// object is shared and map lookups are pointer-identity. Paths Resolve
// cannot handle (the stdlib, vendored trees) are negative-cached and simply
// end the chain, which is the usual soundness trade of a static call graph.
//
// Cache soundness (cache.go): Go forbids import cycles, so every function a
// package's analysis can reach through *static* calls lives in the
// package's transitive import closure — the set of sources pkgKey hashes.
// Devirtualization (below) widens the reachable set to the whole module:
// an interface method call can resolve to an implementation declared in a
// package the caller never imports. The v3 cache therefore folds a
// module-wide type-set digest into its salt, so any edit anywhere re-keys
// every verdict (see cacheSalt).
//
// # Devirtualization
//
// Calls through interfaces and func values used to end every chain — the
// soundness gap PR 6 documented. The typeIndex closes it with a module-
// wide type-set index:
//
//   - interface method calls resolve by CHA narrowed RTA-style: the
//     candidates are the module types that implement the interface AND are
//     live — instantiated somewhere in the module (composite literal,
//     new(T), declared variable, conversion, type assertion), with
//     liveness propagated into the field/element types of live types so a
//     value reachable through a live struct counts as constructible;
//   - func-value calls resolve to the named functions, methods, and
//     closures assigned to the called object anywhere in the module —
//     tracked through the same object-sharing trick the taint pass's
//     propagateCall uses (assignments, var initializers, keyed composite
//     literals, and call arguments all bind sources to the shared
//     types.Object of the destination).
//
// Every dynamic call site classifies as resolved (exactly one candidate),
// over-approximated (several candidates, all followed), or unresolvable
// (no candidate in the module — e.g. a stdlib interface, a func parameter
// nothing ever binds; the chain ends there, the residual soundness trade).
// Per-package counts of the three outcomes are surfaced through
// Result.Devirt so -json and -cache-stats can report them and CI can
// ratchet the unresolvable count down.
//
// The index is built once per Runner from Runner.List (every module
// package) or, when List is unset (fixture harnesses), from the packages
// already added to the graph.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// fnDecl is a declared function or method together with the package whose
// type info covers its body.
type fnDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// moduleGraph is the lazily built module-wide function index shared by all
// interprocedural checks of one Runner.
type moduleGraph struct {
	r *Runner

	// pkgs memoizes package resolution; nil marks a path Resolve cannot
	// load (stdlib, missing), so chains end there without retrying.
	pkgs map[string]*Package

	// decls indexes, per resolved package, every function/method with a
	// body by its *types.Func object.
	decls map[string]map[*types.Func]*fnDecl

	// facts memoizes per-function blocking facts (handler-block); litFacts
	// is its sibling for closures reached through devirtualized func-value
	// calls.
	facts    map[*types.Func]*fnFacts
	litFacts map[*ast.FuncLit]*fnFacts

	// state memoizes per-package state-coverage findings (statecoverage.go),
	// computed once and filtered per check name.
	state map[string][]stateFinding

	// index is the module-wide devirtualization index, built lazily on the
	// first dynamic call any check needs resolved.
	index *typeIndex

	// devirt memoizes per-package dynamic-call-site stats.
	devirt map[string]DevirtStats
}

// module returns the Runner's graph, creating it on first use.
func (r *Runner) module() *moduleGraph {
	if r.graph == nil {
		r.graph = &moduleGraph{
			r:        r,
			pkgs:     make(map[string]*Package),
			decls:    make(map[string]map[*types.Func]*fnDecl),
			facts:    make(map[*types.Func]*fnFacts),
			litFacts: make(map[*ast.FuncLit]*fnFacts),
			state:    make(map[string][]stateFinding),
			devirt:   make(map[string]DevirtStats),
		}
	}
	return r.graph
}

// add indexes an already-loaded package (idempotent). The package under
// analysis is always added directly, so it resolves even when Runner.Resolve
// is unset.
func (g *moduleGraph) add(p *Package) {
	if p == nil {
		return
	}
	if _, ok := g.decls[p.Path]; ok {
		return
	}
	g.pkgs[p.Path] = p
	idx := make(map[*types.Func]*fnDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				idx[fn] = &fnDecl{pkg: p, decl: fd}
			}
		}
	}
	g.decls[p.Path] = idx
}

// resolve loads and indexes the package at an import path, or returns nil
// (memoized) when the path is outside the resolver's reach.
func (g *moduleGraph) resolve(path string) *Package {
	if p, ok := g.pkgs[path]; ok {
		return p
	}
	var p *Package
	if g.r.Resolve != nil {
		if rp, err := g.r.Resolve(path); err == nil {
			p = rp
		}
	}
	g.pkgs[path] = p
	g.add(p)
	return p
}

// declOf resolves a function object to its declaration anywhere in the
// module, or nil (stdlib, interface methods, unresolvable packages).
func (g *moduleGraph) declOf(fn *types.Func) *fnDecl {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if _, ok := g.decls[path]; !ok {
		g.resolve(path)
		if _, ok := g.decls[path]; !ok {
			g.decls[path] = nil
		}
	}
	return g.decls[path][fn]
}

// calleeRef is one candidate callee of a call site: a declared function or
// method, or a closure literal (with the package whose Info covers it).
type calleeRef struct {
	fn  *types.Func
	lit *ast.FuncLit
	pkg *Package // set for lit refs
}

// sig returns the candidate's signature, or nil.
func (c calleeRef) sig() *types.Signature {
	if c.fn != nil {
		s, _ := c.fn.Type().(*types.Signature)
		return s
	}
	if c.lit != nil && c.pkg != nil {
		if tv, ok := c.pkg.Info.Types[c.lit]; ok {
			s, _ := tv.Type.(*types.Signature)
			return s
		}
	}
	return nil
}

// siteKind classifies one dynamic call site's resolution outcome.
type siteKind int

const (
	siteStatic       siteKind = iota // concrete callee; not a dynamic site
	siteResolved                     // dynamic, exactly one candidate
	siteOverApprox                   // dynamic, several candidates (all followed)
	siteUnresolvable                 // dynamic, no module candidate: chain ends
)

// typeIndex is the module-wide devirtualization index. All slices are in
// deterministic (package-list, file, position) order so candidate sets —
// and therefore findings and stats — never depend on map iteration.
type typeIndex struct {
	// impls indexes every method with a body by name: the CHA candidate
	// pool an interface call narrows from.
	impls map[string][]*types.Func

	// live marks named types that are constructible: instantiated
	// somewhere in the module, or reachable as a field/element of a live
	// type. Only live types' methods are interface-call candidates (RTA-
	// style narrowing).
	live map[*types.TypeName]bool

	// funcTargets maps a func-typed object (variable, struct field,
	// parameter) to every named function, method, or closure the module
	// binds to it.
	funcTargets map[types.Object][]calleeRef
}

// typeSet returns the module-wide index, building it on first use from
// Runner.List (or from the already-resolved packages when List is unset).
func (g *moduleGraph) typeSet() *typeIndex {
	if g.index != nil {
		return g.index
	}
	idx := &typeIndex{
		impls:       make(map[string][]*types.Func),
		live:        make(map[*types.TypeName]bool),
		funcTargets: make(map[types.Object][]calleeRef),
	}
	g.index = idx // set before scanning: resolve() below must not recurse

	var paths []string
	if g.r.List != nil {
		paths = append(paths, g.r.List()...)
	} else {
		// Without a module enumerator, index the analyzed packages plus
		// their module-internal import closure: a candidate reachable
		// only through dynamic dispatch is never named statically, so
		// waiting for a static reference to load its package would miss
		// it. "Module-internal" is judged by first path segment against
		// the packages already under analysis, which keeps the stdlib
		// out of the walk.
		roots := make(map[string]bool)
		queue := make([]string, 0, len(g.decls))
		for p := range g.decls {
			roots[firstSegment(p)] = true
			queue = append(queue, p)
		}
		sort.Strings(queue)
		seen := make(map[string]bool)
		for len(queue) > 0 {
			path := queue[0]
			queue = queue[1:]
			if seen[path] {
				continue
			}
			seen[path] = true
			p := g.resolve(path)
			if p == nil {
				continue
			}
			paths = append(paths, path)
			if p.Types == nil {
				continue
			}
			for _, imp := range p.Types.Imports() {
				if roots[firstSegment(imp.Path())] {
					queue = append(queue, imp.Path())
				}
			}
		}
		sort.Strings(paths)
	}
	var scanned []*Package
	for _, path := range paths {
		if p := g.resolve(path); p != nil {
			scanned = append(scanned, p)
		}
	}

	for _, p := range scanned {
		idx.scanMethods(g, p)
	}
	for _, p := range scanned {
		idx.scanLiveness(p)
	}
	idx.propagateLiveness()
	for _, p := range scanned {
		idx.scanFuncTargets(p)
	}
	// Candidate pools sort by full name so devirtualized traversal order
	// is independent of package scan order.
	for name := range idx.impls {
		fns := idx.impls[name]
		sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	}
	return idx
}

// scanMethods indexes every method declaration with a body.
func (idx *typeIndex) scanMethods(g *moduleGraph, p *Package) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				idx.impls[fn.Name()] = append(idx.impls[fn.Name()], fn)
			}
		}
	}
}

// scanLiveness marks named types the package instantiates: composite
// literals, new(T), declared variables and struct fields with an explicit
// type, conversions, and type assertions all witness a constructed value.
func (idx *typeIndex) scanLiveness(p *Package) {
	markExprType := func(e ast.Expr) {
		if tv, ok := p.Info.Types[e]; ok {
			idx.markLive(tv.Type)
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				markExprType(n)
			case *ast.ValueSpec:
				if n.Type != nil {
					markExprType(n.Type)
				}
			case *ast.TypeAssertExpr:
				if n.Type != nil {
					markExprType(n.Type)
				}
			case *ast.CallExpr:
				if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
					markExprType(n.Fun) // conversion T(x)
				} else if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "new" {
					if tv, ok := p.Info.Types[id]; ok && tv.IsBuiltin() && len(n.Args) == 1 {
						markExprType(n.Args[0])
					}
				}
			}
			return true
		})
	}
}

// markLive records t's named base type (alias- and instantiation-
// normalized) as constructible.
func (idx *typeIndex) markLive(t types.Type) {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return
	}
	idx.live[n.Origin().Obj()] = true
}

// propagateLiveness closes the live set under containment: a live struct's
// field types and a live container's element types hold constructed values
// too (the zero value of a live struct contains a zero value of each field
// type). Iterates to a fixed point; the type graph is small and monotone.
func (idx *typeIndex) propagateLiveness() {
	for {
		before := len(idx.live)
		// Snapshot the keys: marking is monotone, so work order never
		// affects the resulting set, only how many rounds it takes.
		tns := make([]*types.TypeName, 0, before)
		for tn := range idx.live {
			tns = append(tns, tn)
		}
		for _, tn := range tns {
			idx.spreadLive(tn.Type(), make(map[types.Type]bool))
		}
		if len(idx.live) == before {
			return
		}
	}
}

// spreadLive marks the named component types contained in t.
func (idx *typeIndex) spreadLive(t types.Type, seen map[types.Type]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	switch u := types.Unalias(t).(type) {
	case *types.Named:
		idx.live[u.Origin().Obj()] = true
		idx.spreadLive(u.Underlying(), seen)
	case *types.Pointer:
		idx.spreadLive(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			idx.spreadLive(u.Field(i).Type(), seen)
		}
	case *types.Slice:
		idx.spreadLive(u.Elem(), seen)
	case *types.Array:
		idx.spreadLive(u.Elem(), seen)
	case *types.Map:
		idx.spreadLive(u.Key(), seen)
		idx.spreadLive(u.Elem(), seen)
	case *types.Chan:
		idx.spreadLive(u.Elem(), seen)
	}
}

// scanFuncTargets records every binding of a function value to an object:
// assignments, var initializers, keyed composite literals, and call
// arguments. The destination objects are shared module-wide under one
// Loader, so a call through the object anywhere resolves to these sources.
func (idx *typeIndex) scanFuncTargets(p *Package) {
	bind := func(obj types.Object, src ast.Expr) {
		if obj == nil {
			return
		}
		ref, ok := funcSource(p, src)
		if !ok {
			return
		}
		for _, have := range idx.funcTargets[obj] {
			if have.fn == ref.fn && have.lit == ref.lit {
				return
			}
		}
		idx.funcTargets[obj] = append(idx.funcTargets[obj], ref)
	}
	bindTarget := func(dst, src ast.Expr) {
		switch d := unparen(dst).(type) {
		case *ast.Ident:
			bind(objOf(p, d), src)
		case *ast.SelectorExpr:
			if s, ok := p.Info.Selections[d]; ok && s.Kind() == types.FieldVal {
				bind(s.Obj(), src)
			} else {
				bind(p.Info.Uses[d.Sel], src)
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, r := range n.Rhs {
					if i < len(n.Lhs) {
						bindTarget(n.Lhs[i], r)
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i < len(n.Names) {
						bind(p.Info.Defs[n.Names[i]], v)
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							bind(p.Info.Uses[key], kv.Value)
						}
					}
				}
			case *ast.CallExpr:
				if tv, ok := p.Info.Types[n.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
					return true
				}
				fn := calleeFunc(p, n.Fun)
				if fn == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				if sig == nil {
					return true
				}
				np := sig.Params().Len()
				for i, arg := range n.Args {
					pi := i
					if pi >= np {
						if !sig.Variadic() {
							break
						}
						pi = np - 1
					}
					bind(sig.Params().At(pi), arg)
				}
			}
			return true
		})
	}
}

// funcSource classifies an expression as a function-value source: a named
// function or method used as a value, or a closure literal.
func funcSource(p *Package, e ast.Expr) (calleeRef, bool) {
	switch e := unparen(e).(type) {
	case *ast.FuncLit:
		return calleeRef{lit: e, pkg: p}, true
	case *ast.Ident:
		if fn, ok := p.Info.Uses[e].(*types.Func); ok {
			return calleeRef{fn: fn}, true
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[e.Sel].(*types.Func); ok {
			return calleeRef{fn: fn}, true
		}
	}
	return calleeRef{}, false
}

// resolveCall resolves a call site to its candidate callees. Static calls
// return the concrete callee with siteStatic. Dynamic sites — interface
// method calls and calls through func-typed values — devirtualize against
// the type-set index and classify as resolved, over-approximated, or
// unresolvable.
func (g *moduleGraph) resolveCall(p *Package, call *ast.CallExpr) ([]calleeRef, siteKind) {
	if tv, ok := p.Info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return nil, siteStatic // conversions and builtins are not calls here
	}
	if fn := calleeFunc(p, call.Fun); fn != nil {
		return []calleeRef{{fn: fn}}, siteStatic
	}
	fun := unparen(call.Fun)
	if fl, ok := fun.(*ast.FuncLit); ok {
		return []calleeRef{{lit: fl, pkg: p}}, siteStatic
	}

	// Interface method call: CHA over the method name, narrowed to live
	// implementing types.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := p.Info.Selections[sel]; ok {
			if ifn, ok := s.Obj().(*types.Func); ok {
				if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
					return g.ifaceCandidates(ifn, iface)
				}
			}
		}
	}

	// Func-value call: candidates are whatever the module binds to the
	// called object.
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = objOf(p, fun)
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[fun]; ok {
			obj = s.Obj()
		} else {
			obj = p.Info.Uses[fun.Sel]
		}
	}
	if v, ok := obj.(*types.Var); ok {
		if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
			cands := g.typeSet().funcTargets[v]
			return cands, dynKind(len(cands))
		}
	}
	return nil, siteUnresolvable
}

// ifaceCandidates returns the live module implementations of an interface
// method.
func (g *moduleGraph) ifaceCandidates(ifn *types.Func, iface *types.Interface) ([]calleeRef, siteKind) {
	idx := g.typeSet()
	var out []calleeRef
	for _, impl := range idx.impls[ifn.Name()] {
		sig, _ := impl.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			continue
		}
		recv := types.Unalias(sig.Recv().Type())
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = types.Unalias(ptr.Elem())
		}
		named, ok := recv.(*types.Named)
		if !ok || !idx.live[named.Origin().Obj()] {
			continue
		}
		// Implements through either the value or pointer method set.
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		out = append(out, calleeRef{fn: impl})
	}
	return out, dynKind(len(out))
}

func dynKind(n int) siteKind {
	switch {
	case n == 0:
		return siteUnresolvable
	case n == 1:
		return siteResolved
	default:
		return siteOverApprox
	}
}

// devirtStats computes (memoized) the dynamic-call-site resolution stats
// for one package: every interface-method or func-value call site in its
// bodies, classified against the module-wide index. The quantity depends
// only on the package's syntax and the type-set index, never on which
// check reached the site first, so cached entries replay it exactly.
func (g *moduleGraph) devirtStats(p *Package) DevirtStats {
	if s, ok := g.devirt[p.Path]; ok {
		return s
	}
	g.add(p)
	var s DevirtStats
	seen := make(map[token.Pos]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || seen[call.Lparen] {
				return true
			}
			seen[call.Lparen] = true
			switch _, kind := g.resolveCall(p, call); kind {
			case siteResolved:
				s.ResolvedSites++
			case siteOverApprox:
				s.OverApproxSites++
			case siteUnresolvable:
				s.UnresolvableSites++
			}
			return true
		})
	}
	g.devirt[p.Path] = s
	return s
}

// firstSegment returns an import path's leading element, the coarse
// module-membership test typeSet uses when no enumerator is wired.
func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}
