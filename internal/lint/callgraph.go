package lint

// Whole-module interprocedural core. Checks that follow calls (handler-
// block, oblivious-taint, the state-* family) used to stop at the package
// boundary; moduleGraph lets them resolve a *types.Func to its declaration
// anywhere in the module and keep walking.
//
// Resolution is lazy and memoized: a package is indexed the first time a
// check (or a call chain) reaches it, through Runner.Resolve — normally the
// Loader that type-checked the analyzed package, so every *types.Func
// object is shared and map lookups are pointer-identity. Paths Resolve
// cannot handle (the stdlib, vendored trees) are negative-cached and simply
// end the chain, which is the usual soundness trade of a static call graph.
//
// Cache soundness (cache.go): Go forbids import cycles, so every function a
// package's analysis can reach through this graph lives in the package's
// transitive import closure — exactly the set of sources pkgKey already
// hashes. Interprocedural facts therefore invalidate with their inputs and
// per-package verdicts stay cacheable.

import (
	"go/ast"
	"go/types"
)

// fnDecl is a declared function or method together with the package whose
// type info covers its body.
type fnDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// moduleGraph is the lazily built module-wide function index shared by all
// interprocedural checks of one Runner.
type moduleGraph struct {
	r *Runner

	// pkgs memoizes package resolution; nil marks a path Resolve cannot
	// load (stdlib, missing), so chains end there without retrying.
	pkgs map[string]*Package

	// decls indexes, per resolved package, every function/method with a
	// body by its *types.Func object.
	decls map[string]map[*types.Func]*fnDecl

	// facts memoizes per-function blocking facts (handler-block).
	facts map[*types.Func]*fnFacts

	// state memoizes per-package state-coverage findings (statecoverage.go),
	// computed once and filtered per check name.
	state map[string][]stateFinding
}

// module returns the Runner's graph, creating it on first use.
func (r *Runner) module() *moduleGraph {
	if r.graph == nil {
		r.graph = &moduleGraph{
			r:     r,
			pkgs:  make(map[string]*Package),
			decls: make(map[string]map[*types.Func]*fnDecl),
			facts: make(map[*types.Func]*fnFacts),
			state: make(map[string][]stateFinding),
		}
	}
	return r.graph
}

// add indexes an already-loaded package (idempotent). The package under
// analysis is always added directly, so it resolves even when Runner.Resolve
// is unset.
func (g *moduleGraph) add(p *Package) {
	if p == nil {
		return
	}
	if _, ok := g.decls[p.Path]; ok {
		return
	}
	g.pkgs[p.Path] = p
	idx := make(map[*types.Func]*fnDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				idx[fn] = &fnDecl{pkg: p, decl: fd}
			}
		}
	}
	g.decls[p.Path] = idx
}

// resolve loads and indexes the package at an import path, or returns nil
// (memoized) when the path is outside the resolver's reach.
func (g *moduleGraph) resolve(path string) *Package {
	if p, ok := g.pkgs[path]; ok {
		return p
	}
	var p *Package
	if g.r.Resolve != nil {
		if rp, err := g.r.Resolve(path); err == nil {
			p = rp
		}
	}
	g.pkgs[path] = p
	g.add(p)
	return p
}

// declOf resolves a function object to its declaration anywhere in the
// module, or nil (stdlib, interface methods, unresolvable packages).
func (g *moduleGraph) declOf(fn *types.Func) *fnDecl {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if _, ok := g.decls[path]; !ok {
		g.resolve(path)
		if _, ok := g.decls[path]; !ok {
			g.decls[path] = nil
		}
	}
	return g.decls[path][fn]
}
