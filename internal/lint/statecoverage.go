package lint

// state-* family: a field-parity prover for machine state encodings. The
// exhaustive explorer (internal/check) is sound only if every mutable
// field of every machine round-trips through its state encodings:
//
//   - SnapshotTo/Restore (node.Undoable) back the undo-DFS: a handler-
//     written field SnapshotTo omits is resurrected stale on backtrack
//     (state-snapshot); one Restore omits leaks across branches
//     (state-restore); one Restore writes but SnapshotTo never encodes is
//     layout skew — Restore reads bytes that are not there (state-skew).
//   - AppendStateKey (node.KeyAppender), or StateKey on the CloneMachine
//     fallback path, backs the visited-state memo: an omitted field merges
//     distinct global states and the explorer silently under-explores
//     (state-key).
//
// No configuration gates the family: any struct type with the method
// shapes is checked wherever it lives, so a future machine package is
// covered the day it is written. Per type, the analysis computes
//
//	writes(T)  = fields written by Init/OnMsg, transitively through the
//	             module-wide call graph (same-type helper methods, methods
//	             called on fields, functions the receiver is passed to);
//	snap(T)    = fields SnapshotTo reads;   restore(T) = fields Restore
//	             writes;                    key(T)     = fields
//	             AppendStateKey (or StateKey) reads;
//
// and requires writes ⊆ snap, writes ⊆ restore, writes ⊆ key, and
// restore ⊆ snap. Error-typed fields are exempt everywhere: the Undoable
// contract (internal/node) states snapshots are only taken from fault-free
// machines, so implementations need not encode error values and Restore
// merely clears them.
//
// The field tracker is deliberately conservative: a receiver (or its
// address) escaping into an unresolvable call, an interface value, or a
// plain value copy marks every field, never fewer. A call through an
// interface method or func value first devirtualizes against the
// module-wide type-set index (callgraph.go) and follows every candidate
// body; only a site with no module candidate escapes to all fields.
// Mutation is recognized through assignment (including op-assign and
// ++/--), address-taking, and pointer-receiver method calls on a field;
// nested accesses (a.inner.id, a.rho[p]) attribute to the top-level field,
// which is the granularity the encodings work at.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// stateFinding is one pre-computed state-family finding; the per-check
// entry points filter the shared per-package analysis by check name.
type stateFinding struct {
	pos   token.Pos
	check string
	msg   string
}

func checkStateSnapshot(r *Runner, p *Package, report func(token.Pos, string, string)) {
	reportStateFamily(r, p, CheckStateSnapshot, report)
}

func checkStateRestore(r *Runner, p *Package, report func(token.Pos, string, string)) {
	reportStateFamily(r, p, CheckStateRestore, report)
}

func checkStateKey(r *Runner, p *Package, report func(token.Pos, string, string)) {
	reportStateFamily(r, p, CheckStateKey, report)
}

func checkStateSkew(r *Runner, p *Package, report func(token.Pos, string, string)) {
	reportStateFamily(r, p, CheckStateSkew, report)
}

func reportStateFamily(r *Runner, p *Package, check string, report func(token.Pos, string, string)) {
	g := r.module()
	g.add(p)
	sfs, ok := g.state[p.Path]
	if !ok {
		sfs = stateFindingsFor(g, p)
		g.state[p.Path] = sfs
	}
	for _, sf := range sfs {
		if sf.check == check {
			report(sf.pos, sf.check, sf.msg)
		}
	}
}

// stateFindingsFor runs the field-parity analysis over every machine-state
// type declared in p.
func stateFindingsFor(g *moduleGraph, p *Package) []stateFinding {
	methods := collectMethods(p)
	names := make([]string, 0, len(methods))
	for name := range methods {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []stateFinding
	for _, name := range names {
		m := methods[name]
		snapshot := methodShape(m["SnapshotTo"], p, 1, 1)
		restore := methodShape(m["Restore"], p, 1, 0)
		appendKey := methodShape(m["AppendStateKey"], p, 1, 1)
		stateKey := methodShape(m["StateKey"], p, 0, 1)
		clone := methodShape(m["CloneMachine"], p, 0, 1)

		undoable := snapshot != nil && restore != nil
		keyed := appendKey != nil
		fallback := !keyed && stateKey != nil && clone != nil
		if !undoable && !keyed && !fallback {
			continue
		}

		tn, _ := p.Types.Scope().Lookup(name).(*types.TypeName)
		if tn == nil {
			continue
		}
		named, _ := tn.Type().(*types.Named)
		if named == nil {
			continue
		}
		strct, _ := named.Underlying().(*types.Struct)
		if strct == nil {
			continue
		}

		writes := scanFields(g, p, named, true, m["Init"], m["OnMsg"])
		snapReads := scanFields(g, p, named, false, snapshot)
		restoreWrites := scanFields(g, p, named, true, restore)
		var keyReads *fieldSet
		var keyMethod string
		switch {
		case keyed:
			keyReads = scanFields(g, p, named, false, appendKey)
			keyMethod = "AppendStateKey"
		case fallback:
			keyReads = scanFields(g, p, named, false, stateKey)
			keyMethod = "StateKey"
		}

		errType := types.Universe.Lookup("error").Type()
		for i := 0; i < strct.NumFields(); i++ {
			f := strct.Field(i)
			if types.Identical(f.Type(), errType) {
				continue // exempt per the Undoable contract: Restore clears errors
			}
			fn := f.Name()
			qual := name + "." + fn
			if writes.has(fn) {
				if undoable && !snapReads.has(fn) {
					out = append(out, stateFinding{f.Pos(), CheckStateSnapshot,
						fmt.Sprintf("field %s is written by Init/OnMsg but never encoded by SnapshotTo; undo exploration would restore a stale value into it", qual)})
				}
				if undoable && !restoreWrites.has(fn) {
					out = append(out, stateFinding{f.Pos(), CheckStateRestore,
						fmt.Sprintf("field %s is written by Init/OnMsg but never restored by Restore; its value would leak across explorer branches", qual)})
				}
				if keyReads != nil && !keyReads.has(fn) {
					out = append(out, stateFinding{f.Pos(), CheckStateKey,
						fmt.Sprintf("field %s is written by Init/OnMsg but never keyed by %s; distinct states would merge in the exploration memo", qual, keyMethod)})
				}
			}
			if undoable && restoreWrites.names[fn] && !snapReads.has(fn) {
				out = append(out, stateFinding{f.Pos(), CheckStateSkew,
					fmt.Sprintf("Restore writes field %s, which SnapshotTo never encodes (snapshot/restore layout skew)", qual)})
			}
		}
	}
	return out
}

// collectMethods indexes p's method declarations: receiver base type name
// -> method name -> declaration.
func collectMethods(p *Package) map[string]map[string]*ast.FuncDecl {
	out := make(map[string]map[string]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			base := recvBaseName(fd)
			if base == "" {
				continue
			}
			if out[base] == nil {
				out[base] = make(map[string]*ast.FuncDecl)
			}
			out[base][fd.Name.Name] = fd
		}
	}
	return out
}

// recvBaseName strips pointers, parens, and type parameters off a receiver
// type expression down to its base identifier.
func recvBaseName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// methodShape returns fd when its signature has the given parameter and
// result counts, nil otherwise — a loose filter that keeps unrelated
// same-named methods from being mistaken for the state contract.
func methodShape(fd *ast.FuncDecl, p *Package, params, results int) *ast.FuncDecl {
	if fd == nil {
		return nil
	}
	fn, _ := p.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Params().Len() != params || sig.Results().Len() != results {
		return nil
	}
	return fd
}

// fieldSet is the result of one scan: named top-level fields touched, or
// every field (all) when the receiver escaped analysis.
type fieldSet struct {
	names map[string]bool
	all   bool
}

func (fs *fieldSet) has(name string) bool { return fs.all || fs.names[name] }
func (fs *fieldSet) mark(name string)     { fs.names[name] = true }

// scanFields accumulates the fields of typ that the given methods write
// (writes=true) or read (writes=false), transitively through the module
// call graph.
func scanFields(g *moduleGraph, p *Package, typ *types.Named, writes bool, decls ...*ast.FuncDecl) *fieldSet {
	fs := &fieldScan{
		g:           g,
		typObj:      typ.Obj(),
		writes:      writes,
		set:         &fieldSet{names: make(map[string]bool)},
		visited:     make(map[*ast.FuncDecl]bool),
		visitedLits: make(map[*ast.FuncLit]bool),
	}
	for _, fd := range decls {
		if fd == nil {
			continue
		}
		fs.scan(p, fd, recvObj(p, fd))
	}
	return fs.set
}

// fieldScan tracks accesses to one machine type's fields through a value
// of that type: the receiver of the scanned method, or a parameter it was
// passed to.
type fieldScan struct {
	g           *moduleGraph
	typObj      *types.TypeName
	writes      bool
	set         *fieldSet
	visited     map[*ast.FuncDecl]bool
	visitedLits map[*ast.FuncLit]bool
}

// recvObj resolves a method's receiver identifier to its object, or nil
// when the receiver is unnamed (the body then cannot touch fields).
func recvObj(p *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return p.Info.Defs[fd.Recv.List[0].Names[0]]
}

// scan walks fd's body attributing every access through tracked (a value
// of the machine type) to a top-level field. Visited is keyed by
// declaration: re-entering the same body tracks the same type's fields and
// adds nothing.
func (fs *fieldScan) scan(p *Package, fd *ast.FuncDecl, tracked types.Object) {
	if fd == nil || fd.Body == nil || tracked == nil || fs.visited[fd] {
		return
	}
	fs.visited[fd] = true
	fs.scanBody(p, fd.Body, tracked)
}

// scanLit is scan for a closure literal reached through a devirtualized
// func-value call.
func (fs *fieldScan) scanLit(p *Package, lit *ast.FuncLit, tracked types.Object) {
	if lit == nil || tracked == nil || fs.visitedLits[lit] {
		return
	}
	fs.visitedLits[lit] = true
	fs.scanBody(p, lit.Body, tracked)
}

func (fs *fieldScan) scanBody(p *Package, body ast.Node, tracked types.Object) {
	walkParents(body, func(n ast.Node, parents []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || objOf(p, id) != tracked {
			return
		}
		fs.classify(p, id, parents)
	})
}

// classify attributes one appearance of the tracked value.
func (fs *fieldScan) classify(p *Package, id *ast.Ident, parents []ast.Node) {
	i := len(parents) - 1
	if i < 0 {
		return
	}
	switch pd := parents[i].(type) {
	case *ast.SelectorExpr:
		if pd.X != id {
			return
		}
		if fn, ok := p.Info.Uses[pd.Sel].(*types.Func); ok {
			// A method of the machine type called on the tracked value:
			// its body reads/writes the same fields — recurse.
			if d := fs.g.declOf(fn); d != nil {
				fs.scan(d.pkg, d.decl, recvObj(d.pkg, d.decl))
			} else {
				fs.set.all = true // unresolvable method: assume everything
			}
			return
		}
		if _, ok := p.Info.Uses[pd.Sel].(*types.Var); !ok {
			return
		}
		fs.climb(p, pd, parents[:i], pd.Sel.Name)
	case *ast.StarExpr:
		// *recv: a whole-value store writes every field, a whole-value
		// copy reads every field.
		if starIsAssignTarget(pd, parents[:i]) {
			if fs.writes {
				fs.set.all = true
			}
		} else if !fs.writes {
			fs.set.all = true
		}
	case *ast.CallExpr:
		fs.hop(p, pd, id)
	case *ast.UnaryExpr:
		if pd.Op != token.AND {
			return
		}
		if i > 0 {
			if call, ok := parents[i-1].(*ast.CallExpr); ok {
				fs.hop(p, call, pd)
				return
			}
		}
		fs.set.all = true // address escapes into storage: assume everything
	default:
		// Bare value use (copy, comparison, interface conversion): every
		// field is read; nothing is written through a copy.
		if !fs.writes {
			fs.set.all = true
		}
	}
}

// climb walks outward from a field selector rooted at the tracked value to
// decide whether the access mutates the field. In read mode any rooted
// selector counts immediately.
func (fs *fieldScan) climb(p *Package, cur ast.Expr, parents []ast.Node, field string) {
	if !fs.writes {
		fs.set.mark(field)
		return
	}
	for i := len(parents) - 1; i >= 0; i-- {
		switch pn := parents[i].(type) {
		case *ast.SelectorExpr:
			if pn.X != cur {
				return
			}
			if fn, ok := p.Info.Uses[pn.Sel].(*types.Func); ok {
				// Method call on the field path (a.rng.SetState): a
				// pointer-receiver method may mutate the field.
				if ptrRecvMethod(fn) {
					fs.set.mark(field)
				}
				return
			}
			cur = pn // nested field: still the same top-level field
		case *ast.IndexExpr:
			if pn.X != cur {
				return // cur is the index, a read
			}
			cur = pn
		case *ast.SliceExpr:
			if pn.X != cur {
				return
			}
			cur = pn
		case *ast.StarExpr:
			if pn.X != cur {
				return
			}
			cur = pn
		case *ast.ParenExpr:
			cur = pn
		case *ast.AssignStmt:
			for _, l := range pn.Lhs {
				if l == cur {
					fs.set.mark(field)
					return
				}
			}
			return
		case *ast.IncDecStmt:
			if pn.X == cur {
				fs.set.mark(field)
			}
			return
		case *ast.UnaryExpr:
			if pn.Op == token.AND && pn.X == cur {
				fs.set.mark(field) // address taken: may be written through
			}
			return
		case *ast.RangeStmt:
			if pn.Key == cur || pn.Value == cur {
				fs.set.mark(field)
			}
			return
		default:
			return
		}
	}
}

// hop follows the tracked value (or its address) into a call: when the
// callee resolves and the matching parameter has the machine type, its
// body is scanned with that parameter tracked; anything unresolvable is an
// escape and marks every field.
func (fs *fieldScan) hop(p *Package, call *ast.CallExpr, arg ast.Expr) {
	idx := -1
	for j, a := range call.Args {
		if a == arg {
			idx = j
			break
		}
	}
	if idx < 0 {
		// The tracked value is the call's function or a conversion
		// operand; a conversion of the value is a whole-value read.
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			if !fs.writes {
				fs.set.all = true
			}
			return
		}
		fs.set.all = true
		return
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		if !fs.writes {
			fs.set.all = true // conversion/builtin over the value reads it
		}
		return
	}
	cands, kind := fs.g.resolveCall(p, call)
	if len(cands) == 0 || kind == siteUnresolvable {
		fs.set.all = true // no resolvable body could be scanned: escape
		return
	}
	for _, c := range cands {
		fs.hopInto(p, c, idx)
	}
}

// hopInto follows the tracked value into one resolved candidate callee —
// a declared function/method or a closure literal.
func (fs *fieldScan) hopInto(p *Package, c calleeRef, idx int) {
	sig := c.sig()
	if sig == nil || sig.Params().Len() == 0 {
		fs.set.all = true
		return
	}
	pi := idx
	if pi >= sig.Params().Len() {
		if !sig.Variadic() {
			fs.set.all = true
			return
		}
		pi = sig.Params().Len() - 1
	}
	if !fs.machineParam(sig.Params().At(pi).Type()) {
		fs.set.all = true // the value escapes behind an interface or any
		return
	}
	if c.lit != nil {
		obj := fieldObjAt(c.pkg, c.lit.Type.Params, pi)
		if obj == nil {
			return // blank or unnamed parameter: the closure cannot touch it
		}
		fs.scanLit(c.pkg, c.lit, obj)
		return
	}
	d := fs.g.declOf(c.fn)
	if d == nil {
		fs.set.all = true
		return
	}
	obj := paramObjAt(d, pi)
	if obj == nil {
		return // blank or unnamed parameter: the callee cannot touch it
	}
	fs.scan(d.pkg, d.decl, obj)
}

// machineParam reports whether a parameter type is the machine type or a
// pointer to it, i.e. the callee sees the fields directly.
func (fs *fieldScan) machineParam(t types.Type) bool {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj() == fs.typObj
}

// paramObjAt resolves the i-th parameter of a declaration to its object,
// or nil for blank/unnamed parameters.
func paramObjAt(d *fnDecl, i int) types.Object {
	return fieldObjAt(d.pkg, d.decl.Type.Params, i)
}

// fieldObjAt resolves the i-th entry of a parameter list to its object, or
// nil for blank/unnamed parameters.
func fieldObjAt(p *Package, params *ast.FieldList, i int) types.Object {
	if p == nil || params == nil {
		return nil
	}
	idx := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			if idx == i {
				return nil
			}
			idx++
			continue
		}
		for _, name := range field.Names {
			if idx == i {
				if name.Name == "_" {
					return nil
				}
				return p.Info.Defs[name]
			}
			idx++
		}
	}
	return nil
}

// ptrRecvMethod reports whether a method has a pointer receiver (and can
// therefore mutate the value it is called on).
func ptrRecvMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	_, ok := sig.Recv().Type().(*types.Pointer)
	return ok
}

// starIsAssignTarget reports whether a *expr dereference is the target of
// an enclosing assignment.
func starIsAssignTarget(star *ast.StarExpr, parents []ast.Node) bool {
	cur := ast.Expr(star)
	for i := len(parents) - 1; i >= 0; i-- {
		switch pn := parents[i].(type) {
		case *ast.ParenExpr:
			cur = pn
		case *ast.AssignStmt:
			for _, l := range pn.Lhs {
				if l == cur {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}
