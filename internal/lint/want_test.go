package lint_test

// Fixture-driven expectation tests: each fixture file marks the lines
// where a check must fire with a trailing want comment holding a quoted
// regexp (several regexps on one line mean several findings on that line;
// the quoted text is a Go string literal, so regex escapes are doubled).
// The
// harness runs one check family per fixture group and requires an exact
// match: every want satisfied, no unexpected findings.

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"coleader/internal/lint"
)

var wantRE = regexp.MustCompile(`// want (.+)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses `// want` comments from every .go file in dir.
func collectWants(t *testing.T, dir string) []want {
	t.Helper()
	var wants []want
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			qs := quotedRE.FindAllStringSubmatch(m[1], -1)
			if qs == nil {
				t.Fatalf("%s:%d: malformed want comment", path, i+1)
			}
			for _, q := range qs {
				lit, err := strconv.Unquote(q[0])
				if err != nil {
					t.Fatalf("%s:%d: bad want literal %s: %v", path, i+1, q[0], err)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				wants = append(wants, want{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// fixtureLoader returns a loader rooted at the repo module with the
// fixture tree mounted at import-path prefix "fixt".
func fixtureLoader(t *testing.T) *lint.Loader {
	t.Helper()
	root, module, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := lint.NewLoader(root, module)
	fixt, err := filepath.Abs("testdata/src/fixt")
	if err != nil {
		t.Fatal(err)
	}
	l.ExtraRoots = map[string]string{"fixt": fixt}
	return l
}

// runFixture lints the given fixture packages under cfg and checks the
// findings against the packages' want comments.
func runFixture(t *testing.T, cfg lint.Config, pkgPaths ...string) lint.Result {
	t.Helper()
	l := fixtureLoader(t)
	var pkgs []*lint.Package
	var wants []want
	for _, ip := range pkgPaths {
		p, err := l.Load(ip)
		if err != nil {
			t.Fatalf("load %s: %v", ip, err)
		}
		if len(p.TypeErrors) > 0 {
			t.Fatalf("fixture %s has type errors: %v", ip, p.TypeErrors)
		}
		pkgs = append(pkgs, p)
		wants = append(wants, collectWants(t, p.Dir)...)
	}
	runner := &lint.Runner{Config: cfg, Fset: l.Fset, Resolve: l.Load}
	res := runner.Run(pkgs)

	matched := make([]bool, len(res.Findings))
	for _, w := range wants {
		ok := false
		for i, f := range res.Findings {
			if matched[i] || !sameFile(f.File, w.file) || f.Line != w.line {
				continue
			}
			if w.re.MatchString(f.Msg) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, f := range res.Findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	return res
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

func TestFixtureOblivious(t *testing.T) {
	cfg := lint.Config{
		Oblivious:      []string{"fixt/obliv"},
		PulseType:      "coleader/internal/pulse.Pulse",
		ContentImports: []string{"encoding", "fixt/content"},
		Checks: []string{
			lint.CheckObliviousImport, lint.CheckObliviousChan, lint.CheckObliviousPayload,
		},
	}
	runFixture(t, cfg, "fixt/obliv")
}

func TestFixtureDeterminism(t *testing.T) {
	cfg := lint.Config{
		MapRangePkgs: []string{"fixt/det"},
		Checks: []string{
			lint.CheckDetTime, lint.CheckDetGlobalRand, lint.CheckDetMapRange,
		},
	}
	res := runFixture(t, cfg, "fixt/det")

	// The //oblint:allow directive must route the time.Now in suppressed()
	// into the suppressed list, not the findings.
	if len(res.Suppressed) != 1 {
		t.Fatalf("suppressed = %v, want exactly 1", res.Suppressed)
	}
	if s := res.Suppressed[0]; s.Check != lint.CheckDetTime || !s.Suppressed {
		t.Errorf("suppressed finding = %+v, want det-time with Suppressed=true", s)
	}
}

// TestFixtureFaultPolicy proves the checks internal/fault is registered
// under (content-obliviousness + replay determinism) actually bite on a
// fault-plane-shaped package: an adversary that reads content or draws
// from unseeded sources must be flagged.
func TestFixtureFaultPolicy(t *testing.T) {
	cfg := lint.Config{
		Oblivious:      []string{"fixt/faultplane"},
		PulseType:      "coleader/internal/pulse.Pulse",
		ContentImports: []string{"encoding"},
		MapRangePkgs:   []string{"fixt/faultplane"},
		Checks: []string{
			lint.CheckObliviousImport, lint.CheckObliviousChan,
			lint.CheckDetTime, lint.CheckDetGlobalRand, lint.CheckDetMapRange,
		},
	}
	runFixture(t, cfg, "fixt/faultplane")
}

func TestFixtureLayering(t *testing.T) {
	cfg := lint.Config{
		Module: "fixt",
		Layers: map[string][]string{
			"fixt/layer/a": {},
			"fixt/layer/b": {"fixt/layer/a"},
			"fixt/layer/c": {"fixt/layer/b"},
			// leaf is registered with no allowed internal deps, like the
			// real foundation packages (pulse, xrand, stats, benchjson).
			"fixt/layer/leaf": {},
			// fixt/layer/unreg deliberately absent.
		},
		// The non-layer fixture packages are out of scope for this test.
		LayerExempt: []string{"fixt/obliv", "fixt/det", "fixt/content", "fixt/atomicmix", "fixt/faultplane"},
		Checks:      []string{lint.CheckLayerDAG},
	}
	runFixture(t, cfg, "fixt/layer/a", "fixt/layer/b", "fixt/layer/c",
		"fixt/layer/leaf", "fixt/layer/unreg")
}

func TestFixtureAtomicMixed(t *testing.T) {
	cfg := lint.Config{
		AtomicPkgs: []string{"fixt/atomicmix"},
		Checks:     []string{lint.CheckAtomicMixed},
	}
	runFixture(t, cfg, "fixt/atomicmix")
}

func TestFixtureTaint(t *testing.T) {
	cfg := lint.Config{
		Oblivious: []string{"fixt/taint"},
		PulseType: "coleader/internal/pulse.Pulse",
		Checks:    []string{lint.CheckObliviousTaint},
	}
	runFixture(t, cfg, "fixt/taint")
}

func TestFixtureHandlerBlock(t *testing.T) {
	cfg := lint.Config{
		HandlerPkgs: []string{"fixt/handler"},
		Checks:      []string{lint.CheckHandlerBlock},
	}
	runFixture(t, cfg, "fixt/handler")
}

// stateChecks is the full state-integrity family; the fixtures are built
// so each family member fires only where its want comment says.
var stateChecks = []string{
	lint.CheckStateSnapshot, lint.CheckStateRestore,
	lint.CheckStateKey, lint.CheckStateSkew,
}

func TestFixtureStateSnapshot(t *testing.T) {
	runFixture(t, lint.Config{Checks: stateChecks}, "fixt/statesnap")
}

func TestFixtureStateRestore(t *testing.T) {
	runFixture(t, lint.Config{Checks: stateChecks}, "fixt/staterestore")
}

func TestFixtureStateKey(t *testing.T) {
	runFixture(t, lint.Config{Checks: stateChecks}, "fixt/statekey")
}

// TestFixtureCrossPackageBlock proves two things at once: handler roots
// are auto-detected from the OnMsg emitter signature (no HandlerPkgs
// entry), and blocking operations are found through call chains into
// other packages. The fixtures import each other by real module path so
// the same sources also load under cmd/oblint without ExtraRoots.
func TestFixtureCrossPackageBlock(t *testing.T) {
	cfg := lint.Config{
		EmitterType: "coleader/internal/node.Emitter",
		Checks:      []string{lint.CheckHandlerBlock},
	}
	runFixture(t, cfg,
		"coleader/internal/lint/testdata/src/fixt/xblock",
		"coleader/internal/lint/testdata/src/fixt/xblockhelp")
}

// TestFixtureCrossPackageTaint proves payload taint crosses package
// boundaries in both directions: into a helper's parameter (the sink is
// in the helper) and back out through a helper's return value (the sink
// is in the oblivious caller).
func TestFixtureCrossPackageTaint(t *testing.T) {
	cfg := lint.Config{
		Oblivious: []string{"coleader/internal/lint/testdata/src/fixt/xtaint"},
		PulseType: "coleader/internal/pulse.Pulse",
		Checks:    []string{lint.CheckObliviousTaint},
	}
	runFixture(t, cfg,
		"coleader/internal/lint/testdata/src/fixt/xtaint",
		"coleader/internal/lint/testdata/src/fixt/xtainthelp")
}

func TestFixtureAtomicCopy(t *testing.T) {
	cfg := lint.Config{
		AtomicPkgs: []string{"fixt/atomiccopy"},
		Checks:     []string{lint.CheckAtomicCopy},
	}
	runFixture(t, cfg, "fixt/atomiccopy")
}

// TestFixtureDynamicBlock proves handler-block follows dynamic dispatch:
// the machine's handler blocks only through an interface method and a
// func-typed field, both resolved against the module type-set index to
// targets in a sibling package.
func TestFixtureDynamicBlock(t *testing.T) {
	cfg := lint.Config{
		EmitterType: "coleader/internal/node.Emitter",
		Checks:      []string{lint.CheckHandlerBlock},
	}
	runFixture(t, cfg,
		"coleader/internal/lint/testdata/src/fixt/dynblock",
		"coleader/internal/lint/testdata/src/fixt/dynblockhelp")
}

// TestFixtureDynamicTaint proves payload taint flows through dynamic
// dispatch: into a devirtualized interface method's parameter (the sink
// is in the helper) and back out through a bound func value's return
// (the sink is in the oblivious caller).
func TestFixtureDynamicTaint(t *testing.T) {
	cfg := lint.Config{
		Oblivious: []string{"coleader/internal/lint/testdata/src/fixt/dyntaint"},
		PulseType: "coleader/internal/pulse.Pulse",
		Checks:    []string{lint.CheckObliviousTaint},
	}
	runFixture(t, cfg,
		"coleader/internal/lint/testdata/src/fixt/dyntaint",
		"coleader/internal/lint/testdata/src/fixt/dyntainthelp")
}

func TestFixtureConcLeak(t *testing.T) {
	runFixture(t, lint.Config{Checks: []string{lint.CheckConcLeak}}, "fixt/concleak")
}

func TestFixtureConcChanDir(t *testing.T) {
	runFixture(t, lint.Config{Checks: []string{lint.CheckConcChanDir}}, "fixt/chandir")
}

func TestFixtureConcLockOrder(t *testing.T) {
	runFixture(t, lint.Config{Checks: []string{lint.CheckConcLockOrder}}, "fixt/conclock")
}
