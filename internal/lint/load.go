// Package lint implements oblint, a model-invariant static analyzer for
// this repository. The paper's guarantees hold only under a strict model
// discipline — algorithms may depend on the order and ports of pulse
// arrivals, never on content or timing (Section 2) — and oblint enforces
// that discipline mechanically instead of socially. It is built on the
// standard library only (go/parser, go/ast, go/types), so it runs offline
// with no external dependencies.
//
// Six families of checks are implemented:
//
//   - content-obliviousness (oblivious-import, oblivious-chan,
//     oblivious-payload, oblivious-taint): the oblivious packages may not
//     import content-carrying packages, may not declare non-pulse
//     channels, pulse handlers may not inspect a message payload, and no
//     branch anywhere reachable from an oblivious package may depend on a
//     value derived from one — the taint analysis follows payloads across
//     function and package boundaries.
//   - determinism (det-time, det-globalrand, det-maprange): no wall-clock
//     calls outside the live runtime and cmd/, no global math/rand
//     functions anywhere (randomness must be injected and seeded), and no
//     map iteration in replay-deterministic packages.
//   - layering (layer-dag): the intended import DAG is encoded as data;
//     unregistered packages and back-edges fail.
//   - concurrency hygiene (atomic-mixed, atomic-copy): a field accessed
//     through sync/atomic anywhere must be accessed that way everywhere,
//     and atomic wrapper values must not be copied.
//   - handler discipline (handler-block): no blocking operation reachable
//     from an Init/OnMsg handler over the module-wide call graph.
//   - state integrity (state-snapshot, state-restore, state-key,
//     state-skew): every field a machine's handlers write must round-trip
//     through its SnapshotTo/Restore and state-key encodings; see
//     statecoverage.go.
//
// The interprocedural checks resolve call chains through Runner.Resolve,
// a callback into the Loader, so the module-wide graph shares one set of
// go/types objects with the analyzed packages.
//
// A finding can be suppressed with a directive comment on the same line or
// the line above: //oblint:allow <check> [<check>...]. Suppressed findings
// are still reported (marked suppressed) so CI can track them.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked module package.
type Package struct {
	Path  string // import path, e.g. "coleader/internal/core"
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects soft type-checking errors. Checks still run on a
	// package with type errors; the driver surfaces them separately.
	TypeErrors []error
}

// Loader loads packages of one module from source, resolving module-
// internal imports against the module root and everything else through the
// standard library's source importer. It needs no network, no GOPATH
// layout, and no precompiled export data.
type Loader struct {
	Fset   *token.FileSet
	Module string // module path from go.mod
	Root   string // module root directory

	// ExtraRoots maps an import-path prefix to a directory, letting tests
	// load fixture trees (e.g. "fixt" -> ".../testdata/src/fixt").
	ExtraRoots map[string]string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	deps    map[string]*types.Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Module:  module,
		Root:    root,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		deps:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func FindModule(dir string) (root, module string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// dirFor maps an import path to a source directory, or "" if the path is
// not handled by this loader (i.e. stdlib).
func (l *Loader) dirFor(path string) string {
	if path == l.Module {
		return l.Root
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest))
	}
	for prefix, dir := range l.ExtraRoots {
		if path == prefix {
			return dir
		}
		if rest, ok := strings.CutPrefix(path, prefix+"/"); ok {
			return filepath.Join(dir, filepath.FromSlash(rest))
		}
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if d := l.dirFor(path); d != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	p, err := l.std.ImportFrom(path, dir, mode)
	if err != nil {
		return nil, err
	}
	l.deps[path] = p
	return p, nil
}

// Load parses and type-checks the package at the given import path
// (module-internal or registered via ExtraRoots), memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	// Memoization happens only after type-checking completes, so a cyclic
	// import would otherwise recurse forever through ImportFrom.
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: %s is not inside module %s", path, l.Module)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	p := &Package{Path: path, Dir: dir}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if tpkg == nil {
		return nil, err
	}
	p.Files = files
	p.Types = tpkg
	p.Info = info
	l.pkgs[path] = p
	return p, nil
}

// pkgDir is one module package directory discovered by modulePackageDirs.
type pkgDir struct {
	Path string // import path
	Dir  string
}

// modulePackageDirs walks the module tree rooted at root and returns every
// directory holding non-test Go files, skipping testdata, vendor, and
// dot/underscore directories. Results are sorted by import path. It is the
// single source of truth for "the module's packages", shared by LoadAll
// and the analysis cache so their views can never diverge.
func modulePackageDirs(root, module string) ([]pkgDir, error) {
	var dirs []pkgDir
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				ip := module
				if rel != "." {
					ip = module + "/" + filepath.ToSlash(rel)
				}
				dirs = append(dirs, pkgDir{Path: ip, Dir: p})
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].Path < dirs[j].Path })
	return dirs, nil
}

// LoadAll walks the module tree and loads every package, skipping
// testdata, vendor, and dot-directories. Packages are returned sorted by
// import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := modulePackageDirs(l.Root, l.Module)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, d := range dirs {
		p, err := l.Load(d.Path)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", d.Path, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
