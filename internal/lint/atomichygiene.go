package lint

// Concurrency hygiene: in the live runtime a struct field that is accessed
// through sync/atomic anywhere must be accessed that way everywhere — one
// plain read racing one atomic write is still a data race, and the race
// detector only catches it when a schedule realizes it. The check collects
// every field passed by address to a sync/atomic function, then flags any
// other plain selector access of the same field.
//
// Fields of the atomic.Int64-style wrapper types are immune to mixed
// access by construction (their state is unexported), which is why the
// runtime prefers them; atomic-mixed guards the pointer-style API.
//
// The wrapper types have a dual hazard the pointer API does not: copying
// one by value silently forks its state, so the copy's Load observes a
// frozen snapshot while writers keep updating the original. go vet's
// copylocks pass does not flag them (they carry no Lock method), so the
// atomic-copy check closes that gap: in the atomic packages, any
// by-value copy of an atomic wrapper — or of a struct embedding one —
// through an assignment, call argument, return value, or composite
// literal element is a finding. Taking the address, calling methods, and
// constructing fresh zero values remain fine.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

func checkAtomicMixed(r *Runner, p *Package, report func(token.Pos, string, string)) {
	if !matchPath(p.Path, r.Config.AtomicPkgs) {
		return
	}

	// Pass 1: fields (as types.Var objects) that reach sync/atomic by
	// address, and the selector nodes doing so (those are the sanctioned
	// accesses).
	atomicFields := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(p, call.Fun) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldOf(p, sel); v != nil {
					atomicFields[v] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: any other access of those fields is a plain (racy) access.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			v := fieldOf(p, sel)
			if v == nil || !atomicFields[v] {
				return true
			}
			report(sel.Sel.Pos(), CheckAtomicMixed,
				fmt.Sprintf("plain access of field %s, which is accessed via sync/atomic elsewhere; mixing the two races", v.Name()))
			return true
		})
	}
}

func checkAtomicCopy(r *Runner, p *Package, report func(token.Pos, string, string)) {
	if !matchPath(p.Path, r.Config.AtomicPkgs) {
		return
	}
	flag := func(e ast.Expr) {
		e = unparen(e)
		switch e.(type) {
		case *ast.CompositeLit, *ast.FuncLit:
			return // a freshly constructed value has no shared state yet
		}
		tv, ok := p.Info.Types[e]
		if !ok || tv.Type == nil {
			return
		}
		if name := atomicCopied(tv.Type); name != "" {
			report(e.Pos(), CheckAtomicCopy,
				fmt.Sprintf("by-value copy of %s; atomic values must be reached through a stable address (the copy's state silently forks, and go vet copylocks does not flag wrapper types)", name))
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					return true // tuple from a call; the return site is flagged
				}
				for _, rhs := range n.Rhs {
					flag(rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					flag(v)
				}
			case *ast.CallExpr:
				if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, arg := range n.Args {
					flag(arg)
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					flag(res)
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						flag(kv.Value)
					} else {
						flag(elt)
					}
				}
			}
			return true
		})
	}
}

// atomicWrappers are the value types of sync/atomic whose copy semantics
// are a silent state fork.
var atomicWrappers = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// atomicCopied reports the offending type name if copying a value of t by
// value forks atomic state: t is an atomic wrapper, or a struct (possibly
// nested, possibly via arrays) holding one.
func atomicCopied(t types.Type) string {
	seen := make(map[types.Type]bool)
	var rec func(t types.Type) string
	rec = func(t types.Type) string {
		if seen[t] {
			return ""
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicWrappers[obj.Name()] {
				return "sync/atomic." + obj.Name()
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if name := rec(u.Field(i).Type()); name != "" {
					return name
				}
			}
		case *types.Array:
			return rec(u.Elem())
		}
		return ""
	}
	return rec(t)
}

// isAtomicFunc reports whether fun resolves to a package-level function of
// sync/atomic.
func isAtomicFunc(p *Package, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldOf returns the struct field object a selector expression resolves
// to, or nil if the selector is not a field access.
func fieldOf(p *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
