package lint

// Concurrency hygiene: in the live runtime a struct field that is accessed
// through sync/atomic anywhere must be accessed that way everywhere — one
// plain read racing one atomic write is still a data race, and the race
// detector only catches it when a schedule realizes it. The check collects
// every field passed by address to a sync/atomic function, then flags any
// other plain selector access of the same field.
//
// Fields of the atomic.Int64-style wrapper types are immune by
// construction (their state is unexported), which is why the runtime
// prefers them; this check guards the pointer-style API.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

func checkAtomicMixed(r *Runner, p *Package, report func(token.Pos, string, string)) {
	if !matchPath(p.Path, r.Config.AtomicPkgs) {
		return
	}

	// Pass 1: fields (as types.Var objects) that reach sync/atomic by
	// address, and the selector nodes doing so (those are the sanctioned
	// accesses).
	atomicFields := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(p, call.Fun) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldOf(p, sel); v != nil {
					atomicFields[v] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: any other access of those fields is a plain (racy) access.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			v := fieldOf(p, sel)
			if v == nil || !atomicFields[v] {
				return true
			}
			report(sel.Sel.Pos(), CheckAtomicMixed,
				fmt.Sprintf("plain access of field %s, which is accessed via sync/atomic elsewhere; mixing the two races", v.Name()))
			return true
		})
	}
}

// isAtomicFunc reports whether fun resolves to a package-level function of
// sync/atomic.
func isAtomicFunc(p *Package, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldOf returns the struct field object a selector expression resolves
// to, or nil if the selector is not a field access.
func fieldOf(p *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
