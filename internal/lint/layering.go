package lint

// Layering check: the intended import DAG is data (Config.Layers), and any
// module-internal import not on a package's allowlist is a back-edge. A
// module package absent from the map entirely must be registered, which
// makes every new package take an explicit position in the architecture
// instead of growing ad-hoc dependencies.

import (
	"fmt"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

func checkLayerDAG(r *Runner, p *Package, report func(token.Pos, string, string)) {
	c := &r.Config
	if c.Module == "" {
		return
	}
	inModule := p.Path == c.Module || strings.HasPrefix(p.Path, c.Module+"/")
	if !inModule || matchPath(p.Path, c.LayerExempt) {
		return
	}
	allowed, registered := c.Layers[p.Path]
	if !registered {
		report(p.Files[0].Name.Pos(), CheckLayerDAG,
			fmt.Sprintf("package %s is not registered in the layering policy (add it to lint.DefaultConfig Layers with its allowed imports)", p.Path))
		return
	}
	allowSet := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		allowSet[a] = true
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != c.Module && !strings.HasPrefix(path, c.Module+"/") {
				continue // stdlib: not a layering concern
			}
			if !allowSet[path] {
				report(imp.Pos(), CheckLayerDAG,
					fmt.Sprintf("%s may not import %s (allowed: %s); importing it is a back-edge in the layer DAG",
						p.Path, path, allowedList(allowed)))
			}
		}
	}
}

func allowedList(allowed []string) string {
	if len(allowed) == 0 {
		return "none"
	}
	s := append([]string(nil), allowed...)
	sort.Strings(s)
	return quote(s)
}
