// Package missing imports a package that exists neither in the module nor
// in the standard library, used to prove the loader surfaces resolution
// failures as soft type errors instead of crashing.
package missing

import "no/such/stdlib"

// Use the import so the file is otherwise well-formed.
var _ = stdlib.Anything
