// Package a is half of a deliberate import cycle (a -> b -> a), used to
// prove the loader detects cycles instead of recursing forever.
package a

import "badfixt/cycle/b"

// A references b so the import is used.
const A = b.B + 1
