// Package b is the other half of the deliberate a -> b -> a import cycle.
package b

import "badfixt/cycle/a"

// B references a so the import is used.
const B = a.A + 1
