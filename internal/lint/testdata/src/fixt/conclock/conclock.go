// Package conclock is a fixture for conc-lock-order: two mutexes
// acquired in opposite orders by two call paths in the same package.
// One direction goes through a static helper call while the first lock
// is held (the held-set walk follows calls); the other acquires both
// inline. Both witness sites are reported — each direction is half of
// the inversion.
package conclock

import "sync"

type account struct {
	mu  sync.Mutex
	log sync.Mutex
}

// deposit holds mu across a helper that takes log: the mu -> log half.
func deposit(a *account) {
	a.mu.Lock()
	defer a.mu.Unlock()
	note(a)
}

// note acquires log; on its own that is fine, but deposit reaches it
// with mu held.
func note(a *account) {
	a.log.Lock() // want "mutex .* acquired while .* is held, but the opposite order also occurs"
	defer a.log.Unlock()
}

// audit takes the locks inline in the opposite order: the log -> mu
// half, completing the inversion.
func audit(a *account) {
	a.log.Lock()
	defer a.log.Unlock()
	a.mu.Lock() // want "mutex .* acquired while .* is held, but the opposite order also occurs"
	a.mu.Unlock()
}
