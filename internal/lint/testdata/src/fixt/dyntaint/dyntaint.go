// Package dyntaint is an oblivious fixture whose payload leaks only
// through dynamic dispatch: an interface method call carries the pulse
// into a sibling package's classifier (the branch it takes is flagged
// over there), and a func-typed field bound to a sibling function
// echoes the payload back into a branch condition here. Both sinks
// require the devirtualized call graph to resolve; a static-only graph
// sees neither.
package dyntaint

import (
	"coleader/internal/lint/testdata/src/fixt/dyntainthelp"
	"coleader/internal/pulse"
)

// router fans pulses out through dynamic targets.
type router struct {
	d    dyntainthelp.Decider
	echo func(pulse.Pulse) pulse.Pulse
}

// newRouter wires the dynamic targets: the composite literal makes
// Inspect live for the interface pass, the assignment binds Ident for
// the func-value pass.
func newRouter() *router {
	r := &router{d: dyntainthelp.Inspect{}}
	r.echo = dyntainthelp.Ident
	return r
}

// route hands its payload to the interface target and branches on a
// value echoed back through the func-typed field.
func (r *router) route(p pulse.Port, m pulse.Pulse, forward func(pulse.Port, pulse.Pulse)) {
	r.d.Class(m)
	if r.echo(m) == (pulse.Pulse{}) { // want "branch condition .* derived from a pulse payload"
		forward(p.Opposite(), m)
	}
	forward(p, m)
}
