// Package atomicmix is a fixture mixing atomic and plain field access.
package atomicmix

import "sync/atomic"

type counter struct {
	hits int64 // accessed via sync/atomic: every access must be atomic
	cold int64 // never accessed atomically: plain access is fine
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
	c.cold++
}

func (c *counter) peek() int64 {
	return c.hits // want "plain access of field hits"
}

func (c *counter) reset() {
	c.hits = 0 // want "plain access of field hits"
	c.cold = 0
}

func (c *counter) peekAtomically() int64 {
	return atomic.LoadInt64(&c.hits)
}
