// Package unreg is absent from the layering policy.
package unreg // want "package fixt/layer/unreg is not registered in the layering policy"

// Orphan has no assigned layer.
const Orphan = 0
