// Package b sits above a and may import it.
package b

import "fixt/layer/a"

// Mid builds on the layer below.
const Mid = a.Base + 1
