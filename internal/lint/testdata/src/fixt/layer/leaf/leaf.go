// Package leaf is registered as a foundation package (no internal deps
// allowed), mirroring leaves like internal/benchjson: any module-internal
// import must be flagged.
package leaf

import "fixt/layer/a" // want "fixt/layer/leaf may not import fixt/layer/a"

// UsesA forces the import to survive compilation.
const UsesA = a.Base
