// Package c may import b but reaches around it to a: a back-edge.
package c

import (
	"fixt/layer/a" // want "fixt/layer/c may not import fixt/layer/a"
	"fixt/layer/b"
)

// Top skips a layer.
const Top = a.Base + b.Mid
