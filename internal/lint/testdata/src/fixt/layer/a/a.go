// Package a is the bottom fixture layer.
package a

// Base anchors the layer.
const Base = 1
