// Package content stands in for a content-carrying package (like
// internal/baseline) that oblivious packages must not import.
package content

// Payload is a message with information in it.
type Payload struct{ V uint64 }
