// Package staterestore is a fixture with restore-parity violations: one
// handler-written field is snapshotted but never restored (its value
// would leak across explorer branches), and Restore writes a field
// SnapshotTo never encodes (snapshot/restore layout skew).
package staterestore

import (
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Skewed snapshots rounds and mode but restores rounds and legacy.
type Skewed struct {
	rounds uint64
	mode   uint64 // want "field Skewed.mode is written by Init/OnMsg but never restored by Restore"
	legacy uint64 // want "Restore writes field Skewed.legacy, which SnapshotTo never encodes"
}

func (s *Skewed) Init(e node.PulseEmitter) { s.mode = 1 }

func (s *Skewed) OnMsg(p pulse.Port, m pulse.Pulse, e node.PulseEmitter) {
	s.rounds++
	if s.mode == 1 {
		e.Send(p.Opposite(), m)
	}
}

func (s *Skewed) SnapshotTo(buf []byte) []byte {
	buf = node.AppendKey64(buf, s.rounds)
	return node.AppendKey64(buf, s.mode)
}

func (s *Skewed) Restore(snap []byte) {
	s.rounds = node.Key64(snap)
	s.legacy = node.Key64(snap[8:])
}
