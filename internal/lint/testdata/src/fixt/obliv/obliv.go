// Package obliv is a fixture with content-obliviousness violations.
package obliv

import (
	"encoding/json" // want "content-oblivious package imports content-carrying \"encoding/json\""

	"fixt/content" // want "content-oblivious package imports content-carrying \"fixt/content\""

	"coleader/internal/pulse"
)

// Chatty leaks content over a non-pulse channel.
type Chatty struct {
	payloads chan uint64 // want "channel of uint64 in content-oblivious package"
	pulses   chan pulse.Pulse
}

// Peeker inspects its payload.
type Peeker struct{ last pulse.Pulse }

// OnMsg stores and compares the payload: both uses are violations.
func (pk *Peeker) OnMsg(p pulse.Port, m pulse.Pulse, forward func(pulse.Port, pulse.Pulse)) {
	pk.last = m               // want "pulse payload \"m\" inspected in OnMsg"
	if m == (pulse.Pulse{}) { // want "pulse payload \"m\" inspected in OnMsg"
		forward(p.Opposite(), pulse.Pulse{})
	}
}

// Forwarder passes the payload through verbatim: allowed.
type Forwarder struct{ inner *Peeker }

// OnMsg forwards m as a direct call argument, which the model permits.
func (fw *Forwarder) OnMsg(p pulse.Port, m pulse.Pulse, forward func(pulse.Port, pulse.Pulse)) {
	forward(p, m)
}

// marshal exists so the json import is used.
func marshal(c content.Payload) []byte {
	b, _ := json.Marshal(c)
	return b
}
