// Package det is a fixture with determinism violations.
package det

import (
	"math/rand"
	"time"
)

// Wall-clock reads and sleeps leak timing into the model.
func clocky() time.Duration {
	start := time.Now()          // want "wall-clock call time.Now"
	time.Sleep(time.Microsecond) // want "wall-clock call time.Sleep"
	return time.Since(start)     // want "wall-clock call time.Since"
}

// globalDraw uses the shared global source: unreproducible.
func globalDraw() int {
	return rand.Intn(6) // want "global math/rand.Intn draws from the shared source"
}

// seededDraw threads an explicitly seeded generator: allowed.
func seededDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// iterate ranges over a map, whose order is randomized per run.
func iterate(m map[int]int, s []int) int {
	total := 0
	for k := range m { // want "range over map map\\[int\\]int has randomized order"
		total += k
	}
	for _, v := range s { // slices iterate in order: allowed
		total += v
	}
	return total
}

// suppressed demonstrates the //oblint:allow directive: the finding is
// recorded as suppressed but does not fail the build.
func suppressed() int64 {
	//oblint:allow det-time
	return time.Now().UnixNano()
}
