// Package statesnap is a fixture with an undo-coverage violation: the
// machine's handlers write a field that SnapshotTo never encodes and
// Restore never sets, so undo-based exploration would resurrect a stale
// value on every backtrack.
package statesnap

import (
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Lossy is an Undoable machine whose drops counter is mutated by OnMsg
// but missing from both halves of the snapshot codec.
type Lossy struct {
	seen  uint64
	drops uint64 // want "field Lossy.drops is written by Init/OnMsg but never encoded by SnapshotTo" "field Lossy.drops is written by Init/OnMsg but never restored by Restore"
}

func (l *Lossy) Init(e node.PulseEmitter) { l.seen = 0 }

func (l *Lossy) OnMsg(p pulse.Port, m pulse.Pulse, e node.PulseEmitter) {
	l.seen++
	if p == pulse.Port1 {
		l.drops++
		return
	}
	e.Send(p.Opposite(), m)
}

func (l *Lossy) SnapshotTo(buf []byte) []byte { return node.AppendKey64(buf, l.seen) }

func (l *Lossy) Restore(snap []byte) { l.seen = node.Key64(snap) }
