// Package taint is a fixture with payload-derivation violations: branches
// on values derived from a pulse payload through assignments, composite
// literals, struct fields, function returns, and closures.
package taint

import "coleader/internal/pulse"

type box struct{ v pulse.Pulse }

// Sneaky launders its payload through a local and a struct field.
type Sneaky struct {
	stash pulse.Pulse
}

// OnMsg derives values from its payload and branches on them; none of
// these conditions mention the parameter m directly.
func (s *Sneaky) OnMsg(p pulse.Port, m pulse.Pulse, forward func(pulse.Port, pulse.Pulse)) {
	d := m
	if d == (pulse.Pulse{}) { // want "branch condition .* derived from a pulse payload"
		forward(p, m)
	}
	b := box{v: m}
	if b.v == (pulse.Pulse{}) { // want "branch condition .* derived from a pulse payload"
		forward(p.Opposite(), m)
	}
	s.stash = m
}

// laterBranch branches on a struct field that OnMsg tainted: field taint
// survives across handler boundaries.
func (s *Sneaky) laterBranch() {
	if s.stash == (pulse.Pulse{}) { // want "branch condition .* derived from a pulse payload"
		return
	}
}

// peek returns a payload-derived value, tainting every call of it.
func peek(m pulse.Pulse) pulse.Pulse { return m }

func viaReturn(m pulse.Pulse) int {
	if peek(m) == (pulse.Pulse{}) { // want "branch condition .* derived from a pulse payload"
		return 1
	}
	return 0
}

// viaClosure taints through both closure shapes: a closure returning the
// payload, and a closure writing it into an outer variable.
func viaClosure(m pulse.Pulse) int {
	grab := func() pulse.Pulse { return m }
	if grab() == (pulse.Pulse{}) { // want "branch condition .* derived from a pulse payload"
		return 1
	}
	var d pulse.Pulse
	set := func() { d = m }
	set()
	switch d { // want "branch condition .* derived from a pulse payload"
	case pulse.Pulse{}:
		return 2
	}
	return 0
}

// clean branches on the port and forwards the payload verbatim: the model
// permits both.
func clean(p pulse.Port, m pulse.Pulse, forward func(pulse.Port, pulse.Pulse)) {
	if p == pulse.Port0 {
		forward(p, m)
	}
}

// Batched mirrors a node.BatchMachine implementation: OnMsg consumes one
// pulse, OnPulses consumes a counted run. Its OnMsg stashes the payload,
// so the field is tainted when OnPulses later branches on it.
type Batched struct {
	recv  uint64
	stash pulse.Pulse
}

func (b *Batched) OnMsg(p pulse.Port, m pulse.Pulse, forward func(pulse.Port, pulse.Pulse)) {
	b.recv++
	b.stash = m
	forward(p.Opposite(), m)
}

// OnPulses branches freely on the run length k — a plain uint64 carrying
// arrival multiplicity, which the content-oblivious model exposes
// legitimately, so none of the count-derived conditions fire. The one
// finding is the branch on the field OnMsg stashed a payload into:
// content laundered through state is still content.
func (b *Batched) OnPulses(p pulse.Port, k uint64, sendRun func(pulse.Port, uint64)) uint64 {
	if k > b.recv { // count-derived: clean
		k = b.recv
	}
	d := k / 2
	switch { // count-derived: clean
	case d == 0:
		return 1
	case p == pulse.Port0 && d < k:
		sendRun(p.Opposite(), d)
	}
	b.recv += k
	if b.stash == (pulse.Pulse{}) { // want "branch condition .* derived from a pulse payload"
		return 1
	}
	return k
}
