// Package concleak is a fixture for conc-goroutine-leak: goroutines
// whose bodies spin on an unconditional loop with no channel gate and
// no lexical exit. One leak is spawned as a literal, one through a func
// value the resolver devirtualizes; the gated and exiting spawns below
// must stay clean.
package concleak

type counter struct{ n int }

// spinLit leaks via a literal body.
func spinLit(c *counter) {
	go func() { // want "goroutine spawned here runs an unconditional loop"
		for {
			c.n++
		}
	}()
}

// churn is the devirtualized leak target.
func churn(c *counter) {
	for {
		c.n++
	}
}

// spinDyn leaks through a func value: the spawned expression is a
// dynamic call that resolves to churn via the module binding index.
func spinDyn(c *counter) {
	run := churn
	go run(c) // want "goroutine spawned here runs an unconditional loop in .*churn"
}

// gated is clean: every iteration waits on a channel, so closing or
// feeding tick controls the goroutine.
func gated(c *counter, tick chan struct{}) {
	go func() {
		for {
			<-tick
			c.n++
		}
	}()
}

// bounded is clean: the loop has a lexical exit.
func bounded(c *counter) {
	go func() {
		for {
			if c.n > 10 {
				return
			}
			c.n++
		}
	}()
}
