// Package faultplane is a fixture shaped like internal/fault, violating
// the policies the real fault plane is registered under: it must stay
// content-oblivious (the adversary may count pulses but never read them)
// and deterministic (its schedule must replay bit-for-bit from a seed).
package faultplane

import (
	"encoding/json" // want "content-oblivious package imports content-carrying \"encoding/json\""
	"math/rand"
	"time"
)

// Injection is a scheduled fault, as in the real plane.
type Injection struct {
	Chan    int
	Trigger uint64
}

// Plane is a fault schedule with two illegal capabilities.
type Plane struct {
	// payloads would let the adversary inject content, not just pulses.
	payloads chan uint64 // want "channel of uint64 in content-oblivious package"
	pending  map[int][]Injection
}

// schedule draws triggers from the global source: two planes built from
// the same seed would disagree, so no run could be replayed.
func (p *Plane) schedule(budget int) {
	for i := 0; i < budget; i++ {
		in := Injection{Chan: rand.Intn(4), Trigger: uint64(i) + 1} // want "global math/rand.Intn draws from the shared source"
		p.pending[in.Chan] = append(p.pending[in.Chan], in)
	}
}

// log serializes the schedule. The map iteration randomizes the log order
// across runs, and the timestamp ties it to the wall clock: both break the
// identical-seed-identical-log guarantee.
func (p *Plane) log() []byte {
	var all []Injection
	for _, ins := range p.pending { // want "range over map map\\[int\\]\\[\\]fixt/faultplane.Injection has randomized order"
		all = append(all, ins...)
	}
	_ = time.Now() // want "wall-clock call time.Now"
	b, _ := json.Marshal(all)
	return b
}

// firedAt replays deterministically from sorted per-channel lists: the
// shape the real plane uses, with no violations.
func (p *Plane) firedAt(c int, count uint64) bool {
	ins := p.pending[c]
	return len(ins) > 0 && ins[0].Trigger == count
}
