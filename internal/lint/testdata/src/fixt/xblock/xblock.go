// Package xblock is a fixture with a cross-package handler-block
// violation: a machine-shaped type — detected by its OnMsg emitter
// parameter alone, with no HandlerPkgs registration — whose handler
// reaches a channel send declared in a sibling package.
package xblock

import (
	"coleader/internal/lint/testdata/src/fixt/xblockhelp"
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Relay forwards every pulse and notifies an out-of-band subscriber.
type Relay struct {
	n xblockhelp.Notifier
}

func (r *Relay) Init(e node.PulseEmitter) {}

func (r *Relay) OnMsg(p pulse.Port, m pulse.Pulse, e node.PulseEmitter) {
	e.Send(p.Opposite(), m)
	r.n.Notify(1)
}
