// Package dynblock is a fixture with handler-block violations reachable
// only through dynamic dispatch: the machine's OnMsg never blocks
// directly, but it calls an interface method and a func-typed field
// whose module candidates (in the sibling dynblockhelp package) block.
// A static-only call graph loses the chain at both sites; the type-set
// index resolves them. The fixtures import each other by real module
// path so the same sources also load under cmd/oblint without
// ExtraRoots.
package dynblock

import (
	"coleader/internal/lint/testdata/src/fixt/dynblockhelp"
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Fan is machine-shaped (its OnMsg takes an Emitter instantiation) and
// is therefore a handler root with no HandlerPkgs registration.
type Fan struct {
	sink dynblockhelp.Sink
	wait func(chan int)
	tick chan int
}

// NewFan wires the dynamic targets: the composite literal makes
// ChanSink live for the interface pass, the assignment binds Wait for
// the func-value pass.
func NewFan(c chan int) *Fan {
	f := &Fan{sink: &dynblockhelp.ChanSink{C: c}, tick: make(chan int)}
	f.wait = dynblockhelp.Wait
	return f
}

func (f *Fan) Init(e node.PulseEmitter) {}

func (f *Fan) OnMsg(p pulse.Port, m pulse.Pulse, e node.PulseEmitter) {
	e.Send(p.Opposite(), m)
	f.sink.Put(1)
	f.wait(f.tick)
}
