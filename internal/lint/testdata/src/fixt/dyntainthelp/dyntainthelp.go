// Package dyntainthelp holds the dynamic-dispatch targets for the
// dyntaint fixture: a classifier that branches on its pulse parameter —
// harmless here, a model violation when an oblivious caller's payload
// reaches it through a devirtualized interface call — and an identity
// function that launders taint through a func value's return.
package dyntainthelp

import "coleader/internal/pulse"

// Decider is the interface the dyntaint router classifies through.
type Decider interface {
	Class(m pulse.Pulse) int
}

// Inspect is the only live Decider implementation in the fixture set.
type Inspect struct{}

// Class branches on its argument; the finding lands when the argument
// derives from an oblivious package's payload.
func (Inspect) Class(m pulse.Pulse) int {
	if m == (pulse.Pulse{}) { // want "branch condition .* derived from a pulse payload"
		return 0
	}
	return 1
}

// Ident returns its argument unchanged, laundering taint through a
// func-value call's return.
func Ident(m pulse.Pulse) pulse.Pulse { return m }
