// Package xblockhelp holds a helper whose notify path performs a channel
// send. The helper is fine on its own; the violation appears when an
// event handler in a sibling package reaches it through the module-wide
// call graph.
package xblockhelp

// Notifier fans events out to a subscriber channel.
type Notifier struct {
	C chan int
}

// Notify publishes ev synchronously; with a full buffer this blocks the
// calling goroutine.
func (n *Notifier) Notify(ev int) {
	n.C <- ev // want "blocking channel send reachable from event handler .*OnMsg"
}
