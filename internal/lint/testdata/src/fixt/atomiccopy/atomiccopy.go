// Package atomiccopy is a fixture with by-value copies of sync/atomic
// wrapper values, which silently fork their state. go vet's copylocks does
// not flag these (wrapper types carry no Lock method).
package atomiccopy

import "sync/atomic"

type counters struct {
	hits atomic.Int64
	name string
}

type wrapped struct {
	inner counters
}

// snapshot copies the wrapper out of its struct: its Load now observes a
// frozen fork while writers keep updating c.hits.
func snapshot(c *counters) int64 {
	snap := c.hits // want "by-value copy of sync/atomic.Int64"
	return snap.Load()
}

// byArg copies the wrapper into a callee.
func byArg(c *counters) {
	consume(c.hits) // want "by-value copy of sync/atomic.Int64"
}

func consume(v atomic.Int64) { _ = v.Load() }

// byStruct copies a whole struct that embeds a wrapper; the fork hides one
// level down.
func byStruct(c *counters) counters {
	return *c // want "by-value copy of sync/atomic.Int64"
}

// byLiteral embeds a copied wrapper into a fresh composite literal.
func byLiteral(c *counters) wrapped {
	return wrapped{inner: *c} // want "by-value copy of sync/atomic.Int64"
}

// fine: addresses, method calls, and fresh zero values never fork state.
func fine(c *counters) int64 {
	p := &c.hits
	var fresh atomic.Int64
	fresh.Store(p.Load())
	return fresh.Load() + c.hits.Load()
}
