// Package statekey is a fixture with memo-key violations: handler-written
// fields missing from the state key, on both the KeyAppender path
// (AppendStateKey) and the CloneMachine/StateKey fallback path. Either
// omission merges distinct global states in the exploration memo.
package statekey

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Narrow keys only its round counter; votes mutations are invisible to
// the memo.
type Narrow struct {
	round uint64
	votes uint64 // want "field Narrow.votes is written by Init/OnMsg but never keyed by AppendStateKey"
}

func (n *Narrow) Init(e node.PulseEmitter) {}

func (n *Narrow) OnMsg(p pulse.Port, m pulse.Pulse, e node.PulseEmitter) {
	n.round++
	if p == pulse.Port1 {
		n.votes++
	}
}

func (n *Narrow) AppendStateKey(dst []byte) []byte { return node.AppendKey64(dst, n.round) }

// Stale uses the CloneMachine/StateKey fallback; its string key omits the
// phase field.
type Stale struct {
	phase uint64 // want "field Stale.phase is written by Init/OnMsg but never keyed by StateKey"
	count uint64
}

func (s *Stale) Init(e node.PulseEmitter) { s.phase = 1 }

func (s *Stale) OnMsg(p pulse.Port, m pulse.Pulse, e node.PulseEmitter) {
	s.phase++
	s.count++
}

func (s *Stale) CloneMachine() *Stale {
	c := *s
	return &c
}

func (s *Stale) StateKey() string { return fmt.Sprintf("stale|%d", s.count) }
