// Package chandir is a fixture for conc-chan-direction: //oblint:chandir
// annotations declare which direction code outside the declaring type
// may use a channel field, the declaring type's own methods stay exempt,
// and malformed or misplaced directives are themselves findings.
package chandir

// mailbox owns an intake channel (outsiders may only send) and a
// delivery channel (outsiders may only receive).
type mailbox struct {
	in chan int //oblint:chandir send

	out chan int //oblint:chandir recv

	//oblint:chandir send
	n int // want "oblint:chandir on non-channel field mailbox.n"

	//oblint:chandir both // want "malformed directive"
	bad chan int
}

// fill is outside code: sending on the intake is the annotated use,
// sending on the delivery channel is not.
func fill(m *mailbox) {
	m.in <- 1
	m.out <- 2 // want "send on receive-annotated channel field mailbox.out"
}

// drain is outside code: receiving from the delivery channel is the
// annotated use, receiving (or ranging) from the intake is not.
func drain(m *mailbox) int {
	v := <-m.out
	v += <-m.in           // want "receive from send-annotated channel field mailbox.in"
	for w := range m.in { // want "receive .range. from send-annotated channel field mailbox.in"
		v += w
	}
	return v
}

// flush runs on the declaring type: both directions are exempt.
func (m *mailbox) flush() {
	for v := range m.in {
		m.out <- v
	}
	close(m.bad)
}
