// Package dynblockhelp holds the dynamic-dispatch targets for the
// dynblock fixture: an interface implementation whose method performs a
// blocking channel send, and a plain function (bound to a func-typed
// field by the sibling package) that performs a blocking receive. Each
// is fine on its own; the findings appear only because the module-wide
// devirtualized call graph resolves the sibling machine's interface and
// func-value calls here.
package dynblockhelp

// Sink is the indirection boundary the dynblock machine publishes
// through.
type Sink interface {
	Put(v int)
}

// ChanSink is the only live Sink implementation in the fixture set, so
// the CHA-narrowed resolver devirtualizes Sink.Put to this method.
type ChanSink struct{ C chan int }

// Put publishes v; with a full buffer this blocks the calling goroutine.
func (s *ChanSink) Put(v int) {
	s.C <- v // want "blocking channel send reachable from event handler .*OnMsg"
}

// Wait blocks until a tick arrives; the dynblock machine binds it to a
// func-typed field and calls it from its handler.
func Wait(tick chan int) {
	<-tick // want "blocking channel receive reachable from event handler .*OnMsg"
}
