// Package xtainthelp holds content-inspecting helpers. They are not
// themselves oblivious; the findings land here only when an oblivious
// caller hands them a payload across the package boundary.
package xtainthelp

import "coleader/internal/pulse"

// Classify branches on its argument: harmless on its own, a model
// violation when the argument derives from an oblivious package's pulse.
func Classify(m pulse.Pulse) int {
	if m == (pulse.Pulse{}) { // want "branch condition .* derived from a pulse payload"
		return 0
	}
	return 1
}

// Echo returns its argument unchanged, laundering taint through a
// cross-package return value.
func Echo(m pulse.Pulse) pulse.Pulse { return m }
