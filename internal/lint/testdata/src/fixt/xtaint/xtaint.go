// Package xtaint is an oblivious fixture whose payload leaks across a
// package boundary: helpers in xtainthelp receive and return the pulse,
// and the derived control flow is flagged on both sides — inside the
// helper that inspects the payload, and here on a condition over a value
// echoed back through the helper.
package xtaint

import (
	"coleader/internal/lint/testdata/src/fixt/xtainthelp"
	"coleader/internal/pulse"
)

// route hands its payload to a sibling-package classifier (the branch it
// performs is flagged over there) and branches on a value echoed back.
func route(p pulse.Port, m pulse.Pulse, forward func(pulse.Port, pulse.Pulse)) {
	xtainthelp.Classify(m)
	if xtainthelp.Echo(m) == (pulse.Pulse{}) { // want "branch condition .* derived from a pulse payload"
		forward(p.Opposite(), m)
	}
	forward(p, m)
}
