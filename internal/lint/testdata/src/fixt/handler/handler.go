// Package handler is a fixture with blocking operations inside event
// handlers (and helpers they reach), which would deadlock the event-driven
// runtimes of internal/sim and internal/live.
package handler

import (
	"sync"

	"coleader/internal/pulse"
)

// Node blocks directly in Init and reaches a blocking helper from OnMsg.
type Node struct {
	mu   sync.Mutex
	wg   sync.WaitGroup
	gate chan pulse.Pulse
}

func (n *Node) Init(e func(pulse.Port, pulse.Pulse)) {
	n.mu.Lock() // want "blocking sync.Mutex.Lock reachable from event handler"
	defer n.mu.Unlock()
	n.gate <- pulse.Pulse{} // want "blocking channel send reachable from event handler"
}

func (n *Node) OnMsg(p pulse.Port, _ pulse.Pulse, e func(pulse.Port, pulse.Pulse)) {
	<-n.gate // want "blocking channel receive reachable from event handler"
	n.helper()
}

// helper is not itself a handler, but OnMsg reaches it.
func (n *Node) helper() {
	n.wg.Wait() // want "blocking sync.WaitGroup.Wait reachable from event handler"
}

// Shutdown is not a handler and nothing reachable from one calls it: its
// blocking wait is fine (it runs on the caller's goroutine, not the event
// loop).
func (n *Node) Shutdown() {
	n.wg.Wait()
}

// Spawner shows the two permitted shapes: blocking inside a spawned
// goroutine, and a select made non-blocking by a default clause.
type Spawner struct {
	gate chan pulse.Pulse
}

func (s *Spawner) Init(e func(pulse.Port, pulse.Pulse)) {
	go func() {
		s.gate <- pulse.Pulse{} // the goroutine blocks, not the handler
	}()
	select { // non-blocking: default clause
	case <-s.gate:
	default:
	}
}

func (s *Spawner) OnMsg(p pulse.Port, _ pulse.Pulse, e func(pulse.Port, pulse.Pulse)) {
	select { // want "blocking select without default reachable from event handler"
	case <-s.gate:
	}
}
