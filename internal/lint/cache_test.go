package lint

// Cache correctness: a warm run must replay byte-identical findings with
// zero loads, and any relevant change — a source file, the policy, the
// analyzer itself — must invalidate exactly the affected keys. These tests
// run in-package (not lint_test) to reach the key-derivation internals.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func moduleRootT(t *testing.T) (string, string) {
	t.Helper()
	root, module, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	return root, module
}

// TestRunCachedWarmIdentical is the headline guarantee: cold populate,
// warm replay, identical results, all packages hit.
func TestRunCachedWarmIdentical(t *testing.T) {
	root, module := moduleRootT(t)
	dir := t.TempDir()
	cfg := DefaultConfig()

	cold, coldErrs, coldStats, err := RunCached(root, module, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Hits != 0 || coldStats.Misses == 0 {
		t.Fatalf("cold stats = %+v, want all misses", coldStats)
	}
	warm, warmErrs, warmStats, err := RunCached(root, module, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Misses != 0 || warmStats.Hits != coldStats.Misses {
		t.Fatalf("warm stats = %+v, want %d hits and no misses", warmStats, coldStats.Misses)
	}
	coldJSON, _ := json.Marshal(cold)
	warmJSON, _ := json.Marshal(warm)
	if string(coldJSON) != string(warmJSON) {
		t.Errorf("warm result differs from cold:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
	if !reflect.DeepEqual(coldErrs, warmErrs) {
		t.Errorf("warm type errors differ: cold=%v warm=%v", coldErrs, warmErrs)
	}

	// And the cached run must agree with the uncached reference path.
	l := NewLoader(root, module)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(pkgs))
	for i, p := range pkgs {
		paths[i] = p.Path
	}
	// The reference runner must see the same module-wide type-set index
	// the cached path wires up, or devirt stats (and any finding that
	// depends on a cross-package candidate) would legitimately differ.
	ref := (&Runner{Config: cfg, Fset: l.Fset, Resolve: l.Load, List: func() []string { return paths }}).Run(pkgs)
	refJSON, _ := json.Marshal(ref)
	if string(refJSON) != string(coldJSON) {
		t.Errorf("cached result differs from uncached reference:\nref:    %s\ncached: %s", refJSON, coldJSON)
	}
}

// TestCacheKeyInvalidation: editing a package flips its own key and every
// dependent's key, and leaves unrelated packages' keys alone.
func TestCacheKeyInvalidation(t *testing.T) {
	root, module := moduleRootT(t)
	cfg := DefaultConfig()
	pkgs, _, err := scanModule(root, module)
	if err != nil {
		t.Fatal(err)
	}
	salt, err := cacheSalt(pkgs, module, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pulse := module + "/internal/pulse"
	core := module + "/internal/core"
	stats := module + "/internal/stats"
	before := map[string]string{
		pulse: pkgKey(pkgs, salt, pulse),
		core:  pkgKey(pkgs, salt, core),
		stats: pkgKey(pkgs, salt, stats),
	}

	// Simulate an edit to internal/pulse by perturbing its file hash.
	pkgs[pulse].fileHash += "x"
	if got := pkgKey(pkgs, salt, pulse); got == before[pulse] {
		t.Error("editing a package did not change its own key")
	}
	if got := pkgKey(pkgs, salt, core); got == before[core] {
		t.Error("editing internal/pulse did not invalidate internal/core (a dependent)")
	}
	if got := pkgKey(pkgs, salt, stats); got != before[stats] {
		t.Error("editing internal/pulse invalidated internal/stats (not a dependent)")
	}
}

// TestCacheSaltCoversPolicyAndAnalyzer: a Config edit or an analyzer
// source edit must flip the salt — the staleness bug the CI double-run
// guards against.
func TestCacheSaltCoversPolicyAndAnalyzer(t *testing.T) {
	root, module := moduleRootT(t)
	cfg := DefaultConfig()
	pkgs, _, err := scanModule(root, module)
	if err != nil {
		t.Fatal(err)
	}
	base, err := cacheSalt(pkgs, module, cfg)
	if err != nil {
		t.Fatal(err)
	}

	widened := cfg
	widened.TimeExempt = append([]string{module + "/cmd"}, cfg.TimeExempt...)
	if s, _ := cacheSalt(pkgs, module, widened); s == base {
		t.Error("widening the policy did not change the cache salt")
	}

	pkgs[module+"/internal/lint"].fileHash += "x"
	if s, _ := cacheSalt(pkgs, module, cfg); s == base {
		t.Error("editing the analyzer's own sources did not change the cache salt")
	}
}

// TestCacheCorruptEntryIsMiss: a truncated entry must be re-analyzed, not
// trusted and not fatal.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	root, module := moduleRootT(t)
	dir := t.TempDir()
	cfg := DefaultConfig()
	if _, _, _, err := RunCached(root, module, cfg, dir); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("expected cache entries, got %d (err=%v)", len(ents), err)
	}
	if err := os.WriteFile(filepath.Join(dir, ents[0].Name()), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, stats, err := RunCached(root, module, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 1 {
		t.Errorf("corrupt entry: misses = %d, want exactly 1", stats.Misses)
	}
}

// TestScanMatchesLoadAll: the cheap scan and the full loader must agree on
// the package set, or the cache could silently skip a package.
func TestScanMatchesLoadAll(t *testing.T) {
	root, module := moduleRootT(t)
	_, order, err := scanModule(root, module)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, module)
	loaded, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	var loadedPaths []string
	for _, p := range loaded {
		loadedPaths = append(loadedPaths, p.Path)
	}
	if !reflect.DeepEqual(order, loadedPaths) {
		t.Errorf("scan sees %v\nloader sees %v", order, loadedPaths)
	}
}
