package lint_test

// Error-path coverage for the source loader: cyclic imports, unresolvable
// imports, syntactically invalid files, and empty package directories.
// The happy path is exercised constantly by every other test; these are
// the ways a broken tree must fail loudly instead of hanging or crashing.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coleader/internal/lint"
)

// badLoader mounts the badfixt tree (and any extra roots) on a fresh
// module loader.
func badLoader(t *testing.T, extra map[string]string) *lint.Loader {
	t.Helper()
	root, module, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := lint.NewLoader(root, module)
	bad, err := filepath.Abs("testdata/src/badfixt")
	if err != nil {
		t.Fatal(err)
	}
	l.ExtraRoots = map[string]string{"badfixt": bad}
	for prefix, dir := range extra {
		l.ExtraRoots[prefix] = dir
	}
	return l
}

// TestLoadImportCycle: a cyclic fixture must terminate with a cycle
// diagnostic — before cycle detection the loader recursed forever.
func TestLoadImportCycle(t *testing.T) {
	l := badLoader(t, nil)
	// The cycle surfaces either as a hard load error or as a soft type
	// error collected by the type-checker; the soft error lands on the
	// package whose import re-entered the in-progress load (here b, whose
	// import of a closes the cycle), so inspect both halves.
	var msgs []string
	for _, ip := range []string{"badfixt/cycle/a", "badfixt/cycle/b"} {
		p, err := l.Load(ip)
		if err != nil {
			msgs = append(msgs, err.Error())
			continue
		}
		for _, te := range p.TypeErrors {
			msgs = append(msgs, te.Error())
		}
	}
	found := false
	for _, m := range msgs {
		if strings.Contains(m, "import cycle") {
			found = true
		}
	}
	if !found {
		t.Fatalf("loading badfixt/cycle/{a,b}: want an import-cycle diagnostic, got %v", msgs)
	}
}

// TestLoadMissingImport: an import resolvable neither in the module nor in
// the stdlib becomes a soft type error, and checks still run.
func TestLoadMissingImport(t *testing.T) {
	l := badLoader(t, nil)
	p, err := l.Load("badfixt/missing")
	if err != nil {
		t.Fatalf("Load should soft-fail via TypeErrors, got hard error: %v", err)
	}
	if len(p.TypeErrors) == 0 {
		t.Fatal("expected type errors for unresolvable import, got none")
	}
	joined := ""
	for _, te := range p.TypeErrors {
		joined += te.Error() + "\n"
	}
	if !strings.Contains(joined, "no/such/stdlib") {
		t.Errorf("type errors do not name the missing import:\n%s", joined)
	}
	// The package must still be checkable: a runner over it cannot panic.
	runner := &lint.Runner{Config: lint.DefaultConfig(), Fset: l.Fset}
	_ = runner.Run([]*lint.Package{p})
}

// TestLoadSyntaxError: an unparseable file is a hard load error naming the
// file. The fixture is generated at runtime so gofmt never sees it.
func TestLoadSyntaxError(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc oops( {\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := badLoader(t, map[string]string{"brokenfixt": dir})
	if _, err := l.Load("brokenfixt"); err == nil {
		t.Fatal("Load of a syntactically invalid package should fail")
	} else if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("error should name the offending file, got: %v", err)
	}
}

// TestLoadEmptyDir: a directory with no Go files is a load error, not an
// empty package.
func TestLoadEmptyDir(t *testing.T) {
	l := badLoader(t, map[string]string{"emptyfixt": t.TempDir()})
	if _, err := l.Load("emptyfixt"); err == nil {
		t.Fatal("Load of an empty directory should fail")
	} else if !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("error = %v, want a 'no Go files' diagnostic", err)
	}
}

// TestLoadOutsideModule: a path neither module-internal nor registered via
// ExtraRoots is rejected up front.
func TestLoadOutsideModule(t *testing.T) {
	l := badLoader(t, nil)
	if _, err := l.Load("github.com/elsewhere/pkg"); err == nil {
		t.Fatal("Load of a foreign import path should fail")
	}
}
