package lint

// conc-* family: concurrency-integrity checks for the goroutine-bearing
// runtimes (internal/live, internal/fault, the experiment pools), built on
// the devirtualized call graph (callgraph.go). Like the state-* family,
// no configuration gates them: the properties are structural, so a new
// package is covered the day it is written.
//
//   - conc-goroutine-leak: the body a `go` statement spawns — the literal,
//     or every devirtualized candidate of the called expression — must not
//     contain an unconditional `for` loop with neither a channel gate
//     (select, channel receive, range over a channel: the operations that
//     park the goroutine and give a close() a way to end it) nor a
//     lexical exit (return, break, goto, panic). Such a loop spins until
//     process exit and the goroutine can never be shut down.
//   - conc-chan-direction: a struct field of channel type annotated
//     `//oblint:chandir recv` (or `send`) records the conduit/emitter role
//     convention: outside the declaring type's methods, the field may only
//     be received from (resp. sent to). The declaring type owns the other
//     side, so a wrong-direction use is a role violation — typically a
//     second sender racing the pump or a stolen receive starving it.
//   - conc-lock-order: two mutexes must be acquired in one consistent
//     order everywhere in the package. Acquisition pairs are collected per
//     function with calls followed — including devirtualized ones — while
//     locks are held; a pair locked in both orders is a deadlock waiting
//     for the right interleaving, and both witness sites are reported.
//
// Scope choices that keep the clean tree clean without suppressions:
// goroutine-leak inspects only the immediately spawned body (not its
// transitive callees); lock-order skips `go` and `defer` statements and
// uninvoked function literals (a deferred unlock keeps the lock held for
// pairing purposes, which is the conservative direction); chan-direction
// is opt-in per field. All three follow syntax, not every dataflow — the
// usual lint trade.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// --- conc-goroutine-leak ---------------------------------------------------

// spawnee is one body a `go` statement may run: a literal spawned in
// place, or a devirtualized candidate of the called expression.
type spawnee struct {
	pkg  *Package
	body *ast.BlockStmt
	name string // "" for literals
}

func checkConcLeak(r *Runner, p *Package, report func(token.Pos, string, string)) {
	g := r.module()
	g.add(p)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			for _, s := range spawnedBodies(g, p, gs) {
				loop := leakyLoop(s.pkg, s.body)
				if loop == nil {
					continue
				}
				where := "an unconditional loop"
				if s.name != "" {
					where = fmt.Sprintf("an unconditional loop in %s", s.name)
				}
				report(gs.Go, CheckConcLeak,
					fmt.Sprintf("goroutine spawned here runs %s with no channel gate (select, receive, range over a channel) and no lexical exit (return, break, goto, panic); nothing can ever stop it (goroutine leak)", where))
				break // one finding per go statement
			}
			return true
		})
	}
}

// spawnedBodies resolves the body (or bodies) a go statement runs.
func spawnedBodies(g *moduleGraph, p *Package, gs *ast.GoStmt) []spawnee {
	if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return []spawnee{{pkg: p, body: lit.Body}}
	}
	cands, _ := g.resolveCall(p, gs.Call)
	var out []spawnee
	for _, c := range cands {
		switch {
		case c.fn != nil:
			if d := g.declOf(c.fn); d != nil {
				out = append(out, spawnee{pkg: d.pkg, body: d.decl.Body, name: c.fn.FullName()})
			}
		case c.lit != nil:
			out = append(out, spawnee{pkg: c.pkg, body: c.lit.Body, name: "a bound closure"})
		}
	}
	return out
}

// leakyLoop returns the first unconditional for loop in body (nested
// literals excluded: they are not this goroutine) that has neither a
// channel gate nor a lexical exit, or nil.
func leakyLoop(p *Package, body *ast.BlockStmt) *ast.ForStmt {
	var bad *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		if !loopGated(p, fs.Body) && !loopExits(fs.Body) {
			bad = fs
			return false
		}
		return true
	})
	return bad
}

// loopGated reports whether the loop body contains a channel gate: a
// select, a channel receive, or a range over a channel (nested literals
// excluded).
func loopGated(p *Package, body *ast.BlockStmt) bool {
	gated := false
	ast.Inspect(body, func(n ast.Node) bool {
		if gated {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			gated = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				gated = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					gated = true
					return false
				}
			}
		}
		return true
	})
	return gated
}

// loopExits reports whether the loop body contains a lexical exit from
// the loop: a return, a goto, a panic, a labeled break, or an unlabeled
// break that binds to this loop (not to a nested for/range/switch/select).
func loopExits(body *ast.BlockStmt) bool {
	found := false
	walkParents(body, func(n ast.Node, parents []ast.Node) {
		if found {
			return
		}
		for _, pa := range parents {
			if _, ok := pa.(*ast.FuncLit); ok {
				return // a nested literal's exits are not this loop's
			}
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			switch {
			case n.Tok == token.GOTO:
				found = true
			case n.Tok != token.BREAK:
			case n.Label != nil:
				found = true // labeled break targets this loop or an outer one
			default:
				for _, pa := range parents {
					switch pa.(type) {
					case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
						*ast.TypeSwitchStmt, *ast.SelectStmt:
						return // binds to the nested statement
					}
				}
				found = true
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
	})
	return found
}

// --- conc-chan-direction ---------------------------------------------------

func checkConcChanDir(r *Runner, p *Package, report func(token.Pos, string, string)) {
	ann, owner := chandirAnnotations(r, p, report)
	if len(ann) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			recvName := ""
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv != nil {
				recvName = recvBaseName(fd)
			}
			ast.Inspect(d, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					if obj := chanFieldObj(p, n.Chan); obj != nil && ann[obj] == "recv" && owner[obj] != recvName {
						report(n.Arrow, CheckConcChanDir,
							fmt.Sprintf("send on receive-annotated channel field %s.%s outside %s's methods (//oblint:chandir recv: only the declaring type may send on it)",
								owner[obj], obj.Name(), owner[obj]))
					}
				case *ast.UnaryExpr:
					if n.Op != token.ARROW {
						return true
					}
					if obj := chanFieldObj(p, n.X); obj != nil && ann[obj] == "send" && owner[obj] != recvName {
						report(n.OpPos, CheckConcChanDir,
							fmt.Sprintf("receive from send-annotated channel field %s.%s outside %s's methods (//oblint:chandir send: only the declaring type may receive from it)",
								owner[obj], obj.Name(), owner[obj]))
					}
				case *ast.RangeStmt:
					if obj := chanFieldObj(p, n.X); obj != nil && ann[obj] == "send" && owner[obj] != recvName {
						report(n.For, CheckConcChanDir,
							fmt.Sprintf("receive (range) from send-annotated channel field %s.%s outside %s's methods (//oblint:chandir send: only the declaring type may receive from it)",
								owner[obj], obj.Name(), owner[obj]))
					}
				}
				return true
			})
		}
	}
}

// chandirAnnotations collects //oblint:chandir directives: a comment on a
// struct field's line (or the line above it) annotates the field's
// intended outside-use direction. Returns field object -> "recv"|"send"
// and field object -> declaring type name. Malformed directives are
// findings themselves: a typo here would silently disable the gate.
func chandirAnnotations(r *Runner, p *Package, report func(token.Pos, string, string)) (ann, owner map[types.Object]string) {
	ann = make(map[types.Object]string)
	owner = make(map[types.Object]string)
	lines := make(map[string]map[int]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//oblint:chandir")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) != 1 || (fields[0] != "recv" && fields[0] != "send") {
					report(c.Pos(), CheckConcChanDir,
						fmt.Sprintf("malformed directive %q: want //oblint:chandir recv|send", c.Text))
					continue
				}
				pos := r.Fset.Position(c.Pos())
				if lines[pos.Filename] == nil {
					lines[pos.Filename] = make(map[int]string)
				}
				// Grant the directive's own line (trailing comment) and the
				// next (standalone comment above the field).
				lines[pos.Filename][pos.Line] = fields[0]
				lines[pos.Filename][pos.Line+1] = fields[0]
			}
		}
	}
	if len(lines) == 0 {
		return ann, owner
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						obj := p.Info.Defs[name]
						if obj == nil {
							continue
						}
						pos := r.Fset.Position(name.Pos())
						dir, ok := lines[pos.Filename][pos.Line]
						if !ok {
							continue
						}
						if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
							report(name.Pos(), CheckConcChanDir,
								fmt.Sprintf("//oblint:chandir on non-channel field %s.%s (the directive describes a channel role)", ts.Name.Name, name.Name))
							continue
						}
						ann[obj] = dir
						owner[obj] = ts.Name.Name
					}
				}
			}
		}
	}
	return ann, owner
}

// chanFieldObj resolves a channel-operand expression to the struct field
// object it selects, or nil (locals, results of calls, non-fields).
func chanFieldObj(p *Package, e ast.Expr) types.Object {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// --- conc-lock-order -------------------------------------------------------

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

func checkConcLockOrder(r *Runner, p *Package, report func(token.Pos, string, string)) {
	g := r.module()
	g.add(p)

	type lockPair struct{ held, taken *types.Var }
	edges := make(map[lockPair]token.Pos) // first witness of each order

	var walkBody func(wp *Package, body ast.Node, held *[]*types.Var, visiting map[ast.Node]bool)
	walkBody = func(wp *Package, body ast.Node, held *[]*types.Var, visiting map[ast.Node]bool) {
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			if n == nil {
				return
			}
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				// Literals run when invoked (resolved at their call sites);
				// a spawned goroutine holds nothing of ours; a deferred
				// unlock keeps the lock held for pairing purposes.
				return
			case *ast.CallExpr:
				if mu, kind := lockCall(wp, n); kind != lockNone {
					if mu == nil {
						return // untrackable mutex expression
					}
					switch kind {
					case lockAcquire:
						for _, h := range *held {
							if h == mu {
								continue
							}
							k := lockPair{h, mu}
							if _, ok := edges[k]; !ok {
								edges[k] = n.Pos()
							}
						}
						*held = append(*held, mu)
					case lockRelease:
						for i := len(*held) - 1; i >= 0; i-- {
							if (*held)[i] == mu {
								*held = append((*held)[:i], (*held)[i+1:]...)
								break
							}
						}
					}
					return
				}
				if len(*held) > 0 {
					// Follow calls made while locks are held — static and
					// devirtualized alike — so a lock taken inside a helper
					// still pairs with the caller's.
					cands, _ := g.resolveCall(wp, n)
					for _, c := range cands {
						switch {
						case c.fn != nil:
							if d := g.declOf(c.fn); d != nil && !visiting[d.decl] {
								visiting[d.decl] = true
								walkBody(d.pkg, d.decl.Body, held, visiting)
							}
						case c.lit != nil:
							if !visiting[c.lit] {
								visiting[c.lit] = true
								walkBody(c.pkg, c.lit.Body, held, visiting)
							}
						}
					}
				}
			}
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				walk(c)
				return false
			})
		}
		walk(body)
	}

	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := []*types.Var{}
			walkBody(p, fd.Body, &held, map[ast.Node]bool{fd.Body: true})
		}
	}

	// Report each direction of every inverted pair at its first witness.
	// Sorting by witness position makes the iteration deterministic; the
	// finding set itself is order-independent.
	pairs := make([]lockPair, 0, len(edges))
	for k := range edges {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool { return edges[pairs[i]] < edges[pairs[j]] })
	for _, k := range pairs {
		if _, inverted := edges[lockPair{k.taken, k.held}]; inverted {
			report(edges[k], CheckConcLockOrder,
				fmt.Sprintf("mutex %s acquired while %s is held, but the opposite order also occurs in this package (a lock-order inversion deadlocks under the right interleaving)",
					k.taken.Name(), k.held.Name()))
		}
	}
}

// lockCall classifies a call as a sync.Mutex/RWMutex acquire or release
// and resolves the mutex operand to its variable or field object.
func lockCall(p *Package, call *ast.CallExpr) (*types.Var, lockKind) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, lockNone
	}
	fn := calleeFunc(p, call.Fun)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, lockNone
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil, lockNone
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return nil, lockNone
	}
	var kind lockKind
	switch fn.Name() {
	case "Lock", "RLock":
		kind = lockAcquire // RLock pairs like Lock: a waiting writer bridges the deadlock
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return nil, lockNone
	}
	return mutexObj(p, sel.X), kind
}

// mutexObj resolves the expression a lock method is called on to a stable
// identity: the variable or struct field object holding the mutex.
func mutexObj(p *Package, e ast.Expr) *types.Var {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		v, _ := objOf(p, e).(*types.Var)
		return v
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			v, _ := s.Obj().(*types.Var)
			return v
		}
		v, _ := p.Info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return mutexObj(p, e.X)
		}
	}
	return nil
}
