package lint_test

import (
	"encoding/json"
	"strings"
	"testing"

	"coleader/internal/lint"
)

// TestRepoClean is the acceptance gate: the repository's own tree must be
// free of model-invariant violations under the default policy. This is
// the same run `go run ./cmd/oblint ./...` performs in CI.
func TestRepoClean(t *testing.T) {
	root, module, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "coleader" {
		t.Fatalf("module = %q, want coleader", module)
	}
	l := lint.NewLoader(root, module)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("typecheck %s: %v", p.Path, e)
		}
	}
	runner := &lint.Runner{Config: lint.DefaultConfig(), Fset: l.Fset, Resolve: l.Load}
	res := runner.Run(pkgs)
	for _, f := range res.Findings {
		t.Errorf("finding: %s", f)
	}
	// Suppressions in the real tree are allowed but must be consciously
	// tracked in ROADMAP.md; keep the count asserted so adding one is a
	// visible, reviewed change.
	if len(res.Suppressed) != 0 {
		t.Errorf("suppressed findings = %d, want 0 (update this test and ROADMAP.md when suppressing)", len(res.Suppressed))
	}
}

// TestDefaultConfigRegistersAllPackages: every loaded module package is
// either registered in Layers or explicitly exempt, so the policy cannot
// silently lag the tree.
func TestDefaultConfigRegistersAllPackages(t *testing.T) {
	cfg := lint.DefaultConfig()
	root, module, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := lint.NewLoader(root, module)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.HasPrefix(p.Path, module+"/cmd") || strings.HasPrefix(p.Path, module+"/examples") {
			continue
		}
		if _, ok := cfg.Layers[p.Path]; !ok {
			t.Errorf("package %s missing from DefaultConfig Layers", p.Path)
		}
	}
	// And the reverse: no stale registrations for packages that are gone.
	loaded := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		loaded[p.Path] = true
	}
	for reg := range cfg.Layers {
		if !loaded[reg] {
			t.Errorf("Layers registers %s, which does not exist", reg)
		}
	}
}

func TestFindModule(t *testing.T) {
	root, module, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "coleader" {
		t.Errorf("module = %q, want coleader", module)
	}
	if !strings.HasSuffix(strings.ReplaceAll(root, "\\", "/"), "repo") && root == "" {
		t.Errorf("root = %q", root)
	}
	if _, _, err := lint.FindModule("/"); err == nil {
		t.Error("FindModule(/) should fail outside any module")
	}
}

func TestFindingJSON(t *testing.T) {
	f := lint.Finding{
		Check: lint.CheckDetTime, Pkg: "p", File: "f.go", Line: 3, Col: 7,
		Msg: "msg", Suppressed: true,
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back lint.Finding
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != f {
		t.Errorf("roundtrip %+v != %+v", back, f)
	}
	if f.String() != "f.go:3:7: [det-time] msg" {
		t.Errorf("String() = %q", f.String())
	}
}

func TestAllChecksDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range lint.AllChecks() {
		if seen[c] {
			t.Errorf("duplicate check name %q", c)
		}
		seen[c] = true
	}
	if len(seen) != 18 {
		t.Errorf("expected 18 checks, got %d", len(seen))
	}
	for _, c := range lint.AllChecks() {
		if lint.CheckDoc(c) == "" {
			t.Errorf("check %q has no one-line invariant doc (CheckDoc)", c)
		}
	}
}
