package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Check names, one per enforced invariant. Each maps to a clause of the
// paper's model (see DESIGN.md, "Enforced model invariants").
const (
	CheckObliviousImport  = "oblivious-import"
	CheckObliviousChan    = "oblivious-chan"
	CheckObliviousPayload = "oblivious-payload"
	CheckObliviousTaint   = "oblivious-taint"
	CheckDetTime          = "det-time"
	CheckDetGlobalRand    = "det-globalrand"
	CheckDetMapRange      = "det-maprange"
	CheckLayerDAG         = "layer-dag"
	CheckAtomicMixed      = "atomic-mixed"
	CheckAtomicCopy       = "atomic-copy"
	CheckHandlerBlock     = "handler-block"
	CheckStateSnapshot    = "state-snapshot"
	CheckStateRestore     = "state-restore"
	CheckStateKey         = "state-key"
	CheckStateSkew        = "state-skew"
	CheckConcLeak         = "conc-goroutine-leak"
	CheckConcChanDir      = "conc-chan-direction"
	CheckConcLockOrder    = "conc-lock-order"
)

// AllChecks lists every check name, in report order.
func AllChecks() []string {
	return []string{
		CheckObliviousImport, CheckObliviousChan, CheckObliviousPayload,
		CheckObliviousTaint,
		CheckDetTime, CheckDetGlobalRand, CheckDetMapRange,
		CheckLayerDAG, CheckAtomicMixed, CheckAtomicCopy,
		CheckHandlerBlock,
		CheckStateSnapshot, CheckStateRestore, CheckStateKey, CheckStateSkew,
		CheckConcLeak, CheckConcChanDir, CheckConcLockOrder,
	}
}

// checkDocs states, per check, the one-line model invariant it enforces.
// cmd/oblint -list-checks prints these so CI logs are self-describing.
var checkDocs = map[string]string{
	CheckObliviousImport:  "oblivious packages may not import content-carrying packages (encoding/*, internal/baseline)",
	CheckObliviousChan:    "channels declared in oblivious packages must carry pulse.Pulse only",
	CheckObliviousPayload: "an OnMsg handler may forward its pulse payload verbatim but never inspect it",
	CheckObliviousTaint:   "no branch may depend on a value derived from a pulse payload (taint through assignments, fields, returns, closures)",
	CheckDetTime:          "no wall-clock calls outside internal/live and exempted reporting files (the model has no clocks)",
	CheckDetGlobalRand:    "no global math/rand draws; randomness must be an injected, seeded generator",
	CheckDetMapRange:      "no map iteration in replay-deterministic packages (randomized order leaks nondeterminism)",
	CheckLayerDAG:         "module-internal imports must follow the registered layer DAG; new packages must register",
	CheckAtomicMixed:      "a field accessed via sync/atomic anywhere must be accessed that way everywhere",
	CheckAtomicCopy:       "atomic.Int64-style values must never be copied by value (a copy races with concurrent updates)",
	CheckHandlerBlock:     "event handlers run by internal/sim and internal/live must not reach blocking operations",
	CheckStateSnapshot:    "every field a machine's handlers write must be encoded by SnapshotTo (an omitted field makes undo exploration resurrect stale state)",
	CheckStateRestore:     "every field a machine's handlers write must be reset by Restore (an omitted field leaks state across explorer branches)",
	CheckStateKey:         "every field a machine's handlers write must enter AppendStateKey/StateKey (an omitted field merges distinct states in the memo table)",
	CheckStateSkew:        "Restore may only write fields SnapshotTo encodes (layout skew between the two desynchronizes snapshot and restore)",
	CheckConcLeak:         "a spawned goroutine must not busy-loop forever: every unconditional loop in its body needs a channel gate (select/receive/range) or a lexical exit (return/break/goto/panic)",
	CheckConcChanDir:      "a channel field annotated //oblint:chandir recv|send may only be used in that direction outside the declaring type's methods (the conduit/emitter role convention)",
	CheckConcLockOrder:    "two mutexes must be acquired in one consistent order everywhere in a package (an inversion, found over the devirtualized call graph, can deadlock)",
}

// CheckDoc returns the one-line invariant a check enforces ("" if unknown).
func CheckDoc(name string) string { return checkDocs[name] }

// Config is the policy a Runner enforces. The zero value enforces nothing;
// DefaultConfig returns this repository's policy.
type Config struct {
	// Module is the module path all package-relative entries are rooted at.
	Module string

	// Oblivious lists import paths of content-oblivious packages: those
	// whose algorithms may react only to the order and ports of pulse
	// arrivals (paper Section 2).
	Oblivious []string

	// PulseType is the fully qualified contentless message type, e.g.
	// "coleader/internal/pulse.Pulse". It is the only element type allowed
	// for channels declared inside oblivious packages.
	PulseType string

	// ContentImports are import paths (exact or prefix) that carry message
	// content and are therefore banned inside oblivious packages.
	ContentImports []string

	// TimeExempt are import paths (exact or prefix) where wall-clock calls
	// (time.Now, time.Sleep, ...) are permitted. Everywhere else they are
	// nondeterminism leaks.
	TimeExempt []string

	// TimeExemptFiles are module-relative file paths (slash-separated)
	// individually exempt from det-time: flag-parsing and reporting files
	// in cmd/ that legitimately time their own output. This is deliberately
	// file-granular so simulation-critical logic added next to them is
	// still checked.
	TimeExemptFiles []string

	// HandlerPkgs are packages whose Init/OnMsg handler methods run on the
	// event loops of internal/sim and internal/live; blocking operations
	// reachable inside them would deadlock the runtime.
	HandlerPkgs []string

	// EmitterType is the fully qualified generic emitter interface handed
	// to handlers, e.g. "coleader/internal/node.Emitter". Any type whose
	// OnMsg method takes an instantiation of it is machine-shaped: its
	// handlers are treated as handler-block roots even outside HandlerPkgs,
	// so new machine packages are covered before anyone registers them.
	EmitterType string

	// MapRangePkgs are packages whose replays must be deterministic, so
	// ranging over a map (randomized iteration order) is flagged.
	MapRangePkgs []string

	// Layers encodes the intended import DAG: package path -> the
	// module-internal imports it may use. A module package missing from
	// the map (and not matched by LayerExempt) is an error, which forces
	// every new package to take a conscious position in the layering.
	Layers map[string][]string

	// LayerExempt are import paths (exact or prefix) outside the layering
	// policy, e.g. cmd/ and examples/ which may import anything.
	LayerExempt []string

	// AtomicPkgs are packages subject to the mixed atomic/plain field
	// access check.
	AtomicPkgs []string

	// Checks optionally restricts which checks run; empty means all.
	Checks []string
}

// FindingsSchemaVersion identifies the JSON shape of Result as emitted by
// cmd/oblint -json (fields, check names, sort order). Bump it whenever a
// change would make two otherwise-equal trees produce different bytes, so
// CI artifact diffs compare like with like. v3: the conc-* check family
// and per-site devirtualization stats (Result.Devirt).
const FindingsSchemaVersion = 3

// Finding is one rule violation at a source position.
type Finding struct {
	Check      string `json:"check"`
	Pkg        string `json:"pkg"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Msg        string `json:"msg"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Msg)
}

// DevirtStats counts dynamic call sites — interface method calls and
// calls through func-typed values — by resolution outcome against the
// module-wide type-set index (callgraph.go). Resolved sites devirtualized
// to exactly one candidate, over-approximated sites to several (all
// followed), unresolvable sites to none: those end call chains and are the
// analyzer's remaining soundness gap, ratcheted down in CI.
type DevirtStats struct {
	ResolvedSites     int `json:"resolvedSites"`
	OverApproxSites   int `json:"overApproxSites"`
	UnresolvableSites int `json:"unresolvableSites"`
}

// Add accumulates o into s.
func (s *DevirtStats) Add(o DevirtStats) {
	s.ResolvedSites += o.ResolvedSites
	s.OverApproxSites += o.OverApproxSites
	s.UnresolvableSites += o.UnresolvableSites
}

// Result is the outcome of one Run: active findings fail the build,
// suppressed ones (silenced by //oblint:allow directives) are reported for
// tracking but do not fail.
type Result struct {
	// SchemaVersion is FindingsSchemaVersion when emitted by cmd/oblint
	// -json; zero (omitted) inside the analyzer, and tolerated as zero when
	// reading baselines written before the field existed.
	SchemaVersion int `json:"schemaVersion,omitempty"`

	Findings   []Finding `json:"findings"`
	Suppressed []Finding `json:"suppressed,omitempty"`

	// Devirt aggregates the dynamic-call-site resolution stats of every
	// analyzed package. Observability only: baseline diffing ignores it.
	Devirt DevirtStats `json:"devirt"`
}

// Runner applies a Config to loaded packages.
type Runner struct {
	Config Config
	Fset   *token.FileSet

	// Resolve loads the package at an import path for the interprocedural
	// checks; wire it to the Loader that loaded the analyzed packages
	// (loader.Load) so type objects are shared. When nil, call chains end
	// at the boundary of the packages passed to Run, which weakens the
	// interprocedural checks but never breaks the per-package ones.
	Resolve func(path string) (*Package, error)

	// List enumerates every module package path for the devirtualization
	// type-set index (callgraph.go). Wire it to the same package
	// discovery the run uses (modulePackageDirs / LoadAll); when nil the
	// index covers only the packages the graph has already resolved,
	// which is what fixture harnesses want.
	List func() []string

	graph *moduleGraph
}

type checkFn func(r *Runner, p *Package, report func(pos token.Pos, check, msg string))

func (r *Runner) enabled(name string) bool {
	if len(r.Config.Checks) == 0 {
		return true
	}
	for _, c := range r.Config.Checks {
		if c == name {
			return true
		}
	}
	return false
}

// allCheckFns pairs every check name with its implementation, in report
// order. Every check is per-package: the whole-module result is the
// concatenation of per-package results, which is what makes the analysis
// cache (cache.go) sound.
var allCheckFns = []struct {
	name string
	fn   checkFn
}{
	{CheckObliviousImport, checkObliviousImport},
	{CheckObliviousChan, checkObliviousChan},
	{CheckObliviousPayload, checkObliviousPayload},
	{CheckObliviousTaint, checkObliviousTaint},
	{CheckDetTime, checkDetTime},
	{CheckDetGlobalRand, checkDetGlobalRand},
	{CheckDetMapRange, checkDetMapRange},
	{CheckLayerDAG, checkLayerDAG},
	{CheckAtomicMixed, checkAtomicMixed},
	{CheckAtomicCopy, checkAtomicCopy},
	{CheckHandlerBlock, checkHandlerBlock},
	{CheckStateSnapshot, checkStateSnapshot},
	{CheckStateRestore, checkStateRestore},
	{CheckStateKey, checkStateKey},
	{CheckStateSkew, checkStateSkew},
	{CheckConcLeak, checkConcLeak},
	{CheckConcChanDir, checkConcChanDir},
	{CheckConcLockOrder, checkConcLockOrder},
}

// Run applies every enabled check to every package and splits the findings
// by suppression state. Findings are sorted by position.
func (r *Runner) Run(pkgs []*Package) Result {
	var res Result
	for _, p := range pkgs {
		pr := r.RunPackage(p)
		res.Findings = append(res.Findings, pr.Findings...)
		res.Suppressed = append(res.Suppressed, pr.Suppressed...)
		res.Devirt.Add(pr.Devirt)
	}
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res
}

// RunPackage applies every enabled check to a single package. Findings are
// sorted by position.
func (r *Runner) RunPackage(p *Package) Result {
	var res Result
	allow := collectDirectives(p, r.Fset)
	report := func(pos token.Pos, check, msg string) {
		position := r.Fset.Position(pos)
		f := Finding{
			Check: check,
			Pkg:   p.Path,
			File:  position.Filename,
			Line:  position.Line,
			Col:   position.Column,
			Msg:   msg,
		}
		if allow.allows(position.Filename, position.Line, check) {
			f.Suppressed = true
			res.Suppressed = append(res.Suppressed, f)
			return
		}
		res.Findings = append(res.Findings, f)
	}
	for _, c := range allCheckFns {
		if r.enabled(c.name) {
			c.fn(r, p, report)
		}
	}
	res.Devirt = r.module().devirtStats(p)
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Col != fs[j].Col {
			return fs[i].Col < fs[j].Col
		}
		if fs[i].Check != fs[j].Check {
			return fs[i].Check < fs[j].Check
		}
		// Msg is the final tiebreak so the order is total: two different
		// findings can share a position and a check (e.g. two state-* gaps
		// reported at one field), and CI diffs cmd/oblint -json output
		// byte-for-byte.
		return fs[i].Msg < fs[j].Msg
	})
}

// matchPath reports whether path equals one of the entries or sits below
// one (prefix match on whole path segments).
func matchPath(path string, entries []string) bool {
	for _, e := range entries {
		if path == e || strings.HasPrefix(path, e+"/") {
			return true
		}
	}
	return false
}

// directives records //oblint:allow grants: file -> line -> check set. A
// directive on line L grants L and L+1, so it works both as a trailing
// comment and as a standalone comment above the offending line.
type directives map[string]map[int]map[string]bool

func (d directives) allows(file string, line int, check string) bool {
	return d[file][line][check]
}

func collectDirectives(p *Package, fset *token.FileSet) directives {
	d := make(directives)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//oblint:allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, check := range strings.Fields(rest) {
					for _, l := range []int{pos.Line, pos.Line + 1} {
						if d[pos.Filename] == nil {
							d[pos.Filename] = make(map[int]map[string]bool)
						}
						if d[pos.Filename][l] == nil {
							d[pos.Filename][l] = make(map[string]bool)
						}
						d[pos.Filename][l][check] = true
					}
				}
			}
		}
	}
	return d
}

// walkParents traverses every node under root, invoking visit with the
// node and its ancestor stack (innermost last).
func walkParents(root ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// baselineKey identifies a finding for baseline diffing. Line and column
// are deliberately excluded so that unrelated edits shifting a known
// finding down a file do not register as a new finding in CI.
func baselineKey(f Finding) string {
	return f.Check + "\x00" + f.Pkg + "\x00" + f.File + "\x00" + f.Msg
}

// DiffBaseline compares current findings against a committed baseline and
// returns the findings that are new (not in the baseline) and the baseline
// entries that are resolved (no longer present). Matching is a multiset
// match on (check, pkg, file, msg): a gate built on this fails only on new
// findings, the shape production lint gates use to ratchet down debt.
func DiffBaseline(cur, base Result) (news, resolved []Finding) {
	credit := make(map[string]int)
	for _, f := range base.Findings {
		credit[baselineKey(f)]++
	}
	for _, f := range cur.Findings {
		k := baselineKey(f)
		if credit[k] > 0 {
			credit[k]--
			continue
		}
		news = append(news, f)
	}
	// Whatever credit is left over corresponds to baseline entries with no
	// current counterpart.
	used := make(map[string]int)
	for _, f := range base.Findings {
		k := baselineKey(f)
		if used[k] < credit[k] {
			used[k]++
			resolved = append(resolved, f)
		}
	}
	sortFindings(news)
	sortFindings(resolved)
	return news, resolved
}

// quote renders a path list for messages.
func quote(paths []string) string {
	qs := make([]string, len(paths))
	for i, p := range paths {
		qs[i] = strconv.Quote(p)
	}
	return strings.Join(qs, ", ")
}
