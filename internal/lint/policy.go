package lint

// DefaultConfig is this repository's model-invariant policy. It is data,
// not code: adding a package means registering it in Layers (the layer-dag
// check fails otherwise), and widening any rule is a reviewed edit here,
// not a silent drift.
func DefaultConfig() Config {
	const m = "coleader"
	i := func(name string) string { return m + "/internal/" + name }
	return Config{
		Module: m,

		// The packages whose algorithms must be content-oblivious: the
		// paper's core algorithms, the universal simulation over pulses,
		// the lower-bound machinery (paper Sections 3-5), and the fault
		// plane (an adversary that reads pulse content would be strictly
		// stronger than the model's, voiding the stabilization results).
		Oblivious: []string{i("core"), i("defective"), i("lowerbound"), i("fault")},
		PulseType: i("pulse") + ".Pulse",
		ContentImports: []string{
			i("baseline"), // content-carrying classical protocols
			"encoding",    // serialization smuggles content
		},

		// Wall-clock time exists only where real concurrency does. cmd/ is
		// no longer exempt wholesale: simulation-critical logic in
		// cmd/modelcheck and cmd/experiments is checked like any other
		// package, and only the named flag-parsing/reporting files may
		// time their own output.
		TimeExempt: []string{i("live")},
		TimeExemptFiles: []string{
			"cmd/experiments/main.go", // times table generation for display
			"cmd/ringsim/progress.go", // paces the stderr progress ticker
		},

		// Replay determinism: the simulator, the core algorithms, the
		// model checker (whose Report and witness must not depend on map
		// iteration order at any worker count), and the fault plane (its
		// schedule and injection log must replay bit-for-bit from a seed).
		MapRangePkgs: []string{i("sim"), i("core"), i("check"), i("fault")},

		// The intended import DAG. Entries list module-internal imports
		// only; stdlib imports are unconstrained here (the content checks
		// constrain encoding/*).
		Layers: map[string][]string{
			// Foundation: no internal deps.
			i("pulse"):     {},
			i("xrand"):     {},
			i("stats"):     {},
			i("lint"):      {},
			i("benchjson"): {},

			// Model vocabulary over pulses.
			i("node"): {i("pulse")},
			i("ring"): {i("pulse")},

			// Seeded fault schedules: pure data derived from xrand streams,
			// consumed by both runtimes.
			i("fault"): {i("xrand")},

			// Runtimes.
			i("sim"):  {i("fault"), i("node"), i("pulse"), i("ring")},
			i("live"): {i("fault"), i("node"), i("pulse"), i("ring")},

			// Algorithms.
			i("core"):       {i("node"), i("pulse"), i("ring"), i("xrand")},
			i("defective"):  {i("core"), i("node"), i("pulse")},
			i("lowerbound"): {i("node"), i("pulse"), i("ring"), i("sim")},
			i("baseline"):   {i("node"), i("pulse"), i("ring"), i("sim")},

			// Verification and observation layers. The checker imports
			// the fault package for fault.Plan — the exhaustive
			// counterpart of the runtimes' sampled plane (§9.5).
			i("check"):        {i("fault"), i("node"), i("pulse"), i("ring"), i("sim")},
			i("trace"):        {i("node"), i("pulse"), i("sim")},
			i("viz"):          {i("pulse"), i("sim")},
			i("differential"): {i("live"), i("node"), i("ring"), i("sim")},

			// Harness.
			i("experiments"): {
				i("baseline"), i("check"), i("core"), i("defective"),
				i("fault"), i("lowerbound"), i("node"), i("pulse"),
				i("ring"), i("sim"), i("stats"), i("trace"), i("xrand"),
			},

			// Facade.
			m: {
				i("baseline"), i("core"), i("defective"), i("live"),
				i("lowerbound"), i("node"), i("pulse"), i("ring"),
				i("sim"), i("trace"),
			},
		},
		LayerExempt: []string{m + "/cmd", m + "/examples"},

		// Packages with real shared-memory concurrency: the live runtime,
		// the parallel exhaustive explorer, the sharded simulator (arc
		// workers plus epoch-granular progress counters), and the fault
		// plane (the ring-wide delivery ordinal behind window triggers is
		// read and advanced from sender/pump/node goroutines in live).
		AtomicPkgs: []string{i("live"), i("check"), i("sim"), i("fault")},

		// Machines whose Init/OnMsg handlers run inline on the event loops
		// of internal/sim and internal/live: the algorithms, the universal
		// simulation, the lower-bound machinery, and the classical
		// baselines. A blocking operation in any of their handlers would
		// deadlock the runtime.
		HandlerPkgs: []string{
			i("core"), i("defective"), i("lowerbound"), i("baseline"),
		},

		// Any type whose OnMsg takes a node.Emitter instantiation is
		// machine-shaped and gets handler-block coverage even before its
		// package is registered above.
		EmitterType: i("node") + ".Emitter",
	}
}
