package lint

// DefaultConfig is this repository's model-invariant policy. It is data,
// not code: adding a package means registering it in Layers (the layer-dag
// check fails otherwise), and widening any rule is a reviewed edit here,
// not a silent drift.
func DefaultConfig() Config {
	const m = "coleader"
	i := func(name string) string { return m + "/internal/" + name }
	return Config{
		Module: m,

		// The packages whose algorithms must be content-oblivious: the
		// paper's core algorithms, the universal simulation over pulses,
		// and the lower-bound machinery (paper Sections 3-5).
		Oblivious: []string{i("core"), i("defective"), i("lowerbound")},
		PulseType: i("pulse") + ".Pulse",
		ContentImports: []string{
			i("baseline"), // content-carrying classical protocols
			"encoding",    // serialization smuggles content
		},

		// Wall-clock time exists only where real concurrency does.
		TimeExempt: []string{m + "/cmd", i("live")},

		// Replay determinism: the simulator and the core algorithms.
		MapRangePkgs: []string{i("sim"), i("core")},

		// The intended import DAG. Entries list module-internal imports
		// only; stdlib imports are unconstrained here (the content checks
		// constrain encoding/*).
		Layers: map[string][]string{
			// Foundation: no internal deps.
			i("pulse"): {},
			i("xrand"): {},
			i("stats"): {},
			i("lint"):  {},

			// Model vocabulary over pulses.
			i("node"): {i("pulse")},
			i("ring"): {i("pulse")},

			// Runtimes.
			i("sim"):  {i("node"), i("pulse"), i("ring")},
			i("live"): {i("node"), i("pulse"), i("ring")},

			// Algorithms.
			i("core"):       {i("node"), i("pulse"), i("ring"), i("xrand")},
			i("defective"):  {i("core"), i("node"), i("pulse")},
			i("lowerbound"): {i("node"), i("pulse"), i("ring"), i("sim")},
			i("baseline"):   {i("node"), i("pulse"), i("ring"), i("sim")},

			// Verification and observation layers.
			i("check"):        {i("node"), i("pulse"), i("ring"), i("sim")},
			i("trace"):        {i("node"), i("pulse"), i("sim")},
			i("viz"):          {i("pulse"), i("sim")},
			i("differential"): {i("live"), i("node"), i("ring"), i("sim")},

			// Harness.
			i("experiments"): {
				i("baseline"), i("check"), i("core"), i("defective"),
				i("lowerbound"), i("node"), i("pulse"), i("ring"),
				i("sim"), i("stats"), i("trace"),
			},

			// Facade.
			m: {
				i("baseline"), i("core"), i("defective"), i("live"),
				i("lowerbound"), i("node"), i("pulse"), i("ring"),
				i("sim"), i("trace"),
			},
		},
		LayerExempt: []string{m + "/cmd", m + "/examples"},

		// The live runtime is the only package with real shared-memory
		// concurrency.
		AtomicPkgs: []string{i("live")},
	}
}
