package lint

// Determinism checks. The model is asynchronous but content- and
// timing-oblivious: an algorithm's behaviour is a function of arrival
// order alone, and the simulator's replays must be reproducible from a
// single seed. Three leaks are closed mechanically:
//
//   - det-time: wall-clock calls (time.Now, time.Sleep, ...) outside the
//     live runtime and individually exempted reporting files. Timing-
//     dependence is exactly what the model forbids (Section 2: unbounded
//     but finite delays, no clocks). The exemption is file-granular on
//     purpose: a cmd/ binary's flag-parsing/reporting file may time its
//     own output, but simulation-critical logic living next to it in the
//     same command is still checked.
//   - det-globalrand: the global math/rand functions draw from a shared,
//     effectively unseeded source; randomized machines must thread an
//     injected *rand.Rand or internal/xrand generator so a run is
//     reproducible from its seed.
//   - det-maprange: ranging over a map has randomized iteration order; in
//     the simulator and core packages that order would leak scheduler
//     nondeterminism into replays that claim determinism.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// Types (time.Duration) and constants (time.Second) remain fine anywhere.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand package-level functions that merely
// construct explicitly seeded generators.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func checkDetTime(r *Runner, p *Package, report func(token.Pos, string, string)) {
	if matchPath(p.Path, r.Config.TimeExempt) {
		return
	}
	forEachPkgFuncUse(p, "time", func(id *ast.Ident, fn *types.Func) {
		if !forbiddenTimeFuncs[fn.Name()] {
			return
		}
		if fileExempt(r.Fset.Position(id.Pos()).Filename, r.Config.TimeExemptFiles) {
			return
		}
		report(id.Pos(), CheckDetTime,
			fmt.Sprintf("wall-clock call time.%s outside the live runtime (model has no clocks; inject timing only in internal/live or an exempted reporting file)", fn.Name()))
	})
}

// fileExempt reports whether the absolute filename matches one of the
// module-relative exempt paths (suffix match on whole path segments).
func fileExempt(filename string, exempt []string) bool {
	slash := filepath.ToSlash(filename)
	for _, e := range exempt {
		if slash == e || strings.HasSuffix(slash, "/"+e) {
			return true
		}
	}
	return false
}

func checkDetGlobalRand(r *Runner, p *Package, report func(token.Pos, string, string)) {
	forEachPkgFuncUse(p, "math/rand", func(id *ast.Ident, fn *types.Func) {
		if !allowedRandFuncs[fn.Name()] {
			report(id.Pos(), CheckDetGlobalRand,
				fmt.Sprintf("global math/rand.%s draws from the shared source; thread a seeded *rand.Rand or internal/xrand generator instead", fn.Name()))
		}
	})
	forEachPkgFuncUse(p, "math/rand/v2", func(id *ast.Ident, fn *types.Func) {
		report(id.Pos(), CheckDetGlobalRand,
			fmt.Sprintf("global math/rand/v2.%s cannot be seeded for replay; thread a seeded *rand.Rand or internal/xrand generator instead", fn.Name()))
	})
}

// forEachPkgFuncUse calls visit for every use of a package-level function
// (not a method) belonging to pkgPath. Identifier-based resolution sees
// through import aliases.
func forEachPkgFuncUse(p *Package, pkgPath string, visit func(*ast.Ident, *types.Func)) {
	for id, obj := range p.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			continue // method on rand.Rand, time.Timer, ...: fine
		}
		visit(id, fn)
	}
}

func checkDetMapRange(r *Runner, p *Package, report func(token.Pos, string, string)) {
	if !matchPath(p.Path, r.Config.MapRangePkgs) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				report(rng.Pos(), CheckDetMapRange,
					fmt.Sprintf("range over map %s has randomized order; sort the keys (replays here must be deterministic)", tv.Type))
			}
			return true
		})
	}
}
