// Package fault is a seeded, deterministic fault plane shared by the
// simulator (internal/sim) and the live runtime (internal/live). It models
// a configurable adversary with a bounded fault budget: the whole injection
// schedule is precomputed at construction from an xrand-split stream, so
// identical (seed, Config) always produces the identical schedule — and, on
// the deterministic simulator, the identical run — regardless of worker
// count or runtime.
//
// The paper's model (Section 2) forbids every fault class here: channels
// never drop, duplicate, or inject pulses, and nodes do not fail. The plane
// exists to probe what happens beyond the model — the quiescently
// stabilizing algorithms (1 and 3) degrade gracefully or recover, while the
// quiescently terminating ones (2 and 4) visibly violate their guarantees.
// DESIGN.md §9 maps each class to the model clause it breaks.
//
// Triggers are expressed in each target entity's local event count — "the
// t-th send placed on channel c", "the t-th delivery taken from channel c",
// "after node k's j-th handler invocation" (a node's Init is invocation 1)
// — not in global time, so the same schedule is meaningful on both the
// simulator's totally ordered steps and the live runtime's real
// concurrency.
//
// Concurrency contract: the Plane itself holds no locks. Each counter is
// owned by exactly one caller — in the simulator everything runs on the
// event loop; on the live runtime each channel has a single sender (the
// ring peer), a single pump, and each node a single goroutine — so OnSend,
// OnDeliver, and OnHandler for a given entity are always invoked from one
// goroutine. Log must only be called after the run has completed (for the
// live runtime: after Run returned, which orders all goroutine writes
// before the read).
//
// Content-obliviousness holds for the adversary too: every decision is a
// function of seeds and event counts, never of payloads — the package is
// registered in oblint's Oblivious list to keep it that way.
package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"coleader/internal/xrand"
)

// Class identifies one fault class. The zero value means "no fault" and is
// what the injection hooks return on the overwhelmingly common path.
type Class uint8

// Fault classes, each independently enable-able.
const (
	// Loss: a sent pulse vanishes before reaching its channel queue.
	Loss Class = iota + 1
	// Dup: a sent pulse is placed on its channel queue twice.
	Dup
	// Spurious: a pulse nobody sent appears on a channel.
	Spurious
	// Crash: a node silently stops after a handler (fail-stop; queued
	// pulses addressed to it are never consumed).
	Crash
	// Restart: a node crashes after a handler and immediately restarts
	// from its initial state (node.Undoable restore + a fresh Init).
	Restart
	// Corrupt: a node's state is transiently perturbed after a handler
	// (node.Undoable restore from a randomized snapshot).
	Corrupt

	classCount = int(Corrupt)
)

var classNames = [classCount + 1]string{"none", "loss", "dup", "spurious", "crash", "restart", "corrupt"}

// String returns the class's lowercase name.
func (c Class) String() string {
	if int(c) <= classCount {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Set is a bitmask of enabled fault classes.
type Set uint8

// AllClasses enables every fault class.
const AllClasses Set = 1<<classCount - 1

// NewSet builds a Set from classes.
func NewSet(cs ...Class) Set {
	var s Set
	for _, c := range cs {
		s |= 1 << (c - 1)
	}
	return s
}

// Has reports whether class c is enabled.
func (s Set) Has(c Class) bool { return s&(1<<(c-1)) != 0 }

// Classes returns the enabled classes in ascending order.
func (s Set) Classes() []Class {
	var cs []Class
	for c := Loss; int(c) <= classCount; c++ {
		if s.Has(c) {
			cs = append(cs, c)
		}
	}
	return cs
}

// String renders the set as a comma-separated class list.
func (s Set) String() string {
	cs := s.Classes()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.String()
	}
	return strings.Join(names, ",")
}

// ParseSet parses a comma-separated class list ("loss,corrupt"), or "all".
func ParseSet(spec string) (Set, error) {
	if spec == "all" {
		return AllClasses, nil
	}
	var s Set
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		found := false
		for c := Loss; int(c) <= classCount; c++ {
			if classNames[c] == name {
				s |= 1 << (c - 1)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("fault: unknown class %q (want loss|dup|spurious|crash|restart|corrupt|all)", name)
		}
	}
	return s, nil
}

// TriggerMode selects how an injection's Trigger ordinal is interpreted.
type TriggerMode uint8

const (
	// TriggerLocal (the default): Trigger is the target entity's local
	// event ordinal — "the t-th send on this channel", "node k's t-th
	// handler". Purely per-entity, so the plane needs no shared state.
	TriggerLocal TriggerMode = iota

	// TriggerWindow: Trigger is a ring-wide delivery ordinal. The
	// injection arms once the plane has observed Trigger deliveries in
	// total (across every channel) and fires at the target entity's next
	// local event. This expresses timing-dependent faults the per-entity
	// counters cannot — "crash node k once the ring as a whole has made
	// this much progress" — even when the target itself is idle until
	// then. The global delivery counter is the plane's one piece of
	// shared state and is atomic; on the live runtime the exact event at
	// which a target first observes the open window is scheduler-
	// dependent (whether it fires by the end of the run is monotone in
	// the window), while on the simulator it is as deterministic as
	// every other counter.
	TriggerWindow
)

// PerturbMode selects how Corrupt injections mangle a snapshot.
type PerturbMode uint8

const (
	// PerturbOutput XORs a nonzero mask into the snapshot's final byte.
	// Every core machine's Undoable encoding ends with its output
	// state/flags byte, so this corrupts what the node *reports* (state,
	// orientation) while leaving its counters — and therefore the pulse
	// traffic — untouched: the fault class the stabilization theorems
	// provably recover from.
	PerturbOutput PerturbMode = iota
	// PerturbBytes XORs nonzero masks into 1–3 random snapshot bytes,
	// counters included: arbitrary transient memory corruption.
	PerturbBytes
)

// Config parameterizes a Plane.
type Config struct {
	// Nodes is the ring size; channels are numbered 0..2*Nodes-1 with
	// channel 2k+p feeding port p of node k (the runtimes' convention).
	Nodes int
	// Classes is the set of enabled fault classes.
	Classes Set
	// Budget is the number of injections to schedule.
	Budget int
	// Horizon bounds trigger draws: each injection arms at a local event
	// ordinal drawn uniformly from [1, Horizon]. 0 means 8.
	Horizon uint64
	// Mode selects the Corrupt perturbation (default PerturbOutput).
	Mode PerturbMode
	// Trigger selects how Trigger ordinals are interpreted (default
	// TriggerLocal). With TriggerWindow, each injection arms once the
	// ring-wide delivery count reaches its Trigger and fires at the
	// target's next local event.
	Trigger TriggerMode
}

// Injection is one scheduled fault, doubling as its own log entry once the
// run has consumed the plane.
type Injection struct {
	Class Class
	// Node is the target node: the restarted/crashed/corrupted node for
	// node classes, the receiving node of Chan for channel classes.
	Node int
	// Chan is the target channel for Loss/Dup/Spurious, -1 for node
	// classes.
	Chan int
	// Trigger is the ordinal that arms the injection (1-based): the
	// target entity's local event count under TriggerLocal, the
	// ring-wide delivery count under TriggerWindow.
	Trigger uint64
	// Windowed records that Trigger is a TriggerWindow ordinal.
	Windowed bool
	// Step is the simulator step at which the injection fired (0 on the
	// live runtime, whose events have no global order).
	Step uint64
	// Fired reports that the run reached the trigger.
	Fired bool
	// Skipped reports that the trigger was reached but the target could
	// not absorb the fault (a Restart/Corrupt aimed at a machine that is
	// not node.Undoable).
	Skipped bool
}

// String renders one schedule/log line.
func (in Injection) String() string {
	var b strings.Builder
	unit := "event"
	if in.Windowed {
		unit = "delivery-window"
	} else if in.Chan < 0 {
		unit = "handler"
	}
	if in.Chan >= 0 {
		fmt.Fprintf(&b, "%s chan %d (node %d port %d) @%s#%d", in.Class, in.Chan, in.Node, in.Chan&1, unit, in.Trigger)
	} else {
		fmt.Fprintf(&b, "%s node %d @%s#%d", in.Class, in.Node, unit, in.Trigger)
	}
	switch {
	case in.Skipped:
		b.WriteString(" [skipped: target not restorable]")
	case !in.Fired:
		b.WriteString(" [never fired]")
	case in.Step > 0:
		fmt.Fprintf(&b, " [fired at step %d]", in.Step)
	default:
		b.WriteString(" [fired]")
	}
	return b.String()
}

// Plane is one run's worth of scheduled faults plus the event counters that
// arm them. A Plane is single-use: attach it to exactly one run, then read
// the log.
type Plane struct {
	cfg  Config
	seed int64

	// log holds every injection in schedule order; the pending lists
	// below index into it.
	log []Injection

	// Per-entity pending injection indices, ascending by Trigger, with
	// the head popped as counters pass it. Triggers are unique per
	// counter domain (construction bumps collisions), so at most the
	// head can match.
	sendPending  [][]int // by channel: Loss/Dup, armed by OnSend
	delivPending [][]int // by channel: Spurious, armed by OnDeliver
	nodePending  [][]int // by node: Crash/Restart/Corrupt, by OnHandler

	sendCount  []uint64
	delivCount []uint64
	nodeCount  []uint64

	// lastNode tracks, per node, the most recently fired node injection
	// so the runtime can mark it skipped (SkipLast).
	lastNode []int

	// globalDeliv counts deliveries ring-wide; only consulted under
	// TriggerWindow. It is the plane's single cross-entity counter, so it
	// is atomic rather than caller-owned (see the concurrency contract in
	// the package comment).
	globalDeliv atomic.Uint64
}

// streams for xrand.Split: the schedule draw and the perturb masks.
const (
	streamSchedule = 0xFA01
	streamPerturb  = 0xFA02
)

// New builds the plane for one run: the full injection schedule is drawn
// here, deterministically from (seed, cfg).
func New(seed int64, cfg Config) (*Plane, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("fault: %d nodes", cfg.Nodes)
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("fault: negative budget %d", cfg.Budget)
	}
	if cfg.Budget > 0 && cfg.Classes == 0 {
		return nil, fmt.Errorf("fault: budget %d with no classes enabled", cfg.Budget)
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 8
	}
	n := cfg.Nodes
	p := &Plane{
		cfg:          cfg,
		seed:         seed,
		sendPending:  make([][]int, 2*n),
		delivPending: make([][]int, 2*n),
		nodePending:  make([][]int, n),
		sendCount:    make([]uint64, 2*n),
		delivCount:   make([]uint64, 2*n),
		nodeCount:    make([]uint64, n),
		lastNode:     make([]int, n),
	}
	for k := range p.lastNode {
		p.lastNode[k] = -1
	}

	enabled := cfg.Classes.Classes()
	if cfg.Budget == 0 || len(enabled) == 0 {
		return p, nil
	}
	rng := xrand.New(xrand.Split(seed, streamSchedule, uint64(n)))
	for b := 0; b < cfg.Budget; b++ {
		cl := enabled[rng.Intn(len(enabled))]
		in := Injection{Class: cl, Chan: -1}
		switch cl {
		case Loss, Dup, Spurious:
			in.Chan = rng.Intn(2 * n)
			in.Node = in.Chan / 2
		default:
			in.Node = rng.Intn(n)
		}
		in.Trigger = 1 + uint64(rng.Int63n(int64(cfg.Horizon)))
		in.Windowed = cfg.Trigger == TriggerWindow
		// Triggers must be unique within a counter domain so that at
		// most one injection arms per event; collisions bump upward.
		// (Under TriggerWindow at most the head of a pending list can
		// fire per event regardless, but unique triggers keep the
		// schedule shape identical across modes.)
		for p.triggerTaken(in) {
			in.Trigger++
		}
		p.log = append(p.log, in)
	}
	p.indexSchedule()
	return p, nil
}

// Scripted builds a plane from an explicit injection schedule instead of
// a seeded draw: each entry names its class, target, and trigger ordinal
// directly. Deterministic fault tests (crash exactly this node at exactly
// this handler) use it where New's sampled schedules would be awkward to
// pin. Entries must satisfy the same invariants the sampler guarantees:
// 1-based triggers, unique per counter domain and target.
func Scripted(cfg Config, schedule []Injection) (*Plane, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("fault: %d nodes", cfg.Nodes)
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 8
	}
	n := cfg.Nodes
	p := &Plane{
		cfg:          cfg,
		sendPending:  make([][]int, 2*n),
		delivPending: make([][]int, 2*n),
		nodePending:  make([][]int, n),
		sendCount:    make([]uint64, 2*n),
		delivCount:   make([]uint64, 2*n),
		nodeCount:    make([]uint64, n),
		lastNode:     make([]int, n),
	}
	for k := range p.lastNode {
		p.lastNode[k] = -1
	}
	for i, in := range schedule {
		if in.Class < Loss || int(in.Class) > classCount {
			return nil, fmt.Errorf("fault: scripted injection %d: unknown class %d", i, in.Class)
		}
		switch in.Class {
		case Loss, Dup, Spurious:
			if in.Chan < 0 || in.Chan >= 2*n {
				return nil, fmt.Errorf("fault: scripted injection %d: channel %d out of range", i, in.Chan)
			}
			in.Node = in.Chan / 2
		default:
			if in.Node < 0 || in.Node >= n {
				return nil, fmt.Errorf("fault: scripted injection %d: node %d out of range", i, in.Node)
			}
			in.Chan = -1
		}
		if in.Trigger == 0 {
			return nil, fmt.Errorf("fault: scripted injection %d: triggers are 1-based", i)
		}
		in.Windowed = cfg.Trigger == TriggerWindow
		in.Step, in.Fired, in.Skipped = 0, false, false
		if p.triggerTaken(in) {
			return nil, fmt.Errorf("fault: scripted injection %d: duplicate trigger %d in its domain", i, in.Trigger)
		}
		p.log = append(p.log, in)
	}
	p.indexSchedule()
	return p, nil
}

// domain returns which counter domain an injection arms in: 0 = sends on
// its channel, 1 = deliveries on its channel, 2 = handlers of its node.
func (in Injection) domain() int {
	switch in.Class {
	case Loss, Dup:
		return 0
	case Spurious:
		return 1
	default:
		return 2
	}
}

func (p *Plane) triggerTaken(cand Injection) bool {
	for _, in := range p.log {
		if in.domain() != cand.domain() || in.Trigger != cand.Trigger {
			continue
		}
		if cand.domain() == 2 {
			if in.Node == cand.Node {
				return true
			}
		} else if in.Chan == cand.Chan {
			return true
		}
	}
	return false
}

func (p *Plane) indexSchedule() {
	for i, in := range p.log {
		switch in.domain() {
		case 0:
			p.sendPending[in.Chan] = append(p.sendPending[in.Chan], i)
		case 1:
			p.delivPending[in.Chan] = append(p.delivPending[in.Chan], i)
		default:
			p.nodePending[in.Node] = append(p.nodePending[in.Node], i)
		}
	}
	byTrigger := func(list []int) {
		sort.Slice(list, func(a, b int) bool {
			return p.log[list[a]].Trigger < p.log[list[b]].Trigger
		})
	}
	for _, lists := range [][][]int{p.sendPending, p.delivPending, p.nodePending} {
		for _, list := range lists {
			byTrigger(list)
		}
	}
}

// fire pops the head of pending if it is armed at this event — its trigger
// equals the entity's local count (TriggerLocal), or the ring-wide delivery
// count has reached it (TriggerWindow) — records the firing, and returns
// the class (0 otherwise).
func (p *Plane) fire(pending *[]int, count, step uint64) (Class, int) {
	list := *pending
	if len(list) == 0 {
		return 0, -1
	}
	trig := p.log[list[0]].Trigger
	if p.cfg.Trigger == TriggerWindow {
		if trig > p.globalDeliv.Load() {
			return 0, -1
		}
	} else if trig != count {
		return 0, -1
	}
	i := list[0]
	*pending = list[1:]
	p.log[i].Fired = true
	p.log[i].Step = step
	return p.log[i].Class, i
}

// OnSend advances channel c's send counter and returns Loss, Dup, or 0 for
// the pulse being placed on c. step tags the log entry (pass 0 when there
// is no global step, as on the live runtime).
func (p *Plane) OnSend(step uint64, c int) Class {
	p.sendCount[c]++
	cl, _ := p.fire(&p.sendPending[c], p.sendCount[c], step)
	return cl
}

// OnDeliver advances channel c's delivery counter (and, under
// TriggerWindow, the ring-wide one) and returns Spurious if a pulse must
// be injected onto c around this delivery, else 0.
func (p *Plane) OnDeliver(step uint64, c int) Class {
	if p.cfg.Trigger == TriggerWindow {
		p.globalDeliv.Add(1)
	}
	p.delivCount[c]++
	cl, _ := p.fire(&p.delivPending[c], p.delivCount[c], step)
	return cl
}

// OnHandler advances node k's handler counter (Init is invocation 1) and
// returns Crash, Restart, Corrupt, or 0.
func (p *Plane) OnHandler(step uint64, k int) Class {
	p.nodeCount[k]++
	cl, i := p.fire(&p.nodePending[k], p.nodeCount[k], step)
	if cl != 0 {
		p.lastNode[k] = i
	}
	return cl
}

// SkipLast marks node k's most recently fired injection as skipped: the
// runtime reached the trigger but the target machine could not absorb the
// fault (it does not implement node.Undoable).
func (p *Plane) SkipLast(k int) {
	if i := p.lastNode[k]; i >= 0 {
		p.log[i].Skipped = true
	}
}

// Perturb returns a corrupted copy of snap per the configured PerturbMode.
// The mask stream is a pure function of (plane seed, node, the node's
// handler count), so a given firing corrupts identically on every runtime.
func (p *Plane) Perturb(k int, snap []byte) []byte {
	out := append([]byte(nil), snap...)
	if len(out) == 0 {
		return out
	}
	rng := xrand.New(xrand.Split(p.seed, streamPerturb, uint64(k), p.nodeCount[k]))
	nonzero := func() byte {
		if m := byte(rng.Uint64()); m != 0 {
			return m
		}
		return 0x5A
	}
	switch p.cfg.Mode {
	case PerturbBytes:
		for i, nb := 0, 1+rng.Intn(3); i < nb; i++ {
			out[rng.Intn(len(out))] ^= nonzero()
		}
	default:
		out[len(out)-1] ^= nonzero()
	}
	return out
}

// Config returns the plane's (normalized) configuration.
func (p *Plane) Config() Config { return p.cfg }

// Seed returns the plane's seed.
func (p *Plane) Seed() int64 { return p.seed }

// Log returns a copy of the injection schedule with firing annotations.
// Call only after the run using this plane has completed.
func (p *Plane) Log() []Injection {
	return append([]Injection(nil), p.log...)
}

// Fired counts injections whose trigger was reached (including skipped
// ones). Call only after the run has completed.
func (p *Plane) Fired() int {
	n := 0
	for _, in := range p.log {
		if in.Fired {
			n++
		}
	}
	return n
}

// FormatLog renders the schedule one injection per line, for reports.
func FormatLog(log []Injection) string {
	var b strings.Builder
	for i, in := range log {
		fmt.Fprintf(&b, "  [%d] %s\n", i+1, in)
	}
	return b.String()
}
