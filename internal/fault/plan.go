package fault

import "fmt"

// Plan bounds the fault space of an exhaustive exploration (internal/check
// branches over it). Where a Plane is one sampled schedule — concrete
// (class, target, trigger) draws — a Plan is the whole space: the checker
// injects every enabled class at every eligible target in every reachable
// state, up to Budget injections per execution path.
//
// The zero Plan is valid and means "no faults": an exploration under it is
// exactly the fault-free exploration.
type Plan struct {
	// Classes is the set of fault classes to branch over.
	Classes Set

	// Budget caps the number of injections along any single execution
	// path (not across the whole exploration). Zero disables injection
	// even if Classes is non-empty.
	Budget int

	// Window, when positive, bounds how late an injection may happen,
	// measured in the target entity's local event count at the point of
	// injection: node faults require the victim's handler count <= Window,
	// Loss/Dup require the channel's send count <= Window, and Spurious
	// requires the channel's delivery count <= Window. Zero means
	// unbounded (any reachable position). This is the exhaustive
	// counterpart of a Plane's Horizon: a Plane samples trigger ordinals
	// from [1, Horizon], a Plan explores every position inside Window.
	Window uint64

	// CorruptMasks lists the nonzero masks a Corrupt injection XORs into
	// the target's final snapshot byte (the PerturbOutput convention:
	// every core machine's Undoable encoding ends with its output byte).
	// Each mask is a separate branch. Nil selects the eight single-bit
	// masks, i.e. every single-bit output corruption.
	CorruptMasks []byte
}

// maxPlanWindow bounds Window so saturated counters fit the checker's
// fixed-width state-key encoding.
const maxPlanWindow = 1 << 15

// Normalize validates the plan and fills defaults (the single-bit
// CorruptMasks). A plan with Budget 0 normalizes to the zero Plan.
func (p Plan) Normalize() (Plan, error) {
	if p.Budget < 0 {
		return Plan{}, fmt.Errorf("fault: negative plan budget %d", p.Budget)
	}
	if p.Budget == 0 || p.Classes == 0 {
		return Plan{}, nil
	}
	if p.Window > maxPlanWindow {
		return Plan{}, fmt.Errorf("fault: plan window %d exceeds %d", p.Window, maxPlanWindow)
	}
	for _, m := range p.CorruptMasks {
		if m == 0 {
			return Plan{}, fmt.Errorf("fault: zero corrupt mask (a zero XOR is not a corruption)")
		}
	}
	if p.Classes.Has(Corrupt) && len(p.CorruptMasks) == 0 {
		p.CorruptMasks = []byte{1 << 0, 1 << 1, 1 << 2, 1 << 3, 1 << 4, 1 << 5, 1 << 6, 1 << 7}
	}
	return p, nil
}

// Active reports whether the plan schedules any injections.
func (p Plan) Active() bool { return p.Budget > 0 && p.Classes != 0 }
