package fault_test

import (
	"reflect"
	"strings"
	"testing"

	"coleader/internal/fault"
)

func TestParseSet(t *testing.T) {
	cases := []struct {
		spec string
		want fault.Set
		err  bool
	}{
		{"all", fault.AllClasses, false},
		{"loss", fault.NewSet(fault.Loss), false},
		{"loss,corrupt", fault.NewSet(fault.Loss, fault.Corrupt), false},
		{"crash, restart", fault.NewSet(fault.Crash, fault.Restart), false},
		{"dup,spurious", fault.NewSet(fault.Dup, fault.Spurious), false},
		{"bogus", 0, true},
		{"loss,bogus", 0, true},
	}
	for _, c := range cases {
		got, err := fault.ParseSet(c.spec)
		if (err != nil) != c.err {
			t.Errorf("ParseSet(%q) err = %v, want err=%t", c.spec, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseSet(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
	// Round trip through String.
	s := fault.NewSet(fault.Dup, fault.Crash)
	back, err := fault.ParseSet(s.String())
	if err != nil || back != s {
		t.Errorf("ParseSet(%q) = %v, %v; want %v", s.String(), back, err, s)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := fault.New(1, fault.Config{Nodes: 0}); err == nil {
		t.Error("Nodes=0 accepted")
	}
	if _, err := fault.New(1, fault.Config{Nodes: 3, Budget: -1}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := fault.New(1, fault.Config{Nodes: 3, Budget: 2}); err == nil {
		t.Error("budget without classes accepted")
	}
	if _, err := fault.New(1, fault.Config{Nodes: 3}); err != nil {
		t.Errorf("zero-budget plane rejected: %v", err)
	}
}

// TestScheduleDeterminism: identical (seed, cfg) must produce the identical
// schedule; different seeds must (for this configuration) differ.
func TestScheduleDeterminism(t *testing.T) {
	cfg := fault.Config{Nodes: 5, Classes: fault.AllClasses, Budget: 12, Horizon: 6}
	a, err := fault.New(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fault.New(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Log(), b.Log()) {
		t.Errorf("same seed, different schedules:\n%v\nvs\n%v", a.Log(), b.Log())
	}
	c, err := fault.New(43, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Log(), c.Log()) {
		t.Errorf("seeds 42 and 43 drew identical schedules")
	}
	if len(a.Log()) != cfg.Budget {
		t.Errorf("schedule holds %d injections, want budget %d", len(a.Log()), cfg.Budget)
	}
}

// TestScheduleShape: every injection respects its class's target kind, the
// horizon may only be exceeded by collision bumps, and triggers are unique
// per counter domain and entity.
func TestScheduleShape(t *testing.T) {
	cfg := fault.Config{Nodes: 3, Classes: fault.AllClasses, Budget: 40, Horizon: 4}
	p, err := fault.New(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		domain  int
		entity  int
		trigger uint64
	}
	seen := map[key]bool{}
	for _, in := range p.Log() {
		if !cfg.Classes.Has(in.Class) {
			t.Errorf("scheduled disabled class %v", in.Class)
		}
		var k key
		switch in.Class {
		case fault.Loss, fault.Dup:
			k = key{0, in.Chan, in.Trigger}
		case fault.Spurious:
			k = key{1, in.Chan, in.Trigger}
		default:
			k = key{2, in.Node, in.Trigger}
		}
		switch in.Class {
		case fault.Loss, fault.Dup, fault.Spurious:
			if in.Chan < 0 || in.Chan >= 2*cfg.Nodes || in.Node != in.Chan/2 {
				t.Errorf("channel fault with bad target: %+v", in)
			}
		default:
			if in.Chan != -1 || in.Node < 0 || in.Node >= cfg.Nodes {
				t.Errorf("node fault with bad target: %+v", in)
			}
		}
		if in.Trigger < 1 {
			t.Errorf("trigger below 1: %+v", in)
		}
		if seen[k] {
			t.Errorf("duplicate trigger in one counter domain: %+v", in)
		}
		seen[k] = true
		if in.Fired || in.Skipped || in.Step != 0 {
			t.Errorf("fresh schedule entry already annotated: %+v", in)
		}
	}
}

// TestHooksFireAtTriggers drives the counters by hand and checks each
// injection fires exactly at its trigger, and exactly once.
func TestHooksFireAtTriggers(t *testing.T) {
	cfg := fault.Config{Nodes: 4, Classes: fault.AllClasses, Budget: 16, Horizon: 5}
	p, err := fault.New(11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := p.Log()
	fired := make([]bool, len(sched))
	const rounds = 10 // past any bumped trigger
	for ev := uint64(1); ev <= rounds; ev++ {
		for c := 0; c < 2*cfg.Nodes; c++ {
			if cl := p.OnSend(ev, c); cl != 0 {
				markFired(t, sched, fired, cl, c, -1, ev)
			}
			if cl := p.OnDeliver(ev, c); cl != 0 {
				markFired(t, sched, fired, cl, c, -1, ev)
			}
		}
		for k := 0; k < cfg.Nodes; k++ {
			if cl := p.OnHandler(ev, k); cl != 0 {
				markFired(t, sched, fired, cl, -1, k, ev)
			}
		}
	}
	for i, f := range fired {
		if !f {
			t.Errorf("injection %d never fired within %d events: %+v", i, rounds, sched[i])
		}
	}
	if got := p.Fired(); got != len(sched) {
		t.Errorf("Fired() = %d, want %d", got, len(sched))
	}
	for _, in := range p.Log() {
		if !in.Fired || in.Step != in.Trigger {
			t.Errorf("log entry not annotated with its firing: %+v", in)
		}
	}
}

func markFired(t *testing.T, sched []fault.Injection, fired []bool, cl fault.Class, c, k int, trigger uint64) {
	t.Helper()
	for i, in := range sched {
		if fired[i] || in.Class != cl || in.Trigger != trigger {
			continue
		}
		if c >= 0 && in.Chan != c {
			continue
		}
		if k >= 0 && (in.Chan != -1 || in.Node != k) {
			continue
		}
		fired[i] = true
		return
	}
	t.Errorf("hook fired %v on chan=%d node=%d at %d, but no matching schedule entry", cl, c, k, trigger)
}

// TestZeroBudgetInert: a zero-budget plane never fires anything.
func TestZeroBudgetInert(t *testing.T) {
	p, err := fault.New(5, fault.Config{Nodes: 3, Classes: fault.AllClasses})
	if err != nil {
		t.Fatal(err)
	}
	for ev := uint64(1); ev <= 100; ev++ {
		for c := 0; c < 6; c++ {
			if p.OnSend(ev, c) != 0 || p.OnDeliver(ev, c) != 0 {
				t.Fatalf("zero-budget plane fired a channel fault")
			}
		}
		for k := 0; k < 3; k++ {
			if p.OnHandler(ev, k) != 0 {
				t.Fatalf("zero-budget plane fired a node fault")
			}
		}
	}
	if len(p.Log()) != 0 || p.Fired() != 0 {
		t.Errorf("zero-budget plane has log entries")
	}
}

func TestPerturb(t *testing.T) {
	mk := func(mode fault.PerturbMode) *fault.Plane {
		p, err := fault.New(9, fault.Config{
			Nodes: 2, Classes: fault.NewSet(fault.Corrupt), Budget: 1, Mode: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	snap := []byte{1, 2, 3, 4, 5}
	p := mk(fault.PerturbOutput)
	out := p.Perturb(0, snap)
	if &out[0] == &snap[0] {
		t.Fatal("Perturb mutated its input in place")
	}
	if !reflect.DeepEqual(out[:4], snap[:4]) {
		t.Errorf("PerturbOutput touched non-tail bytes: %v", out)
	}
	if out[4] == snap[4] {
		t.Errorf("PerturbOutput left the tail byte unchanged")
	}
	// Deterministic in (seed, node, handler count).
	if again := mk(fault.PerturbOutput).Perturb(0, snap); !reflect.DeepEqual(out, again) {
		t.Errorf("Perturb not deterministic: %v vs %v", out, again)
	}

	pb := mk(fault.PerturbBytes)
	outB := pb.Perturb(1, snap)
	if reflect.DeepEqual(outB, snap) {
		t.Errorf("PerturbBytes changed nothing")
	}
	if len(outB) != len(snap) {
		t.Errorf("Perturb changed the snapshot length")
	}
	if got := p.Perturb(0, nil); len(got) != 0 {
		t.Errorf("Perturb of empty snapshot = %v", got)
	}
}

func TestSkipLast(t *testing.T) {
	p, err := fault.New(3, fault.Config{
		Nodes: 1, Classes: fault.NewSet(fault.Restart), Budget: 1, Horizon: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl := p.OnHandler(1, 0); cl != fault.Restart {
		t.Fatalf("OnHandler = %v, want restart", cl)
	}
	p.SkipLast(0)
	log := p.Log()
	if len(log) != 1 || !log[0].Fired || !log[0].Skipped {
		t.Errorf("log = %+v, want fired+skipped", log)
	}
	if !strings.Contains(log[0].String(), "skipped") {
		t.Errorf("String() does not surface the skip: %s", log[0])
	}
}

func TestFormatLog(t *testing.T) {
	p, err := fault.New(1, fault.Config{Nodes: 2, Classes: fault.AllClasses, Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := fault.FormatLog(p.Log())
	if strings.Count(out, "\n") != 3 || !strings.Contains(out, "[1]") {
		t.Errorf("FormatLog output unexpected:\n%s", out)
	}
}

// TestScriptedPlane: an explicit schedule fires exactly at the scripted
// ordinals, with no RNG involved.
func TestScriptedPlane(t *testing.T) {
	p, err := fault.Scripted(fault.Config{Nodes: 3, Classes: fault.NewSet(fault.Crash, fault.Loss)},
		[]fault.Injection{
			{Class: fault.Crash, Node: 1, Trigger: 2},
			{Class: fault.Loss, Chan: 4, Trigger: 3},
		})
	if err != nil {
		t.Fatal(err)
	}
	if p.OnHandler(1, 1) != 0 {
		t.Error("crash fired before its scripted trigger")
	}
	if got := p.OnHandler(2, 1); got != fault.Crash {
		t.Errorf("handler 2 on node 1: %v, want crash", got)
	}
	for ev := uint64(1); ev <= 2; ev++ {
		if p.OnSend(ev, 4) != 0 {
			t.Errorf("loss fired at send %d, scripted for 3", ev)
		}
	}
	if got := p.OnSend(3, 4); got != fault.Loss {
		t.Errorf("send 3 on chan 4: %v, want loss", got)
	}
	if p.Fired() != 2 {
		t.Errorf("Fired() = %d, want 2", p.Fired())
	}
}

// TestScriptedValidation covers every rejection path of Scripted.
func TestScriptedValidation(t *testing.T) {
	cfg := fault.Config{Nodes: 2, Classes: fault.AllClasses}
	cases := []struct {
		name string
		ins  []fault.Injection
	}{
		{"unknown class", []fault.Injection{{Class: 99, Node: 0, Trigger: 1}}},
		{"channel out of range", []fault.Injection{{Class: fault.Loss, Chan: 4, Trigger: 1}}},
		{"node out of range", []fault.Injection{{Class: fault.Crash, Node: 2, Trigger: 1}}},
		{"zero trigger", []fault.Injection{{Class: fault.Crash, Node: 0}}},
		{"duplicate trigger", []fault.Injection{
			{Class: fault.Crash, Node: 0, Trigger: 1},
			{Class: fault.Restart, Node: 0, Trigger: 1},
		}},
	}
	for _, c := range cases {
		if _, err := fault.Scripted(cfg, c.ins); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := fault.Scripted(fault.Config{Nodes: 0}, nil); err == nil {
		t.Error("Nodes=0 accepted")
	}
}

// TestWindowTriggerArming: under TriggerWindow an injection arms on the
// ring-wide delivery count and fires at the target's NEXT local event —
// never before the window opens, even if the target is busy.
func TestWindowTriggerArming(t *testing.T) {
	p, err := fault.Scripted(
		fault.Config{Nodes: 3, Classes: fault.NewSet(fault.Crash), Trigger: fault.TriggerWindow},
		[]fault.Injection{{Class: fault.Crash, Node: 0, Trigger: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// The target is busy before the window opens: no firing.
	for i := 0; i < 5; i++ {
		if p.OnHandler(0, 0) != 0 {
			t.Fatal("crash fired before the delivery window opened")
		}
	}
	// Ring-wide deliveries on OTHER channels open the window.
	p.OnDeliver(0, 3)
	p.OnDeliver(0, 4)
	if p.OnHandler(0, 0) != 0 {
		t.Fatal("crash fired after 2 deliveries; window is 3")
	}
	p.OnDeliver(0, 5)
	if got := p.OnHandler(0, 0); got != fault.Crash {
		t.Fatalf("first handler after the window opened: %v, want crash", got)
	}
	log := p.Log()
	if !log[0].Fired || !log[0].Windowed {
		t.Errorf("log entry %+v should be fired and windowed", log[0])
	}
	if !strings.Contains(log[0].String(), "delivery-window#3") {
		t.Errorf("log rendering %q lacks the delivery-window unit", log[0])
	}
}

// TestWindowTriggerIdleTarget: the window mode expresses what local
// ordinals cannot — a fault on an entity that is idle until the ring as a
// whole has made progress. The target's FIRST local event fires the
// injection if the window is already open.
func TestWindowTriggerIdleTarget(t *testing.T) {
	p, err := fault.Scripted(
		fault.Config{Nodes: 2, Classes: fault.NewSet(fault.Loss), Trigger: fault.TriggerWindow},
		[]fault.Injection{{Class: fault.Loss, Chan: 1, Trigger: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Channel 1 has had NO sends; the ring progresses elsewhere.
	p.OnDeliver(0, 2)
	p.OnDeliver(0, 2)
	// Now the very first send on the idle channel is hit.
	if got := p.OnSend(0, 1); got != fault.Loss {
		t.Fatalf("first send after window opened: %v, want loss", got)
	}
}

// TestWindowTriggerLocalUnaffected: under the default TriggerLocal mode,
// deliveries elsewhere never arm a trigger — the modes are really
// different interpretations of the same ordinal.
func TestWindowTriggerLocalUnaffected(t *testing.T) {
	p, err := fault.Scripted(
		fault.Config{Nodes: 2, Classes: fault.NewSet(fault.Loss)},
		[]fault.Injection{{Class: fault.Loss, Chan: 1, Trigger: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.OnDeliver(0, 2)
	}
	if p.OnSend(1, 1) != 0 {
		t.Error("local-mode loss fired at send 1; its trigger is the 2nd send")
	}
	if got := p.OnSend(2, 1); got != fault.Loss {
		t.Errorf("send 2: %v, want loss", got)
	}
}
