package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: coleader
cpu: AMD EPYC
BenchmarkAlg2Oriented/n=2-8         	   39208	     30663 ns/op	     18432 B/op	       75 allocs/op	      10.00 pulses/op
BenchmarkAlg2Oriented/n=512-8       	       1	2934206098 ns/op	65651456 B/op	 1431437 allocs/op	  524800 pulses/op
BenchmarkExhaustive-8               	    6789	    176760 ns/op	        43.00 states/op	   59384 B/op	    1076 allocs/op
PASS
ok  	coleader	12.345s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	r := rs[1]
	if r.Name != "Alg2Oriented/n=512" || r.Procs != 8 || r.Iterations != 1 {
		t.Fatalf("bad header fields: %+v", r)
	}
	want := map[string]float64{
		"ns/op": 2934206098, "B/op": 65651456, "allocs/op": 1431437, "pulses/op": 524800,
	}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Errorf("%s = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
	if rs[2].Metrics["states/op"] != 43 {
		t.Errorf("custom metric states/op = %v, want 43", rs[2].Metrics["states/op"])
	}
}

func TestParseRejectsMalformedResultLine(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkBad-8 10 12.5 ns/op trailing\n"))
	if err == nil {
		t.Fatal("want error for odd value/unit fields")
	}
}

func TestRecordReplacesByLabel(t *testing.T) {
	var f File
	f.Record(Entry{Label: "pre", Results: []Result{{Name: "A", Iterations: 1}}})
	f.Record(Entry{Label: "post", Results: []Result{{Name: "A", Iterations: 2}}})
	f.Record(Entry{Label: "pre", Results: []Result{{Name: "A", Iterations: 3}}})
	if len(f.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (pre replaced in place)", len(f.Entries))
	}
	pre, ok := f.Find("pre")
	if !ok || pre.Results[0].Iterations != 3 {
		t.Fatalf("pre entry not replaced: %+v", pre)
	}
	if f.Entries[0].Label != "pre" {
		t.Fatalf("replacement moved the entry: order %q, %q", f.Entries[0].Label, f.Entries[1].Label)
	}
}

func TestRoundTrip(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var f File
	f.Record(Entry{Label: "pre", Note: "benchtime 2x", Results: rs})

	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 1 || len(got.Entries[0].Results) != 3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Entries[0].Results[1].Metrics["allocs/op"] != 1431437 {
		t.Fatal("metrics did not survive the round trip")
	}

	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("encode is not deterministic across a decode/encode cycle")
	}
}

func TestDecodeEmpty(t *testing.T) {
	f, err := Decode(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Entries) != 0 {
		t.Fatalf("empty input decoded to %+v", f)
	}
}

func TestSpeedup(t *testing.T) {
	old := Entry{Results: []Result{{Name: "A", Metrics: map[string]float64{"ns/op": 100}}}}
	cur := Entry{Results: []Result{
		{Name: "A", Metrics: map[string]float64{"ns/op": 25}},
		{Name: "B", Metrics: map[string]float64{"ns/op": 10}}, // no baseline: skipped
	}}
	lines := Speedup(old, cur, "ns/op")
	if len(lines) != 1 || !strings.Contains(lines[0], "4.00x") {
		t.Fatalf("speedup lines = %q", lines)
	}
}

func TestRegressions(t *testing.T) {
	old := Entry{Results: []Result{
		{Name: "A", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 10}},
		{Name: "B", Metrics: map[string]float64{"ns/op": 50}},
		{Name: "Dup", Metrics: map[string]float64{"ns/op": 10}},
		{Name: "Dup", Metrics: map[string]float64{"ns/op": 20}},
	}}
	cur := Entry{Results: []Result{
		{Name: "A", Metrics: map[string]float64{"ns/op": 115, "allocs/op": 30}}, // allocs 3x: regression
		{Name: "B", Metrics: map[string]float64{"ns/op": 55}},                   // +10%: within threshold
		{Name: "C", Metrics: map[string]float64{"ns/op": 1000}},                 // no baseline: skipped
		{Name: "Dup", Metrics: map[string]float64{"ns/op": 11}},                 // pairs with first Dup
		{Name: "Dup", Metrics: map[string]float64{"ns/op": 80}},                 // pairs with second: 4x
	}}
	lines := Regressions(old, cur, 50, []string{"ns/op", "allocs/op"})
	if len(lines) != 2 {
		t.Fatalf("regressions = %q, want 2", lines)
	}
	if !strings.Contains(lines[0], "A: allocs/op") || !strings.Contains(lines[1], "Dup: ns/op 20") {
		t.Errorf("regressions = %q", lines)
	}

	if got := Regressions(old, cur, 1000, []string{"ns/op", "allocs/op"}); len(got) != 0 {
		t.Errorf("huge threshold still flagged %q", got)
	}
}

// TestRegressionsEdgeCases pins the comparison's skip rules: a
// zero-valued or absent baseline metric can never regress (growth is
// undefined against a zero base), benchmarks present in only one run are
// not regressions, and duplicate-name occurrences beyond the baseline's
// multiset count have no partner and are skipped rather than mispaired.
func TestRegressionsEdgeCases(t *testing.T) {
	old := Entry{Results: []Result{
		{Name: "Zero", Metrics: map[string]float64{"ns/op": 0}},
		{Name: "NoMetric", Metrics: map[string]float64{"B/op": 8}}, // ns/op absent
		{Name: "Removed", Metrics: map[string]float64{"ns/op": 5}},
		{Name: "Dup", Metrics: map[string]float64{"ns/op": 10}},
	}}
	cur := Entry{Results: []Result{
		{Name: "Zero", Metrics: map[string]float64{"ns/op": 1e9}},
		{Name: "NoMetric", Metrics: map[string]float64{"ns/op": 1e9}},
		{Name: "Dup", Metrics: map[string]float64{"ns/op": 11}},  // +10%: fine
		{Name: "Dup", Metrics: map[string]float64{"ns/op": 1e9}}, // second occurrence: no baseline partner
		{Name: "Added", Metrics: map[string]float64{"ns/op": 1e9}},
	}}
	if got := Regressions(old, cur, 50, []string{"ns/op"}); len(got) != 0 {
		t.Errorf("skip rules violated, flagged %q", got)
	}

	// A metric that vanishes in the new run scores -100% growth and must
	// not be flagged even at a near-zero threshold.
	old2 := Entry{Results: []Result{{Name: "A", Metrics: map[string]float64{"ns/op": 100}}}}
	cur2 := Entry{Results: []Result{{Name: "A", Metrics: map[string]float64{"B/op": 1}}}}
	if got := Regressions(old2, cur2, 0.01, []string{"ns/op"}); len(got) != 0 {
		t.Errorf("vanished metric flagged as regression: %q", got)
	}
}

func TestMergeFoldsByName(t *testing.T) {
	var f File
	f.Record(Entry{Label: "post", Note: "full run", Results: []Result{
		{Name: "A", Iterations: 1},
		{Name: "B", Iterations: 1},
	}})
	f.Merge(Entry{Label: "post", Results: []Result{
		{Name: "B", Iterations: 2},
		{Name: "C", Iterations: 2},
	}})
	post, ok := f.Find("post")
	if !ok || len(post.Results) != 3 {
		t.Fatalf("post results = %+v, want A,B,C", post.Results)
	}
	if post.Results[0].Iterations != 1 || post.Results[1].Iterations != 2 || post.Results[2].Name != "C" {
		t.Fatalf("merge did not replace by name / append: %+v", post.Results)
	}
	if post.Note != "full run" {
		t.Fatalf("merge with empty note clobbered %q", post.Note)
	}
	f.Merge(Entry{Label: "post", Note: "amended", Results: nil})
	if post, _ = f.Find("post"); post.Note != "amended" {
		t.Fatalf("non-empty note not applied: %q", post.Note)
	}
	f.Merge(Entry{Label: "fresh", Results: []Result{{Name: "D", Iterations: 4}}})
	if len(f.Entries) != 2 || f.Entries[1].Label != "fresh" {
		t.Fatalf("merge without a matching label should append: %+v", f.Entries)
	}
}
