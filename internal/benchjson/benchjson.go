// Package benchjson parses `go test -bench` output into structured
// records and maintains BENCH_*.json regression files: append-only logs
// of benchmark runs (time/op, allocs/op, and custom metrics such as
// pulses/op) that make performance changes diffable across PRs the same
// way EXPERIMENTS.md makes the paper's tables diffable.
//
// The package is a pure parser/serializer with no internal dependencies;
// cmd/benchjson is the CLI that `make bench` drives.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// trailing -GOMAXPROCS suffix, e.g. "Alg2Oriented/n=512".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the line (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value: "ns/op", "B/op", "allocs/op", and any
	// custom b.ReportMetric units ("pulses/op", "states/op", ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Entry is one labeled benchmark run in a regression file.
type Entry struct {
	// Label identifies the run, e.g. "pre" and "post" around a perf PR,
	// or a short commit description.
	Label string `json:"label"`
	// Note is free-form context (benchtime, machine, commit).
	Note string `json:"note,omitempty"`
	// Results are the run's parsed benchmark lines, in input order.
	Results []Result `json:"results"`
}

// File is the schema of BENCH_*.json: a list of labeled runs, oldest
// first. Re-recording an existing label replaces that entry in place, so
// the file stays one entry per label.
type File struct {
	Entries []Entry `json:"entries"`
}

// Parse reads `go test -bench` output and returns the benchmark lines in
// order. Non-benchmark lines (goos/pkg headers, PASS/ok trailers, test
// logs) are ignored. Parse fails on a line that starts like a benchmark
// result but does not scan, rather than silently dropping measurements.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		res, ok, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine scans one output line; ok reports whether it was a benchmark
// result line at all.
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	// A result line is "BenchmarkName[-P] N value unit [value unit]...".
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false, nil
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return Result{}, false, nil // e.g. "BenchmarkFoo" alone on its announce line
	}
	res := Result{Metrics: map[string]float64{}}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			res.Procs = p
			name = name[:i]
		}
	}
	res.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
	}
	res.Iterations = iters
	pairs := fields[2:]
	if len(pairs)%2 != 0 {
		return Result{}, false, fmt.Errorf("benchjson: odd value/unit fields in %q", line)
	}
	for i := 0; i < len(pairs); i += 2 {
		v, err := strconv.ParseFloat(pairs[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("benchjson: bad metric value in %q: %w", line, err)
		}
		res.Metrics[pairs[i+1]] = v
	}
	return res, true, nil
}

// Record inserts a labeled run into f: replacing the entry with the same
// label if present, appending otherwise.
func (f *File) Record(e Entry) {
	for i := range f.Entries {
		if f.Entries[i].Label == e.Label {
			f.Entries[i] = e
			return
		}
	}
	f.Entries = append(f.Entries, e)
}

// Merge folds a labeled run into f by benchmark name: results replace
// the existing entry's same-name results in place and append otherwise,
// so a partial run (one new benchmark) extends a committed entry instead
// of erasing the rest of it. The existing note is kept unless e carries
// one. Without a matching entry, Merge is Record.
func (f *File) Merge(e Entry) {
	for i := range f.Entries {
		if f.Entries[i].Label != e.Label {
			continue
		}
		for _, r := range e.Results {
			replaced := false
			for j := range f.Entries[i].Results {
				if f.Entries[i].Results[j].Name == r.Name {
					f.Entries[i].Results[j] = r
					replaced = true
					break
				}
			}
			if !replaced {
				f.Entries[i].Results = append(f.Entries[i].Results, r)
			}
		}
		if e.Note != "" {
			f.Entries[i].Note = e.Note
		}
		return
	}
	f.Entries = append(f.Entries, e)
}

// Find returns the entry with the given label.
func (f *File) Find(label string) (Entry, bool) {
	for _, e := range f.Entries {
		if e.Label == label {
			return e, true
		}
	}
	return Entry{}, false
}

// Decode reads a regression file. An empty input decodes to an empty
// File, so a missing-file read can be treated as zero bytes.
func Decode(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	f := &File{}
	if len(data) == 0 {
		return f, nil
	}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("benchjson: decode: %w", err)
	}
	return f, nil
}

// Encode writes the regression file as indented JSON with a trailing
// newline. Map keys serialize sorted (encoding/json guarantees this), so
// output is deterministic for a given File.
func (f *File) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Regressions compares the given metrics between two runs, pairing
// results by benchmark name as a multiset (the i-th occurrence of a name
// in old pairs with the i-th in new, so sub-benchmarks that repeat a name
// still line up), and returns one line per regression: a metric that grew
// by more than pct percent. Benchmarks present in only one run are
// skipped — a new or removed benchmark is not a regression.
func Regressions(old, new Entry, pct float64, metrics []string) []string {
	prev := map[string][]Result{}
	for _, r := range old.Results {
		prev[r.Name] = append(prev[r.Name], r)
	}
	seen := map[string]int{}
	var lines []string
	for _, r := range new.Results {
		i := seen[r.Name]
		seen[r.Name]++
		rs := prev[r.Name]
		if i >= len(rs) {
			continue
		}
		o := rs[i]
		for _, m := range metrics {
			ov, nv := o.Metrics[m], r.Metrics[m]
			if ov == 0 {
				continue
			}
			if growth := (nv - ov) / ov * 100; growth > pct {
				lines = append(lines, fmt.Sprintf("%s: %s %.4g -> %.4g (+%.1f%%, threshold %.4g%%)",
					r.Name, m, ov, nv, growth, pct))
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// Speedup compares metric m between two runs, matching results by Name,
// and returns "name: old/new = factor" lines sorted by name. Results
// present in only one run are skipped.
func Speedup(old, new Entry, m string) []string {
	prev := map[string]float64{}
	for _, r := range old.Results {
		prev[r.Name] = r.Metrics[m]
	}
	var lines []string
	for _, r := range new.Results {
		o, ok := prev[r.Name]
		n := r.Metrics[m]
		if !ok || o == 0 || n == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx)", r.Name, m, o, n, o/n))
	}
	sort.Strings(lines)
	return lines
}
