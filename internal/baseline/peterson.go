package baseline

import (
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Peterson is Peterson's unidirectional O(n log n) algorithm (1982), in the
// Dolev–Klawe–Rodeh style. Active nodes carry a temporary ID. In each
// phase an active node sends its temporary ID, learns the temporary ID d1
// of its nearest active counterclockwise neighbor, relays max(tid, d1), and
// learns d2, the one beyond. It survives the phase holding d1 iff d1 is a
// local maximum (d1 > tid and d1 > d2); otherwise it becomes a relay. Each
// phase at least halves the active nodes. An active node that receives its
// own temporary ID back is the last one standing and announces clockwise.
//
// After declaring, the leader absorbs any stray tokens, so the network
// quiesces; non-leaders decide upon the announcement. Message complexity
// is at most 2n per phase plus n for the announcement: <= 2n·ceil(log n)+n
// in total.
type Peterson struct {
	common
	active bool
	tid    uint64
	haveD1 bool
	d1     uint64
	won    bool
}

// NewPeterson returns a Peterson machine.
func NewPeterson(id uint64, cwPort pulse.Port) (*Peterson, error) {
	c, err := newCommon(id, cwPort)
	if err != nil {
		return nil, err
	}
	return &Peterson{common: c, active: true}, nil
}

// Init implements node.Machine.
func (pt *Peterson) Init(e Emitter) {
	pt.tid = pt.id
	pt.sendCW(e, Msg{Kind: KindToken, ID: pt.tid})
}

// OnMsg implements node.Machine.
func (pt *Peterson) OnMsg(p pulse.Port, m Msg, e Emitter) {
	if p == pt.cwPort {
		pt.fault("baseline: Peterson got %v on clockwise port", m.Kind)
		return
	}
	switch m.Kind {
	case KindToken:
		switch {
		case pt.won:
			// The declared leader drains leftover tokens.
		case !pt.active:
			pt.sendCW(e, m)
		case !pt.haveD1:
			pt.d1, pt.haveD1 = m.ID, true
			if pt.d1 == pt.tid {
				pt.declare(e)
				return
			}
			d := pt.tid
			if pt.d1 > d {
				d = pt.d1
			}
			pt.sendCW(e, Msg{Kind: KindToken, ID: d})
		default:
			d2 := m.ID
			pt.haveD1 = false
			// Survive iff d1 is a local maximum. The second comparison must
			// be >=, not >: the second token carries max(tid, d1) of the
			// counterclockwise active, so d2 can equal d1 (e.g. on a 2-node
			// ring both directions deliver the same maximum) and a strict
			// comparison would eliminate every active node.
			if pt.d1 > pt.tid && pt.d1 >= d2 {
				// Survive the phase carrying the local maximum.
				pt.tid = pt.d1
				pt.sendCW(e, Msg{Kind: KindToken, ID: pt.tid})
			} else {
				pt.active = false
				if pt.state == node.StateUndecided {
					pt.state = node.StateNonLeader
				}
			}
		}
	case KindAnnounce:
		if pt.won {
			// The detector absorbs its announcement after the full circle.
			pt.term = true
			return
		}
		pt.leaderID = m.ID
		if m.ID == pt.id {
			pt.state = node.StateLeader
		} else {
			pt.state = node.StateNonLeader
		}
		pt.decided = true
		pt.sendCW(e, m)
		pt.term = true
	default:
		pt.fault("baseline: Peterson got unexpected %v", m.Kind)
	}
}

// declare runs at the node where the maximal temporary ID finally resides —
// which is generally NOT the node that owns that ID: temporary IDs migrate
// one active hop per phase. The announcement therefore carries the winning
// (maximal) original ID, and the node whose real ID matches it declares
// itself leader as the announcement passes.
func (pt *Peterson) declare(e Emitter) {
	pt.won = true
	pt.leaderID = pt.tid
	if pt.tid == pt.id {
		pt.state = node.StateLeader
	} else {
		pt.state = node.StateNonLeader
	}
	pt.decided = true
	pt.sendCW(e, Msg{Kind: KindAnnounce, ID: pt.tid})
}
