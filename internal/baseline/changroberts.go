package baseline

import (
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// ChangRoberts is the Chang–Roberts extrema-finding algorithm (1979): each
// node launches its ID clockwise; a node forwards tokens larger than its
// own ID, swallows smaller ones, and declares itself leader when its own
// ID returns. The leader then circulates an announcement that lets every
// node decide and terminate.
//
// Because tokens cannot overtake one another on FIFO channels, every
// non-maximal token dies before the maximal one completes its loop, so the
// announcement is the last message on every channel and termination is
// quiescent. Worst case n(n+1)/2 + n messages (IDs decreasing clockwise),
// O(n log n) expected for random arrangements.
type ChangRoberts struct {
	common
}

// NewChangRoberts returns a Chang–Roberts machine.
func NewChangRoberts(id uint64, cwPort pulse.Port) (*ChangRoberts, error) {
	c, err := newCommon(id, cwPort)
	if err != nil {
		return nil, err
	}
	return &ChangRoberts{common: c}, nil
}

// Init implements node.Machine.
func (cr *ChangRoberts) Init(e Emitter) {
	cr.sendCW(e, Msg{Kind: KindToken, ID: cr.id})
}

// OnMsg implements node.Machine.
func (cr *ChangRoberts) OnMsg(p pulse.Port, m Msg, e Emitter) {
	if p == cr.cwPort {
		cr.fault("baseline: ChangRoberts got %v on clockwise port", m.Kind)
		return
	}
	switch m.Kind {
	case KindToken:
		switch {
		case m.ID > cr.id:
			cr.state = node.StateNonLeader
			cr.sendCW(e, m)
		case m.ID < cr.id:
			// Swallow: this token can never win.
		default:
			// Own ID circumnavigated: elected.
			cr.state = node.StateLeader
			cr.leaderID = cr.id
			cr.sendCW(e, Msg{Kind: KindAnnounce, ID: cr.id})
		}
	case KindAnnounce:
		if m.ID == cr.id {
			// Announcement returned to the leader: everyone has decided.
			cr.decided = true
			cr.term = true
			return
		}
		cr.state = node.StateNonLeader
		cr.leaderID = m.ID
		cr.decided = true
		cr.sendCW(e, m)
		cr.term = true
	default:
		cr.fault("baseline: ChangRoberts got unexpected %v", m.Kind)
	}
}
