package baseline

import (
	"fmt"

	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// Algorithm names a baseline for table-driven experiments and CLIs.
type Algorithm string

// The implemented baselines.
const (
	AlgLeLann             Algorithm = "lelann"
	AlgChangRoberts       Algorithm = "chang-roberts"
	AlgHirschbergSinclair Algorithm = "hirschberg-sinclair"
	AlgPeterson           Algorithm = "peterson"
	AlgFranklin           Algorithm = "franklin"
)

// Algorithms lists every baseline in a stable order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgLeLann, AlgChangRoberts, AlgHirschbergSinclair, AlgPeterson, AlgFranklin}
}

// New constructs a single machine of the named baseline.
func New(a Algorithm, id uint64, cw pulse.Port) (Machine, error) {
	switch a {
	case AlgLeLann:
		return NewLeLann(id, cw)
	case AlgChangRoberts:
		return NewChangRoberts(id, cw)
	case AlgHirschbergSinclair:
		return NewHirschbergSinclair(id, cw)
	case AlgPeterson:
		return NewPeterson(id, cw)
	case AlgFranklin:
		return NewFranklin(id, cw)
	default:
		return nil, fmt.Errorf("baseline: unknown algorithm %q", a)
	}
}

// Machines builds a whole ring of machines of the named baseline. The
// baselines assume unique IDs and an oriented ring (the topology supplies
// each node's clockwise port).
func Machines(a Algorithm, t ring.Topology, ids []uint64) ([]Machine, error) {
	if len(ids) != t.N() {
		return nil, fmt.Errorf("baseline: %d IDs for %d nodes", len(ids), t.N())
	}
	if err := ring.CheckDistinct(ids); err != nil {
		return nil, err
	}
	ms := make([]Machine, t.N())
	for k := range ms {
		m, err := New(a, ids[k], t.CWPort(k))
		if err != nil {
			return nil, fmt.Errorf("baseline: node %d: %w", k, err)
		}
		ms[k] = m
	}
	return ms, nil
}

// Run executes the named baseline to quiescence under sched and returns
// the simulation result.
func Run(a Algorithm, t ring.Topology, ids []uint64, sched sim.Scheduler, limit uint64) (sim.Result, error) {
	ms, err := Machines(a, t, ids)
	if err != nil {
		return sim.Result{}, err
	}
	s, err := sim.New(t, ms, sched)
	if err != nil {
		return sim.Result{}, err
	}
	return s.Run(limit)
}
