package baseline_test

import (
	"math/rand"
	"testing"

	"coleader/internal/baseline"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

func runItaiRodeh(t *testing.T, n int, seed int64, sched sim.Scheduler) (sim.Result, []*baseline.ItaiRodeh) {
	t.Helper()
	topo, err := ring.Oriented(n)
	if err != nil {
		t.Fatal(err)
	}
	ports := make([]pulse.Port, n)
	for k := range ports {
		ports[k] = topo.CWPort(k)
	}
	ms, err := baseline.ItaiRodehMachines(n, ports, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1 << 22)
	if err != nil {
		t.Fatalf("n=%d seed=%d: %v", n, seed, err)
	}
	irs := make([]*baseline.ItaiRodeh, n)
	for k := 0; k < n; k++ {
		irs[k] = s.Machine(k).(*baseline.ItaiRodeh)
	}
	return res, irs
}

// TestItaiRodehElectsExactlyOne: the anonymous randomized election with
// known n always terminates with exactly one leader — the termination the
// paper's Theorem 3 cannot have without knowing n.
func TestItaiRodehElectsExactlyOne(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		for seed := int64(0); seed < 15; seed++ {
			res, _ := runItaiRodeh(t, n, seed*1000, sim.NewRandom(seed))
			if len(res.Leaders) != 1 {
				t.Fatalf("n=%d seed=%d: %d leaders", n, seed, len(res.Leaders))
			}
			if !res.AllTerminated || !res.Quiescent {
				t.Fatalf("n=%d seed=%d: terminated=%t quiescent=%t",
					n, seed, res.AllTerminated, res.Quiescent)
			}
		}
	}
}

// TestItaiRodehAllSchedulers: correctness is schedule-independent.
func TestItaiRodehAllSchedulers(t *testing.T) {
	for name, sched := range sim.Stock(5) {
		res, _ := runItaiRodeh(t, 6, 42, sched)
		if len(res.Leaders) != 1 || !res.AllTerminated {
			t.Errorf("%s: leaders=%v terminated=%t", name, res.Leaders, res.AllTerminated)
		}
	}
}

// TestItaiRodehEveryoneDecides: every node ends decided with a consistent
// view.
func TestItaiRodehEveryoneDecides(t *testing.T) {
	res, irs := runItaiRodeh(t, 7, 99, sim.NewRandom(7))
	leaders := 0
	for k, ir := range irs {
		st := ir.Status()
		if st.State == node.StateUndecided {
			t.Errorf("node %d undecided", k)
		}
		if st.State == node.StateLeader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders", leaders)
	}
	_ = res
}

// TestItaiRodehMessageBound: expected message complexity is O(n log n) per
// phase round with O(1) expected phases; assert a generous empirical
// envelope across seeds.
func TestItaiRodehMessageBound(t *testing.T) {
	const n = 16
	var worst uint64
	for seed := int64(0); seed < 20; seed++ {
		res, irs := runItaiRodeh(t, n, seed*77, sim.NewRandom(seed))
		if res.Sent > worst {
			worst = res.Sent
		}
		for _, ir := range irs {
			if ir.Phases() > 10 {
				t.Errorf("seed %d: %d re-draw phases (suspicious)", seed, ir.Phases())
			}
		}
	}
	// Each phase costs at most n^2 + n; more than 8 full phases in the
	// worst of 20 seeds would be extraordinary.
	if bound := uint64(8 * (n*n + n)); worst > bound {
		t.Errorf("worst-case messages %d > envelope %d", worst, bound)
	}
}

// TestItaiRodehValidation covers the constructors.
func TestItaiRodehValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := baseline.NewItaiRodeh(0, pulse.Port1, rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := baseline.NewItaiRodeh(3, pulse.Port1, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := baseline.NewItaiRodeh(3, pulse.Port(9), rng); err == nil {
		t.Error("bad port accepted")
	}
	if _, err := baseline.ItaiRodehMachines(3, nil, 1); err == nil {
		t.Error("mismatched ports accepted")
	}
}

// TestPackMsgFlag: the codec round-trips the Flag bit Itai–Rodeh uses.
func TestPackMsgFlag(t *testing.T) {
	for _, m := range []baseline.Msg{
		{Kind: baseline.KindToken, ID: 5, Phase: 3, Hops: 7, Flag: true},
		{Kind: baseline.KindToken, ID: 5, Phase: 3, Hops: 7, Flag: false},
		{Kind: baseline.KindAnnounce, ID: 1, Hops: 1, Flag: true},
	} {
		v, err := baseline.PackMsg(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := baseline.UnpackMsg(v)
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Errorf("roundtrip %+v -> %+v", m, got)
		}
	}
}
