package baseline

import (
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Franklin is Franklin's bidirectional O(n log n) election (1982). In each
// phase an active node sends its ID both ways; probes are consumed by the
// nearest active node in each direction (passive nodes relay). An active
// node survives the phase iff its ID exceeds both received IDs; receiving
// its own ID means its probes circled the whole ring — it is the last
// active node and becomes leader, announcing clockwise.
//
// Asynchrony is handled by phase tags and per-side FIFO buffers: the
// stream of probes arriving on one side has strictly increasing phases
// (each consecutive pair of active nodes exchanges exactly one probe per
// phase), so an active node pairs the head probes of its two sides, which
// always carry its current phase. A node buffers probes that run ahead of
// it and flushes its buffers downstream when it turns passive.
type Franklin struct {
	common
	active bool
	phase  uint8
	buf    [2][]Msg // pending probes per receiving port
}

// NewFranklin returns a Franklin machine.
func NewFranklin(id uint64, cwPort pulse.Port) (*Franklin, error) {
	c, err := newCommon(id, cwPort)
	if err != nil {
		return nil, err
	}
	return &Franklin{common: c, active: true}, nil
}

func (fr *Franklin) probeBoth(e Emitter) {
	m := Msg{Kind: KindProbe, ID: fr.id, Phase: fr.phase}
	fr.sendCW(e, m)
	fr.sendCCW(e, m)
}

// Init implements node.Machine.
func (fr *Franklin) Init(e Emitter) { fr.probeBoth(e) }

// OnMsg implements node.Machine.
func (fr *Franklin) OnMsg(p pulse.Port, m Msg, e Emitter) {
	switch m.Kind {
	case KindProbe:
		if !fr.active {
			e.Send(p.Opposite(), m) // relay onward in its travel direction
			return
		}
		fr.buf[p] = append(fr.buf[p], m)
		fr.pairAndDecide(e)
	case KindAnnounce:
		if m.ID == fr.id {
			fr.term = true // announcement absorbed by the leader
			return
		}
		fr.state = node.StateNonLeader
		fr.leaderID = m.ID
		fr.decided = true
		fr.sendCW(e, m)
		fr.term = true
	default:
		fr.fault("baseline: Franklin got unexpected %v", m.Kind)
	}
}

// pairAndDecide consumes matched probe pairs while both sides have one.
func (fr *Franklin) pairAndDecide(e Emitter) {
	for fr.active && len(fr.buf[0]) > 0 && len(fr.buf[1]) > 0 {
		a, b := fr.buf[0][0], fr.buf[1][0]
		fr.buf[0] = fr.buf[0][1:]
		fr.buf[1] = fr.buf[1][1:]
		if a.Phase != fr.phase || b.Phase != fr.phase {
			fr.fault("baseline: Franklin phase mismatch: have %d, probes %d/%d",
				fr.phase, a.Phase, b.Phase)
			return
		}
		if a.ID == fr.id || b.ID == fr.id {
			// Own probe circled the ring: sole survivor.
			fr.active = false
			fr.state = node.StateLeader
			fr.leaderID = fr.id
			fr.decided = true
			fr.sendCW(e, Msg{Kind: KindAnnounce, ID: fr.id})
			return
		}
		if fr.id > a.ID && fr.id > b.ID {
			fr.phase++
			fr.probeBoth(e)
			continue
		}
		// Defeated: flush run-ahead probes downstream, then relay forever.
		fr.active = false
		fr.state = node.StateNonLeader
		for _, port := range []pulse.Port{pulse.Port0, pulse.Port1} {
			for _, pending := range fr.buf[port] {
				e.Send(port.Opposite(), pending)
			}
			fr.buf[port] = nil
		}
	}
}
