package baseline

import (
	"fmt"
	"math/rand"

	"coleader/internal/node"
	"coleader/internal/pulse"
)

// ItaiRodeh is the randomized election of Itai and Rodeh (1990) for
// ANONYMOUS rings whose size n is known to every node — the precise
// knowledge regime the paper contrasts its Theorem 3 against: with n
// known, a terminating anonymous election exists; without it, Itai and
// Rodeh's own impossibility result forbids termination, which is why the
// paper's anonymous algorithm only reaches quiescence.
//
// Each phase, every remaining candidate draws a random ID from [1, n] and
// circulates a token (phase, id, hops, unique). Tokens are compared
// lexicographically by (phase, id): a candidate yields (turns relay) to a
// strictly greater token, marks an equal token as not-unique, and discards
// a smaller one. A candidate whose own token returns (hops = n) with the
// unique bit intact is the sole maximum of the final phase and becomes
// leader; with the bit cleared, the tied maxima re-draw in the next phase.
// FIFO channels make the asynchronous interleaving of phases safe. The
// leader's announcement travels exactly n hops, deciding and quiescently
// terminating every node (tokens in flight cannot be overtaken by the
// announcement, so they are all absorbed first).
type ItaiRodeh struct {
	common
	n   int
	rng *rand.Rand

	candidate   bool
	outstanding bool // this node's token for the current phase is in flight
	phase       uint8
	myID        uint64
	phases      int // completed re-draws, exposed for experiments
}

// NewItaiRodeh returns an Itai–Rodeh machine for an anonymous ring of
// known size n. The machine is anonymous: the rng is its only distinction
// (its "own source of randomness"); the common ID field is unused for
// election and set to a placeholder.
func NewItaiRodeh(n int, cwPort pulse.Port, rng *rand.Rand) (*ItaiRodeh, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: ring size %d < 1", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("baseline: nil rng")
	}
	c, err := newCommon(1, cwPort) // placeholder identity; never compared
	if err != nil {
		return nil, err
	}
	return &ItaiRodeh{common: c, n: n, rng: rng, candidate: true}, nil
}

// Phases returns how many extra draw rounds this node went through.
func (ir *ItaiRodeh) Phases() int { return ir.phases }

func (ir *ItaiRodeh) draw(e Emitter) {
	ir.myID = 1 + uint64(ir.rng.Intn(ir.n))
	ir.outstanding = true
	ir.sendCW(e, Msg{Kind: KindToken, ID: ir.myID, Phase: ir.phase, Hops: 1, Flag: true})
}

// Init implements node.Machine: phase 0 draw.
func (ir *ItaiRodeh) Init(e Emitter) { ir.draw(e) }

// beats reports whether token (p1, id1) lexicographically exceeds
// (p2, id2).
func beats(p1 uint8, id1 uint64, p2 uint8, id2 uint64) bool {
	return p1 > p2 || (p1 == p2 && id1 > id2)
}

// OnMsg implements node.Machine.
func (ir *ItaiRodeh) OnMsg(p pulse.Port, m Msg, e Emitter) {
	if p == ir.cwPort {
		ir.fault("baseline: ItaiRodeh got %v on clockwise port", m.Kind)
		return
	}
	switch m.Kind {
	case KindToken:
		ir.onToken(m, e)
	case KindAnnounce:
		if m.Hops >= uint32(ir.n) {
			// Our announcement (or, at n-hop distance, the leader's own):
			// absorbed; everyone has decided.
			ir.decided = true
			ir.term = true
			return
		}
		ir.state = node.StateNonLeader
		ir.decided = true
		ir.sendCW(e, Msg{Kind: KindAnnounce, Hops: m.Hops + 1})
		ir.term = true
	default:
		ir.fault("baseline: ItaiRodeh got unexpected %v", m.Kind)
	}
}

func (ir *ItaiRodeh) onToken(m Msg, e Emitter) {
	// A token reaches hop count n exactly at its origin (it visits every
	// other node at hops < n, and FIFO prevents overtaking). Every origin
	// — candidate or not — absorbs its own returning token; otherwise a
	// passive origin's token would circle past n hops and be misread as
	// someone else's return.
	if m.Hops >= uint32(ir.n) {
		if !ir.outstanding || m.Hops > uint32(ir.n) {
			ir.fault("baseline: ItaiRodeh token with hops=%d at node with outstanding=%t",
				m.Hops, ir.outstanding)
			return
		}
		ir.outstanding = false
		if !ir.candidate {
			return // old token of a now-passive node: absorbed silently
		}
		if m.Flag {
			// Unchallenged full loop: sole maximum of this phase.
			ir.state = node.StateLeader
			ir.decided = true
			ir.candidate = false
			ir.sendCW(e, Msg{Kind: KindAnnounce, Hops: 1})
			return
		}
		// Tied maximum: re-draw.
		ir.phase++
		ir.phases++
		ir.draw(e)
		return
	}
	if !ir.candidate {
		ir.sendCW(e, Msg{Kind: m.Kind, ID: m.ID, Phase: m.Phase, Hops: m.Hops + 1, Flag: m.Flag})
		return
	}
	switch {
	case beats(m.Phase, m.ID, ir.phase, ir.myID):
		ir.candidate = false
		ir.state = node.StateNonLeader
		ir.sendCW(e, Msg{Kind: m.Kind, ID: m.ID, Phase: m.Phase, Hops: m.Hops + 1, Flag: m.Flag})
	case m.Phase == ir.phase && m.ID == ir.myID:
		ir.sendCW(e, Msg{Kind: m.Kind, ID: m.ID, Phase: m.Phase, Hops: m.Hops + 1, Flag: false})
	default:
		// Strictly smaller token: discard.
	}
}

// ItaiRodehMachines builds an anonymous ring of Itai–Rodeh machines with
// private rngs seeded from seed.
func ItaiRodehMachines(n int, cwPorts []pulse.Port, seed int64) ([]Machine, error) {
	if len(cwPorts) != n {
		return nil, fmt.Errorf("baseline: %d ports for %d nodes", len(cwPorts), n)
	}
	ms := make([]Machine, n)
	for k := 0; k < n; k++ {
		m, err := NewItaiRodeh(n, cwPorts[k], rand.New(rand.NewSource(seed+int64(k))))
		if err != nil {
			return nil, err
		}
		ms[k] = m
	}
	return ms, nil
}
