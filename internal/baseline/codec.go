package baseline

import "fmt"

// Compact integer codec for Msg, used to run the baselines over the
// fully defective transport (defective.Adapter). The layout keeps small
// protocol messages numerically small, because the transport's unary
// chunks cost pulses proportional to digit count:
//
//	bit      0..1  Kind - 1   (4 kinds)
//	bit         2  Flag
//	bits     3..7  Phase      (< 32)
//	bits    8..23  Hops       (< 65536)
//	bits   24..63  ID         (< 2^40)

const (
	packKindBits  = 2
	packFlagBits  = 1
	packPhaseBits = 5
	packHopsBits  = 16
	packIDBits    = 40

	packPhaseShift = packKindBits + packFlagBits
	packHopsShift  = packPhaseShift + packPhaseBits
	packIDShift    = packHopsShift + packHopsBits
)

// PackMsg encodes m for transport; it fails on fields exceeding the
// layout (rings large enough to need them are far beyond simulation
// scale).
func PackMsg(m Msg) (uint64, error) {
	switch {
	case m.Kind < KindToken || m.Kind > KindAnnounce:
		return 0, fmt.Errorf("baseline: unpackable kind %d", m.Kind)
	case m.Phase >= 1<<packPhaseBits:
		return 0, fmt.Errorf("baseline: phase %d exceeds %d bits", m.Phase, packPhaseBits)
	case m.Hops >= 1<<packHopsBits:
		return 0, fmt.Errorf("baseline: hops %d exceeds %d bits", m.Hops, packHopsBits)
	case m.ID >= 1<<packIDBits:
		return 0, fmt.Errorf("baseline: ID %d exceeds %d bits", m.ID, packIDBits)
	}
	v := uint64(m.Kind - KindToken)
	if m.Flag {
		v |= 1 << packKindBits
	}
	v |= uint64(m.Phase)<<packPhaseShift |
		uint64(m.Hops)<<packHopsShift |
		m.ID<<packIDShift
	return v, nil
}

// MustPackMsg is PackMsg for callers with statically valid messages.
func MustPackMsg(m Msg) uint64 {
	v, err := PackMsg(m)
	if err != nil {
		panic(err)
	}
	return v
}

// UnpackMsg inverts PackMsg.
func UnpackMsg(v uint64) (Msg, error) {
	m := Msg{
		Kind:  Kind(v&(1<<packKindBits-1)) + KindToken,
		Flag:  v>>packKindBits&1 == 1,
		Phase: uint8(v >> packPhaseShift & (1<<packPhaseBits - 1)),
		Hops:  uint32(v >> packHopsShift & (1<<packHopsBits - 1)),
		ID:    v >> packIDShift,
	}
	return m, nil
}
