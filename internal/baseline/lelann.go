package baseline

import (
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// LeLann is Le Lann's 1977 algorithm: every node circulates a token
// carrying its ID clockwise; every node forwards every foreign token and
// absorbs its own. Per-channel FIFO and the init-before-forward discipline
// guarantee that by the time a node's own token returns it has seen every
// other ID, so it decides locally: Leader iff its ID is the maximum seen.
//
// Exactly n^2 messages (n tokens, n hops each), quiescent termination.
type LeLann struct {
	common
	maxSeen uint64
}

// NewLeLann returns a Le Lann machine.
func NewLeLann(id uint64, cwPort pulse.Port) (*LeLann, error) {
	c, err := newCommon(id, cwPort)
	if err != nil {
		return nil, err
	}
	return &LeLann{common: c}, nil
}

// Init implements node.Machine.
func (l *LeLann) Init(e Emitter) {
	l.maxSeen = l.id
	l.sendCW(e, Msg{Kind: KindToken, ID: l.id})
}

// OnMsg implements node.Machine.
func (l *LeLann) OnMsg(p pulse.Port, m Msg, e Emitter) {
	if p == l.cwPort || m.Kind != KindToken {
		l.fault("baseline: LeLann got %v on %v", m.Kind, p)
		return
	}
	if m.ID == l.id {
		// Own token back: every other token has passed through already.
		l.leaderID = l.maxSeen
		if l.maxSeen == l.id {
			l.state = node.StateLeader
		} else {
			l.state = node.StateNonLeader
		}
		l.decided = true
		l.term = true
		return
	}
	if m.ID > l.maxSeen {
		l.maxSeen = m.ID
	}
	l.sendCW(e, m)
}
