// Package baseline implements the classical content-carrying leader
// election algorithms that Section 1.2 of the paper positions its result
// against: Le Lann, Chang–Roberts (both Theta(n^2) worst case),
// Hirschberg–Sinclair, and Peterson's unidirectional algorithm (both
// O(n log n)). They run on the same simulator as the content-oblivious
// algorithms — sim.Sim[baseline.Msg] instead of sim.Sim[pulse.Pulse] — so
// experiment E6 can compare message counts under identical schedulers and
// quantify the price of content-obliviousness: Theta(n·ID_max) pulses
// against O(n log n) content-carrying messages.
package baseline

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Kind tags the role of a message within its algorithm.
type Kind uint8

// Message kinds.
const (
	// KindToken is a circulating identifier (Le Lann, Chang–Roberts,
	// Peterson probes).
	KindToken Kind = iota + 1
	// KindProbe is a bounded-distance probe (Hirschberg–Sinclair).
	KindProbe
	// KindReply is a probe acknowledgment traveling back (Hirschberg–
	// Sinclair).
	KindReply
	// KindAnnounce carries the elected leader's ID around the ring.
	KindAnnounce
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindToken:
		return "token"
	case KindProbe:
		return "probe"
	case KindReply:
		return "reply"
	case KindAnnounce:
		return "announce"
	default:
		return "kind?"
	}
}

// Msg is the content-carrying ring message. In the fully defective model
// this entire struct would be erased to a pulse; here it survives intact,
// which is exactly the advantage being measured.
type Msg struct {
	Kind  Kind
	ID    uint64
	Phase uint8
	Hops  uint32
	// Flag is algorithm-specific: Itai–Rodeh's "still unique" bit.
	Flag bool
}

// Machine is a content-carrying ring machine.
type Machine = node.Machine[Msg]

// Emitter is the emitter handed to baseline machines.
type Emitter = node.Emitter[Msg]

// common holds the bookkeeping shared by all four baselines.
type common struct {
	id       uint64
	cwPort   pulse.Port
	state    node.State
	leaderID uint64
	decided  bool
	term     bool
	err      error
}

// ID returns the node's identifier.
func (c *common) ID() uint64 { return c.id }

// LeaderID returns the elected leader's ID as learned by this node (0
// before decision).
func (c *common) LeaderID() uint64 { return c.leaderID }

// Decided reports whether the node has fixed its output.
func (c *common) Decided() bool { return c.decided }

// Status implements part of node.Machine.
func (c *common) Status() node.Status {
	return node.Status{State: c.state, Terminated: c.term, Err: c.err}
}

// Ready implements part of node.Machine.
func (c *common) Ready(pulse.Port) bool { return !c.term }

func (c *common) sendCW(e Emitter, m Msg)  { e.Send(c.cwPort, m) }
func (c *common) sendCCW(e Emitter, m Msg) { e.Send(c.cwPort.Opposite(), m) }

func (c *common) fault(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func newCommon(id uint64, cwPort pulse.Port) (common, error) {
	if id == 0 {
		return common{}, fmt.Errorf("baseline: ID must be positive")
	}
	if !cwPort.Valid() {
		return common{}, fmt.Errorf("baseline: invalid clockwise port %d", cwPort)
	}
	return common{id: id, cwPort: cwPort}, nil
}
