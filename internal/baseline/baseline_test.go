package baseline_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"coleader/internal/baseline"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

func runBaseline(t *testing.T, a baseline.Algorithm, ids []uint64, sched sim.Scheduler) sim.Result {
	t.Helper()
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.Run(a, topo, ids, sched, 1<<20)
	if err != nil {
		t.Fatalf("%s (ids=%v): %v", a, ids, err)
	}
	return res
}

// TestBaselinesElectMaxEverywhere: every baseline elects the maximum-ID
// node, under every stock scheduler, on assorted rings.
func TestBaselinesElectMaxEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	rings := [][]uint64{
		{1},
		{4},
		{1, 2},
		{2, 1},
		{3, 1, 2},
		{1, 2, 3, 4, 5, 6, 7},
		{7, 6, 5, 4, 3, 2, 1},
		ring.PermutedIDs(12, rng),
	}
	for _, a := range baseline.Algorithms() {
		a := a
		t.Run(string(a), func(t *testing.T) {
			for _, ids := range rings {
				for name, sched := range sim.Stock(5) {
					res := runBaseline(t, a, ids, sched)
					wantLeader, _ := ring.MaxIndex(ids)
					if res.Leader != wantLeader {
						t.Errorf("%s/%s ids=%v: leader %d, want %d",
							a, name, ids, res.Leader, wantLeader)
					}
					if !res.Quiescent {
						t.Errorf("%s/%s ids=%v: not quiescent", a, name, ids)
					}
				}
			}
		})
	}
}

// TestBaselineDecidedStates: at quiescence every node has decided, with
// consistent leader knowledge where the algorithm provides it.
func TestBaselineDecidedStates(t *testing.T) {
	ids := []uint64{5, 2, 9, 1, 7}
	for _, a := range baseline.Algorithms() {
		a := a
		t.Run(string(a), func(t *testing.T) {
			topo, err := ring.Oriented(len(ids))
			if err != nil {
				t.Fatal(err)
			}
			ms, err := baseline.Machines(a, topo, ids)
			if err != nil {
				t.Fatal(err)
			}
			s, err := sim.New(topo, ms, sim.NewRandom(1))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(1 << 20); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < len(ids); k++ {
				st := s.Machine(k).Status()
				if st.State == node.StateUndecided {
					t.Errorf("node %d undecided", k)
				}
			}
		})
	}
}

// TestLeLannExactCount: Le Lann always sends exactly n^2 messages.
func TestLeLannExactCount(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 9, 16} {
		rng := rand.New(rand.NewSource(int64(n)))
		ids := ring.PermutedIDs(n, rng)
		res := runBaseline(t, baseline.AlgLeLann, ids, sim.NewRandom(3))
		if want := uint64(n * n); res.Sent != want {
			t.Errorf("n=%d: sent %d, want %d", n, res.Sent, want)
		}
		if !res.AllTerminated {
			t.Errorf("n=%d: LeLann did not terminate", n)
		}
	}
}

// TestChangRobertsWorstAndBest pins the classical counts: IDs decreasing
// clockwise give the n(n+1)/2 probe worst case; increasing give 2n-1
// probes. Plus n announcements either way.
func TestChangRobertsWorstAndBest(t *testing.T) {
	const n = 8
	desc := make([]uint64, n) // 8,7,...,1 clockwise
	asc := make([]uint64, n)  // 1,2,...,8 clockwise
	for i := 0; i < n; i++ {
		desc[i] = uint64(n - i)
		asc[i] = uint64(i + 1)
	}
	resDesc := runBaseline(t, baseline.AlgChangRoberts, desc, sim.Canonical{})
	if want := uint64(n*(n+1)/2 + n); resDesc.Sent != want {
		t.Errorf("descending: sent %d, want %d", resDesc.Sent, want)
	}
	resAsc := runBaseline(t, baseline.AlgChangRoberts, asc, sim.Canonical{})
	if want := uint64(2*n - 1 + n); resAsc.Sent != want {
		t.Errorf("ascending: sent %d, want %d", resAsc.Sent, want)
	}
}

// TestChangRobertsTerminatesQuiescently: explicit termination with the
// strict simulator checks enabled is itself the assertion.
func TestChangRobertsTerminatesQuiescently(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		ids := ring.PermutedIDs(n, rng)
		res := runBaseline(t, baseline.AlgChangRoberts, ids, sim.NewRandom(int64(trial)))
		if !res.AllTerminated {
			t.Errorf("trial %d: not all terminated", trial)
		}
	}
}

// TestHSMessageBound: Hirschberg–Sinclair stays within its classical
// 8n(log2 n + 2) + n envelope (generous constant).
func TestHSMessageBound(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		ids := ring.PermutedIDs(n, rng)
		res := runBaseline(t, baseline.AlgHirschbergSinclair, ids, sim.NewRandom(9))
		bound := uint64(8*float64(n)*(math.Log2(float64(n))+2)) + uint64(n)
		if res.Sent > bound {
			t.Errorf("n=%d: sent %d > bound %d", n, res.Sent, bound)
		}
	}
}

// TestPetersonMessageBound: Peterson stays within 2n·ceil(log2 n) + 3n.
func TestPetersonMessageBound(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		ids := ring.PermutedIDs(n, rng)
		res := runBaseline(t, baseline.AlgPeterson, ids, sim.NewRandom(10))
		bound := uint64(2*n)*uint64(math.Ceil(math.Log2(float64(n)))) + uint64(3*n)
		if res.Sent > bound {
			t.Errorf("n=%d: sent %d > bound %d", n, res.Sent, bound)
		}
	}
}

// TestBaselinePropertyRandom: all four baselines elect the max-ID node on
// random rings with sparse IDs under random schedules.
func TestBaselinePropertyRandom(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(14)
		ids, err := ring.SparseIDs(n, uint64(4*n), rng)
		if err != nil {
			return false
		}
		topo, err := ring.Oriented(n)
		if err != nil {
			return false
		}
		wantLeader, _ := ring.MaxIndex(ids)
		for _, a := range baseline.Algorithms() {
			res, err := baseline.Run(a, topo, ids, sim.NewRandom(seed+int64(len(a))), 1<<20)
			if err != nil {
				t.Logf("seed %d %s ids %v: %v", seed, a, ids, err)
				return false
			}
			if res.Leader != wantLeader || !res.Quiescent {
				t.Logf("seed %d %s ids %v: leader %d want %d quiescent %t",
					seed, a, ids, res.Leader, wantLeader, res.Quiescent)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestLeLannLearnsLeaderID: every Le Lann node ends up knowing the
// leader's actual ID.
func TestLeLannLearnsLeaderID(t *testing.T) {
	ids := []uint64{4, 11, 3, 8}
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := baseline.Machines(baseline.AlgLeLann, topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < len(ids); k++ {
		m := s.Machine(k).(*baseline.LeLann)
		if m.LeaderID() != 11 {
			t.Errorf("node %d learned leader %d, want 11", k, m.LeaderID())
		}
		if !m.Decided() {
			t.Errorf("node %d undecided", k)
		}
	}
}

// TestNewValidation covers constructor validation.
func TestNewValidation(t *testing.T) {
	if _, err := baseline.New("nope", 1, pulse.Port1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := baseline.New(baseline.AlgLeLann, 0, pulse.Port1); err == nil {
		t.Error("zero ID accepted")
	}
	if _, err := baseline.New(baseline.AlgPeterson, 1, pulse.Port(9)); err == nil {
		t.Error("invalid port accepted")
	}
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.Machines(baseline.AlgLeLann, topo, []uint64{1, 1}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := baseline.Machines(baseline.AlgLeLann, topo, []uint64{1}); err == nil {
		t.Error("mismatched ID count accepted")
	}
}

// TestKindString covers message-kind naming.
func TestKindString(t *testing.T) {
	for k, want := range map[baseline.Kind]string{
		baseline.KindToken:    "token",
		baseline.KindProbe:    "probe",
		baseline.KindReply:    "reply",
		baseline.KindAnnounce: "announce",
		baseline.Kind(99):     "kind?",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func ExampleAlgorithms() {
	fmt.Println(baseline.Algorithms())
	// Output: [lelann chang-roberts hirschberg-sinclair peterson franklin]
}

// TestFranklinMessageBound: Franklin stays within 2n(log2 n + 2) + n.
func TestFranklinMessageBound(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		ids := ring.PermutedIDs(n, rng)
		res := runBaseline(t, baseline.AlgFranklin, ids, sim.NewRandom(11))
		bound := uint64(2*float64(n)*(math.Log2(float64(n))+2)) + uint64(n)
		if res.Sent > bound {
			t.Errorf("n=%d: sent %d > bound %d", n, res.Sent, bound)
		}
	}
}

// TestFranklinPhaseCount: the winner needs at most ceil(log2 n)+1 phases.
func TestFranklinPhaseCount(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(76))
	ids := ring.PermutedIDs(n, rng)
	topo, err := ring.Oriented(n)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := baseline.Machines(baseline.AlgFranklin, topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sim.NewRandom(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	// All phases are bounded; introspect via message bound implicitly —
	// the explicit check: no machine faulted (phase mismatches fault).
	for k := 0; k < n; k++ {
		if err := s.Machine(k).Status().Err; err != nil {
			t.Errorf("node %d fault: %v", k, err)
		}
	}
}
