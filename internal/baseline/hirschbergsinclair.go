package baseline

import (
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// HirschbergSinclair is the bidirectional O(n log n) algorithm (1980). An
// active node in phase k probes 2^k hops in both directions; nodes with
// smaller IDs relay the probe (and are thereby defeated), nodes with larger
// IDs swallow it. A probe that exhausts its hop budget is answered by a
// reply relayed back to the originator; an originator that collects replies
// from both directions survives into phase k+1. A probe that returns to its
// originator has circumnavigated the ring: the originator is the maximum
// and announces clockwise.
//
// The algorithm stabilizes (decides and goes quiescent) rather than
// terminating: replies for already-defeated originators may still be in
// flight when the announcement passes, so nodes cannot stop polling —
// mirroring the quiescence-versus-termination distinction the paper draws
// for its own non-oriented algorithm.
type HirschbergSinclair struct {
	common
	active    bool
	phase     uint8
	replies   [2]bool // indexed by the port the reply arrived on
	announced bool
}

// NewHirschbergSinclair returns a Hirschberg–Sinclair machine.
func NewHirschbergSinclair(id uint64, cwPort pulse.Port) (*HirschbergSinclair, error) {
	c, err := newCommon(id, cwPort)
	if err != nil {
		return nil, err
	}
	return &HirschbergSinclair{common: c, active: true}, nil
}

func (hs *HirschbergSinclair) probeBoth(e Emitter) {
	m := Msg{Kind: KindProbe, ID: hs.id, Phase: hs.phase, Hops: 1}
	hs.sendCW(e, m)
	hs.sendCCW(e, m)
}

// Init implements node.Machine.
func (hs *HirschbergSinclair) Init(e Emitter) {
	hs.probeBoth(e)
}

// OnMsg implements node.Machine.
func (hs *HirschbergSinclair) OnMsg(p pulse.Port, m Msg, e Emitter) {
	forwardOut := p.Opposite() // continue in the direction of travel
	switch m.Kind {
	case KindProbe:
		switch {
		case m.ID == hs.id:
			// Circumnavigation: this node holds the maximum ID.
			if !hs.announced {
				hs.announced = true
				hs.state = node.StateLeader
				hs.leaderID = hs.id
				hs.decided = true
				hs.sendCW(e, Msg{Kind: KindAnnounce, ID: hs.id})
			}
		case m.ID < hs.id:
			// Swallow: the probe's originator cannot win.
		default:
			// Relaying a stronger probe defeats this node.
			hs.active = false
			if hs.state == node.StateUndecided {
				hs.state = node.StateNonLeader
			}
			if m.Hops < uint32(1)<<m.Phase {
				e.Send(forwardOut, Msg{Kind: KindProbe, ID: m.ID, Phase: m.Phase, Hops: m.Hops + 1})
			} else {
				// Budget exhausted: answer back the way it came.
				e.Send(p, Msg{Kind: KindReply, ID: m.ID, Phase: m.Phase})
			}
		}
	case KindReply:
		if m.ID != hs.id {
			e.Send(forwardOut, m)
			return
		}
		if !hs.active || m.Phase != hs.phase {
			return // stale reply for a phase already resolved
		}
		hs.replies[p] = true
		if hs.replies[0] && hs.replies[1] {
			hs.replies[0], hs.replies[1] = false, false
			hs.phase++
			hs.probeBoth(e)
		}
	case KindAnnounce:
		if m.ID == hs.id {
			return // announcement absorbed by the leader
		}
		hs.state = node.StateNonLeader
		hs.leaderID = m.ID
		hs.decided = true
		hs.sendCW(e, m)
	default:
		hs.fault("baseline: HirschbergSinclair got unexpected %v", m.Kind)
	}
}
