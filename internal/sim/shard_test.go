package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// shardInstance is one algorithm/topology configuration exercised by the
// shard differential, in both machine representations: a pointer-machine
// slice (for the sequential reference and the pointer-mode sharded run)
// and a struct-of-arrays bank (for the flat-mode sharded run).
type shardInstance struct {
	name     string
	topo     func() (ring.Topology, error)
	machines func() ([]node.PulseMachine, error)
	bank     func() (node.FlatPulseMachine, error)
	budget   uint64
}

func shardInstances() []shardInstance {
	return []shardInstance{
		{
			name: "alg1/dup-ids",
			topo: func() (ring.Topology, error) { return ring.Oriented(4) },
			machines: func() ([]node.PulseMachine, error) {
				topo, err := ring.Oriented(4)
				if err != nil {
					return nil, err
				}
				return core.Alg1Machines(topo, []uint64{2, 2, 1, 2})
			},
			bank: func() (node.FlatPulseMachine, error) {
				topo, err := ring.Oriented(4)
				if err != nil {
					return nil, err
				}
				return core.NewFlatAlg1(topo, []uint64{2, 2, 1, 2})
			},
			budget: 4*core.PredictedAlg1Pulses(4, 2) + 1024,
		},
		{
			name: "alg2/oriented",
			topo: func() (ring.Topology, error) { return ring.Oriented(5) },
			machines: func() ([]node.PulseMachine, error) {
				topo, err := ring.Oriented(5)
				if err != nil {
					return nil, err
				}
				return core.Alg2Machines(topo, []uint64{3, 1, 4, 2, 5})
			},
			bank: func() (node.FlatPulseMachine, error) {
				topo, err := ring.Oriented(5)
				if err != nil {
					return nil, err
				}
				return core.NewFlatAlg2(topo, []uint64{3, 1, 4, 2, 5})
			},
			budget: 4*core.PredictedAlg2Pulses(5, 5) + 1024,
		},
		{
			name: "alg3/non-oriented",
			topo: func() (ring.Topology, error) { return ring.NonOriented([]bool{true, false, true}) },
			machines: func() ([]node.PulseMachine, error) {
				return core.Alg3Machines(3, []uint64{2, 1, 3}, core.SchemeSuccessor)
			},
			bank: func() (node.FlatPulseMachine, error) {
				return core.NewFlatAlg3(3, []uint64{2, 1, 3}, core.SchemeSuccessor)
			},
			budget: 4*core.PredictedAlg3Pulses(3, 3, core.SchemeSuccessor) + 1024,
		},
	}
}

// TestShardedMatchesSequentialReference is the shard differential: for
// every stock scheduler family x seed x algorithm x shard count, the
// parallel sharded engine — in both pointer-machine and flat
// struct-of-arrays mode — must produce an event-for-event identical
// trace and a DeepEqual Result against ShardReferenceRun, which executes
// the identical epoch schedule on the sequential engine one handler at a
// time. Agreement proves the arc workers, the provisional-sequence
// renumbering, and the barrier merge change no observable behavior.
func TestShardedMatchesSequentialReference(t *testing.T) {
	var schedNames []string
	for name := range sim.StockSharded(1) {
		schedNames = append(schedNames, name)
	}
	for _, inst := range shardInstances() {
		for _, schedName := range schedNames {
			for _, seed := range []int64{1, 2, 7} {
				for _, shards := range []int{1, 2, 7} {
					name := fmt.Sprintf("%s/%s/seed=%d/shards=%d", inst.name, schedName, seed, shards)
					t.Run(name, func(t *testing.T) {
						mk := sim.StockSharded(seed)[schedName]

						refEv, refRes, refErr := runShardReference(t, inst, mk, shards)
						ptrEv, ptrRes, ptrErr := runSharded(t, inst, mk, shards, false)
						flatEv, flatRes, flatErr := runSharded(t, inst, mk, shards, true)

						compareShardRuns(t, "sharded/pointer", refEv, refRes, refErr, ptrEv, ptrRes, ptrErr)
						compareShardRuns(t, "sharded/flat", refEv, refRes, refErr, flatEv, flatRes, flatErr)
					})
				}
			}
		}
	}
}

func compareShardRuns(t *testing.T, label string,
	refEv []sim.Event, refRes sim.Result, refErr error,
	gotEv []sim.Event, gotRes sim.Result, gotErr error,
) {
	t.Helper()
	if (refErr == nil) != (gotErr == nil) ||
		(refErr != nil && refErr.Error() != gotErr.Error()) {
		t.Fatalf("%s: run errors diverge: reference %v, got %v", label, refErr, gotErr)
	}
	if len(refEv) != len(gotEv) {
		t.Fatalf("%s: trace lengths diverge: reference %d events, got %d", label, len(refEv), len(gotEv))
	}
	for i := range refEv {
		if !reflect.DeepEqual(refEv[i], gotEv[i]) {
			t.Fatalf("%s: event %d diverges:\nreference %+v\ngot       %+v", label, i, refEv[i], gotEv[i])
		}
	}
	if !reflect.DeepEqual(refRes, gotRes) {
		t.Fatalf("%s: results diverge:\nreference %+v\ngot       %+v", label, refRes, gotRes)
	}
}

// runShardReference executes the epoch schedule on the sequential engine.
func runShardReference(t *testing.T, inst shardInstance, mk sim.MkScheduler, shards int,
) ([]sim.Event, sim.Result, error) {
	t.Helper()
	topo, err := inst.topo()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := inst.machines()
	if err != nil {
		t.Fatal(err)
	}
	var events []sim.Event
	// The driving scheduler is irrelevant: ShardReferenceRun picks every
	// delivery itself through the per-arc scheduler instances.
	s, err := sim.New(topo, ms, sim.Canonical{},
		sim.WithObserver[pulse.Pulse](sim.ObserverFunc[pulse.Pulse](
			func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
				cp := *e
				cp.Sends = append([]sim.SendRec(nil), e.Sends...)
				events = append(events, cp)
				return nil
			})))
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := sim.ShardReferenceRun(s, shards, mk, inst.budget)
	return events, res, runErr
}

// runSharded executes the parallel engine in pointer or flat mode.
func runSharded(t *testing.T, inst shardInstance, mk sim.MkScheduler, shards int, flat bool,
) ([]sim.Event, sim.Result, error) {
	t.Helper()
	topo, err := inst.topo()
	if err != nil {
		t.Fatal(err)
	}
	var events []sim.Event
	obs := sim.WithShardObserver[pulse.Pulse](sim.ShardObserverFunc[pulse.Pulse](
		func(e *sim.Event, _ *sim.Sharded[pulse.Pulse]) error {
			cp := *e
			cp.Sends = append([]sim.SendRec(nil), e.Sends...)
			events = append(events, cp)
			return nil
		}))
	var s *sim.Sharded[pulse.Pulse]
	if flat {
		bank, err := inst.bank()
		if err != nil {
			t.Fatal(err)
		}
		s, err = sim.NewShardedFlat(topo, bank, shards, mk, obs)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		ms, err := inst.machines()
		if err != nil {
			t.Fatal(err)
		}
		s, err = sim.NewSharded(topo, ms, shards, mk, obs)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, runErr := s.Run(inst.budget)
	return events, res, runErr
}

// TestShardedOutcomeMatchesPlainRun cross-checks the epoch schedule
// against an ordinary (non-epoch) sequential run under the same
// scheduler family: the delivery ORDER legitimately differs, but
// content-oblivious executions are confluent, so the election outcome
// and the pulse totals must agree.
func TestShardedOutcomeMatchesPlainRun(t *testing.T) {
	for _, inst := range shardInstances() {
		t.Run(inst.name, func(t *testing.T) {
			topo, err := inst.topo()
			if err != nil {
				t.Fatal(err)
			}
			ms, err := inst.machines()
			if err != nil {
				t.Fatal(err)
			}
			plain, err := sim.New(topo, ms, sim.Canonical{})
			if err != nil {
				t.Fatal(err)
			}
			plainRes, err := plain.Run(inst.budget)
			if err != nil {
				t.Fatal(err)
			}
			mk := sim.StockSharded(3)["canonical"]
			ms2, err := inst.machines()
			if err != nil {
				t.Fatal(err)
			}
			sh, err := sim.NewSharded(topo, ms2, 2, mk)
			if err != nil {
				t.Fatal(err)
			}
			shRes, err := sh.Run(inst.budget)
			if err != nil {
				t.Fatal(err)
			}
			if shRes.Leader != plainRes.Leader ||
				!reflect.DeepEqual(shRes.Leaders, plainRes.Leaders) ||
				!reflect.DeepEqual(shRes.Statuses, plainRes.Statuses) ||
				shRes.Sent != plainRes.Sent ||
				shRes.Delivered != plainRes.Delivered ||
				shRes.Quiescent != plainRes.Quiescent {
				t.Fatalf("outcomes diverge:\nplain   %+v\nsharded %+v", plainRes, shRes)
			}
		})
	}
}

// TestShardedSingleUse asserts the one-shot contract.
func TestShardedSingleUse(t *testing.T) {
	topo, err := ring.Oriented(4)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, ring.ConsecutiveIDs(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSharded(topo, ms, 2, sim.StockSharded(1)["canonical"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1 << 20); err == nil {
		t.Fatal("second Run succeeded, want single-use error")
	}
}

// TestShardedConstructorValidation covers the bounds the CLI relies on.
func TestShardedConstructorValidation(t *testing.T) {
	topo, err := ring.Oriented(4)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, ring.ConsecutiveIDs(4))
	if err != nil {
		t.Fatal(err)
	}
	mk := sim.StockSharded(1)["canonical"]
	if _, err := sim.NewSharded(topo, ms, 0, mk); err == nil {
		t.Fatal("shards=0 accepted")
	}
	if _, err := sim.NewSharded(topo, ms, 2, nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := sim.NewSharded(topo, ms[:2], 2, mk); err == nil {
		t.Fatal("machine/node count mismatch accepted")
	}
	// Oversized shard counts clamp to one node per arc.
	s, err := sim.NewSharded(topo, ms, 99, mk)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards() = %d after clamping, want 4", got)
	}
	bank, err := core.NewFlatAlg2(topo, ring.ConsecutiveIDs(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewShardedFlat[pulse.Pulse](topo, nil, 2, mk); err == nil {
		t.Fatal("nil bank accepted")
	}
	if _, err := sim.NewShardedFlat(topo, bank, 2, nil); err == nil {
		t.Fatal("nil factory accepted for flat bank")
	}
}

// TestFlatMatchesPointerMachines is the representation differential on
// the sequential engine: for every stock scheduler, a flat
// struct-of-arrays bank driven through sim.NewFlat must produce an
// event-for-event identical trace and Result to the pointer-machine
// slice it mirrors. (The sharded differential covers flat banks under
// the epoch schedule; this one pins the plain schedule.)
func TestFlatMatchesPointerMachines(t *testing.T) {
	for _, inst := range shardInstances() {
		for schedName := range sim.Stock(1) {
			t.Run(inst.name+"/"+schedName, func(t *testing.T) {
				trace := func(flat bool) ([]sim.Event, sim.Result, error) {
					topo, err := inst.topo()
					if err != nil {
						t.Fatal(err)
					}
					var events []sim.Event
					obs := sim.WithObserver[pulse.Pulse](sim.ObserverFunc[pulse.Pulse](
						func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
							cp := *e
							cp.Sends = append([]sim.SendRec(nil), e.Sends...)
							events = append(events, cp)
							return nil
						}))
					sched := sim.Stock(5)[schedName]
					var s *sim.Sim[pulse.Pulse]
					if flat {
						bank, err := inst.bank()
						if err != nil {
							t.Fatal(err)
						}
						s, err = sim.NewFlat(topo, bank, sched, obs)
						if err != nil {
							t.Fatal(err)
						}
					} else {
						ms, err := inst.machines()
						if err != nil {
							t.Fatal(err)
						}
						s, err = sim.New(topo, ms, sched, obs)
						if err != nil {
							t.Fatal(err)
						}
					}
					res, runErr := s.Run(inst.budget)
					return events, res, runErr
				}
				ptrEv, ptrRes, ptrErr := trace(false)
				flatEv, flatRes, flatErr := trace(true)
				compareShardRuns(t, "flat", ptrEv, ptrRes, ptrErr, flatEv, flatRes, flatErr)
			})
		}
	}
}

// TestShardedFlatAllocs asserts the struct-of-arrays delivery path stays
// allocation-free: a full n=64 Algorithm 2 election (8256 pulses) across
// 4 arcs must fit construction plus the whole run in 2000 allocations,
// which only holds if per-delivery cost is zero (events, per-step
// deliverable slices, or emitter churn would each exceed it by orders of
// magnitude). The bound is looser than the sequential test's only for
// the fixed per-run worker/heap setup.
func TestShardedFlatAllocs(t *testing.T) {
	const n = 64
	run := func() {
		topo, err := ring.Oriented(n)
		if err != nil {
			t.Fatal(err)
		}
		ids := ring.ConsecutiveIDs(n)
		bank, err := core.NewFlatAlg2(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.NewShardedFlat(topo, bank, 4, sim.StockSharded(1)["canonical"])
		if err != nil {
			t.Fatal(err)
		}
		pred := core.PredictedAlg2Pulses(n, ring.MaxID(ids))
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sent != pred {
			t.Fatalf("sent %d pulses, want %d", res.Sent, pred)
		}
	}
	allocs := testing.AllocsPerRun(3, run)
	if allocs > 2000 {
		t.Fatalf("construction + run allocated %.0f objects, want <= 2000 (delivery path must not allocate)", allocs)
	}
}
