package sim

import (
	"fmt"

	"coleader/internal/fault"
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// WithFaultPlane attaches a fault plane: the simulator consults it on every
// send (loss, duplication), after every delivery (spurious injection onto
// the delivered channel, then node crash / restart / corruption of the
// handling node), and after every init. A plane with zero budget never
// fires and the run is identical to a plane-free one, which the
// zero-budget differential test asserts trace-for-trace.
//
// Faulted runs deliberately step outside the Section 2 model, so the
// built-in violation checks double as fault detectors: a lost pulse can
// strand Algorithm 2 in ErrStalled, a spurious one can hit a terminated
// node (ErrPostTerminationSend), and the result may report zero or many
// leaders. Planes are single-use, like simulations.
func WithFaultPlane[M any](p *fault.Plane) Option[M] {
	return func(s *Sim[M]) { s.plane = p }
}

// captureInitialSnapshots records every Undoable machine's pre-Init state
// so Restart injections can reset to it. Called from New once options have
// run (machines have not executed yet).
func (s *Sim[M]) captureInitialSnapshots() {
	s.initSnap = make([][]byte, len(s.machines))
	for k, m := range s.machines {
		if u, ok := any(m).(node.Undoable); ok {
			s.initSnap[k] = u.SnapshotTo(nil)
		}
	}
}

// applyFaults runs the fault hooks owed after delivering channel c's head
// to node k: first the node fault for the handler that just ran, then
// spurious injection accounted to the delivery.
func (s *Sim[M]) applyFaults(c, k int) error {
	if err := s.applyNodeFault(k); err != nil {
		return err
	}
	if s.plane.OnDeliver(s.step, c) == fault.Spurious {
		return s.injectSpurious(c)
	}
	return nil
}

// injectSpurious places one adversarial zero-valued message on channel c.
// Injected messages are wire traffic: they count into Sent and the
// conservation counters, so Quiescent stays truthful about the network.
func (s *Sim[M]) injectSpurious(c int) error {
	k := ChanNode(c)
	if s.termAt[k] != 0 {
		return fmt.Errorf("%w: spurious pulse injected toward terminated node %d",
			ErrPostTerminationSend, k)
	}
	var zero M
	s.enqueue(c, zero, s.chanDir[c])
	return nil
}

// applyNodeFault consults the plane for node k's handler invocation that
// just completed and applies the resulting crash, restart, or corruption.
func (s *Sim[M]) applyNodeFault(k int) error {
	switch s.plane.OnHandler(s.step, k) {
	case fault.Crash:
		// Fail-stop: the node consumes nothing from here on. Its queued
		// and future incoming pulses strand, surfacing as ErrStalled.
		s.crashed[k] = true
		s.refreshChan(chanID(k, pulse.Port0))
		s.refreshChan(chanID(k, pulse.Port1))
	case fault.Restart:
		u, ok := any(s.machines[k]).(node.Undoable)
		if !ok {
			s.plane.SkipLast(k)
			return nil
		}
		u.Restore(s.initSnap[k])
		// A restart revives even a terminated node; its first termination
		// stays recorded in TerminationOrder.
		s.termAt[k] = 0
		return s.rerunInit(k)
	case fault.Corrupt:
		u, ok := any(s.machines[k]).(node.Undoable)
		if !ok {
			s.plane.SkipLast(k)
			return nil
		}
		u.Restore(s.plane.Perturb(k, u.SnapshotTo(nil)))
		// Ready answers may have changed with the state.
		s.refreshChan(chanID(k, pulse.Port0))
		s.refreshChan(chanID(k, pulse.Port1))
	}
	return nil
}

// rerunInit re-executes node k's Init as a fresh handler invocation (the
// restart's wake-up). Unlike InitNode it does not require the node to be
// uninitialized, and it does not consult the plane again for itself.
func (s *Sim[M]) rerunInit(k int) error {
	s.step++
	var ev *Event
	if len(s.obs) > 0 {
		ev = &Event{Kind: EvInit, Step: s.step, Node: k}
	}
	s.em.from = k
	s.machines[k].Init(&s.em)
	if err := s.flushSends(k, ev); err != nil {
		return err
	}
	return s.afterHandler(k, ev)
}
