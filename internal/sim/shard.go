package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// The sharded engine: a parallel simulator for very large rings that is
// provably schedule-equivalent to the sequential one.
//
// The ring is partitioned into contiguous arcs, one worker goroutine
// per arc. Execution proceeds in epochs separated by single-threaded
// barriers. The global send sequence counter — the same per-send total
// order the canonical scheduler and the PR 3/PR 4 determinism proofs
// rest on — defines an epoch boundary: every message whose sequence
// number is at or below the boundary is FROZEN. During an epoch each
// arc delivers only frozen messages on its own channels, picked by its
// own scheduler instance; messages sent during the epoch stay unfrozen
// (invisible to every scheduler) until the next barrier. Intra-arc
// sends enqueue immediately under provisional sequence numbers
// (boundary + arc-local send index); cross-arc sends are buffered. At
// the barrier a single thread renumbers all of the epoch's sends
// arc-major — arc a's j-th send becomes boundary + Σ_{b<a} sends_b + j,
// exactly the numbering a sequential engine produces by executing the
// arcs in index order — applies the buffered border sends, merges the
// event stream, and re-freezes everything.
//
// Determinism and equivalence: the epoch schedule is a function of
// (topology, machines, shard count, scheduler factory) only — workers
// touch disjoint state (an arc owns its nodes' machines, queues, and
// frozen set) and every cross-arc effect happens at the deterministic
// barrier. ShardReferenceRun drives the retained sequential engine
// through the identical epoch schedule; the shard differential tests
// assert byte-identical events and Results between the two for every
// stock scheduler × seed × algorithm × shard count. Runs that violate
// the model (post-termination sends, machine faults) abort
// deterministically on both engines, but the sharded engine detects
// cross-arc violations at the barrier rather than mid-epoch, so the
// partial Result — and in corner cases the error class — of an aborted
// run may differ; violation-free runs, which are all a correct machine
// ever produces and everything the differential suite exercises, are
// byte-identical.

// MkScheduler builds one scheduler instance per arc. Factories must be
// deterministic in the arc index: stateful schedulers (Random,
// RoundRobin) need a fresh instance per arc, and the sequential
// reference uses the same factory so decisions match.
type MkScheduler func(arc int) Scheduler

// StockSharded mirrors Stock for the sharded engine: one factory per
// stock scheduler name. Seeded schedulers fold the arc index into the
// seed so arcs do not mirror each other's randomness.
func StockSharded(seed int64) map[string]MkScheduler {
	arcSeed := func(arc int) int64 { return seed + int64(arc)*1_000_003 }
	return map[string]MkScheduler{
		"canonical":  func(int) Scheduler { return Canonical{} },
		"newest":     func(int) Scheduler { return Newest{} },
		"heaviest":   func(int) Scheduler { return Heaviest{} },
		"random":     func(arc int) Scheduler { return NewRandom(arcSeed(arc)) },
		"roundrobin": func(int) Scheduler { return NewRoundRobin() },
		"ccw-first":  func(int) Scheduler { return DirBiased{Prefer: pulse.CCW} },
		"cw-first":   func(int) Scheduler { return DirBiased{Prefer: pulse.CW} },
		"flaky":      func(arc int) Scheduler { return NewLaggy(arcSeed(arc)) },
		"hashdelay":  func(arc int) Scheduler { return NewHashDelay(arcSeed(arc)) },
	}
}

// ShardObserver receives every simulator event. Events are delivered at
// epoch barriers in merged (arc-major) order — the order the sequential
// reference produces them in — so simulator-wide counters read through
// s are epoch-granular, not event-granular. Returning an error aborts
// the run.
type ShardObserver[M any] interface {
	OnEvent(e *Event, s *Sharded[M]) error
}

// ShardObserverFunc adapts a function to the ShardObserver interface.
type ShardObserverFunc[M any] func(e *Event, s *Sharded[M]) error

// OnEvent implements ShardObserver.
func (f ShardObserverFunc[M]) OnEvent(e *Event, s *Sharded[M]) error { return f(e, s) }

// ShardOption configures a Sharded simulation.
type ShardOption[M any] func(*Sharded[M])

// WithShardObserver attaches an observer; multiple observers run in order.
func WithShardObserver[M any](o ShardObserver[M]) ShardOption[M] {
	return func(s *Sharded[M]) { s.obs = append(s.obs, o) }
}

// Sharded is a single-use parallel simulation of one ring execution.
// Create with NewSharded or NewShardedFlat, then call Run once.
type Sharded[M any] struct {
	topo   ring.Topology
	bounds []int // arc a owns nodes [bounds[a], bounds[a+1])

	// The machine bank, as in Sim: exactly one of machines and flat is
	// non-nil. Arcs only run handlers of their own nodes, so a flat
	// bank's slices are accessed at disjoint indices across workers.
	machines []node.Machine[M]
	flat     node.FlatMachine[M]
	obs      []ShardObserver[M]

	queues     []fifo[M] // per channel; only the owner arc touches a queue mid-epoch
	inited     []bool
	terminated []bool
	ordTerm    []int

	chanDir []pulse.Direction
	outDir  []pulse.Direction
	peerCh  []int // channel id reached by sends out of (node, port)

	arcs []shardArc[M]

	// Global totals; written only by the coordinator at barriers.
	seq, step uint64
	sent      uint64
	delivered uint64
	sentCW    uint64
	sentCCW   uint64
	failed    error

	// Batch fast path (WithShardBatching; pulse machines only), resolved
	// exactly as on Sim: one of bms and fbm is non-nil when batch is set.
	// runs/coalesced fold the arcs' per-epoch counters at barriers.
	batch     bool
	bms       []node.BatchMachine
	fbm       node.FlatBatchMachine
	runs      uint64
	coalesced uint64

	sendOff []uint64 // scratch: per-arc send prefix of the current barrier
	stepOff []uint64 // scratch: per-arc step prefix of the current barrier

	ran       bool
	initEpoch bool
	starts    []chan struct{}
	wg        sync.WaitGroup

	// Progress counters for concurrent readers (cmd/ringsim's progress
	// reporter polls them from another goroutine); everything else on
	// this struct is coordinator-private.
	progDelivered atomic.Uint64
	progSent      atomic.Uint64
	progEpoch     atomic.Uint64
	progRuns      atomic.Uint64
	progCoalesced atomic.Uint64
}

// borderSend is one cross-arc send — on the batch path, one cross-arc
// run of cnt pulses — buffered until the barrier.
type borderSend[M any] struct {
	idx  uint64 // 1-based send index of the (first) pulse within the arc's epoch
	cnt  uint64 // pulses in the run (1 on the non-batched path)
	ch   int32  // destination channel
	from int32  // sending node (for the post-termination error message)
	dir  pulse.Direction
	msg  M
}

// shardArc is one worker's share of the ring: nodes [lo, hi) and their
// 2(hi-lo) incoming channels. All fields are owned by the worker during
// an epoch and by the coordinator during a barrier.
type shardArc[M any] struct {
	s   *Sharded[M]
	idx int
	lo  int
	hi  int

	sched Scheduler
	view  arcView[M]
	em    arcEmitter[M]

	// frozen is the arc-local deliverable set: bit (c - 2*lo) is set iff
	// owned channel c's head is frozen (seq <= boundary) and its
	// receiver is initialized, unterminated, and Ready. heap/mark are
	// the arc's lazy oldest-frozen min-heap, exactly like Sim.oldest.
	frozen      bitset
	frozenCount int
	heap        []heapEntry
	mark        []uint64

	boundary   uint64 // global seq at the last barrier
	stepBase   uint64 // global step at the last barrier
	localSteps uint64 // handler invocations this epoch
	sendIdx    uint64 // sends this epoch (provisional seq = boundary + sendIdx)

	border   []borderSend[M]
	dirty    []int32  // owned channels that gained enqueues this epoch
	dirtyAt  []uint32 // per owned channel: epochTag when last marked dirty
	epochTag uint32

	events []Event // this epoch's events (only when observers attached)
	terms  []int   // nodes that terminated this epoch, in local order

	runEm runEmitter // batch path: the arc's reusable counted-run emitter

	sentE      uint64
	sentCWE    uint64
	sentCCWE   uint64
	deliverE   uint64
	runsE      uint64 // batch transitions this epoch
	coalescedE uint64 // of those, multi-pulse transitions

	err error // first failure in this arc's epoch
}

type arcEmitter[M any] struct{ buf []pendingSend[M] }

// Send implements node.Emitter.
func (e *arcEmitter[M]) Send(p pulse.Port, m M) {
	if !p.Valid() {
		panic(fmt.Sprintf("sim: send on invalid port %d", p))
	}
	e.buf = append(e.buf, pendingSend[M]{port: p, msg: m})
}

// arcView is the scheduler's window into one arc during an epoch: the
// frozen deliverable set of the arc's own channels. QueueLen counts
// frozen messages only — sends of the running epoch are invisible to
// every scheduler on both engines, which is what makes the cross-arc
// merge order-independent. Step is stepBase + the arc's own handler
// count this epoch (global step numbers are not known until the
// barrier; no stock scheduler consults Step).
type arcView[M any] struct {
	a       *shardArc[M]
	scratch []int
}

func (v *arcView[M]) Deliverable() []int {
	v.scratch = v.a.frozen.appendIntoOff(v.scratch[:0], 2*v.a.lo)
	return v.scratch
}
func (v *arcView[M]) HeadSeq(c int) uint64 { return v.a.s.queues[c].front().seq }
func (v *arcView[M]) QueueLen(c int) int {
	if v.a.s.batch {
		// Entries are counted runs: the frozen pulse total is the
		// scheduler-visible length, matching Sim.QueueLen's pulse count.
		return int(frozenPulses(&v.a.s.queues[c], v.a.boundary))
	}
	return frozenLen(&v.a.s.queues[c], v.a.boundary)
}
func (v *arcView[M]) Direction(c int) pulse.Direction {
	return v.a.s.chanDir[c]
}
func (v *arcView[M]) Step() uint64 { return v.a.stepBase + v.a.localSteps }

// OldestDeliverable implements OldestView over the arc's frozen heap;
// sequence numbers are unique, so the answer equals the min-HeadSeq
// scan the sequential reference's arc view falls back to.
func (v *arcView[M]) OldestDeliverable() (int, bool) { return v.a.oldestFrozen() }

// appendIntoOff is bitset.appendInto with every index shifted by off:
// arc-local bit i corresponds to global channel off + i.
func (b bitset) appendIntoOff(dst []int, off int) []int {
	for wi, w := range b {
		base := wi<<6 + off
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// newSharded builds the common core; the caller attaches the bank.
func newSharded[M any](t ring.Topology, shards int, mk MkScheduler) (*Sharded[M], error) {
	if mk == nil {
		return nil, errors.New("sim: nil scheduler factory")
	}
	n := t.N()
	if shards < 1 {
		return nil, fmt.Errorf("sim: shard count %d must be at least 1", shards)
	}
	if shards > n {
		shards = n // every arc holds at least one node
	}
	s := &Sharded[M]{
		topo:       t,
		queues:     make([]fifo[M], 2*n),
		inited:     make([]bool, n),
		terminated: make([]bool, n),
		chanDir:    make([]pulse.Direction, 2*n),
		outDir:     make([]pulse.Direction, 2*n),
		peerCh:     make([]int, 2*n),
		sendOff:    make([]uint64, shards),
		stepOff:    make([]uint64, shards),
	}
	for k := 0; k < n; k++ {
		for _, p := range []pulse.Port{pulse.Port0, pulse.Port1} {
			c := chanID(k, p)
			s.chanDir[c] = t.ArrivalDirection(k, p)
			s.outDir[c] = t.DirectionOf(k, p)
			peer := t.Peer(k, p)
			s.peerCh[c] = chanID(peer.Node, peer.Port)
		}
	}
	s.bounds = make([]int, shards+1)
	for a := 0; a <= shards; a++ {
		s.bounds[a] = a * n / shards
	}
	s.arcs = make([]shardArc[M], shards)
	for i := range s.arcs {
		a := &s.arcs[i]
		a.s, a.idx, a.lo, a.hi = s, i, s.bounds[i], s.bounds[i+1]
		a.sched = mk(i)
		if a.sched == nil {
			return nil, fmt.Errorf("sim: scheduler factory returned nil for arc %d", i)
		}
		nc := 2 * (a.hi - a.lo)
		a.frozen = make(bitset, (nc+63)/64)
		a.mark = make([]uint64, nc)
		a.dirtyAt = make([]uint32, nc)
		a.epochTag = 1
		a.view.a = a
	}
	return s, nil
}

// NewSharded builds a sharded simulation of machines on topology t,
// partitioned into the given number of contiguous arcs (clamped to one
// node per arc minimum). mk supplies each arc's scheduler instance.
func NewSharded[M any](t ring.Topology, machines []node.Machine[M], shards int, mk MkScheduler, opts ...ShardOption[M]) (*Sharded[M], error) {
	if len(machines) != t.N() {
		return nil, fmt.Errorf("sim: %d machines for %d nodes", len(machines), t.N())
	}
	s, err := newSharded[M](t, shards, mk)
	if err != nil {
		return nil, err
	}
	s.machines = machines
	for _, o := range opts {
		o(s)
	}
	if err := s.setupShardBatch(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewShardedFlat builds a sharded simulation over a struct-of-arrays
// FlatMachine bank: the configuration that elects over 10⁶–10⁷-node
// rings in a few GB. Arcs touch disjoint slot indices, so the bank
// needs no synchronization.
func NewShardedFlat[M any](t ring.Topology, bank node.FlatMachine[M], shards int, mk MkScheduler, opts ...ShardOption[M]) (*Sharded[M], error) {
	if bank == nil {
		return nil, errors.New("sim: nil machine bank")
	}
	if bank.Len() != t.N() {
		return nil, fmt.Errorf("sim: bank of %d slots for %d nodes", bank.Len(), t.N())
	}
	s, err := newSharded[M](t, shards, mk)
	if err != nil {
		return nil, err
	}
	s.flat = bank
	for _, o := range opts {
		o(s)
	}
	if err := s.setupShardBatch(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Sharded[M]) mInit(k int, e node.Emitter[M]) {
	if s.flat != nil {
		s.flat.Init(k, e)
		return
	}
	s.machines[k].Init(e)
}

func (s *Sharded[M]) mOnMsg(k int, p pulse.Port, m M, e node.Emitter[M]) {
	if s.flat != nil {
		s.flat.OnMsg(k, p, m, e)
		return
	}
	s.machines[k].OnMsg(p, m, e)
}

func (s *Sharded[M]) mReady(k int, p pulse.Port) bool {
	if s.flat != nil {
		return s.flat.Ready(k, p)
	}
	return s.machines[k].Ready(p)
}

func (s *Sharded[M]) mStatus(k int) node.Status {
	if s.flat != nil {
		return s.flat.Status(k)
	}
	return s.machines[k].Status()
}

// Shards returns the effective arc count (after clamping to N).
func (s *Sharded[M]) Shards() int { return len(s.arcs) }

// Topology returns the simulated ring.
func (s *Sharded[M]) Topology() ring.Topology { return s.topo }

// Machine returns node k's machine for introspection, as Sim.Machine.
func (s *Sharded[M]) Machine(k int) node.Machine[M] {
	if s.flat != nil {
		return node.Slot[M]{Bank: s.flat, K: k}
	}
	return s.machines[k]
}

// InFlight returns the number of queued (sent but undelivered) messages.
func (s *Sharded[M]) InFlight() uint64 { return s.sent - s.delivered }

// Quiescent reports that every node has initialized and no message is
// queued anywhere. Accurate at barriers (where Run's checks run).
func (s *Sharded[M]) Quiescent() bool {
	for _, in := range s.inited {
		if !in {
			return false
		}
	}
	return s.InFlight() == 0
}

// Progress returns the running totals of delivered and sent messages
// and completed epochs. Unlike every other accessor it is safe to call
// from another goroutine while Run executes; totals update once per
// epoch barrier.
func (s *Sharded[M]) Progress() (delivered, sent, epochs uint64) {
	return s.progDelivered.Load(), s.progSent.Load(), s.progEpoch.Load()
}

func (s *Sharded[M]) allTerminated() bool {
	for _, t := range s.terminated {
		if !t {
			return false
		}
	}
	return true
}

func (s *Sharded[M]) frozenTotal() int {
	total := 0
	for i := range s.arcs {
		total += s.arcs[i].frozenCount
	}
	return total
}

// arcOf returns the index of the arc owning node k.
func (s *Sharded[M]) arcOf(k int) int {
	return sort.Search(len(s.arcs), func(i int) bool { return s.bounds[i+1] > k })
}

func (s *Sharded[M]) failf(format string, args ...any) error {
	err := fmt.Errorf(format, args...)
	if s.failed == nil {
		s.failed = err
	}
	return err
}

// Result snapshots the current outcome, field-for-field like Sim.Result.
func (s *Sharded[M]) Result() Result {
	n := s.topo.N()
	r := Result{
		N:             n,
		Steps:         s.step,
		Sent:          s.sent,
		Delivered:     s.delivered,
		SentCW:        s.sentCW,
		SentCCW:       s.sentCCW,
		Quiescent:     s.Quiescent(),
		AllTerminated: s.allTerminated(),
		Leader:        -1,
		Statuses:      make([]node.Status, n),
	}
	r.TerminationOrder = append(r.TerminationOrder, s.ordTerm...)
	for k := 0; k < n; k++ {
		st := s.mStatus(k)
		r.Statuses[k] = st
		if st.State == node.StateLeader {
			r.Leaders = append(r.Leaders, k)
		}
	}
	if len(r.Leaders) == 1 {
		r.Leader = r.Leaders[0]
	}
	return r
}

// Run initializes every node (epoch 0: each arc inits its nodes in
// index order, matching the sequential engine's wake-up order) and then
// runs delivery epochs until quiescence. limit bounds the total number
// of handler invocations, checked at epoch granularity with the same
// errors RunDeliveries reports. Run may be called once.
func (s *Sharded[M]) Run(limit uint64) (Result, error) {
	if s.ran {
		return s.Result(), errors.New("sim: sharded simulations are single-use")
	}
	s.ran = true
	stop := s.startWorkers()
	defer stop()

	s.initEpoch = true
	s.runEpoch()
	if err := s.barrier(); err != nil {
		return s.Result(), err
	}
	s.initEpoch = false

	for {
		if s.step >= limit {
			return s.Result(), s.failf("%w (%d)", ErrStepLimit, limit)
		}
		// At a barrier every queued message is frozen, so the frozen
		// total IS the deliverable count; zero with messages in flight
		// is the same permanent stall RunDeliveries detects.
		if s.frozenTotal() == 0 {
			if s.InFlight() == 0 {
				return s.Result(), nil
			}
			if s.allTerminated() {
				return s.Result(), s.failf("%w: %d in flight after all nodes terminated",
					ErrTerminatedNonEmpty, s.InFlight())
			}
			return s.Result(), s.failf("%w: %d in flight", ErrStalled, s.InFlight())
		}
		s.runEpoch()
		if err := s.barrier(); err != nil {
			return s.Result(), err
		}
	}
}

// startWorkers launches one goroutine per arc. Workers idle on their
// start channel between epochs and exit when it closes (the returned
// stop function), so no goroutine outlives Run.
func (s *Sharded[M]) startWorkers() (stop func()) {
	s.starts = make([]chan struct{}, len(s.arcs))
	for i := range s.starts {
		s.starts[i] = make(chan struct{}, 1)
	}
	for i := range s.arcs {
		a := &s.arcs[i]
		ch := s.starts[i]
		go func() {
			for range ch {
				if s.initEpoch {
					a.runInits()
				} else {
					a.runDeliveries()
				}
				s.wg.Done()
			}
		}()
	}
	return func() {
		for _, ch := range s.starts {
			close(ch)
		}
	}
}

// inlineEpochThreshold is the frozen-set size below which dispatching
// workers costs more than the epoch's deliveries: thin epochs (the
// wavefront tail of a stabilizing run) execute inline instead. Arcs
// touch disjoint state, so running them on the coordinator in index
// order is the identical computation — only the parallelism changes.
const inlineEpochThreshold = 256

// runEpoch executes one epoch: every arc drains its frozen set, in
// parallel through the worker pool for bulky epochs or inline for thin
// ones. In the parallel case the channel send happens-before the
// worker's epoch and wg.Done happens-before Wait returns, so the
// coordinator's barrier reads and writes never race with workers.
func (s *Sharded[M]) runEpoch() {
	if !s.initEpoch && s.frozenTotal() < inlineEpochThreshold {
		for i := range s.arcs {
			s.arcs[i].runDeliveries()
		}
		return
	}
	s.wg.Add(len(s.arcs))
	for _, ch := range s.starts {
		ch <- struct{}{}
	}
	s.wg.Wait()
}

// runInits is an arc's epoch 0: wake the arc's nodes in index order.
func (a *shardArc[M]) runInits() {
	for k := a.lo; k < a.hi && a.err == nil; k++ {
		a.initNode(k)
	}
}

func (a *shardArc[M]) initNode(k int) {
	s := a.s
	s.inited[k] = true
	a.localSteps++
	var ev *Event
	if len(s.obs) > 0 {
		a.events = append(a.events, Event{Kind: EvInit, Node: k})
		ev = &a.events[len(a.events)-1]
	}
	s.mInit(k, &a.em)
	if err := a.flushSends(k, ev); err != nil {
		a.err = err
		return
	}
	a.afterHandler(k, ev)
}

// runDeliveries is an arc's delivery epoch: drain the frozen set under
// the arc's scheduler. The frozen set only shrinks net-net (deliveries
// consume frozen messages; new sends stay unfrozen until the barrier),
// so the epoch always terminates.
func (a *shardArc[M]) runDeliveries() {
	for a.err == nil && a.frozenCount > 0 {
		c := a.sched.Next(&a.view)
		if c < 2*a.lo || c >= 2*a.hi || !a.frozen.get(c-2*a.lo) {
			a.err = fmt.Errorf("sim: scheduler picked channel %d outside the frozen deliverable set", c)
			return
		}
		if a.s.batch {
			a.deliverRun(c)
			continue
		}
		a.deliver(c)
	}
}

func (a *shardArc[M]) deliver(c int) {
	s := a.s
	k, p := ChanNode(c), ChanPort(c)
	head := s.queues[c].pop()
	a.deliverE++
	a.localSteps++
	var ev *Event
	if len(s.obs) > 0 {
		a.events = append(a.events, Event{Kind: EvDeliver, Node: k, Port: p, Dir: s.chanDir[c]})
		ev = &a.events[len(a.events)-1]
	}
	s.mOnMsg(k, p, head.msg, &a.em)
	if err := a.flushSends(k, ev); err != nil {
		a.err = err
		return
	}
	a.afterHandler(k, ev)
}

// flushSends mirrors Sim.flushSends: clockwise sends first (Definition
// 21's tie-break), each send numbered by the arc's running send index.
// Intra-arc sends enqueue immediately under their provisional sequence
// number; cross-arc sends are buffered for the barrier.
func (a *shardArc[M]) flushSends(from int, ev *Event) error {
	s := a.s
	buf := a.em.buf
	for pass := 0; pass < 2; pass++ {
		want := pulse.CW
		if pass == 1 {
			want = pulse.CCW
		}
		for _, ps := range buf {
			out := chanID(from, ps.port)
			if s.outDir[out] != want {
				continue
			}
			c := s.peerCh[out]
			to := ChanNode(c)
			a.sendIdx++
			if to >= a.lo && to < a.hi {
				if s.terminated[to] {
					return fmt.Errorf("%w: node %d sent %s toward node %d",
						ErrPostTerminationSend, from, want, to)
				}
				s.queues[c].push(entry[M]{seq: a.boundary + a.sendIdx, cnt: 1, msg: ps.msg})
				a.markDirty(c)
			} else {
				a.border = append(a.border, borderSend[M]{
					idx: a.sendIdx, cnt: 1, ch: int32(c), from: int32(from), dir: want, msg: ps.msg,
				})
			}
			a.sentE++
			if want == pulse.CW {
				a.sentCWE++
			} else {
				a.sentCCWE++
			}
			if ev != nil {
				ev.Sends = append(ev.Sends, SendRec{
					From: from, Port: ps.port, Dir: want,
					To: ring.Endpoint{Node: to, Port: ChanPort(c)},
				})
			}
		}
	}
	a.em.buf = a.em.buf[:0]
	return nil
}

// afterHandler mirrors Sim.afterHandler for one arc: status checks,
// termination bookkeeping, and the Ready-transition refresh of the
// acting node's two channels. Cross-arc checks (border sends toward
// terminated nodes) wait for the barrier.
func (a *shardArc[M]) afterHandler(k int, ev *Event) {
	_ = ev
	s := a.s
	st := s.mStatus(k)
	if st.Err != nil {
		a.err = fmt.Errorf("%w: node %d: %v", ErrMachineFault, k, st.Err)
		return
	}
	if st.Terminated && !s.terminated[k] {
		s.terminated[k] = true
		a.terms = append(a.terms, k)
		if s.queues[chanID(k, pulse.Port0)].n != 0 || s.queues[chanID(k, pulse.Port1)].n != 0 {
			a.err = fmt.Errorf("%w: node %d", ErrTerminatedNonEmpty, k)
			return
		}
	}
	a.refreshFrozen(chanID(k, pulse.Port0))
	a.refreshFrozen(chanID(k, pulse.Port1))
}

// refreshFrozen recomputes owned channel c's bit in the frozen set: the
// head must exist, be frozen (seq <= boundary), and have an
// initialized, unterminated, Ready receiver — refreshChan's condition
// plus the freeze test.
func (a *shardArc[M]) refreshFrozen(c int) {
	s := a.s
	k := ChanNode(c)
	lc := c - 2*a.lo
	was := a.frozen.get(lc)
	q := &s.queues[c]
	if q.n > 0 && q.front().seq <= a.boundary && s.inited[k] && !s.terminated[k] && s.mReady(k, ChanPort(c)) {
		if !was {
			a.frozen.set(lc)
			a.frozenCount++
		}
		a.heapPush(c, q.front().seq)
	} else if was {
		a.frozen.clear(lc)
		a.frozenCount--
	}
}

func (a *shardArc[M]) markDirty(c int) {
	lc := c - 2*a.lo
	if a.dirtyAt[lc] == a.epochTag {
		return
	}
	a.dirtyAt[lc] = a.epochTag
	a.dirty = append(a.dirty, int32(c))
}

// heapPush / heapDrop / oldestFrozen: the arc-local twin of the
// simulator's lazy oldest-message heap, over frozen channels only.
func (a *shardArc[M]) heapPush(c int, seq uint64) {
	lc := c - 2*a.lo
	if a.mark[lc] == seq {
		return
	}
	a.mark[lc] = seq
	h := append(a.heap, heapEntry{seq: seq, c: c})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].seq <= h[i].seq {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	a.heap = h
}

func (a *shardArc[M]) heapDrop() {
	h := a.heap
	top := h[0]
	if a.mark[top.c-2*a.lo] == top.seq {
		a.mark[top.c-2*a.lo] = 0
	}
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].seq < h[small].seq {
			small = l
		}
		if r < len(h) && h[r].seq < h[small].seq {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	a.heap = h
}

func (a *shardArc[M]) oldestFrozen() (int, bool) {
	for len(a.heap) > 0 {
		top := a.heap[0]
		if a.frozen.get(top.c-2*a.lo) && a.s.queues[top.c].front().seq == top.seq {
			return top.c, true
		}
		a.heapDrop()
	}
	return 0, false
}

// barrier is the single-threaded epoch merge: renumber the epoch's
// sends arc-major onto the global sequence order, apply border sends,
// emit the merged event stream, fold counters, and re-freeze. Runs
// strictly after wg.Wait, so it owns all arc state.
func (s *Sharded[M]) barrier() error {
	boundary := s.seq
	var totSends, totSteps, totDeliv uint64
	for i := range s.arcs {
		a := &s.arcs[i]
		s.sendOff[i] = totSends
		s.stepOff[i] = totSteps
		totSends += a.sendIdx
		totSteps += a.localSteps
		totDeliv += a.deliverE
	}

	// Renumber intra-arc enqueues from provisional (boundary + local
	// index) to final (+ arc-major prefix). The unfrozen entries of a
	// dirty queue form its suffix, located by the same binary search
	// the views use.
	for i := range s.arcs {
		a := &s.arcs[i]
		off := s.sendOff[i]
		if off == 0 {
			continue // arc 0's provisional numbers are already final
		}
		for _, c := range a.dirty {
			q := &s.queues[c]
			for j := frozenLen(q, boundary); j < q.n; j++ {
				q.at(j).seq += off
			}
		}
	}

	// Apply border sends arc-major. Each channel has exactly one
	// sending node, so a border channel receives entries from exactly
	// one arc, in ascending index order: FIFO is preserved without any
	// cross-arc interleaving. A send toward a node that terminated this
	// epoch is the violation Sim.flushSends catches at flush time;
	// detect it here, deterministically, and stop applying.
	var borderErr error
	borderErrArc := len(s.arcs)
borderLoop:
	for i := range s.arcs {
		a := &s.arcs[i]
		off := s.sendOff[i]
		for _, b := range a.border {
			to := ChanNode(int(b.ch))
			if s.terminated[to] {
				borderErr = fmt.Errorf("%w: node %d sent %s toward node %d",
					ErrPostTerminationSend, b.from, b.dir, to)
				borderErrArc = i
				break borderLoop
			}
			s.queues[b.ch].push(entry[M]{seq: boundary + off + b.idx, cnt: b.cnt, msg: b.msg})
		}
	}

	// Merged event stream: events take consecutive global step numbers
	// starting at step + stepPrefix[a] + 1, each advancing by the pulses
	// its transition consumed (Count, or 1) — the numbering the expanded
	// sequential execution assigns. Without batching every Count is zero
	// and this is step + stepPrefix[a] + i + 1 as before.
	if len(s.obs) > 0 {
		for i := range s.arcs {
			a := &s.arcs[i]
			base := s.step + s.stepOff[i]
			var stepAcc uint64
			for j := range a.events {
				ev := &a.events[j]
				ev.Step = base + stepAcc + 1
				if ev.Count > 1 {
					stepAcc += ev.Count
				} else {
					stepAcc++
				}
				for _, o := range s.obs {
					if err := o.OnEvent(ev, s); err != nil {
						err = fmt.Errorf("sim: observer: %w", err)
						s.failed = err
						return err
					}
				}
			}
		}
	}

	// Fold counters and terminations; collect the first error in
	// arc-major order (a border violation outranks the sending arc's
	// own later error).
	var firstErr error
	firstErrArc := len(s.arcs)
	for i := range s.arcs {
		a := &s.arcs[i]
		s.sent += a.sentE
		s.sentCW += a.sentCWE
		s.sentCCW += a.sentCCWE
		s.delivered += a.deliverE
		s.runs += a.runsE
		s.coalesced += a.coalescedE
		s.ordTerm = append(s.ordTerm, a.terms...)
		if firstErr == nil && a.err != nil {
			firstErr = a.err
			firstErrArc = i
		}
	}
	if borderErr != nil && borderErrArc <= firstErrArc {
		firstErr = borderErr
	}
	s.seq += totSends
	s.step += totSteps
	s.progDelivered.Add(totDeliv)
	s.progSent.Add(totSends)
	s.progEpoch.Add(1)
	s.progRuns.Store(s.runs)
	s.progCoalesced.Store(s.coalesced)

	// Advance every arc to the new boundary, then re-freeze the
	// channels whose queues changed: this epoch's enqueue targets and
	// border destinations. Everything else kept its bit current through
	// the mid-epoch refreshes.
	for i := range s.arcs {
		a := &s.arcs[i]
		a.boundary = s.seq
		a.stepBase = s.step
		a.localSteps = 0
		a.sendIdx = 0
		a.sentE, a.sentCWE, a.sentCCWE, a.deliverE = 0, 0, 0, 0
		a.runsE, a.coalescedE = 0, 0
		a.terms = a.terms[:0]
		a.events = a.events[:0]
	}
	for i := range s.arcs {
		a := &s.arcs[i]
		for _, c := range a.dirty {
			a.refreshFrozen(int(c))
		}
		a.dirty = a.dirty[:0]
		a.epochTag++
		for _, b := range a.border {
			t := &s.arcs[s.arcOf(ChanNode(int(b.ch)))]
			t.refreshFrozen(int(b.ch))
		}
		a.border = a.border[:0]
	}

	if firstErr != nil {
		s.failed = firstErr
		return firstErr
	}
	return nil
}
