package sim_test

import (
	"errors"
	"fmt"
	"testing"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// probe is a scriptable test machine: its behavior is driven by small
// callback hooks so individual simulator features can be exercised in
// isolation.
type probe struct {
	onInit  func(e node.PulseEmitter)
	onMsg   func(p pulse.Port, e node.PulseEmitter)
	ready   func(p pulse.Port) bool
	status  node.Status
	arrived []pulse.Port
}

func (pr *probe) Init(e node.PulseEmitter) {
	if pr.onInit != nil {
		pr.onInit(e)
	}
}

func (pr *probe) OnMsg(p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	pr.arrived = append(pr.arrived, p)
	if pr.onMsg != nil {
		pr.onMsg(p, e)
	}
}

func (pr *probe) Ready(p pulse.Port) bool {
	if pr.ready != nil {
		return pr.ready(p)
	}
	return !pr.status.Terminated
}

func (pr *probe) Status() node.Status { return pr.status }

func mustTopo(t *testing.T, n int) ring.Topology {
	t.Helper()
	topo, err := ring.Oriented(n)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewValidation(t *testing.T) {
	topo := mustTopo(t, 2)
	if _, err := sim.New[pulse.Pulse](topo, nil, sim.Canonical{}); err == nil {
		t.Error("mismatched machine count accepted")
	}
	if _, err := sim.New(topo, []node.PulseMachine{&probe{}, &probe{}}, nil); err == nil {
		t.Error("nil scheduler accepted")
	}
}

// TestQuiescenceEmptyRun: machines that send nothing quiesce immediately.
func TestQuiescenceEmptyRun(t *testing.T) {
	topo := mustTopo(t, 3)
	ms := []node.PulseMachine{&probe{}, &probe{}, &probe{}}
	s, err := sim.New(topo, ms, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiescent || res.Sent != 0 || res.Steps != 3 {
		t.Errorf("res = %+v", res)
	}
}

// TestPingAround: one pulse forwarded clockwise by everyone except the
// origin, which absorbs it: n deliveries, then quiescence.
func TestPingAround(t *testing.T) {
	const n = 5
	topo := mustTopo(t, n)
	ms := make([]node.PulseMachine, n)
	for k := 0; k < n; k++ {
		k := k
		pr := &probe{}
		if k == 0 {
			pr.onInit = func(e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }
		} else {
			pr.onMsg = func(p pulse.Port, e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }
		}
		ms[k] = pr
	}
	s, err := sim.New(topo, ms, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != n || res.Delivered != n || !res.Quiescent {
		t.Errorf("sent=%d delivered=%d quiescent=%t, want %d/%d/true",
			res.Sent, res.Delivered, res.Quiescent, n, n)
	}
	if res.SentCW != n || res.SentCCW != 0 {
		t.Errorf("direction split (%d,%d), want (%d,0)", res.SentCW, res.SentCCW, n)
	}
}

// TestReadyGating: a pulse destined for a non-ready port stays queued; the
// run stalls (error) because nothing can ever be delivered.
func TestReadyGating(t *testing.T) {
	topo := mustTopo(t, 2)
	sender := &probe{onInit: func(e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }}
	blocked := &probe{ready: func(pulse.Port) bool { return false }}
	s, err := sim.New(topo, []node.PulseMachine{sender, blocked}, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(100)
	if !errors.Is(err, sim.ErrStalled) {
		t.Errorf("err = %v, want ErrStalled", err)
	}
	if len(blocked.arrived) != 0 {
		t.Error("pulse was delivered to a non-ready port")
	}
}

// TestTerminatedNonEmptyDetected: a node terminating while another pulse is
// still queued for it violates quiescent termination and aborts the run.
func TestTerminatedNonEmptyDetected(t *testing.T) {
	topo := mustTopo(t, 2)
	// Node 0 sends two clockwise pulses at init; node 1 terminates on the
	// first delivery while the second is still queued.
	doubleSender := &probe{onInit: func(e node.PulseEmitter) {
		e.Send(pulse.Port1, pulse.Pulse{})
		e.Send(pulse.Port1, pulse.Pulse{})
	}}
	relay := &probe{}
	relay.onMsg = func(p pulse.Port, e node.PulseEmitter) {
		relay.status.Terminated = true
	}
	s, err := sim.New(topo, []node.PulseMachine{doubleSender, relay}, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(100)
	if !errors.Is(err, sim.ErrTerminatedNonEmpty) {
		t.Errorf("err = %v, want ErrTerminatedNonEmpty", err)
	}
}

// TestSendToTerminatedNode: a send emitted after the target has terminated
// is caught at flush time.
func TestSendToTerminatedNode(t *testing.T) {
	topo := mustTopo(t, 2)
	// Node 1 terminates at init. Node 0 sends at init (after node 1 in
	// init order, so the violation is caught at node 0's flush).
	lateSender := &probe{onInit: func(e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }}
	earlyTerm := &probe{}
	earlyTerm.onInit = func(e node.PulseEmitter) { earlyTerm.status.Terminated = true }
	s, err := sim.New(topo, []node.PulseMachine{lateSender, earlyTerm}, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InitNode(1); err != nil {
		t.Fatal(err)
	}
	err = s.InitNode(0)
	if !errors.Is(err, sim.ErrPostTerminationSend) {
		t.Errorf("err = %v, want ErrPostTerminationSend", err)
	}
}

// TestMachineFaultAborts: a machine reporting Status().Err aborts the run.
func TestMachineFaultAborts(t *testing.T) {
	topo := mustTopo(t, 2)
	faulty := &probe{}
	faulty.onInit = func(e node.PulseEmitter) { faulty.status.Err = errors.New("boom") }
	s, err := sim.New(topo, []node.PulseMachine{faulty, &probe{}}, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(10)
	if !errors.Is(err, sim.ErrMachineFault) {
		t.Errorf("err = %v, want ErrMachineFault", err)
	}
}

// TestStepLimit: a two-node pulse ping-pong never quiesces; the limit trips.
func TestStepLimit(t *testing.T) {
	topo := mustTopo(t, 2)
	mk := func() *probe {
		pr := &probe{}
		pr.onInit = func(e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }
		pr.onMsg = func(p pulse.Port, e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }
		return pr
	}
	s, err := sim.New(topo, []node.PulseMachine{mk(), mk()}, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(50)
	if !errors.Is(err, sim.ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

// TestObserverSeesEvents: observers receive one event per init and
// delivery, with send records attached.
func TestObserverSeesEvents(t *testing.T) {
	topo := mustTopo(t, 2)
	a := &probe{onInit: func(e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }}
	b := &probe{}
	var events []sim.Event
	obs := sim.ObserverFunc[pulse.Pulse](func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
		cp := *e
		events = append(events, cp)
		return nil
	})
	s, err := sim.New(topo, []node.PulseMachine{a, b}, sim.Canonical{}, sim.WithObserver[pulse.Pulse](obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 { // 2 inits + 1 delivery
		t.Fatalf("saw %d events, want 3: %+v", len(events), events)
	}
	if events[0].Kind != sim.EvInit || len(events[0].Sends) != 1 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[2].Kind != sim.EvDeliver || events[2].Node != 1 || events[2].Dir != pulse.CW {
		t.Errorf("event 2 = %+v", events[2])
	}
}

// TestObserverErrorAborts: observer errors abort the run.
func TestObserverErrorAborts(t *testing.T) {
	topo := mustTopo(t, 1)
	obs := sim.ObserverFunc[pulse.Pulse](func(*sim.Event, *sim.Sim[pulse.Pulse]) error {
		return errors.New("observer says no")
	})
	s, err := sim.New(topo, []node.PulseMachine{&probe{}}, sim.Canonical{}, sim.WithObserver[pulse.Pulse](obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10); err == nil {
		t.Error("observer error did not abort run")
	}
}

// TestManualStepping exercises the checker-facing API: InitNode,
// Deliverable, Deliver.
func TestManualStepping(t *testing.T) {
	topo := mustTopo(t, 2)
	a := &probe{onInit: func(e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }}
	b := &probe{}
	s, err := sim.New(topo, []node.PulseMachine{a, b}, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	if ds := s.Deliverable(); len(ds) != 0 {
		t.Errorf("deliverable before init: %v", ds)
	}
	if err := s.InitNode(0); err != nil {
		t.Fatal(err)
	}
	if err := s.InitNode(0); err == nil {
		t.Error("double init accepted")
	}
	// The pulse sits at node 1, which is uninitialized: not deliverable.
	if ds := s.Deliverable(); len(ds) != 0 {
		t.Errorf("deliverable to uninitialized node: %v", ds)
	}
	if err := s.InitNode(1); err != nil {
		t.Fatal(err)
	}
	ds := s.Deliverable()
	if len(ds) != 1 {
		t.Fatalf("deliverable = %v, want one channel", ds)
	}
	if s.QueueLen(ds[0]) != 1 {
		t.Errorf("queue len = %d, want 1", s.QueueLen(ds[0]))
	}
	if err := s.Deliver(ds[0]); err != nil {
		t.Fatal(err)
	}
	if !s.Quiescent() {
		t.Error("not quiescent after the only pulse was delivered")
	}
	if err := s.Deliver(ds[0]); err == nil {
		t.Error("delivery from empty channel accepted")
	}
	if err := s.InitNode(5); err == nil {
		t.Error("out-of-range init accepted")
	}
}

// TestCanonicalOrder: the canonical scheduler delivers in global send
// order.
func TestCanonicalOrder(t *testing.T) {
	const n = 4
	topo := mustTopo(t, n)
	ms := make([]node.PulseMachine, n)
	for k := 0; k < n; k++ {
		pr := &probe{}
		pr.onInit = func(e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }
		ms[k] = pr
	}
	var order []int
	obs := sim.ObserverFunc[pulse.Pulse](func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
		if e.Kind == sim.EvDeliver {
			order = append(order, e.Node)
		}
		return nil
	})
	s, err := sim.New(topo, ms, sim.Canonical{}, sim.WithObserver[pulse.Pulse](obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	// Node k's init pulse (sent k-th) is received by node k+1; canonical
	// order must deliver them in send order: 1, 2, 3, 0.
	want := fmt.Sprint([]int{1, 2, 3, 0})
	if fmt.Sprint(order) != want {
		t.Errorf("delivery order = %v, want %s", order, want)
	}
}

// TestRandomSchedulerDeterminism: equal seeds give equal runs.
func TestRandomSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		topo := mustTopo(t, 3)
		ms := make([]node.PulseMachine, 3)
		for k := range ms {
			pr := &probe{}
			count := 0
			pr.onInit = func(e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }
			pr.onMsg = func(p pulse.Port, e node.PulseEmitter) {
				count++
				if count < 5 {
					e.Send(pulse.Port1, pulse.Pulse{})
					e.Send(pulse.Port0, pulse.Pulse{})
				}
			}
			ms[k] = pr
		}
		var order []int
		obs := sim.ObserverFunc[pulse.Pulse](func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
			order = append(order, e.Node*2+int(e.Port))
			return nil
		})
		s, err := sim.New(topo, ms, sim.NewRandom(seed), sim.WithObserver[pulse.Pulse](obs))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(10000); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b, c := run(42), run(42), run(43)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("same seed produced different runs")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// TestChannelHelpers pins the channel-id encoding.
func TestChannelHelpers(t *testing.T) {
	if sim.ChanNode(5) != 2 || sim.ChanPort(5) != pulse.Port1 {
		t.Error("channel id helpers broken")
	}
	if sim.ChanNode(4) != 2 || sim.ChanPort(4) != pulse.Port0 {
		t.Error("channel id helpers broken")
	}
}
