package sim

import (
	"errors"
	"fmt"

	"coleader/internal/pulse"
)

// ShardReferenceRun drives a fresh sequential Sim through exactly the
// epoch schedule the sharded engine executes for the same (topology,
// shard count, scheduler factory): arcs visited in index order within
// each epoch, each arc draining its frozen deliverable set under its
// own scheduler instance. It is the oracle of the shard differential
// tests — its per-event observer stream and final Result must be
// byte-identical to Sharded.Run's, which proves the parallel engine
// equivalent to a sequential execution.
//
// s must be freshly constructed and not otherwise driven. The epoch
// schedule itself never consults global state mid-arc, so the runs
// stays a plain sequence of InitNode and Deliver calls on s.
func ShardReferenceRun[M any](s *Sim[M], shards int, mk MkScheduler, limit uint64) (Result, error) {
	if mk == nil {
		return s.Result(), errors.New("sim: nil scheduler factory")
	}
	n := s.topo.N()
	if shards < 1 {
		return s.Result(), fmt.Errorf("sim: shard count %d must be at least 1", shards)
	}
	if shards > n {
		shards = n
	}
	arcs := make([]refArc[M], shards)
	for i := range arcs {
		a := &arcs[i]
		a.view.s = s
		a.view.lo = i * n / shards
		a.view.hi = (i + 1) * n / shards
		a.sched = mk(i)
		if a.sched == nil {
			return s.Result(), fmt.Errorf("sim: scheduler factory returned nil for arc %d", i)
		}
	}

	// Epoch 0: wake every node, arc-major = plain index order.
	for k := 0; k < n; k++ {
		if err := s.InitNode(k); err != nil {
			return s.Result(), err
		}
	}

	for {
		if s.step >= limit {
			return s.Result(), s.fail(fmt.Errorf("%w (%d)", ErrStepLimit, limit))
		}
		// Barrier: freeze at the current global sequence number. Every
		// queued message was sent in a completed epoch, so the frozen
		// sets cover all of InFlight; empty frozen sets mean the same
		// quiescence or stall RunDeliveries reports.
		boundary := s.seq
		stepBase := s.step
		total := 0
		for i := range arcs {
			v := &arcs[i].view
			v.boundary, v.stepBase, v.localSteps = boundary, stepBase, 0
			total += len(v.Deliverable())
		}
		if total == 0 {
			if s.InFlight() == 0 {
				return s.Result(), nil
			}
			if s.allTerminated() {
				return s.Result(), s.fail(fmt.Errorf("%w: %d in flight after all nodes terminated",
					ErrTerminatedNonEmpty, s.InFlight()))
			}
			return s.Result(), s.fail(fmt.Errorf("%w: %d in flight", ErrStalled, s.InFlight()))
		}
		for i := range arcs {
			a := &arcs[i]
			for {
				frozen := a.view.Deliverable()
				if len(frozen) == 0 {
					break
				}
				c := a.sched.Next(&a.view)
				ok := false
				for _, fc := range frozen {
					if fc == c {
						ok = true
						break
					}
				}
				if !ok {
					return s.Result(), s.fail(fmt.Errorf(
						"sim: scheduler picked channel %d outside the frozen deliverable set", c))
				}
				if err := s.Deliver(c); err != nil {
					return s.Result(), err
				}
				a.view.localSteps++
			}
		}
	}
}

type refArc[M any] struct {
	sched Scheduler
	view  refArcView[M]
}

// refArcView is the sequential twin of arcView: the frozen deliverable
// set of one arc, derived by filtering the live simulator's deliverable
// set down to in-arc channels with frozen heads. It implements only the
// base View — schedulers take their scan paths, and since sequence
// numbers are unique those scans pick exactly what arcView's frozen
// heap serves, keeping the two engines' decisions aligned without
// sharing code.
type refArcView[M any] struct {
	s          *Sim[M]
	lo, hi     int
	boundary   uint64
	stepBase   uint64
	localSteps uint64
	scratch    []int
}

func (v *refArcView[M]) Deliverable() []int {
	v.scratch = v.scratch[:0]
	for _, c := range v.s.Deliverable() {
		if c >= 2*v.lo && c < 2*v.hi && v.s.headSeq(c) <= v.boundary {
			v.scratch = append(v.scratch, c)
		}
	}
	return v.scratch
}

func (v *refArcView[M]) HeadSeq(c int) uint64 { return v.s.headSeq(c) }
func (v *refArcView[M]) QueueLen(c int) int   { return frozenLen(&v.s.queues[c], v.boundary) }
func (v *refArcView[M]) Direction(c int) pulse.Direction {
	return v.s.chanDir[c]
}
func (v *refArcView[M]) Step() uint64 { return v.stepBase + v.localSteps }
