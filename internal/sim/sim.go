// Package sim is a deterministic discrete-event simulator for asynchronous
// ring networks. It is the reference runtime for every algorithm in this
// repository: the content-oblivious algorithms of internal/core run on
// Sim[pulse.Pulse], the content-carrying baselines of internal/baseline on
// Sim[baseline.Msg].
//
// Asynchrony is modeled exactly as in Section 2 of the paper: channels never
// drop, duplicate, or inject messages; delays are unbounded but finite.
// (WithFaultPlane deliberately steps outside that model for robustness
// experiments; without it the model holds exactly.) Any
// asynchronous execution is fully determined by the order in which queued
// messages are delivered, so the adversary is a Scheduler that repeatedly
// picks the next channel to deliver from. Per-channel FIFO order is always
// preserved (for contentless pulses this is unobservable; for the baselines
// it matters).
//
// The simulator enforces the model's correctness obligations as it runs:
// a message sent toward a terminated node, or a node terminating with a
// non-empty incoming queue, violates quiescent termination and aborts the
// run with an error; a reachable state with queued messages but no
// deliverable one is a permanent stall and likewise aborts.
package sim

import (
	"errors"
	"fmt"
	"math/bits"

	"coleader/internal/fault"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// Sentinel errors reported by Run and the stepping API.
var (
	// ErrStalled: messages are queued but no machine is ready to consume
	// any of them; since nodes are event-driven the network can never make
	// progress again.
	ErrStalled = errors.New("sim: stalled with undeliverable messages in flight")

	// ErrStepLimit: the delivery budget was exhausted before quiescence.
	ErrStepLimit = errors.New("sim: step limit exceeded")

	// ErrPostTerminationSend: a handler sent a message toward a node that
	// had already terminated, violating quiescent termination.
	ErrPostTerminationSend = errors.New("sim: message sent to terminated node")

	// ErrTerminatedNonEmpty: a node terminated while messages addressed to
	// it were still queued or in flight, violating quiescent termination.
	ErrTerminatedNonEmpty = errors.New("sim: node terminated with pending incoming messages")

	// ErrMachineFault: a machine reported a protocol fault via Status().Err.
	ErrMachineFault = errors.New("sim: machine fault")

	// ErrFaultPlaneUndoable: WithFaultPlane was combined with a machine
	// bank that cannot satisfy it. Restart and corrupt injections
	// snapshot and restore per-node state through node.Undoable, which
	// only pointer machines implement; a FlatMachine bank exposes no
	// per-node snapshot/restore surface, so NewFlat rejects the
	// combination with this error (see DESIGN.md §9).
	ErrFaultPlaneUndoable = errors.New("sim: fault plane requires node.Undoable pointer machines")

	// ErrBatchUnsupported: WithBatching was combined with a machine bank
	// or option it cannot drive: every machine must implement
	// node.BatchMachine (flat banks: node.FlatBatchMachine), and the
	// batch fast path is model-exact, so the fault plane is rejected.
	ErrBatchUnsupported = errors.New("sim: batching unsupported for this configuration")
)

// EventKind distinguishes the two things that can happen in an event-driven
// network: a node waking up for the first time, and a message delivery.
type EventKind uint8

// Event kinds.
const (
	EvInit EventKind = iota + 1
	EvDeliver
)

// SendRec records one message emission for observers. On the batched
// fast path (WithBatching) a record may describe a counted run: Count
// holds the run length, and 0 — the value every non-batched path leaves
// — means a single message.
type SendRec struct {
	From  int
	Port  pulse.Port
	Dir   pulse.Direction
	To    ring.Endpoint
	Count uint64 `json:",omitempty"` // run length; 0 means 1
}

// Event describes one simulator step for observers. Payloads are not
// included; observers needing algorithm state introspect machines directly.
// On the batched fast path one event describes a whole batch transition:
// Count holds how many pulses it consumed (0 — the value every
// non-batched path leaves — means 1), Step is the step of the FIRST
// pulse of the run (the transition spans steps Step..Step+Count-1 of
// the equivalent pulse-by-pulse execution), and Sends carries counted
// runs.
type Event struct {
	Kind  EventKind
	Step  uint64
	Node  int
	Port  pulse.Port      // delivery port (EvDeliver only)
	Dir   pulse.Direction // arrival direction (EvDeliver only)
	Count uint64          `json:",omitempty"` // pulses consumed; 0 means 1
	Sends []SendRec       // emissions of this handler invocation
}

// Result summarizes a finished (or aborted) run.
type Result struct {
	N                int
	Steps            uint64 // handler invocations (inits + deliveries)
	Sent             uint64 // total messages sent
	Delivered        uint64 // total messages delivered
	SentCW           uint64 // messages sent clockwise
	SentCCW          uint64 // messages sent counterclockwise
	Quiescent        bool   // no messages left anywhere
	AllTerminated    bool
	Leader           int   // index of the unique leader, or -1
	Leaders          []int // all nodes currently reporting Leader
	Statuses         []node.Status
	TerminationOrder []int // node indices in the order they terminated
}

// Sim is a single-use simulation of one ring execution. Create with New,
// then either call Run, or drive manually with InitNode/Deliver for
// fine-grained schedule control.
type Sim[M any] struct {
	topo ring.Topology
	// The machine bank: exactly one of machines (one heap object per
	// node) and flat (a struct-of-arrays FlatMachine bank, see NewFlat)
	// is non-nil; every handler, Ready, and Status access goes through
	// the m* dispatch helpers.
	machines []node.Machine[M]
	flat     node.FlatMachine[M]
	sched    Scheduler
	obs      []Observer[M]

	queues  []fifo[M] // per channel; channel id = node*2 + port
	inited  []bool
	termAt  []uint64 // step+1 at which node terminated; 0 = live
	ordTerm []int

	chanDir []pulse.Direction // arrival direction on each channel
	outDir  []pulse.Direction // travel direction of sends out of (node, port)
	peer    []ring.Endpoint   // receiving endpoint of sends out of (node, port)
	peerCh  []int             // channel id of peer, same indexing

	// deliv is the incrementally maintained deliverable set: bit c is set
	// iff channel c holds a queued message whose receiver is initialized,
	// unterminated, and Ready. It is updated at every point deliverability
	// can change — enqueue, dequeue, init, termination, and Ready
	// transitions (a machine's Ready only changes inside its own handlers,
	// so refreshing the acting node's two channels after each handler
	// covers every transition). rescan disables it in favor of the
	// retained full-scan reference.
	deliv      bitset
	delivCount int
	rescan     bool

	// oldest is a lazy min-heap over (head sequence number, channel) of
	// deliverable channels: the canonical scheduler's pick in O(log n)
	// instead of an O(n) scan. Entries are validated on inspection (the
	// channel must still be deliverable with that exact head), stale ones
	// are dropped lazily, and heapSeq deduplicates pushes so each
	// (channel, seq) pair is enqueued at most once. Maintenance starts at
	// the first OldestDeliverable consult (oldestOn): schedulers that
	// never ask — Heaviest, Newest, Random — pay nothing, and the first
	// consult rebuilds the heap from the live deliverable set, which is
	// exactly the candidate set continuous maintenance would have kept.
	oldest   []heapEntry
	heapSeq  []uint64 // last seq pushed per channel; 0 = none
	oldestOn bool

	// aux holds the scheduler-requested priority heaps (see HeapHinted):
	// lazily validated like oldest, but ordered by a per-heap key so
	// Newest, DirBiased, and HashDelay get their picks in O(log n) too.
	// Empty unless the scheduler asked, and always empty in rescan mode,
	// which keeps the rescan reference a heap-free oracle.
	aux []auxHeap

	step      uint64
	seq       uint64
	sent      uint64
	delivered uint64
	sentCW    uint64
	sentCCW   uint64

	scratch []int // reusable deliverable buffer
	em      emitter[M]
	failed  error

	// Batch fast path (WithBatching; pulse machines only). Exactly one
	// of bms and fbm is non-nil when batch is set; runEm is the reusable
	// counted-run emitter handed to OnPulses; runs/coalesced feed the
	// RunsCoalesced accessor and the progress reporter.
	batch     bool
	bms       []node.BatchMachine
	fbm       node.FlatBatchMachine
	runEm     runEmitter
	runs      uint64 // batch transitions (OnPulses invocations)
	coalesced uint64 // batch transitions that consumed more than one pulse

	// Fault plane (nil on model-exact runs). crashed nodes consume
	// nothing; initSnap holds pre-Init Undoable snapshots for restarts.
	plane    *fault.Plane
	crashed  []bool
	initSnap [][]byte
}

// entry is one queued element of a channel FIFO. On non-batched paths
// every entry is a single message (cnt == 1). The batched fast path
// (WithBatching) stores counted pulse runs instead: an entry with
// cnt == c represents c contentless pulses occupying the contiguous
// sequence numbers seq .. seq+c-1 — sound because a content-oblivious
// channel's state IS its pulse count, and exact because run emissions
// are per-channel contiguous in the expanded execution (see the
// BatchMachine contract).
type entry[M any] struct {
	seq uint64
	cnt uint64
	msg M
}

// fifo is a head-indexed ring buffer holding one channel's queued
// messages. Unlike q = q[1:] re-slicing it never pins its backing array:
// popped slots are reused, so a channel that stays shallow never grows
// past a few entries no matter how many messages pass through it.
// tot is the queued message count (Σ cnt over entries): equal to n on
// non-batched paths, and the scheduler-visible queue length everywhere.
type fifo[M any] struct {
	buf  []entry[M] // power-of-two capacity
	head int
	n    int
	tot  uint64
}

func (q *fifo[M]) push(e entry[M]) {
	if q.n == len(q.buf) {
		grown := make([]entry[M], max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = e
	q.n++
	q.tot += e.cnt
}

// pushRun appends a counted pulse run, coalescing it into the tail
// entry when the sequence ranges are contiguous. Only the batched fast
// path calls this (messages are contentless pulses, so merging entries
// never conflates payloads). Runs whose tail lies at or below
// mergeFloor are never merged into: the sharded engine passes its epoch
// boundary so a frozen (final-numbered) tail cannot absorb pulses that
// still carry provisional sequence numbers and must be renumbered at
// the barrier.
func (q *fifo[M]) pushRun(e entry[M], mergeFloor uint64) {
	if q.n > 0 {
		tail := &q.buf[(q.head+q.n-1)&(len(q.buf)-1)]
		if tail.seq > mergeFloor && tail.seq+tail.cnt == e.seq {
			tail.cnt += e.cnt
			q.tot += e.cnt
			return
		}
	}
	q.push(e)
}

func (q *fifo[M]) pop() entry[M] {
	e := q.buf[q.head]
	q.buf[q.head] = entry[M]{} // release any payload reference
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.tot -= e.cnt
	return e
}

// popPulses consumes m pulses from the front of the queue, splitting a
// partially consumed run in place (its remainder keeps ascending,
// contiguous numbering, so the front's seq stays the oldest queued
// pulse's). m must be at most tot.
func (q *fifo[M]) popPulses(m uint64) {
	q.tot -= m
	for m > 0 {
		f := &q.buf[q.head]
		if f.cnt > m {
			f.seq += m
			f.cnt -= m
			return
		}
		m -= f.cnt
		q.buf[q.head] = entry[M]{}
		q.head = (q.head + 1) & (len(q.buf) - 1)
		q.n--
	}
}

func (q *fifo[M]) front() *entry[M] { return &q.buf[q.head] }

// at returns the i-th queued entry (0 = front). i must be < n.
func (q *fifo[M]) at(i int) *entry[M] { return &q.buf[(q.head+i)&(len(q.buf)-1)] }

// frozenLen returns how many of q's entries carry a sequence number at
// or below boundary. Entries are queued in strictly ascending sequence
// order (FIFO channels, single sender, monotone numbering), so the
// frozen messages form a prefix and a binary search finds its length.
// The sharded engine and its sequential reference driver both use this
// as the scheduler-visible queue length during an epoch.
func frozenLen[M any](q *fifo[M], boundary uint64) int {
	lo, hi := 0, q.n
	for lo < hi {
		mid := (lo + hi) / 2
		if q.at(mid).seq <= boundary {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// frozenPulses returns how many pulses (Σ cnt over the frozen entry
// prefix) carry a sequence number at or below boundary. Entries are
// whole runs: at a barrier every queued entry lies entirely at or below
// the new boundary, and entries queued mid-epoch lie entirely above it
// (pushRun's mergeFloor keeps the two from coalescing), so a run never
// straddles the boundary. This is the batched sharded engine's
// scheduler-visible queue length and its per-transition run budget.
func frozenPulses[M any](q *fifo[M], boundary uint64) uint64 {
	fl := frozenLen(q, boundary)
	if fl == q.n {
		return q.tot
	}
	var tot uint64
	for i := 0; i < fl; i++ {
		tot += q.at(i).cnt
	}
	return tot
}

// heapEntry is one candidate in the oldest-deliverable min-heap.
type heapEntry struct {
	seq uint64
	c   int
}

func (s *Sim[M]) heapPush(c int, seq uint64) {
	if !s.oldestOn {
		return // nobody has consulted the oldest heap; don't maintain it
	}
	if s.heapSeq[c] == seq {
		return // this exact candidate is already enqueued
	}
	if len(s.oldest) >= 2*len(s.queues)+64 {
		// Stale entries are normally drained by oldestDeliverable, but a
		// consumer that stops consulting (a direction-biased scheduler
		// starved of its preferred direction falls back elsewhere) would
		// otherwise leave one behind per head advance — unbounded growth
		// on a long run. Rebuilding from the live deliverable heads once
		// the heap outgrows twice the channel count caps it at
		// O(channels) for amortized O(1) per push. heapPush runs only
		// for deliverable heads, so the rebuild re-registers (c, seq)
		// itself.
		s.heapCompact()
		if s.heapSeq[c] == seq {
			return
		}
	}
	s.heapSeq[c] = seq
	h := append(s.oldest, heapEntry{seq: seq, c: c})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].seq <= h[i].seq {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	s.oldest = h
}

// heapCompact rebuilds the oldest heap from exactly the live candidate
// set: every deliverable channel's current head, nothing else.
func (s *Sim[M]) heapCompact() {
	h := s.oldest[:0]
	for i := range s.heapSeq {
		s.heapSeq[i] = 0
	}
	for c := range s.queues {
		if !s.deliv.get(c) {
			continue
		}
		seq := s.queues[c].front().seq
		s.heapSeq[c] = seq
		h = append(h, heapEntry{seq: seq, c: c})
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		for j := i; ; {
			l, r := 2*j+1, 2*j+2
			small := j
			if l < len(h) && h[l].seq < h[small].seq {
				small = l
			}
			if r < len(h) && h[r].seq < h[small].seq {
				small = r
			}
			if small == j {
				break
			}
			h[j], h[small] = h[small], h[j]
			j = small
		}
	}
	s.oldest = h
}

// heapDrop removes the root, clearing its dedup mark if it still owns it.
func (s *Sim[M]) heapDrop() {
	h := s.oldest
	top := h[0]
	if s.heapSeq[top.c] == top.seq {
		s.heapSeq[top.c] = 0
	}
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].seq < h[small].seq {
			small = l
		}
		if r < len(h) && h[r].seq < h[small].seq {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	s.oldest = h
}

// oldestDeliverable returns the deliverable channel holding the globally
// oldest (smallest sequence number) deliverable message. Sequence numbers
// are unique, so this is exactly the channel the canonical scan selects.
// ok is false in rescan mode, forcing callers onto the reference path.
func (s *Sim[M]) oldestDeliverable() (c int, ok bool) {
	if s.rescan {
		return 0, false
	}
	if !s.oldestOn {
		// First consult: switch maintenance on and seed the heap with the
		// live candidate set — every deliverable channel's current head,
		// which is exactly what continuous maintenance would hold (minus
		// stale entries). Incremental pushes keep it current from here.
		s.oldestOn = true
		s.heapCompact()
	}
	for len(s.oldest) > 0 {
		top := s.oldest[0]
		if s.deliv.get(top.c) && s.queues[top.c].front().seq == top.seq {
			return top.c, true
		}
		s.heapDrop() // stale: delivered already, or channel not deliverable
	}
	return 0, false
}

// bitset indexes channels; word i holds channels 64i..64i+63.
type bitset []uint64

func (b bitset) set(i int)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << (i & 63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<(i&63)) != 0 }
func (b bitset) appendInto(dst []int) []int {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Observer receives every simulator event; returning an error aborts the
// run. Observers run after the event's sends have been enqueued and all
// built-in violation checks have passed.
type Observer[M any] interface {
	OnEvent(e *Event, s *Sim[M]) error
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc[M any] func(e *Event, s *Sim[M]) error

// OnEvent implements Observer.
func (f ObserverFunc[M]) OnEvent(e *Event, s *Sim[M]) error { return f(e, s) }

// Option configures a Sim.
type Option[M any] func(*Sim[M])

// WithObserver attaches an observer; multiple observers run in order.
func WithObserver[M any](o Observer[M]) Option[M] {
	return func(s *Sim[M]) { s.obs = append(s.obs, o) }
}

// WithRescanDeliverable makes Deliverable recompute the deliverable set
// with a full scan over every channel on every call, instead of reading
// the incrementally maintained set. It is the retained naive reference
// implementation: the two must agree exactly (same channels, same
// ascending order), which the scheduler-trace differential tests assert
// for every stock scheduler.
func WithRescanDeliverable[M any]() Option[M] {
	return func(s *Sim[M]) { s.rescan = true }
}

// newSim builds the machine-free core of a simulation: queues, wiring
// caches, and the incremental deliverable machinery. New and NewFlat
// attach their machine banks and apply options on top.
func newSim[M any](t ring.Topology, sched Scheduler) (*Sim[M], error) {
	if sched == nil {
		return nil, errors.New("sim: nil scheduler")
	}
	n := t.N()
	s := &Sim[M]{
		topo:    t,
		sched:   sched,
		queues:  make([]fifo[M], 2*n),
		inited:  make([]bool, n),
		termAt:  make([]uint64, n),
		chanDir: make([]pulse.Direction, 2*n),
		outDir:  make([]pulse.Direction, 2*n),
		peer:    make([]ring.Endpoint, 2*n),
		peerCh:  make([]int, 2*n),
		deliv:   make(bitset, (2*n+63)/64),
		heapSeq: make([]uint64, 2*n),
		crashed: make([]bool, n),
	}
	for k := 0; k < n; k++ {
		for _, p := range []pulse.Port{pulse.Port0, pulse.Port1} {
			// Channel into (k, p) carries messages traveling opposite to
			// the direction k would send out of p. The outgoing wiring is
			// cached here once so flushSends never consults the topology
			// on the per-send path.
			c := chanID(k, p)
			s.chanDir[c] = t.ArrivalDirection(k, p)
			s.outDir[c] = t.DirectionOf(k, p)
			s.peer[c] = t.Peer(k, p)
			s.peerCh[c] = chanID(s.peer[c].Node, s.peer[c].Port)
		}
	}
	s.em.s = s
	return s, nil
}

// finish applies options and wires the scheduler's aux heaps; the bank
// must already be attached (options and hints may consult it).
func (s *Sim[M]) finish(opts []Option[M]) {
	for _, o := range opts {
		o(s)
	}
	if !s.rescan {
		s.installHeapHints()
	}
}

// New builds a simulation of machines on topology t driven by sched.
// len(machines) must equal t.N().
func New[M any](t ring.Topology, machines []node.Machine[M], sched Scheduler, opts ...Option[M]) (*Sim[M], error) {
	if len(machines) != t.N() {
		return nil, fmt.Errorf("sim: %d machines for %d nodes", len(machines), t.N())
	}
	s, err := newSim[M](t, sched)
	if err != nil {
		return nil, err
	}
	s.machines = machines
	s.finish(opts)
	if err := s.setupBatch(); err != nil {
		return nil, err
	}
	if s.plane != nil {
		s.captureInitialSnapshots()
	}
	return s, nil
}

// NewFlat builds a simulation whose node state lives in a FlatMachine
// bank (struct-of-arrays) instead of one heap object per node: the
// layout for very large rings. Semantics are identical to New — the
// flat differential tests assert trace-for-trace equality against the
// pointer machines — except that WithFaultPlane is rejected: restart
// and corrupt injections snapshot machines through node.Undoable, which
// a flat bank does not expose.
func NewFlat[M any](t ring.Topology, bank node.FlatMachine[M], sched Scheduler, opts ...Option[M]) (*Sim[M], error) {
	if bank == nil {
		return nil, errors.New("sim: nil machine bank")
	}
	if bank.Len() != t.N() {
		return nil, fmt.Errorf("sim: bank of %d slots for %d nodes", bank.Len(), t.N())
	}
	s, err := newSim[M](t, sched)
	if err != nil {
		return nil, err
	}
	s.flat = bank
	s.finish(opts)
	if err := s.setupBatch(); err != nil {
		return nil, err
	}
	if s.plane != nil {
		return nil, fmt.Errorf("%w: FlatMachine banks expose no per-node snapshot/restore surface for restart and corrupt injections", ErrFaultPlaneUndoable)
	}
	return s, nil
}

// mInit dispatches a node's Init through whichever bank is attached.
func (s *Sim[M]) mInit(k int, e node.Emitter[M]) {
	if s.flat != nil {
		s.flat.Init(k, e)
		return
	}
	s.machines[k].Init(e)
}

// mOnMsg dispatches a delivery through whichever bank is attached.
func (s *Sim[M]) mOnMsg(k int, p pulse.Port, m M, e node.Emitter[M]) {
	if s.flat != nil {
		s.flat.OnMsg(k, p, m, e)
		return
	}
	s.machines[k].OnMsg(p, m, e)
}

// mReady dispatches a Ready query through whichever bank is attached.
func (s *Sim[M]) mReady(k int, p pulse.Port) bool {
	if s.flat != nil {
		return s.flat.Ready(k, p)
	}
	return s.machines[k].Ready(p)
}

// mStatus dispatches a Status query through whichever bank is attached.
func (s *Sim[M]) mStatus(k int) node.Status {
	if s.flat != nil {
		return s.flat.Status(k)
	}
	return s.machines[k].Status()
}

func chanID(k int, p pulse.Port) int { return 2*k + int(p) }

// ChanNode returns the receiving node of channel c.
func ChanNode(c int) int { return c / 2 }

// ChanPort returns the receiving port of channel c.
func ChanPort(c int) pulse.Port { return pulse.Port(c % 2) }

// emitter buffers a handler's sends so they take effect atomically, with
// clockwise sends enqueued first. That ordering realizes the canonical
// scheduler's tie-break of Definition 21 ("prioritizing CW pulses" among
// pulses emitted at the same instant) and is harmless for every other
// scheduler.
type emitter[M any] struct {
	s    *Sim[M]
	from int
	buf  []pendingSend[M]
}

type pendingSend[M any] struct {
	port pulse.Port
	msg  M
}

// Send implements node.Emitter.
func (e *emitter[M]) Send(p pulse.Port, m M) {
	if !p.Valid() {
		panic(fmt.Sprintf("sim: send on invalid port %d", p))
	}
	e.buf = append(e.buf, pendingSend[M]{port: p, msg: m})
}

func (s *Sim[M]) flushSends(from int, ev *Event) error {
	buf := s.em.buf
	// Clockwise sends first (stable within each class).
	for pass := 0; pass < 2; pass++ {
		want := pulse.CW
		if pass == 1 {
			want = pulse.CCW
		}
		for _, ps := range buf {
			out := chanID(from, ps.port)
			if s.outDir[out] != want {
				continue
			}
			to := s.peer[out]
			if s.termAt[to.Node] != 0 {
				return fmt.Errorf("%w: node %d sent %s toward node %d",
					ErrPostTerminationSend, from, want, to.Node)
			}
			c := s.peerCh[out]
			if s.plane != nil {
				switch s.plane.OnSend(s.step, c) {
				case fault.Loss:
					continue // vanished in transit; never reaches the queue
				case fault.Dup:
					s.enqueue(c, ps.msg, want)
				}
			}
			s.enqueue(c, ps.msg, want)
			if ev != nil {
				ev.Sends = append(ev.Sends, SendRec{From: from, Port: ps.port, Dir: want, To: to})
			}
		}
	}
	s.em.buf = s.em.buf[:0]
	return nil
}

// enqueue places one message on channel c traveling dir, assigning the next
// global sequence number and maintaining the counters and the deliverable
// set. It is the single point where messages enter the wire: handler
// emissions, duplicated pulses, and spurious injections all land here, so
// Sent and InFlight count adversarial traffic too.
func (s *Sim[M]) enqueue(c int, msg M, dir pulse.Direction) {
	s.seq++
	s.queues[c].push(entry[M]{seq: s.seq, cnt: 1, msg: msg})
	s.sent++
	if dir == pulse.CW {
		s.sentCW++
	} else {
		s.sentCCW++
	}
	if s.queues[c].n == 1 {
		// Empty -> non-empty is the only enqueue transition that can
		// change deliverability.
		s.refreshChan(c)
	} else if len(s.aux) > 0 && s.deliv.get(c) {
		// The head is unchanged, so the head-keyed heaps dedup this to
		// a no-op; only a count-keyed heap (HeapHeaviest) re-registers.
		s.auxPush(c, s.queues[c].front().seq)
	}
}

// refreshChan recomputes channel c's bit in the deliverable set and, when
// deliverable, registers its current head in the oldest-message heap.
func (s *Sim[M]) refreshChan(c int) {
	k := ChanNode(c)
	was := s.deliv.get(c)
	if s.queues[c].n > 0 && s.inited[k] && s.termAt[k] == 0 && !s.crashed[k] && s.mReady(k, ChanPort(c)) {
		if !was {
			s.deliv.set(c)
			s.delivCount++
		}
		s.heapPush(c, s.queues[c].front().seq)
		if len(s.aux) > 0 {
			s.auxPush(c, s.queues[c].front().seq)
		}
	} else if was {
		s.deliv.clear(c)
		s.delivCount--
	}
}

// afterHandler performs the built-in checks, brings the deliverable set
// up to date with node k's post-handler state, and notifies observers.
// ev is nil exactly when no observer is attached.
func (s *Sim[M]) afterHandler(k int, ev *Event) error {
	st := s.mStatus(k)
	if st.Err != nil {
		return fmt.Errorf("%w: node %d: %v", ErrMachineFault, k, st.Err)
	}
	if st.Terminated && s.termAt[k] == 0 {
		s.termAt[k] = s.step + 1
		s.ordTerm = append(s.ordTerm, k)
		if s.queues[chanID(k, pulse.Port0)].n != 0 || s.queues[chanID(k, pulse.Port1)].n != 0 {
			return fmt.Errorf("%w: node %d", ErrTerminatedNonEmpty, k)
		}
	}
	// A machine's Ready answers only change inside its own handlers, so
	// re-evaluating the acting node's two channels (the queue pop and the
	// enqueues were refreshed at their own sites) restores the invariant
	// before observers — which may call Deliverable — run.
	s.refreshChan(chanID(k, pulse.Port0))
	s.refreshChan(chanID(k, pulse.Port1))
	if ev != nil {
		for _, o := range s.obs {
			if err := o.OnEvent(ev, s); err != nil {
				return fmt.Errorf("sim: observer: %w", err)
			}
		}
	}
	return nil
}

// InitNode wakes node k (its Machine.Init runs and may send). Idempotence
// is an error: each node inits exactly once.
func (s *Sim[M]) InitNode(k int) error {
	if s.failed != nil {
		return s.failed
	}
	if k < 0 || k >= s.topo.N() {
		return fmt.Errorf("sim: init of node %d outside [0,%d)", k, s.topo.N())
	}
	if s.inited[k] {
		return fmt.Errorf("sim: node %d already initialized", k)
	}
	s.inited[k] = true
	s.step++
	var ev *Event
	if len(s.obs) > 0 {
		ev = &Event{Kind: EvInit, Step: s.step, Node: k}
	}
	s.em.from = k
	s.mInit(k, &s.em)
	if err := s.flushSends(k, ev); err != nil {
		return s.fail(err)
	}
	if err := s.afterHandler(k, ev); err != nil {
		return s.fail(err)
	}
	if s.plane != nil {
		if err := s.applyNodeFault(k); err != nil {
			return s.fail(err)
		}
	}
	return nil
}

func (s *Sim[M]) fail(err error) error {
	if s.failed == nil {
		s.failed = err
	}
	return err
}

// deliverableRescan appends the ids of channels with a queued message
// whose receiving machine is initialized, unterminated, and Ready, by
// scanning every channel. It is the naive O(n) reference the incremental
// set is verified against.
func (s *Sim[M]) deliverableRescan(dst []int) []int {
	for c := range s.queues {
		if s.queues[c].n == 0 {
			continue
		}
		k := ChanNode(c)
		if !s.inited[k] || s.termAt[k] != 0 || s.crashed[k] {
			continue
		}
		if !s.mReady(k, ChanPort(c)) {
			continue
		}
		dst = append(dst, c)
	}
	return dst
}

// Deliverable returns the ids of channels the scheduler may deliver from
// right now, in ascending channel-id order. The returned slice is valid
// until the next simulator step.
func (s *Sim[M]) Deliverable() []int {
	if s.rescan {
		s.scratch = s.deliverableRescan(s.scratch[:0])
	} else {
		s.scratch = s.deliv.appendInto(s.scratch[:0])
	}
	return s.scratch
}

// Deliver pops the head message of channel c and runs the receiver's
// handler. c must currently be deliverable.
func (s *Sim[M]) Deliver(c int) error {
	if s.failed != nil {
		return s.failed
	}
	if s.batch {
		// Queues hold counted runs, not single messages; the batch
		// delivery loop (RunDeliveries) is the only admissible driver.
		return errors.New("sim: Deliver is pulse-by-pulse; drive batched simulations with Run or RunDeliveries")
	}
	if c < 0 || c >= len(s.queues) || s.queues[c].n == 0 {
		return fmt.Errorf("sim: deliver on empty or invalid channel %d", c)
	}
	k, p := ChanNode(c), ChanPort(c)
	switch {
	case !s.inited[k]:
		return fmt.Errorf("sim: deliver to uninitialized node %d", k)
	case s.termAt[k] != 0:
		return s.fail(fmt.Errorf("%w: delivery attempted to node %d", ErrPostTerminationSend, k))
	case s.crashed[k]:
		return fmt.Errorf("sim: deliver to crashed node %d", k)
	case !s.mReady(k, p):
		return fmt.Errorf("sim: deliver on non-ready port %s of node %d", p, k)
	}
	head := s.queues[c].pop()
	s.delivered++
	s.step++
	var ev *Event
	if len(s.obs) > 0 {
		ev = &Event{Kind: EvDeliver, Step: s.step, Node: k, Port: p, Dir: s.chanDir[c]}
	}
	s.em.from = k
	s.mOnMsg(k, p, head.msg, &s.em)
	if err := s.flushSends(k, ev); err != nil {
		return s.fail(err)
	}
	if err := s.afterHandler(k, ev); err != nil {
		return s.fail(err)
	}
	if s.plane != nil {
		if err := s.applyFaults(c, k); err != nil {
			return s.fail(err)
		}
	}
	return nil
}

// InFlight returns the number of queued (sent but undelivered) messages.
func (s *Sim[M]) InFlight() uint64 { return s.sent - s.delivered }

// Quiescent reports that every node has initialized and no message is
// queued anywhere: by event-drivenness, no further state change can occur.
func (s *Sim[M]) Quiescent() bool {
	for _, in := range s.inited {
		if !in {
			return false
		}
	}
	return s.InFlight() == 0
}

// Machine returns node k's machine for introspection by observers/tests.
// On a flat-backed simulation it returns a node.Slot adapter over the
// bank, so introspection code works unchanged (type assertions against
// concrete pointer machines do not — assert node.Slot and go through
// the bank instead).
func (s *Sim[M]) Machine(k int) node.Machine[M] {
	if s.flat != nil {
		return node.Slot[M]{Bank: s.flat, K: k}
	}
	return s.machines[k]
}

// Topology returns the simulated ring.
func (s *Sim[M]) Topology() ring.Topology { return s.topo }

// Step returns the number of handler invocations so far.
func (s *Sim[M]) Step() uint64 { return s.step }

// QueueLen returns the number of messages queued on channel c. On the
// batched fast path this counts pulses, not run entries, so schedulers
// that weight by queue length (Random) see the same quantity on both
// paths.
func (s *Sim[M]) QueueLen(c int) int { return int(s.queues[c].tot) }

// RunsCoalesced reports the batch fast path's win so far: the number of
// batch transitions executed and, of those, how many consumed more than
// one pulse in a single O(1) step. Both are zero without WithBatching.
func (s *Sim[M]) RunsCoalesced() (transitions, multi uint64) { return s.runs, s.coalesced }

// headSeq returns the send sequence number of channel c's oldest message.
func (s *Sim[M]) headSeq(c int) uint64 { return s.queues[c].front().seq }

// Run initializes every node (in index order, which is itself just one
// admissible schedule; use InitNode for adversarial wake-ups) and delivers
// messages as chosen by the scheduler until quiescence. limit bounds the
// total number of handler invocations.
func (s *Sim[M]) Run(limit uint64) (Result, error) {
	for k := 0; k < s.topo.N(); k++ {
		if s.inited[k] {
			continue
		}
		if err := s.InitNode(k); err != nil {
			return s.Result(), err
		}
	}
	return s.RunDeliveries(limit)
}

// RunDeliveries delivers until quiescence without initializing anyone;
// callers must have performed the wake-ups they want first (all nodes, for
// the standard model).
func (s *Sim[M]) RunDeliveries(limit uint64) (Result, error) {
	if s.failed != nil {
		return s.Result(), s.failed
	}
	view := view[M]{s: s}
	for {
		if s.step >= limit {
			return s.Result(), s.fail(fmt.Errorf("%w (%d)", ErrStepLimit, limit))
		}
		// The incremental count answers "anything deliverable?" in O(1);
		// the rescan reference recomputes it, staying a true oracle.
		none := s.delivCount == 0
		if s.rescan {
			none = len(s.Deliverable()) == 0
		}
		if none {
			if s.InFlight() == 0 {
				return s.Result(), nil
			}
			if s.allTerminated() {
				return s.Result(), s.fail(fmt.Errorf("%w: %d in flight after all nodes terminated",
					ErrTerminatedNonEmpty, s.InFlight()))
			}
			return s.Result(), s.fail(fmt.Errorf("%w: %d in flight", ErrStalled, s.InFlight()))
		}
		c := s.sched.Next(&view)
		if s.batch {
			if err := s.deliverRun(c); err != nil {
				return s.Result(), err
			}
			continue
		}
		if err := s.Deliver(c); err != nil {
			return s.Result(), err
		}
	}
}

func (s *Sim[M]) allTerminated() bool {
	for k := range s.termAt {
		if s.termAt[k] == 0 {
			return false
		}
	}
	return true
}

// Result snapshots the current outcome; valid at any point, not only after
// quiescence.
func (s *Sim[M]) Result() Result {
	n := s.topo.N()
	r := Result{
		N:             n,
		Steps:         s.step,
		Sent:          s.sent,
		Delivered:     s.delivered,
		SentCW:        s.sentCW,
		SentCCW:       s.sentCCW,
		Quiescent:     s.Quiescent(),
		AllTerminated: s.allTerminated(),
		Leader:        -1,
		Statuses:      make([]node.Status, n),
	}
	r.TerminationOrder = append(r.TerminationOrder, s.ordTerm...)
	for k := 0; k < n; k++ {
		st := s.mStatus(k)
		r.Statuses[k] = st
		if st.State == node.StateLeader {
			r.Leaders = append(r.Leaders, k)
		}
	}
	if len(r.Leaders) == 1 {
		r.Leader = r.Leaders[0]
	}
	return r
}
