package sim_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"coleader/internal/core"
	"coleader/internal/fault"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// runBatched executes a batched sequential simulation of inst (pointer
// or flat bank) under the named stock scheduler and returns its event
// stream, Result, and error.
func runBatched(t *testing.T, inst shardInstance, schedName string, seed int64, flat bool,
) ([]sim.Event, sim.Result, error) {
	t.Helper()
	topo, err := inst.topo()
	if err != nil {
		t.Fatal(err)
	}
	var events []sim.Event
	obs := sim.WithObserver[pulse.Pulse](sim.ObserverFunc[pulse.Pulse](
		func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
			cp := *e
			cp.Sends = append([]sim.SendRec(nil), e.Sends...)
			events = append(events, cp)
			return nil
		}))
	sched := sim.Stock(seed)[schedName]
	var s *sim.Sim[pulse.Pulse]
	if flat {
		bank, err := inst.bank()
		if err != nil {
			t.Fatal(err)
		}
		s, err = sim.NewFlat(topo, bank, sched, obs, sim.WithBatching())
		if err != nil {
			t.Fatal(err)
		}
	} else {
		ms, err := inst.machines()
		if err != nil {
			t.Fatal(err)
		}
		s, err = sim.New(topo, ms, sched, obs, sim.WithBatching())
		if err != nil {
			t.Fatal(err)
		}
	}
	res, runErr := s.Run(inst.budget)
	return events, res, runErr
}

// runShardBatched executes a batched sharded simulation of inst.
func runShardBatched(t *testing.T, inst shardInstance, mk sim.MkScheduler, shards int, flat bool,
) ([]sim.Event, sim.Result, error) {
	t.Helper()
	topo, err := inst.topo()
	if err != nil {
		t.Fatal(err)
	}
	var events []sim.Event
	obs := sim.WithShardObserver[pulse.Pulse](sim.ShardObserverFunc[pulse.Pulse](
		func(e *sim.Event, _ *sim.Sharded[pulse.Pulse]) error {
			cp := *e
			cp.Sends = append([]sim.SendRec(nil), e.Sends...)
			events = append(events, cp)
			return nil
		}))
	var s *sim.Sharded[pulse.Pulse]
	if flat {
		bank, err := inst.bank()
		if err != nil {
			t.Fatal(err)
		}
		s, err = sim.NewShardedFlat(topo, bank, shards, mk, obs, sim.WithShardBatching())
		if err != nil {
			t.Fatal(err)
		}
	} else {
		ms, err := inst.machines()
		if err != nil {
			t.Fatal(err)
		}
		s, err = sim.NewSharded(topo, ms, shards, mk, obs, sim.WithShardBatching())
		if err != nil {
			t.Fatal(err)
		}
	}
	res, runErr := s.Run(inst.budget)
	return events, res, runErr
}

// replayExpanded replays a batched schedule on a fresh plain sequential
// simulation of inst via BatchReferenceRun and returns the expanded
// (pulse-by-pulse) event stream its observer records, plus the replay's
// Result.
func replayExpanded(t *testing.T, inst shardInstance, schedule []sim.Event,
) ([]sim.Event, sim.Result, error) {
	t.Helper()
	topo, err := inst.topo()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := inst.machines()
	if err != nil {
		t.Fatal(err)
	}
	var events []sim.Event
	// The driving scheduler is irrelevant: BatchReferenceRun replays the
	// recorded schedule itself.
	s, err := sim.New(topo, ms, sim.Canonical{},
		sim.WithObserver[pulse.Pulse](sim.ObserverFunc[pulse.Pulse](
			func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
				cp := *e
				cp.Sends = append([]sim.SendRec(nil), e.Sends...)
				events = append(events, cp)
				return nil
			})))
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := sim.BatchReferenceRun(s, schedule)
	return events, res, runErr
}

// checkBatchedAgainstReference is the batched differential's core: the
// batched stream, expanded run by run, must equal the stream a plain
// sequential engine records while replaying the same schedule pulse by
// pulse, and the Results must be DeepEqual (batched step/sent/delivered
// totals count pulses, so they are engine-invariant).
func checkBatchedAgainstReference(t *testing.T, inst shardInstance,
	batchedEv []sim.Event, batchedRes sim.Result, batchedErr error,
) {
	t.Helper()
	if batchedErr != nil {
		t.Fatalf("batched run failed: %v", batchedErr)
	}
	expanded, err := sim.ExpandBatchEvents(batchedEv)
	if err != nil {
		t.Fatalf("batched stream violates the emission-uniformity contract: %v", err)
	}
	refEv, refRes, refErr := replayExpanded(t, inst, batchedEv)
	if refErr != nil {
		t.Fatalf("pulse-by-pulse replay of the batched schedule failed: %v", refErr)
	}
	if len(expanded) != len(refEv) {
		t.Fatalf("trace lengths diverge: expanded batched %d events, reference %d", len(expanded), len(refEv))
	}
	for i := range expanded {
		if !reflect.DeepEqual(expanded[i], refEv[i]) {
			t.Fatalf("event %d diverges:\nexpanded  %+v\nreference %+v", i, expanded[i], refEv[i])
		}
	}
	if !reflect.DeepEqual(batchedRes, refRes) {
		t.Fatalf("results diverge:\nbatched   %+v\nreference %+v", batchedRes, refRes)
	}
}

// TestBatchedMatchesExpandedReference is the batched differential on the
// sequential engine: for every stock scheduler x seed x algorithm, in
// both machine representations, the batched run's event stream — each
// batch transition expanded into its consumed pulses — must be
// event-for-event identical to a plain pulse-by-pulse engine delivering
// the same runs one pulse at a time, with DeepEqual Results.
func TestBatchedMatchesExpandedReference(t *testing.T) {
	for _, inst := range shardInstances() {
		for schedName := range sim.Stock(1) {
			for _, seed := range []int64{1, 5} {
				for _, flat := range []bool{false, true} {
					mode := "pointer"
					if flat {
						mode = "flat"
					}
					name := fmt.Sprintf("%s/%s/seed=%d/%s", inst.name, schedName, seed, mode)
					t.Run(name, func(t *testing.T) {
						ev, res, err := runBatched(t, inst, schedName, seed, flat)
						checkBatchedAgainstReference(t, inst, ev, res, err)
					})
				}
			}
		}
	}
}

// TestShardBatchedMatchesExpandedReference composes the two engines: the
// sharded engine with the batch fast path enabled must also expand to an
// admissible pulse-by-pulse execution of the plain sequential engine,
// for every stock scheduler family x seed x shard count x algorithm x
// machine representation.
func TestShardBatchedMatchesExpandedReference(t *testing.T) {
	var schedNames []string
	for name := range sim.StockSharded(1) {
		schedNames = append(schedNames, name)
	}
	for _, inst := range shardInstances() {
		for _, schedName := range schedNames {
			for _, seed := range []int64{1, 7} {
				for _, shards := range []int{2, 7} {
					for _, flat := range []bool{false, true} {
						mode := "pointer"
						if flat {
							mode = "flat"
						}
						name := fmt.Sprintf("%s/%s/seed=%d/shards=%d/%s", inst.name, schedName, seed, shards, mode)
						t.Run(name, func(t *testing.T) {
							mk := sim.StockSharded(seed)[schedName]
							ev, res, err := runShardBatched(t, inst, mk, shards, flat)
							checkBatchedAgainstReference(t, inst, ev, res, err)
						})
					}
				}
			}
		}
	}
}

// TestBatchedConservesPulseTotals pins the conservation law the batch
// fast path is built on: batching changes how many pulses one transition
// moves, never how many pulses move. The batched run legitimately takes
// a different admissible schedule than the plain run under the same
// scheduler, but content-oblivious executions are confluent, so the
// election outcome and every pulse total must agree exactly.
func TestBatchedConservesPulseTotals(t *testing.T) {
	for _, inst := range shardInstances() {
		t.Run(inst.name, func(t *testing.T) {
			topo, err := inst.topo()
			if err != nil {
				t.Fatal(err)
			}
			ms, err := inst.machines()
			if err != nil {
				t.Fatal(err)
			}
			plain, err := sim.New(topo, ms, sim.Canonical{})
			if err != nil {
				t.Fatal(err)
			}
			plainRes, err := plain.Run(inst.budget)
			if err != nil {
				t.Fatal(err)
			}
			ms2, err := inst.machines()
			if err != nil {
				t.Fatal(err)
			}
			batched, err := sim.New(topo, ms2, sim.Canonical{}, sim.WithBatching())
			if err != nil {
				t.Fatal(err)
			}
			batchedRes, err := batched.Run(inst.budget)
			if err != nil {
				t.Fatal(err)
			}
			if batchedRes.Sent != plainRes.Sent ||
				batchedRes.SentCW != plainRes.SentCW ||
				batchedRes.SentCCW != plainRes.SentCCW ||
				batchedRes.Delivered != plainRes.Delivered ||
				batchedRes.Steps != plainRes.Steps ||
				batchedRes.Leader != plainRes.Leader ||
				!reflect.DeepEqual(batchedRes.Leaders, plainRes.Leaders) ||
				!reflect.DeepEqual(batchedRes.Statuses, plainRes.Statuses) ||
				batchedRes.Quiescent != plainRes.Quiescent {
				t.Fatalf("outcomes diverge:\nplain   %+v\nbatched %+v", plainRes, batchedRes)
			}
			transitions, _ := batched.RunsCoalesced()
			if transitions == 0 || transitions > batchedRes.Delivered {
				t.Fatalf("RunsCoalesced transitions = %d, want in [1, %d]", transitions, batchedRes.Delivered)
			}
		})
	}
}

// TestBatchedCoalescesAtScale pins the perf claim behind the fast path:
// on a consecutive-ID Algorithm 2 ring under the Heaviest scheduler,
// backlogs snowball into ring-sized waves, so the batched engine must
// move the full Θ(n·ID_max) pulse volume in a near-linear number of
// transitions — while conserving the pulse total exactly (totals are
// schedule-invariant). Coalescing is genuinely schedule-dependent: the
// canonical scheduler's oldest-first pick is breadth-first, keeps every
// queue shallow during the counterclockwise relay phase, and caps
// batching near 3x on this same workload, which the second half pins as
// a floor so the contrast stays measured rather than assumed.
func TestBatchedCoalescesAtScale(t *testing.T) {
	const n = 512
	topo, err := ring.Oriented(n)
	if err != nil {
		t.Fatal(err)
	}
	ids := ring.ConsecutiveIDs(n)
	pred := core.PredictedAlg2Pulses(n, ring.MaxID(ids))
	run := func(sched sim.Scheduler) (sim.Result, uint64, uint64) {
		t.Helper()
		bank, err := core.NewFlatAlg2(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.NewFlat(topo, bank, sched, sim.WithBatching())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sent != pred {
			t.Fatalf("sent %d pulses, want %d (batching must conserve the total)", res.Sent, pred)
		}
		transitions, multi := s.RunsCoalesced()
		return res, transitions, multi
	}

	res, transitions, multi := run(sim.Heaviest{})
	if multi == 0 {
		t.Fatal("no multi-pulse transitions on a deep-queue workload")
	}
	// ~525k pulses must batch into a small multiple of n transitions.
	if transitions > res.Delivered/50 {
		t.Fatalf("%d transitions for %d pulses: batching coalesced less than 50x under Heaviest",
			transitions, res.Delivered)
	}

	canonRes, canonTransitions, _ := run(sim.Canonical{})
	if canonTransitions > canonRes.Delivered {
		t.Fatalf("%d canonical transitions for %d pulses", canonTransitions, canonRes.Delivered)
	}
	if canonTransitions < 10*transitions {
		t.Fatalf("canonical coalesced to %d transitions vs Heaviest's %d: the schedule-dependence this test documents has vanished — revisit the batching story",
			canonTransitions, transitions)
	}
}

// plainOnly is a PulseMachine that deliberately does not implement
// node.BatchMachine.
type plainOnly struct{}

func (plainOnly) Init(node.PulseEmitter)                           {}
func (plainOnly) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {}
func (plainOnly) Ready(pulse.Port) bool                            { return true }
func (plainOnly) Status() node.Status                              { return node.Status{} }

// flatPlainOnly is a FlatPulseMachine bank without node.FlatBatchMachine.
type flatPlainOnly struct{ n int }

func (b flatPlainOnly) Len() int                                              { return b.n }
func (b flatPlainOnly) Init(int, node.PulseEmitter)                           {}
func (b flatPlainOnly) OnMsg(int, pulse.Port, pulse.Pulse, node.PulseEmitter) {}
func (b flatPlainOnly) Ready(int, pulse.Port) bool                            { return true }
func (b flatPlainOnly) Status(int) node.Status                                { return node.Status{} }

// TestBatchUnsupported pins the construction-time rejections: machines
// without the batch interfaces (pointer and flat, sequential and
// sharded) and the fault plane all fail with ErrBatchUnsupported.
func TestBatchUnsupported(t *testing.T) {
	topo, err := ring.Oriented(4)
	if err != nil {
		t.Fatal(err)
	}
	plainMachines := []node.PulseMachine{plainOnly{}, plainOnly{}, plainOnly{}, plainOnly{}}
	if _, err := sim.New(topo, plainMachines, sim.Canonical{}, sim.WithBatching()); !errors.Is(err, sim.ErrBatchUnsupported) {
		t.Fatalf("non-BatchMachine pointer bank: got %v, want ErrBatchUnsupported", err)
	}
	if _, err := sim.NewFlat(topo, flatPlainOnly{n: 4}, sim.Canonical{}, sim.WithBatching()); !errors.Is(err, sim.ErrBatchUnsupported) {
		t.Fatalf("non-FlatBatchMachine bank: got %v, want ErrBatchUnsupported", err)
	}
	mk := sim.StockSharded(1)["canonical"]
	if _, err := sim.NewSharded(topo, plainMachines, 2, mk, sim.WithShardBatching()); !errors.Is(err, sim.ErrBatchUnsupported) {
		t.Fatalf("sharded non-BatchMachine bank: got %v, want ErrBatchUnsupported", err)
	}
	if _, err := sim.NewShardedFlat(topo, flatPlainOnly{n: 4}, 2, mk, sim.WithShardBatching()); !errors.Is(err, sim.ErrBatchUnsupported) {
		t.Fatalf("sharded non-FlatBatchMachine bank: got %v, want ErrBatchUnsupported", err)
	}

	ms, err := core.Alg1Machines(topo, ring.ConsecutiveIDs(4))
	if err != nil {
		t.Fatal(err)
	}
	plane, err := fault.New(1, fault.Config{Nodes: 4, Classes: fault.AllClasses})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(topo, ms, sim.Canonical{},
		sim.WithFaultPlane[pulse.Pulse](plane), sim.WithBatching()); !errors.Is(err, sim.ErrBatchUnsupported) {
		t.Fatalf("fault plane + batching: got %v, want ErrBatchUnsupported", err)
	}
}

// TestBatchedDeliverRejected pins the driving contract: a batched
// simulation's queues hold counted runs, so the pulse-by-pulse Deliver
// entry point refuses to run.
func TestBatchedDeliverRejected(t *testing.T) {
	topo, err := ring.Oriented(4)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg1Machines(topo, ring.ConsecutiveIDs(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sim.Canonical{}, sim.WithBatching())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if err := s.InitNode(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Deliver(s.Deliverable()[0]); err == nil {
		t.Fatal("Deliver succeeded on a batched simulation")
	}
}

// TestBatchedRunAllocs asserts the batch fast path stays allocation-free
// per run: a full n=64 Algorithm 2 election (8256 pulses) over a flat
// bank with batching on must fit construction plus the entire run in
// the same 1000-allocation envelope the plain engine meets — which only
// holds if batch transitions, counted-run queue operations, and the
// reusable run emitter allocate nothing as the run progresses.
func TestBatchedRunAllocs(t *testing.T) {
	const n = 64
	run := func() {
		topo, err := ring.Oriented(n)
		if err != nil {
			t.Fatal(err)
		}
		ids := ring.ConsecutiveIDs(n)
		bank, err := core.NewFlatAlg2(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.NewFlat(topo, bank, sim.Canonical{}, sim.WithBatching())
		if err != nil {
			t.Fatal(err)
		}
		pred := core.PredictedAlg2Pulses(n, ring.MaxID(ids))
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sent != pred {
			t.Fatalf("sent %d pulses, want %d", res.Sent, pred)
		}
	}
	allocs := testing.AllocsPerRun(5, run)
	if allocs > 1000 {
		t.Fatalf("construction + batched run allocated %.0f objects, want <= 1000 (batch path must not allocate)", allocs)
	}
}
