package sim

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// The batch fast path of the sharded engine.
//
// Batching composes with sharding exactly because both are built on the
// same invariant: a channel's frozen prefix is fully described by pulse
// counts and sequence numbers. During an epoch an arc hands a channel's
// entire frozen pulse count to OnPulses as the run budget; the consumed
// prefix is popped, emissions enter the wire as counted runs under
// provisional sequence numbers (the run's first pulse takes
// boundary + sendIdx + 1, the rest follow contiguously), and the
// barrier's arc-major renumbering shifts whole runs the way it shifts
// single sends. Runs never straddle an epoch boundary — frozen entries
// were all renumbered at the previous barrier and pushRun's mergeFloor
// keeps this epoch's provisional pulses out of frozen tails — so the
// frozen budget, the renumber split, and the re-freeze all work on
// whole entries.
//
// Equivalence story, composed: the sharded batched execution expands
// (run by run) to a sharded pulse-by-pulse execution, which PR 8's
// argument maps to a sequential execution; BatchReferenceRun replays
// the expansion directly on the plain sequential engine and the
// differential tests assert event-for-event agreement.

// WithShardBatching enables the pulse-run batch fast path on the
// sharded engine — sim.WithBatching for arc workers. Pulse-only by
// construction; every machine (or the flat bank) must implement the
// batch interfaces or construction fails with ErrBatchUnsupported.
func WithShardBatching() ShardOption[pulse.Pulse] {
	return func(s *Sharded[pulse.Pulse]) { s.batch = true }
}

// setupShardBatch validates and wires the batch fast path after options
// ran, resolving the batch-capable bank exactly as the sequential
// engine does.
func (s *Sharded[M]) setupShardBatch() error {
	if !s.batch {
		return nil
	}
	bms, fbm, err := resolveBatch[M](s.machines, s.flat)
	if err != nil {
		return err
	}
	s.bms, s.fbm = bms, fbm
	return nil
}

// deliverRun is the arc worker's batch delivery: the frozen pulse count
// of channel c — not the whole queue; this epoch's own emissions are
// invisible to every scheduler and every transition — is the run budget
// handed to OnPulses.
func (a *shardArc[M]) deliverRun(c int) {
	s := a.s
	k, p := ChanNode(c), ChanPort(c)
	avail := frozenPulses(&s.queues[c], a.boundary)
	a.runEm.buf = a.runEm.buf[:0]
	var consumed uint64
	if s.fbm != nil {
		consumed = s.fbm.OnPulses(k, p, avail, &a.runEm)
	} else {
		consumed = s.bms[k].OnPulses(p, avail, &a.runEm)
	}
	if consumed == 0 || consumed > avail {
		a.err = fmt.Errorf("sim: batch transition at node %d consumed %d of %d frozen pulses", k, consumed, avail)
		return
	}
	s.queues[c].popPulses(consumed)
	a.deliverE += consumed
	a.localSteps += consumed
	a.runsE++
	if consumed > 1 {
		a.coalescedE++
	}
	var ev *Event
	if len(s.obs) > 0 {
		a.events = append(a.events, Event{Kind: EvDeliver, Node: k, Port: p,
			Dir: s.chanDir[c], Count: consumed})
		ev = &a.events[len(a.events)-1]
	}
	if err := a.flushRuns(k, consumed, ev); err != nil {
		a.err = err
		return
	}
	a.afterHandler(k, ev)
}

// flushRuns is the arc's flushSends for a batch transition: clockwise
// runs first, each run numbered by the arc's running send index
// (provisional first-pulse sequence boundary + sendIdx + 1, exactly the
// numbers the expanded pulse-by-pulse epoch assigns, because uniform
// run emissions are per-channel contiguous). Intra-arc runs enqueue
// immediately; cross-arc runs are buffered as counted border sends.
func (a *shardArc[M]) flushRuns(from int, consumed uint64, ev *Event) error {
	s := a.s
	buf := a.runEm.buf
	if err := checkRunUniformity(buf, consumed); err != nil {
		return err
	}
	var zero M
	for pass := 0; pass < 2; pass++ {
		want := pulse.CW
		if pass == 1 {
			want = pulse.CCW
		}
		for _, pr := range buf {
			out := chanID(from, pr.port)
			if s.outDir[out] != want {
				continue
			}
			c := s.peerCh[out]
			to := ChanNode(c)
			first := a.boundary + a.sendIdx + 1
			a.sendIdx += pr.n
			if to >= a.lo && to < a.hi {
				if s.terminated[to] {
					return fmt.Errorf("%w: node %d sent %s toward node %d",
						ErrPostTerminationSend, from, want, to)
				}
				s.queues[c].pushRun(entry[M]{seq: first, cnt: pr.n, msg: zero}, a.boundary)
				a.markDirty(c)
			} else {
				a.border = append(a.border, borderSend[M]{
					idx: first - a.boundary, cnt: pr.n,
					ch: int32(c), from: int32(from), dir: want, msg: zero,
				})
			}
			a.sentE += pr.n
			if want == pulse.CW {
				a.sentCWE += pr.n
			} else {
				a.sentCCWE += pr.n
			}
			if ev != nil {
				ev.Sends = append(ev.Sends, SendRec{
					From: from, Port: pr.port, Dir: want,
					To:    ring.Endpoint{Node: to, Port: ChanPort(c)},
					Count: pr.n,
				})
			}
		}
	}
	a.runEm.buf = a.runEm.buf[:0]
	return nil
}

// RunsCoalesced reports the batch fast path's win so far, as
// Sim.RunsCoalesced: batch transitions executed, and how many of those
// consumed more than one pulse. Accurate at barriers.
func (s *Sharded[M]) RunsCoalesced() (transitions, multi uint64) { return s.runs, s.coalesced }

// ProgressRuns is the concurrent-reader twin of RunsCoalesced for
// progress reporters: safe to call from another goroutine while Run
// executes, updated once per epoch barrier. Both are zero without
// WithShardBatching.
func (s *Sharded[M]) ProgressRuns() (transitions, multi uint64) {
	return s.progRuns.Load(), s.progCoalesced.Load()
}

// resolveBatch resolves the batch-capable view of a machine bank:
// either every pointer machine implements node.BatchMachine or the flat
// bank implements node.FlatBatchMachine. Shared by the sequential and
// sharded constructors so both reject unsupported banks identically.
func resolveBatch[M any](machines []node.Machine[M], flat node.FlatMachine[M]) ([]node.BatchMachine, node.FlatBatchMachine, error) {
	if flat != nil {
		fbm, ok := any(flat).(node.FlatBatchMachine)
		if !ok {
			return nil, nil, fmt.Errorf("%w: bank %T does not implement node.FlatBatchMachine", ErrBatchUnsupported, flat)
		}
		return nil, fbm, nil
	}
	bms := make([]node.BatchMachine, len(machines))
	for k, m := range machines {
		bm, ok := any(m).(node.BatchMachine)
		if !ok {
			return nil, nil, fmt.Errorf("%w: machine %d (%T) does not implement node.BatchMachine", ErrBatchUnsupported, k, m)
		}
		bms[k] = bm
	}
	return bms, nil, nil
}
