package sim

import (
	"errors"
	"fmt"
)

// The batched differential's oracle, in two halves:
//
//   - BatchReferenceRun replays the schedule a batched run took — its
//     observer event stream — on a fresh plain pulse-by-pulse Sim,
//     expanding every batch transition into its Count single deliveries
//     of the same channel. The replay re-validates everything the plain
//     engine validates (Ready gating, termination checks, queue
//     occupancy), so it only completes if the batched schedule was an
//     admissible pulse-by-pulse schedule.
//
//   - ExpandBatchEvents expands the batched event stream itself into
//     the per-pulse stream that admissible execution must produce.
//
// The batched differential tests run both and assert the expansion
// equals, event for event, what the replay's observer records — which
// is exactly the claim that every batch transition is equivalent to
// delivering its run pulse by pulse on the sequential engine. Both
// engines (sequential batched and sharded batched) are checked against
// the same oracle.

// BatchReferenceRun replays a batched run's event schedule on s, which
// must be a freshly constructed plain (non-batched) simulation of the
// same topology and machine bank. EvInit entries become InitNode calls
// and EvDeliver entries become Count (0 meaning 1) consecutive Deliver
// calls on the recorded channel. It returns the replay's Result; the
// caller's observers on s see the expanded pulse-by-pulse events.
func BatchReferenceRun[M any](s *Sim[M], schedule []Event) (Result, error) {
	if s.batch {
		return s.Result(), errors.New("sim: the batch reference must be a plain pulse-by-pulse simulation")
	}
	for i := range schedule {
		ev := &schedule[i]
		switch ev.Kind {
		case EvInit:
			if err := s.InitNode(ev.Node); err != nil {
				return s.Result(), err
			}
		case EvDeliver:
			c := chanID(ev.Node, ev.Port)
			n := ev.Count
			if n == 0 {
				n = 1
			}
			for j := uint64(0); j < n; j++ {
				if err := s.Deliver(c); err != nil {
					return s.Result(), err
				}
			}
		default:
			return s.Result(), fmt.Errorf("sim: unknown event kind %d in batch schedule", ev.Kind)
		}
	}
	return s.Result(), nil
}

// ExpandBatchEvents expands a batched observer stream into the
// pulse-by-pulse stream the equivalent plain execution produces: a
// batch transition of Count pulses becomes Count consecutive
// single-delivery events at steps Step..Step+Count-1, each carrying the
// per-pulse share of the transition's emissions (the BatchMachine
// contract makes multi-pulse transitions emission-uniform, so the share
// is exact), and counted send records become repeated single sends.
// Expanded events have Count 0 everywhere, the plain engine's encoding.
// It fails on streams violating the emission-uniformity contract.
func ExpandBatchEvents(evs []Event) ([]Event, error) {
	out := make([]Event, 0, len(evs))
	for i := range evs {
		ev := &evs[i]
		m := ev.Count
		if m == 0 {
			m = 1
		}
		if m == 1 {
			cp := *ev
			cp.Count = 0
			cp.Sends = expandSends(nil, ev.Sends)
			out = append(out, cp)
			continue
		}
		if len(ev.Sends) > 1 {
			return nil, fmt.Errorf("sim: batch event %d consumed %d pulses but emitted on %d ports", i, m, len(ev.Sends))
		}
		var per uint64
		var rec SendRec
		if len(ev.Sends) == 1 {
			rec = ev.Sends[0]
			n := rec.Count
			if n == 0 {
				n = 1
			}
			if n%m != 0 {
				return nil, fmt.Errorf("sim: batch event %d consumed %d pulses but emitted a non-uniform run of %d", i, m, n)
			}
			per = n / m
			rec.Count = 0
		}
		for j := uint64(0); j < m; j++ {
			cp := *ev
			cp.Count = 0
			cp.Step = ev.Step + j
			cp.Sends = nil
			for r := uint64(0); r < per; r++ {
				cp.Sends = append(cp.Sends, rec)
			}
			out = append(out, cp)
		}
	}
	return out, nil
}

// expandSends appends each record count-many times with the plain
// engine's zero Count.
func expandSends(dst []SendRec, sends []SendRec) []SendRec {
	for _, rec := range sends {
		n := rec.Count
		if n == 0 {
			n = 1
		}
		rec.Count = 0
		for j := uint64(0); j < n; j++ {
			dst = append(dst, rec)
		}
	}
	return dst
}
