package sim_test

import (
	"fmt"
	"testing"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/sim"
)

// floodProbe generates a burst of traffic so every scheduler has real
// choices to make: each node sends two pulses per direction at init and
// relays the first few arrivals.
func floodMachines(n int) []node.PulseMachine {
	ms := make([]node.PulseMachine, n)
	for k := 0; k < n; k++ {
		pr := &probe{}
		count := 0
		pr.onInit = func(e node.PulseEmitter) {
			e.Send(pulse.Port0, pulse.Pulse{})
			e.Send(pulse.Port1, pulse.Pulse{})
			e.Send(pulse.Port1, pulse.Pulse{})
		}
		pr.onMsg = func(p pulse.Port, e node.PulseEmitter) {
			count++
			if count <= 4 {
				e.Send(p.Opposite(), pulse.Pulse{})
			}
		}
		ms[k] = pr
	}
	return ms
}

// TestAllStockSchedulersDrainTheNetwork: every stock scheduler reaches
// quiescence on the same workload with identical send/delivery totals
// (totals are schedule-independent for this machine).
func TestAllStockSchedulersDrainTheNetwork(t *testing.T) {
	const n = 4
	topo := mustTopo(t, n)
	var wantSent uint64
	for name, sched := range sim.Stock(9) {
		name, sched := name, sched
		t.Run(name, func(t *testing.T) {
			s, err := sim.New(topo, floodMachines(n), sched)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(10000)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Quiescent {
				t.Fatal("not quiescent")
			}
			if res.Sent != res.Delivered {
				t.Fatalf("sent %d != delivered %d", res.Sent, res.Delivered)
			}
			if wantSent == 0 {
				wantSent = res.Sent
			} else if res.Sent != wantSent {
				t.Errorf("sent %d, other schedulers sent %d", res.Sent, wantSent)
			}
		})
	}
}

// schedOrder records the delivery order a scheduler produces on the flood
// workload.
func schedOrder(t *testing.T, sched sim.Scheduler) string {
	t.Helper()
	topo := mustTopo(t, 4)
	var order []int
	obs := sim.ObserverFunc[pulse.Pulse](func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
		if e.Kind == sim.EvDeliver {
			order = append(order, 2*e.Node+int(e.Port))
		}
		return nil
	})
	s, err := sim.New(topo, floodMachines(4), sched, sim.WithObserver[pulse.Pulse](obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprint(order)
}

// TestHashDelayDeterministicAndSeedSensitive: fixed seed reproduces the
// schedule; different seeds genuinely differ.
func TestHashDelayDeterministicAndSeedSensitive(t *testing.T) {
	a := schedOrder(t, sim.NewHashDelay(5))
	b := schedOrder(t, sim.NewHashDelay(5))
	c := schedOrder(t, sim.NewHashDelay(6))
	if a != b {
		t.Error("same-seed HashDelay runs differ")
	}
	if a == c {
		t.Error("different-seed HashDelay runs identical (suspicious)")
	}
}

// TestSchedulersDiffer: the stock schedulers are not all secretly the same
// policy — at least three distinct delivery orders appear on the flood
// workload.
func TestSchedulersDiffer(t *testing.T) {
	orders := map[string]string{}
	for name, sched := range sim.Stock(3) {
		orders[schedOrder(t, sched)] = name
	}
	if len(orders) < 3 {
		t.Errorf("only %d distinct schedules across the stock set: %v", len(orders), orders)
	}
}

// TestNewestIsLIFOish: on a chain of freshly sent pulses, Newest delivers
// the most recent first.
func TestNewestIsLIFOish(t *testing.T) {
	topo := mustTopo(t, 3)
	// Only node 0 sends: two CW pulses (to node 1), then one CCW (to node 2).
	sender := &probe{onInit: func(e node.PulseEmitter) {
		e.Send(pulse.Port1, pulse.Pulse{})
		e.Send(pulse.Port1, pulse.Pulse{})
		e.Send(pulse.Port0, pulse.Pulse{})
	}}
	var first int
	obs := sim.ObserverFunc[pulse.Pulse](func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
		if e.Kind == sim.EvDeliver && first == 0 {
			first = e.Node
		}
		return nil
	})
	s, err := sim.New(topo, []node.PulseMachine{sender, &probe{}, &probe{}},
		sim.Newest{}, sim.WithObserver[pulse.Pulse](obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	// The CCW pulse to node 2 was sent last (the emitter enqueues CW sends
	// first), so Newest must deliver it first.
	if first != 2 {
		t.Errorf("first delivery went to node %d, want 2", first)
	}
}

// TestViewAccessors: scheduler-visible metadata is consistent.
func TestViewAccessors(t *testing.T) {
	topo := mustTopo(t, 2)
	sender := &probe{onInit: func(e node.PulseEmitter) { e.Send(pulse.Port1, pulse.Pulse{}) }}
	var sawDir pulse.Direction
	var sawStep uint64
	inspect := inspectSched{f: func(v sim.View) int {
		ds := v.Deliverable()
		sawDir = v.Direction(ds[0])
		sawStep = v.Step()
		if v.QueueLen(ds[0]) < 1 || v.HeadSeq(ds[0]) == 0 {
			t.Error("queue metadata inconsistent")
		}
		return ds[0]
	}}
	s, err := sim.New(topo, []node.PulseMachine{sender, &probe{}}, inspect)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if sawDir != pulse.CW {
		t.Errorf("direction = %v, want CW", sawDir)
	}
	if sawStep == 0 {
		t.Error("step never observed")
	}
}

type inspectSched struct{ f func(sim.View) int }

func (i inspectSched) Next(v sim.View) int { return i.f(v) }

// TestSimAccessors: Machine/Topology/Step are exposed for observers.
func TestSimAccessors(t *testing.T) {
	topo := mustTopo(t, 2)
	ms := []node.PulseMachine{&probe{}, &probe{}}
	s, err := sim.New(topo, ms, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine(0) != ms[0] {
		t.Error("Machine accessor broken")
	}
	if s.Topology().N() != 2 {
		t.Error("Topology accessor broken")
	}
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if s.Step() != 2 {
		t.Errorf("Step = %d, want 2 (two inits)", s.Step())
	}
}
