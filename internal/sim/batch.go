package sim

import (
	"fmt"

	"coleader/internal/pulse"
)

// The pulse-run batch fast path.
//
// A content-oblivious channel's entire state is its pulse count, so the
// k pulses queued on a channel are one integer — and a machine whose
// transitions are counter arithmetic (node.BatchMachine) can consume a
// run of them in O(1) instead of k scheduler steps. WithBatching turns
// this on: channel queues store counted runs (entry.cnt), the delivery
// loop hands whole runs to OnPulses, and emissions travel as counted
// runs too. This is what breaks the Θ(n·ID_max) delivery wall: the
// pulse totals (Sent, Delivered, SentCW/CCW, Steps) are conserved
// exactly — batching changes how many pulses one transition moves,
// never how many pulses move.
//
// Equivalence: a batched execution realizes the pulse-by-pulse schedule
// obtained by expanding each batch transition into its consumed
// single-pulse deliveries back to back. The sequence numbers the
// batched engine assigns to an emitted run are exactly the numbers the
// expanded execution assigns (the BatchMachine contract makes
// multi-pulse transitions emission-uniform on a single port, so the
// expanded interleaving is per-channel contiguous). BatchReferenceRun
// replays that expanded schedule on a plain sequential simulation, and
// the batched differential tests assert event-for-event equality.
//
// The fast path stays opt-in so the plain sequential engine remains the
// reference implementation everything else is verified against.

// WithBatching enables the pulse-run batch fast path. It is pulse-only
// by construction (the option applies to Sim[pulse.Pulse]); every
// machine must implement node.BatchMachine — a flat bank,
// node.FlatBatchMachine — and the fault plane is rejected (batching is
// model-exact). Construction fails with ErrBatchUnsupported otherwise.
func WithBatching() Option[pulse.Pulse] {
	return func(s *Sim[pulse.Pulse]) { s.batch = true }
}

// setupBatch validates and wires the batch fast path after options ran.
func (s *Sim[M]) setupBatch() error {
	if !s.batch {
		return nil
	}
	if s.plane != nil {
		return fmt.Errorf("%w: the batch fast path is model-exact; fault injection needs the pulse-by-pulse engine", ErrBatchUnsupported)
	}
	bms, fbm, err := resolveBatch[M](s.machines, s.flat)
	if err != nil {
		return err
	}
	s.bms, s.fbm = bms, fbm
	return nil
}

// pendingRun is one buffered counted emission of a batch transition.
type pendingRun struct {
	port pulse.Port
	n    uint64
}

// runEmitter is the node.BatchEmitter handed to OnPulses: it buffers
// counted runs so they take effect atomically when the transition
// returns, mirroring the plain emitter. It is reused across transitions
// (reset by the delivery loop), keeping the fast path allocation-free.
type runEmitter struct {
	buf []pendingRun
}

// Send implements node.Emitter: a single pulse is a run of one.
func (e *runEmitter) Send(p pulse.Port, _ pulse.Pulse) {
	if !p.Valid() {
		panic(fmt.Sprintf("sim: send on invalid port %d", p))
	}
	e.buf = append(e.buf, pendingRun{port: p, n: 1})
}

// SendRun implements node.BatchEmitter.
func (e *runEmitter) SendRun(p pulse.Port, n uint64) {
	if !p.Valid() {
		panic(fmt.Sprintf("sim: send on invalid port %d", p))
	}
	if n == 0 {
		return
	}
	e.buf = append(e.buf, pendingRun{port: p, n: n})
}

// checkRunUniformity enforces the BatchMachine emission contract the
// sequence numbering relies on: a transition that consumed more than
// one pulse must emit on at most one port, with a per-pulse-uniform
// total. Violations are machine bugs; the engine aborts rather than
// silently mis-number the wire.
func checkRunUniformity(buf []pendingRun, consumed uint64) error {
	if consumed <= 1 || len(buf) == 0 {
		return nil
	}
	if len(buf) > 1 {
		return fmt.Errorf("sim: batch transition of %d pulses emitted on %d ports; the BatchMachine contract allows one", consumed, len(buf))
	}
	if buf[0].n%consumed != 0 {
		return fmt.Errorf("sim: batch transition of %d pulses emitted a non-uniform run of %d", consumed, buf[0].n)
	}
	return nil
}

// enqueueRun places a counted run on channel c traveling dir, assigning
// it the next n global sequence numbers and maintaining the counters
// and the deliverable set — enqueue, vectorized.
func (s *Sim[M]) enqueueRun(c int, n uint64, dir pulse.Direction) {
	var zero M
	wasEmpty := s.queues[c].n == 0
	s.queues[c].pushRun(entry[M]{seq: s.seq + 1, cnt: n, msg: zero}, 0)
	s.seq += n
	s.sent += n
	if dir == pulse.CW {
		s.sentCW += n
	} else {
		s.sentCCW += n
	}
	if wasEmpty {
		s.refreshChan(c)
	} else if len(s.aux) > 0 && s.deliv.get(c) {
		// Head unchanged; re-register for count-keyed heaps only (the
		// head-keyed ones dedup this push).
		s.auxPush(c, s.queues[c].front().seq)
	}
}

// flushRuns is flushSends for a batch transition: clockwise runs first
// (the same Definition 21 tie-break — run emissions of one transition
// are per-channel contiguous, so ordering whole runs orders every
// expanded pulse).
func (s *Sim[M]) flushRuns(from int, consumed uint64, ev *Event) error {
	buf := s.runEm.buf
	if err := checkRunUniformity(buf, consumed); err != nil {
		return err
	}
	for pass := 0; pass < 2; pass++ {
		want := pulse.CW
		if pass == 1 {
			want = pulse.CCW
		}
		for _, pr := range buf {
			out := chanID(from, pr.port)
			if s.outDir[out] != want {
				continue
			}
			to := s.peer[out]
			if s.termAt[to.Node] != 0 {
				return fmt.Errorf("%w: node %d sent %s toward node %d",
					ErrPostTerminationSend, from, want, to.Node)
			}
			s.enqueueRun(s.peerCh[out], pr.n, want)
			if ev != nil {
				ev.Sends = append(ev.Sends, SendRec{From: from, Port: pr.port, Dir: want, To: to, Count: pr.n})
			}
		}
	}
	s.runEm.buf = s.runEm.buf[:0]
	return nil
}

// deliverRun is the batch fast path's Deliver: hand the channel's whole
// queued pulse count to the receiver's OnPulses, pop what it consumed,
// and account for the consumed pulses as the expanded pulse-by-pulse
// execution would (step, delivered, and sequence numbers all advance by
// pulse counts, so Result totals are engine-invariant).
func (s *Sim[M]) deliverRun(c int) error {
	if s.failed != nil {
		return s.failed
	}
	if c < 0 || c >= len(s.queues) || s.queues[c].n == 0 {
		return fmt.Errorf("sim: deliver on empty or invalid channel %d", c)
	}
	k, p := ChanNode(c), ChanPort(c)
	switch {
	case !s.inited[k]:
		return fmt.Errorf("sim: deliver to uninitialized node %d", k)
	case s.termAt[k] != 0:
		return s.fail(fmt.Errorf("%w: delivery attempted to node %d", ErrPostTerminationSend, k))
	case !s.mReady(k, p):
		return fmt.Errorf("sim: deliver on non-ready port %s of node %d", p, k)
	}
	avail := s.queues[c].tot
	s.runEm.buf = s.runEm.buf[:0]
	var consumed uint64
	if s.fbm != nil {
		consumed = s.fbm.OnPulses(k, p, avail, &s.runEm)
	} else {
		consumed = s.bms[k].OnPulses(p, avail, &s.runEm)
	}
	if consumed == 0 || consumed > avail {
		return s.fail(fmt.Errorf("sim: batch transition at node %d consumed %d of %d queued pulses", k, consumed, avail))
	}
	s.queues[c].popPulses(consumed)
	s.delivered += consumed
	s.step += consumed
	s.runs++
	if consumed > 1 {
		s.coalesced++
	}
	var ev *Event
	if len(s.obs) > 0 {
		ev = &Event{Kind: EvDeliver, Step: s.step - consumed + 1, Node: k, Port: p,
			Dir: s.chanDir[c], Count: consumed}
	}
	if err := s.flushRuns(k, consumed, ev); err != nil {
		return s.fail(err)
	}
	if err := s.afterHandler(k, ev); err != nil {
		return s.fail(err)
	}
	return nil
}
