package sim

import (
	"coleader/internal/pulse"
)

// auxHeap is one scheduler-requested priority heap over deliverable
// channel heads (see HeapHinted). Like the oldest-message heap it is
// lazily validated: entries are checked against the live queues on
// inspection and stale ones dropped, and mark deduplicates pushes so
// each (channel, head-seq) pair is enqueued at most once per heap.
type auxHeap struct {
	kind HeapKind
	dir  pulse.Direction                // HeapDirOldest: covered direction
	rank func(c int, seq uint64) uint64 // HeapRank: key function

	h    []auxEntry
	mark []uint64 // last seq pushed per channel; 0 = none
}

type auxEntry struct {
	key uint64
	seq uint64
	c   int32
}

// auxLess orders candidates by key, breaking ties toward the smaller
// channel id — exactly the winner of the ascending Deliverable() scan
// the heap replaces, so heap and scan pick identically even if two
// messages hash to the same rank. (For HeapNewest and HeapDirOldest the
// key is a sequence number or its complement, which is unique, so the
// tie-break never fires there.)
func auxLess(a, b auxEntry) bool {
	return a.key < b.key || (a.key == b.key && a.c < b.c)
}

// installHeapHints wires the aux heaps the scheduler asked for. Called
// from the constructors after options ran, and skipped entirely in
// rescan mode so the rescan reference stays a heap-free oracle: the
// optimized-vs-rescan differential then proves heap picks equal scan
// picks for every hinted scheduler.
func (s *Sim[M]) installHeapHints() {
	hh, ok := s.sched.(HeapHinted)
	if !ok {
		return
	}
	for _, hint := range hh.HeapHints() {
		s.aux = append(s.aux, auxHeap{
			kind: hint.Kind,
			dir:  hint.Dir,
			rank: hint.Rank,
			mark: make([]uint64, len(s.queues)),
		})
	}
}

// auxPush registers the deliverable head (c, seq) in every aux heap
// covering c. It runs from refreshChan alongside the oldest-heap push,
// which maintains the invariant that every currently deliverable
// channel has a valid entry in every direction-matching aux heap.
func (s *Sim[M]) auxPush(c int, seq uint64) {
	for i := range s.aux {
		a := &s.aux[i]
		if a.kind == HeapDirOldest && s.chanDir[c] != a.dir {
			continue
		}
		if a.mark[c] == seq {
			continue
		}
		a.mark[c] = seq
		var key uint64
		switch a.kind {
		case HeapNewest:
			key = ^seq
		case HeapDirOldest:
			key = seq
		case HeapRank:
			key = a.rank(c, seq)
		}
		a.push(auxEntry{key: key, seq: seq, c: int32(c)})
	}
}

func (a *auxHeap) push(e auxEntry) {
	h := append(a.h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !auxLess(h[i], h[parent]) {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	a.h = h
}

// drop removes the root, clearing its dedup mark if it still owns it.
func (a *auxHeap) drop() {
	h := a.h
	top := h[0]
	if a.mark[top.c] == top.seq {
		a.mark[top.c] = 0
	}
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && auxLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && auxLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	a.h = h
}

// auxBest returns the smallest-key channel of aux heap i that is still
// deliverable with the head it was registered under, dropping stale
// entries on the way. ok is false only when no covered channel is
// deliverable (possible for direction-filtered heaps; for unfiltered
// heaps the push invariant makes ok true whenever anything is
// deliverable at all).
func (s *Sim[M]) auxBest(i int) (int, bool) {
	a := &s.aux[i]
	for len(a.h) > 0 {
		top := a.h[0]
		c := int(top.c)
		if s.deliv.get(c) && s.queues[c].front().seq == top.seq {
			return c, true
		}
		a.drop()
	}
	return 0, false
}

// auxFind locates the aux heap of the given kind (and direction, for
// HeapDirOldest); -1 when the scheduler registered none.
func (s *Sim[M]) auxFind(kind HeapKind, dir pulse.Direction) int {
	for i := range s.aux {
		if s.aux[i].kind == kind && (kind != HeapDirOldest || s.aux[i].dir == dir) {
			return i
		}
	}
	return -1
}
