package sim

import (
	"coleader/internal/pulse"
)

// auxHeap is one scheduler-requested priority heap over deliverable
// channel heads (see HeapHinted). The head-seq-keyed kinds are lazily
// validated, like the oldest-message heap: entries are checked against
// the live queues on inspection and stale ones dropped, and mark
// deduplicates pushes so each (channel, head-seq) pair is enqueued at
// most once per heap. HeapHeaviest is indexed instead: its key (the
// queued-pulse count) changes on every enqueue, which under lazy
// staleness would grow the heap by one junk entry per count move, so
// pos tracks each channel's single entry and key changes are in-place
// sift-up/downs. An indexed entry only goes stale by losing
// deliverability, and is dropped when it surfaces.
type auxHeap struct {
	kind HeapKind
	dir  pulse.Direction                // HeapDirOldest: covered direction
	rank func(c int, seq uint64) uint64 // HeapRank: key function

	h    []auxEntry
	mark []uint64 // lazy kinds: last seq pushed per channel; 0 = none
	pos  []int32  // HeapHeaviest: heap index + 1 per channel; 0 = absent
}

// auxEntry is one heap candidate: ordering key, the head sequence
// number it was registered under (every kind's validity witness), and
// the channel. HeapHeaviest additionally witnesses the queued-pulse
// count through its key (key == ^count), which is stale exactly when
// the count moved — though indexed maintenance updates the entry in
// place on every move, so only deliverability can stale it.
type auxEntry struct {
	key uint64
	seq uint64
	c   int32
}

// less orders candidates by key, breaking ties toward the smaller
// channel id — exactly the winner of the ascending Deliverable() scan
// the heap replaces, so heap and scan pick identically even if two
// messages hash to the same rank. (For HeapNewest and HeapDirOldest the
// key is a sequence number or its complement, which is unique, so the
// tie-break never fires there.) HeapHeaviest keys are queue depths,
// where ties are routine; its scan breaks them toward the oldest head
// first, so the heap does too.
func (a *auxHeap) less(x, y auxEntry) bool {
	if x.key != y.key {
		return x.key < y.key
	}
	if a.kind == HeapHeaviest && x.seq != y.seq {
		return x.seq < y.seq
	}
	return x.c < y.c
}

// installHeapHints wires the aux heaps the scheduler asked for. Called
// from the constructors after options ran, and skipped entirely in
// rescan mode so the rescan reference stays a heap-free oracle: the
// optimized-vs-rescan differential then proves heap picks equal scan
// picks for every hinted scheduler.
func (s *Sim[M]) installHeapHints() {
	hh, ok := s.sched.(HeapHinted)
	if !ok {
		return
	}
	for _, hint := range hh.HeapHints() {
		a := auxHeap{
			kind: hint.Kind,
			dir:  hint.Dir,
			rank: hint.Rank,
		}
		if hint.Kind == HeapHeaviest {
			a.pos = make([]int32, len(s.queues))
		} else {
			a.mark = make([]uint64, len(s.queues))
		}
		s.aux = append(s.aux, a)
	}
}

// auxPush registers the deliverable head (c, seq) in every aux heap
// covering c. It runs from refreshChan alongside the oldest-heap push —
// and, for the count-keyed HeapHeaviest, also from the enqueue paths
// (an enqueue onto a non-empty deliverable channel changes its count
// but not its head) — which maintains the invariant that every
// currently deliverable channel has a valid entry in every
// direction-matching aux heap.
func (s *Sim[M]) auxPush(c int, seq uint64) {
	for i := range s.aux {
		a := &s.aux[i]
		if a.kind == HeapDirOldest && s.chanDir[c] != a.dir {
			continue
		}
		var key uint64
		switch a.kind {
		case HeapNewest:
			key = ^seq
		case HeapDirOldest:
			key = seq
		case HeapRank:
			key = a.rank(c, seq)
		case HeapHeaviest:
			a.fix(c, ^s.queues[c].tot, seq)
			continue
		}
		if a.mark[c] == seq {
			continue
		}
		if len(a.h) >= 2*len(s.queues)+64 {
			// A lazy heap's stale entries drain only when they surface at
			// the top; a scheduler that stops consulting a kind (or
			// consults another kind first) would otherwise let them pile
			// up across a long run. Rebuilding from the live candidate
			// set bounds the heap at O(channels), amortized O(1) per push.
			s.auxCompact(a)
			if a.mark[c] == seq {
				continue
			}
		}
		a.mark[c] = seq
		a.push(auxEntry{key: key, seq: seq, c: int32(c)})
	}
}

// fix is the indexed kinds' registration: insert channel c if absent,
// otherwise rewrite its single entry's key and seq in place and restore
// heap order around it. Exactly one entry per channel ever exists, so
// the heap never grows past the channel count and auxBest never drains
// key-stale junk.
func (a *auxHeap) fix(c int, key, seq uint64) {
	if i := a.pos[c]; i != 0 {
		e := &a.h[i-1]
		if e.key == key && e.seq == seq {
			return
		}
		e.key, e.seq = key, seq
		if j := int(i - 1); j > 0 && a.less(a.h[j], a.h[(j-1)/2]) {
			a.siftUp(j)
		} else {
			a.siftDown(j)
		}
		return
	}
	a.h = append(a.h, auxEntry{key: key, seq: seq, c: int32(c)})
	a.pos[c] = int32(len(a.h))
	a.siftUp(len(a.h) - 1)
}

// siftUp restores heap order from index i toward the root, maintaining
// pos for indexed kinds.
func (a *auxHeap) siftUp(i int) {
	h := a.h
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(h[i], h[parent]) {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		if a.pos != nil {
			a.pos[h[i].c] = int32(i + 1)
			a.pos[h[parent].c] = int32(parent + 1)
		}
		i = parent
	}
}

// siftDown restores heap order from index i toward the leaves,
// maintaining pos for indexed kinds.
func (a *auxHeap) siftDown(i int) {
	h := a.h
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && a.less(h[l], h[small]) {
			small = l
		}
		if r < len(h) && a.less(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		if a.pos != nil {
			a.pos[h[i].c] = int32(i + 1)
			a.pos[h[small].c] = int32(small + 1)
		}
		i = small
	}
}

// auxCompact rebuilds a lazy aux heap from exactly its live candidate
// set — every covered deliverable channel's current head — resetting
// the dedup marks to match. Afterward auxPush's dedup check correctly
// skips candidates the rebuild already registered. Indexed kinds never
// need it: fix keeps them at one entry per channel.
func (s *Sim[M]) auxCompact(a *auxHeap) {
	h := a.h[:0]
	for i := range a.mark {
		a.mark[i] = 0
	}
	for c := range s.queues {
		if !s.deliv.get(c) {
			continue
		}
		if a.kind == HeapDirOldest && s.chanDir[c] != a.dir {
			continue
		}
		seq := s.queues[c].front().seq
		var key uint64
		switch a.kind {
		case HeapNewest:
			key = ^seq
		case HeapDirOldest:
			key = seq
		case HeapRank:
			key = a.rank(c, seq)
		}
		a.mark[c] = seq
		h = append(h, auxEntry{key: key, seq: seq, c: int32(c)})
	}
	a.h = h
	for i := len(h)/2 - 1; i >= 0; i-- {
		a.siftDown(i)
	}
}

func (a *auxHeap) push(e auxEntry) {
	a.h = append(a.h, e)
	a.siftUp(len(a.h) - 1)
}

// drop removes the root, clearing its dedup mark or position if it
// still owns it.
func (a *auxHeap) drop() {
	h := a.h
	top := h[0]
	if a.pos != nil {
		a.pos[top.c] = 0
	} else if a.mark[top.c] == top.seq {
		a.mark[top.c] = 0
	}
	last := len(h) - 1
	h[0] = h[last]
	a.h = h[:last]
	if last > 0 {
		if a.pos != nil {
			a.pos[h[0].c] = 1
		}
		a.siftDown(0)
	}
}

// auxBest returns the smallest-key channel of aux heap i that is still
// deliverable with the head it was registered under, dropping stale
// entries on the way. ok is false only when no covered channel is
// deliverable (possible for direction-filtered heaps; for unfiltered
// heaps the push invariant makes ok true whenever anything is
// deliverable at all).
func (s *Sim[M]) auxBest(i int) (int, bool) {
	a := &s.aux[i]
	for len(a.h) > 0 {
		top := a.h[0]
		c := int(top.c)
		if s.deliv.get(c) && s.queues[c].front().seq == top.seq &&
			(a.kind != HeapHeaviest || s.queues[c].tot == ^top.key) {
			return c, true
		}
		a.drop()
	}
	return 0, false
}

// auxFind locates the aux heap of the given kind (and direction, for
// HeapDirOldest); -1 when the scheduler registered none.
func (s *Sim[M]) auxFind(kind HeapKind, dir pulse.Direction) int {
	for i := range s.aux {
		if s.aux[i].kind == kind && (kind != HeapDirOldest || s.aux[i].dir == dir) {
			return i
		}
	}
	return -1
}
