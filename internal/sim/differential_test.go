package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// TestOptimizedMatchesRescanReference is the scheduler-trace differential
// test for the incremental deliverable set: every stock scheduler, across
// seeds and all three algorithms, must produce an event-for-event
// identical trace (and identical Result) on the optimized simulator and
// on the retained naive-rescan reference (WithRescanDeliverable). The
// reference recomputes the deliverable set by full scan each step and
// disables the oldest-message heap, so agreement here is evidence the
// incremental set and heap change no scheduling decision, only cost.
func TestOptimizedMatchesRescanReference(t *testing.T) {
	type instance struct {
		name     string
		machines func() ([]node.PulseMachine, error)
		topo     func() (ring.Topology, error)
		budget   uint64
	}
	instances := []instance{
		{
			name: "alg1/dup-ids",
			topo: func() (ring.Topology, error) { return ring.Oriented(4) },
			machines: func() ([]node.PulseMachine, error) {
				topo, err := ring.Oriented(4)
				if err != nil {
					return nil, err
				}
				return core.Alg1Machines(topo, []uint64{2, 2, 1, 2})
			},
			budget: 4*core.PredictedAlg1Pulses(4, 2) + 1024,
		},
		{
			name: "alg2/oriented",
			topo: func() (ring.Topology, error) { return ring.Oriented(5) },
			machines: func() ([]node.PulseMachine, error) {
				topo, err := ring.Oriented(5)
				if err != nil {
					return nil, err
				}
				return core.Alg2Machines(topo, []uint64{3, 1, 4, 2, 5})
			},
			budget: 4*core.PredictedAlg2Pulses(5, 5) + 1024,
		},
		{
			name: "alg3/non-oriented",
			topo: func() (ring.Topology, error) { return ring.NonOriented([]bool{true, false, true}) },
			machines: func() ([]node.PulseMachine, error) {
				return core.Alg3Machines(3, []uint64{2, 1, 3}, core.SchemeSuccessor)
			},
			budget: 4*core.PredictedAlg3Pulses(3, 3, core.SchemeSuccessor) + 1024,
		},
	}

	// Scheduler names come from the stock map; instances must be built
	// fresh per run because several schedulers are stateful.
	var schedNames []string
	for name := range sim.Stock(1) {
		schedNames = append(schedNames, name)
	}

	for _, inst := range instances {
		for _, schedName := range schedNames {
			for _, seed := range []int64{1, 2, 7} {
				name := fmt.Sprintf("%s/%s/seed=%d", inst.name, schedName, seed)
				t.Run(name, func(t *testing.T) {
					fast, fastRes, fastErr := runTraced(t, inst.topo, inst.machines, schedName, seed, inst.budget, false)
					ref, refRes, refErr := runTraced(t, inst.topo, inst.machines, schedName, seed, inst.budget, true)
					if (fastErr == nil) != (refErr == nil) ||
						(fastErr != nil && fastErr.Error() != refErr.Error()) {
						t.Fatalf("run errors diverge: optimized %v, reference %v", fastErr, refErr)
					}
					if len(fast) != len(ref) {
						t.Fatalf("trace lengths diverge: optimized %d events, reference %d", len(fast), len(ref))
					}
					for i := range fast {
						if !reflect.DeepEqual(fast[i], ref[i]) {
							t.Fatalf("event %d diverges:\noptimized %+v\nreference %+v", i, fast[i], ref[i])
						}
					}
					if !reflect.DeepEqual(fastRes, refRes) {
						t.Fatalf("results diverge:\noptimized %+v\nreference %+v", fastRes, refRes)
					}
				})
			}
		}
	}
}

// runTraced runs one fresh simulation and returns its full event trace.
func runTraced(t *testing.T,
	mkTopo func() (ring.Topology, error),
	mkMachines func() ([]node.PulseMachine, error),
	schedName string, seed int64, budget uint64, rescan bool,
) ([]sim.Event, sim.Result, error) {
	t.Helper()
	topo, err := mkTopo()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := mkMachines()
	if err != nil {
		t.Fatal(err)
	}
	var events []sim.Event
	opts := []sim.Option[pulse.Pulse]{
		sim.WithObserver[pulse.Pulse](sim.ObserverFunc[pulse.Pulse](
			func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
				cp := *e
				cp.Sends = append([]sim.SendRec(nil), e.Sends...)
				events = append(events, cp)
				return nil
			})),
	}
	if rescan {
		opts = append(opts, sim.WithRescanDeliverable[pulse.Pulse]())
	}
	s, err := sim.New(topo, ms, sim.Stock(seed)[schedName], opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := s.Run(budget)
	return events, res, runErr
}
