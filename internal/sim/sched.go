package sim

import (
	"math/rand"

	"coleader/internal/pulse"
)

// View is the scheduler's window into the simulation: the currently
// deliverable channels plus enough metadata to implement adversaries.
type View interface {
	// Deliverable returns the non-empty set of channels the scheduler may
	// pick from, in ascending channel-id order. Valid until the next step.
	Deliverable() []int
	// HeadSeq returns the global send-order sequence number of channel c's
	// oldest queued message. c must be deliverable.
	HeadSeq(c int) uint64
	// QueueLen returns how many messages are queued on channel c.
	QueueLen(c int) int
	// Direction returns the ring direction traveled by messages on c.
	Direction(c int) pulse.Direction
	// Step returns the number of handler invocations so far.
	Step() uint64
}

// OldestView is an optional fast path a View may provide: the channel
// holding the globally oldest deliverable message in O(log n), backed by
// the simulator's incrementally maintained heap. Sequence numbers are
// unique, so the answer is exactly the channel a min-HeadSeq scan over
// Deliverable() selects — schedulers using it make identical decisions,
// just faster. ok is false when the fast path is unavailable (the rescan
// reference simulator), in which case callers must fall back to the scan.
type OldestView interface {
	OldestDeliverable() (c int, ok bool)
}

// HeapKind selects the ordering of a scheduler aux heap (see HeapHinted).
type HeapKind uint8

// Aux heap orderings.
const (
	// HeapNewest: largest head sequence number first (Newest's pick).
	HeapNewest HeapKind = iota + 1
	// HeapDirOldest: smallest head sequence number among messages
	// traveling a fixed direction (DirBiased's preferred-direction pick).
	HeapDirOldest
	// HeapRank: smallest Rank(channel, head seq) first (HashDelay's pick).
	HeapRank
	// HeapHeaviest: largest queued-pulse count first (Heaviest's pick).
	// Unlike the head-seq-keyed kinds its key changes on every enqueue,
	// so the simulator re-registers the channel from the enqueue path,
	// not just on deliverability transitions.
	HeapHeaviest
)

// HeapHint asks the simulator to maintain one incrementally updated
// priority heap over deliverable channel heads on the scheduler's
// behalf.
type HeapHint struct {
	Kind HeapKind
	Dir  pulse.Direction                // HeapDirOldest only
	Rank func(c int, seq uint64) uint64 // HeapRank only; must be pure
}

// HeapHinted is implemented by schedulers that want aux heaps: the
// simulator consults it once at construction (never in rescan mode, so
// the rescan reference exercises the plain scans) and serves the heaps
// back through the NewestView / DirOldestView / RankedView fast paths.
// A heap-served pick must equal the corresponding Deliverable() scan's
// pick exactly — the optimized-vs-rescan scheduler-trace differential
// asserts this for every stock scheduler.
type HeapHinted interface {
	HeapHints() []HeapHint
}

// NewestView is an optional fast path: the deliverable channel whose
// head has the largest sequence number, in O(log n). ok is false when
// the fast path is unavailable and the caller must scan.
type NewestView interface {
	NewestDeliverable() (c int, ok bool)
}

// DirOldestView is an optional fast path: the deliverable channel with
// the smallest head sequence number among messages traveling d. ok is
// false when the fast path is unavailable (fall back to the scan);
// c = -1 with ok true means the fast path is live and no deliverable
// message travels d at all.
type DirOldestView interface {
	OldestDeliverableDir(d pulse.Direction) (c int, ok bool)
}

// RankedView is an optional fast path: the deliverable channel
// minimizing the rank function the scheduler registered via a HeapRank
// hint, with ties broken toward the smaller channel id (the scan's
// tie-break). ok is false when the fast path is unavailable.
type RankedView interface {
	MinRankDeliverable() (c int, ok bool)
}

// HeaviestView is an optional fast path: the deliverable channel with
// the most queued pulses, ties toward the smaller channel id (the
// scan's tie-break). ok is false when the fast path is unavailable.
type HeaviestView interface {
	HeaviestDeliverable() (c int, ok bool)
}

type view[M any] struct{ s *Sim[M] }

func (v *view[M]) Deliverable() []int              { return v.s.Deliverable() }
func (v *view[M]) HeadSeq(c int) uint64            { return v.s.headSeq(c) }
func (v *view[M]) QueueLen(c int) int              { return v.s.QueueLen(c) }
func (v *view[M]) Direction(c int) pulse.Direction { return v.s.chanDir[c] }
func (v *view[M]) Step() uint64                    { return v.s.step }
func (v *view[M]) OldestDeliverable() (int, bool)  { return v.s.oldestDeliverable() }

func (v *view[M]) NewestDeliverable() (int, bool) {
	if i := v.s.auxFind(HeapNewest, 0); i >= 0 {
		return v.s.auxBest(i)
	}
	return 0, false
}

func (v *view[M]) OldestDeliverableDir(d pulse.Direction) (int, bool) {
	i := v.s.auxFind(HeapDirOldest, d)
	if i < 0 {
		return 0, false
	}
	if c, ok := v.s.auxBest(i); ok {
		return c, true
	}
	return -1, true
}

func (v *view[M]) MinRankDeliverable() (int, bool) {
	if i := v.s.auxFind(HeapRank, 0); i >= 0 {
		return v.s.auxBest(i)
	}
	return 0, false
}

func (v *view[M]) HeaviestDeliverable() (int, bool) {
	if i := v.s.auxFind(HeapHeaviest, 0); i >= 0 {
		return v.s.auxBest(i)
	}
	return 0, false
}

// Scheduler chooses the next delivery. Next is called only when at least
// one channel is deliverable and must return one of View.Deliverable().
// Schedulers embody the asynchronous adversary: every Scheduler realizes
// some legal schedule, and together the stock schedulers probe the corner
// cases (oldest-first, newest-first, direction starvation, randomness).
type Scheduler interface {
	Next(v View) int
}

// Canonical is the scheduler of Definition 21: messages are delivered one
// by one in exactly the order they were sent, with ties among messages
// emitted by the same handler broken in favor of clockwise ones (the
// emitter enqueues CW sends first, so send order realizes the tie-break).
// It is the scheduler under which solitude patterns are defined.
type Canonical struct{}

// Next implements Scheduler.
func (Canonical) Next(v View) int {
	if ov, ok := v.(OldestView); ok {
		if c, ok := ov.OldestDeliverable(); ok {
			return c
		}
	}
	ds := v.Deliverable()
	best := ds[0]
	for _, c := range ds[1:] {
		if v.HeadSeq(c) < v.HeadSeq(best) {
			best = c
		}
	}
	return best
}

// Newest delivers the most recently sent deliverable message first
// (subject to per-channel FIFO): a maximally "unfair" adversary that lets
// old messages linger arbitrarily long.
type Newest struct{}

// Next implements Scheduler.
func (Newest) Next(v View) int {
	if nv, ok := v.(NewestView); ok {
		if c, ok := nv.NewestDeliverable(); ok {
			return c
		}
	}
	ds := v.Deliverable()
	best := ds[0]
	for _, c := range ds[1:] {
		if v.HeadSeq(c) > v.HeadSeq(best) {
			best = c
		}
	}
	return best
}

// HeapHints implements HeapHinted: a max-sequence heap replaces the scan.
func (Newest) HeapHints() []HeapHint { return []HeapHint{{Kind: HeapNewest}} }

// Heaviest delivers from the deliverable channel holding the most
// queued pulses, ties toward the oldest head and then the lowest
// channel id: a bursty adversary under which traffic piles up on one
// link and flushes in a single burst. Serving the deepest backlog is
// self-reinforcing on a relay ring — the flushed run lands on the next
// channel, whose queue is now the deepest — so one ring-sized wave
// sweeps the ring instead of n pulses trickling in lockstep. The
// oldest-head tie-break matters: when every queue is depth one (the
// start of a relay phase), the oldest parked pulse sits upstream of the
// whole backlog in emission order, so starting there sends the sweep
// downstream over every parked pulse and the snowball forms; a naive
// lowest-channel tie-break can seed the sweep downstream of the
// backlog, where relays die before ever meeting a parked pulse. That
// makes Heaviest the schedule under which the pulse-run batch fast path
// (WithBatching) coalesces maximally: canonical's oldest-first pick is
// inherently breadth-first and keeps every queue shallow, which caps
// batching near 3x on Algorithm 2, while Heaviest turns whole backlogs
// into single O(1) transitions. Pulse totals are schedule-invariant, so
// it probes the same Theta(n·ID_max) volume as every other stock
// scheduler.
//
// On the sequential engine the HeapHeaviest hint makes the pick
// O(log n). The sharded engine's arc views expose no count-keyed heap,
// so there Heaviest falls back to an O(deliverable) scan per delivery —
// correct but slow at scale, and the epoch barriers chop runs into
// lockstep singles anyway. Large sharded runs want canonical; heaviest
// is the sequential batch engine's scheduler.
type Heaviest struct{}

// Next implements Scheduler.
func (Heaviest) Next(v View) int {
	if hv, ok := v.(HeaviestView); ok {
		if c, ok := hv.HeaviestDeliverable(); ok {
			return c
		}
	}
	ds := v.Deliverable()
	best, qb := ds[0], v.QueueLen(ds[0])
	for _, c := range ds[1:] {
		if ql := v.QueueLen(c); ql > qb || (ql == qb && v.HeadSeq(c) < v.HeadSeq(best)) {
			best, qb = c, ql
		}
	}
	return best
}

// HeapHints implements HeapHinted: a max-queue-length heap replaces the
// scan.
func (Heaviest) HeapHints() []HeapHint { return []HeapHint{{Kind: HeapHeaviest}} }

// Random delivers a uniformly random in-flight deliverable message
// (channels weighted by queue length). Deterministic for a fixed seed.
type Random struct{ rng *rand.Rand }

// NewRandom returns a Random scheduler seeded with seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Scheduler.
func (r *Random) Next(v View) int {
	ds := v.Deliverable()
	total := 0
	for _, c := range ds {
		total += v.QueueLen(c)
	}
	pick := r.rng.Intn(total)
	for _, c := range ds {
		pick -= v.QueueLen(c)
		if pick < 0 {
			return c
		}
	}
	return ds[len(ds)-1] // unreachable
}

// RoundRobin cycles through channels, giving each ready channel one
// delivery in turn: a "fair" schedule resembling lock-step execution.
type RoundRobin struct{ last int }

// NewRoundRobin returns a RoundRobin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{last: -1} }

// Next implements Scheduler.
func (r *RoundRobin) Next(v View) int {
	ds := v.Deliverable()
	for _, c := range ds {
		if c > r.last {
			r.last = c
			return c
		}
	}
	r.last = ds[0]
	return ds[0]
}

// DirBiased starves one direction: whenever any message traveling Prefer
// is deliverable it goes first (oldest such first), and only otherwise does
// the other direction advance. With Prefer = CCW it maximally rushes the
// counterclockwise instance inside Algorithm 2, stressing the lag mechanism
// that its correctness rests on.
type DirBiased struct {
	// Prefer is the direction whose messages are always delivered first.
	Prefer pulse.Direction
}

// Next implements Scheduler.
func (d DirBiased) Next(v View) int {
	if dv, ok := v.(DirOldestView); ok {
		if c, ok := dv.OldestDeliverableDir(d.Prefer); ok {
			if c >= 0 {
				return c
			}
			// Fast path live, no preferred-direction candidate: fall
			// through to the canonical pick, same as the scan's "not
			// found" branch.
			return Canonical{}.Next(v)
		}
	}
	ds := v.Deliverable()
	best, found := 0, false
	for _, c := range ds {
		if v.Direction(c) != d.Prefer {
			continue
		}
		if !found || v.HeadSeq(c) < v.HeadSeq(best) {
			best, found = c, true
		}
	}
	if found {
		return best
	}
	return Canonical{}.Next(v)
}

// HeapHints implements HeapHinted: a per-direction oldest heap over the
// preferred direction replaces the scan (the fallback pick rides the
// canonical oldest heap that is always maintained).
func (d DirBiased) HeapHints() []HeapHint {
	return []HeapHint{{Kind: HeapDirOldest, Dir: d.Prefer}}
}

// Laggy alternates bursts of canonical delivery with bursts of random
// delivery, switching with probability 1/8 per step: a schedule with long
// quiet stretches punctuated by reordering storms. Despite the old name
// (Flaky), it never drops or corrupts anything — a scheduler only reorders
// delivery; actual pulse loss, duplication, and injection live in
// internal/fault and attach via WithFaultPlane.
type Laggy struct {
	rng    *rand.Rand
	stormy bool
	inner  *Random
}

// NewLaggy returns a Laggy scheduler seeded with seed.
func NewLaggy(seed int64) *Laggy {
	return &Laggy{
		rng:   rand.New(rand.NewSource(seed)),
		inner: NewRandom(seed + 1),
	}
}

// Flaky is the old name of Laggy.
//
// Deprecated: use Laggy. The scheduler only lags (reorders) deliveries;
// for genuinely flaky channels — loss, duplication, spurious pulses — use
// a fault.Plane via WithFaultPlane.
type Flaky = Laggy

// NewFlaky returns a Laggy scheduler seeded with seed.
//
// Deprecated: use NewLaggy.
func NewFlaky(seed int64) *Laggy { return NewLaggy(seed) }

// Next implements Scheduler.
func (f *Laggy) Next(v View) int {
	if f.rng.Intn(8) == 0 {
		f.stormy = !f.stormy
	}
	if f.stormy {
		return f.inner.Next(v)
	}
	return Canonical{}.Next(v)
}

// HashDelay assigns every message a pseudo-random "delay rank" derived
// from hashing (seed, channel, sequence number) and always delivers the
// deliverable head with the smallest rank. Unlike Random it fixes each
// message's relative delay at send time, modeling per-message link delays
// (two messages on different channels overtake each other consistently,
// not re-rolled per step), while per-channel FIFO still holds because only
// queue heads are candidates.
type HashDelay struct{ seed uint64 }

// NewHashDelay returns a HashDelay scheduler for the given seed.
func NewHashDelay(seed int64) HashDelay { return HashDelay{seed: uint64(seed)} }

// Next implements Scheduler.
func (h HashDelay) Next(v View) int {
	if rv, ok := v.(RankedView); ok {
		if c, ok := rv.MinRankDeliverable(); ok {
			return c
		}
	}
	ds := v.Deliverable()
	best, bestRank := ds[0], h.rank(ds[0], v.HeadSeq(ds[0]))
	for _, c := range ds[1:] {
		if r := h.rank(c, v.HeadSeq(c)); r < bestRank {
			best, bestRank = c, r
		}
	}
	return best
}

// HeapHints implements HeapHinted: a min-rank heap keyed by the same
// (seed, channel, seq) hash replaces the scan.
func (h HashDelay) HeapHints() []HeapHint {
	return []HeapHint{{Kind: HeapRank, Rank: h.rank}}
}

// rank is an xorshift-style mix of (seed, channel, seq).
func (h HashDelay) rank(c int, seq uint64) uint64 {
	x := h.seed ^ uint64(c)*0x9e3779b97f4a7c15 ^ seq*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Stock enumerates one instance of every stock scheduler, keyed by a short
// name; experiments sweep over it. Seeded schedulers use the given seed.
func Stock(seed int64) map[string]Scheduler {
	return map[string]Scheduler{
		"canonical":  Canonical{},
		"newest":     Newest{},
		"heaviest":   Heaviest{},
		"random":     NewRandom(seed),
		"roundrobin": NewRoundRobin(),
		"ccw-first":  DirBiased{Prefer: pulse.CCW},
		"cw-first":   DirBiased{Prefer: pulse.CW},
		"flaky":      NewLaggy(seed),
		"hashdelay":  NewHashDelay(seed),
	}
}
