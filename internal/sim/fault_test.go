package sim_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"coleader/internal/core"
	"coleader/internal/fault"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// faultInstance mirrors the differential-test instances: one per algorithm,
// rebuilt fresh per run (machines and several schedulers are stateful).
type faultInstance struct {
	name     string
	topo     func() (ring.Topology, error)
	machines func() ([]node.PulseMachine, error)
	budget   uint64
}

func faultInstances() []faultInstance {
	return []faultInstance{
		{
			name: "alg1/dup-ids",
			topo: func() (ring.Topology, error) { return ring.Oriented(4) },
			machines: func() ([]node.PulseMachine, error) {
				topo, err := ring.Oriented(4)
				if err != nil {
					return nil, err
				}
				return core.Alg1Machines(topo, []uint64{2, 2, 1, 2})
			},
			budget: 4*core.PredictedAlg1Pulses(4, 2) + 1024,
		},
		{
			name: "alg2/oriented",
			topo: func() (ring.Topology, error) { return ring.Oriented(5) },
			machines: func() ([]node.PulseMachine, error) {
				topo, err := ring.Oriented(5)
				if err != nil {
					return nil, err
				}
				return core.Alg2Machines(topo, []uint64{3, 1, 4, 2, 5})
			},
			budget: 4*core.PredictedAlg2Pulses(5, 5) + 1024,
		},
		{
			name: "alg3/non-oriented",
			topo: func() (ring.Topology, error) { return ring.NonOriented([]bool{true, false, true}) },
			machines: func() ([]node.PulseMachine, error) {
				return core.Alg3Machines(3, []uint64{2, 1, 3}, core.SchemeSuccessor)
			},
			budget: 4*core.PredictedAlg3Pulses(3, 3, core.SchemeSuccessor) + 1024,
		},
	}
}

// runFaulted runs one fresh simulation with an optional fault plane and
// returns its full event trace, result, and error.
func runFaulted(t *testing.T, inst faultInstance, schedName string, seed int64,
	plane *fault.Plane) ([]sim.Event, sim.Result, error) {
	t.Helper()
	topo, err := inst.topo()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := inst.machines()
	if err != nil {
		t.Fatal(err)
	}
	var events []sim.Event
	opts := []sim.Option[pulse.Pulse]{
		sim.WithObserver[pulse.Pulse](sim.ObserverFunc[pulse.Pulse](
			func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
				cp := *e
				cp.Sends = append([]sim.SendRec(nil), e.Sends...)
				events = append(events, cp)
				return nil
			})),
	}
	if plane != nil {
		opts = append(opts, sim.WithFaultPlane[pulse.Pulse](plane))
	}
	s, err := sim.New(topo, ms, sim.Stock(seed)[schedName], opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := s.Run(inst.budget)
	return events, res, runErr
}

// TestZeroBudgetPlaneIdentity: a fault plane with zero budget must be
// indistinguishable from no plane at all — event-for-event identical traces
// and identical Results, across every stock scheduler and all three
// algorithms. This is the differential proof that the fault hooks sit
// outside the model-exact paths.
func TestZeroBudgetPlaneIdentity(t *testing.T) {
	var schedNames []string
	for name := range sim.Stock(1) {
		schedNames = append(schedNames, name)
	}
	for _, inst := range faultInstances() {
		n := 0
		switch inst.name {
		case "alg1/dup-ids":
			n = 4
		case "alg2/oriented":
			n = 5
		default:
			n = 3
		}
		for _, schedName := range schedNames {
			for _, seed := range []int64{1, 7} {
				name := fmt.Sprintf("%s/%s/seed=%d", inst.name, schedName, seed)
				t.Run(name, func(t *testing.T) {
					plane, err := fault.New(seed, fault.Config{Nodes: n, Classes: fault.AllClasses})
					if err != nil {
						t.Fatal(err)
					}
					bare, bareRes, bareErr := runFaulted(t, inst, schedName, seed, nil)
					planed, planedRes, planedErr := runFaulted(t, inst, schedName, seed, plane)
					if (bareErr == nil) != (planedErr == nil) ||
						(bareErr != nil && bareErr.Error() != planedErr.Error()) {
						t.Fatalf("errors diverge: plane-free %v, zero-budget %v", bareErr, planedErr)
					}
					if !reflect.DeepEqual(bare, planed) {
						t.Fatalf("traces diverge:\nplane-free %d events\nzero-budget %d events", len(bare), len(planed))
					}
					if !reflect.DeepEqual(bareRes, planedRes) {
						t.Fatalf("results diverge:\nplane-free %+v\nzero-budget %+v", bareRes, planedRes)
					}
					if len(plane.Log()) != 0 {
						t.Fatalf("zero-budget plane scheduled injections: %v", plane.Log())
					}
				})
			}
		}
	}
}

// TestFaultedRunDeterminism: identical (seed, budget, config) must yield an
// identical injection log, trace, and result across repeated runs.
func TestFaultedRunDeterminism(t *testing.T) {
	inst := faultInstances()[0] // alg1
	cfg := fault.Config{
		Nodes: 4, Classes: fault.NewSet(fault.Corrupt, fault.Loss, fault.Dup),
		Budget: 4, Horizon: 3,
	}
	run := func() ([]sim.Event, sim.Result, error, []fault.Injection) {
		plane, err := fault.New(99, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ev, res, runErr := runFaulted(t, inst, "random", 5, plane)
		return ev, res, runErr, plane.Log()
	}
	ev1, res1, err1, log1 := run()
	ev2, res2, err2, log2 := run()
	if !reflect.DeepEqual(log1, log2) {
		t.Errorf("injection logs diverge:\n%v\nvs\n%v", log1, log2)
	}
	if !reflect.DeepEqual(ev1, ev2) || !reflect.DeepEqual(res1, res2) {
		t.Errorf("faulted runs diverge")
	}
	if (err1 == nil) != (err2 == nil) {
		t.Errorf("errors diverge: %v vs %v", err1, err2)
	}
}

// alg1Clean runs a plane-free Algorithm 1 reference on n nodes with the
// given IDs and returns its result.
func alg1Clean(t *testing.T, ids []uint64, schedName string, seed int64) sim.Result {
	t.Helper()
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg1Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sim.Stock(seed)[schedName])
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(4*core.PredictedAlg1Pulses(len(ids), ring.MaxID(ids)) + 1024)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCorruptOutputHeals: output-plane corruption (tail-byte perturbation,
// triggered inside the first half of the run) leaves Algorithm 1's pulse
// traffic untouched and is overwritten by later deliveries: the run
// re-quiesces to the same unique, correct leader with the exact clean pulse
// count — the stabilization half of the paper's robustness story.
func TestCorruptOutputHeals(t *testing.T) {
	ids := []uint64{3, 1, 4, 2}
	idMax := ring.MaxID(ids)
	clean := alg1Clean(t, ids, "canonical", 1)
	for _, budget := range []int{1, 2, 4} {
		plane, err := fault.New(17, fault.Config{
			Nodes: len(ids), Classes: fault.NewSet(fault.Corrupt),
			Budget: budget, Horizon: idMax / 2, Mode: fault.PerturbOutput,
		})
		if err != nil {
			t.Fatal(err)
		}
		topo, _ := ring.Oriented(len(ids))
		ms, err := core.Alg1Machines(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(topo, ms, sim.Stock(1)["canonical"], sim.WithFaultPlane[pulse.Pulse](plane))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(4*core.PredictedAlg1Pulses(len(ids), idMax) + 1024)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if plane.Fired() != budget {
			t.Errorf("budget %d: only %d injections fired\n%s", budget, plane.Fired(), fault.FormatLog(plane.Log()))
		}
		if !res.Quiescent || res.Leader != clean.Leader || res.Sent != clean.Sent {
			t.Errorf("budget %d: corrupted run did not heal: quiescent=%t leader=%d sent=%d (clean leader=%d sent=%d)",
				budget, res.Quiescent, res.Leader, res.Sent, clean.Leader, clean.Sent)
		}
	}
}

// TestCrashStalls: a crashed node strands its incoming pulses, which the
// simulator reports as ErrStalled with the pulses still in flight.
func TestCrashStalls(t *testing.T) {
	ids := []uint64{1, 2, 3}
	plane, err := fault.New(2, fault.Config{
		Nodes: len(ids), Classes: fault.NewSet(fault.Crash), Budget: 1, Horizon: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := ring.Oriented(len(ids))
	ms, err := core.Alg1Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(topo, ms, sim.Stock(1)["canonical"], sim.WithFaultPlane[pulse.Pulse](plane))
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := s.Run(4096)
	if !errors.Is(runErr, sim.ErrStalled) {
		t.Fatalf("crash run: err = %v, want ErrStalled (result %+v)", runErr, res)
	}
	if plane.Fired() != 1 {
		t.Errorf("crash never fired:\n%s", fault.FormatLog(plane.Log()))
	}
}

// TestSpuriousNeverRequiesces: by pulse conservation, Algorithm 1 absorbs
// exactly as many pulses as there are nodes with counters below their ID;
// one injected extra pulse therefore circulates forever. The network never
// re-quiesces (step limit) — yet that is exactly the stabilization claim's
// other half: outputs still settle, only quiescence is lost.
func TestSpuriousNeverRequiesces(t *testing.T) {
	ids := []uint64{3, 1, 4, 2}
	for seed := int64(1); seed <= 20; seed++ {
		plane, err := fault.New(seed, fault.Config{
			Nodes: len(ids), Classes: fault.NewSet(fault.Spurious), Budget: 1, Horizon: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		topo, _ := ring.Oriented(len(ids))
		ms, err := core.Alg1Machines(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(topo, ms, sim.Stock(1)["canonical"], sim.WithFaultPlane[pulse.Pulse](plane))
		if err != nil {
			t.Fatal(err)
		}
		_, runErr := s.Run(4096)
		if plane.Fired() == 0 {
			continue // injection targeted an untrafficked channel; try next seed
		}
		if !errors.Is(runErr, sim.ErrStepLimit) {
			t.Fatalf("seed %d: spurious pulse run ended %v, want ErrStepLimit", seed, runErr)
		}
		return
	}
	t.Fatal("no seed in 1..20 fired a spurious injection on a trafficked channel")
}

// TestLossStillQuiesces: losing pulses can only shrink Algorithm 1's
// absorption debt, so the network still quiesces — but the election may
// come out wrong, which is precisely the degradation the model's
// no-loss clause exists to prevent.
func TestLossStillQuiesces(t *testing.T) {
	ids := []uint64{3, 1, 4, 2}
	clean := alg1Clean(t, ids, "canonical", 1)
	for seed := int64(1); seed <= 20; seed++ {
		plane, err := fault.New(seed, fault.Config{
			Nodes: len(ids), Classes: fault.NewSet(fault.Loss), Budget: 1, Horizon: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		topo, _ := ring.Oriented(len(ids))
		ms, err := core.Alg1Machines(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(topo, ms, sim.Stock(1)["canonical"], sim.WithFaultPlane[pulse.Pulse](plane))
		if err != nil {
			t.Fatal(err)
		}
		res, runErr := s.Run(4096)
		if plane.Fired() == 0 {
			continue
		}
		if runErr != nil || !res.Quiescent {
			t.Fatalf("seed %d: loss run ended %v quiescent=%t, want clean quiescence", seed, runErr, res.Quiescent)
		}
		if res.Sent >= clean.Sent {
			t.Errorf("seed %d: loss run sent %d pulses, clean run %d — loss did not shed traffic", seed, res.Sent, clean.Sent)
		}
		return
	}
	t.Fatal("no seed in 1..20 fired a loss injection on a trafficked channel")
}

// TestRestartReinitializes: a restart resets the machine to its initial
// snapshot and re-runs Init as a fresh wake-up event, so the trace carries
// n+1 init events instead of n.
func TestRestartReinitializes(t *testing.T) {
	ids := []uint64{3, 1, 4, 2}
	for seed := int64(1); seed <= 20; seed++ {
		plane, err := fault.New(seed, fault.Config{
			Nodes: len(ids), Classes: fault.NewSet(fault.Restart), Budget: 1, Horizon: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		topo, _ := ring.Oriented(len(ids))
		ms, err := core.Alg1Machines(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		inits := 0
		s, err := sim.New(topo, ms, sim.Stock(1)["canonical"],
			sim.WithFaultPlane[pulse.Pulse](plane),
			sim.WithObserver[pulse.Pulse](sim.ObserverFunc[pulse.Pulse](
				func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
					if e.Kind == sim.EvInit {
						inits++
					}
					return nil
				})))
		if err != nil {
			t.Fatal(err)
		}
		_, runErr := s.Run(8192)
		if plane.Fired() == 0 {
			continue
		}
		// Whatever the final outcome (the election may come out wrong, or
		// the revived absorption debt may leave a pulse circulating into
		// the step limit), the restarted node woke up a second time.
		if inits != len(ids)+1 {
			t.Errorf("seed %d: restart run saw %d init events, want %d (err=%v)",
				seed, inits, len(ids)+1, runErr)
		}
		return
	}
	t.Fatal("no seed in 1..20 fired a restart")
}

// inert is a minimal pulse machine that is not node.Undoable: Restart and
// Corrupt injections aimed at it must be logged as skipped.
type inert struct{}

func (inert) Init(node.PulseEmitter)                           {}
func (inert) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {}
func (inert) Ready(pulse.Port) bool                            { return true }
func (inert) Status() node.Status                              { return node.Status{State: node.StateUndecided} }

func TestRestartNonUndoableSkipped(t *testing.T) {
	plane, err := fault.New(4, fault.Config{
		Nodes: 2, Classes: fault.NewSet(fault.Restart, fault.Corrupt), Budget: 2, Horizon: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := ring.Oriented(2)
	ms := []node.PulseMachine{inert{}, inert{}}
	s, err := sim.New(topo, ms, sim.Stock(1)["canonical"], sim.WithFaultPlane[pulse.Pulse](plane))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(64); err != nil {
		t.Fatal(err)
	}
	for _, in := range plane.Log() {
		if in.Fired && !in.Skipped {
			t.Errorf("node fault on a non-Undoable machine not skipped: %+v", in)
		}
	}
	if plane.Fired() == 0 {
		t.Error("no node fault fired on the inert ring")
	}
}

// TestFlatBankRejectsFaultPlane pins the fault×flat contract: restart
// and corrupt injections snapshot per-node state through node.Undoable,
// which a struct-of-arrays bank does not expose, so NewFlat must refuse
// the combination with the structured ErrFaultPlaneUndoable — callers
// branch on errors.Is, not on prose (DESIGN.md §9).
func TestFlatBankRejectsFaultPlane(t *testing.T) {
	topo, err := ring.Oriented(4)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := core.NewFlatAlg2(topo, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	plane, err := fault.New(1, fault.Config{Nodes: 4, Classes: fault.AllClasses})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.NewFlat[pulse.Pulse](topo, bank, sim.Stock(1)["canonical"],
		sim.WithFaultPlane[pulse.Pulse](plane))
	if !errors.Is(err, sim.ErrFaultPlaneUndoable) {
		t.Fatalf("NewFlat with fault plane: err = %v, want ErrFaultPlaneUndoable", err)
	}
	if err == nil || !strings.Contains(err.Error(), "Undoable") {
		t.Fatalf("error should name the node.Undoable requirement, got %q", err)
	}
}

// TestWindowedFaultDeterminism: TriggerWindow planes are as deterministic
// on the simulator as local-ordinal ones — identical (seed, config) gives
// an identical injection log, trace, and result, with the windowed
// injections actually firing mid-run.
func TestWindowedFaultDeterminism(t *testing.T) {
	inst := faultInstances()[1] // alg2
	cfg := fault.Config{
		Nodes: 5, Classes: fault.NewSet(fault.Loss, fault.Crash),
		Budget: 3, Horizon: 12, Trigger: fault.TriggerWindow,
	}
	run := func() ([]sim.Event, sim.Result, error, []fault.Injection) {
		plane, err := fault.New(41, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ev, res, runErr := runFaulted(t, inst, "random", 7, plane)
		return ev, res, runErr, plane.Log()
	}
	ev1, res1, err1, log1 := run()
	ev2, res2, err2, log2 := run()
	if !reflect.DeepEqual(log1, log2) {
		t.Errorf("windowed injection logs diverge:\n%v\nvs\n%v", log1, log2)
	}
	if !reflect.DeepEqual(ev1, ev2) || !reflect.DeepEqual(res1, res2) {
		t.Errorf("windowed faulted runs diverge")
	}
	if (err1 == nil) != (err2 == nil) {
		t.Errorf("errors diverge: %v vs %v", err1, err2)
	}
	fired := 0
	for _, in := range log1 {
		if !in.Windowed {
			t.Errorf("injection %+v not marked windowed", in)
		}
		if in.Fired {
			fired++
		}
	}
	if fired == 0 {
		t.Error("no windowed injection fired; the test exercised nothing")
	}
}
