package sim_test

import (
	"testing"

	"coleader/internal/core"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// TestRunAllocsWithoutObserver asserts the hot path stays allocation-free
// when no observer is attached: a full n=64 Algorithm 2 election delivers
// 8256 pulses, so the bound below (1000 allocations for construction plus
// the entire run) can only hold if the per-delivery cost is zero — Event
// records, per-step deliverable slices, or queue-tail reslicing would
// each blow through it by an order of magnitude.
func TestRunAllocsWithoutObserver(t *testing.T) {
	const n = 64
	run := func() {
		topo, err := ring.Oriented(n)
		if err != nil {
			t.Fatal(err)
		}
		ids := ring.ConsecutiveIDs(n)
		ms, err := core.Alg2Machines(topo, ids)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(topo, ms, sim.Canonical{})
		if err != nil {
			t.Fatal(err)
		}
		pred := core.PredictedAlg2Pulses(n, ring.MaxID(ids))
		res, err := s.Run(4*pred + 1024)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sent != pred {
			t.Fatalf("sent %d pulses, want %d", res.Sent, pred)
		}
	}
	allocs := testing.AllocsPerRun(3, run)
	if allocs > 1000 {
		t.Fatalf("construction + %d-pulse run allocated %.0f objects, want <= 1000 (hot path must not allocate)",
			core.PredictedAlg2Pulses(n, uint64(n)), allocs)
	}
}
