// Package viz renders executions as ASCII space-time diagrams: one column
// per ring node, one row per event, with pulse receptions and emissions
// marked per direction. It consumes the event stream captured by
// trace.Recorder and is wired into `cmd/ringsim -diagram`.
//
// Reading a diagram: time flows downward; within a node's column,
//
//	I        the node's start-up (Init) ran
//	*cw      consumed a clockwise pulse (i.e. one from its CCW neighbor)
//	*ccw     consumed a counterclockwise pulse
//	+cw +ccw emissions performed by that handler
//
// A clockwise pulse emitted at node k is consumed in a later row at node
// (k+1) mod n, so diagonal "staircases" of *cw markers moving right are
// clockwise waves, and staircases of *ccw moving left are counterclockwise
// waves — Algorithm 2's two interleaved instances are directly visible.
package viz

import (
	"fmt"
	"strings"

	"coleader/internal/pulse"
	"coleader/internal/sim"
)

// cellWidth is the fixed column width of the diagram.
const cellWidth = 12

// SpaceTime renders the event stream for an n-node ring. Events must come
// from a single run, in order (as trace.Recorder captures them).
func SpaceTime(events []sim.Event, n int) string {
	var b strings.Builder
	// Header.
	fmt.Fprintf(&b, "%6s", "step")
	for k := 0; k < n; k++ {
		fmt.Fprintf(&b, " %-*s", cellWidth, fmt.Sprintf("node%d", k))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%6s", "----")
	for k := 0; k < n; k++ {
		fmt.Fprintf(&b, " %-*s", cellWidth, strings.Repeat("-", cellWidth))
	}
	b.WriteByte('\n')

	for i := range events {
		e := &events[i]
		fmt.Fprintf(&b, "%6d", e.Step)
		for k := 0; k < n; k++ {
			cell := ""
			if k == e.Node {
				cell = renderCell(e)
			}
			fmt.Fprintf(&b, " %-*s", cellWidth, clip(cell, cellWidth))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func renderCell(e *sim.Event) string {
	var parts []string
	switch e.Kind {
	case sim.EvInit:
		parts = append(parts, "I")
	case sim.EvDeliver:
		parts = append(parts, "*"+dirName(e.Dir))
	}
	for _, s := range e.Sends {
		parts = append(parts, "+"+dirName(s.Dir))
	}
	return strings.Join(parts, " ")
}

func dirName(d pulse.Direction) string {
	if d == pulse.CW {
		return "cw"
	}
	return "ccw"
}

func clip(s string, w int) string {
	if len(s) <= w {
		return s
	}
	return s[:w-1] + "~"
}

// ChannelLoad summarizes per-channel traffic: deliveries on each directed
// channel, keyed by receiving endpoint. Useful for spotting direction
// asymmetries (Algorithm 2's counterclockwise surplus of exactly n, the
// defective layer's clockwise-heavy frames).
func ChannelLoad(events []sim.Event, n int) string {
	cw := make([]int, n)
	ccw := make([]int, n)
	for i := range events {
		e := &events[i]
		if e.Kind != sim.EvDeliver {
			continue
		}
		if e.Dir == pulse.CW {
			cw[e.Node]++
		} else {
			ccw[e.Node]++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %-10s\n", "node", "cw recv", "ccw recv")
	for k := 0; k < n; k++ {
		fmt.Fprintf(&b, "%-6d %-10d %-10d\n", k, cw[k], ccw[k])
	}
	return b.String()
}

// Histogram renders a one-line-per-bucket ASCII histogram of values (used
// by the experiment harness for pulse distributions). maxBar is the bar
// width of the largest bucket.
func Histogram(title string, buckets []string, counts []int, maxBar int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	max := 0
	width := 0
	for i, c := range counts {
		if c > max {
			max = c
		}
		if len(buckets[i]) > width {
			width = len(buckets[i])
		}
	}
	for i, c := range counts {
		bar := 0
		if max > 0 {
			bar = c * maxBar / max
		}
		fmt.Fprintf(&b, "%-*s %6d %s\n", width, buckets[i], c, strings.Repeat("#", bar))
	}
	return b.String()
}
