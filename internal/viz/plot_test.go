package viz_test

import (
	"math"
	"strings"
	"testing"

	"coleader/internal/viz"
)

func TestLinePlotBasics(t *testing.T) {
	out := viz.LinePlot("demo",
		[]string{"1", "2", "3"},
		[]viz.Series{
			{Name: "up", Ys: []float64{1, 10, 100}},
			{Name: "flat", Ys: []float64{10, 10, 10}},
		}, 10, true)
	for _, want := range []string{"demo", "* = up", "o = flat", "(log10 y-axis)", "100", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// The increasing series occupies distinct rows: top row has a mark at
	// the last column, bottom row at the first.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Errorf("top row missing max point:\n%s", out)
	}
}

func TestLinePlotLinearScale(t *testing.T) {
	out := viz.LinePlot("", []string{"a", "b"}, []viz.Series{
		{Name: "s", Ys: []float64{0, 4}},
	}, 5, false)
	if strings.Contains(out, "log10") {
		t.Error("linear plot mentions log scale")
	}
	if !strings.Contains(out, "4") || !strings.Contains(out, "0") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestLinePlotEmptyAndDegenerate(t *testing.T) {
	out := viz.LinePlot("t", []string{"x"}, []viz.Series{
		{Name: "none", Ys: []float64{math.NaN()}},
	}, 5, false)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot did not say so:\n%s", out)
	}
	// Log scale drops non-positive values.
	out = viz.LinePlot("t", []string{"x"}, []viz.Series{
		{Name: "neg", Ys: []float64{-5}},
	}, 5, true)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("log plot accepted negative value:\n%s", out)
	}
	// A single constant value must not divide by zero.
	out = viz.LinePlot("t", []string{"x"}, []viz.Series{
		{Name: "one", Ys: []float64{7}},
	}, 5, false)
	if !strings.Contains(out, "*") {
		t.Errorf("constant series not plotted:\n%s", out)
	}
}

func TestLinePlotManySeriesCycleMarks(t *testing.T) {
	series := make([]viz.Series, 10)
	for i := range series {
		series[i] = viz.Series{Name: "s", Ys: []float64{float64(i + 1)}}
	}
	out := viz.LinePlot("", []string{"x"}, series, 12, false)
	// Marks cycle after 8 series; the 9th reuses '*'.
	if strings.Count(out, "* = s") != 2 {
		t.Errorf("mark cycling broken:\n%s", out)
	}
}
