package viz_test

import (
	"strings"
	"testing"

	"coleader/internal/core"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/trace"
	"coleader/internal/viz"
)

func recordRun(t *testing.T, ids []uint64) ([]sim.Event, sim.Result) {
	t.Helper()
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Alg2Machines(topo, ids)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	s, err := sim.New(topo, ms, sim.Canonical{}, sim.WithObserver[pulse.Pulse](rec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(4096)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Events, res
}

func TestSpaceTime(t *testing.T) {
	events, res := recordRun(t, []uint64{1, 2})
	out := viz.SpaceTime(events, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + separator + one row per event.
	if want := 2 + int(res.Steps); len(lines) != want {
		t.Fatalf("diagram has %d lines, want %d:\n%s", len(lines), want, out)
	}
	if !strings.Contains(lines[0], "node0") || !strings.Contains(lines[0], "node1") {
		t.Errorf("header malformed: %q", lines[0])
	}
	for _, marker := range []string{"I", "*cw", "*ccw", "+cw", "+ccw"} {
		if !strings.Contains(out, marker) {
			t.Errorf("diagram missing marker %q:\n%s", marker, out)
		}
	}
}

func TestChannelLoad(t *testing.T) {
	events, _ := recordRun(t, []uint64{1, 2, 3})
	out := viz.ChannelLoad(events, 3)
	if !strings.Contains(out, "cw recv") {
		t.Errorf("load table malformed:\n%s", out)
	}
	// Every node of Algorithm 2 receives exactly ID_max cw and ID_max+1
	// ccw pulses: check one row textually.
	if !strings.Contains(out, "3          4") {
		t.Errorf("expected per-node counts 3 cw / 4 ccw:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	out := viz.Histogram("demo", []string{"a", "bb"}, []int{2, 4}, 8)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "########") {
		t.Errorf("histogram malformed:\n%s", out)
	}
	// The smaller bucket gets half the bar.
	if !strings.Contains(out, "####\n") {
		t.Errorf("expected a 4-hash bar:\n%s", out)
	}
	empty := viz.Histogram("", []string{"x"}, []int{0}, 8)
	if strings.Contains(empty, "#") {
		t.Errorf("zero bucket drew a bar:\n%s", empty)
	}
}

func TestClipLongCells(t *testing.T) {
	// A handler with many sends overflows the column and must be clipped,
	// not corrupt the grid.
	events := []sim.Event{{
		Kind: sim.EvDeliver, Step: 1, Node: 0, Dir: pulse.CW,
		Sends: []sim.SendRec{
			{Dir: pulse.CW}, {Dir: pulse.CCW}, {Dir: pulse.CW}, {Dir: pulse.CCW},
		},
	}}
	out := viz.SpaceTime(events, 2)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if len(line) > 6+2*(12+1) {
			t.Errorf("line overflows grid: %q", line)
		}
	}
	if !strings.Contains(out, "~") {
		t.Errorf("expected clip marker:\n%s", out)
	}
}
