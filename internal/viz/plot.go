package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve of a LinePlot. Ys must align with the plot's
// shared x labels; NaN marks a missing point.
type Series struct {
	Name string
	Ys   []float64
}

// seriesMarks are assigned to series in order.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// LinePlot renders multiple series against shared x labels as an ASCII
// chart. height is the number of plot rows; logY switches the y axis to
// log10 (points <= 0 are dropped). Collisions print the later series'
// mark. It is deliberately simple: the experiments' curves span orders of
// magnitude and only their shape matters here — exact values live in the
// tables.
func LinePlot(title string, xLabels []string, series []Series, height int, logY bool) string {
	if height < 2 {
		height = 2
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}

	// Scale.
	lo, hi := math.Inf(1), math.Inf(-1)
	val := func(y float64) (float64, bool) {
		if math.IsNaN(y) {
			return 0, false
		}
		if logY {
			if y <= 0 {
				return 0, false
			}
			return math.Log10(y), true
		}
		return y, true
	}
	for _, s := range series {
		for _, y := range s.Ys {
			if v, ok := val(y); ok {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
	}
	if math.IsInf(lo, 1) { // nothing plottable
		b.WriteString("(no data)\n")
		return b.String()
	}
	if hi == lo {
		hi = lo + 1
	}

	// Layout: one column block per x position.
	const colWidth = 6
	cols := len(xLabels)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colWidth))
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * frac))
		return height - 1 - r // row 0 is the top
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		for xi, y := range s.Ys {
			if xi >= cols {
				break
			}
			v, ok := val(y)
			if !ok {
				continue
			}
			grid[rowOf(v)][xi*colWidth+colWidth/2] = mark
		}
	}

	// Y-axis labels on the first/last rows.
	axisVal := func(v float64) float64 {
		if logY {
			return math.Pow(10, v)
		}
		return v
	}
	yLabel := func(r int) string {
		switch r {
		case 0:
			return trimNum(axisVal(hi))
		case height - 1:
			return trimNum(axisVal(lo))
		default:
			return ""
		}
	}
	for r := 0; r < height; r++ {
		fmt.Fprintf(&b, "%10s |%s\n", yLabel(r), grid[r])
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", cols*colWidth))

	// X labels.
	fmt.Fprintf(&b, "%10s  ", "")
	for _, x := range xLabels {
		fmt.Fprintf(&b, "%-*s", colWidth, clip(x, colWidth-1))
	}
	b.WriteByte('\n')

	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  %c = %s\n", "", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	if logY {
		fmt.Fprintf(&b, "%10s  (log10 y-axis)\n", "")
	}
	return b.String()
}

func trimNum(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2g", v)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
