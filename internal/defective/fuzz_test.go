package defective_test

import (
	"testing"

	"coleader/internal/defective"
)

// FuzzChunkAssembler feeds arbitrary payload streams into the chunk
// reassembly path through a live adapter: it must never panic, and every
// accepted stream must be a valid prefix of legal chunk traffic.
func FuzzChunkAssembler(f *testing.F) {
	f.Add([]byte{3, 0, 2, 4})
	f.Add([]byte{1})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255, 254, 253, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, raw []byte) {
		capture := &captureMachine{}
		ad, err := defective.NewAdapter[uint64](capture,
			func(x uint64) uint64 { return x },
			func(x uint64) (uint64, error) { return x, nil })
		if err != nil {
			t.Fatal(err)
		}
		api := &fakeAPI{n: 3}
		for _, bb := range raw {
			if ad.Err() != nil {
				break // adapter latched a fault; later chunks are moot
			}
			ad.Deliver(defective.ToCW, uint64(bb), api)
		}
		// No assertion beyond "no panic" and the latched-error contract:
		// once Err is set, no further deliveries reach the inner machine.
		if ad.Err() != nil && len(capture.got) > len(raw) {
			t.Fatal("deliveries after fault")
		}
	})
}

// FuzzFrameCodec: DecodeFrame(EncodeFrame(x)) == x and control values are
// never produced by EncodeFrame.
func FuzzFrameCodec(f *testing.F) {
	f.Add(uint64(0), false)
	f.Add(uint64(1<<62), true)
	f.Fuzz(func(t *testing.T, payload uint64, ccw bool) {
		payload &= 1<<62 - 1
		to := defective.ToCW
		if ccw {
			to = defective.ToCCW
		}
		v := defective.EncodeFrame(to, payload)
		if v < 2 {
			t.Fatalf("EncodeFrame produced control value %d", v)
		}
		gotTo, gotPayload, ok := defective.DecodeFrame(v)
		if !ok || gotTo != to || gotPayload != payload {
			t.Fatalf("roundtrip (%v,%d) -> %d -> (%v,%d,%t)", to, payload, v, gotTo, gotPayload, ok)
		}
	})
}
