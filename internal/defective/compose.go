package defective

import (
	"fmt"

	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Composed is Corollary 5 as a machine: it runs Algorithm 2 until the node
// terminates the election, then — "replacing the act of termination with
// the act of switching to the second algorithm" (Section 1.1) — morphs
// into a defective-layer node, with the elected leader as root.
//
// The composition is sound exactly because of Algorithm 2's guarantees:
// termination is quiescent (no election pulse can reach a node after its
// switch, so no pulse is ever mis-attributed across the two algorithms)
// and the leader terminates last (when the root's first census pulse goes
// out, every other node is already running the layer).
type Composed struct {
	elect  *core.Alg2
	layer  *Node
	app    App
	cwPort pulse.Port
	err    error
}

// NewComposed builds the composed machine for one node: elect with id over
// an oriented ring (cwPort leads clockwise), then run app over the
// defective layer rooted at the winner.
func NewComposed(id uint64, cwPort pulse.Port, app App) (*Composed, error) {
	if app == nil {
		return nil, fmt.Errorf("defective: nil app")
	}
	elect, err := core.NewAlg2(id, cwPort)
	if err != nil {
		return nil, err
	}
	return &Composed{elect: elect, app: app, cwPort: cwPort}, nil
}

// Layer returns the inner defective-layer node, or nil while the election
// is still running.
func (c *Composed) Layer() *Node { return c.layer }

// App returns the simulated application.
func (c *Composed) App() App { return c.app }

// Init implements node.Machine.
func (c *Composed) Init(e node.PulseEmitter) {
	c.elect.Init(e)
	c.maybeSwitch(e)
}

// OnMsg implements node.Machine.
func (c *Composed) OnMsg(p pulse.Port, m pulse.Pulse, e node.PulseEmitter) {
	if c.layer != nil {
		c.layer.OnMsg(p, m, e)
		return
	}
	c.elect.OnMsg(p, m, e)
	c.maybeSwitch(e)
}

// maybeSwitch performs the termination-to-switch substitution.
func (c *Composed) maybeSwitch(e node.PulseEmitter) {
	st := c.elect.Status()
	if st.Err != nil || !st.Terminated {
		return
	}
	layer, err := NewNode(st.State == node.StateLeader, c.cwPort, c.app)
	if err != nil {
		c.err = err
		return
	}
	c.layer = layer
	c.layer.Init(e)
}

// Ready implements node.Machine.
func (c *Composed) Ready(p pulse.Port) bool {
	if c.layer != nil {
		return c.layer.Ready(p)
	}
	// During the election, termination means "switch", not "stop": the
	// machine keeps polling, but CCW gating is inherited from Algorithm 2.
	return c.elect.Ready(p)
}

// Status implements node.Machine: the election's outcome with the layer's
// termination, so a Composed run reports Leader/Non-Leader like an
// election and terminates like the layer.
func (c *Composed) Status() node.Status {
	if c.err != nil {
		return node.Status{Err: c.err}
	}
	if c.layer == nil {
		st := c.elect.Status()
		st.Terminated = false // termination became the switch
		return st
	}
	st := c.layer.Status()
	if st.Err == nil {
		if es := c.elect.Status(); es.Err != nil {
			st.Err = es.Err
		}
	}
	return st
}
