package defective_test

import (
	"fmt"

	"coleader/internal/defective"
	"coleader/internal/node"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// Corollary 5 in one screen: elect with Algorithm 2, switch into the
// universal layer, compute a max over the fully defective ring.
func ExampleNewComposed() {
	ids := []uint64{3, 9, 5}
	inputs := []uint64{10, 4, 25}
	topo, _ := ring.Oriented(len(ids))
	apps := make([]*defective.RingMax, len(ids))
	ms := make([]node.PulseMachine, len(ids))
	for k := range ms {
		apps[k] = defective.NewRingMax(inputs[k])
		m, err := defective.NewComposed(ids[k], topo.CWPort(k), apps[k])
		if err != nil {
			panic(err)
		}
		ms[k] = m
	}
	s, _ := sim.New(topo, ms, sim.Canonical{})
	res, err := s.Run(1 << 22)
	if err != nil {
		panic(err)
	}
	fmt.Printf("transport leader: node %d; every node learned max = %d %d %d\n",
		res.Leader, apps[0].Result(), apps[1].Result(), apps[2].Result())
	// Output: transport leader: node 1; every node learned max = 25 25 25
}

// Frame values encode (direction, payload) pairs above two reserved
// control values.
func ExampleEncodeFrame() {
	v := defective.EncodeFrame(defective.ToCCW, 21)
	to, payload, ok := defective.DecodeFrame(v)
	fmt.Println(v, to, payload, ok)
	// Output: 45 ccw 21 true
}
