package defective_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"coleader/internal/baseline"
	"coleader/internal/defective"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// buildAdapted wires a ring where each node runs the named classical
// baseline over the defective transport, rooted at node 0.
func buildAdapted(t *testing.T, algo baseline.Algorithm, ids []uint64) (ring.Topology, []node.PulseMachine, []*defective.Adapter[baseline.Msg]) {
	t.Helper()
	n := len(ids)
	topo, err := ring.Oriented(n)
	if err != nil {
		t.Fatal(err)
	}
	dec := func(v uint64) (baseline.Msg, error) { return baseline.UnpackMsg(v) }
	adapters := make([]*defective.Adapter[baseline.Msg], n)
	ms := make([]node.PulseMachine, n)
	for k := 0; k < n; k++ {
		// Inner machines use the Port1-is-clockwise convention the adapter
		// expects, regardless of the transport ring's wiring.
		inner, err := baseline.New(algo, ids[k], pulse.Port1)
		if err != nil {
			t.Fatal(err)
		}
		ad, err := defective.NewAdapter[baseline.Msg](inner, baseline.MustPackMsg, dec)
		if err != nil {
			t.Fatal(err)
		}
		adapters[k] = ad
		dn, err := defective.NewNode(k == 0, topo.CWPort(k), ad)
		if err != nil {
			t.Fatal(err)
		}
		ms[k] = dn
	}
	return topo, ms, adapters
}

// TestBaselinesOverDefective is the full-strength Corollary 5 check: all
// four classical content-carrying election algorithms — including the
// bidirectional Hirschberg–Sinclair — run UNCHANGED over a network that
// erases every message, and still elect the maximum-ID node.
func TestBaselinesOverDefective(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, algo := range baseline.Algorithms() {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				n := 2 + rng.Intn(3)
				ids := ring.PermutedIDs(n, rng)
				topo, ms, adapters := buildAdapted(t, algo, ids)
				s, err := sim.New(topo, ms, sim.NewRandom(int64(trial)))
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(1 << 26)
				if err != nil {
					t.Fatalf("trial %d ids %v: %v", trial, ids, err)
				}
				if !res.Quiescent || !res.AllTerminated {
					t.Fatalf("trial %d: quiescent=%t terminated=%t", trial, res.Quiescent, res.AllTerminated)
				}
				wantLeader, _ := ring.MaxIndex(ids)
				for k, ad := range adapters {
					if err := ad.Err(); err != nil {
						t.Fatalf("trial %d node %d: transport fault: %v", trial, k, err)
					}
					st := ad.Inner().Status()
					want := node.StateNonLeader
					if k == wantLeader {
						want = node.StateLeader
					}
					if st.State != want {
						t.Errorf("trial %d (%s, ids=%v): node %d inner state %v, want %v",
							trial, algo, ids, k, st.State, want)
					}
				}
			}
		})
	}
}

// TestAdaptedSelfRing: the degenerate n=1 transport still carries the
// inner algorithm's self-messages.
func TestAdaptedSelfRing(t *testing.T) {
	topo, ms, adapters := buildAdapted(t, baseline.AlgChangRoberts, []uint64{5})
	s, err := sim.New(topo, ms, sim.Canonical{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if st := adapters[0].Inner().Status(); st.State != node.StateLeader {
		t.Errorf("sole node state %v, want Leader", st.State)
	}
}

// TestChunkCodecRoundTrip: the chunk encoding round-trips arbitrary
// values through a fresh assembler.
func TestChunkCodecRoundTrip(t *testing.T) {
	prop := func(v uint64) bool {
		msg, err := roundTripChunks(v)
		return err == nil && msg == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	for _, v := range []uint64{0, 1, 15, 16, 255, 1 << 40, ^uint64(0)} {
		got, err := roundTripChunks(v)
		if err != nil || got != v {
			t.Errorf("roundtrip(%d) = %d, %v", v, got, err)
		}
	}
}

// roundTripChunks drives the exported surface end to end: encode via an
// adapter emitter, decode via Deliver, observe via a capturing inner
// machine.
func roundTripChunks(v uint64) (uint64, error) {
	capture := &captureMachine{}
	ad, err := defective.NewAdapter[uint64](capture,
		func(x uint64) uint64 { return x },
		func(x uint64) (uint64, error) { return x, nil })
	if err != nil {
		return 0, err
	}
	api := &fakeAPI{n: 2}
	// Encode by sending from a twin adapter wired to the same API queue.
	sender := &senderMachine{payload: v}
	adSend, err := defective.NewAdapter[uint64](sender,
		func(x uint64) uint64 { return x },
		func(x uint64) (uint64, error) { return x, nil })
	if err != nil {
		return 0, err
	}
	adSend.Start(api)
	for _, chunk := range api.sent {
		ad.Deliver(defective.ToCCW, chunk, api)
	}
	if err := ad.Err(); err != nil {
		return 0, err
	}
	if len(capture.got) != 1 {
		return 0, fmt.Errorf("delivered %d messages, want 1", len(capture.got))
	}
	return capture.got[0], nil
}

// senderMachine emits one clockwise message at init.
type senderMachine struct{ payload uint64 }

func (s *senderMachine) Init(e node.Emitter[uint64]) { e.Send(pulse.Port1, s.payload) }
func (s *senderMachine) OnMsg(pulse.Port, uint64, node.Emitter[uint64]) {
}
func (s *senderMachine) Ready(pulse.Port) bool { return true }
func (s *senderMachine) Status() node.Status   { return node.Status{} }

// captureMachine records deliveries.
type captureMachine struct{ got []uint64 }

func (c *captureMachine) Init(node.Emitter[uint64]) {}
func (c *captureMachine) OnMsg(_ pulse.Port, v uint64, _ node.Emitter[uint64]) {
	c.got = append(c.got, v)
}
func (c *captureMachine) Ready(pulse.Port) bool { return true }
func (c *captureMachine) Status() node.Status   { return node.Status{} }

// fakeAPI records adapter sends.
type fakeAPI struct {
	n    int
	sent []uint64
	halt bool
}

func (f *fakeAPI) Send(_ defective.Dir, payload uint64) { f.sent = append(f.sent, payload) }
func (f *fakeAPI) Halt()                                { f.halt = true }
func (f *fakeAPI) N() int                               { return f.n }
func (f *fakeAPI) Index() int                           { return 0 }

// TestAdapterChunkFaults: malformed chunk streams surface as adapter
// errors instead of silent corruption.
func TestAdapterChunkFaults(t *testing.T) {
	mkAdapter := func() *defective.Adapter[uint64] {
		ad, err := defective.NewAdapter[uint64](&captureMachine{},
			func(x uint64) uint64 { return x },
			func(x uint64) (uint64, error) { return x, nil })
		if err != nil {
			t.Fatal(err)
		}
		return ad
	}
	api := &fakeAPI{n: 2}

	digitFirst := mkAdapter()
	digitFirst.Deliver(defective.ToCW, 0<<1, api) // digit with no header
	if digitFirst.Err() == nil {
		t.Error("digit without header accepted")
	}

	doubleHeader := mkAdapter()
	doubleHeader.Deliver(defective.ToCW, 2<<1|1, api) // header: 2 digits
	doubleHeader.Deliver(defective.ToCW, 3<<1|1, api) // header again
	if doubleHeader.Err() == nil {
		t.Error("nested header accepted")
	}

	hugeHeader := mkAdapter()
	hugeHeader.Deliver(defective.ToCW, 99<<1|1, api)
	if hugeHeader.Err() == nil {
		t.Error("oversized header accepted")
	}
}

// TestAdapterChunkWidths: the transport works at every legal chunk width,
// with identical application outcomes and width-dependent cost.
func TestAdapterChunkWidths(t *testing.T) {
	ids := []uint64{2, 5, 3}
	var costs []uint64
	for _, bits := range []uint{1, 2, 4, 8, 12} {
		bits := bits
		topo, err := ring.Oriented(len(ids))
		if err != nil {
			t.Fatal(err)
		}
		dec := func(v uint64) (baseline.Msg, error) { return baseline.UnpackMsg(v) }
		adapters := make([]*defective.Adapter[baseline.Msg], len(ids))
		ms := make([]node.PulseMachine, len(ids))
		for k := range ms {
			inner, err := baseline.New(baseline.AlgChangRoberts, ids[k], pulse.Port1)
			if err != nil {
				t.Fatal(err)
			}
			ad, err := defective.NewAdapterBits[baseline.Msg](inner, baseline.MustPackMsg, dec, bits)
			if err != nil {
				t.Fatal(err)
			}
			adapters[k] = ad
			dn, err := defective.NewNode(k == 0, topo.CWPort(k), ad)
			if err != nil {
				t.Fatal(err)
			}
			ms[k] = dn
		}
		s, err := sim.New(topo, ms, sim.NewRandom(int64(bits)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(1 << 26)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		costs = append(costs, res.Sent)
		for k, ad := range adapters {
			want := node.StateNonLeader
			if ids[k] == 5 {
				want = node.StateLeader
			}
			if got := ad.Inner().Status().State; got != want {
				t.Errorf("bits=%d node %d: state %v, want %v", bits, k, got, want)
			}
		}
	}
	// 1-bit chunks pay a full turn rotation per bit and must cost the most
	// here. (Wider digits are not automatically worse: packed protocol
	// values are sparse, so high-base digits are often tiny — the full
	// width/cost curve is measured in experiment E12.)
	def := costs[2] // bits=4
	if costs[0] <= def {
		t.Errorf("1-bit transport (%d pulses) not costlier than 4-bit (%d)", costs[0], def)
	}
}

// TestChunkCost pins the closed-form per-value transport cost.
func TestChunkCost(t *testing.T) {
	// Value 0 at 4 bits: 1 header (payload 1<<1|1=3 -> frame 2+6+0=8,
	// wait: header frame value = EncodeFrame(ToCW, 3) = 2+6 = 8) plus one
	// digit 0 (frame value 2). Cost = (8+1+1)*n? Use the function as the
	// source of truth against a hand enumeration instead:
	n := 3
	got := defective.ChunkCost(n, 0, 4)
	// chunks: header k=1 -> payload 3 -> frame value 8 -> (8+1+1)*3 = 30;
	// digit 0 -> payload 0 -> frame value 2 -> (2+1+1)*3 = 12. Total 42.
	if got != 42 {
		t.Errorf("ChunkCost(3, 0, 4) = %d, want 42", got)
	}
	// Wider digits shrink chunk count for big values.
	big := uint64(1) << 32
	if defective.ChunkCost(n, big, 16) >= defective.ChunkCost(n, big, 1)*2 {
		t.Error("cost model shape off: 16-bit should not dwarf 1-bit by 2x for 2^32")
	}
}

// TestNewAdapterValidation covers constructor checks.
func TestNewAdapterValidation(t *testing.T) {
	enc := func(x uint64) uint64 { return x }
	dec := func(x uint64) (uint64, error) { return x, nil }
	if _, err := defective.NewAdapter[uint64](nil, enc, dec); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := defective.NewAdapter[uint64](&captureMachine{}, nil, dec); err == nil {
		t.Error("nil enc accepted")
	}
	if _, err := defective.NewAdapter[uint64](&captureMachine{}, enc, nil); err == nil {
		t.Error("nil dec accepted")
	}
}
