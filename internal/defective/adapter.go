package defective

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
)

// This file realizes the full strength of Corollary 5: ANY content-
// carrying asynchronous ring algorithm — an arbitrary node.Machine[M] —
// runs unchanged over the fully defective transport. Messages of type M
// are marshaled to integers, split into bounded base-2^digitBits chunks
// (unary frames must stay small: a frame of value v costs (v+1)·n pulses,
// so a raw 64-bit value would be astronomically expensive), carried as
// ordinary layer frames, and reassembled in order on the receiving side
// (per-owner frame order is total, so no sequencing metadata is needed).
//
// Shutdown needs no cooperation from the simulated algorithm: because
// turns are round-robin and simulated nodes are event-driven (they send
// only while handling a delivery), a full rotation of n consecutive pass
// frames proves the simulated network is quiescent — nothing was queued
// at any node's turn and nothing was delivered in between. The adapter at
// index 0 halts the layer when it observes such a rotation.

// DefaultDigitBits is the default chunk width: 4 keeps the largest digit
// frame at 2+2·(15<<1)+1 = 63, i.e. at most 64·n pulses, a good balance
// between per-chunk unary cost and chunks (turn rotations) per message.
// The trade-off is measured in experiment E12.
const DefaultDigitBits = 4

// encodeChunks splits v into adapter payloads under a digit width of
// `bits`: a header carrying the digit count, then the digits most
// significant first.
func encodeChunks(v uint64, bits uint) []uint64 {
	mask := uint64(1)<<bits - 1
	var digits []uint64
	for {
		digits = append(digits, v&mask)
		v >>= bits
		if v == 0 {
			break
		}
	}
	chunks := make([]uint64, 0, len(digits)+1)
	chunks = append(chunks, uint64(len(digits))<<1|1) // header: odd payload
	for i := len(digits) - 1; i >= 0; i-- {
		chunks = append(chunks, digits[i]<<1) // digit: even payload
	}
	return chunks
}

// ChunkCost returns the exact pulse cost of transporting one value as
// chunks under a digit width of `bits` on an n-ring: each chunk is one
// frame of (payload encoded) value plus its marker.
func ChunkCost(n int, v uint64, bits uint) uint64 {
	var total uint64
	for _, chunk := range encodeChunks(v, bits) {
		total += FramePulses(n, EncodeFrame(ToCW, chunk))
	}
	return total
}

// chunkAssembler reassembles one direction's chunk stream.
type chunkAssembler struct {
	remaining int
	acc       uint64
	active    bool
}

// feed consumes one payload; done reports a completed value in v.
func (ca *chunkAssembler) feed(payload uint64, bits uint) (v uint64, done bool, err error) {
	if payload&1 == 1 { // header
		if ca.active {
			return 0, false, fmt.Errorf("defective: header chunk inside a message (%d digits pending)", ca.remaining)
		}
		n := int(payload >> 1)
		if n < 1 || n > 64/int(bits)+1 {
			return 0, false, fmt.Errorf("defective: header declares %d digits", n)
		}
		ca.active = true
		ca.remaining = n
		ca.acc = 0
		return 0, false, nil
	}
	if !ca.active {
		return 0, false, fmt.Errorf("defective: digit chunk without header")
	}
	ca.acc = ca.acc<<bits | payload>>1
	ca.remaining--
	if ca.remaining == 0 {
		ca.active = false
		return ca.acc, true, nil
	}
	return 0, false, nil
}

// Adapter runs an arbitrary content-carrying ring machine over the
// defective layer. The inner machine must be built with Port1 as its
// clockwise port (the adapter maps ports to layer directions under that
// convention) and must be fresh (not previously initialized).
type Adapter[M any] struct {
	inner node.Machine[M]
	enc   func(M) uint64
	dec   func(uint64) (M, error)
	bits  uint

	rx         [2]chunkAssembler // indexed by sender direction (ToCW/ToCCW)
	passStreak int
	started    bool
	halted     bool
	err        error
}

// NewAdapter wraps inner; enc/dec marshal its message type to integers
// (values should be kept compact — transport cost grows with magnitude).
// The chunk width defaults to DefaultDigitBits; see NewAdapterBits.
func NewAdapter[M any](inner node.Machine[M], enc func(M) uint64, dec func(uint64) (M, error)) (*Adapter[M], error) {
	return NewAdapterBits(inner, enc, dec, DefaultDigitBits)
}

// NewAdapterBits is NewAdapter with an explicit chunk width in [1, 16]
// bits: wider digits mean fewer frames per message but exponentially more
// pulses per frame (unary encoding). All nodes of a ring must agree.
func NewAdapterBits[M any](inner node.Machine[M], enc func(M) uint64, dec func(uint64) (M, error), bits uint) (*Adapter[M], error) {
	if inner == nil || enc == nil || dec == nil {
		return nil, fmt.Errorf("defective: NewAdapter requires inner, enc, and dec")
	}
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("defective: chunk width %d outside [1,16]", bits)
	}
	return &Adapter[M]{inner: inner, enc: enc, dec: dec, bits: bits}, nil
}

// Inner returns the wrapped machine for result inspection.
func (ad *Adapter[M]) Inner() node.Machine[M] { return ad.inner }

// Err returns the first transport fault observed by the adapter.
func (ad *Adapter[M]) Err() error { return ad.err }

// adapterEmitter maps the inner machine's port sends to layer messages.
type adapterEmitter[M any] struct {
	ad  *Adapter[M]
	api API
}

// Send implements node.Emitter.
func (e adapterEmitter[M]) Send(p pulse.Port, m M) {
	to := ToCCW
	if p == pulse.Port1 { // inner convention: Port1 is clockwise
		to = ToCW
	}
	for _, chunk := range encodeChunks(e.ad.enc(m), e.ad.bits) {
		e.api.Send(to, chunk)
	}
}

// Start implements App.
func (ad *Adapter[M]) Start(api API) {
	ad.started = true
	ad.inner.Init(adapterEmitter[M]{ad: ad, api: api})
	ad.checkInner()
}

// Deliver implements App: reassemble the sender's chunk stream; a
// completed value becomes a delivery to the inner machine on the port the
// message's travel direction dictates (a clockwise-traveling message, i.e.
// one from the counterclockwise neighbor, arrives on Port0).
func (ad *Adapter[M]) Deliver(from Dir, payload uint64, api API) {
	v, done, err := ad.rx[from].feed(payload, ad.bits)
	if err != nil {
		ad.fail(err)
		return
	}
	if !done {
		return
	}
	m, err := ad.dec(v)
	if err != nil {
		ad.fail(fmt.Errorf("defective: undecodable message %d: %w", v, err))
		return
	}
	port := pulse.Port0
	if from == ToCW {
		port = pulse.Port1
	}
	if st := ad.inner.Status(); st.Terminated {
		ad.fail(fmt.Errorf("defective: message for terminated inner machine"))
		return
	}
	ad.inner.OnMsg(port, m, adapterEmitter[M]{ad: ad, api: api})
	ad.checkInner()
}

// OnFrame implements FrameObserver: the all-pass quiescence detector. The
// index-0 adapter halts the layer after observing n consecutive pass
// frames once the simulation has started.
func (ad *Adapter[M]) OnFrame(owner int, value uint64, api API) {
	if value == framePass {
		ad.passStreak++
	} else {
		ad.passStreak = 0
	}
	if !ad.halted && ad.started && api.Index() == 0 && ad.passStreak >= api.N() {
		ad.halted = true
		api.Halt()
	}
}

func (ad *Adapter[M]) checkInner() {
	if err := ad.inner.Status().Err; err != nil && ad.err == nil {
		ad.err = fmt.Errorf("defective: inner machine fault: %w", err)
	}
}

func (ad *Adapter[M]) fail(err error) {
	if ad.err == nil {
		ad.err = err
	}
}
