// Package defective implements the substrate Corollary 5 composes with: a
// universal simulation of content-carrying asynchronous ring algorithms
// over a fully defective (pulses-only) oriented ring with a distinguished
// root. It is a ring specialization of the compiler of Censor-Hillel,
// Cohen, Gelles, and Sela (Distributed Computing, 2023), which the paper's
// leader election supplies with its root: compose Algorithm 2 with this
// layer (see Composed) and any asynchronous ring algorithm runs over a
// network that destroys every message's content.
//
// # Protocol
//
// All data travels clockwise; all control markers travel counterclockwise.
// Per-channel FIFO (guaranteed by the model) makes markers unambiguous.
//
// Census (stop-and-wait): the root emits one clockwise pulse per round.
// The first clockwise pulse to reach an uncounted node is absorbed there,
// answered by a counterclockwise ack that relays back to the root, which
// then starts the next round; counted nodes relay everything. The round-n
// pulse finds every node counted and returns to the root, which thereby
// learns n — strictly causally, with no delivery-order assumptions. The
// root then sends two back-to-back counterclockwise markers. During the
// census a node never sees two counterclockwise arrivals without an
// intervening clockwise one (each relayed ack is preceded by the round
// pulse that caused it), so a counterclockwise pair is an unambiguous
// end-of-census signal. At that point a node that relayed a acks knows its
// clockwise distance from the root is n-1-a — once it learns n.
//
// Frames: the current holder sends value+1 clockwise data pulses; every
// other node relays and counts them; the holder absorbs its own pulses as
// they return and then sends one counterclockwise marker. A node reads the
// frame's value as (pulses counted)-1 when the marker passes, and the
// holder absorbs the returning marker to end its tenure. Frame 0 is the
// root broadcasting n (which also lets every node solve for its index);
// thereafter frame f belongs to node f mod n, round-robin. Frame values
// encode: 0 = pass, 1 = HALT, 2+2p+d = payload p to the clockwise (d=0) or
// counterclockwise (d=1) neighbor. The HALT frame's marker terminates each
// node it passes, the halting holder last — quiescently, preserving the
// composability property of Section 1.1.
package defective

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
)

// Dir addresses one of a node's two ring neighbors in the simulated
// (content-carrying) algorithm's terms.
type Dir uint8

// Neighbor directions.
const (
	// ToCW addresses the clockwise neighbor (index+1 mod n).
	ToCW Dir = iota
	// ToCCW addresses the counterclockwise neighbor (index-1 mod n).
	ToCCW
)

// String names the direction.
func (d Dir) String() string {
	if d == ToCW {
		return "cw"
	}
	return "ccw"
}

// API is the interface the defective layer offers to a simulated
// algorithm. N and Index are valid from Start onward.
type API interface {
	// Send queues one message to a neighbor; it is transmitted as this
	// node's next frames, one message per turn, in order.
	Send(to Dir, payload uint64)
	// Halt requests a layer shutdown: once this node's send queue drains,
	// its next turn emits the HALT frame and the whole ring terminates
	// quiescently.
	Halt()
	// N returns the ring size.
	N() int
	// Index returns this node's clockwise distance from the root.
	Index() int
}

// App is a simulated content-carrying ring algorithm. Its messages are
// (direction, payload) pairs; the layer transports them with full fidelity
// over pulses.
type App interface {
	// Start runs when the layer has established n and the node's index.
	Start(api API)
	// Deliver runs when a message addressed to this node arrives. from is
	// the direction of the SENDER relative to this node.
	Deliver(from Dir, payload uint64, api API)
}

// Frame-value encoding.
const (
	framePass uint64 = 0
	frameHalt uint64 = 1
	frameBase uint64 = 2
)

// EncodeFrame converts a simulated message into a frame value.
func EncodeFrame(to Dir, payload uint64) uint64 {
	return frameBase + 2*payload + uint64(to)
}

// DecodeFrame inverts EncodeFrame; ok is false for pass/HALT frames.
func DecodeFrame(v uint64) (to Dir, payload uint64, ok bool) {
	if v < frameBase {
		return 0, 0, false
	}
	v -= frameBase
	return Dir(v & 1), v >> 1, true
}

// phase enumerates the layer's node states.
type phase uint8

const (
	phCensusWait  phase = iota + 1 // non-root: awaiting the counting pulse
	phCensusRelay                  // non-root: counted, relaying rounds/acks
	phRootCensus                   // root: stop-and-wait rounds
	phRootMarkers                  // root: awaiting its two markers back
	phBroadcast                    // non-root: reading frame 0 (the value n)
	phSteady                       // turn-based frames
	phDone
)

// Node is the defective-layer machine for one ring node. It implements
// node.Machine[pulse.Pulse]; all content it moves for the App exists only
// in pulse counts.
type Node struct {
	cwPort pulse.Port
	isRoot bool
	app    App

	phase phase
	err   error

	// Census bookkeeping.
	lastWasCCW bool
	ccwSeen    int // counterclockwise arrivals during census (acks+markers)
	rounds     int // root: census rounds started
	markersIn  int // root: returned markers

	// Identity (valid from steady phase).
	n     int
	index int

	// Frame machinery.
	frameNum  int
	cwData    int // relayed data pulses attributed to the pending frame
	holding   bool
	markerOut bool
	holderVal uint64
	holderGot int
	outQ      []uint64 // encoded frame values awaiting this node's turns
	wantHalt  bool
	halting   bool
	started   bool

	sentFrames     int
	deliveredMsgs  int
	observedFrames int
}

// NewNode builds a defective-layer machine. Exactly one node of the ring
// must be the root; cwPort is the port leading to the clockwise neighbor
// (both facts are exactly what Algorithm 2 plus orientation provide).
func NewNode(isRoot bool, cwPort pulse.Port, app App) (*Node, error) {
	if app == nil {
		return nil, fmt.Errorf("defective: nil app")
	}
	if !cwPort.Valid() {
		return nil, fmt.Errorf("defective: invalid clockwise port %d", cwPort)
	}
	ph := phCensusWait
	if isRoot {
		ph = phRootCensus
	}
	return &Node{cwPort: cwPort, isRoot: isRoot, app: app, phase: ph}, nil
}

// N returns the ring size (0 before the steady phase).
func (d *Node) N() int { return d.n }

// Index returns the node's clockwise distance from the root (valid from
// the steady phase).
func (d *Node) Index() int { return d.index }

// FramesObserved returns how many completed frames this node has seen.
func (d *Node) FramesObserved() int { return d.observedFrames }

// FramesSent returns how many message frames this node transmitted.
func (d *Node) FramesSent() int { return d.sentFrames }

// MessagesDelivered returns how many simulated messages were handed to
// this node's App.
func (d *Node) MessagesDelivered() int { return d.deliveredMsgs }

// sendCW / sendCCW move one pulse in a ring direction.
func (d *Node) sendCW(e node.PulseEmitter)  { e.Send(d.cwPort, pulse.Pulse{}) }
func (d *Node) sendCCW(e node.PulseEmitter) { e.Send(d.cwPort.Opposite(), pulse.Pulse{}) }

func (d *Node) fault(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Init implements node.Machine: the root opens census round 1; everyone
// else waits to be counted.
func (d *Node) Init(e node.PulseEmitter) {
	if d.isRoot {
		d.rounds = 1
		d.sendCW(e)
	}
}

// Ready implements node.Machine.
func (d *Node) Ready(pulse.Port) bool { return d.phase != phDone }

// Status implements node.Machine. The layer reports Leader for the root so
// that election tests over Composed machines keep working transparently.
func (d *Node) Status() node.Status {
	st := node.Status{Terminated: d.phase == phDone, Err: d.err}
	if d.isRoot {
		st.State = node.StateLeader
	} else {
		st.State = node.StateNonLeader
	}
	st.HasOrientation = true
	st.CWPort = d.cwPort
	return st
}

// OnMsg implements node.Machine.
func (d *Node) OnMsg(p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	isCW := p == d.cwPort.Opposite() // clockwise pulses arrive opposite the clockwise port
	switch d.phase {
	case phRootCensus:
		d.rootCensus(isCW, e)
	case phRootMarkers:
		d.rootMarkers(isCW, e)
	case phCensusWait:
		d.censusWait(isCW, e)
	case phCensusRelay:
		d.censusRelay(isCW, e)
	case phBroadcast:
		d.broadcast(isCW, e)
	case phSteady:
		d.steady(isCW, e)
	default:
		d.fault("defective: pulse delivered in phase %d", d.phase)
	}
}

// rootCensus: a counterclockwise ack closes the round; a clockwise arrival
// is the round-n pulse returning, which fixes n.
func (d *Node) rootCensus(isCW bool, e node.PulseEmitter) {
	if !isCW {
		d.rounds++
		d.sendCW(e)
		return
	}
	d.n = d.rounds
	d.index = 0
	d.phase = phRootMarkers
	d.sendCCW(e)
	d.sendCCW(e)
}

// rootMarkers: absorb the two census markers, then open frame 0 by
// broadcasting n.
func (d *Node) rootMarkers(isCW bool, e node.PulseEmitter) {
	if isCW {
		d.fault("defective: root got clockwise pulse while draining census markers")
		return
	}
	d.markersIn++
	if d.markersIn < 2 {
		return
	}
	d.phase = phSteady
	d.startApp(e)
	d.beginFrameZero(e)
}

// beginFrameZero: the root holds frame 0 with value n.
func (d *Node) beginFrameZero(e node.PulseEmitter) {
	d.holding = true
	d.markerOut = false
	d.holderGot = 0
	d.holderVal = uint64(d.n)
	for i := uint64(0); i <= d.holderVal; i++ {
		d.sendCW(e)
	}
}

// censusWait: the first clockwise pulse counts this node.
func (d *Node) censusWait(isCW bool, e node.PulseEmitter) {
	if !isCW {
		d.fault("defective: counterclockwise pulse before being counted")
		return
	}
	d.sendCCW(e) // ack
	d.phase = phCensusRelay
}

// censusRelay: relay rounds clockwise and acks counterclockwise; two
// counterclockwise arrivals in a row are the census end markers.
func (d *Node) censusRelay(isCW bool, e node.PulseEmitter) {
	if isCW {
		d.lastWasCCW = false
		d.sendCW(e)
		return
	}
	d.ccwSeen++
	d.sendCCW(e)
	if d.lastWasCCW {
		// Second marker: census over. Acks relayed = ccwSeen - 2.
		d.phase = phBroadcast
		d.cwData = 0
		return
	}
	d.lastWasCCW = true
}

// broadcast: count frame 0's data; its marker reveals n and hence the
// node's own index.
func (d *Node) broadcast(isCW bool, e node.PulseEmitter) {
	if isCW {
		d.cwData++
		d.sendCW(e)
		return
	}
	d.n = d.cwData - 1
	if d.n < 1 {
		d.fault("defective: broadcast frame decoded n=%d", d.n)
		return
	}
	d.index = d.n - 1 - (d.ccwSeen - 2)
	if d.index < 1 || d.index >= d.n {
		d.fault("defective: derived index %d outside [1,%d)", d.index, d.n)
		return
	}
	d.cwData = 0
	d.observedFrames++
	d.frameNum = 1
	d.sendCCW(e) // forward frame 0's marker
	d.phase = phSteady
	d.startApp(e)
	d.maybeHold(e)
}

func (d *Node) startApp(e node.PulseEmitter) {
	if d.started {
		return
	}
	d.started = true
	d.app.Start(apiShim{d: d})
}

// steady: the turn-based frame protocol.
func (d *Node) steady(isCW bool, e node.PulseEmitter) {
	if isCW {
		if d.holding && !d.markerOut {
			// Own data returning.
			d.holderGot++
			if uint64(d.holderGot) == d.holderVal+1 {
				d.markerOut = true
				d.sendCCW(e)
			}
			return
		}
		// Someone else's frame data (possibly arriving before the previous
		// marker finished its loop back to us as the old holder).
		d.cwData++
		d.sendCW(e)
		return
	}
	// Counterclockwise: a frame marker.
	if d.holding && d.markerOut {
		// Our own marker returned: our frame is complete everywhere.
		d.holding = false
		d.markerOut = false
		val := d.holderVal
		d.observedFrames++
		if d.frameNum > 0 {
			// Frame 0 is the n-broadcast, a layer-control frame that must
			// never be decoded as an application message (its value n
			// would read as HALT for n=1 or as a spurious message).
			d.processFrame(d.frameNum%d.n, val, e)
		}
		d.frameNum++
		if d.phase == phDone {
			return
		}
		d.maybeHold(e)
		return
	}
	// A passing marker closes the pending frame.
	val := uint64(0)
	if d.cwData > 0 {
		val = uint64(d.cwData - 1)
	} else {
		d.fault("defective: marker with no frame data (frame %d)", d.frameNum)
		return
	}
	d.cwData = 0
	d.observedFrames++
	d.sendCCW(e) // forward the marker before acting on the frame
	d.processFrame(d.frameNum%d.n, val, e)
	d.frameNum++
	if d.phase == phDone {
		return
	}
	d.maybeHold(e)
}

// FrameObserver is an optional App extension: OnFrame fires at EVERY node
// for EVERY completed frame (including passes, value 0, and HALT, value
// 1), in frame order. The layer is physically a broadcast medium — every
// node counts every frame's pulses — and observers get that full view.
// One sound use: detecting the simulated algorithm's quiescence, since a
// full rotation of n consecutive pass frames proves no node had anything
// queued and nothing was delivered meanwhile (see Adapter).
type FrameObserver interface {
	OnFrame(owner int, value uint64, api API)
}

// processFrame interprets a completed frame from owner with value val.
func (d *Node) processFrame(owner int, val uint64, e node.PulseEmitter) {
	if fo, ok := d.app.(FrameObserver); ok {
		fo.OnFrame(owner, val, apiShim{d: d})
	}
	switch val {
	case framePass:
		return
	case frameHalt:
		d.phase = phDone
		return
	}
	to, payload, ok := DecodeFrame(val)
	if !ok {
		d.fault("defective: undecodable frame value %d", val)
		return
	}
	// The message is addressed to owner's neighbor in direction `to`; we
	// receive it iff that neighbor is us.
	var receiver int
	if to == ToCW {
		receiver = (owner + 1) % d.n
	} else {
		receiver = (owner - 1 + d.n) % d.n
	}
	if receiver != d.index {
		return
	}
	from := ToCCW // message from our counterclockwise neighbor
	if to == ToCCW {
		from = ToCW
	}
	d.deliveredMsgs++
	d.app.Deliver(from, payload, apiShim{d: d})
}

// maybeHold starts this node's frame when its turn comes.
func (d *Node) maybeHold(e node.PulseEmitter) {
	if d.phase == phDone || d.holding || d.frameNum%d.n != d.index {
		return
	}
	d.holding = true
	d.markerOut = false
	d.holderGot = 0
	switch {
	case len(d.outQ) > 0:
		d.holderVal = d.outQ[0]
		d.outQ = d.outQ[1:]
		d.sentFrames++
	case d.wantHalt:
		d.holderVal = frameHalt
	default:
		d.holderVal = framePass
	}
	for i := uint64(0); i <= d.holderVal; i++ {
		d.sendCW(e)
	}
}

// apiShim exposes the layer to the App.
type apiShim struct{ d *Node }

// Send implements API.
func (a apiShim) Send(to Dir, payload uint64) {
	a.d.outQ = append(a.d.outQ, EncodeFrame(to, payload))
}

// Halt implements API.
func (a apiShim) Halt() { a.d.wantHalt = true }

// N implements API.
func (a apiShim) N() int { return a.d.n }

// Index implements API.
func (a apiShim) Index() int { return a.d.index }

// PredictedSetupPulses is the exact pulse cost of census plus the
// n-broadcast frame: (n^2 + 2n) + ((n+1)n + n) = 2n^2 + 4n.
func PredictedSetupPulses(n int) uint64 {
	un := uint64(n)
	return 2*un*un + 4*un
}

// FramePulses is the exact pulse cost of one frame with value v:
// (v+1) data pulses traversing all n channels plus the n-hop marker.
func FramePulses(n int, v uint64) uint64 {
	return (v+1)*uint64(n) + uint64(n)
}
